package sdfreduce

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// analysisBudgetCtx returns a context with a short deadline and a small
// uniform budget: the contract under test is that every analysis either
// answers or returns a structured error well before the watchdog, and
// never panics.
func analysisBudgetCtx(t testing.TB) (context.Context, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	return WithBudget(ctx, UniformBudget(1<<16)), cancel
}

// exercise runs the full analysis surface on g, discarding results: the
// assertions are "returns" (deadline + budget) and "does not panic"
// (isolation). Errors are expected for most perturbed graphs.
func exercise(ctx context.Context, g *Graph) {
	_, _, _ = ComputeThroughputResilient(ctx, g)
	_, _, _ = ConvertTraditionalCtx(ctx, g)
	_, _, _, _ = ConvertSymbolicCtx(ctx, g)
	_, _ = ComputeLatencyCtx(ctx, g)
	_, _ = SimulateCtx(ctx, g, 2)
}

// perturbGraph rebuilds g with rates, initial tokens and execution
// times mutated by the byte stream, preserving the topology. All rates
// stay >= 1 so construction itself cannot fail; everything else —
// consistency, liveness, magnitudes — is fair game.
func perturbGraph(g *Graph, data []byte) *Graph {
	if len(data) == 0 {
		return g
	}
	k := 0
	next := func() int {
		b := data[k%len(data)]
		k++
		return int(b)
	}
	out := NewGraph(g.Name() + "_perturbed")
	ids := make([]ActorID, g.NumActors())
	for i, a := range g.Actors() {
		// Occasionally near-overflow execution times to stress the
		// checked arithmetic paths.
		exec := int64(next() % 100)
		if next()%17 == 0 {
			exec = (int64(1) << 61) + int64(next())
		}
		ids[i] = out.MustAddActor(a.Name, exec)
	}
	for _, c := range g.Channels() {
		prod := 1 + next()%9
		cons := 1 + next()%9
		initial := next() % 5
		out.MustAddChannel(ids[c.Src], ids[c.Dst], prod, cons, initial)
	}
	return out
}

// FuzzPerturb fuzzes the analysis surface with perturbed versions of
// the paper's running example: random rates, delays and execution times
// must never panic or outlive the deadline (satellite of the resilience
// runtime).
func FuzzPerturb(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{2, 1, 0, 3})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{255, 0, 255, 0, 16, 32, 64, 128})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := perturbGraph(Figure2(), data)
		ctx, cancel := analysisBudgetCtx(t)
		defer cancel()
		done := make(chan struct{})
		go func() {
			defer close(done)
			exercise(ctx, g)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("analysis hung past deadline and budget on %v", data)
		}
	})
}

// TestChaosPerturbations is the deterministic companion of FuzzPerturb:
// a table of seed graphs, each perturbed many times with a seeded PRNG,
// driven through every analysis under deadline and budget. The test
// fails on panic or hang; errors are legitimate outcomes.
func TestChaosPerturbations(t *testing.T) {
	prefetch, err := Prefetch(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []struct {
		name string
		g    *Graph
	}{
		{"figure2", Figure2()},
		{"figure3", Figure3(5)},
		{"prefetch", prefetch},
	}
	for _, seed := range seeds {
		t.Run(seed.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for round := 0; round < 25; round++ {
				data := make([]byte, 8+rng.Intn(24))
				rng.Read(data)
				g := perturbGraph(seed.g, data)
				ctx, cancel := analysisBudgetCtx(t)
				exercise(ctx, g)
				cancel()
			}
		})
	}
}

// TestChaosUnperturbedSanity pins that the unperturbed seed graphs
// still analyse cleanly under the same deadline and budget, so the
// chaos harness cannot silently degenerate into testing only failures.
func TestChaosUnperturbedSanity(t *testing.T) {
	ctx, cancel := analysisBudgetCtx(t)
	defer cancel()
	tp, rep, err := ComputeThroughputResilient(ctx, Figure2())
	if err != nil {
		t.Fatalf("resilient on Figure 2: %v\n%s", err, rep)
	}
	if tp.Unbounded {
		t.Error("Figure 2 reported unbounded throughput")
	}
}
