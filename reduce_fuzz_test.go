package sdfreduce

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusGraphTexts loads the reduction corpus under testdata/graphs —
// the same graphs ci.sh drives `sdftool reduce -verify` over — as seed
// inputs for the equivalence fuzzer.
func corpusGraphTexts(tb testing.TB) []string {
	tb.Helper()
	dir := filepath.Join("testdata", "graphs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sdf") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, string(b))
	}
	if len(out) == 0 {
		tb.Fatal("no .sdf seeds in testdata/graphs")
	}
	return out
}

// assertReduceEquivalence is the property FuzzReduce drives: on any
// graph that passes the precheck, analysing the fixpoint-reduced graph
// and lifting the answer must reproduce the direct engine's answer in
// exact rational arithmetic. Guard refusals (budget, deadline) on
// either path skip the comparison — they are legitimate outcomes for
// perturbed graphs — but a successful analysis whose lift fails or
// disagrees is a soundness bug.
func assertReduceEquivalence(ctx context.Context, t *testing.T, g *Graph) {
	t.Helper()
	if err := Precheck(g); err != nil {
		return
	}
	direct, derr := ComputeThroughputDirectCtx(ctx, g, MethodMatrix)
	red, rerr := ReduceGraph(ctx, g, ReduceOptions{})
	if rerr != nil {
		return
	}
	tpRed, aerr := ComputeThroughputDirectCtx(ctx, red.Final, MethodMatrix)
	if derr != nil || aerr != nil {
		return
	}
	v, err := red.Lift(ReductionValue{Period: tpRed.Period, Unbounded: tpRed.Unbounded})
	if err != nil {
		t.Fatalf("lift failed after both engines succeeded on %s: %v\ntrace: %v",
			g.Name(), err, red.Trace())
	}
	if v.Unbounded != direct.Unbounded {
		t.Fatalf("unbounded mismatch on %s: lifted %v, direct %v\ntrace: %v",
			g.Name(), v.Unbounded, direct.Unbounded, red.Trace())
	}
	if !v.Unbounded && !v.Period.Equal(direct.Period) {
		t.Fatalf("period mismatch on %s: lifted %v, direct %v\ntrace: %v",
			g.Name(), v.Period, direct.Period, red.Trace())
	}
	// The certificate chain must be independently checkable against the
	// original whenever the certified engine answers.
	if !direct.Unbounded && len(red.Steps) > 0 {
		_, inner, cerr := ComputeThroughputCertified(ctx, red.Final, MethodMatrix)
		if cerr != nil {
			return
		}
		cert, err := red.LiftCert(inner)
		if err != nil {
			t.Fatalf("LiftCert failed on %s: %v", g.Name(), err)
		}
		if err := cert.Check(ctx, g); err != nil {
			t.Fatalf("lifted certificate rejected on %s: %v\n%s", g.Name(), err, cert)
		}
	}
}

// FuzzReduce fuzzes the reduction pass manager for equivalence: corpus
// graphs (and arbitrary mutations of their text) are perturbed in
// rates, delays and execution times, fixpoint-reduced, and the lifted
// throughput is compared against the direct engine's in exact
// arithmetic (satellite of the reduction pass manager).
func FuzzReduce(f *testing.F) {
	for _, text := range corpusGraphTexts(f) {
		f.Add(text, []byte{})
		f.Add(text, []byte{3, 1, 4, 1, 5, 9, 2, 6})
		f.Add(text, []byte{255, 0, 128, 7, 7, 7})
	}
	f.Fuzz(func(t *testing.T, text string, data []byte) {
		g, err := ParseText(text)
		if err != nil {
			return
		}
		if len(data) > 0 {
			g = perturbGraph(g, data)
		}
		ctx, cancel := analysisBudgetCtx(t)
		defer cancel()
		assertReduceEquivalence(ctx, t, g)
	})
}

// TestReduceEquivalenceCorpus is the deterministic companion of
// FuzzReduce: every corpus graph, unperturbed and under 40 seeded
// perturbations each, must satisfy the reduce-lift-compare property.
func TestReduceEquivalenceCorpus(t *testing.T) {
	for i, text := range corpusGraphTexts(t) {
		g, err := ParseText(text)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		t.Run(g.Name(), func(t *testing.T) {
			ctx, cancel := analysisBudgetCtx(t)
			defer cancel()
			assertReduceEquivalence(ctx, t, g)
			data := make([]byte, 16)
			for round := 0; round < 40; round++ {
				for j := range data {
					data[j] = byte(37*round + 11*j + i)
				}
				assertReduceEquivalence(ctx, t, perturbGraph(g, data))
			}
		})
	}
}
