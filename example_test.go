package sdfreduce_test

import (
	"fmt"
	"log"
	"os"

	sdfreduce "repro"
)

// A producer/consumer pair with a rate change: the repetition vector and
// the exact iteration period fall out of the analysis.
func ExampleComputeThroughput() {
	g := sdfreduce.NewGraph("demo")
	p := g.MustAddActor("P", 2)
	c := g.MustAddActor("C", 3)
	g.MustAddChannel(p, c, 2, 1, 0)
	g.MustAddChannel(c, p, 1, 2, 4)

	tp, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
	if err != nil {
		log.Fatal(err)
	}
	tau, err := tp.ActorThroughput(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("period:", tp.Period)
	fmt.Println("τ(C): ", tau)
	// Output:
	// period: 5/2
	// τ(C):  4/5
}

// The paper's novel conversion turns the H.263-decoder-sized iteration
// (1190 firings) into a graph whose size depends only on the 3 initial
// tokens.
func ExampleConvertSymbolic() {
	g := sdfreduce.NewGraph("h263like")
	vld := g.MustAddActor("VLD", 10)
	iq := g.MustAddActor("IQ", 1)
	mc := g.MustAddActor("MC", 5)
	g.MustAddChannel(vld, iq, 594, 1, 0)
	g.MustAddChannel(iq, mc, 1, 594, 0)
	g.MustAddChannel(mc, vld, 1, 1, 1)
	g.MustAddChannel(vld, vld, 1, 1, 1)
	g.MustAddChannel(mc, mc, 1, 1, 1)

	iterLen, err := g.IterationLength()
	if err != nil {
		log.Fatal(err)
	}
	_, r, stats, err := sdfreduce.ConvertSymbolic(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("iteration length (traditional size):", iterLen)
	fmt.Println("novel conversion actors:", stats.Actors(), "for N =", r.NumTokens())
	// Output:
	// iteration length (traditional size): 596
	// novel conversion actors: 14 for N = 3
}

// Abstracting the paper's Figure-1 graph: two abstract actors replace
// ten, and the throughput bound 1/(5·6) is provably conservative.
func ExampleAbstract() {
	g, err := sdfreduce.Figure1(6)
	if err != nil {
		log.Fatal(err)
	}
	ab, err := sdfreduce.InferAbstraction(g)
	if err != nil {
		log.Fatal(err)
	}
	abstract, res, err := sdfreduce.Abstract(g, ab)
	if err != nil {
		log.Fatal(err)
	}
	if err := sdfreduce.VerifyAbstractionConservative(g, ab); err != nil {
		log.Fatal(err)
	}
	r, err := sdfreduce.MaxCycleMean(abstract)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("abstract actors:", abstract.NumActors())
	fmt.Println("conservative throughput bound:", bound)
	// Output:
	// abstract actors: 2
	// conservative throughput bound: 1/30
}

// Simulation gives the exact self-timed firing times; the measured period
// matches the analytical one.
func ExampleSimulate() {
	g := sdfreduce.Figure3(2)
	tr, err := sdfreduce.Simulate(g, 20)
	if err != nil {
		log.Fatal(err)
	}
	period, err := sdfreduce.MeasuredPeriod(tr, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured period:", period)
	// Output:
	// measured period: 8
}

// Graphs serialise to a line-oriented text format (plus SDF3-style XML
// and JSON).
func ExampleWriteText() {
	g := sdfreduce.NewGraph("tiny")
	a := g.MustAddActor("A", 1)
	g.MustAddChannel(a, a, 1, 1, 1)
	if err := sdfreduce.WriteText(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
	// Output:
	// sdf tiny
	// actor A 1
	// chan A A 1 1 1
}
