package sdfreduce

import (
	"context"
	"errors"
	"testing"

	"repro/internal/rat"
)

// Every certified facade entry point must return a certificate the
// independent checker accepts, and the checker must reject a
// deliberately corrupted one.
func TestCertifiedFacadeEntryPoints(t *testing.T) {
	g := Figure2()
	ctx := context.Background()

	q, qc, err := CertifyRepetitionVector(ctx, g)
	if err != nil {
		t.Fatalf("CertifyRepetitionVector: %v", err)
	}
	if qc.Kind() != KindRepetition || CheckCertificate(ctx, g, qc) != nil {
		t.Error("repetition certificate does not re-verify")
	}
	doubled := make([]int64, len(q))
	for i, v := range q {
		doubled[i] = 2 * v
	}
	if err := CheckCertificate(ctx, g, &RepetitionCert{Q: doubled}); !errors.Is(err, ErrCertificateInvalid) {
		t.Errorf("doubled repetition vector accepted: %v", err)
	}

	sched, sc, err := CertifySchedule(ctx, g)
	if err != nil {
		t.Fatalf("CertifySchedule: %v", err)
	}
	if sc.Kind() != KindSchedule || CheckCertificate(ctx, g, sc) != nil {
		t.Error("schedule certificate does not re-verify")
	}
	if err := CheckCertificate(ctx, g, &ScheduleCert{Schedule: sched[:len(sched)-1]}); !errors.Is(err, ErrCertificateInvalid) {
		t.Errorf("truncated schedule accepted: %v", err)
	}

	r, mc, err := CertifyIterationMatrix(ctx, g)
	if err != nil {
		t.Fatalf("CertifyIterationMatrix: %v", err)
	}
	if r == nil || mc.Kind() != KindMatrix || CheckCertificate(ctx, g, mc) != nil {
		t.Error("matrix certificate does not re-verify")
	}

	tr, tc, err := SimulateCertified(ctx, g, 3)
	if err != nil {
		t.Fatalf("SimulateCertified: %v", err)
	}
	if tr == nil || tc.Kind() != KindTrace || CheckCertificate(ctx, g, tc) != nil {
		t.Error("trace certificate does not re-verify")
	}
	tampered := *tc
	tampered.Iterations = tc.Iterations + 1
	if err := CheckCertificate(ctx, g, &tampered); !errors.Is(err, ErrCertificateInvalid) {
		t.Errorf("trace with wrong iteration count accepted: %v", err)
	}

	for _, m := range []Method{MethodMatrix, MethodStateSpace, MethodHSDF} {
		tp, cert, err := ComputeThroughputCertified(ctx, g, m)
		if err != nil {
			t.Fatalf("ComputeThroughputCertified(%v): %v", m, err)
		}
		if cert.Kind() != KindThroughput || CheckCertificate(ctx, g, cert) != nil {
			t.Errorf("%v: throughput certificate does not re-verify", m)
		}
		corrupt := *cert
		bumped, err := tp.Period.Add(rat.FromInt(1))
		if err != nil {
			t.Fatal(err)
		}
		corrupt.Period = bumped
		if err := CheckCertificate(ctx, g, &corrupt); !errors.Is(err, ErrCertificateInvalid) {
			t.Errorf("%v: corrupted period accepted: %v", m, err)
		}
	}

	ab, err := InferAbstraction(g)
	if err != nil {
		t.Fatalf("InferAbstraction: %v", err)
	}
	bound, ac, err := CertifyAbstraction(ctx, g, ab)
	if err != nil {
		t.Fatalf("CertifyAbstraction: %v", err)
	}
	if ac.Kind() != KindAbstraction || CheckCertificate(ctx, g, ac) != nil {
		t.Error("abstraction certificate does not re-verify")
	}
	if bound.Sign() <= 0 {
		t.Errorf("abstraction bound %v, want > 0", bound)
	}
}

func TestHedgedFacade(t *testing.T) {
	g := Figure3(4)
	tp, rep, err := ComputeThroughputHedged(context.Background(), g)
	if err != nil {
		t.Fatalf("ComputeThroughputHedged: %v", err)
	}
	if tp.Unbounded || !rep.Answered {
		t.Fatalf("hedged result: %+v, report:\n%s", tp, rep)
	}
	cert := rep.Certificates[rep.Winner]
	if cert == nil {
		t.Fatal("winner has no certificate")
	}
	if err := CheckCertificate(context.Background(), g, cert); err != nil {
		t.Errorf("winner's certificate does not re-verify: %v", err)
	}
	// The exported error taxonomy covers disagreement.
	if !errors.Is(ErrEngineDisagreement, ErrEngineDisagreement) {
		t.Error("disagreement sentinel broken")
	}
}
