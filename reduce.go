package sdfreduce

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/lint"
	"repro/internal/passes"
	"repro/internal/verify"
)

// Reduction pass manager (internal/passes): a composable rule system
// that shrinks a graph to a fixpoint before any engine runs. Each rule
// is a reduce/restore/lift triple; every applied rewrite is recorded on
// a reduction stack, and answers computed on the reduced graph are
// lifted back to the original together with a checkable certificate
// chain (ReductionCert) that internal/verify validates step by step.
//
// The facade's throughput entry points (ComputeThroughput,
// ComputeThroughputCtx, the resilient ladder) run the exact default
// rules implicitly; the functions here expose the machinery for callers
// that want the reduced graph, the trace, or the lifted certificate
// themselves.
type (
	// Reduction is the result of driving a rule set to fixpoint: the
	// reduced graph, the rewrite chain, and the lifting machinery.
	Reduction = passes.Reduction
	// ReduceOptions selects the rule set and step bound of ReduceGraph.
	ReduceOptions = passes.Options
	// ReductionRule is one pluggable reduce/restore/lift triple.
	ReductionRule = passes.Rule
	// ReductionValue is an analysis answer being lifted through a chain.
	ReductionValue = passes.Value
	// GraphFacts is the memoized static-analysis fact table shared by
	// the lint passes, the reduction rules and the admission estimator.
	GraphFacts = passes.Facts
	// ReductionCert certifies a throughput answer lifted through a
	// reduction chain back to the original graph.
	ReductionCert = verify.ReductionCert
	// ReductionStep is one checkable link of a ReductionCert chain.
	ReductionStep = verify.LiftStep
)

// KindReduction tags reduction-chain certificates.
const KindReduction = verify.KindReduction

// NewGraphFacts returns the fact table of g with nothing computed yet;
// facts materialise lazily and are memoized per graph.
func NewGraphFacts(g *Graph) *GraphFacts { return passes.NewFacts(g) }

// DefaultReductionRules returns the exact rules in their canonical
// order: redundant-channel pruning, rate normalisation, dead-actor
// elimination, chain fusion. Lifting through any chain of these
// reproduces the original graph's answer exactly.
func DefaultReductionRules() []ReductionRule { return passes.DefaultRules() }

// AllReductionRules returns the default rules plus the paper's §4
// abstraction, which is conservative rather than exact: lifted periods
// become Theorem-1 upper bounds.
func AllReductionRules() []ReductionRule { return passes.AllRules() }

// ReductionRulesByName resolves rule names ("prune-redundant",
// "rate-gcd", "dead-actor", "chain-fusion", "abstraction") against the
// registry, preserving the given order.
func ReductionRulesByName(names []string) ([]ReductionRule, error) {
	return passes.RulesByName(names)
}

// ReduceGraph drives the rule set to fixpoint on g after the lint
// prechecks. Rule application is deterministic: the same graph and rule
// set always produce the same chain.
func ReduceGraph(ctx context.Context, g *Graph, opts ReduceOptions) (*Reduction, error) {
	if err := lint.Precheck(g); err != nil {
		return nil, err
	}
	return passes.Reduce(ctx, g, opts)
}

// ComputeThroughputDirect analyses g with the chosen engine and no
// reduction pre-stage — the baseline the reduced pipeline is measured
// against.
func ComputeThroughputDirect(g *Graph, m Method) (Throughput, error) {
	return ComputeThroughputDirectCtx(context.Background(), g, m)
}

// ComputeThroughputDirectCtx is ComputeThroughputDirect under an
// explicit context and the budget it carries.
func ComputeThroughputDirectCtx(ctx context.Context, g *Graph, m Method) (Throughput, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, err
	}
	return analysis.ComputeThroughputDirectCtx(ctx, g, m)
}

// CertifyReduction reduces g to fixpoint, analyses the reduced graph
// with the certified matrix engine, and returns the lifted answer with
// the full certificate chain, already checked against the original
// graph. With the default (exact) rules the answer equals the direct
// one; with a chain containing the abstraction rule the period is a
// conservative Theorem-1 upper bound and the certificate says so.
func CertifyReduction(ctx context.Context, g *Graph, opts ReduceOptions) (Throughput, *Reduction, *ReductionCert, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, nil, nil, err
	}
	red, err := passes.Reduce(ctx, g, opts)
	if err != nil {
		return Throughput{}, nil, nil, err
	}
	_, inner, err := analysis.ComputeThroughputCertified(ctx, red.Final, analysis.Matrix)
	if err != nil {
		return Throughput{}, nil, nil, err
	}
	cert, err := red.LiftCert(inner)
	if err != nil {
		return Throughput{}, nil, nil, err
	}
	if err := cert.Check(ctx, g); err != nil {
		return Throughput{}, nil, nil, err
	}
	return Throughput{
		Unbounded:  cert.Unbounded,
		Period:     cert.Period,
		Repetition: red.OriginalRepetition(),
	}, red, cert, nil
}
