package sdfreduce

import (
	"math/rand"
	"strings"
	"testing"
)

// TestFacadeSurface touches every re-exported entry point once, so that
// the facade cannot silently drift from the internal packages.
func TestFacadeSurface(t *testing.T) {
	g := Figure2()

	// Serialisation wrappers.
	var xml strings.Builder
	if err := WriteXML(&xml, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadXML(strings.NewReader(xml.String())); err != nil {
		t.Fatal(err)
	}
	var js strings.Builder
	if err := WriteJSON(&js, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(strings.NewReader(js.String())); err != nil {
		t.Fatal(err)
	}
	var dot strings.Builder
	if err := WriteDOT(&dot, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT output malformed")
	}
	var txt strings.Builder
	if err := WriteText(&txt, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadText(strings.NewReader(txt.String())); err != nil {
		t.Fatal(err)
	}

	// Scheduling and analysis wrappers.
	if _, err := SequentialSchedule(g); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeLatency(g); err != nil {
		t.Fatal(err)
	}
	if _, err := InferAbstractionByLevels(g, map[string]string{"A1": "A", "A2": "A", "A3": "A"}); err != nil {
		t.Fatal(err)
	}

	// Mapping wrappers.
	bind, err := GreedyBind(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bind.Processors() != 2 {
		t.Errorf("Processors = %d", bind.Processors())
	}
	if _, err := UtilisationBound(g, 2); err != nil {
		t.Fatal(err)
	}

	// Buffer wrappers.
	if got := MinimalBufferCapacity(Channel{Prod: 2, Cons: 3}); got != 4 {
		t.Errorf("MinimalBufferCapacity = %d, want 4", got)
	}
	if ch := DataChannels(g); len(ch) == 0 {
		t.Error("DataChannels empty")
	}
	caps := map[ChannelID]int{}
	for _, id := range DataChannels(g) {
		caps[id] = 4
	}
	if _, err := WithBufferCapacities(g, caps); err != nil {
		t.Fatal(err)
	}

	// Conversion with observers through the facade.
	r, err := SymbolicIteration(g)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := g.ActorByName("B1")
	opts := DefaultBuildOptions()
	opts.Observe = []Observer{{Name: "B1", Times: r.ActorCompletion[b1]}}
	h, stats, err := BuildHSDF("fig2obs", r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ObserverActors == 0 {
		t.Error("no observer actors")
	}
	if _, ok := h.ActorByName("obs_B1"); !ok {
		t.Error("collector missing")
	}

	// Generators.
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomGraph(rng, RandomOptions{Actors: 3, MaxRep: 2, MaxExec: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomRegular(rng, RegularOptions{Groups: 2, Copies: 3, Links: 1, MaxExec: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := Prefetch(8, 2); err != nil {
		t.Fatal(err)
	}

	// Buffer exploration end to end on a small bounded graph.
	pc := NewGraph("pc")
	p := pc.MustAddActor("P", 1)
	c := pc.MustAddActor("C", 4)
	pc.MustAddChannel(p, p, 1, 1, 1)
	pc.MustAddChannel(c, c, 1, 1, 1)
	fwd := pc.MustAddChannel(p, c, 1, 1, 0)
	res, err := ExploreBuffers(pc, BufferOptions{Channels: []ChannelID{fwd}, MaxSteps: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("buffer exploration did not converge")
	}
}

func TestFacadeRetiming(t *testing.T) {
	g := NewGraph("ring")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 2)
	g.MustAddChannel(a, b, 1, 1, 1)
	g.MustAddChannel(b, a, 1, 1, 1)
	h, err := Retime(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Channel(0).Initial != 2 || h.Channel(1).Initial != 0 {
		t.Errorf("retimed tokens = %d, %d", h.Channel(0).Initial, h.Channel(1).Initial)
	}
	if _, _, err := CanonicalRetiming(g, a); err != nil {
		t.Fatal(err)
	}
}
