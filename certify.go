package sdfreduce

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// Verification layer (internal/verify): analysis results can be
// returned together with a certificate — a self-contained witness
// checked in exact arithmetic by code independent of the engine that
// produced the result. A certificate that does not re-verify never
// reaches the caller as a result.
type (
	// Certificate is a checkable witness for one analysis result.
	Certificate = verify.Certificate
	// CertificateKind discriminates the certificate types.
	CertificateKind = verify.Kind
	// RepetitionCert certifies a minimal repetition vector.
	RepetitionCert = verify.RepetitionCert
	// ScheduleCert certifies a single-iteration sequential schedule.
	ScheduleCert = verify.ScheduleCert
	// MatrixCert certifies a max-plus iteration matrix by concrete
	// replays of the schedule it was derived from.
	MatrixCert = verify.MatrixCert
	// ThroughputCert certifies an iteration period with a paired
	// critical-cycle witness (lower bound) and node-potential
	// feasibility witness (upper bound).
	ThroughputCert = verify.ThroughputCert
	// TraceCert certifies a timed simulation trace by event replay.
	TraceCert = verify.TraceCert
	// AbstractionCert certifies a Theorem-1 conservative throughput
	// bound, inner period certificate included.
	AbstractionCert = verify.AbstractionCert

	// HedgeOptions configures ComputeThroughputHedgedOpts.
	HedgeOptions = analysis.HedgeOptions
	// HedgeReport explains a hedged race: per-engine attempts plus the
	// certificates of every verified answer.
	HedgeReport = analysis.HedgeReport
	// DisagreementError carries the two conflicting verified answers
	// and their certificates.
	DisagreementError = analysis.DisagreementError
)

// Certificate kinds.
const (
	KindRepetition  = verify.KindRepetition
	KindSchedule    = verify.KindSchedule
	KindMatrix      = verify.KindMatrix
	KindThroughput  = verify.KindThroughput
	KindTrace       = verify.KindTrace
	KindAbstraction = verify.KindAbstraction
)

var (
	// ErrCertificateInvalid is wrapped by every certificate rejection;
	// test with errors.Is.
	ErrCertificateInvalid = verify.ErrInvalid
	// ErrEngineDisagreement marks two engines whose answers both
	// verified yet differ; test with errors.Is and unpack with
	// errors.As into *DisagreementError.
	ErrEngineDisagreement = analysis.ErrEngineDisagreement
)

// CheckCertificate validates any certificate against g with the
// independent checker; it returns nil exactly when the certified claim
// holds for g.
func CheckCertificate(ctx context.Context, g *Graph, c Certificate) error {
	return c.Check(ctx, g)
}

// ComputeThroughputCertified analyses g with the chosen engine and
// returns the result together with a verified throughput certificate:
// a critical-cycle witness and feasible node potentials over a
// reference precedence graph re-derived from g, checked in exact
// rational arithmetic independently of the engine.
func ComputeThroughputCertified(ctx context.Context, g *Graph, m Method) (Throughput, *ThroughputCert, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, nil, err
	}
	return analysis.ComputeThroughputCertified(ctx, g, m)
}

// ComputeThroughputHedged races the certified engines concurrently
// under the budget carried by ctx; the first independently verified
// answer wins and the losers are cancelled. Two verified engines that
// disagree surface as ErrEngineDisagreement carrying both certificates.
func ComputeThroughputHedged(ctx context.Context, g *Graph) (Throughput, *HedgeReport, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, nil, err
	}
	return analysis.ComputeThroughputHedged(ctx, g)
}

// ComputeThroughputHedgedOpts is ComputeThroughputHedged with an
// explicit engine list and cross-check mode.
func ComputeThroughputHedgedOpts(ctx context.Context, g *Graph, opts HedgeOptions) (Throughput, *HedgeReport, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, nil, err
	}
	return analysis.ComputeThroughputHedgedOpts(ctx, g, opts)
}

// CertifyRepetitionVector solves the balance equations of g and returns
// the repetition vector with a certificate of balance and minimality,
// already validated.
func CertifyRepetitionVector(ctx context.Context, g *Graph) ([]int64, *RepetitionCert, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, nil, err
	}
	cert := &verify.RepetitionCert{Q: q}
	if err := cert.Check(ctx, g); err != nil {
		return nil, nil, err
	}
	return q, cert, nil
}

// CertifySchedule builds a single-iteration sequential schedule and
// returns it with a certificate that replays it against the token
// semantics (no underflow, marking restored, minimal firing counts).
func CertifySchedule(ctx context.Context, g *Graph) ([]ActorID, *ScheduleCert, error) {
	sched, err := schedule.Sequential(g)
	if err != nil {
		return nil, nil, err
	}
	cert := &verify.ScheduleCert{Schedule: sched}
	if err := cert.Check(ctx, g); err != nil {
		return nil, nil, err
	}
	return sched, cert, nil
}

// CertifyIterationMatrix runs the paper's symbolic iteration (Algorithm
// 1) and returns the result with a certificate that cross-checks the
// matrix against concrete replays of the same schedule — every entry,
// exactly, within the documented replay budget.
func CertifyIterationMatrix(ctx context.Context, g *Graph) (*SymbolicResult, *MatrixCert, error) {
	if err := lint.Precheck(g); err != nil {
		return nil, nil, err
	}
	r, err := core.SymbolicIterationCtx(ctx, g)
	if err != nil {
		return nil, nil, err
	}
	cert := &verify.MatrixCert{Matrix: r.Matrix, Schedule: r.Schedule}
	if err := cert.Check(ctx, g); err != nil {
		return nil, nil, err
	}
	return r, cert, nil
}

// SimulateCertified runs self-timed execution of g and returns the
// trace with a certificate that replays it event by event: exact
// execution times, exact firing counts, no buffer underflow, and a
// return to the initial marking.
func SimulateCertified(ctx context.Context, g *Graph, iterations int64) (*Trace, *TraceCert, error) {
	tr, err := SimulateCtx(ctx, g, iterations)
	if err != nil {
		return nil, nil, err
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, nil, err
	}
	firings := make([]verify.TraceFiring, len(tr.Firings))
	for i, f := range tr.Firings {
		firings[i] = verify.TraceFiring{Actor: f.Actor, Start: f.Start, End: f.End}
	}
	cert := &verify.TraceCert{Iterations: iterations, Q: q, Firings: firings}
	if err := cert.Check(ctx, g); err != nil {
		return nil, nil, err
	}
	return tr, cert, nil
}

// CertifyAbstraction certifies the Theorem-1 bound of an abstraction of
// a homogeneous graph: the §5 proof obligation is discharged
// mechanically, the abstract graph's period is certified by an inner
// throughput certificate, and the returned bound 1/(N·Λ′) holds for
// every actor of g.
func CertifyAbstraction(ctx context.Context, g *Graph, ab *Abstraction) (Rat, *AbstractionCert, error) {
	abstract, res, err := core.Abstract(g, ab)
	if err != nil {
		return Rat{}, nil, err
	}
	tp, inner, err := analysis.ComputeThroughputCertified(ctx, abstract, analysis.Matrix)
	if err != nil {
		return Rat{}, nil, err
	}
	if tp.Unbounded {
		return Rat{}, nil, fmt.Errorf("%w: abstract graph has unbounded throughput, no finite bound exists", ErrCertificateInvalid)
	}
	bound, err := core.ThroughputBound(tp.Period, res.N)
	if err != nil {
		return Rat{}, nil, err
	}
	cert := &verify.AbstractionCert{
		Alpha: ab.Alpha, Index: ab.Index, N: res.N,
		AbstractPeriod: tp.Period, Bound: bound, Inner: inner,
	}
	if err := cert.Check(ctx, g); err != nil {
		return Rat{}, nil, err
	}
	return bound, cert, nil
}
