package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	sdfreduce "repro"
)

// reduceJSON is the -json wire form of one reduce run.
type reduceJSON struct {
	Graph    string `json:"graph"`
	Actors   int    `json:"actors"`
	Channels int    `json:"channels"`
	Reduced  struct {
		Actors   int `json:"actors"`
		Channels int `json:"channels"`
	} `json:"reduced"`
	Steps []string `json:"steps"`
	Scale int64    `json:"scale"`
	Exact bool     `json:"exact"`
	// Verification fields, present with -verify.
	Verified    bool   `json:"verified,omitempty"`
	Unbounded   bool   `json:"unbounded,omitempty"`
	Period      string `json:"period,omitempty"`
	Certificate string `json:"certificate,omitempty"`
}

func cmdReduce(ctx context.Context, w io.Writer, g *sdfreduce.Graph, ruleNames string, emit, asJSON, verified bool) error {
	var opts sdfreduce.ReduceOptions
	if ruleNames != "" {
		rules, err := sdfreduce.ReductionRulesByName(strings.Split(ruleNames, ","))
		if err != nil {
			return err
		}
		opts.Rules = rules
	}

	if verified {
		tp, red, cert, err := sdfreduce.CertifyReduction(ctx, g, opts)
		if err != nil {
			return err
		}
		if emit {
			return sdfreduce.WriteText(w, red.Final)
		}
		if asJSON {
			return writeReduceJSON(w, g, red, &tp, cert)
		}
		printReduce(w, g, red)
		if tp.Unbounded {
			fmt.Fprintln(w, "lifted answer: unbounded throughput")
		} else if red.Exact {
			fmt.Fprintf(w, "lifted iteration period: %v (exact)\n", tp.Period)
		} else {
			fmt.Fprintf(w, "lifted iteration period: <= %v (conservative bound)\n", tp.Period)
		}
		fmt.Fprintf(w, "verified: %s\n", cert)
		return nil
	}

	red, err := sdfreduce.ReduceGraph(ctx, g, opts)
	if err != nil {
		return err
	}
	if emit {
		return sdfreduce.WriteText(w, red.Final)
	}
	if asJSON {
		return writeReduceJSON(w, g, red, nil, nil)
	}
	printReduce(w, g, red)
	return nil
}

func printReduce(w io.Writer, g *sdfreduce.Graph, red *sdfreduce.Reduction) {
	fmt.Fprintf(w, "reduce %s: %d actors, %d channels -> %d actors, %d channels (%d steps, scale %d, exact %v)\n",
		g.Name(), g.NumActors(), g.NumChannels(),
		red.Final.NumActors(), red.Final.NumChannels(),
		len(red.Steps), red.Scale(), red.Exact)
	for _, line := range red.Trace() {
		fmt.Fprintf(w, "  %s\n", line)
	}
	if len(red.Steps) == 0 {
		fmt.Fprintln(w, "  (fixpoint already: no rule applies)")
	}
}

func writeReduceJSON(w io.Writer, g *sdfreduce.Graph, red *sdfreduce.Reduction, tp *sdfreduce.Throughput, cert *sdfreduce.ReductionCert) error {
	out := reduceJSON{
		Graph:    g.Name(),
		Actors:   g.NumActors(),
		Channels: g.NumChannels(),
		Steps:    red.Trace(),
		Scale:    red.Scale(),
		Exact:    red.Exact,
	}
	if out.Steps == nil {
		out.Steps = []string{}
	}
	out.Reduced.Actors = red.Final.NumActors()
	out.Reduced.Channels = red.Final.NumChannels()
	if tp != nil {
		out.Verified = true
		out.Unbounded = tp.Unbounded
		if !tp.Unbounded {
			out.Period = tp.Period.String()
		}
		out.Certificate = cert.String()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
