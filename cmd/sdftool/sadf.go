package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/sadf"
	"repro/internal/sdfio"
	"repro/internal/serve"
)

// sadfExitCode maps the sadf endpoint's own error kinds onto the
// documented exit codes: a structurally broken model is a request-shaped
// failure (1, like any malformed input), a scenario failing the analysis
// preconditions is a model precondition (2). Every kind SADFKindOf can
// mint needs an explicit case here — the sdfvet kindmap check enforces
// it. All other kinds fall through to the shared table.
func sadfExitCode(kind string) (int, bool) {
	switch kind {
	case "sadf-model":
		return 1, true
	case "sadf-scenario":
		return 2, true
	}
	return 0, false
}

// loadSADFModel reads an FSM-SADF model from a file ("-" = stdin), in
// the native text format or JSON by extension (-format overrides).
func loadSADFModel(name, format string) (*sadf.Model, error) {
	var r io.Reader
	if name == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "" {
		if strings.EqualFold(filepath.Ext(name), ".json") {
			format = "json"
		} else {
			format = "text"
		}
	}
	switch format {
	case "json":
		return sdfio.ReadSADFJSON(r)
	case "text":
		return sdfio.ReadSADFText(r)
	default:
		return nil, fmt.Errorf("unknown sadf format %q (text or json)", format)
	}
}

// cmdSADF analyses an FSM-SADF model: worst-case throughput across all
// infinite scenario sequences the FSM admits, computed on the max-plus
// automaton of the per-scenario matrices. Locally by default; through a
// running sdfserved daemon (or the sdfrouter in front of a fleet) with
// -server. -verify re-checks the certificate against the local parse of
// the model in exact arithmetic — for remote answers that means
// rebuilding the certificate from the wire payload, so a lying or
// corrupted server (or any proxy between) cannot slip an unproven
// period past the client.
func cmdSADF(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sadf", flag.ContinueOnError)
	server := fs.String("server", "", "base URL of an sdfserved daemon or sdfrouter; empty analyses in-process")
	format := fs.String("format", "", "input format: text or json (default: by extension)")
	timeout := fs.Duration("timeout", 0, "analysis deadline (0 = none locally, server default remotely)")
	verifyF := fs.Bool("verify", false, "re-check the certificate against the local model in exact arithmetic")
	exactOnly := fs.Bool("exact-only", false, "refuse degraded answers from a browned-out server (exit 6)")
	asJSON := fs.Bool("json", false, "emit the raw result payload as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one sadf model file argument")
	}
	m, err := loadSADFModel(fs.Arg(0), *format)
	if err != nil {
		return err
	}
	if *server != "" {
		return sadfRemote(out, m, strings.TrimRight(*server, "/"), *timeout, *verifyF, *exactOnly, *asJSON)
	}
	return sadfLocal(out, m, *timeout, *verifyF, *asJSON)
}

func sadfLocal(out io.Writer, m *sadf.Model, timeout time.Duration, verifyF, asJSON bool) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, cert, err := sadf.Analyze(ctx, m)
	if err != nil {
		return err
	}
	certLine := ""
	if verifyF {
		if err := cert.Check(ctx, m.Graphs()); err != nil {
			return err
		}
		certLine = cert.String()
	}
	if asJSON {
		payload := struct {
			*sadf.Result
			Verified    bool   `json:"verified"`
			Certificate string `json:"certificate,omitempty"`
		}{res, verifyF, certLine}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	}
	fmt.Fprintf(out, "model:      %s (%d scenarios, %d states, %d shared tokens)\n",
		m.Name, len(m.Scenarios), len(m.States), res.Tokens)
	fmt.Fprintf(out, "automaton:  %d nodes, %d edges\n", res.AutomatonNodes, res.AutomatonEdges)
	if res.Unbounded {
		fmt.Fprintln(out, "worst-case period: unbounded (the FSM admits no infinite scenario sequence with a dependency cycle)")
	} else {
		fmt.Fprintf(out, "worst-case period: %s", res.Period)
		if len(res.CriticalStates) > 0 {
			fmt.Fprintf(out, " (critical states: %s)", strings.Join(res.CriticalStates, ", "))
		}
		fmt.Fprintln(out)
	}
	if certLine != "" {
		fmt.Fprintf(out, "verified: %s\n", certLine)
	}
	return nil
}

func sadfRemote(out io.Writer, m *sadf.Model, server string, timeout time.Duration, verifyF, exactOnly, asJSON bool) error {
	body, err := json.Marshal(serve.SADFRequestPayload{
		ModelText: sdfio.SADFTextString(m),
		TimeoutMS: timeout.Milliseconds(),
		ExactOnly: exactOnly,
	})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: timeout + 60*time.Second}
	resp, err := client.Post(server+"/v1/sadf", "application/json", bytes.NewReader(body))
	if err != nil {
		return &transportError{addr: server, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return &transportError{addr: server, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var ep serve.ErrorPayload
		if err := json.Unmarshal(data, &ep); err != nil || ep.Kind == "" {
			return fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return &remoteError{status: resp.StatusCode, kind: ep.Kind, msg: ep.Error}
	}
	var res serve.SADFResultPayload
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("server: malformed result: %w", err)
	}

	// The client-side certificate check: rebuild the server's witness
	// against our OWN parse of the model and re-verify. Degraded
	// answers carry no certificate and fail -verify honestly.
	if verifyF {
		if res.Cert == nil {
			return errors.New("server answer carries no certificate to verify (degraded answers are uncertified; drop -verify or retry without load)")
		}
		cert, err := res.Cert.Cert(m)
		if err != nil {
			return fmt.Errorf("server certificate does not fit the local model: %w", err)
		}
		graphs, err := res.Cert.CertGraphs(m)
		if err != nil {
			return err
		}
		if err := cert.Check(context.Background(), graphs); err != nil {
			return fmt.Errorf("server certificate rejected by the local checker: %w", err)
		}
	}

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(out, "model:      %s (%d scenarios, %d states, %d shared tokens)\n",
		res.Model, res.Scenarios, res.States, res.Tokens)
	if res.AutomatonNodes > 0 {
		fmt.Fprintf(out, "automaton:  %d nodes, %d edges\n", res.AutomatonNodes, res.AutomatonEdges)
	}
	switch {
	case res.Unbounded:
		fmt.Fprintln(out, "worst-case period: unbounded (the FSM admits no infinite scenario sequence with a dependency cycle)")
	case res.Degradation == "bounded":
		fmt.Fprintf(out, "worst-case period: <= %s (certified upper bound: worst scenario serial makespan)\n", res.Period)
		if res.PeriodLower != "" {
			fmt.Fprintf(out, "period enclosure: [%s, %s]\n", res.PeriodLower, res.Period)
		}
	default:
		fmt.Fprintf(out, "worst-case period: %s", res.Period)
		if len(res.Critical) > 0 {
			fmt.Fprintf(out, " (critical states: %s)", strings.Join(res.Critical, ", "))
		}
		fmt.Fprintln(out)
	}
	if verifyF && res.Cert != nil {
		fmt.Fprintf(out, "verified: %s (re-checked locally)\n", res.Certificate)
	}
	if res.Degradation != "" {
		note := ""
		if res.Stale {
			note = "; expired cache entry, background refresh under way"
		}
		fmt.Fprintf(out, "degraded: served at the %s level%s\n", res.Degradation, note)
	}
	switch {
	case res.Cached:
		fmt.Fprintln(out, "served from the result cache")
	case res.Deduped:
		fmt.Fprintln(out, "deduplicated against an identical in-flight request")
	}
	return nil
}
