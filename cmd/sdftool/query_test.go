package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sdfreduce "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// startTestServer backs the query tests with a real in-process serving
// stack: the same handler sdfserved mounts.
func startTestServer(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(serve.NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func TestQueryRoundTrip(t *testing.T) {
	ts := startTestServer(t, serve.Options{})
	path := writeSample(t, "g.sdf", sampleText)

	out, err := runTool(t, "query", "-server", ts.URL, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine race:", "iteration period: 5/2", "verified:"} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}

	// The same query again is a cache hit, and the tool says so.
	out, err = runTool(t, "query", "-server", ts.URL, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served from the result cache") {
		t.Errorf("repeat query not reported as cached:\n%s", out)
	}

	// Single-engine query.
	out, err = runTool(t, "query", "-server", ts.URL, "-method", "matrix", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "engine: matrix") {
		t.Errorf("matrix query output:\n%s", out)
	}
}

func TestQueryHealth(t *testing.T) {
	ts := startTestServer(t, serve.Options{})
	out, err := runTool(t, "query", "-server", ts.URL, "-health")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"admitting", "engines:", "matrix", "statespace", "hsdf", "closed"} {
		if !strings.Contains(out, want) {
			t.Errorf("health output missing %q:\n%s", want, out)
		}
	}
}

// TestQueryRemoteErrors drives real failures through the wire and
// asserts each maps to its documented exit code.
func TestQueryRemoteErrors(t *testing.T) {
	ts := startTestServer(t, serve.Options{})
	deadlockedText := "sdf dl\nactor A 1\nactor B 1\nchan A B 1 1 0\nchan B A 1 1 0\n"

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"precondition", []string{"query", "-server", ts.URL, writeSample(t, "dl.sdf", deadlockedText)}, 2},
		{"budget", []string{"query", "-server", ts.URL, "-budget", "1", writeSample(t, "g.sdf", sampleText)}, 3},
		{"io", []string{"query", "-server", ts.URL, "no-such-file.sdf"}, 1},
		{"dead server", []string{"query", "-server", "http://127.0.0.1:1", writeSample(t, "g.sdf", sampleText)}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := runTool(t, tc.args...)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := exitCode(err); got != tc.want {
				t.Errorf("exitCode(%v) = %d, want %d", err, got, tc.want)
			}
		})
	}
}

// TestQueryUnavailableExitCode fakes the unavailability responses (a
// saturated queue is timing-dependent, a fake is not) and asserts exit
// code 6 plus the Retry-After contract.
func TestQueryUnavailableExitCode(t *testing.T) {
	for _, kind := range []string{"overloaded", "draining", "breaker-open"} {
		t.Run(kind, func(t *testing.T) {
			status := http.StatusTooManyRequests
			if kind != "overloaded" {
				status = http.StatusServiceUnavailable
			}
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(status)
				fmt.Fprintf(w, `{"error":"busy","kind":%q}`, kind)
			}))
			defer ts.Close()
			_, err := runTool(t, "query", "-server", ts.URL, writeSample(t, "g.sdf", sampleText))
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := exitCode(err); got != 6 {
				t.Errorf("exitCode(%v) = %d, want 6", err, got)
			}
		})
	}
}

// TestQueryAddrFallthrough lists a dead replica before a live one: the
// client must fall through the refused connection and get its answer.
func TestQueryAddrFallthrough(t *testing.T) {
	ts := startTestServer(t, serve.Options{})
	dead := "http://127.0.0.1:1"
	path := writeSample(t, "g.sdf", sampleText)

	out, err := runTool(t, "query", "-addr", dead+","+ts.URL, path)
	if err != nil {
		t.Fatalf("fallthrough query failed: %v", err)
	}
	if !strings.Contains(out, "iteration period: 5/2") {
		t.Errorf("fallthrough output:\n%s", out)
	}

	// An HTTP answer settles the request: a replica that responds with
	// its own verdict must not be retried on the next replica (which
	// here would succeed, masking the verdict).
	verdict := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"inconsistent","kind":"precondition"}`)
	}))
	defer verdict.Close()
	_, err = runTool(t, "query", "-addr", verdict.URL+","+ts.URL, path)
	if err == nil {
		t.Fatal("replica verdict was retried into a success on the next replica")
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("exitCode(%v) = %d, want the verdict's own 2", err, got)
	}
}

// TestQueryAddrExhaustionExitCode: every replica in the list down means
// unavailability, code 6 — distinct from a typo'd single -server (1).
func TestQueryAddrExhaustionExitCode(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	_, err := runTool(t, "query", "-addr", "http://127.0.0.1:1,http://127.0.0.1:2", path)
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := exitCode(err); got != 6 {
		t.Errorf("exitCode(%v) = %d, want 6", err, got)
	}
	var re *remoteError
	if !errors.As(err, &re) || re.kind != "unavailable" {
		t.Errorf("error = %v, want kind unavailable", err)
	}

	// An empty list is a usage error, not an unavailability.
	if _, err := runTool(t, "query", "-addr", " , ", path); err == nil || exitCode(err) != 1 {
		t.Errorf("empty -addr list: err %v, exit %d, want usage error exit 1", err, exitCode(err))
	}
}

// TestExitCodeTable is the full documented exit-code table, driven both
// by local sentinel errors and by remote error kinds.
func TestExitCodeTable(t *testing.T) {
	remote := func(kind string) error {
		return fmt.Errorf("query: %w", &remoteError{status: 500, kind: kind, msg: "x"})
	}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, 0},
		{"plain", errors.New("plain"), 1},
		{"usage", usageError(), 1},
		{"budget", fmt.Errorf("w: %w", sdfreduce.ErrBudgetExceeded), 3},
		{"canceled", fmt.Errorf("w: %w", sdfreduce.ErrCanceled), 3},
		{"engine", fmt.Errorf("w: %w", sdfreduce.ErrEngineFailed), 4},
		{"certificate", fmt.Errorf("w: %w", sdfreduce.ErrCertificateInvalid), 5},
		{"certificate wrapped in engine", fmt.Errorf("w: %w: %w", sdfreduce.ErrEngineFailed, sdfreduce.ErrCertificateInvalid), 5},
		{"budget beats certificate", fmt.Errorf("w: %w: %w", sdfreduce.ErrCertificateInvalid, sdfreduce.ErrBudgetExceeded), 3},
		{"inconsistent", fmt.Errorf("w: %w", sdfreduce.ErrInconsistent), 2},
		{"remote precondition", remote("precondition"), 2},
		{"remote budget", remote("budget"), 3},
		{"remote deadline", remote("deadline"), 3},
		{"remote canceled", remote("canceled"), 3},
		{"remote engine", remote("engine"), 4},
		{"remote disagreement", remote("disagreement"), 4},
		{"remote internal", remote("internal"), 4},
		{"remote certificate", remote("certificate"), 5},
		{"remote overloaded", remote("overloaded"), 6},
		{"remote draining", remote("draining"), 6},
		{"remote breaker-open", remote("breaker-open"), 6},
		{"remote unavailable", remote("unavailable"), 6},
		{"remote degraded", remote("degraded"), 6},
		{"remote bad-request", remote("bad-request"), 1},
		{"remote injection-disabled", remote("injection-disabled"), 1},
		{"remote too-large", remote("too-large"), 1},
		{"remote unknown kind", remote("???"), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitCode(tc.err); got != tc.want {
				t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestQueryMetrics scrapes a server that has seen traffic and asserts
// the summary carries the request counters and histogram quantiles.
func TestQueryMetrics(t *testing.T) {
	reg := obs.New()
	ts := startTestServer(t, serve.Options{Obs: reg})
	path := writeSample(t, "g.sdf", sampleText)

	// Two identical queries: a computed miss, then a cache hit.
	for i := 0; i < 2; i++ {
		if _, err := runTool(t, "query", "-server", ts.URL, path); err != nil {
			t.Fatal(err)
		}
	}
	out, err := runTool(t, "query", "-server", ts.URL, "-metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sdf_requests_total{outcome="served"} 2`,
		`sdf_cache_events_total{event="hit"} 1`,
		`sdf_cache_events_total{event="miss"} 1`,
		"latency (count, p50, p99):",
		`sdf_request_seconds{method="hedged"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "_bucket") || strings.Contains(out, "_sum") {
		t.Errorf("raw histogram samples leaked into the summary:\n%s", out)
	}

	// A graph argument alongside -metrics is a usage error.
	if _, err := runTool(t, "query", "-server", ts.URL, "-metrics", path); err == nil {
		t.Error("-metrics with a graph argument accepted")
	}

	// A server without a registry: the scrape fails loudly, not silently.
	bare := startTestServer(t, serve.Options{})
	if _, err := runTool(t, "query", "-server", bare.URL, "-metrics"); err == nil {
		t.Error("scrape of a registry-less server did not fail")
	}
}
