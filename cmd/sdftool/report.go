package main

import (
	"context"
	"fmt"
	"io"

	sdfreduce "repro"
)

// cmdReport writes a self-contained Markdown analysis report of the graph:
// structure, consistency, throughput through all applicable engines,
// latency, both HSDF conversions, and — when the name-based inference
// applies — the abstraction with its Theorem-1 bound.
func cmdReport(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	fmt.Fprintf(w, "# Analysis report: %s\n\n", g.Name())

	fmt.Fprintln(w, "## Structure")
	fmt.Fprintf(w, "- actors: %d\n- channels: %d\n- initial tokens: %d\n",
		g.NumActors(), g.NumChannels(), g.TotalInitialTokens())
	fmt.Fprintf(w, "- homogeneous: %v\n- strongly connected: %v\n", g.IsHSDF(), g.IsStronglyConnected())

	q, err := sdfreduce.RepetitionVector(g)
	if err != nil {
		fmt.Fprintf(w, "- **not consistent**: %v\n", err)
		return nil
	}
	var iterLen int64
	for _, v := range q {
		iterLen += v
	}
	fmt.Fprintf(w, "- consistent: yes (iteration length %d)\n", iterLen)
	if !sdfreduce.IsLive(g) {
		fmt.Fprintln(w, "- **deadlocks**: no complete iteration exists")
		return nil
	}
	fmt.Fprintln(w, "- live: yes")

	fmt.Fprintln(w, "\n## Repetition vector")
	for i, v := range q {
		fmt.Fprintf(w, "- %s: %d\n", g.Actor(sdfreduce.ActorID(i)).Name, v)
	}

	fmt.Fprintln(w, "\n## Throughput")
	methods := []sdfreduce.Method{sdfreduce.MethodMatrix, sdfreduce.MethodHSDF}
	if g.IsStronglyConnected() {
		methods = append(methods, sdfreduce.MethodStateSpace)
	}
	for _, m := range methods {
		tp, err := sdfreduce.ComputeThroughput(g, m)
		if err != nil {
			fmt.Fprintf(w, "- engine %v: error: %v\n", m, err)
			continue
		}
		if tp.Unbounded {
			fmt.Fprintf(w, "- engine %v: unbounded\n", m)
			continue
		}
		fmt.Fprintf(w, "- engine %v: iteration period **%v**\n", m, tp.Period)
	}

	if rep, err := sdfreduce.ComputeLatency(g); err == nil && g.TotalInitialTokens() > 0 {
		fmt.Fprintln(w, "\n## Latency")
		fmt.Fprintf(w, "- cold-start iteration makespan: %d\n", rep.Makespan)
		fmt.Fprintf(w, "- maximum token-to-token latency: %d\n", rep.MaxTokenLatency)
	}

	fmt.Fprintln(w, "\n## HSDF conversions")
	if _, tstats, err := sdfreduce.ConvertTraditional(g); err == nil {
		fmt.Fprintf(w, "- traditional: %d actors, %d channels, %d tokens\n",
			tstats.Actors, tstats.Edges, tstats.Tokens)
	}
	if _, r, nstats, err := sdfreduce.ConvertSymbolic(g); err == nil {
		n := r.NumTokens()
		fmt.Fprintf(w, "- novel (symbolic): %d actors (bound N(N+2) = %d for N = %d), %d channels, %d tokens\n",
			nstats.Actors(), n*(n+2), n, nstats.Edges, nstats.Tokens)
	}

	if ab, err := sdfreduce.InferAbstraction(g); err == nil && ab.N() > 1 {
		fmt.Fprintln(w, "\n## Abstraction")
		abstract, res, err := sdfreduce.Abstract(g, ab)
		if err == nil {
			fmt.Fprintf(w, "- %d actors grouped into %d abstract actors (N = %d)\n",
				g.NumActors(), abstract.NumActors(), res.N)
			if g.IsHSDF() {
				if err := sdfreduce.VerifyAbstractionConservative(g, ab); err == nil {
					fmt.Fprintln(w, "- conservativity: proved via the N-fold unfolding (Theorem 1)")
				} else {
					fmt.Fprintf(w, "- conservativity proof failed: %v\n", err)
				}
				if r, err := sdfreduce.MaxCycleMean(abstract); err == nil && r.HasCycle {
					if bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N); err == nil {
						fmt.Fprintf(w, "- abstract period %v, throughput bound τ(a) ≥ %v\n", r.CycleMean, bound)
					}
				}
			}
		}
	}
	return nil
}
