package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const reducibleText = `sdf mixed
actor A 2
actor B 3
actor C 1
actor D 7
chan A B 2 2 0
chan B C 2 4 0
chan C A 2 1 2
chan C A 2 1 8
chan C D 1 1 0
`

func TestReduceCommand(t *testing.T) {
	path := writeSample(t, "g.sdf", reducibleText)
	out, err := runTool(t, "reduce", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"reduce mixed:", "prune-redundant", "dead-actor", "chain-fusion",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reduce output missing %q:\n%s", want, out)
		}
	}
}

func TestReduceVerify(t *testing.T) {
	path := writeSample(t, "g.sdf", reducibleText)
	out, err := runTool(t, "reduce", "-verify", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lifted iteration period:") || !strings.Contains(out, "verified: reduction(") {
		t.Errorf("reduce -verify output missing lifted/verified lines:\n%s", out)
	}
	// The lifted answer must equal the direct engine's.
	direct, err := runTool(t, "throughput", "-method", "matrix", path)
	if err != nil {
		t.Fatal(err)
	}
	wantPeriod := ""
	for _, line := range strings.Split(direct, "\n") {
		if strings.HasPrefix(line, "iteration period: ") {
			wantPeriod = strings.Fields(line)[2]
		}
	}
	if wantPeriod == "" {
		t.Fatalf("no direct period in:\n%s", direct)
	}
	if !strings.Contains(out, "lifted iteration period: "+wantPeriod+" ") {
		t.Errorf("lifted period differs from direct %s:\n%s", wantPeriod, out)
	}
}

func TestReduceJSON(t *testing.T) {
	path := writeSample(t, "g.sdf", reducibleText)
	out, err := runTool(t, "reduce", "-json", "-verify", path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Graph   string   `json:"graph"`
		Steps   []string `json:"steps"`
		Exact   bool     `json:"exact"`
		Reduced struct {
			Actors int `json:"actors"`
		} `json:"reduced"`
		Verified bool   `json:"verified"`
		Period   string `json:"period"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if got.Graph != "mixed" || len(got.Steps) == 0 || !got.Exact || !got.Verified || got.Period == "" {
		t.Errorf("unexpected JSON: %+v", got)
	}
	if got.Reduced.Actors >= 4 {
		t.Errorf("graph did not shrink: %+v", got)
	}
}

func TestReduceRuleSelection(t *testing.T) {
	path := writeSample(t, "g.sdf", reducibleText)
	out, err := runTool(t, "reduce", "-rules", "prune-redundant", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "prune-redundant") || strings.Contains(out, "dead-actor") {
		t.Errorf("rule selection not honoured:\n%s", out)
	}
	if _, err := runTool(t, "reduce", "-rules", "no-such-rule", path); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestReduceEmit(t *testing.T) {
	path := writeSample(t, "g.sdf", reducibleText)
	out, err := runTool(t, "reduce", "-emit", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "sdf ") {
		t.Errorf("-emit did not print a graph:\n%s", out)
	}
	if strings.Contains(out, "actor D") {
		t.Errorf("dead actor survived in emitted graph:\n%s", out)
	}
}
