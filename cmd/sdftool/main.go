// Command sdftool is the command-line front end of the sdfreduce library:
// it loads timed SDF graphs in the native text, SDF3-style XML or JSON
// formats and runs the analyses and reductions of the DAC'09 paper.
//
// Usage:
//
//	sdftool <command> [flags] <graph file>
//
// Commands:
//
//	info        structural summary: actors, channels, tokens, consistency
//	rv          repetition vector
//	throughput  iteration period and per-actor throughput (-method
//	            matrix|statespace|hsdf|resilient|hedged; -verify certifies
//	            the result and re-checks it in exact arithmetic)
//	latency     iteration latency report
//	convert     SDF→HSDF conversion (-algo symbolic|traditional)
//	abstract    apply the name-based abstraction and report the bound
//	unfold      N-fold unfolding of a homogeneous graph (-n)
//	simulate    self-timed simulation (-iterations)
//	matrix      symbolic max-plus iteration matrix, eigenvalue, eigenvector
//	lint        model-level diagnostics (-json, -passes pass1,pass2)
//	reduce      drive the reduction rules to fixpoint (-rules r1,r2 picks
//	            and orders the rules; -emit prints the reduced graph;
//	            -json emits the trace as JSON; -verify analyses the
//	            reduced graph, lifts the answer and re-checks the full
//	            certificate chain against the original)
//	report      self-contained Markdown analysis report
//	bottleneck  channels on the critical cycle (where tokens buy speed)
//	buffers     throughput/buffer-size Pareto exploration (-maxsteps)
//	fmt         convert between formats (-to text|xml|json|dot)
//	query       analyse through a running sdfserved daemon (-server,
//	            -method, -health) or a replica list (-addr url1,url2,...
//	            tried in order, falling through dead replicas); server
//	            errors map onto the same exit codes as local analyses;
//	            -exact-only refuses brownout answers (a degraded server
//	            answers 429 instead of a certified bound or stale result)
//	sadf        worst-case throughput of an FSM-SADF model (scenario
//	            graphs + a finite-state machine over them): locally, or
//	            through a daemon/fleet router with -server; -verify
//	            re-checks the certificate against the local parse of the
//	            model, rebuilding it from the wire payload for remote
//	            answers so the proof survives any proxy hop
//	batch       analyse a multi-graph file in one POST /v1/batch round
//	            trip (-server, -deadline shared across the batch, -method,
//	            -budget and -timeout applied per item, -json for the raw
//	            result). The input is concatenated native text (each
//	            graph starts at its "sdf <name>" header) or JSON (a wire
//	            batch object sent verbatim, or a single graph). Every
//	            item gets its own table row — ok, bounded, degraded or
//	            item-error — and the exit code reflects the worst item,
//	            so one poisoned graph in a 100-item batch never hides
//	            the 99 answers
//
// Every command accepts -timeout (a wall-clock deadline such as 500ms)
// and -budget (a uniform work cap on states, firings, HSDF actors and
// tokens; 0 keeps the defaults, negative lifts every cap). A file name
// of "-" reads standard input; -format overrides the format inferred
// from the file extension.
//
// Exit codes:
//
//	0  success
//	1  usage or I/O error (including malformed server responses and a
//	   request body over the server's wire cap — "too-large" — which no
//	   retry can fix)
//	2  model precondition failed (lint precheck, inconsistent rates,
//	   deadlocking cycle, error-level lint diagnostics)
//	3  work budget exceeded or deadline/cancellation hit
//	4  internal engine failure (isolated panic, verified-engine
//	   disagreement)
//	5  certificate verification failed: an engine produced an answer
//	   whose witness did not survive the independent exact-arithmetic
//	   check
//	6  analysis service unavailable: the sdfserved daemon refused the
//	   request (overloaded, draining, browned out with -exact-only set,
//	   or the engine's circuit breaker is open), the sdfrouter fleet
//	   had no alive replica, or every replica in a -addr list was
//	   unreachable — retry later
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	sdfreduce "repro"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdftool:", err)
		os.Exit(exitCode(err))
	}
}

// errLintDiagnostics marks a lint run that reported error-level
// diagnostics, so the process exits with the precondition code.
var errLintDiagnostics = errors.New("error-level diagnostics")

// exitCode maps an error to the documented process exit code. Budget
// and deadline conditions are checked first: they are the actionable
// ones (raise -budget, raise -timeout), and an engine error that
// ultimately stems from an exceeded budget should report the budget.
// Certificate failures are checked before generic engine failures so a
// rejected witness keeps its own code even when wrapped in an engine
// error. Errors relayed from an sdfserved daemon (remoteError) carry
// the server's classification and map onto the same table.
func exitCode(err error) int {
	var re *remoteError
	var be *batchError
	switch {
	case err == nil:
		return 0
	case errors.As(err, &re):
		return re.exitCode()
	case errors.As(err, &be):
		return be.code
	case errors.Is(err, sdfreduce.ErrBudgetExceeded),
		errors.Is(err, sdfreduce.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return 3
	case errors.Is(err, sdfreduce.ErrCertificateInvalid):
		return 5
	case errors.Is(err, sdfreduce.ErrEngineFailed):
		return 4
	case isPrecondition(err):
		return 2
	default:
		return 1
	}
}

func isPrecondition(err error) bool {
	var pre *sdfreduce.PrecheckError
	return errors.As(err, &pre) ||
		errors.Is(err, sdfreduce.ErrInconsistent) ||
		errors.Is(err, sdfreduce.ErrDeadlockCycle) ||
		errors.Is(err, errLintDiagnostics)
}

// graphFunc is one sdftool command: it runs under the context built
// from the global -timeout/-budget flags.
type graphFunc func(context.Context, io.Writer, *sdfreduce.Graph) error

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "info":
		return withGraph(rest, out, cmdInfo, nil)
	case "rv":
		return withGraph(rest, out, cmdRV, nil)
	case "throughput":
		fs := flag.NewFlagSet("throughput", flag.ContinueOnError)
		method := fs.String("method", "matrix", "engine: matrix, statespace, hsdf, resilient or hedged")
		verifyF := fs.Bool("verify", false, "certify the result and re-check it with the independent exact-arithmetic checker")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdThroughput(ctx, w, g, *method, *verifyF)
		}, fs)
	case "latency":
		return withGraph(rest, out, cmdLatency, nil)
	case "convert":
		fs := flag.NewFlagSet("convert", flag.ContinueOnError)
		algo := fs.String("algo", "symbolic", "algorithm: symbolic (the paper's) or traditional")
		emit := fs.Bool("emit", false, "print the converted graph instead of its statistics")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdConvert(ctx, w, g, *algo, *emit)
		}, fs)
	case "abstract":
		fs := flag.NewFlagSet("abstract", flag.ContinueOnError)
		emit := fs.Bool("emit", false, "print the abstract graph instead of the analysis")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdAbstract(w, g, *emit)
		}, fs)
	case "unfold":
		fs := flag.NewFlagSet("unfold", flag.ContinueOnError)
		n := fs.Int("n", 2, "unfolding factor")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			u, err := sdfreduce.Unfold(g, *n)
			if err != nil {
				return err
			}
			return sdfreduce.WriteText(w, u)
		}, fs)
	case "simulate":
		fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
		iters := fs.Int64("iterations", 10, "number of graph iterations to simulate")
		traceF := fs.Bool("trace", false, "print every firing")
		gantt := fs.Bool("gantt", false, "render a textual Gantt chart")
		vcd := fs.String("vcd", "", "write a VCD waveform dump to this file")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdSimulate(ctx, w, g, *iters, *traceF, *gantt, *vcd)
		}, fs)
	case "lint":
		fs := flag.NewFlagSet("lint", flag.ContinueOnError)
		asJSON := fs.Bool("json", false, "emit the report as JSON")
		passes := fs.String("passes", "", "comma-separated pass names (default: all)")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdLint(w, g, *asJSON, *passes)
		}, fs)
	case "reduce":
		fs := flag.NewFlagSet("reduce", flag.ContinueOnError)
		rules := fs.String("rules", "", "comma-separated rule names in application order (default: the exact rules)")
		emit := fs.Bool("emit", false, "print the reduced graph instead of the summary")
		asJSON := fs.Bool("json", false, "emit the reduction trace as JSON")
		verifyF := fs.Bool("verify", false, "analyse the reduced graph, lift the answer and re-check the certificate chain against the original")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdReduce(ctx, w, g, *rules, *emit, *asJSON, *verifyF)
		}, fs)
	case "matrix":
		return withGraph(rest, out, cmdMatrix, nil)
	case "report":
		return withGraph(rest, out, cmdReport, nil)
	case "bottleneck":
		return withGraph(rest, out, cmdBottleneck, nil)
	case "buffers":
		fs := flag.NewFlagSet("buffers", flag.ContinueOnError)
		steps := fs.Int("maxsteps", 256, "maximum number of capacity increases")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return cmdBuffers(ctx, w, g, *steps)
		}, fs)
	case "fmt":
		fs := flag.NewFlagSet("fmt", flag.ContinueOnError)
		to := fs.String("to", "text", "output format: text, xml, json or dot")
		return withGraph(rest, out, func(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
			return writeAs(w, g, *to)
		}, fs)
	case "query":
		return cmdQuery(rest, out)
	case "sadf":
		return cmdSADF(rest, out)
	case "batch":
		return cmdBatch(rest, out)
	case "help", "-h", "--help":
		return usageError()
	default:
		return fmt.Errorf("unknown command %q (try 'sdftool help')", cmd)
	}
}

func usageError() error {
	return fmt.Errorf("usage: sdftool <info|rv|throughput|latency|convert|abstract|unfold|simulate|lint|reduce|matrix|report|bottleneck|buffers|fmt|query|sadf|batch> [flags] <graph file>")
}

// withGraph parses flags (when fs is non-nil), loads the graph named by
// the remaining argument, builds the analysis context from the global
// -timeout/-budget flags and invokes fn under it.
func withGraph(args []string, out io.Writer, fn graphFunc, fs *flag.FlagSet) error {
	if fs == nil {
		fs = flag.NewFlagSet("cmd", flag.ContinueOnError)
	}
	format := fs.String("format", "", "input format: text, xml or json (default: by extension)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the analysis (0 = none)")
	budget := fs.Int64("budget", 0, "uniform work cap on states/firings/actors/tokens (0 = defaults, negative = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one graph file argument")
	}
	g, err := loadGraph(fs.Arg(0), *format)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *budget != 0 {
		ctx = sdfreduce.WithBudget(ctx, sdfreduce.UniformBudget(*budget))
	}
	return fn(ctx, out, g)
}

func loadGraph(path, format string) (*sdfreduce.Graph, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".xml":
			format = "xml"
		case ".json":
			format = "json"
		default:
			format = "text"
		}
	}
	switch format {
	case "text":
		return sdfreduce.ReadText(r)
	case "xml":
		return sdfreduce.ReadXML(r)
	case "json":
		return sdfreduce.ReadJSON(r)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}

func writeAs(w io.Writer, g *sdfreduce.Graph, format string) error {
	switch format {
	case "text":
		return sdfreduce.WriteText(w, g)
	case "xml":
		return sdfreduce.WriteXML(w, g)
	case "json":
		return sdfreduce.WriteJSON(w, g)
	case "dot":
		return sdfreduce.WriteDOT(w, g)
	default:
		return fmt.Errorf("unknown output format %q", format)
	}
}

func cmdInfo(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	fmt.Fprintf(w, "graph:      %s\n", g.Name())
	fmt.Fprintf(w, "actors:     %d\n", g.NumActors())
	fmt.Fprintf(w, "channels:   %d\n", g.NumChannels())
	fmt.Fprintf(w, "tokens:     %d\n", g.TotalInitialTokens())
	fmt.Fprintf(w, "homogeneous: %v\n", g.IsHSDF())
	fmt.Fprintf(w, "connected:  %v\n", g.IsConnected())
	fmt.Fprintf(w, "strongly connected: %v\n", g.IsStronglyConnected())
	if q, err := sdfreduce.RepetitionVector(g); err != nil {
		fmt.Fprintf(w, "consistent: false (%v)\n", err)
	} else {
		var sum int64
		for _, v := range q {
			sum += v
		}
		fmt.Fprintf(w, "consistent: true\n")
		fmt.Fprintf(w, "iteration length: %d\n", sum)
		fmt.Fprintf(w, "live:       %v\n", sdfreduce.IsLive(g))
	}
	return nil
}

func cmdRV(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	q, err := sdfreduce.RepetitionVector(g)
	if err != nil {
		return err
	}
	for i, v := range q {
		fmt.Fprintf(w, "%-16s %d\n", g.Actor(sdfreduce.ActorID(i)).Name, v)
	}
	return nil
}

func cmdThroughput(ctx context.Context, w io.Writer, g *sdfreduce.Graph, methodName string, verified bool) error {
	var method sdfreduce.Method
	switch methodName {
	case "matrix":
		method = sdfreduce.MethodMatrix
	case "statespace":
		method = sdfreduce.MethodStateSpace
	case "hsdf":
		method = sdfreduce.MethodHSDF
	case "resilient":
		if verified {
			return fmt.Errorf("-verify is not supported with -method resilient (use hedged: it verifies every answer)")
		}
		return cmdThroughputResilient(ctx, w, g)
	case "hedged":
		return cmdThroughputHedged(ctx, w, g)
	default:
		return fmt.Errorf("unknown method %q (matrix, statespace, hsdf, resilient, hedged)", methodName)
	}
	if verified {
		tp, cert, err := sdfreduce.ComputeThroughputCertified(ctx, g, method)
		if err != nil {
			return err
		}
		printThroughput(w, g, tp, method.String())
		fmt.Fprintf(w, "verified: %s\n", cert)
		return nil
	}
	tp, err := sdfreduce.ComputeThroughputCtx(ctx, g, method)
	if err != nil {
		return err
	}
	printThroughput(w, g, tp, method.String())
	return nil
}

func cmdThroughputHedged(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	tp, rep, err := sdfreduce.ComputeThroughputHedged(ctx, g)
	if rep != nil {
		fmt.Fprintln(w, "engine race:")
		for _, line := range strings.Split(strings.TrimRight(rep.String(), "\n"), "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	if err != nil {
		return err
	}
	printThroughput(w, g, tp, rep.Winner.String())
	if cert := rep.Certificates[rep.Winner]; cert != nil {
		fmt.Fprintf(w, "verified: %s\n", cert)
	}
	return nil
}

func cmdThroughputResilient(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	tp, rep, err := sdfreduce.ComputeThroughputResilient(ctx, g)
	if rep != nil {
		fmt.Fprintln(w, "engine ladder:")
		for _, line := range strings.Split(strings.TrimRight(rep.String(), "\n"), "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	if err != nil {
		return err
	}
	printThroughput(w, g, tp, rep.Winner.String())
	return nil
}

func printThroughput(w io.Writer, g *sdfreduce.Graph, tp sdfreduce.Throughput, engine string) {
	if tp.Unbounded {
		fmt.Fprintln(w, "throughput: unbounded (no dependency cycle constrains the steady state)")
		return
	}
	fmt.Fprintf(w, "iteration period: %v (engine: %s)\n", tp.Period, engine)
	for i := 0; i < g.NumActors(); i++ {
		tau, err := tp.ActorThroughput(sdfreduce.ActorID(i))
		if err != nil {
			fmt.Fprintf(w, "  τ(%-12s) = ?\n", g.Actor(sdfreduce.ActorID(i)).Name)
			continue
		}
		fmt.Fprintf(w, "  τ(%-12s) = %v\n", g.Actor(sdfreduce.ActorID(i)).Name, tau)
	}
}

func cmdLatency(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	rep, err := sdfreduce.ComputeLatencyCtx(ctx, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "iteration makespan:  %d\n", rep.Makespan)
	fmt.Fprintf(w, "max token latency:   %d (token %d -> token %d)\n",
		rep.MaxTokenLatency, rep.CriticalSource, rep.CriticalTarget)
	for k, p := range rep.TokenProduction {
		fmt.Fprintf(w, "  token %3d produced at %d\n", k, p)
	}
	return nil
}

func cmdConvert(ctx context.Context, w io.Writer, g *sdfreduce.Graph, algo string, emit bool) error {
	switch algo {
	case "symbolic":
		h, r, stats, err := sdfreduce.ConvertSymbolicCtx(ctx, g)
		if err != nil {
			return err
		}
		if emit {
			return sdfreduce.WriteText(w, h)
		}
		fmt.Fprintf(w, "novel conversion of %s:\n", g.Name())
		fmt.Fprintf(w, "  initial tokens N:  %d\n", r.NumTokens())
		fmt.Fprintf(w, "  actors:            %d (matrix %d, mux %d, demux %d; bound N(N+2) = %d)\n",
			stats.Actors(), stats.MatrixActors, stats.MuxActors, stats.DemuxActors,
			r.NumTokens()*(r.NumTokens()+2))
		fmt.Fprintf(w, "  channels:          %d\n", stats.Edges)
		fmt.Fprintf(w, "  tokens:            %d\n", stats.Tokens)
		if stats.DroppedEntries > 0 {
			fmt.Fprintf(w, "  dropped non-recurrent coefficients: %d\n", stats.DroppedEntries)
		}
		return nil
	case "traditional":
		h, stats, err := sdfreduce.ConvertTraditionalCtx(ctx, g)
		if err != nil {
			return err
		}
		if emit {
			return sdfreduce.WriteText(w, h)
		}
		fmt.Fprintf(w, "traditional conversion of %s:\n", g.Name())
		fmt.Fprintf(w, "  actors:   %d (= iteration length)\n", stats.Actors)
		fmt.Fprintf(w, "  channels: %d\n", stats.Edges)
		fmt.Fprintf(w, "  tokens:   %d\n", stats.Tokens)
		return nil
	default:
		return fmt.Errorf("unknown algorithm %q (symbolic, traditional)", algo)
	}
}

func cmdAbstract(w io.Writer, g *sdfreduce.Graph, emit bool) error {
	ab, err := sdfreduce.InferAbstraction(g)
	if err != nil {
		return fmt.Errorf("inferring abstraction: %w", err)
	}
	abstract, res, err := sdfreduce.Abstract(g, ab)
	if err != nil {
		return err
	}
	if emit {
		return sdfreduce.WriteText(w, abstract)
	}
	fmt.Fprintf(w, "abstraction of %s: %d actors -> %d abstract actors (N = %d, pruned %d channels)\n",
		g.Name(), g.NumActors(), abstract.NumActors(), res.N, res.PrunedChannels)
	if g.IsHSDF() {
		if err := sdfreduce.VerifyAbstractionConservative(g, ab); err != nil {
			return fmt.Errorf("conservativity proof failed: %w", err)
		}
		fmt.Fprintln(w, "conservativity: proved via N-fold unfolding (Theorem 1)")
		r, err := sdfreduce.MaxCycleMean(abstract)
		if err != nil {
			return err
		}
		if r.HasCycle {
			bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "abstract period:  %v\n", r.CycleMean)
			fmt.Fprintf(w, "throughput bound: τ(a) >= %v for every actor\n", bound)
		}
	} else {
		fmt.Fprintln(w, "conservativity: multirate graph; validate empirically (see 'simulate')")
	}
	return nil
}

func cmdSimulate(ctx context.Context, w io.Writer, g *sdfreduce.Graph, iterations int64, traceFirings, gantt bool, vcdPath string) error {
	tr, err := sdfreduce.SimulateCtx(ctx, g, iterations)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "simulated %d iterations, %d firings, horizon %d\n",
		iterations, len(tr.Firings), tr.Horizon)
	if iterations >= 2 {
		if p, err := sdfreduce.MeasuredPeriod(tr, iterations); err == nil {
			fmt.Fprintf(w, "measured iteration period: %v\n", p)
		}
	}
	if traceFirings {
		for _, f := range tr.Firings {
			fmt.Fprintf(w, "  %6d..%-6d %s #%d\n", f.Start, f.End, g.Actor(f.Actor).Name, f.Index)
		}
	}
	if gantt {
		if err := trace.WriteGantt(w, tr, trace.GanttOptions{}); err != nil {
			return err
		}
	}
	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteVCD(f, tr); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote VCD waveform to %s\n", vcdPath)
	}
	return nil
}

func cmdBuffers(ctx context.Context, w io.Writer, g *sdfreduce.Graph, maxSteps int) error {
	res, err := sdfreduce.ExploreBuffersCtx(ctx, g, sdfreduce.BufferOptions{MaxSteps: maxSteps})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unbounded-buffer iteration period: %v\n", res.UnboundedPeriod)
	fmt.Fprintf(w, "%-14s %-14s %s\n", "total buffer", "period", "capacities")
	for _, p := range res.Pareto {
		fmt.Fprintf(w, "%-14d %-14v", p.Total, p.Period)
		for _, id := range sdfreduce.DataChannels(g) {
			if cap, ok := p.Capacities[id]; ok {
				c := g.Channel(id)
				fmt.Fprintf(w, " %s->%s:%d", g.Actor(c.Src).Name, g.Actor(c.Dst).Name, cap)
			}
		}
		fmt.Fprintln(w)
	}
	if res.Converged {
		fmt.Fprintln(w, "converged: the staircase reaches the unbounded-buffer period")
	} else {
		fmt.Fprintln(w, "not converged within the step budget")
	}
	return nil
}

func cmdLint(w io.Writer, g *sdfreduce.Graph, asJSON bool, passes string) error {
	var opts sdfreduce.LintOptions
	if passes != "" {
		opts.Passes = strings.Split(passes, ",")
	}
	rep, err := sdfreduce.Lint(g, opts)
	if err != nil {
		return err
	}
	if asJSON {
		if err := rep.WriteJSON(w); err != nil {
			return err
		}
	} else {
		fmt.Fprint(w, rep)
	}
	if n := rep.Count(sdfreduce.LintError); n > 0 {
		return fmt.Errorf("lint: %d %w", n, errLintDiagnostics)
	}
	return nil
}

func cmdMatrix(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	r, err := sdfreduce.SymbolicIteration(g)
	if err != nil {
		return err
	}
	n := r.NumTokens()
	fmt.Fprintf(w, "initial tokens: %d\n", n)
	fmt.Fprintln(w, "iteration matrix (row k lists the dependencies of new token k):")
	fmt.Fprint(w, r.Matrix)
	lam, ok, err := r.Matrix.Eigenvalue()
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintln(w, "eigenvalue: none (acyclic dependency structure; throughput unbounded)")
		return nil
	}
	fmt.Fprintf(w, "eigenvalue (iteration period): %v\n", lam)
	v, scale, err := r.Matrix.Eigenvector()
	if err != nil {
		fmt.Fprintf(w, "eigenvector: %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "eigenvector (token offsets, scaled by %d): %v\n", scale, v)
	fmt.Fprintln(w, "(release token k at offset v_k/scale for an immediately periodic schedule)")
	return nil
}

func cmdBottleneck(ctx context.Context, w io.Writer, g *sdfreduce.Graph) error {
	res, err := sdfreduce.FindBottleneck(g)
	if err != nil {
		return err
	}
	if res.Unbounded {
		fmt.Fprintln(w, "no bottleneck: throughput is unbounded")
		return nil
	}
	fmt.Fprintf(w, "iteration period: %v\n", res.Period)
	fmt.Fprintf(w, "critical tokens:  %v\n", res.CriticalTokens)
	fmt.Fprintln(w, "critical channels (tokens here pace the whole graph):")
	for _, id := range res.CriticalChannels {
		c := g.Channel(id)
		fmt.Fprintf(w, "  %s -> %s (tokens: %d)\n",
			g.Actor(c.Src).Name, g.Actor(c.Dst).Name, c.Initial)
	}
	return nil
}
