package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/serve"
)

// cmdBatch analyses many graphs in one POST /v1/batch round trip against
// a running sdfserved daemon or sdfrouter fleet. The input is a
// multi-graph file: either concatenated native text (each graph starts
// at its "sdf <name>" header) or JSON — a ready-made batch object
// ({"items": [...]}) sent verbatim, or a single JSON graph treated as a
// one-item batch. The per-item results are rendered as a table, and the
// process exit code reflects the worst item: a 97-ok/3-error batch
// prints 100 rows and exits with the worst failing item's code.
func cmdBatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "base URL of the sdfserved daemon or sdfrouter")
	deadline := fs.Duration("deadline", 0, "shared wall-clock budget for the whole batch (0 = server default)")
	method := fs.String("method", "hedged", "engine for every item: hedged, matrix, statespace or hsdf")
	timeout := fs.Duration("timeout", 0, "per-item analysis deadline (0 = the server's carved share of the batch deadline)")
	budget := fs.Int64("budget", 0, "uniform work cap for every item (0 = defaults, negative = unlimited)")
	format := fs.String("format", "", "input format: text or json (default: by extension)")
	asJSON := fs.Bool("json", false, "emit the raw batch result JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one multi-graph file argument")
	}
	payload, err := loadBatch(fs.Arg(0), *format, *method, *timeout, *budget)
	if err != nil {
		return err
	}
	if *deadline > 0 {
		payload.DeadlineMS = deadline.Milliseconds()
	}

	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	res, raw, err := postBatch(strings.TrimRight(*server, "/"), body, *deadline)
	if err != nil {
		return err
	}
	if *asJSON {
		_, err := out.Write(raw)
		return err
	}
	printBatch(out, *server, res)
	if code := worstExitCode(res); code != 0 {
		return &batchError{code: code, ok: res.OK, errs: res.Errors}
	}
	return nil
}

// loadBatch reads the multi-graph input file into the batch wire form,
// applying the uniform per-item flags. Items are shipped unvalidated:
// per-item fault isolation is the server's contract, so a malformed
// graph becomes that item's error entry instead of a local refusal.
func loadBatch(path, format, method string, timeout time.Duration, budget int64) (*serve.BatchRequestPayload, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if format == "" {
		if strings.ToLower(filepath.Ext(path)) == ".json" {
			format = "json"
		} else {
			format = "text"
		}
	}
	item := func(p serve.RequestPayload) serve.RequestPayload {
		p.Method = method
		p.TimeoutMS = timeout.Milliseconds()
		p.Budget = budget
		return p
	}
	switch format {
	case "json":
		// A ready-made batch object is sent verbatim (its items keep
		// their own methods and budgets); anything else must be a single
		// JSON graph, wrapped as a one-item batch.
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var bp serve.BatchRequestPayload
		if err := dec.Decode(&bp); err == nil && !dec.More() && len(bp.Items) > 0 {
			return &bp, nil
		}
		return &serve.BatchRequestPayload{
			Items: []serve.RequestPayload{item(serve.RequestPayload{Graph: json.RawMessage(data)})},
		}, nil
	case "text":
		chunks := splitGraphsText(string(data))
		if len(chunks) == 0 {
			return nil, fmt.Errorf("%s: no graphs found", path)
		}
		bp := &serve.BatchRequestPayload{Items: make([]serve.RequestPayload, len(chunks))}
		for i, c := range chunks {
			bp.Items[i] = item(serve.RequestPayload{GraphText: c})
		}
		return bp, nil
	default:
		return nil, fmt.Errorf("unknown input format %q (text, json)", format)
	}
}

// splitGraphsText splits concatenated native text into one chunk per
// graph. The text reader itself merges every directive it sees into a
// single graph, so the batch boundary is drawn here: a new chunk starts
// at each "sdf <name>" header once the current chunk holds directives.
// Comments and blank lines between graphs attach to the graph that
// follows them.
func splitGraphsText(data string) []string {
	var chunks []string
	var cur []string
	directives := false
	flush := func() {
		if directives {
			chunks = append(chunks, strings.Join(cur, "\n")+"\n")
		}
		cur, directives = nil, false
	}
	for _, line := range strings.Split(data, "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "sdf ") && directives {
			flush()
		}
		cur = append(cur, line)
		if t != "" && !strings.HasPrefix(t, "#") {
			directives = true
		}
	}
	flush()
	return chunks
}

// postBatch performs the wire round trip. Batch-level refusals (a
// draining router, a dark fleet, malformed batch JSON) arrive as error
// payloads and map onto the usual exit-code table via remoteError; a
// processed batch is always HTTP 200 with per-item outcomes inside.
func postBatch(server string, body []byte, deadline time.Duration) (*serve.BatchResultPayload, []byte, error) {
	client := &http.Client{Timeout: deadline + 60*time.Second}
	resp, err := client.Post(server+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, &transportError{addr: server, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return nil, nil, &transportError{addr: server, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var ep serve.ErrorPayload
		if err := json.Unmarshal(data, &ep); err != nil || ep.Kind == "" {
			return nil, nil, fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return nil, nil, &remoteError{status: resp.StatusCode, kind: ep.Kind, msg: ep.Error}
	}
	var res serve.BatchResultPayload
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, nil, fmt.Errorf("server: malformed batch result: %w", err)
	}
	return &res, data, nil
}

// printBatch renders the per-item table.
func printBatch(out io.Writer, server string, res *serve.BatchResultPayload) {
	fmt.Fprintf(out, "batch:      %s (%s: %d ok, %d error)\n", server, res.Kind, res.OK, res.Errors)
	fmt.Fprintf(out, "  %4s  %-16s %-11s %-12s %-11s %s\n", "#", "graph", "status", "period", "engine", "detail")
	for _, it := range res.Items {
		name := it.Graph
		if name == "" {
			name = "-"
		}
		period, engine, detail := "-", "-", ""
		switch {
		case it.Error != nil:
			detail = it.Error.Kind + ": " + it.Error.Error
		case it.Result != nil:
			r := it.Result
			engine = r.Engine
			switch {
			case r.Unbounded:
				period = "unbounded"
			case it.Status == "bounded":
				period = "<=" + r.Period
			default:
				period = r.Period
			}
			switch {
			case r.Verified:
				detail = "verified: " + r.Certificate
			case r.Degradation != "":
				detail = "degraded: " + r.Degradation
			}
			if r.Cached {
				detail += " (cached)"
			}
		}
		fmt.Fprintf(out, "  %4d  %-16s %-11s %-12s %-11s %s\n",
			it.Index, name, it.Status, period, engine, strings.TrimSpace(detail))
	}
}

// batchError carries a processed batch's worst-item exit code through
// main's error path: the batch round trip succeeded, but at least one
// item failed and the process must say so.
type batchError struct {
	code     int
	ok, errs int
}

func (e *batchError) Error() string {
	return fmt.Sprintf("batch partial: %d items failed (%d ok); exit reflects the worst item", e.errs, e.ok)
}

// worstExitCode folds a processed batch onto one process exit code: the
// maximum of every entry's own code, so a single strangled item in an
// otherwise clean batch is visible to scripts.
func worstExitCode(res *serve.BatchResultPayload) int {
	worst := batchExitCode(res.Kind, "")
	for _, it := range res.Items {
		kind := ""
		if it.Error != nil {
			kind = it.Error.Kind
		}
		if c := batchExitCode(it.Status, kind); c > worst {
			worst = c
		}
	}
	return worst
}

// batchExitCode maps one batch wire classification — an item status
// from serve.ItemStatusOf or a batch kind from serve.BatchKindOf — onto
// the exit-code table. The sdfvet kindmap check verifies every batch
// wire string has an explicit case here, exactly as it does for error
// kinds in remoteError.exitCode (which this table delegates to for
// item-error entries, so item failure kinds inherit the documented
// codes: a budget-strangled item exits 3, a panicking one 4).
func batchExitCode(status, kind string) int {
	switch status {
	case "ok":
		return 0
	case "bounded", "degraded":
		// Brownout answers are successes: certified bounds and stale
		// results are the contract under pressure, not failures.
		return 0
	case "complete":
		return 0
	case "partial":
		// The batch-level kind only says "look at the items"; the
		// per-item entries carry the codes that worstExitCode folds.
		return 0
	case "item-error":
		return (&remoteError{kind: kind}).exitCode()
	default: // unknown statuses from future servers
		return 1
	}
}
