package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sdfreduce "repro"
)

const sampleText = `sdf demo
actor A 2
actor B 3
chan A B 2 1 0
chan B A 1 2 4
`

// writeSample writes the sample graph to a temp file and returns its path.
func writeSample(t *testing.T, name, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestInfo(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "info", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"graph:      demo", "actors:     2", "channels:   2",
		"consistent: true", "iteration length: 3", "live:       true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestRV(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "rv", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "2") {
		t.Errorf("rv output:\n%s", out)
	}
}

func TestThroughputMethods(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	for _, m := range []string{"matrix", "statespace", "hsdf"} {
		out, err := runTool(t, "throughput", "-method", m, path)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(out, "iteration period: 5/2") {
			t.Errorf("%s output:\n%s", m, out)
		}
	}
	if _, err := runTool(t, "throughput", "-method", "bogus", path); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestLatency(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "latency", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "iteration makespan:") {
		t.Errorf("latency output:\n%s", out)
	}
}

func TestConvert(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "convert", "-algo", "symbolic", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "initial tokens N:  4") {
		t.Errorf("convert output:\n%s", out)
	}
	out, err = runTool(t, "convert", "-algo", "traditional", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actors:   3") {
		t.Errorf("convert output:\n%s", out)
	}
	// -emit prints a parseable graph.
	out, err = runTool(t, "convert", "-algo", "symbolic", "-emit", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "sdf ") {
		t.Errorf("emitted graph:\n%s", out)
	}
	if _, err := runTool(t, "convert", "-algo", "bogus", path); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestAbstractCommand(t *testing.T) {
	// A regular homogeneous graph the name-based inference can handle.
	src := `sdf reg
actor A1 2
actor A2 5
actor B1 4
actor B2 4
chan A1 A2 1 1 0
chan A2 A1 1 1 1
chan A1 B1 1 1 0
chan A2 B2 1 1 0
chan B1 B2 1 1 0
chan B2 A1 1 1 1
`
	path := writeSample(t, "reg.sdf", src)
	out, err := runTool(t, "abstract", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 abstract actors", "conservativity: proved", "throughput bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("abstract output missing %q:\n%s", want, out)
		}
	}
	out, err = runTool(t, "abstract", "-emit", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actor A 5") {
		t.Errorf("emitted abstract graph:\n%s", out)
	}
}

func TestUnfoldCommand(t *testing.T) {
	src := "sdf u\nactor A 1\nchan A A 1 1 1\n"
	path := writeSample(t, "u.sdf", src)
	out, err := runTool(t, "unfold", "-n", "3", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A_u0") || !strings.Contains(out, "A_u2") {
		t.Errorf("unfold output:\n%s", out)
	}
}

func TestSimulateCommand(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "simulate", "-iterations", "4", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulated 4 iterations", "measured iteration period", "Producer"} {
		if want == "Producer" {
			want = "A #0" // trace lines carry actor names
		}
		if !strings.Contains(out, want) {
			t.Errorf("simulate output missing %q:\n%s", want, out)
		}
	}
}

func TestFmtConversions(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	for _, to := range []string{"text", "xml", "json", "dot"} {
		out, err := runTool(t, "fmt", "-to", to, path)
		if err != nil {
			t.Fatalf("to=%s: %v", to, err)
		}
		if len(out) == 0 {
			t.Errorf("to=%s: empty output", to)
		}
	}
	if _, err := runTool(t, "fmt", "-to", "bogus", path); err == nil {
		t.Error("bogus output format accepted")
	}
	// Round trip through XML: fmt -to xml, then read back with -format.
	xmlOut, err := runTool(t, "fmt", "-to", "xml", path)
	if err != nil {
		t.Fatal(err)
	}
	xmlPath := writeSample(t, "g.xml", xmlOut)
	out, err := runTool(t, "info", xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "consistent: true") {
		t.Errorf("xml round trip info:\n%s", out)
	}
	// JSON with explicit -format override on a .sdf extension.
	jsonOut, err := runTool(t, "fmt", "-to", "json", path)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := writeSample(t, "weird.sdf", jsonOut)
	if _, err := runTool(t, "info", "-format", "json", jsonPath); err != nil {
		t.Errorf("explicit -format json failed: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runTool(t); err == nil {
		t.Error("no arguments accepted")
	}
	if _, err := runTool(t, "nonsense"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := runTool(t, "info"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := runTool(t, "info", "/does/not/exist.sdf"); err == nil {
		t.Error("missing file path accepted")
	}
	bad := writeSample(t, "bad.sdf", "actor X")
	if _, err := runTool(t, "info", bad); err == nil {
		t.Error("malformed graph accepted")
	}
	if _, err := runTool(t, "help"); err == nil {
		t.Error("help should return the usage error")
	}
}

func TestInconsistentGraphInfo(t *testing.T) {
	src := "sdf bad\nactor A 1\nactor B 1\nchan A B 1 1 0\nchan A B 2 1 0\n"
	path := writeSample(t, "bad.sdf", src)
	out, err := runTool(t, "info", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "consistent: false") {
		t.Errorf("info output:\n%s", out)
	}
}

func TestBuffersCommand(t *testing.T) {
	src := `sdf pc
actor P 1
actor C 10
chan P P 1 1 1
chan C C 1 1 1
chan P C 1 1 0
`
	path := writeSample(t, "pc.sdf", src)
	out, err := runTool(t, "buffers", "-maxsteps", "32", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"unbounded-buffer iteration period: 10", "converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("buffers output missing %q:\n%s", want, out)
		}
	}
	// A graph with unbounded throughput is rejected.
	free := writeSample(t, "free.sdf", "sdf f\nactor A 1\nactor B 1\nchan A B 1 1 0\n")
	if _, err := runTool(t, "buffers", free); err == nil {
		t.Error("unbounded graph accepted by buffers")
	}
}

func TestMatrixCommand(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "matrix", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"initial tokens: 4", "eigenvalue (iteration period): 5/2", "eigenvector"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
	// Acyclic case.
	pipe := writeSample(t, "pipe.sdf", "sdf p\nactor A 1\nactor B 1\nchan A B 1 1 0\n")
	out, err = runTool(t, "matrix", pipe)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "initial tokens: 0") {
		t.Errorf("matrix output:\n%s", out)
	}
}

func TestSimulateGanttAndVCD(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "simulate", "-iterations", "6", "-gantt", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "time 0 ..") || !strings.Contains(out, "A |") {
		t.Errorf("gantt output missing:\n%s", out)
	}
	vcdPath := filepath.Join(t.TempDir(), "out.vcd")
	out, err = runTool(t, "simulate", "-iterations", "4", "-vcd", vcdPath, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote VCD waveform") {
		t.Errorf("vcd confirmation missing:\n%s", out)
	}
	data, err := os.ReadFile(vcdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "$enddefinitions") {
		t.Error("VCD file malformed")
	}
}

func TestReportCommand(t *testing.T) {
	src := `sdf reg
actor A1 2
actor A2 5
actor B1 4
actor B2 4
chan A1 A2 1 1 0
chan A2 A1 1 1 1
chan A1 B1 1 1 0
chan A2 B2 1 1 0
chan B1 B2 1 1 0
chan B2 A1 1 1 1
`
	path := writeSample(t, "reg.sdf", src)
	out, err := runTool(t, "report", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Analysis report: reg", "## Structure", "## Throughput",
		"## HSDF conversions", "## Abstraction", "Theorem 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Inconsistent graph: the report stops after saying so.
	bad := writeSample(t, "bad.sdf", "sdf b\nactor A 1\nactor B 1\nchan A B 1 1 0\nchan A B 2 1 0\n")
	out, err = runTool(t, "report", bad)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not consistent") {
		t.Errorf("report missing inconsistency note:\n%s", out)
	}
	// Deadlocked graph.
	dead := writeSample(t, "dead.sdf", "sdf d\nactor A 1\nactor B 1\nchan A B 1 1 0\nchan B A 1 1 0\n")
	out, err = runTool(t, "report", dead)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deadlocks") {
		t.Errorf("report missing deadlock note:\n%s", out)
	}
}

func TestBottleneckCommand(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "bottleneck", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "iteration period: 5/2") || !strings.Contains(out, "critical channels") {
		t.Errorf("bottleneck output:\n%s", out)
	}
	pipe := writeSample(t, "pipe.sdf", "sdf p\nactor A 1\nactor B 1\nchan A B 1 1 0\n")
	out, err = runTool(t, "bottleneck", pipe)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unbounded") {
		t.Errorf("bottleneck output:\n%s", out)
	}
}

const inconsistentText = `sdf bad
actor A 1
actor B 1
chan A B 1 1 0
chan A B 2 1 0
`

const deadlockedText = `sdf dead
actor A 1
actor B 1
chan A B 1 1 0
chan B A 1 1 0
`

func TestLintCommand(t *testing.T) {
	healthy := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "lint", healthy)
	if err != nil {
		t.Fatalf("lint on healthy graph: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 errors") {
		t.Errorf("lint output:\n%s", out)
	}

	bad := writeSample(t, "bad.sdf", inconsistentText)
	out, err = runTool(t, "lint", bad)
	if err == nil {
		t.Fatalf("lint accepted inconsistent graph:\n%s", out)
	}
	if !strings.Contains(out, "consistency") || !strings.Contains(out, "error") {
		t.Errorf("lint output:\n%s", out)
	}

	dead := writeSample(t, "dead.sdf", deadlockedText)
	out, err = runTool(t, "lint", dead)
	if err == nil {
		t.Fatalf("lint accepted deadlocked graph:\n%s", out)
	}
	if !strings.Contains(out, "deadlock") {
		t.Errorf("lint output:\n%s", out)
	}
}

func TestLintJSON(t *testing.T) {
	for name, contents := range map[string]string{
		"bad.sdf": inconsistentText, "dead.sdf": deadlockedText,
	} {
		path := writeSample(t, name, contents)
		out, err := runTool(t, "lint", "-json", path)
		if err == nil {
			t.Fatalf("%s: lint -json reported no error:\n%s", name, out)
		}
		var rep struct {
			Graph       string `json:"graph"`
			Diagnostics []struct {
				Pass     string `json:"pass"`
				Severity string `json:"severity"`
				Msg      string `json:"msg"`
			} `json:"diagnostics"`
		}
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatalf("%s: lint -json emitted invalid JSON: %v\n%s", name, err, out)
		}
		errs := 0
		for _, d := range rep.Diagnostics {
			if d.Severity == "error" {
				errs++
			}
		}
		if errs == 0 {
			t.Errorf("%s: no error-level diagnostics in JSON:\n%s", name, out)
		}
	}
}

func TestLintPassSelection(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "lint", "-passes", "abstraction", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[abstraction]") {
		t.Errorf("lint -passes abstraction output:\n%s", out)
	}
	if strings.Contains(out, "[consistency]") {
		t.Errorf("unselected pass ran:\n%s", out)
	}
	if _, err := runTool(t, "lint", "-passes", "bogus", path); err == nil {
		t.Error("unknown pass accepted")
	}
}

func TestPrecheckWiredIntoFacadeCommands(t *testing.T) {
	bad := writeSample(t, "bad.sdf", inconsistentText)
	dead := writeSample(t, "dead.sdf", deadlockedText)
	for _, args := range [][]string{
		{"throughput", bad},
		{"latency", dead},
		{"convert", "-algo", "symbolic", dead},
		{"convert", "-algo", "traditional", bad},
	} {
		if _, err := runTool(t, args...); err == nil {
			t.Errorf("%v accepted unsound graph", args)
		}
	}
}

// explosiveText is a consistent, live chain whose iteration length
// Σq = 1 + 2000 + 4_000_000 exceeds 10^6: the traditional conversion
// is inadmissible under the default budget, while the matrix engine
// (three initial tokens) answers easily.
const explosiveText = `sdf boom
actor A 1
actor B 1
actor C 1
chan A A 1 1 1
chan B B 1 1 1
chan C C 1 1 1
chan A B 2000 1 0
chan B C 2000 1 0
`

// hugeIterText pushes the iteration length to ~17M firings so that even
// the symbolic iteration takes well over any sub-second deadline.
const hugeIterText = `sdf huge
actor A 1
actor B 1
actor C 1
actor D 1
actor E 1
chan A A 1 1 1
chan B B 1 1 1
chan C C 1 1 1
chan D D 1 1 1
chan E E 1 1 1
chan A B 64 1 0
chan B C 64 1 0
chan C D 64 1 0
chan D E 64 1 0
`

func TestExitCodes(t *testing.T) {
	healthy := writeSample(t, "g.sdf", sampleText)
	bad := writeSample(t, "bad.sdf", inconsistentText)
	boom := writeSample(t, "boom.sdf", explosiveText)
	huge := writeSample(t, "huge.sdf", hugeIterText)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"info", healthy}, 0},
		{"usage", []string{"nonsense"}, 1},
		{"missing-file", []string{"info", "/does/not/exist.sdf"}, 1},
		{"precondition-throughput", []string{"throughput", bad}, 2},
		{"precondition-lint", []string{"lint", bad}, 2},
		{"budget-traditional", []string{"convert", "-algo", "traditional", boom}, 3},
		{"budget-uniform", []string{"simulate", "-budget", "1000", "-iterations", "1", huge}, 3},
		{"deadline-statespace", []string{"throughput", "-method", "statespace", "-timeout", "50ms", "-budget", "-1", huge}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			_, err := runTool(t, tc.args...)
			if got := exitCode(err); got != tc.want {
				t.Errorf("exitCode(%v) = %d, want %d", err, got, tc.want)
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("command took %v; budget/deadline enforcement should be fast", d)
			}
		})
	}
}

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("plain"), 1},
		{fmt.Errorf("wrap: %w", sdfreduce.ErrBudgetExceeded), 3},
		{fmt.Errorf("wrap: %w", sdfreduce.ErrCanceled), 3},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), 3},
		{fmt.Errorf("wrap: %w", sdfreduce.ErrEngineFailed), 4},
		{fmt.Errorf("wrap: %w", sdfreduce.ErrInconsistent), 2},
		{fmt.Errorf("wrap: %w", sdfreduce.ErrDeadlockCycle), 2},
		{fmt.Errorf("3 %w", errLintDiagnostics), 2},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestThroughputResilient(t *testing.T) {
	healthy := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "throughput", "-method", "resilient", healthy)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine ladder:", "matrix", "answered", "iteration period: 5/2"} {
		if !strings.Contains(out, want) {
			t.Errorf("resilient output missing %q:\n%s", want, out)
		}
	}

	// On the explosive graph the matrix engine still answers while the
	// HSDF rung is skipped by the static size estimate.
	boom := writeSample(t, "boom.sdf", explosiveText)
	out, err = runTool(t, "throughput", "-method", "resilient", boom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"matrix", "answered", "skipped"} {
		if !strings.Contains(out, want) {
			t.Errorf("resilient output missing %q:\n%s", want, out)
		}
	}
}

func TestTimeoutFlagOnHealthyGraph(t *testing.T) {
	// A generous deadline must not disturb a fast analysis.
	healthy := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "throughput", "-timeout", "30s", healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "iteration period: 5/2") {
		t.Errorf("output:\n%s", out)
	}
}
