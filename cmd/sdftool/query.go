package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	sdfreduce "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// remoteError is an analysis failure relayed by an sdfserved daemon.
// It preserves the server's stable error classification (the "kind"
// field of the wire error payload) so exitCode can map a remote failure
// onto the same exit-code table as a local one.
type remoteError struct {
	status int    // HTTP status
	kind   string // serve.KindOf classification
	msg    string // server-side error text
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("server: %s (kind %s, http %d)", e.msg, e.kind, e.status)
}

// exitCode maps the server's error kind onto sdftool's exit codes.
// Unavailability kinds get their own code, 6: the request was fine, the
// service was not, and the caller should retry rather than touch the
// model. "unavailable" covers both the router's fleet-wide refusals and
// an exhausted client-side -addr fallthrough; "degraded" is the
// brownout ladder refusing an -exact-only request (retry when the
// pressure clears). "too-large" is a permanent verdict on this request
// — shrink the graph, retrying cannot help — so it shares code 1 with
// the other request-shaped failures.
func (e *remoteError) exitCode() int {
	if code, ok := sadfExitCode(e.kind); ok {
		return code
	}
	switch e.kind {
	case "precondition":
		return 2
	case "budget", "deadline", "canceled":
		return 3
	case "engine", "disagreement", "internal":
		return 4
	case "certificate":
		return 5
	case "overloaded", "draining", "breaker-open", "unavailable", "degraded":
		return 6
	case "bad-request", "injection-disabled", "too-large":
		return 1
	default: // unknown kinds
		return 1
	}
}

// transportError marks a failure to reach a replica at all — connect
// refused, reset, client-side timeout. Unlike an HTTP error response
// (which any replica would reproduce or which is the replica's own
// verdict), a transport failure says nothing about the request, so the
// -addr fallthrough moves on to the next replica.
type transportError struct {
	addr string
	err  error
}

func (e *transportError) Error() string { return fmt.Sprintf("%s: %v", e.addr, e.err) }
func (e *transportError) Unwrap() error { return e.err }

// cmdQuery analyses a graph through a running sdfserved daemon instead
// of in-process, or (with -health) fetches the daemon's health report.
func cmdQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "base URL of the sdfserved daemon")
	addrs := fs.String("addr", "", "comma-separated replica base URLs tried in order (overrides -server); exhausting the list exits 6")
	method := fs.String("method", "hedged", "engine: hedged, matrix, statespace or hsdf")
	format := fs.String("format", "", "input format: text, xml or json (default: by extension)")
	timeout := fs.Duration("timeout", 0, "per-request analysis deadline sent to the server (0 = server default)")
	budget := fs.Int64("budget", 0, "uniform work cap sent to the server (0 = defaults, negative = unlimited)")
	exactOnly := fs.Bool("exact-only", false, "refuse degraded answers: a browned-out server answers 429 (exit 6) instead of a bounded or stale result")
	health := fs.Bool("health", false, "fetch the server health report instead of analysing a graph")
	metrics := fs.Bool("metrics", false, "scrape and summarise the server's /metrics instead of analysing a graph")
	if err := fs.Parse(args); err != nil {
		return err
	}
	servers := []string{strings.TrimRight(*server, "/")}
	if *addrs != "" {
		servers = servers[:0]
		for _, u := range strings.Split(*addrs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				servers = append(servers, strings.TrimRight(u, "/"))
			}
		}
		if len(servers) == 0 {
			return fmt.Errorf("-addr lists no replica URLs")
		}
	}
	if *health {
		if fs.NArg() != 0 {
			return fmt.Errorf("-health takes no graph argument")
		}
		return queryHealth(out, servers[0])
	}
	if *metrics {
		if fs.NArg() != 0 {
			return fmt.Errorf("-metrics takes no graph argument")
		}
		return queryMetrics(out, servers[0])
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one graph file argument")
	}
	g, err := loadGraph(fs.Arg(0), *format)
	if err != nil {
		return err
	}

	var graphJSON bytes.Buffer
	if err := sdfreduce.WriteJSON(&graphJSON, g); err != nil {
		return err
	}
	body, err := json.Marshal(serve.RequestPayload{
		Graph:     json.RawMessage(graphJSON.Bytes()),
		Method:    *method,
		TimeoutMS: timeout.Milliseconds(),
		Budget:    *budget,
		ExactOnly: *exactOnly,
	})
	if err != nil {
		return err
	}

	// A single -server target keeps its plain transport error (exit 1:
	// likely a typo or a stopped daemon); only the -addr replica list
	// has fallthrough-then-unavailable semantics.
	var res *serve.ResultPayload
	if *addrs != "" {
		res, err = postThroughputAny(servers, body, *timeout)
	} else {
		res, err = postThroughput(servers[0], body, *timeout)
	}
	if err != nil {
		return err
	}
	if len(res.Report) > 0 {
		fmt.Fprintln(out, "engine race:")
		for _, line := range res.Report {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}
	switch {
	case res.Unbounded:
		fmt.Fprintln(out, "throughput: unbounded (no dependency cycle constrains the steady state)")
	case res.Degradation == "bounded":
		// A brownout answer: the period is a certified conservative
		// upper bound, not the exact Λ.
		fmt.Fprintf(out, "iteration period: <= %s (certified upper bound; engine: %s)\n", res.Period, res.Engine)
		if res.PeriodLower != "" {
			fmt.Fprintf(out, "period enclosure: [%s, %s]\n", res.PeriodLower, res.Period)
		}
	default:
		fmt.Fprintf(out, "iteration period: %s (engine: %s)\n", res.Period, res.Engine)
	}
	if res.Verified {
		fmt.Fprintf(out, "verified: %s\n", res.Certificate)
	}
	if res.Degradation != "" {
		note := ""
		if res.Stale {
			note = "; expired cache entry, background refresh under way"
		}
		fmt.Fprintf(out, "degraded: served at the %s level%s\n", res.Degradation, note)
	}
	switch {
	case res.Cached:
		fmt.Fprintln(out, "served from the result cache")
	case res.Deduped:
		fmt.Fprintln(out, "deduplicated against an identical in-flight request")
	}
	return nil
}

// postThroughputAny walks the replica list, falling through replicas
// that cannot be reached at the transport level. The first replica that
// answers — success or its own error verdict — settles the request;
// HTTP-level failures are never retried on another replica, because a
// replica that answered is alive and deterministic failures would
// repeat anywhere. An exhausted list is an unavailability: every
// configured replica was down, which maps to exit code 6.
func postThroughputAny(servers []string, body []byte, timeout time.Duration) (*serve.ResultPayload, error) {
	var last *transportError
	for _, s := range servers {
		res, err := postThroughput(s, body, timeout)
		if errors.As(err, &last) {
			continue
		}
		return res, err
	}
	return nil, &remoteError{
		kind: "unavailable",
		msg:  fmt.Sprintf("no replica reachable (%d tried; last: %v)", len(servers), last),
	}
}

// postThroughput performs the wire round trip and converts error
// payloads into remoteError.
func postThroughput(server string, body []byte, timeout time.Duration) (*serve.ResultPayload, error) {
	// The client deadline covers the server's analysis deadline plus
	// generous transport slack; it exists so a dead server cannot hang
	// the tool forever.
	client := &http.Client{Timeout: timeout + 60*time.Second}
	resp, err := client.Post(server+"/v1/throughput", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, &transportError{addr: server, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return nil, &transportError{addr: server, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var ep serve.ErrorPayload
		if err := json.Unmarshal(data, &ep); err != nil || ep.Kind == "" {
			return nil, fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return nil, &remoteError{status: resp.StatusCode, kind: ep.Kind, msg: ep.Error}
	}
	var res serve.ResultPayload
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("server: malformed result: %w", err)
	}
	return &res, nil
}

// queryMetrics scrapes the daemon's Prometheus exposition and prints a
// human summary: every counter and gauge verbatim, then each latency
// histogram reduced to count / p50 / p99 (quantiles estimated from the
// cumulative buckets, the same way a Prometheus histogram_quantile
// would).
func queryMetrics(out io.Writer, server string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(server + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	samples, err := obs.ParseText(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return fmt.Errorf("server: malformed exposition: %w", err)
	}

	// Histogram series arrive flattened (_bucket/_sum/_count); regroup
	// them by base name + labels-without-le so each can be summarised.
	type hist struct {
		le    map[float64]float64
		count float64
	}
	hists := make(map[string]*hist)
	histKey := func(base string, labels map[string]string) string {
		kv := make([]string, 0, len(labels))
		for k, v := range labels {
			if k != "le" {
				kv = append(kv, fmt.Sprintf("%s=%q", k, v))
			}
		}
		sort.Strings(kv)
		return base + "{" + strings.Join(kv, ",") + "}"
	}
	var scalars []string
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			key := histKey(strings.TrimSuffix(s.Name, "_bucket"), s.Labels)
			h := hists[key]
			if h == nil {
				h = &hist{le: make(map[float64]float64)}
				hists[key] = h
			}
			var bound float64
			if _, err := fmt.Sscanf(s.Label("le"), "%g", &bound); err == nil {
				h.le[bound] = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			key := histKey(strings.TrimSuffix(s.Name, "_count"), s.Labels)
			h := hists[key]
			if h == nil {
				h = &hist{le: make(map[float64]float64)}
				hists[key] = h
			}
			h.count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			// Folded into the histogram summary; not printed alone.
		default:
			scalars = append(scalars, fmt.Sprintf("%s %g", histKey(s.Name, s.Labels), s.Value))
		}
	}

	fmt.Fprintf(out, "metrics:    %s (%d samples)\n", server, len(samples))
	sort.Strings(scalars)
	for _, line := range scalars {
		fmt.Fprintf(out, "  %s\n", line)
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintln(out, "latency (count, p50, p99):")
	}
	for _, k := range keys {
		h := hists[k]
		fmt.Fprintf(out, "  %s %g %v %v\n", k, h.count,
			obs.BucketQuantile(h.le, 0.50).Round(time.Microsecond),
			obs.BucketQuantile(h.le, 0.99).Round(time.Microsecond))
	}
	return nil
}

// queryHealth prints the daemon's health report: breaker states first
// (they are what an operator acts on), then the raw counters.
func queryHealth(out io.Writer, server string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(server + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var h serve.Health
	if err := json.Unmarshal(data, &h); err != nil {
		return fmt.Errorf("server: malformed health report: %w", err)
	}
	state := "admitting"
	if h.Draining {
		state = "draining"
	}
	if h.Degradation != "" && h.Degradation != "exact" {
		state += ", degraded: " + h.Degradation
	}
	fmt.Fprintf(out, "server:     %s (%s)\n", server, state)
	fmt.Fprintf(out, "in flight:  %d (running %d of %d workers, queue capacity %d)\n",
		h.InFlight, h.Running, h.Workers, h.QueueCapacity)
	fmt.Fprintf(out, "pool:       %d/%d units in use (headroom %d)\n", h.PoolInUse, h.PoolCapacity, h.PoolHeadroom)
	fmt.Fprintf(out, "cache:      %d/%d entries, %d hits, %d misses, %d deduped\n",
		h.CacheEntries, h.CacheCapacity, h.CacheHits, h.CacheMisses, h.Deduped)
	fmt.Fprintf(out, "requests:   %d admitted, %d served, %d failed, %d refused overloaded\n",
		h.Admitted, h.Served, h.Failed, h.Overloaded)
	fmt.Fprintln(out, "engines:")
	for _, e := range h.Engines {
		fmt.Fprintf(out, "  %-11s %-9s (streak %d, trips %d)\n", e.Engine, e.State, e.Streak, e.Trips)
	}
	return nil
}
