package main

import (
	"strings"
	"testing"
)

func TestThroughputVerify(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	for _, m := range []string{"matrix", "statespace", "hsdf"} {
		out, err := runTool(t, "throughput", "-method", m, "-verify", path)
		if err != nil {
			t.Fatalf("%s -verify: %v", m, err)
		}
		if !strings.Contains(out, "iteration period: 5/2") {
			t.Errorf("%s -verify output misses the period:\n%s", m, out)
		}
		if !strings.Contains(out, "verified: throughput certificate") {
			t.Errorf("%s -verify output misses the certificate line:\n%s", m, out)
		}
	}
}

func TestThroughputHedged(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	out, err := runTool(t, "throughput", "-method", "hedged", path)
	if err != nil {
		t.Fatalf("hedged: %v\n%s", err, out)
	}
	for _, want := range []string{
		"engine race:", "answered", "iteration period: 5/2", "verified: throughput certificate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hedged output misses %q:\n%s", want, out)
		}
	}
}

func TestThroughputResilientRejectsVerify(t *testing.T) {
	path := writeSample(t, "g.sdf", sampleText)
	if _, err := runTool(t, "throughput", "-method", "resilient", "-verify", path); err == nil {
		t.Error("-method resilient -verify accepted")
	}
}
