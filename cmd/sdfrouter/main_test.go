package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/sdfio"
	"repro/internal/serve"
	"repro/internal/testutil"
)

// startBackend boots a real in-process sdfserved-equivalent replica the
// router can proxy to.
func startBackend(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(serve.NewHandler(serve.New(serve.Options{Workers: 2})))
	t.Cleanup(ts.Close)
	return ts.URL
}

// startRouter runs the router in-process on an ephemeral port against
// the given replicas and returns its base URL, a cancel playing the
// role of SIGTERM, and run's exit error channel.
func startRouter(t *testing.T, logw io.Writer, replicas string, args ...string) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-replicas", replicas}, args...), logw, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("router died on startup: %v", err)
		return "", nil, nil
	}
}

func wireBody(t *testing.T) []byte {
	t.Helper()
	var text bytes.Buffer
	if err := sdfio.WriteText(&text, gen.Figure2()); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.RequestPayload{GraphText: text.String(), Method: "matrix"})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRouterLifecycle boots two real replicas and the router, proxies a
// real analysis through the fleet, checks the health surfaces, and
// drains via the SIGTERM path.
func TestRouterLifecycle(t *testing.T) {
	defer testutil.FailOnLeakedGoroutines(t, "repro/internal/fleet")
	var log bytes.Buffer
	replicas := startBackend(t) + "," + startBackend(t)
	base, sigterm, done := startRouter(t, &log, replicas, "-probe-interval", "50ms")

	resp, err := http.Post(base+"/v1/throughput", "application/json", bytes.NewReader(wireBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied throughput: %d %s", resp.StatusCode, body)
	}
	var res serve.ResultPayload
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Period == "" {
		t.Errorf("proxied result = %+v", res)
	}
	if resp.Header.Get("X-SDF-Replica") == "" {
		t.Error("response does not name the winning replica")
	}

	for _, probe := range []string{"/healthz", "/readyz", "/metrics"} {
		r, err := http.Get(base + probe)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", probe, r.StatusCode)
		}
	}

	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exit: %v\nlog:\n%s", err, log.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not drain")
	}
	if !strings.Contains(log.String(), "drained cleanly") {
		t.Errorf("log missing clean-drain line:\n%s", log.String())
	}
}

func TestRouterBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, io.Discard, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), nil, io.Discard, nil); err == nil {
		t.Fatal("missing -replicas accepted")
	}
	if err := run(context.Background(), []string{"-replicas", "http://127.0.0.1:1", "positional"}, io.Discard, nil); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run(context.Background(), []string{"-replicas", "http://127.0.0.1:1", "-addr", "256.256.256.256:99999"}, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
