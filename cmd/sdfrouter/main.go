// Command sdfrouter fronts a fleet of sdfserved replicas with one
// fault-tolerant analysis endpoint. Requests are consistent-hashed by
// their canonical key onto the replica whose result cache is already
// warm for them; a probe loop health-gates membership (consecutive
// /readyz failures eject a replica, a probation streak re-admits it);
// transport failures, 429s and 5xx answers fail over to ring successors
// under exponential backoff; and a hedged second attempt races the next
// replica when the primary is slow. SIGTERM drains: admission stops,
// /readyz turns 503, in-flight proxied requests finish.
//
// Usage:
//
//	sdfrouter -replicas http://host1:8080,http://host2:8080 [flags]
//
// Endpoints:
//
//	POST /v1/throughput  the replicas' own wire contract, relayed
//	                     verbatim from the winning replica (plus an
//	                     X-SDF-Replica header naming it)
//	POST /v1/batch       batch fan-out: the batch is split by ring
//	                     ownership so each item lands on its cache-warm
//	                     replica, sub-batches dispatch concurrently, and
//	                     the items of a replica that dies or straggles
//	                     mid-batch (past the router's p99 estimate) are
//	                     re-dispatched to survivors; per-item answers
//	                     merge back into request order, always one entry
//	                     per item
//	GET  /healthz        router health: per-replica membership state
//	GET  /readyz         200 while admitting with >= 1 alive replica
//	GET  /metrics        Prometheus text exposition of the fleet
//	                     metrics (attempts, retries, hedges, ejections)
//
// The process exits 0 after a clean drain and 1 on setup errors or a
// drain that timed out with requests still in flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/guard"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sdfrouter:", err)
		os.Exit(1)
	}
}

// run starts the router and blocks until ctx is cancelled (the signal)
// and the subsequent drain finishes. When ready is non-nil the bound
// listen address is sent on it once the router accepts connections.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sdfrouter", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr          = fs.String("addr", "127.0.0.1:8090", "listen address")
		replicas      = fs.String("replicas", "", "comma-separated sdfserved base URLs (required)")
		probeInterval = fs.Duration("probe-interval", 0, "health probe cadence (0 = 1s default)")
		probeFail     = fs.Int("probe-fail", 0, "consecutive failures that eject a replica (0 = default 3)")
		probeReadmit  = fs.Int("probe-readmit", 0, "consecutive successful probes that re-admit an ejected replica (0 = default 2)")
		hedgeDelay    = fs.Duration("hedge-delay", 50*time.Millisecond, "primary latency before a hedged attempt starts (0 hedges immediately, negative disables)")
		timeout       = fs.Duration("default-timeout", 0, "end-to-end budget for requests naming no deadline (0 = 15s default)")
		batchHedge    = fs.Duration("batch-straggler", 0, "batch sub-dispatch straggler-hedge delay until the router has its own p99 estimate (0 = 500ms default, negative disables)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("no replicas: pass -replicas with at least one sdfserved URL")
	}

	reg := obs.New()
	opts := fleet.Options{
		Replicas:            urls,
		ProbeInterval:       *probeInterval,
		FailThreshold:       *probeFail,
		ReadmitThreshold:    *probeReadmit,
		HedgeDelay:          *hedgeDelay,
		DefaultTimeout:      *timeout,
		BatchStragglerDelay: *batchHedge,
		Backoff:             guard.Backoff{Jitter: guard.DefaultJitter()},
		Obs:                 reg,
	}
	if *hedgeDelay == 0 {
		// A raw zero means "use the default" to the fleet layer; the
		// flag's zero explicitly means hedge-immediately.
		opts = opts.ImmediateHedge()
	}
	router := fleet.New(opts)
	router.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		router.Close()
		return err
	}
	httpSrv := &http.Server{Handler: fleet.NewHandler(router)}
	fmt.Fprintf(logw, "sdfrouter: listening on %s, routing %d replicas\n", ln.Addr(), len(urls))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		router.Close()
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain, mirroring sdfserved: admission stops first so
	// /readyz flips to 503 and load balancers move on, then the HTTP
	// server shuts down under the same deadline so in-flight proxied
	// requests can finish writing.
	fmt.Fprintf(logw, "sdfrouter: draining (deadline %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := router.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("http shutdown: %w", err)
	}
	if drainErr != nil {
		return fmt.Errorf("unclean drain: %w", drainErr)
	}
	fmt.Fprintln(logw, "sdfrouter: drained cleanly")
	return nil
}
