package main

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// kindMap is the cross-package wire-contract check: every error kind the
// serving layer can put on the wire (a string literal returned by
// serve.KindOf) must have an explicit case in sdftool's exit-code table
// (a case literal in an exitCode function under cmd/sdftool). The
// default-to-1 fallback in that table exists for kinds from *future*
// servers, not as a dumping ground for kinds the repository already
// defines — a new kind that silently falls through would ship with an
// undocumented exit code.
//
// The batch wire contract gets the same treatment: every batch item
// status (a literal returned by serve.ItemStatusOf) and batch kind
// (serve.BatchKindOf) must have an explicit case in sdftool's
// batchExitCode table, so a new item outcome cannot ship without a
// documented worst-item exit code.
//
// The sadf wire contract is the third mapping: every sadf-specific kind
// (a literal returned by serve.SADFKindOf; the kinds it defers to
// KindOf are covered by the first mapping) must have an explicit case
// in sdftool's sadfExitCode table.
//
// The check is cross-directory, so it accumulates over the whole run and
// only fires when both sides were actually seen: analysing a single
// package in isolation must not report every kind as unmapped. The two
// mappings gate independently — a tree holding only the single-request
// table stays silent about batch statuses and vice versa.
type kindMap struct {
	kinds map[string]token.Position // kind -> its return in KindOf
	cases map[string]bool           // kinds with an explicit exitCode case
	sawFn bool                      // an exitCode function was harvested

	batchKinds map[string]token.Position // batch status/kind -> its return
	batchCases map[string]bool           // statuses with an explicit batchExitCode case
	sawBatchFn bool                      // a batchExitCode function was harvested

	sadfKinds map[string]token.Position // sadf kind -> its return in SADFKindOf
	sadfCases map[string]bool           // kinds with an explicit sadfExitCode case
	sawSadfFn bool                      // a sadfExitCode function was harvested
}

func newKindMap() *kindMap {
	return &kindMap{
		kinds: make(map[string]token.Position), cases: make(map[string]bool),
		batchKinds: make(map[string]token.Position), batchCases: make(map[string]bool),
		sadfKinds: make(map[string]token.Position), sadfCases: make(map[string]bool),
	}
}

// collect harvests one parsed file's contribution to either side of the
// mappings, scoped by the file's logical package path.
func (km *kindMap) collect(fset *token.FileSet, file *ast.File, logical string) {
	dir := strings.ReplaceAll(logical, "\\", "/")
	switch {
	case strings.Contains(dir, "internal/serve/"):
		km.collectKinds(fset, file)
	case strings.Contains(dir, "cmd/sdftool/"):
		km.collectCases(file)
	}
}

// collectKinds records every non-empty string literal returned by the
// wire-classification functions: KindOf (error kinds) feeds the
// single-request mapping, ItemStatusOf and BatchKindOf (item statuses
// and batch kinds) feed the batch mapping.
func (km *kindMap) collectKinds(fset *token.FileSet, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		switch fn.Name.Name {
		case "KindOf":
			harvestReturns(fset, fn, km.kinds)
		case "ItemStatusOf", "BatchKindOf":
			harvestReturns(fset, fn, km.batchKinds)
		case "SADFKindOf":
			harvestReturns(fset, fn, km.sadfKinds)
		}
	}
}

// harvestReturns records every non-empty string literal fn returns.
func harvestReturns(fset *token.FileSet, fn *ast.FuncDecl, into map[string]token.Position) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if kind, ok := stringLit(ret.Results[0]); ok && kind != "" {
			if _, seen := into[kind]; !seen {
				into[kind] = fset.Position(ret.Pos())
			}
		}
		return true
	})
}

// collectCases records every string literal appearing in a case clause
// of the exit-code tables: exitCode (the method on remoteError carries
// the kind table; the package-level exitCode switches on sentinel errors
// and contributes no string cases) and batchExitCode (the batch
// status/kind table).
func (km *kindMap) collectCases(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		switch fn.Name.Name {
		case "exitCode":
			km.sawFn = true
			harvestCases(fn, km.cases)
		case "batchExitCode":
			km.sawBatchFn = true
			harvestCases(fn, km.batchCases)
		case "sadfExitCode":
			km.sawSadfFn = true
			harvestCases(fn, km.sadfCases)
		}
	}
}

// harvestCases records every string literal in fn's case clauses.
func harvestCases(fn *ast.FuncDecl, into map[string]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if kind, ok := stringLit(e); ok {
				into[kind] = true
			}
		}
		return true
	})
}

// findings reports every harvested kind without an exit-code case. With
// either side of a mapping missing from the analysed set, that mapping
// cannot be judged and stays silent.
func (km *kindMap) findings() []finding {
	var out []finding
	if len(km.kinds) > 0 && km.sawFn {
		out = append(out, unmapped(km.kinds, km.cases,
			"error kind %s returned by serve.KindOf has no case in sdftool's exitCode table; map it to a documented exit code")...)
	}
	if len(km.batchKinds) > 0 && km.sawBatchFn {
		out = append(out, unmapped(km.batchKinds, km.batchCases,
			"batch wire status %s returned by serve.ItemStatusOf/BatchKindOf has no case in sdftool's batchExitCode table; map it to a documented exit code")...)
	}
	if len(km.sadfKinds) > 0 && km.sawSadfFn {
		out = append(out, unmapped(km.sadfKinds, km.sadfCases,
			"sadf wire kind %s returned by serve.SADFKindOf has no case in sdftool's sadfExitCode table; map it to a documented exit code")...)
	}
	return out
}

// unmapped builds one mapping's findings, sorted by kind for stable
// output.
func unmapped(kinds map[string]token.Position, cases map[string]bool, format string) []finding {
	var names []string
	for kind := range kinds {
		if !cases[kind] {
			names = append(names, kind)
		}
	}
	sort.Strings(names)
	out := make([]finding, 0, len(names))
	for _, kind := range names {
		out = append(out, finding{
			pos:   kinds[kind],
			check: "kindmap",
			msg:   strings.Replace(format, "%s", strconv.Quote(kind), 1),
		})
	}
	return out
}

// stringLit unwraps e to a string literal's value.
func stringLit(e ast.Expr) (string, bool) {
	if p, ok := e.(*ast.ParenExpr); ok {
		return stringLit(p.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
