package main

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// kindMap is the cross-package wire-contract check: every error kind the
// serving layer can put on the wire (a string literal returned by
// serve.KindOf) must have an explicit case in sdftool's exit-code table
// (a case literal in an exitCode function under cmd/sdftool). The
// default-to-1 fallback in that table exists for kinds from *future*
// servers, not as a dumping ground for kinds the repository already
// defines — a new kind that silently falls through would ship with an
// undocumented exit code.
//
// The check is cross-directory, so it accumulates over the whole run and
// only fires when both sides were actually seen: analysing a single
// package in isolation must not report every kind as unmapped.
type kindMap struct {
	kinds map[string]token.Position // kind -> its return in KindOf
	cases map[string]bool           // kinds with an explicit exitCode case
	sawFn bool                      // an exitCode function was harvested
}

func newKindMap() *kindMap {
	return &kindMap{kinds: make(map[string]token.Position), cases: make(map[string]bool)}
}

// collect harvests one parsed file's contribution to either side of the
// mapping, scoped by the file's logical package path.
func (km *kindMap) collect(fset *token.FileSet, file *ast.File, logical string) {
	dir := strings.ReplaceAll(logical, "\\", "/")
	switch {
	case strings.Contains(dir, "internal/serve/"):
		km.collectKinds(fset, file)
	case strings.Contains(dir, "cmd/sdftool/"):
		km.collectCases(file)
	}
}

// collectKinds records every non-empty string literal returned by a
// function named KindOf.
func (km *kindMap) collectKinds(fset *token.FileSet, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "KindOf" || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			if kind, ok := stringLit(ret.Results[0]); ok && kind != "" {
				if _, seen := km.kinds[kind]; !seen {
					km.kinds[kind] = fset.Position(ret.Pos())
				}
			}
			return true
		})
	}
}

// collectCases records every string literal appearing in a case clause
// of a function named exitCode (the method on remoteError carries the
// kind table; the package-level exitCode switches on sentinel errors and
// contributes no string cases).
func (km *kindMap) collectCases(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "exitCode" || fn.Body == nil {
			continue
		}
		km.sawFn = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, e := range cc.List {
				if kind, ok := stringLit(e); ok {
					km.cases[kind] = true
				}
			}
			return true
		})
	}
}

// findings reports every harvested kind without an exit-code case. With
// either side missing from the analysed set, the mapping cannot be
// judged and the check stays silent.
func (km *kindMap) findings() []finding {
	if len(km.kinds) == 0 || !km.sawFn {
		return nil
	}
	var names []string
	for kind := range km.kinds {
		if !km.cases[kind] {
			names = append(names, kind)
		}
	}
	sort.Strings(names)
	out := make([]finding, 0, len(names))
	for _, kind := range names {
		out = append(out, finding{
			pos:   km.kinds[kind],
			check: "kindmap",
			msg: "error kind " + strconv.Quote(kind) +
				" returned by serve.KindOf has no case in sdftool's exitCode table; map it to a documented exit code",
		})
	}
	return out
}

// stringLit unwraps e to a string literal's value.
func stringLit(e ast.Expr) (string, bool) {
	if p, ok := e.(*ast.ParenExpr); ok {
		return stringLit(p.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
