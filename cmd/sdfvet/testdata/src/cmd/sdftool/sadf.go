// Fixture for the kindmap check's sadf side: the exit-code table that
// must carry an explicit case for every sadf-specific wire kind the
// fixture serve.SADFKindOf can return.
package main

func sadfExitCode(kind string) (int, bool) {
	switch kind {
	case "sadf-model":
		return 1, true
	case "sadf-scenario":
		return 2, true
	}
	return 0, false
}
