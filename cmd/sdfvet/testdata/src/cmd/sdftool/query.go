// Fixture for the kindmap check: the exit-code table that must carry an
// explicit case for every kind the fixture serve.KindOf can return.
package main

type remoteError struct{ kind string }

func (e *remoteError) exitCode() int {
	switch e.kind {
	case "internal":
		return 4
	case "degraded":
		return 6
	case "too-large":
		return 1
	default:
		return 1
	}
}
