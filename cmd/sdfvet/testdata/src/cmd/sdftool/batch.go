// Fixture for the kindmap check's batch side: the exit-code table that
// must carry an explicit case for every batch wire status the fixture
// serve.ItemStatusOf and serve.BatchKindOf can return.
package main

func batchExitCode(status string) int {
	switch status {
	case "ok", "complete":
		return 0
	case "partial":
		return 0
	default:
		return 1
	}
}
