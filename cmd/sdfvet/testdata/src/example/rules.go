package example

import "repro/internal/passes"

// A consumer package registering a rule through the public alias: the
// rulelift check recognises the selector form too.
var customRule = passes.Rule{ // want rulelift
	Name:    "custom",
	Reduce:  nil,
	Restore: restoreCustom,
	Lift:    liftCustom,
}

var okRule = passes.Rule{
	Name:    "ok",
	Reduce:  reduceCustom,
	Restore: restoreCustom,
	Lift:    liftCustom,
}
