// Exercises liftCustom so only the nil-Reduce registration fires.
package example

var _ = liftCustom
