// Package example seeds one violation per line marked with a
// want-comment naming the check; cmd/sdfvet's fixture test asserts the
// analyzer reports exactly those lines.
package example

import (
	"math"

	"repro/internal/maxplus"
	"repro/internal/rat"
)

func compareRats(a, b rat.Rat) bool {
	if a == b { // want ratcmp
		return true
	}
	c := rat.MustNew(1, 2)
	if c != b { // want ratcmp
		return false
	}
	d, err := a.Mul(b)
	if err != nil {
		return false
	}
	if d == rat.Zero() { // want ratcmp
		return false
	}
	return a.Equal(b) // ok: method comparison states the intent
}

func compareScalars(x, y maxplus.T) bool {
	if x == maxplus.NegInf { // want mpcmp
		return false
	}
	if x != y { // want mpcmp
		return true
	}
	if x.Add(y) == maxplus.FromInt(3) { // want mpcmp
		return false
	}
	return x.Cmp(y) == 0 // ok: Cmp returns a plain int
}

func sentinel() maxplus.T {
	return maxplus.T(math.MinInt64) // want minmaxint
}

func harmlessFloat(v int64) float64 {
	return float64(v) // ok: floatconv only applies inside the exact kernels
}

type graph struct{}

func (graph) Validate() error                    { return nil }
func (graph) RepetitionVector() ([]int64, error) { return nil, nil }
func (graph) IterationLength() (int64, error)    { return 0, nil }

func dropErrors(g graph) int64 {
	g.Validate()     // want droperr
	_ = g.Validate() // want droperr
	q, _ := g.RepetitionVector() // want droperr
	if err := g.Validate(); err != nil { // ok: error handled
		return 0
	}
	n, err := g.IterationLength() // ok: error captured
	if err != nil {
		return int64(len(q))
	}
	return n
}
