// Fixture standing in for internal/core: the float64 ban applies here,
// and max-plus sentinel comparisons are still flagged.
package core

import (
	"repro/internal/maxplus"
	"repro/internal/rat"
)

func leak(r rat.Rat, t maxplus.T) float64 {
	x := float64(t) // want floatconv
	y := r.Float()  // want floatconv
	return x + y
}

func compare(t maxplus.T) bool {
	if t == maxplus.NegInf { // want mpcmp
		return false
	}
	return t.IsNegInf() // ok: the sentinel predicate
}
