// Fixture for the kindmap check's sadf side: SADFKindOf defines the
// sadf-specific wire kinds. "sadf-model" and "sadf-scenario" have cases
// in the fixture sadfExitCode table under cmd/sdftool; "sadf-orphan"
// deliberately has none. The delegation to KindOf contributes no
// literal and is covered by the first mapping.
package serve

import "errors"

var (
	errBadModel    = errors.New("bad model")
	errBadScenario = errors.New("bad scenario")
	errSadfOrphan  = errors.New("sadf orphan")
)

func SADFKindOf(err error) string {
	switch {
	case errors.Is(err, errBadModel):
		return "sadf-model"
	case errors.Is(err, errBadScenario):
		return "sadf-scenario"
	case errors.Is(err, errSadfOrphan):
		return "sadf-orphan" // want kindmap
	}
	return KindOf(err)
}
