// Fixture for the kindmap check: KindOf defines the wire kinds. The
// kinds "degraded" and "too-large" have cases in the fixture exitCode
// table under cmd/sdftool; "orphan" deliberately has none.
package serve

import "errors"

var (
	errDegraded = errors.New("degraded")
	errTooLarge = errors.New("too large")
	errOrphan   = errors.New("orphan")
)

func KindOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, errDegraded):
		return "degraded"
	case errors.Is(err, errTooLarge):
		return "too-large"
	case errors.Is(err, errOrphan):
		return "orphan" // want kindmap
	}
	return "internal"
}
