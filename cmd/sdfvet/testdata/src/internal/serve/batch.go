// Fixture for the kindmap check's batch side: ItemStatusOf and
// BatchKindOf define the batch wire statuses. "ok", "complete" and
// "partial" have cases in the fixture batchExitCode table under
// cmd/sdftool; "stray-status" deliberately has none.
package serve

func ItemStatusOf(failed bool) string {
	if failed {
		return "stray-status" // want kindmap
	}
	return "ok"
}

func BatchKindOf(errs int) string {
	if errs > 0 {
		return "partial"
	}
	return "complete"
}
