// Fixture standing in for internal/maxplus: the defining package is
// exempt from mpcmp and minmaxint — the sentinel has to be defined
// somewhere — so nothing in this file is reported.
package maxplus

import "math"

type T int64

const NegInf = T(math.MinInt64) // ok: sentinel definition lives here

func (t T) IsNegInf() bool { return t == NegInf } // ok: defining package
