// Fixture standing in for internal/rat: the defining package is exempt
// from ratcmp and minmaxint (overflow guards legitimately mention the
// int64 limits), so nothing in this file is reported.
package rat

import "math"

type Rat struct{ num, den int64 }

func (r Rat) Equal(o Rat) bool { return r == o } // ok: defining package

func wouldOverflow(a int64) bool {
	return a == math.MaxInt64 // ok: kernel package checks raw limits
}
