// Package passes mirrors the reduction pass manager for the rulelift
// fixture: Rule registrations that violate the reduce/restore/lift
// discipline are marked with want-comments; the good registration and
// the test-exercised lifts stay silent.
package passes

type Facts struct{}
type Application struct{}
type Value struct{}
type Graph struct{}

type Rule struct {
	Name    string
	Doc     string
	Exact   bool
	Reduce  func(*Facts) (*Application, error)
	Restore func(*Application) *Graph
	Lift    func(*Application, Value) (Value, error)
}

func reduceGood(*Facts) (*Application, error)         { return nil, nil }
func restoreGood(*Application) *Graph                 { return nil }
func liftGood(*Application, Value) (Value, error)     { return Value{}, nil }
func liftUntested(*Application, Value) (Value, error) { return Value{}, nil }

func goodRules() []Rule {
	return []Rule{
		{
			Name:    "good",
			Reduce:  reduceGood,
			Restore: restoreGood,
			Lift:    liftGood,
		},
	}
}

func badRules() []Rule {
	return []Rule{
		{ // want rulelift
			Name:    "nil-lift",
			Reduce:  reduceGood,
			Restore: restoreGood,
			Lift:    nil,
		},
		{ // want rulelift
			Name:   "no-restore",
			Reduce: reduceGood,
			Lift:   liftGood,
		},
		{ // want rulelift
			Name:    "unexercised",
			Reduce:  reduceGood,
			Restore: restoreGood,
			Lift:    liftUntested,
		},
		{ // want rulelift
			Name:    "anonymous-lift",
			Reduce:  reduceGood,
			Restore: restoreGood,
			Lift:    func(*Application, Value) (Value, error) { return Value{}, nil },
		},
	}
}

var singleGood = Rule{
	Name:    "single",
	Reduce:  reduceGood,
	Restore: restoreGood,
	Lift:    liftGood,
}
