// Exercises liftGood by name; liftUntested is deliberately absent so
// the unexercised-lift fixture fires.
package passes

var _ = liftGood
var _ = goodRules
var _ = badRules
var _ = singleGood
