package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"strings"
)

// Import paths of the packages whose values the checks track.
const (
	ratImport     = "repro/internal/rat"
	maxplusImport = "repro/internal/maxplus"
)

// Constructors and methods through which rat.Rat / maxplus.T values flow;
// the checker propagates "is a Rat/T" through them without type
// information, which is what keeps sdfvet at go/parser only.
var (
	ratCtors = map[string]bool{"Zero": true, "One": true, "MustNew": true, "FromInt": true}
	// rat.New and the arithmetic methods return (Rat, error).
	ratPairFuncs   = map[string]bool{"New": true}
	ratPairMethods = map[string]bool{"Add": true, "Sub": true, "Mul": true, "Div": true, "Neg": true, "Inv": true, "MulInt": true}
	mpCtors        = map[string]bool{"FromInt": true}
	mpMethods      = map[string]bool{"Add": true, "Max": true}

	// Error-returning model entry points whose results must not be
	// discarded: dropping them silences the exact precondition failures
	// the lint layer exists to surface.
	entryPoints = map[string]bool{
		"Validate": true, "RepetitionVector": true, "IterationLength": true,
		"ComputeThroughput": true, "ComputeLatency": true, "Check": true,
		"Precheck": true, "Analyze": true,
	}

	bannedMathConsts = map[string]bool{
		"MinInt": true, "MinInt64": true, "MaxInt": true, "MaxInt64": true,
	}
)

// fileScope describes which checks apply to a file, derived from its
// (logical) package directory: the defining packages are exempt from the
// lints that exist to protect their abstractions, and the float64 ban
// only covers the exact-arithmetic kernels.
type fileScope struct {
	checkRatCmp    bool
	checkMpCmp     bool
	checkFloatConv bool
	checkMinMaxInt bool
}

func scopeFor(logical string) fileScope {
	dir := path.Dir(path.Clean(strings.ReplaceAll(logical, "\\", "/")))
	inRat := strings.Contains(dir, "internal/rat")
	inMaxplus := strings.Contains(dir, "internal/maxplus")
	inCore := strings.Contains(dir, "internal/core")
	return fileScope{
		checkRatCmp:    !inRat,
		checkMpCmp:     !inMaxplus,
		checkFloatConv: inCore || inMaxplus,
		checkMinMaxInt: !inRat && !inMaxplus,
	}
}

// analyzeFile runs every applicable check over one parsed file. logical
// is the path used for scoping (testdata fixture trees are re-rooted);
// positions in findings use the file's real path via fset.
func analyzeFile(fset *token.FileSet, file *ast.File, logical string) []finding {
	scope := scopeFor(logical)
	imports := localImportNames(file)
	ratPkg := imports[ratImport]
	mpPkg := imports[maxplusImport]
	mathPkg := imports["math"]

	tr := newTracker(file, ratPkg, mpPkg)
	var out []finding
	report := func(pos token.Pos, check, format string, args ...any) {
		out = append(out, finding{pos: fset.Position(pos), check: check, msg: fmt.Sprintf(format, args...)})
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if scope.checkRatCmp && (tr.isRat(n.X) || tr.isRat(n.Y)) {
				report(n.OpPos, "ratcmp",
					"rat.Rat compared with %s; use Equal (or Cmp) so the comparison survives representation changes", n.Op)
			}
			if scope.checkMpCmp {
				if isPkgSel(n.X, mpPkg, "NegInf") || isPkgSel(n.Y, mpPkg, "NegInf") {
					report(n.OpPos, "mpcmp",
						"max-plus scalar compared with %s against %s.NegInf; use IsNegInf()", n.Op, mpPkg)
				} else if tr.isMp(n.X) || tr.isMp(n.Y) {
					report(n.OpPos, "mpcmp",
						"max-plus scalars compared with %s; use Cmp (or IsNegInf for the sentinel)", n.Op)
				}
			}
		case *ast.CallExpr:
			if !scope.checkFloatConv {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "float64" && len(n.Args) == 1 {
				report(n.Pos(), "floatconv",
					"float64 conversion inside an exact-arithmetic package; keep rat/max-plus values exact")
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Float" && len(n.Args) == 0 {
				report(n.Pos(), "floatconv",
					"Rat.Float() inside an exact-arithmetic package; Float is for reporting only")
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := calleeName(call); ok && entryPoints[name] {
				report(n.Pos(), "droperr",
					"result of %s discarded; its error reports a violated analysis precondition", name)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || len(n.Lhs) == 0 {
				return true
			}
			last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident)
			if !ok || last.Name != "_" {
				return true
			}
			if name, ok := calleeName(call); ok && entryPoints[name] {
				report(n.Pos(), "droperr",
					"error from %s assigned to _; handle it or propagate it", name)
			}
		case *ast.SelectorExpr:
			if scope.checkMinMaxInt && mathPkg != "" && isPkgSel(n, mathPkg, "") && bannedMathConsts[n.Sel.Name] {
				report(n.Pos(), "minmaxint",
					"raw math.%s outside the arithmetic kernels; use maxplus.NegInf for the -inf sentinel or rat's checked arithmetic", n.Sel.Name)
			}
		}
		return true
	})
	return out
}

// localImportNames maps import paths to their local names in the file
// ("math" -> "math", aliased imports -> the alias).
func localImportNames(file *ast.File) map[string]string {
	names := make(map[string]string)
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		name := path.Base(p)
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		names[p] = name
	}
	return names
}

// isPkgSel reports whether e is the selector pkg.sel (any sel when sel is
// empty). pkg must be the file-local package name; an empty pkg never
// matches, so files that do not import the package are naturally exempt.
func isPkgSel(e ast.Expr, pkg, sel string) bool {
	if pkg == "" {
		return false
	}
	s, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	if !ok || id.Name != pkg {
		return false
	}
	// Only treat it as a package selector when the identifier does not
	// resolve to a local object (a variable named like the package).
	if id.Obj != nil {
		return false
	}
	return sel == "" || s.Sel.Name == sel
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	default:
		return "", false
	}
}

// tracker is the file-local, purely syntactic value-flow analysis: it
// records which identifiers are known to hold rat.Rat or maxplus.T
// values (declared types, constructor results, arithmetic-method
// results) keyed by the parser's resolved objects, so shadowing cannot
// confuse it.
type tracker struct {
	ratPkg, mpPkg string
	ratObjs       map[*ast.Object]bool
	mpObjs        map[*ast.Object]bool
}

func newTracker(file *ast.File, ratPkg, mpPkg string) *tracker {
	tr := &tracker{
		ratPkg: ratPkg, mpPkg: mpPkg,
		ratObjs: make(map[*ast.Object]bool),
		mpObjs:  make(map[*ast.Object]bool),
	}
	// Two passes so that declarations textually after a use (rare, but
	// legal at package level) are still known during the second sweep;
	// method-result propagation only needs the one extra round.
	for i := 0; i < 2; i++ {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				tr.collectFieldList(n.Recv)
				if n.Type != nil {
					tr.collectFieldList(n.Type.Params)
					tr.collectFieldList(n.Type.Results)
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					for _, name := range n.Names {
						tr.markType(name, n.Type)
					}
					return true
				}
				for i, name := range n.Names {
					if i < len(n.Values) {
						tr.markFromExpr(name, n.Values[i])
					}
				}
			case *ast.AssignStmt:
				tr.collectAssign(n)
			case *ast.RangeStmt:
				// for _, x := range xs where xs is []rat.Rat — unknowable
				// without types; skip.
			}
			return true
		})
	}
	return tr
}

func (tr *tracker) collectFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			tr.markType(name, f.Type)
		}
	}
}

// markType records name when typ is literally rat.Rat or maxplus.T.
func (tr *tracker) markType(name *ast.Ident, typ ast.Expr) {
	if name.Obj == nil {
		return
	}
	if isPkgSel(typ, tr.ratPkg, "Rat") {
		tr.ratObjs[name.Obj] = true
	}
	if isPkgSel(typ, tr.mpPkg, "T") {
		tr.mpObjs[name.Obj] = true
	}
}

// markFromExpr records name when the initialiser expression is a known
// producer of a tracked value.
func (tr *tracker) markFromExpr(name *ast.Ident, e ast.Expr) {
	if name.Obj == nil {
		return
	}
	if tr.isRat(e) {
		tr.ratObjs[name.Obj] = true
	}
	if tr.isMp(e) {
		tr.mpObjs[name.Obj] = true
	}
}

// collectAssign propagates through `x := rat.MustNew(...)`,
// `x, err := rat.New(...)`, `x, err := a.Mul(b)` and the max-plus
// equivalents.
func (tr *tracker) collectAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 {
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				first, _ := n.Lhs[0].(*ast.Ident)
				if first == nil {
					return
				}
				switch {
				case isPkgSel(call.Fun, tr.ratPkg, "") && ratCtors[sel.Sel.Name] && len(n.Lhs) == 1:
					tr.markObj(first, tr.ratObjs)
				case isPkgSel(call.Fun, tr.ratPkg, "") && ratPairFuncs[sel.Sel.Name] && len(n.Lhs) == 2:
					tr.markObj(first, tr.ratObjs)
				case tr.isRatIdent(sel.X) && ratPairMethods[sel.Sel.Name] && len(n.Lhs) == 2:
					tr.markObj(first, tr.ratObjs)
				case isPkgSel(call.Fun, tr.mpPkg, "") && mpCtors[sel.Sel.Name] && len(n.Lhs) == 1:
					tr.markObj(first, tr.mpObjs)
				case tr.isMpIdent(sel.X) && mpMethods[sel.Sel.Name] && len(n.Lhs) == 1:
					tr.markObj(first, tr.mpObjs)
				}
			}
			return
		}
	}
	// Parallel assignment x, y := expr1, expr2.
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				tr.markFromExpr(id, n.Rhs[i])
			}
		}
	}
}

func (tr *tracker) markObj(id *ast.Ident, set map[*ast.Object]bool) {
	if id.Obj != nil {
		set[id.Obj] = true
	}
}

func (tr *tracker) isRatIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Obj != nil && tr.ratObjs[id.Obj]
}

func (tr *tracker) isMpIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Obj != nil && tr.mpObjs[id.Obj]
}

// isRat reports whether e is syntactically known to be a rat.Rat value:
// a tracked identifier, a constructor call, or a composite literal.
func (tr *tracker) isRat(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return tr.isRatIdent(e)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return isPkgSel(e.Fun, tr.ratPkg, "") && ratCtors[sel.Sel.Name]
		}
	case *ast.CompositeLit:
		return isPkgSel(e.Type, tr.ratPkg, "Rat")
	case *ast.ParenExpr:
		return tr.isRat(e.X)
	}
	return false
}

// isMp reports whether e is syntactically known to be a maxplus.T value:
// a tracked identifier, FromInt, the NegInf constant, or an
// arithmetic-method call on a tracked identifier.
func (tr *tracker) isMp(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return tr.isMpIdent(e)
	case *ast.SelectorExpr:
		return isPkgSel(e, tr.mpPkg, "NegInf")
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if isPkgSel(e.Fun, tr.mpPkg, "") && mpCtors[sel.Sel.Name] {
				return true
			}
			return tr.isMpIdent(sel.X) && mpMethods[sel.Sel.Name]
		}
	case *ast.ParenExpr:
		return tr.isMp(e.X)
	}
	return false
}
