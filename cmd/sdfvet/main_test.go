package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var knownChecks = map[string]bool{
	"ratcmp": true, "mpcmp": true, "floatconv": true, "droperr": true, "minmaxint": true,
	"rulelift": true, "kindmap": true,
}

// wantMarkers reads every fixture file and returns, keyed by
// "file:line", the set of checks a "// want <check>..." comment expects
// on that line.
func wantMarkers(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			var checks []string
			for _, c := range strings.Fields(marker) {
				if !knownChecks[c] {
					t.Fatalf("%s:%d: unknown check %q in want marker", path, line, c)
				}
				checks = append(checks, c)
			}
			sort.Strings(checks)
			want[fmt.Sprintf("%s:%d", filepath.ToSlash(path), line)] = checks
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures asserts the analyzer reports exactly the violations
// marked in the seeded fixture tree — no misses, no extras.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	var out bytes.Buffer
	findings, err := run([]string{root + "/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]string)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(f.pos.Filename), f.pos.Line)
		got[key] = append(got[key], f.check)
	}
	for key := range got {
		sort.Strings(got[key])
	}
	want := wantMarkers(t, root)
	for key, checks := range want {
		if strings.Join(got[key], " ") != strings.Join(checks, " ") {
			t.Errorf("%s: got checks %v, want %v", key, got[key], checks)
		}
	}
	for key, checks := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected findings %v", key, checks)
		}
	}
	if len(want) == 0 {
		t.Fatal("no want markers found; fixture tree missing?")
	}
}

// TestKindMapNeedsBothSides: kindmap is a cross-directory check, so
// analysing only the serving side (no exitCode table in scope) must stay
// silent instead of reporting every kind as unmapped.
func TestKindMapNeedsBothSides(t *testing.T) {
	var out bytes.Buffer
	findings, err := run([]string{filepath.Join("testdata", "src", "internal", "serve")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.check == "kindmap" {
			t.Errorf("kindmap finding without the exit-code side in scope: %s", f)
		}
	}
}

// TestRepoClean runs the analyzer over the entire repository and fails
// on any finding, making sdfvet regressions fail `go test ./...`.
func TestRepoClean(t *testing.T) {
	var out bytes.Buffer
	findings, err := run([]string{filepath.Join("..", "..") + "/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		t.Errorf("sdfvet findings in repository:\n%s", out.String())
	}
}

// TestScopeFor pins the per-package exemption table.
func TestScopeFor(t *testing.T) {
	cases := []struct {
		path string
		want fileScope
	}{
		{"internal/rat/rat.go", fileScope{checkRatCmp: false, checkMpCmp: true, checkFloatConv: false, checkMinMaxInt: false}},
		{"internal/maxplus/scalar.go", fileScope{checkRatCmp: true, checkMpCmp: false, checkFloatConv: true, checkMinMaxInt: false}},
		{"internal/core/hsdfbuild.go", fileScope{checkRatCmp: true, checkMpCmp: true, checkFloatConv: true, checkMinMaxInt: true}},
		{"internal/analysis/latency.go", fileScope{checkRatCmp: true, checkMpCmp: true, checkFloatConv: false, checkMinMaxInt: true}},
		{"sdfreduce.go", fileScope{checkRatCmp: true, checkMpCmp: true, checkFloatConv: false, checkMinMaxInt: true}},
	}
	for _, c := range cases {
		if got := scopeFor(c.path); got != c.want {
			t.Errorf("scopeFor(%q) = %+v, want %+v", c.path, got, c.want)
		}
	}
}

// TestLogicalPath pins the fixture re-rooting rule.
func TestLogicalPath(t *testing.T) {
	if got := logicalPath(filepath.Join("cmd", "sdfvet", "testdata", "src", "internal", "rat", "own.go")); got != "internal/rat/own.go" {
		t.Errorf("logicalPath = %q, want internal/rat/own.go", got)
	}
	if got := logicalPath(filepath.Join("internal", "sdf", "graph.go")); got != filepath.ToSlash(filepath.Join("internal", "sdf", "graph.go")) {
		t.Errorf("logicalPath = %q", got)
	}
}
