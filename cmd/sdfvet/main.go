// Command sdfvet is the repository's code-level static analyzer: custom
// lints, built on the standard library's go/ast, go/parser and go/token
// only, that enforce the exact-arithmetic invariants the SDF analyses
// depend on. It complements `sdftool lint` (which analyses *models*) by
// analysing the *code* that manipulates them.
//
// Checks:
//
//	ratcmp    rat.Rat values compared with == or != (use Equal/Cmp):
//	          raw struct comparison is exact only because Rats are kept
//	          normalised; method comparison states the intent and survives
//	          representation changes
//	mpcmp     max-plus scalars compared with == or != against
//	          maxplus.NegInf or on declared maxplus.T values (use
//	          IsNegInf/Cmp) outside the defining package
//	floatconv float64 conversions or Rat.Float() calls inside the exact
//	          kernels internal/core and internal/maxplus
//	droperr   discarded error results from Validate and the analysis
//	          entry points (bare calls or assignments to _)
//	minmaxint math.MinInt*/math.MaxInt* literals outside the arithmetic
//	          kernels internal/rat and internal/maxplus, where the
//	          max-plus −∞ sentinel (or checked rat arithmetic) belongs
//	rulelift  passes.Rule registrations missing (or nil) one of the
//	          Name/Reduce/Restore/Lift members, or whose lift function
//	          no _test.go file in the package references: a rule's lift
//	          is the only path from a reduced-graph answer back to the
//	          original graph, so it must be named and test-exercised
//	kindmap   error kinds returned by serve.KindOf (string literals)
//	          missing an explicit case in sdftool's exitCode table:
//	          every kind the server can put on the wire must map to a
//	          documented CLI exit code, not fall through the default
//	          (cross-directory; silent unless both sides are analysed)
//
// Usage:
//
//	sdfvet [dir | dir/...]...
//
// With no arguments it analyses ./... . Directories named testdata are
// skipped, matching the go tool. Findings print as
// "path:line:col: [check] message"; the exit status is 1 when any
// finding is reported and 2 on usage or parse errors.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	findings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfvet:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// finding is one reported violation.
type finding struct {
	pos   token.Position
	check string
	msg   string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.check, f.msg)
}

// run analyses the packages named by args (default "./...") and writes
// findings to out, returning them for tests.
func run(args []string, out io.Writer) ([]finding, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "...")
		root = filepath.Clean(strings.TrimSuffix(root, string(filepath.Separator)))
		if root == "" || root == "."+string(filepath.Separator) {
			root = "."
		}
		if !recursive {
			dirs = append(dirs, root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var all []finding
	fset := token.NewFileSet()
	km := newKindMap()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		// Per-file checks run as files parse; the parsed set is kept per
		// directory for the checks that correlate code with its tests
		// (rulelift needs to know which lift functions the package's
		// _test.go files actually reference).
		var pkgFiles []parsedFile
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", path, err)
			}
			logical := logicalPath(path)
			all = append(all, analyzeFile(fset, file, logical)...)
			km.collect(fset, file, logical)
			pkgFiles = append(pkgFiles, parsedFile{
				file:    file,
				logical: logical,
				test:    strings.HasSuffix(e.Name(), "_test.go"),
			})
		}
		all = append(all, analyzeRuleLift(fset, pkgFiles)...)
	}
	all = append(all, km.findings()...)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range all {
		fmt.Fprintln(out, f)
	}
	return all, nil
}

// logicalPath strips everything up to and including a "testdata/src/"
// marker, so fixture trees mirror real package paths and get the same
// per-package check scoping as the code they imitate.
func logicalPath(path string) string {
	p := filepath.ToSlash(path)
	if i := strings.LastIndex(p, "testdata/src/"); i >= 0 {
		return p[i+len("testdata/src/"):]
	}
	return p
}
