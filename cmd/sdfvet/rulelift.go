package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// passesImport is the import path of the reduction pass manager whose
// Rule registrations the rulelift check audits.
const passesImport = "repro/internal/passes"

// parsedFile is one file of a directory, grouped so directory-level
// checks can correlate code files with their tests.
type parsedFile struct {
	file    *ast.File
	logical string
	test    bool
}

// ruleLiftFields are the members of passes.Rule that every registered
// reduction rule must populate: a rule without a reduce cannot fire,
// one without a restore breaks the reduction stack's pop, and one
// without a lift strands answers on the reduced graph.
var ruleLiftFields = []string{"Name", "Reduce", "Restore", "Lift"}

// analyzeRuleLift is the directory-level rulelift check: every
// passes.Rule composite literal in a non-test file must populate
// Name, Reduce, Restore and Lift with non-nil values, and the Lift
// function must be a named function that some _test.go file of the
// same directory references — an unexercised lift is exactly the kind
// of code only a production incident would run for the first time.
func analyzeRuleLift(fset *token.FileSet, files []parsedFile) []finding {
	// Identifiers mentioned anywhere in the directory's test files.
	testIdents := make(map[string]bool)
	for _, pf := range files {
		if !pf.test {
			continue
		}
		ast.Inspect(pf.file, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				testIdents[id.Name] = true
			}
			return true
		})
	}

	var out []finding
	for _, pf := range files {
		if pf.test {
			continue
		}
		pkgName := pf.file.Name.Name
		passesPkg := localImportNames(pf.file)[passesImport]
		isRuleType := func(e ast.Expr) bool {
			if id, ok := e.(*ast.Ident); ok {
				return pkgName == "passes" && id.Name == "Rule"
			}
			return isPkgSel(e, passesPkg, "Rule")
		}
		report := func(pos token.Pos, format string, args ...any) {
			out = append(out, finding{pos: fset.Position(pos), check: "rulelift",
				msg: fmt.Sprintf(format, args...)})
		}
		ast.Inspect(pf.file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || lit.Type == nil {
				return true
			}
			switch t := lit.Type.(type) {
			case *ast.ArrayType:
				if !isRuleType(t.Elt) {
					return true
				}
				for _, el := range lit.Elts {
					if rl, ok := el.(*ast.CompositeLit); ok && rl.Type == nil {
						checkRuleLit(rl, testIdents, report)
					}
				}
			default:
				if isRuleType(lit.Type) {
					checkRuleLit(lit, testIdents, report)
				}
			}
			return true
		})
	}
	return out
}

// checkRuleLit audits one Rule composite literal.
func checkRuleLit(lit *ast.CompositeLit, testIdents map[string]bool, report func(token.Pos, string, ...any)) {
	fields := make(map[string]ast.Expr, len(lit.Elts))
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// Positional Rule literals hide which member is which; the
			// field checks below would silently pass, so refuse them.
			report(lit.Lbrace, "passes.Rule literal with positional fields; use keyed fields so reduce/restore/lift stay auditable")
			return
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			fields[key.Name] = kv.Value
		}
	}
	name := ruleLitName(fields["Name"])
	for _, f := range ruleLiftFields {
		v, ok := fields[f]
		if !ok {
			report(lit.Lbrace, "rule %s missing %s; every registered rule needs a reduce/restore/lift triple", name, f)
			continue
		}
		if id, ok := v.(*ast.Ident); ok && id.Name == "nil" {
			report(lit.Lbrace, "rule %s has nil %s; every registered rule needs a reduce/restore/lift triple", name, f)
		}
	}
	lift, ok := fields["Lift"]
	if !ok {
		return
	}
	switch l := lift.(type) {
	case *ast.Ident:
		if l.Name != "nil" && !testIdents[l.Name] {
			report(lit.Lbrace, "rule %s lift %s is not referenced by any _test.go file in this package; lifts must be exercised by tests", name, l.Name)
		}
	case *ast.FuncLit:
		report(lit.Lbrace, "rule %s lift is an anonymous function; name it so tests can exercise it directly", name)
	}
}

// ruleLitName renders the Name field of a Rule literal for messages: a
// string literal's text, a selector's dotted path, or <unnamed>.
func ruleLitName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return strings.Trim(e.Value, `"`)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
	case *ast.Ident:
		return e.Name
	}
	return "<unnamed>"
}
