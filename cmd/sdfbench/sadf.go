package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/sadf"
	"repro/internal/sdf"
)

// sadfCase is one synthetic FSM-SADF model's measured analysis: the
// automaton size against the wall time of the full pipeline (symbolic
// matrix extraction per scenario, Howard's iteration on the automaton,
// certificate construction and re-check).
type sadfCase struct {
	Name           string `json:"name"`
	Scenarios      int    `json:"scenarios"`
	States         int    `json:"states"`
	Tokens         int    `json:"tokens"`
	AutomatonNodes int    `json:"automaton_nodes"`
	AutomatonEdges int    `json:"automaton_edges"`
	Period         string `json:"period,omitempty"`
	Unbounded      bool   `json:"unbounded,omitempty"`
	WallNS         int64  `json:"wall_ns"`
	Verified       bool   `json:"verified"`
	Error          string `json:"error,omitempty"`
}

// sadfModel builds a synthetic FSM-SADF instance: a ring of actors with
// one token per channel (so the token count equals the ring size) under
// scenarios that differ only in execution times, and an FSM that cycles
// through all scenario states with a self-loop on each. Every scenario
// shares the ring's token signature, so the model always validates.
func sadfModel(scenarios, ring int) (*sadf.Model, error) {
	m := &sadf.Model{Name: fmt.Sprintf("synth-s%d-r%d", scenarios, ring)}
	for k := 0; k < scenarios; k++ {
		g := sdf.NewGraph(fmt.Sprintf("scn%d", k))
		for i := 0; i < ring; i++ {
			// Exec times vary by actor and scenario so the critical
			// cycle genuinely depends on the scenario sequence.
			if _, err := g.AddActor(fmt.Sprintf("A%d", i), int64(1+(i*7+k*3)%5)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < ring; i++ {
			g.MustAddChannelByName(fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", (i+1)%ring), 1, 1, 1)
		}
		m.Scenarios = append(m.Scenarios, sadf.Scenario{Name: fmt.Sprintf("s%d", k), Graph: g})
	}
	for k := 0; k < scenarios; k++ {
		q := fmt.Sprintf("q%d", k)
		m.States = append(m.States, sadf.State{Name: q, Scenario: fmt.Sprintf("s%d", k)})
		m.Transitions = append(m.Transitions,
			sadf.Transition{From: q, To: fmt.Sprintf("q%d", (k+1)%scenarios)})
		if scenarios > 1 {
			m.Transitions = append(m.Transitions, sadf.Transition{From: q, To: q})
		}
	}
	m.Initial = "q0"
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// runSADF measures worst-case FSM-SADF analysis wall time against
// automaton size on a ladder of synthetic models and merges the cases
// into the JSON report at path (created if absent, other sections of an
// existing report are preserved). Every answer's certificate is
// re-checked against the scenario graphs before the case may claim
// "verified".
func runSADF(w io.Writer, path string, deadline time.Duration) error {
	sizes := []struct{ scenarios, ring int }{
		{2, 4}, {2, 16}, {4, 16}, {4, 64}, {8, 64}, {16, 128},
	}
	fmt.Fprintln(w, "FSM-SADF analysis wall time vs automaton size (synthetic scenario ladders):")
	fmt.Fprintf(w, "%-16s %10s %8s %8s %8s %12s   %s\n",
		"case", "scenarios", "tokens", "nodes", "edges", "wall", "worst-case period")
	var cases []sadfCase
	for _, sz := range sizes {
		m, err := sadfModel(sz.scenarios, sz.ring)
		if err != nil {
			return err
		}
		c := sadfCase{Name: m.Name, Scenarios: sz.scenarios, States: sz.scenarios, Tokens: m.Tokens()}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		t0 := time.Now()
		res, cert, err := sadf.Analyze(ctx, m)
		c.WallNS = time.Since(t0).Nanoseconds()
		result := ""
		if err != nil {
			c.Error = err.Error()
			result = "error: " + c.Error
		} else {
			c.AutomatonNodes = res.AutomatonNodes
			c.AutomatonEdges = res.AutomatonEdges
			c.Unbounded = res.Unbounded
			if res.Unbounded {
				result = "unbounded"
			} else {
				c.Period = res.Period.String()
				result = c.Period
			}
			if err := cert.Check(ctx, m.Graphs()); err != nil {
				result += "  CERT FAILED: " + err.Error()
			} else {
				c.Verified = true
			}
		}
		cancel()
		fmt.Fprintf(w, "%-16s %10d %8d %8d %8d %12v   %s\n",
			c.Name, c.Scenarios, c.Tokens, c.AutomatonNodes, c.AutomatonEdges,
			time.Duration(c.WallNS).Round(time.Microsecond), result)
		cases = append(cases, c)
	}
	if err := mergeSADFCases(path, cases); err != nil {
		return err
	}
	fmt.Fprintf(w, "merged %d sadf cases into %s\n\n", len(cases), path)
	return nil
}

// mergeSADFCases writes the cases under the "sadf_cases" key of the
// JSON report at path, preserving whatever other sections (the engine
// timings, say) an earlier run put there.
func mergeSADFCases(path string, cases []sadfCase) error {
	report := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("sadf: existing report %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(cases)
	if err != nil {
		return err
	}
	report["sadf_cases"] = enc
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	out := json.NewEncoder(f)
	out.SetIndent("", "  ")
	return out.Encode(report)
}
