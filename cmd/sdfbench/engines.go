package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	sdfreduce "repro"
	"repro/internal/benchmarks"
)

// engineTiming is the measured outcome of one engine on one graph.
type engineTiming struct {
	Engine    string `json:"engine"`
	OK        bool   `json:"ok"`
	Period    string `json:"period,omitempty"`
	Unbounded bool   `json:"unbounded,omitempty"`
	Error     string `json:"error,omitempty"`
	WallNS    int64  `json:"wall_ns"`
}

// engineCase is one benchmark graph with all engine timings.
type engineCase struct {
	Name     string         `json:"name"`
	Actors   int            `json:"actors"`
	Channels int            `json:"channels"`
	Engines  []engineTiming `json:"engines"`
}

// enginesReport is the JSON document emitted by -engines (the CI gate
// writes it to BENCH_3.json).
type enginesReport struct {
	Benchmark string       `json:"benchmark"`
	Cases     []engineCase `json:"cases"`
}

// runEngines measures the throughput wall time of every engine — the
// three direct ones plus the hedged race — on the seed benchmark
// graphs, prints a summary table and writes the JSON report to path.
// Engines that fail (an explosive conversion refused by the budget, for
// instance) are recorded with their error, not treated as fatal: the
// benchmark documents engine behaviour, it does not require every
// engine to fit every graph.
func runEngines(w io.Writer, path string, deadline time.Duration) error {
	report := enginesReport{Benchmark: "throughput-engines"}
	fmt.Fprintln(w, "Throughput engine wall times over the benchmark suite:")
	fmt.Fprintf(w, "%-24s %-12s %12s   %s\n", "case", "engine", "wall", "result")
	for _, c := range benchmarks.All() {
		g := c.Graph()
		ec := engineCase{Name: c.Name, Actors: g.NumActors(), Channels: g.NumChannels()}
		for _, m := range []sdfreduce.Method{
			sdfreduce.MethodMatrix, sdfreduce.MethodStateSpace, sdfreduce.MethodHSDF,
		} {
			ec.Engines = append(ec.Engines, timeEngine(m.String(), deadline, func(ctx context.Context) (sdfreduce.Throughput, error) {
				return sdfreduce.ComputeThroughputCtx(ctx, g, m)
			}))
		}
		ec.Engines = append(ec.Engines, timeEngine("hedged", deadline, func(ctx context.Context) (sdfreduce.Throughput, error) {
			tp, _, err := sdfreduce.ComputeThroughputHedged(ctx, g)
			return tp, err
		}))
		for _, e := range ec.Engines {
			result := e.Period
			if e.Unbounded {
				result = "unbounded"
			}
			if !e.OK {
				result = "error: " + e.Error
			}
			fmt.Fprintf(w, "%-24s %-12s %12v   %s\n",
				c.Name, e.Engine, time.Duration(e.WallNS).Round(time.Microsecond), result)
		}
		report.Cases = append(report.Cases, ec)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// timeEngine runs one engine under the per-engine deadline and the
// default budget and captures its wall time and outcome.
func timeEngine(name string, deadline time.Duration, run func(context.Context) (sdfreduce.Throughput, error)) engineTiming {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	t0 := time.Now()
	tp, err := run(ctx)
	e := engineTiming{Engine: name, WallNS: time.Since(t0).Nanoseconds()}
	if err != nil {
		e.Error = err.Error()
		return e
	}
	e.OK = true
	if tp.Unbounded {
		e.Unbounded = true
	} else {
		e.Period = tp.Period.String()
	}
	return e
}
