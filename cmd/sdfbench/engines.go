package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	sdfreduce "repro"
	"repro/internal/benchmarks"
	"repro/internal/obs"
)

// engineTiming is the measured outcome of one engine on one graph.
type engineTiming struct {
	Engine    string `json:"engine"`
	OK        bool   `json:"ok"`
	Period    string `json:"period,omitempty"`
	Unbounded bool   `json:"unbounded,omitempty"`
	Error     string `json:"error,omitempty"`
	WallNS    int64  `json:"wall_ns"`
}

// engineCase is one benchmark graph with all engine timings.
type engineCase struct {
	Name     string         `json:"name"`
	Actors   int            `json:"actors"`
	Channels int            `json:"channels"`
	Engines  []engineTiming `json:"engines"`
}

// histSummary reduces one latency histogram series to the numbers a
// regression check wants: observation count and estimated p50/p99.
type histSummary struct {
	Series string `json:"series"`
	Count  int64  `json:"count"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
}

// reducedTiming is one engine's direct-vs-reduced comparison on one
// reducible graph: the same engine run on the original graph and on
// the pass-manager output (reduction and lift cost included in the
// reduced number).
type reducedTiming struct {
	Engine    string  `json:"engine"`
	DirectNS  int64   `json:"direct_ns"`
	ReducedNS int64   `json:"reduced_ns"`
	Speedup   float64 `json:"speedup"`
	Period    string  `json:"period,omitempty"`
	Match     bool    `json:"match"`
	Error     string  `json:"error,omitempty"`
}

// reducedCase is one reducible benchmark graph with its fixpoint shape
// and per-engine comparisons.
type reducedCase struct {
	Name            string          `json:"name"`
	Actors          int             `json:"actors"`
	Channels        int             `json:"channels"`
	ReducedActors   int             `json:"reduced_actors"`
	ReducedChannels int             `json:"reduced_channels"`
	Steps           int             `json:"steps"`
	Engines         []reducedTiming `json:"engines"`
}

// enginesReport is the JSON document emitted by -engines (the CI gate
// writes it to BENCH_3.json).
type enginesReport struct {
	Benchmark string       `json:"benchmark"`
	Cases     []engineCase `json:"cases"`
	// ReducedVsDirect compares each engine on reducible graphs with and
	// without the reduction pass manager in front.
	ReducedVsDirect []reducedCase `json:"reduced_vs_direct"`
	// Metrics summarises the observability registry the run fed:
	// aggregate per-engine wall-time distributions plus the per-phase
	// spans the engines recorded while running.
	Metrics []histSummary `json:"metrics"`
}

// runEngines measures the throughput wall time of every engine — the
// three direct ones plus the hedged race — on the seed benchmark
// graphs, prints a summary table and writes the JSON report to path.
// Engines that fail (an explosive conversion refused by the budget, for
// instance) are recorded with their error, not treated as fatal: the
// benchmark documents engine behaviour, it does not require every
// engine to fit every graph.
func runEngines(w io.Writer, path string, deadline time.Duration) error {
	report := enginesReport{Benchmark: "throughput-engines"}
	// Every engine run is observed into a standalone registry: the
	// harness records each wall time into the per-engine histogram, and
	// the engines themselves (seeing the registry through the context)
	// record their per-phase spans. The snapshot lands in the report.
	reg := obs.New()
	fmt.Fprintln(w, "Throughput engine wall times over the benchmark suite:")
	fmt.Fprintf(w, "%-24s %-12s %12s   %s\n", "case", "engine", "wall", "result")
	for _, c := range benchmarks.All() {
		g := c.Graph()
		ec := engineCase{Name: c.Name, Actors: g.NumActors(), Channels: g.NumChannels()}
		for _, m := range []sdfreduce.Method{
			sdfreduce.MethodMatrix, sdfreduce.MethodStateSpace, sdfreduce.MethodHSDF,
		} {
			// The per-engine table times the raw engines: the reduction
			// pass manager is benchmarked separately below, against these
			// direct numbers.
			ec.Engines = append(ec.Engines, timeEngine(reg, m.String(), deadline, func(ctx context.Context) (sdfreduce.Throughput, error) {
				return sdfreduce.ComputeThroughputDirectCtx(ctx, g, m)
			}))
		}
		ec.Engines = append(ec.Engines, timeEngine(reg, "hedged", deadline, func(ctx context.Context) (sdfreduce.Throughput, error) {
			tp, _, err := sdfreduce.ComputeThroughputHedged(ctx, g)
			return tp, err
		}))
		for _, e := range ec.Engines {
			result := e.Period
			if e.Unbounded {
				result = "unbounded"
			}
			if !e.OK {
				result = "error: " + e.Error
			}
			fmt.Fprintf(w, "%-24s %-12s %12v   %s\n",
				c.Name, e.Engine, time.Duration(e.WallNS).Round(time.Microsecond), result)
		}
		report.Cases = append(report.Cases, ec)
	}
	report.ReducedVsDirect = runReducedVsDirect(w, reg, deadline)
	report.Metrics = summariseHistograms(reg)
	fmt.Fprintln(w, "Latency distributions (count, p50, p99):")
	for _, m := range report.Metrics {
		fmt.Fprintf(w, "%-58s %6d %12v %12v\n", m.Series, m.Count,
			time.Duration(m.P50NS).Round(time.Microsecond),
			time.Duration(m.P99NS).Round(time.Microsecond))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// runReducedVsDirect times every engine on the reducible benchmark
// suite twice: once directly on the original graph and once through
// the reduction pass manager (ComputeThroughputCtx — fixpoint
// reduction, analysis of the reduced graph, lift of the answer; the
// reduced wall time charges all three). Both paths produce the same
// exact answer, which the comparison checks, so the only difference is
// where the work happens.
func runReducedVsDirect(w io.Writer, reg *obs.Registry, deadline time.Duration) []reducedCase {
	fmt.Fprintln(w, "Reduced-vs-direct wall times on reducible graphs (reduction + lift cost included):")
	fmt.Fprintf(w, "%-24s %-12s %12s %12s %9s   %s\n",
		"case", "engine", "direct", "reduced", "speedup", "result")
	var out []reducedCase
	for _, c := range benchmarks.Reducible() {
		g := c.Graph()
		rc := reducedCase{Name: c.Name, Actors: g.NumActors(), Channels: g.NumChannels()}
		red, err := sdfreduce.ReduceGraph(context.Background(), g, sdfreduce.ReduceOptions{})
		if err == nil {
			rc.ReducedActors = red.Final.NumActors()
			rc.ReducedChannels = red.Final.NumChannels()
			rc.Steps = len(red.Steps)
		}
		for _, m := range []sdfreduce.Method{
			sdfreduce.MethodMatrix, sdfreduce.MethodStateSpace, sdfreduce.MethodHSDF,
		} {
			direct := timeEngine(reg, m.String(), deadline, func(ctx context.Context) (sdfreduce.Throughput, error) {
				return sdfreduce.ComputeThroughputDirectCtx(ctx, g, m)
			})
			reduced := timeEngine(reg, m.String()+"+reduce", deadline, func(ctx context.Context) (sdfreduce.Throughput, error) {
				return sdfreduce.ComputeThroughputCtx(ctx, g, m)
			})
			rt := reducedTiming{
				Engine:    m.String(),
				DirectNS:  direct.WallNS,
				ReducedNS: reduced.WallNS,
			}
			if reduced.WallNS > 0 {
				rt.Speedup = float64(direct.WallNS) / float64(reduced.WallNS)
			}
			result := ""
			switch {
			case !direct.OK:
				rt.Error = "direct: " + direct.Error
				result = "error: " + rt.Error
			case !reduced.OK:
				rt.Error = "reduced: " + reduced.Error
				result = "error: " + rt.Error
			default:
				rt.Period = reduced.Period
				rt.Match = direct.Period == reduced.Period && direct.Unbounded == reduced.Unbounded
				result = reduced.Period
				if reduced.Unbounded {
					result = "unbounded"
				}
				if !rt.Match {
					result += "  MISMATCH vs direct " + direct.Period
				}
			}
			fmt.Fprintf(w, "%-24s %-12s %12v %12v %8.1fx   %s\n",
				c.Name, rt.Engine,
				time.Duration(rt.DirectNS).Round(time.Microsecond),
				time.Duration(rt.ReducedNS).Round(time.Microsecond),
				rt.Speedup, result)
			rc.Engines = append(rc.Engines, rt)
		}
		fmt.Fprintf(w, "%-24s %-12s (%d actors, %d channels -> %d actors, %d channels in %d steps)\n",
			c.Name, "", rc.Actors, rc.Channels, rc.ReducedActors, rc.ReducedChannels, rc.Steps)
		out = append(out, rc)
	}
	fmt.Fprintln(w)
	return out
}

// summariseHistograms renders every histogram series of the registry as
// count + estimated quantiles, deterministically ordered.
func summariseHistograms(reg *obs.Registry) []histSummary {
	var out []histSummary
	for _, s := range reg.Snapshot() {
		if s.Kind != obs.KindHistogram {
			continue
		}
		series := s.Name
		if len(s.Labels) > 0 {
			kv := make([]string, 0, len(s.Labels)/2)
			for i := 0; i+1 < len(s.Labels); i += 2 {
				kv = append(kv, fmt.Sprintf("%s=%q", s.Labels[i], s.Labels[i+1]))
			}
			series += "{" + strings.Join(kv, ",") + "}"
		}
		out = append(out, histSummary{
			Series: series,
			Count:  s.Hist.Count,
			P50NS:  s.Hist.Quantile(0.50).Nanoseconds(),
			P99NS:  s.Hist.Quantile(0.99).Nanoseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series < out[j].Series })
	return out
}

// timeEngine runs one engine under the per-engine deadline and the
// default budget and captures its wall time and outcome, feeding both
// the per-engine histogram and the context the engines' spans report to.
func timeEngine(reg *obs.Registry, name string, deadline time.Duration, run func(context.Context) (sdfreduce.Throughput, error)) engineTiming {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	ctx = obs.WithRegistry(ctx, reg)
	t0 := time.Now()
	tp, err := run(ctx)
	wall := time.Since(t0)
	reg.Histogram(obs.MetricEngineSeconds, "engine", name).Observe(wall)
	e := engineTiming{Engine: name, WallNS: wall.Nanoseconds()}
	if err != nil {
		e.Error = err.Error()
		return e
	}
	e.OK = true
	if tp.Unbounded {
		e.Unbounded = true
	} else {
		e.Period = tp.Period.String()
	}
	return e
}
