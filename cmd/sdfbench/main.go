// Command sdfbench regenerates the paper's experimental results:
//
//	sdfbench -table1     Table 1 / Figure 6: HSDF conversion sizes over
//	                     the benchmark suite, with conversion run times
//	sdfbench -fig1       the §4.1 / Figure 1 abstraction accuracy sweep
//	sdfbench -fig5       the §7 / Figure 5 prefetch model (1584 blocks)
//	sdfbench -engines F  per-engine throughput wall times over the
//	                     benchmark suite, written to the JSON file F
//	sdfbench -sadf F     FSM-SADF analysis wall time vs automaton size
//	                     over synthetic scenario ladders, merged into
//	                     the JSON file F
//	sdfbench -all        everything
//
// Output is aligned text with one row per table row or figure series
// point, paper values alongside measured ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	sdfreduce "repro"
	"repro/internal/benchmarks"
)

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1 / Figure 6")
	fig1 := flag.Bool("fig1", false, "reproduce the Figure 1 abstraction sweep")
	fig5 := flag.Bool("fig5", false, "reproduce the Figure 5 prefetch experiment")
	all := flag.Bool("all", false, "run every experiment")
	blocks := flag.Int("blocks", 1584, "fig5: computations per frame")
	engines := flag.String("engines", "", "measure throughput wall times per engine over the benchmark suite and write this JSON file")
	sadfOut := flag.String("sadf", "", "measure FSM-SADF analysis wall time vs automaton size and merge the cases into this JSON file")
	deadline := flag.Duration("deadline", 10*time.Second, "engines/sadf: per-case wall-clock cap (slow cases are recorded as deadline errors)")
	flag.Parse()

	if *all {
		*table1, *fig1, *fig5 = true, true, true
	}
	if !*table1 && !*fig1 && !*fig5 && *engines == "" && *sadfOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	w := os.Stdout
	if *engines != "" {
		if err := runEngines(w, *engines, *deadline); err != nil {
			fail(err)
		}
	}
	if *sadfOut != "" {
		if err := runSADF(w, *sadfOut, *deadline); err != nil {
			fail(err)
		}
	}
	if *table1 {
		if err := runTable1(w); err != nil {
			fail(err)
		}
	}
	if *fig1 {
		if err := runFigure1(w); err != nil {
			fail(err)
		}
	}
	if *fig5 {
		if err := runFigure5(w, *blocks); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sdfbench:", err)
	os.Exit(1)
}

func runTable1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: HSDF Transformations Compared (measured on reconstructed graphs)")
	fmt.Fprintf(w, "%-24s %12s %12s %8s   %10s %8s %8s %8s\n",
		"test case", "traditional", "new conv.", "ratio", "paper:", "trad", "new", "ratio")
	for _, c := range benchmarks.All() {
		g := c.Graph()
		t0 := time.Now()
		_, st, err := sdfreduce.ConvertTraditional(g)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		dTrad := time.Since(t0)
		t0 = time.Now()
		_, _, sn, err := sdfreduce.ConvertSymbolic(g)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		dNew := time.Since(t0)
		ratio := float64(st.Actors) / float64(sn.Actors())
		paperRatio := float64(c.PaperTraditional) / float64(c.PaperNew)
		fmt.Fprintf(w, "%-24s %12d %12d %8.2f   %10s %8d %8d %8.2f\n",
			c.Name, st.Actors, sn.Actors(), ratio, "", c.PaperTraditional, c.PaperNew, paperRatio)
		fmt.Fprintf(w, "%-24s %12s %12s   (conversion run time: traditional %v, new %v)\n",
			"", "", "", dTrad.Round(time.Microsecond), dNew.Round(time.Microsecond))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 6 series (log-scale bar chart data: actors per case and algorithm):")
	fmt.Fprintf(w, "%-24s %12s %12s\n", "case", "traditional", "new")
	for _, c := range benchmarks.All() {
		g := c.Graph()
		_, st, err := sdfreduce.ConvertTraditional(g)
		if err != nil {
			return err
		}
		_, _, sn, err := sdfreduce.ConvertSymbolic(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-24s %12d %12d\n", c.Name, st.Actors, sn.Actors())
	}
	fmt.Fprintln(w)
	return nil
}

func runFigure1(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1 / §4.1: abstraction accuracy on the regular prefetch graph")
	fmt.Fprintf(w, "%-6s %14s %16s %16s %10s\n",
		"n", "true period", "true throughput", "abstract bound", "rel. err")
	for _, n := range []int{6, 8, 12, 16, 24, 32, 48, 64, 96, 128} {
		g, err := sdfreduce.Figure1(n)
		if err != nil {
			return err
		}
		tp, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
		if err != nil {
			return err
		}
		ab, err := sdfreduce.InferAbstraction(g)
		if err != nil {
			return err
		}
		abstract, res, err := sdfreduce.Abstract(g, ab)
		if err != nil {
			return err
		}
		if err := sdfreduce.VerifyAbstractionConservative(g, ab); err != nil {
			return fmt.Errorf("n=%d: conservativity proof failed: %w", n, err)
		}
		r, err := sdfreduce.MaxCycleMean(abstract)
		if err != nil {
			return err
		}
		bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N)
		if err != nil {
			return err
		}
		trueTau, err := tp.IterationThroughput()
		if err != nil {
			return err
		}
		relErr := 1 - bound.Float()/trueTau.Float()
		fmt.Fprintf(w, "%-6d %14v %16v %16v %9.1f%%\n",
			n, tp.Period, trueTau, bound, 100*relErr)
	}
	fmt.Fprintln(w, "(paper: true throughput 1/23 for n = 6, bound 1/(5n); error vanishes as n grows)")
	fmt.Fprintln(w)
	return nil
}

func runFigure5(w io.Writer, blocks int) error {
	fmt.Fprintf(w, "Figure 5 / §7: remote-memory prefetch model with %d block computations\n", blocks)
	g, err := sdfreduce.Prefetch(blocks, 3)
	if err != nil {
		return err
	}
	t0 := time.Now()
	tp, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
	if err != nil {
		return err
	}
	dOrig := time.Since(t0)
	ab, err := sdfreduce.InferAbstraction(g)
	if err != nil {
		return err
	}
	t0 = time.Now()
	abstract, res, err := sdfreduce.Abstract(g, ab)
	if err != nil {
		return err
	}
	r, err := sdfreduce.MaxCycleMean(abstract)
	if err != nil {
		return err
	}
	bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N)
	if err != nil {
		return err
	}
	dAbs := time.Since(t0)
	trueTau, err := tp.IterationThroughput()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  original:  %d actors, %d channels; period %v (analysed in %v)\n",
		g.NumActors(), g.NumChannels(), tp.Period, dOrig.Round(time.Microsecond))
	fmt.Fprintf(w, "  abstract:  %d actors, %d channels; period %v, N = %d (analysed in %v)\n",
		abstract.NumActors(), abstract.NumChannels(), r.CycleMean, res.N, dAbs.Round(time.Microsecond))
	fmt.Fprintf(w, "  true throughput (frames): %v\n", trueTau)
	fmt.Fprintf(w, "  abstraction bound:        %v\n", bound)
	if bound.Equal(trueTau) {
		fmt.Fprintln(w, "  => the abstraction has EXACTLY the throughput of the original graph,")
		fmt.Fprintln(w, "     as §7 reports for this model.")
	} else {
		fmt.Fprintln(w, "  => bound differs from the true throughput (conservative).")
	}
	if err := sdfreduce.VerifyAbstractionConservative(g, ab); err != nil {
		return fmt.Errorf("conservativity proof failed: %w", err)
	}
	fmt.Fprintln(w, "  conservativity: proved via N-fold unfolding (Theorem 1)")
	fmt.Fprintln(w)
	return nil
}
