package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/sdfio"
	"repro/internal/serve"
	"repro/internal/testutil"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL, a cancel that plays the role of SIGTERM, and a
// channel carrying run's exit error.
func startDaemon(t *testing.T, logw io.Writer, args ...string) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), logw, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon died on startup: %v", err)
		return "", nil, nil
	}
}

func postGraph(t *testing.T, base, method string) (*http.Response, []byte) {
	t.Helper()
	var text bytes.Buffer
	if err := sdfio.WriteText(&text, gen.Figure2()); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.RequestPayload{GraphText: text.String(), Method: method})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/throughput", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestDaemonLifecycle boots the daemon, serves real HTTP traffic,
// drains it via the SIGTERM path, and asserts a clean exit with no
// leaked goroutines.
func TestDaemonLifecycle(t *testing.T) {
	defer testutil.FailOnLeakedGoroutines(t, "repro/internal/serve")
	defer testutil.FailOnLeakedGoroutines(t, "repro/internal/analysis")
	var log bytes.Buffer
	base, sigterm, done := startDaemon(t, &log)

	resp, body := postGraph(t, base, "hedged")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("throughput: %d %s", resp.StatusCode, body)
	}
	var res serve.ResultPayload
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Period == "" {
		t.Errorf("result = %+v", res)
	}

	// Second identical request: answered from the cache.
	if _, body := postGraph(t, base, "hedged"); !bytes.Contains(body, []byte(`"cached": true`)) {
		t.Errorf("repeat not cached: %s", body)
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(base + probe)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", probe, r.StatusCode)
		}
	}

	// Injection is off by default: the wire must refuse it.
	var text bytes.Buffer
	if err := sdfio.WriteText(&text, gen.Figure2()); err != nil {
		t.Fatal(err)
	}
	injBody, err := json.Marshal(serve.RequestPayload{
		GraphText: text.String(),
		Inject:    []serve.InjectPayload{{Engine: "matrix", Mode: "panic"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(base+"/v1/throughput", "application/json", bytes.NewReader(injBody))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusForbidden {
		t.Errorf("injection without -allow-injection = %d, want 403", r.StatusCode)
	}

	sigterm()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\nlog:\n%s", err, log.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(log.String(), "drained cleanly") {
		t.Errorf("log missing clean-drain line:\n%s", log.String())
	}
}

func TestDaemonReadyzFlipsOnDrain(t *testing.T) {
	defer testutil.FailOnLeakedGoroutines(t, "repro/internal/serve")
	var log bytes.Buffer
	base, sigterm, done := startDaemon(t, &log)
	sigterm()
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
	// After run returns, the listener is closed: requests must fail at
	// the connection level, not hang.
	if _, err := http.Get(base + "/readyz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, io.Discard, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"positional"}, io.Discard, nil); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
