package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/testutil"
)

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestDaemonMetricsSurface: the daemon always carries a registry —
// after traffic, /metrics exposes non-zero request and cache series,
// /debug/vars parses, /debug/events carries the ring — while
// /debug/pprof stays 404 because -pprof was not given.
func TestDaemonMetricsSurface(t *testing.T) {
	defer testutil.FailOnLeakedGoroutines(t, "repro/internal/serve")
	var log bytes.Buffer
	base, sigterm, done := startDaemon(t, &log)
	defer func() { sigterm(); <-done }()

	// Two identical requests: one computed, one cache hit.
	for i := 0; i < 2; i++ {
		resp, body := postGraph(t, base, "hedged")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}

	code, data := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	samples, err := obs.ParseText(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, data)
	}
	want := map[string]bool{
		obs.MetricRequests + `{outcome="served"}`: false,
		obs.MetricCacheEvents + `{event="hit"}`:   false,
		obs.MetricCacheEvents + `{event="miss"}`:  false,
		obs.MetricRequestSeconds + "_count":       false,
	}
	for _, s := range samples {
		for key := range want {
			name, rest, _ := strings.Cut(key, "{")
			if s.Name != name {
				continue
			}
			match := true
			if rest != "" {
				kv := strings.SplitN(strings.TrimSuffix(rest, "}"), "=", 2)
				if s.Labels[kv[0]] != strings.Trim(kv[1], `"`) {
					match = false
				}
			}
			if match && s.Value > 0 {
				want[key] = true
			}
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("no non-zero sample for %s in:\n%s", key, data)
		}
	}

	if code, data := getBody(t, base+"/debug/vars"); code != http.StatusOK || !bytes.Contains(data, []byte("memstats")) {
		t.Errorf("/debug/vars = %d, memstats present = %v", code, bytes.Contains(data, []byte("memstats")))
	}
	if code, data := getBody(t, base+"/debug/events"); code != http.StatusOK || !bytes.Contains(data, []byte("ladder.attempt")) && !bytes.Contains(data, []byte("hedge.attempt")) {
		t.Errorf("/debug/events = %d, body %s", code, data)
	}
	if code, _ := getBody(t, base+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -pprof = %d, want 404", code)
	}
}

// TestDaemonPprofOptIn: -pprof exposes the profiling handlers; -events=0
// disables the event ring and /debug/events 404s.
func TestDaemonPprofOptIn(t *testing.T) {
	defer testutil.FailOnLeakedGoroutines(t, "repro/internal/serve")
	var log bytes.Buffer
	base, sigterm, done := startDaemon(t, &log, "-pprof", "-events", "0")
	defer func() { sigterm(); <-done }()

	code, data := getBody(t, base+"/debug/pprof/")
	if code != http.StatusOK || !bytes.Contains(data, []byte("goroutine")) {
		t.Errorf("/debug/pprof/ with -pprof = %d", code)
	}
	if code, _ := getBody(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	// The analysis surface still works behind the pprof mux.
	if resp, body := postGraph(t, base, "matrix"); resp.StatusCode != http.StatusOK {
		t.Errorf("throughput behind pprof mux = %d %s", resp.StatusCode, body)
	}
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics behind pprof mux = %d", code)
	}
	if code, _ := getBody(t, base+"/debug/events"); code != http.StatusNotFound {
		t.Errorf("/debug/events with -events=0 = %d, want 404", code)
	}
	if !strings.Contains(log.String(), "pprof profiling exposed") {
		t.Errorf("log missing pprof warning:\n%s", log.String())
	}
}
