// Command sdfserved is the long-running analysis daemon: an HTTP front
// end over the internal/serve layer, built for sustained concurrent
// traffic of untrusted graphs. Admission control refuses work that does
// not fit (HTTP 429 + Retry-After), per-engine circuit breakers shed
// engines that start panicking or blowing deadlines, identical requests
// are deduplicated and answered from a bounded result cache, and
// SIGTERM triggers a graceful drain: admission stops, /readyz turns
// 503, in-flight analyses finish under the drain deadline, stragglers
// are cancelled.
//
// Under overload the daemon browns out instead of refusing: queue
// pressure and sustained p99 breaches walk a degradation ladder
// (exact → bounded → stale-cache → shed) that swaps exact analyses for
// certified conservative bounds and then for stale cache entries, every
// degraded answer labelled with a "degradation" field and the brownout
// level exported as sdf_degradation_level. Clients that cannot accept a
// degraded answer send "exact_only": true and get a 429 with a
// Retry-After sized from the queue's drain estimate.
//
// Usage:
//
//	sdfserved [flags]
//
// Endpoints:
//
//	POST /v1/throughput  analyse a graph; body {"graph": {...}} or
//	                     {"graph_text": "..."} plus optional "method"
//	                     (hedged|matrix|statespace|hsdf), "timeout_ms",
//	                     "budget"
//	POST /v1/batch       analyse many graphs under one shared deadline;
//	                     body {"items": [<request>, ...], "deadline_ms":
//	                     ...}. Items run cheapest-first with the deadline
//	                     carved into per-item budgets; every item gets
//	                     its own result entry (ok | bounded | degraded |
//	                     item-error, each success with its own
//	                     certificate) — one hostile graph yields one
//	                     error entry, never a batch-wide 5xx
//	GET  /healthz        full health report: breaker states, queue
//	                     depth, pool headroom, cache and admission
//	                     counters
//	GET  /readyz         200 while admitting, 503 while draining
//	GET  /metrics        Prometheus text exposition of the request,
//	                     cache, breaker and engine metrics
//	GET  /debug/vars     the same registry as expvar-compatible JSON
//	GET  /debug/events   recent structured pipeline events (ring buffer;
//	                     404 with -events=0)
//	GET  /debug/pprof/*  net/http/pprof profiles, only with -pprof
//
// The process exits 0 after a clean drain and 1 when the drain deadline
// forced straggler cancellation (or on any setup error).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sdfserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (the signal)
// and the subsequent drain finishes. When ready is non-nil the bound
// listen address is sent on it once the server accepts connections —
// tests use it to connect to a ":0" listener.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sdfserved", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr           = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers        = fs.Int("workers", 0, "concurrent analyses (0 = default)")
		queue          = fs.Int("queue", 0, "admission queue depth on top of the workers (0 = default)")
		pool           = fs.Int64("pool", 0, "global work-unit pool for admission control (0 = default)")
		cache          = fs.Int("cache", 0, "result cache entries (0 = default)")
		cacheTTL       = fs.Duration("cache-ttl", 0, "result freshness window; expired entries are recomputed when healthy and stale-served under brownout (0 = never expire)")
		degradeHold    = fs.Duration("degrade-hold", 0, "how long pressure must stay below a brownout level before stepping down one rung (0 = default 2s)")
		degradeP99     = fs.Duration("degrade-p99", 0, "p99 latency target; sustained breach escalates the brownout ladder (0 = default 1s)")
		timeout        = fs.Duration("timeout", 0, "default per-request analysis deadline (0 = server default)")
		maxTimeout     = fs.Duration("max-timeout", 0, "upper clamp on client-requested deadlines (0 = server default)")
		threshold      = fs.Int("breaker-threshold", 0, "consecutive failures that trip an engine's breaker (0 = default)")
		cooldown       = fs.Duration("breaker-cooldown", 0, "how long a tripped breaker refuses before probing (0 = default)")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits before cancelling stragglers")
		allowInjection = fs.Bool("allow-injection", false, "accept per-request fault injection (soak testing only; never in production)")
		events         = fs.Int("events", 256, "structured event ring capacity served by /debug/events (0 disables)")
		pprofOn        = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof (off by default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	reg := obs.New()
	if *events > 0 {
		reg.EnableEvents(*events)
	}
	s := serve.New(serve.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		PoolCapacity:     *pool,
		CacheEntries:     *cache,
		CacheTTL:         *cacheTTL,
		DegradeHold:      *degradeHold,
		DegradeTargetP99: *degradeP99,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		Breaker:          guard.BreakerOptions{Threshold: *threshold, Cooldown: *cooldown},
		AllowInjection:   *allowInjection,
		Obs:              reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := serve.NewHandler(s)
	if *pprofOn {
		// The profiling surface is opt-in: it exposes goroutine stacks
		// and heap contents, which do not belong on a production port by
		// default. The explicit registrations (rather than importing for
		// the DefaultServeMux side effect) keep it off this mux unless
		// the flag says otherwise.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	fmt.Fprintf(logw, "sdfserved: listening on %s\n", ln.Addr())
	if *allowInjection {
		fmt.Fprintln(logw, "sdfserved: fault injection ENABLED (soak mode)")
	}
	if *pprofOn {
		fmt.Fprintln(logw, "sdfserved: pprof profiling exposed under /debug/pprof")
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		s.Close()
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admission first so /readyz flips to 503 and
	// new requests are refused while in-flight analyses complete; then
	// shut the HTTP server down under the same deadline so handlers
	// still writing responses can finish.
	fmt.Fprintf(logw, "sdfserved: draining (deadline %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("http shutdown: %w", err)
	}
	if drainErr != nil {
		return fmt.Errorf("unclean drain: %w", drainErr)
	}
	h := s.Health()
	fmt.Fprintf(logw, "sdfserved: drained cleanly (served=%d failed=%d overloaded=%d cache hits=%d deduped=%d)\n",
		h.Served, h.Failed, h.Overloaded, h.CacheHits, h.Deduped)
	return nil
}
