package sdfreduce

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/transform"
)

// explosiveGraph returns a consistent, live chain A -> B -> C with
// per-link rate ratio r and unit-time self-loops, so its repetition
// vector is [1, r, r²] and the iteration length 1 + r + r² explodes
// while the symbolic engines only ever see three initial tokens.
func explosiveGraph(t testing.TB, r int) *Graph {
	t.Helper()
	g := NewGraph("boom")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	c := g.MustAddActor("C", 1)
	g.MustAddChannel(a, a, 1, 1, 1)
	g.MustAddChannel(b, b, 1, 1, 1)
	g.MustAddChannel(c, c, 1, 1, 1)
	g.MustAddChannel(a, b, r, 1, 0)
	g.MustAddChannel(b, c, r, 1, 0)
	return g
}

// hugeIterGraph is a five-actor chain with ratio 64 per link: iteration
// length ~17M firings, far beyond any sub-second deadline.
func hugeIterGraph(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph("huge")
	prev := g.MustAddActor("A0", 1)
	g.MustAddChannel(prev, prev, 1, 1, 1)
	for i := 1; i < 5; i++ {
		next := g.MustAddActor(string(rune('A'+i))+"0", 1)
		g.MustAddChannel(next, next, 1, 1, 1)
		g.MustAddChannel(prev, next, 64, 1, 0)
		prev = next
	}
	return g
}

// TestExplosiveGraphFastFailure is the acceptance scenario of the
// resilience runtime: an iteration length above 10^6 makes the
// traditional conversion refuse instantly under the default budget,
// while the resilient ladder still answers through the matrix engine.
func TestExplosiveGraphFastFailure(t *testing.T) {
	g := explosiveGraph(t, 1100) // Σq = 1 + 1100 + 1_210_000 > 10^6

	start := time.Now()
	_, _, err := ConvertTraditional(g)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("ConvertTraditional = %v, want ErrBudgetExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("budget refusal took %v, want < 1s", d)
	}

	tp, rep, err := ComputeThroughputResilient(context.Background(), g)
	if err != nil {
		t.Fatalf("resilient: %v\n%s", err, rep)
	}
	if rep.Winner != MethodMatrix {
		t.Errorf("winner = %v, want matrix\n%s", rep.Winner, rep)
	}
	// Period = max_a q[a]·exec[a] = 1100² for actor C.
	want := int64(1100 * 1100)
	if tp.Period.Num() != want || tp.Period.Den() != 1 {
		t.Errorf("resilient period = %v, want %d", tp.Period, want)
	}
	// The direct matrix engine agrees.
	mtp, err := ComputeThroughput(g, MethodMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if !mtp.Period.Equal(tp.Period) {
		t.Errorf("resilient %v != matrix %v", tp.Period, mtp.Period)
	}
	// The HSDF rung was skipped by the static size estimate, not run.
	var hsdf *EngineAttempt
	for i := range rep.Attempts {
		if rep.Attempts[i].Method == MethodHSDF {
			hsdf = &rep.Attempts[i]
		}
	}
	if hsdf == nil || !hsdf.Skipped {
		t.Errorf("HSDF rung not skipped:\n%s", rep)
	}
}

// TestDeadlineRespected proves the Ctx variants honour short deadlines
// on graphs whose iteration would otherwise run for a long time
// (satellite c): both return within a second, wrapping
// context.DeadlineExceeded so errors.Is works across the stack.
func TestDeadlineRespected(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func(ctx context.Context, g *Graph) error
	}{
		{"ConvertTraditionalCtx", func(ctx context.Context, g *Graph) error {
			_, _, err := ConvertTraditionalCtx(ctx, g)
			return err
		}},
		{"ComputeThroughputCtx/statespace", func(ctx context.Context, g *Graph) error {
			_, err := ComputeThroughputCtx(ctx, g, MethodStateSpace)
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := hugeIterGraph(t)
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			// Lift the work caps so only the deadline can stop the run.
			ctx = WithBudget(ctx, UnlimitedBudget())
			start := time.Now()
			err := tc.call(ctx, g)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("err = %v, want ErrCanceled in the chain", err)
			}
			if elapsed > time.Second {
				t.Errorf("returned after %v, want < 1s", elapsed)
			}
		})
	}
}

// TestOverflowRegressions drives sim and transform with near-overflow
// quantities (satellite b): arithmetic that used to wrap silently now
// reports structured errors.
func TestOverflowRegressions(t *testing.T) {
	// Valid repetition vector whose sum 1 + 2^62 + 2^62 overflows int64.
	sumOverflow := func() *Graph {
		g := NewGraph("sum-overflow")
		z := g.MustAddActor("Z", 1)
		a := g.MustAddActor("A", 1)
		b := g.MustAddActor("B", 1)
		g.MustAddChannel(z, a, 1<<62, 1, 0)
		g.MustAddChannel(a, b, 1, 1, 0)
		return g
	}

	t.Run("facade/iteration-length-overflow", func(t *testing.T) {
		// The facade's lint precheck already rejects the graph with a
		// structured diagnostic before the transform runs.
		ctx := WithBudget(context.Background(), UnlimitedBudget())
		_, _, err := ConvertTraditionalCtx(ctx, sumOverflow())
		var pre *PrecheckError
		if !errors.As(err, &pre) {
			t.Fatalf("err = %v, want *PrecheckError", err)
		}
	})

	t.Run("transform/iteration-length-overflow", func(t *testing.T) {
		// Callers bypassing the facade still hit the transform's own
		// checked estimate.
		ctx := guard.WithBudget(context.Background(), guard.Unlimited())
		_, _, err := transform.TraditionalCtx(ctx, sumOverflow())
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded (overflowed estimate)", err)
		}
	})

	t.Run("sim/firing-count-overflow", func(t *testing.T) {
		ctx := WithBudget(context.Background(), UnlimitedBudget())
		_, err := SimulateCtx(ctx, sumOverflow(), 1)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded (overflowed estimate)", err)
		}
	})

	t.Run("sim/event-time-overflow", func(t *testing.T) {
		// One self-looped actor with a near-max execution time: the
		// second firing's end time 2·2^62 exceeds int64.
		g := NewGraph("time-overflow")
		a := g.MustAddActor("A", 1<<62)
		g.MustAddChannel(a, a, 1, 1, 1)
		if _, err := Simulate(g, 4); err == nil {
			t.Fatal("simulation of overflowing event times succeeded")
		}
	})

	t.Run("sim/near-overflow-still-works", func(t *testing.T) {
		// The checked path must not reject values that merely come close.
		g := NewGraph("near")
		a := g.MustAddActor("A", 1<<61)
		g.MustAddChannel(a, a, 1, 1, 1)
		tr, err := Simulate(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Horizon != 1<<61 {
			t.Errorf("horizon = %d, want %d", tr.Horizon, int64(1)<<61)
		}
	})
}

// TestResilientReportOnTotalFailure checks the ladder reports every
// attempt even when no engine can answer.
func TestResilientReportOnTotalFailure(t *testing.T) {
	g := hugeIterGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ctx = WithBudget(ctx, UnlimitedBudget())
	_, rep, err := ComputeThroughputResilient(ctx, g)
	if err == nil {
		t.Fatal("resilient analysis under an expired deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if rep == nil || len(rep.Attempts) != 3 {
		t.Fatalf("report = %+v, want 3 attempts", rep)
	}
	if rep.Answered {
		t.Errorf("report claims an answer:\n%s", rep)
	}
}
