// Prefetch: the paper's running example (Figure 1 / §4.1) and its §7
// NoC-prefetch case study (Figure 5). A large regular SDF graph modelling
// block-based processing with remote-memory prefetching is abstracted
// into a handful of actors; the abstract graph's throughput, divided by
// the round length N, conservatively bounds the original's — exactly for
// the Figure-5 model, and with vanishing error for the Figure-1 family.
//
// Run with: go run ./examples/prefetch
package main

import (
	"fmt"
	"log"
	"time"

	sdfreduce "repro"
)

func main() {
	fmt.Println("== Figure 1: regular prefetch graph, growing n ==")
	for _, n := range []int{6, 12, 24, 48} {
		analyse(n)
	}

	fmt.Println("\n== Figure 5: NoC prefetch model, 1584 block computations per frame ==")
	g, err := sdfreduce.Prefetch(1584, 3)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	tp, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
	if err != nil {
		log.Fatal(err)
	}
	full := time.Since(start)

	ab, err := sdfreduce.InferAbstraction(g)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	abstract, res, err := sdfreduce.Abstract(g, ab)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sdfreduce.MaxCycleMean(abstract)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N)
	if err != nil {
		log.Fatal(err)
	}
	reduced := time.Since(start)

	trueTau, err := tp.IterationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original graph:  %5d actors, analysed in %v, frame throughput %v\n",
		g.NumActors(), full.Round(time.Millisecond), trueTau)
	fmt.Printf("abstract graph:  %5d actors, analysed in %v, bound %v\n",
		abstract.NumActors(), reduced.Round(time.Millisecond), bound)
	if bound.Equal(trueTau) {
		fmt.Println("the abstraction is EXACT for this model (§7)")
	}
	if err := sdfreduce.VerifyAbstractionConservative(g, ab); err != nil {
		log.Fatal("conservativity proof failed: ", err)
	}
	fmt.Println("conservativity mechanically proved via the N-fold unfolding (Theorem 1)")
}

func analyse(n int) {
	g, err := sdfreduce.Figure1(n)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
	if err != nil {
		log.Fatal(err)
	}
	ab, err := sdfreduce.InferAbstraction(g)
	if err != nil {
		log.Fatal(err)
	}
	abstract, res, err := sdfreduce.Abstract(g, ab)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sdfreduce.MaxCycleMean(abstract)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := sdfreduce.AbstractionThroughputBound(r.CycleMean, res.N)
	if err != nil {
		log.Fatal(err)
	}
	tau, err := tp.IterationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%3d: %3d actors -> %d abstract; true throughput %8v, bound %8v (err %.1f%%)\n",
		n, g.NumActors(), abstract.NumActors(), tau, bound,
		100*(1-bound.Float()/tau.Float()))
}
