// Cyclostatic: extends the paper's reductions beyond plain SDF to
// cyclo-static dataflow (CSDF, cited by the paper's buffer-sizing
// applications [18, 19]). A two-phase video scaler is analysed with the
// same symbolic max-plus machinery — the iteration matrix, its
// eigenvalue, and the Figure-4 HSDF construction all carry over — and the
// result is cross-checked against discrete-event simulation.
//
// Run with: go run ./examples/cyclostatic
package main

import (
	"fmt"
	"log"

	"repro/internal/csdf"
	"repro/internal/mcm"
)

func main() {
	// A camera front end: the sensor alternates a short luma phase and a
	// long chroma phase; the scaler consumes a full macroblock (2 tokens)
	// per firing; the encoder paces everything through a credit loop.
	g := csdf.NewGraph("camera")
	sensor := g.MustAddActor("Sensor", []int64{2, 6})
	scaler := g.MustAddActor("Scaler", []int64{5})
	enc := g.MustAddActor("Encoder", []int64{9})
	g.MustAddChannel(sensor, scaler, []int{1, 1}, []int{2}, 0)
	g.MustAddChannel(scaler, enc, []int{1}, []int{1}, 0)
	g.MustAddChannel(enc, sensor, []int{2}, []int{1, 1}, 4) // credits
	g.MustAddChannel(sensor, sensor, []int{1, 1}, []int{1, 1}, 1)
	g.MustAddChannel(enc, enc, []int{1}, []int{1}, 1)

	q, err := g.RepetitionVector()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("repetition vector (phase cycles included):")
	for i, v := range q {
		fmt.Printf("  %-8s fires %d time(s) per iteration\n", g.Actor(csdf.ActorID(i)).Name, v)
	}

	period, unbounded, err := csdf.Throughput(g)
	if err != nil {
		log.Fatal(err)
	}
	if unbounded {
		log.Fatal("unexpected unbounded throughput")
	}
	fmt.Printf("analytical iteration period: %v\n", period)

	// Cross-check against simulation. The steady state of this graph is
	// cyclic over two iterations (9 then 13 time units, averaging 11), so
	// measure over an even window.
	const iters = 50
	starts, _, err := csdf.Simulate(g, iters)
	if err != nil {
		log.Fatal(err)
	}
	k := int64(24)
	last := int64(len(starts[0])) - 1
	delta := starts[0][last] - starts[0][last-q[0]*k]
	fmt.Printf("simulated period over %d iterations: %d/%d = %v per iteration\n",
		k, delta, k, float64(delta)/float64(k))

	// The paper's novel conversion applies verbatim: CSDF -> HSDF.
	h, stats, err := csdf.ConvertToHSDF(g)
	if err != nil {
		log.Fatal(err)
	}
	n := g.TotalInitialTokens()
	fmt.Printf("novel HSDF conversion: %d actors for N = %d tokens (bound %d)\n",
		stats.Actors(), n, n*(n+2))
	res, err := mcm.MaxCycleRatio(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HSDF maximum cycle mean: %v", res.CycleMean)
	if res.CycleMean.Equal(period) {
		fmt.Println("  (= the CSDF period: the conversion preserves throughput)")
	} else {
		fmt.Println("  MISMATCH")
	}
}
