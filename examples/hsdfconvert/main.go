// HSDF conversion: runs both SDF→HSDF conversion algorithms over the
// reconstructed Table-1 application suite and over the paper's Figure-3
// example, showing the sizes side by side, the N(N+2) bound, and that the
// throughput of every converted graph equals the original's.
//
// Run with: go run ./examples/hsdfconvert
package main

import (
	"fmt"
	"log"
	"os"

	sdfreduce "repro"
	"repro/internal/benchmarks"
)

func main() {
	fmt.Println("== Symbolic execution on the Figure 3 example ==")
	figure3()

	fmt.Println("\n== Both conversions over the Table 1 application suite ==")
	fmt.Printf("%-24s %12s %12s %8s %10s\n", "case", "traditional", "new", "N", "N(N+2)")
	for _, c := range benchmarks.All() {
		g := c.Graph()
		_, tstats, err := sdfreduce.ConvertTraditional(g)
		if err != nil {
			log.Fatal(err)
		}
		h, r, nstats, err := sdfreduce.ConvertSymbolic(g)
		if err != nil {
			log.Fatal(err)
		}
		n := r.NumTokens()
		fmt.Printf("%-24s %12d %12d %8d %10d\n",
			c.Name, tstats.Actors, nstats.Actors(), n, n*(n+2))

		// The conversions preserve the timing: the HSDF's maximum cycle
		// mean equals the iteration period of the original.
		tp, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
		if err != nil {
			log.Fatal(err)
		}
		hm, err := sdfreduce.MaxCycleMean(h)
		if err != nil {
			log.Fatal(err)
		}
		if !hm.CycleMean.Equal(tp.Period) {
			log.Fatalf("%s: conversion changed the period (%v vs %v)", c.Name, hm.CycleMean, tp.Period)
		}
	}
	fmt.Println("(every converted graph verified to preserve the iteration period)")
}

func figure3() {
	g := sdfreduce.Figure3(2)
	r, err := sdfreduce.SymbolicIteration(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: %d initial tokens, schedule of %d firings\n",
		g.Name(), r.NumTokens(), len(r.Schedule))
	fmt.Println("max-plus iteration matrix (row k: dependencies of new token k):")
	fmt.Print(r.Matrix)
	lam, ok, err := r.Matrix.Eigenvalue()
	if err != nil || !ok {
		log.Fatal("eigenvalue: ", err)
	}
	fmt.Printf("eigenvalue (iteration period): %v\n", lam)
	h, _, stats, err := sdfreduce.ConvertSymbolic(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constructed HSDF: %d actors, %d channels, %d tokens\n",
		stats.Actors(), stats.Edges, stats.Tokens)
	fmt.Println("\nconstructed graph in DOT form (render with graphviz):")
	if err := sdfreduce.WriteDOT(os.Stdout, h); err != nil {
		log.Fatal(err)
	}
}
