// Buffer sizing: explores the throughput/buffer trade-off of a multirate
// pipeline (the motivation of the buffer-sizing analyses the paper cites
// [18, 19]). Channel capacities are modelled as reverse credit channels;
// the resulting graph is ordinary SDF, so every reduction and analysis of
// the library applies unchanged. The example sweeps the capacity of the
// bottleneck channel, prints the throughput staircase, and shows that the
// sweep runs as well on the graph reduced by the novel HSDF conversion.
//
// Run with: go run ./examples/buffersizing
package main

import (
	"fmt"
	"log"

	sdfreduce "repro"
)

func main() {
	g, bottleneck := buildPipeline()

	fmt.Println("pipeline:", g.Name())
	unbounded, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded buffers: iteration period %v\n\n", unbounded.Period)

	fmt.Printf("%-10s %-16s %-16s %-10s\n", "capacity", "period", "throughput", "HSDF size")
	// A capacity below max(prod, cons) = 3 can never fire the producer.
	for cap := 3; cap <= 12; cap++ {
		bounded, err := sdfreduce.WithBufferCapacities(g,
			map[sdfreduce.ChannelID]int{bottleneck: cap})
		if err != nil {
			log.Fatal(err)
		}
		if !sdfreduce.IsLive(bounded) {
			fmt.Printf("%-10d deadlock\n", cap)
			continue
		}
		tp, err := sdfreduce.ComputeThroughput(bounded, sdfreduce.MethodMatrix)
		if err != nil {
			log.Fatal(err)
		}
		// The novel conversion keeps the analysis graph small even though
		// the credit channel adds tokens.
		_, _, stats, err := sdfreduce.ConvertSymbolic(bounded)
		if err != nil {
			log.Fatal(err)
		}
		tau, err := tp.IterationThroughput()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-16v %-16v %d actors\n", cap, tp.Period, tau, stats.Actors())
	}
	fmt.Println("\nthe staircase converges to the unbounded-buffer period once the")
	fmt.Println("credit cycle stops being the critical cycle — the trade-off curve of [18].")

	// The library's explorer finds the Pareto staircase over BOTH data
	// channels automatically.
	fmt.Println("\nautomatic Pareto exploration over all data channels:")
	res, err := sdfreduce.ExploreBuffers(g, sdfreduce.BufferOptions{MaxSteps: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-12s %s\n", "total buffer", "period", "capacities")
	for _, p := range res.Pareto {
		fmt.Printf("%-14d %-12v %v\n", p.Total, p.Period, capString(g, p.Capacities))
	}
	fmt.Printf("converged to unbounded period %v: %v\n", res.UnboundedPeriod, res.Converged)
}

func capString(g *sdfreduce.Graph, caps map[sdfreduce.ChannelID]int) string {
	s := ""
	for _, id := range sdfreduce.DataChannels(g) {
		c := g.Channel(id)
		s += fmt.Sprintf("%s->%s:%d ", g.Actor(c.Src).Name, g.Actor(c.Dst).Name, caps[id])
	}
	return s
}

// buildPipeline returns a three-stage multirate pipeline and the channel
// whose buffer is swept.
func buildPipeline() (*sdfreduce.Graph, sdfreduce.ChannelID) {
	g := sdfreduce.NewGraph("bufferdemo")
	src := g.MustAddActor("Sensor", 2)
	filt := g.MustAddActor("Filter", 3)
	sink := g.MustAddActor("Sink", 4)
	g.MustAddChannel(src, src, 1, 1, 1)   // sequential sensor
	g.MustAddChannel(filt, filt, 1, 1, 1) // sequential filter
	g.MustAddChannel(sink, sink, 1, 1, 1) // sequential sink
	bottleneck := g.MustAddChannel(src, filt, 2, 3, 0)
	g.MustAddChannel(filt, sink, 1, 2, 0)
	return g, bottleneck
}
