// Quickstart: build a small multirate SDF graph, check consistency,
// analyse its throughput with all three engines, convert it to HSDF with
// both algorithms and print the graph in the native text format.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	sdfreduce "repro"
)

func main() {
	// A producer/consumer pair with a rate change and a feedback channel
	// bounding how far the producer may run ahead.
	g := sdfreduce.NewGraph("quickstart")
	producer := g.MustAddActor("Producer", 2)
	consumer := g.MustAddActor("Consumer", 3)
	g.MustAddChannel(producer, consumer, 2, 1, 0) // two tokens per firing
	g.MustAddChannel(consumer, producer, 1, 2, 4) // credit feedback

	q, err := sdfreduce.RepetitionVector(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("repetition vector:")
	for i, v := range q {
		fmt.Printf("  %-10s fires %d time(s) per iteration\n",
			g.Actor(sdfreduce.ActorID(i)).Name, v)
	}
	fmt.Println("live:", sdfreduce.IsLive(g))

	// Throughput through all three engines; they agree exactly.
	for _, m := range []sdfreduce.Method{
		sdfreduce.MethodMatrix, sdfreduce.MethodStateSpace, sdfreduce.MethodHSDF,
	} {
		tp, err := sdfreduce.ComputeThroughput(g, m)
		if err != nil {
			log.Fatal(err)
		}
		tau, err := tp.ActorThroughput(producer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("engine %-10v: iteration period %v, τ(Producer) = %v\n",
			m, tp.Period, tau)
	}

	// The paper's novel conversion vs the classical one.
	_, r, stats, err := sdfreduce.ConvertSymbolic(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("novel HSDF conversion:       %d actors (N = %d initial tokens)\n",
		stats.Actors(), r.NumTokens())
	_, tstats, err := sdfreduce.ConvertTraditional(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traditional HSDF conversion: %d actors (= iteration length)\n", tstats.Actors)

	fmt.Println("\nnative text form:")
	if err := sdfreduce.WriteText(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
}
