// Mapping: binds an application SDF graph onto a multiprocessor platform
// — the design-flow step the paper's introduction motivates — and studies
// how guaranteed throughput scales with the processor count. The binding
// (processor sharing + static order) is expressed as additional SDF
// channels, so the bound design is analysed with the same reduction-based
// engines as the application itself.
//
// Run with: go run ./examples/mapping
package main

import (
	"fmt"
	"log"

	sdfreduce "repro"
	"repro/internal/mapping"
)

func main() {
	g := buildApplication()
	fmt.Printf("application %s: %d actors\n\n", g.Name(), g.NumActors())

	free, err := sdfreduce.ComputeThroughput(g, sdfreduce.MethodMatrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-14s %-16s %s\n", "processors", "period", "utilisation LB", "binding")
	for _, p := range []int{1, 2, 3, 4, 6} {
		bind, err := mapping.GreedyBind(g, p)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := bind.Throughput(g)
		if err != nil {
			log.Fatal(err)
		}
		lb, err := mapping.UtilisationBound(g, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %-14v %-16v %s\n", p, tp.Period, lb, bindString(g, bind))
	}
	fmt.Printf("\nunconstrained (infinite processors): period %v\n", free.Period)
	fmt.Println("more processors buy throughput until the graph's own critical cycle")
	fmt.Println("— not the platform — limits the design; the greedy load balancer is")
	fmt.Println("a baseline, so an unlucky static order can lose ground (p = 3 here),")
	fmt.Println("which is exactly the gap design-space exploration flows search over.")
}

// buildApplication is a six-stage stereo audio pipeline with a frame
// feedback: split into two channel chains that join for the output.
func buildApplication() *sdfreduce.Graph {
	g := sdfreduce.NewGraph("stereo")
	in := g.MustAddActor("In", 1)
	fl := g.MustAddActor("FiltL", 6)
	fr := g.MustAddActor("FiltR", 6)
	el := g.MustAddActor("EffectL", 4)
	er := g.MustAddActor("EffectR", 4)
	mix := g.MustAddActor("Mix", 2)
	out := g.MustAddActor("Out", 1)
	g.MustAddChannel(in, fl, 1, 1, 0)
	g.MustAddChannel(in, fr, 1, 1, 0)
	g.MustAddChannel(fl, el, 1, 1, 0)
	g.MustAddChannel(fr, er, 1, 1, 0)
	g.MustAddChannel(el, mix, 1, 1, 0)
	g.MustAddChannel(er, mix, 1, 1, 0)
	g.MustAddChannel(mix, out, 1, 1, 0)
	g.MustAddChannel(out, in, 1, 1, 2) // double-buffered frame feedback
	return g
}

func bindString(g *sdfreduce.Graph, b *mapping.Binding) string {
	s := ""
	for p, actors := range b.Order {
		if len(actors) == 0 {
			continue
		}
		s += fmt.Sprintf("P%d[", p)
		for i, a := range actors {
			if i > 0 {
				s += " "
			}
			s += g.Actor(a).Name
		}
		s += "] "
	}
	return s
}
