package sdfreduce

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end the way the
// README's quickstart does: build a graph, analyse it, abstract it,
// convert it, serialise it.
func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph("quickstart")
	src := g.MustAddActor("Producer", 2)
	dst := g.MustAddActor("Consumer", 3)
	g.MustAddChannel(src, dst, 2, 1, 0)
	g.MustAddChannel(dst, src, 1, 2, 4)

	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if q[src] != 1 || q[dst] != 2 {
		t.Errorf("q = %v, want [1 2]", q)
	}
	if !IsLive(g) {
		t.Fatal("graph deadlocks")
	}

	tp, err := ComputeThroughput(g, MethodMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Unbounded {
		t.Fatal("unexpected unbounded throughput")
	}
	tp2, err := ComputeThroughput(g, MethodHSDF)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Period.Equal(tp2.Period) {
		t.Errorf("engines disagree: %v vs %v", tp.Period, tp2.Period)
	}

	h, _, stats, err := ConvertSymbolic(g)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsHSDF() || stats.Tokens > g.TotalInitialTokens() {
		t.Errorf("conversion malformed: %+v", stats)
	}

	ht, tstats, err := ConvertTraditional(g)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tstats.Actors) != 3 || !ht.IsHSDF() {
		t.Errorf("traditional conversion malformed: %+v", tstats)
	}

	var b strings.Builder
	if err := WriteText(&b, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumActors() != g.NumActors() {
		t.Error("round trip lost actors")
	}
}

func TestFacadeAbstractionFlow(t *testing.T) {
	g, err := Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := InferAbstraction(g)
	if err != nil {
		t.Fatal(err)
	}
	abstract, res, err := Abstract(g, ab)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAbstractionConservative(g, ab); err != nil {
		t.Fatal(err)
	}
	r, err := MaxCycleMean(abstract)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := AbstractionThroughputBound(r.CycleMean, res.N)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Num() != 1 || bound.Den() != 30 {
		t.Errorf("bound = %v, want 1/30", bound)
	}
}

func TestFacadeSimulation(t *testing.T) {
	g := Figure3(2)
	tr, err := Simulate(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	period, err := MeasuredPeriod(tr, 50)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := ComputeThroughput(g, MethodStateSpace)
	if err != nil {
		t.Fatal(err)
	}
	if !period.Equal(tp.Period) {
		t.Errorf("simulated period %v != analytical %v", period, tp.Period)
	}
}

func TestFacadeUnfoldAndPrune(t *testing.T) {
	g := Figure2()
	u, err := Unfold(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumActors() != 2*g.NumActors() {
		t.Errorf("unfolded actors = %d", u.NumActors())
	}
	pruned, removed := PruneRedundantChannels(g)
	if removed != 0 || pruned.NumChannels() != g.NumChannels() {
		t.Errorf("pruning a non-redundant graph removed %d channels", removed)
	}
}
