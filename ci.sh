#!/bin/sh
# ci.sh — the repository's verification gate. Runs the standard Go
# checks, the project's own code-level analyzer (cmd/sdfvet), and the
# full test suite under the race detector. Any failure fails the gate.
set -eu

cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== sdfvet ./...'
go run ./cmd/sdfvet ./...

echo '== go test -race ./...'
go test -race ./...

echo 'ci: all checks passed'
