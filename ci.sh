#!/bin/sh
# ci.sh — the repository's verification gate. Runs the standard Go
# checks, the project's own code-level analyzer (cmd/sdfvet), and the
# full test suite under the race detector. Any failure fails the gate.
set -eu

cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== sdfvet ./...'
go run ./cmd/sdfvet ./...

echo '== go test -race ./...'
# Hard wall-clock cap on top of go test's own -timeout, so a scheduler
# hang can never wedge the gate.
timeout 300 go test -race -timeout 240s ./...

echo '== fuzz smoke: FuzzPerturb (10s)'
# Short coverage-guided run of the perturbation fuzzer: catches panics
# and hangs in the analysis engines without slowing the gate much.
timeout 120 go test -run='^$' -fuzz='^FuzzPerturb$' -fuzztime=10s .

echo 'ci: all checks passed'
