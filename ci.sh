#!/bin/sh
# ci.sh — the repository's verification gate. Runs the standard Go
# checks, the project's own code-level analyzer (cmd/sdfvet), and the
# full test suite under the race detector. Any failure fails the gate.
set -eu

cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== sdfvet ./...'
go run ./cmd/sdfvet ./...

echo '== go test -race ./...'
# Hard wall-clock cap on top of go test's own -timeout, so a scheduler
# hang can never wedge the gate.
timeout 300 go test -race -timeout 240s ./...

echo '== fuzz smoke: FuzzPerturb (10s)'
# Short coverage-guided run of the perturbation fuzzer: catches panics
# and hangs in the analysis engines without slowing the gate much.
timeout 120 go test -run='^$' -fuzz='^FuzzPerturb$' -fuzztime=10s .

echo '== fuzz smoke: FuzzReduce (10s)'
# Equivalence smoke of the reduction pass manager: perturbed corpus
# graphs are fixpoint-reduced and the lifted throughput must equal the
# direct engine's answer in exact rational arithmetic.
timeout 120 go test -run='^$' -fuzz='^FuzzReduce$' -fuzztime=10s .

echo '== fuzz smoke: FuzzParse (10s)'
timeout 120 go test -run='^$' -fuzz='^FuzzParse$' -fuzztime=10s ./internal/sdfio

echo '== fuzz smoke: FuzzRequest (10s)'
# The sdfserved wire decoder guards the daemon's admission path, so it
# gets its own coverage-guided smoke run on top of its seed corpus.
timeout 120 go test -run='^$' -fuzz='^FuzzRequest$' -fuzztime=10s ./internal/serve

echo '== fuzz smoke: FuzzBatchRequest (10s)'
# The batch wire decoder feeds the same admission path up to 1024 items
# at a time; per-item decode isolation (exactly one of Req/Err set,
# never a batch-wide failure for one bad item) is the fuzzed invariant.
timeout 120 go test -run='^$' -fuzz='^FuzzBatchRequest$' -fuzztime=10s ./internal/serve

echo '== fuzz smoke: FuzzSADFParse (10s)'
# The FSM-SADF text parser feeds both sdftool and the /v1/sadf wire
# path; parse -> render -> reparse round-trip fidelity is the fuzzed
# invariant on top of panic-freedom.
timeout 120 go test -run='^$' -fuzz='^FuzzSADFParse$' -fuzztime=10s ./internal/sdfio

echo '== sdftool reduce -verify over the reduction corpus'
# Every corpus graph must reduce (or reach the trivial fixpoint), and
# the lifted certificate chain must re-check against the original.
for g in testdata/graphs/*.sdf; do
    echo "   $g"
    go run ./cmd/sdftool reduce -verify "$g" >/dev/null
done

echo '== sdfbench engine timings -> BENCH_3.json'
# Per-engine throughput wall times over the seed benchmark graphs. The
# short deadline keeps the gate fast; engines that cannot finish in
# time are recorded in the JSON as deadline errors, not failures.
timeout 120 go run ./cmd/sdfbench -engines BENCH_3.json -deadline 2s

echo '== sdfbench sadf automaton-size vs wall-time -> BENCH_3.json'
# FSM-SADF analysis wall times over a ladder of synthetic scenario
# models, merged into the same report (the engine sections above are
# preserved). Every case's certificate must re-check.
timeout 120 go run ./cmd/sdfbench -sadf BENCH_3.json -deadline 10s
grep -q '"sadf_cases"' BENCH_3.json || {
    echo 'bench: BENCH_3.json lost the sadf_cases section'
    exit 1
}

echo '== sdfserved soak: mixed wire load, breaker trip/recover, graceful drain'
# End-to-end soak of the serving stack: a race-instrumented sdfserved
# daemon takes ~200 mixed requests through the real wire format —
# healthy graphs across engines, precondition failures, budget refusals
# and fault-injected statespace panics — then the statespace breaker
# must have tripped, the engine must recover after the injection stops,
# and SIGTERM must drain the daemon cleanly (exit 0). The in-process
# twin of this scenario, TestServedSoak, additionally asserts zero
# leaked goroutines under -race.
SOAK_DIR=$(mktemp -d)
SERVED_PID=
cleanup_soak() {
    [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true
    rm -rf "$SOAK_DIR"
}
trap cleanup_soak EXIT

go build -race -o "$SOAK_DIR/sdfserved" ./cmd/sdfserved
go build -o "$SOAK_DIR/sdftool" ./cmd/sdftool

cat > "$SOAK_DIR/healthy.sdf" <<'EOF'
sdf demo
actor A 2
actor B 3
chan A B 2 1 0
chan B A 1 2 4
EOF
cat > "$SOAK_DIR/deadlocked.sdf" <<'EOF'
sdf dl
actor A 1
actor B 1
chan A B 1 1 0
chan B A 1 1 0
EOF
cat > "$SOAK_DIR/inject.json" <<'EOF'
{"graph_text":"sdf demo\nactor A 2\nactor B 3\nchan A B 2 1 0\nchan B A 1 2 4\n","method":"statespace","inject":[{"engine":"statespace","mode":"panic","times":-1}]}
EOF

SOAK_ADDR="127.0.0.1:$((20000 + $$ % 20000))"
"$SOAK_DIR/sdfserved" -addr "$SOAK_ADDR" -allow-injection \
    -breaker-threshold 3 -breaker-cooldown 1s > "$SOAK_DIR/served.log" 2>&1 &
SERVED_PID=$!

ready=0
for _ in $(seq 1 100); do
    if "$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" -health >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo 'soak: sdfserved never became ready'; cat "$SOAK_DIR/served.log"; exit 1; }

expect() {
    want=$1
    shift
    rc=0
    "$@" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "soak: '$*' exited $rc, want $want"
        cat "$SOAK_DIR/served.log"
        exit 1
    fi
}

i=0
while [ $i -lt 40 ]; do
    # Healthy hedged + single-engine traffic (repeat graphs: cache hits).
    expect 0 "$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" "$SOAK_DIR/healthy.sdf"
    expect 0 "$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" -method matrix "$SOAK_DIR/healthy.sdf"
    # Structurally broken model: precondition exit code through the wire.
    expect 2 "$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" "$SOAK_DIR/deadlocked.sdf"
    # Starved budget: budget exit code through the wire.
    expect 3 "$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" -budget 1 "$SOAK_DIR/healthy.sdf"
    # Fault-injected statespace panic (or a breaker-open refusal once
    # tripped); either way the daemon must answer, never die.
    curl -s -o /dev/null -X POST -d @"$SOAK_DIR/inject.json" "http://$SOAK_ADDR/v1/throughput"
    i=$((i + 1))
done

# The panic streak must have tripped the statespace breaker at least once.
"$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" -health > "$SOAK_DIR/health.txt"
grep -E 'statespace .*trips [1-9]' "$SOAK_DIR/health.txt" >/dev/null || {
    echo 'soak: statespace breaker never tripped'
    cat "$SOAK_DIR/health.txt"
    exit 1
}

# Injection stopped: after the cooldown the half-open probe must heal
# the engine and healthy statespace requests must flow again.
sleep 1.2
expect 0 "$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" -method statespace "$SOAK_DIR/healthy.sdf"

# The metrics surface must reflect the storm: served requests, cache
# hits and the statespace breaker trip all as non-zero counters in the
# Prometheus exposition.
curl -s "http://$SOAK_ADDR/metrics" > "$SOAK_DIR/metrics.txt"
for series in \
    'sdf_requests_total\{outcome="served"\} [1-9]' \
    'sdf_cache_events_total\{event="hit"\} [1-9]' \
    'sdf_breaker_trips_total\{engine="statespace"\} [1-9]'; do
    grep -E "$series" "$SOAK_DIR/metrics.txt" >/dev/null || {
        echo "soak: /metrics missing non-zero series $series"
        cat "$SOAK_DIR/metrics.txt"
        exit 1
    }
done
# The sdftool scrape summarises the same exposition.
"$SOAK_DIR/sdftool" query -server "http://$SOAK_ADDR" -metrics | grep -q 'latency (count, p50, p99):' || {
    echo 'soak: sdftool query -metrics produced no latency summary'
    exit 1
}
# Profiling stays off the wire unless -pprof was given.
pprof_code=$(curl -s -o /dev/null -w '%{http_code}' "http://$SOAK_ADDR/debug/pprof/")
if [ "$pprof_code" != 404 ]; then
    echo "soak: /debug/pprof/ answered $pprof_code without -pprof, want 404"
    exit 1
fi

# SIGTERM: graceful drain, clean exit.
kill -TERM "$SERVED_PID"
rc=0
wait "$SERVED_PID" || rc=$?
SERVED_PID=
if [ "$rc" -ne 0 ]; then
    echo "soak: sdfserved exited $rc after SIGTERM, want 0"
    cat "$SOAK_DIR/served.log"
    exit 1
fi
grep -q 'drained cleanly' "$SOAK_DIR/served.log" || {
    echo 'soak: no clean-drain line in the daemon log'
    cat "$SOAK_DIR/served.log"
    exit 1
}
cleanup_soak
trap - EXIT

echo '== brownout soak: overload burst, certified bounded answers, zero 5xx'
# Overload soak of the degradation ladder: a race-instrumented sdfserved
# with admission capacity 4 (-workers 1 -queue 3) takes a burst of 120
# cache-busted requests (10 waves of 12 concurrent, distinct budgets so
# every request is a distinct canonical key). The daemon must brown out,
# never break: zero 5xx responses, a nonzero stream of bounded answers
# whose conservativeness certificates re-checked against the original
# graph ("verified": true on every one), the bounded counter and the
# degradation gauge moving on /metrics, an exact-only request during the
# pressure window answering 429 + Retry-After, and a clean SIGTERM drain
# afterwards.
BROWN_DIR=$(mktemp -d)
BROWN_PID=
cleanup_brown() {
    [ -n "$BROWN_PID" ] && kill "$BROWN_PID" 2>/dev/null || true
    rm -rf "$BROWN_DIR"
}
trap cleanup_brown EXIT

go build -race -o "$BROWN_DIR/sdfserved" ./cmd/sdfserved
go build -o "$BROWN_DIR/sdftool" ./cmd/sdftool

BROWN_GRAPH='sdf brown\nactor A 2\nactor B 3\nactor C 5\nchan A B 3 2 0\nchan B C 4 3 0\nchan C A 1 2 8\n'

BROWN_ADDR="127.0.0.1:$((22000 + $$ % 20000))"
"$BROWN_DIR/sdfserved" -addr "$BROWN_ADDR" -workers 1 -queue 3 \
    > "$BROWN_DIR/served.log" 2>&1 &
BROWN_PID=$!

ready=0
for _ in $(seq 1 100); do
    if "$BROWN_DIR/sdftool" query -server "http://$BROWN_ADDR" -health >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo 'brownout: sdfserved never became ready'; cat "$BROWN_DIR/served.log"; exit 1; }

n=0
wave=0
while [ $wave -lt 10 ]; do
    CURL_PIDS=
    j=0
    while [ $j -lt 12 ]; do
        n=$((n + 1))
        curl -s -o "$BROWN_DIR/resp_$n.json" -w '%{http_code}' -X POST \
            -d '{"graph_text":"'"$BROWN_GRAPH"'","budget":'$((200000 + n))'}' \
            "http://$BROWN_ADDR/v1/throughput" > "$BROWN_DIR/code_$n" &
        CURL_PIDS="$CURL_PIDS $!"
        j=$((j + 1))
    done
    for pid in $CURL_PIDS; do
        wait "$pid" || true
    done
    wave=$((wave + 1))
done

# Still inside the hysteresis hold: an exact-only client must be turned
# away with the stable degraded kind, 429 and a drain-estimate hint —
# never handed a degraded answer it said it cannot accept.
eo_code=$(curl -s -o "$BROWN_DIR/eo.json" -D "$BROWN_DIR/eo.hdr" -w '%{http_code}' -X POST \
    -d '{"graph_text":"'"$BROWN_GRAPH"'","budget":999999,"exact_only":true}' \
    "http://$BROWN_ADDR/v1/throughput")
if [ "$eo_code" != 429 ]; then
    echo "brownout: exact-only under pressure answered $eo_code, want 429"
    cat "$BROWN_DIR/eo.json"
    exit 1
fi
grep -qi '^Retry-After:' "$BROWN_DIR/eo.hdr" || {
    echo 'brownout: exact-only 429 carried no Retry-After'
    cat "$BROWN_DIR/eo.hdr"
    exit 1
}
grep -q '"kind": "degraded"' "$BROWN_DIR/eo.json" || {
    echo 'brownout: exact-only refusal kind is not "degraded"'
    cat "$BROWN_DIR/eo.json"
    exit 1
}

# Zero 5xx: overload may refuse (4xx) but must never break.
for f in "$BROWN_DIR"/code_*; do
    code=$(cat "$f")
    case "$code" in
    5*)
        echo "brownout: burst produced a $code ($f)"
        cat "${f%code_*}resp_${f##*code_}.json" 2>/dev/null || true
        cat "$BROWN_DIR/served.log"
        exit 1
        ;;
    esac
done

# A nonzero stream of bounded answers, every one of them re-verified:
# the reduction certificate was re-checked against the original graph in
# exact arithmetic before the response claimed "verified".
bounded=0
for f in "$BROWN_DIR"/resp_*.json; do
    grep -q '"degradation": "bounded"' "$f" || continue
    bounded=$((bounded + 1))
    grep -q '"verified": true' "$f" || {
        echo "brownout: bounded answer without a re-checked certificate ($f)"
        cat "$f"
        exit 1
    }
done
if [ "$bounded" -eq 0 ]; then
    echo 'brownout: burst produced no bounded answers'
    cat "$BROWN_DIR/served.log"
    exit 1
fi
echo "   $bounded certified bounded answers under overload"

# The ladder is visible on the metrics surface.
curl -s "http://$BROWN_ADDR/metrics" > "$BROWN_DIR/metrics.txt"
for series in \
    'sdf_serve_degraded_total\{level="bounded"\} [1-9]' \
    'sdf_degradation_level [0-9]'; do
    grep -E "$series" "$BROWN_DIR/metrics.txt" >/dev/null || {
        echo "brownout: /metrics missing series $series"
        cat "$BROWN_DIR/metrics.txt"
        exit 1
    }
done

# SIGTERM: the browned-out daemon still drains cleanly.
kill -TERM "$BROWN_PID"
rc=0
wait "$BROWN_PID" || rc=$?
BROWN_PID=
if [ "$rc" -ne 0 ]; then
    echo "brownout: sdfserved exited $rc after SIGTERM, want 0"
    cat "$BROWN_DIR/served.log"
    exit 1
fi
grep -q 'drained cleanly' "$BROWN_DIR/served.log" || {
    echo 'brownout: no clean-drain line in the daemon log'
    cat "$BROWN_DIR/served.log"
    exit 1
}
cleanup_brown
trap - EXIT

echo '== fleet soak: kill-a-replica storm through sdfrouter'
# Chaos soak of the fleet layer: three sdfserved replicas behind a
# race-instrumented sdfrouter take a 200-request storm; one replica is
# SIGKILLed mid-storm and restarted before the storm ends. The router
# must hide the kill completely (zero client-visible failures), eject
# the dead replica, win hedges, and re-admit the restarted replica. The
# in-process twin, TestChaosKillReplicaMidStorm, asserts the same under
# -race with a goroutine-leak check.
FLEET_DIR=$(mktemp -d)
FLEET_PIDS=
cleanup_fleet() {
    for pid in $FLEET_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$FLEET_DIR"
}
trap cleanup_fleet EXIT

go build -o "$FLEET_DIR/sdfserved" ./cmd/sdfserved
go build -race -o "$FLEET_DIR/sdfrouter" ./cmd/sdfrouter
go build -o "$FLEET_DIR/sdftool" ./cmd/sdftool

cat > "$FLEET_DIR/healthy.sdf" <<'EOF'
sdf demo
actor A 2
actor B 3
chan A B 2 1 0
chan B A 1 2 4
EOF

R1="127.0.0.1:$((21000 + $$ % 10000))"
R2="127.0.0.1:$((31100 + $$ % 10000))"
R3="127.0.0.1:$((41200 + $$ % 10000))"
RADDR="127.0.0.1:$((51300 + $$ % 10000))"

"$FLEET_DIR/sdfserved" -addr "$R1" > "$FLEET_DIR/r1.log" 2>&1 &
R1_PID=$!
"$FLEET_DIR/sdfserved" -addr "$R2" > "$FLEET_DIR/r2.log" 2>&1 &
R2_PID=$!
"$FLEET_DIR/sdfserved" -addr "$R3" > "$FLEET_DIR/r3.log" 2>&1 &
R3_PID=$!
FLEET_PIDS="$R1_PID $R2_PID $R3_PID"

for addr in "$R1" "$R2" "$R3"; do
    ready=0
    for _ in $(seq 1 100); do
        if "$FLEET_DIR/sdftool" query -server "http://$addr" -health >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    [ "$ready" = 1 ] || { echo "fleet: replica $addr never became ready"; exit 1; }
done

# Immediate hedging (-hedge-delay 0) makes hedge traffic deterministic:
# every request races two replicas, so requests whose primary is the
# SIGKILLed replica are guaranteed hedge wins.
"$FLEET_DIR/sdfrouter" -addr "$RADDR" \
    -replicas "http://$R1,http://$R2,http://$R3" \
    -probe-interval 100ms -probe-fail 2 -probe-readmit 2 \
    -hedge-delay 0 > "$FLEET_DIR/router.log" 2>&1 &
ROUTER_PID=$!
FLEET_PIDS="$FLEET_PIDS $ROUTER_PID"

ready=0
for _ in $(seq 1 100); do
    if curl -sf "http://$RADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo 'fleet: sdfrouter never became ready'; cat "$FLEET_DIR/router.log"; exit 1; }

# The 200-request storm. Distinct -budget values give distinct canonical
# keys, spreading primaries across the whole ring (the values are far
# above any real work cost — they only vary the key). The one replica is
# SIGKILLed at the halfway mark and restarted 40 requests later; every
# single request must still exit 0.
i=0
while [ $i -lt 200 ]; do
    if [ $i -eq 100 ]; then
        kill -9 "$R2_PID" 2>/dev/null || true
    fi
    if [ $i -eq 140 ]; then
        "$FLEET_DIR/sdfserved" -addr "$R2" > "$FLEET_DIR/r2b.log" 2>&1 &
        R2_PID=$!
        FLEET_PIDS="$FLEET_PIDS $R2_PID"
    fi
    rc=0
    "$FLEET_DIR/sdftool" query -server "http://$RADDR" \
        -budget $((100000 + i % 16)) "$FLEET_DIR/healthy.sdf" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "fleet: storm request $i exited $rc, want 0 (kill must be invisible)"
        cat "$FLEET_DIR/router.log"
        exit 1
    fi
    i=$((i + 1))
done

# The storm (plus the probes) must have ejected the killed replica and
# hedging must have won at least once.
curl -s "http://$RADDR/metrics" > "$FLEET_DIR/fleet-metrics.txt"
for series in \
    'sdf_fleet_ejections_total\{replica="http://'"$R2"'"\} [1-9]' \
    'sdf_fleet_hedge_wins_total\{[^}]*\} [1-9]'; do
    grep -E "$series" "$FLEET_DIR/fleet-metrics.txt" >/dev/null || {
        echo "fleet: /metrics missing non-zero series $series"
        cat "$FLEET_DIR/fleet-metrics.txt"
        exit 1
    }
done

# The restarted replica must be re-admitted by the probation probes.
readmitted=0
for _ in $(seq 1 100); do
    curl -s "http://$RADDR/metrics" > "$FLEET_DIR/fleet-metrics.txt"
    if grep -E 'sdf_fleet_readmissions_total\{replica="http://'"$R2"'"\} [1-9]' \
        "$FLEET_DIR/fleet-metrics.txt" >/dev/null; then
        readmitted=1
        break
    fi
    sleep 0.1
done
[ "$readmitted" = 1 ] || {
    echo 'fleet: restarted replica never re-admitted'
    cat "$FLEET_DIR/fleet-metrics.txt"
    exit 1
}

# Client-side fallthrough: a dead replica first in the -addr list is
# skipped (exit 0); a list with no live replica at all exits 6.
rc=0
"$FLEET_DIR/sdftool" query -addr "http://127.0.0.1:1,http://$R1" \
    "$FLEET_DIR/healthy.sdf" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || { echo "fleet: -addr fallthrough exited $rc, want 0"; exit 1; }
rc=0
"$FLEET_DIR/sdftool" query -addr "http://127.0.0.1:1,http://127.0.0.1:2" \
    "$FLEET_DIR/healthy.sdf" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 6 ] || { echo "fleet: exhausted -addr list exited $rc, want 6"; exit 1; }

# SIGTERM: the router drains cleanly.
kill -TERM "$ROUTER_PID"
rc=0
wait "$ROUTER_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "fleet: sdfrouter exited $rc after SIGTERM, want 0"
    cat "$FLEET_DIR/router.log"
    exit 1
fi
grep -q 'drained cleanly' "$FLEET_DIR/router.log" || {
    echo 'fleet: no clean-drain line in the router log'
    cat "$FLEET_DIR/router.log"
    exit 1
}
cleanup_fleet
trap - EXIT

echo '== batch soak: 100-item batch with per-item fault isolation through the fleet'
# End-to-end contract of POST /v1/batch: three -allow-injection replicas
# behind a race-instrumented sdfrouter take a 100-item batch carrying 97
# healthy graphs, two fault-injected statespace panics and one
# budget-explosive rate-doubling chain. The batch must come back HTTP
# 200 with exactly 97 answers and 3 item-error entries — never a
# batch-wide 5xx — and `sdftool batch` must render the table and exit
# with the worst item's code. A second, all-healthy batch then survives
# a mid-batch kill -9 of a replica: one entry per item, zero errors,
# zero lost answers. Both the router and a replica drain cleanly on
# SIGTERM afterwards. The in-process twins (TestBatchPartialFailure-
# Isolation, TestChaosKillReplicaMidBatch) assert the same under -race
# with goroutine-leak checks.
BATCH_DIR=$(mktemp -d)
BATCH_PIDS=
cleanup_batch() {
    for pid in $BATCH_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$BATCH_DIR"
}
trap cleanup_batch EXIT

go build -o "$BATCH_DIR/sdfserved" ./cmd/sdfserved
go build -race -o "$BATCH_DIR/sdfrouter" ./cmd/sdfrouter
go build -o "$BATCH_DIR/sdftool" ./cmd/sdftool

HEALTHY_GRAPH='sdf demo\nactor A 2\nactor B 3\nchan A B 2 1 0\nchan B A 1 2 4\n'
# The paper's exponential witness: a 30-stage rate-doubling chain whose
# iteration length is 2^30-ish. With a work budget of 1000 every engine
# must refuse it with a structured budget error — the batch's one
# deterministic "explosive" item.
CHAIN_GRAPH='sdf expchain\nactor S0 1\nchan S0 S0 1 1 1\n'
i=1
while [ $i -lt 30 ]; do
    CHAIN_GRAPH="${CHAIN_GRAPH}actor S$i 1\nchan S$i S$i 1 1 1\nchan S$((i-1)) S$i 2 1 0\n"
    i=$((i + 1))
done

{
    printf '{"items":['
    i=0
    while [ $i -lt 97 ]; do
        [ $i -gt 0 ] && printf ','
        printf '{"graph_text":"%s","method":"matrix","budget":%d}' "$HEALTHY_GRAPH" $((300000 + i))
        i=$((i + 1))
    done
    printf ',{"graph_text":"%s","method":"statespace","budget":400001,"inject":[{"engine":"statespace","mode":"panic","times":-1}]}' "$HEALTHY_GRAPH"
    printf ',{"graph_text":"%s","method":"statespace","budget":400002,"inject":[{"engine":"statespace","mode":"panic","times":-1}]}' "$HEALTHY_GRAPH"
    printf ',{"graph_text":"%s","budget":1000}' "$CHAIN_GRAPH"
    printf '],"deadline_ms":60000}'
} > "$BATCH_DIR/batch.json"

B1="127.0.0.1:$((23000 + $$ % 10000))"
B2="127.0.0.1:$((33100 + $$ % 10000))"
B3="127.0.0.1:$((43200 + $$ % 10000))"
BRADDR="127.0.0.1:$((53300 + $$ % 10000))"

# -workers 2 keeps each replica's batch lane narrow, stretching the
# sub-batch wall time so the mid-batch kill below lands in flight.
"$BATCH_DIR/sdfserved" -addr "$B1" -allow-injection -workers 2 > "$BATCH_DIR/b1.log" 2>&1 &
B1_PID=$!
"$BATCH_DIR/sdfserved" -addr "$B2" -allow-injection -workers 2 > "$BATCH_DIR/b2.log" 2>&1 &
B2_PID=$!
"$BATCH_DIR/sdfserved" -addr "$B3" -allow-injection -workers 2 > "$BATCH_DIR/b3.log" 2>&1 &
B3_PID=$!
BATCH_PIDS="$B1_PID $B2_PID $B3_PID"

for addr in "$B1" "$B2" "$B3"; do
    ready=0
    for _ in $(seq 1 100); do
        if "$BATCH_DIR/sdftool" query -server "http://$addr" -health >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    [ "$ready" = 1 ] || { echo "batch: replica $addr never became ready"; exit 1; }
done

"$BATCH_DIR/sdfrouter" -addr "$BRADDR" \
    -replicas "http://$B1,http://$B2,http://$B3" \
    -probe-interval 100ms -probe-fail 2 -probe-readmit 2 \
    -batch-straggler 250ms > "$BATCH_DIR/router.log" 2>&1 &
BROUTER_PID=$!
BATCH_PIDS="$BATCH_PIDS $BROUTER_PID"

ready=0
for _ in $(seq 1 100); do
    if curl -sf "http://$BRADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo 'batch: sdfrouter never became ready'; cat "$BATCH_DIR/router.log"; exit 1; }

# The contract batch: 97 healthy + 2 panicking + 1 explosive items must
# come back as one HTTP 200 with exactly 3 item-error entries.
code=$(curl -s -o "$BATCH_DIR/res1.json" -w '%{http_code}' -X POST \
    --data-binary @"$BATCH_DIR/batch.json" "http://$BRADDR/v1/batch")
if [ "$code" != 200 ]; then
    echo "batch: contract batch answered $code, want 200 (item failures are never batch-wide)"
    cat "$BATCH_DIR/res1.json"
    cat "$BATCH_DIR/router.log"
    exit 1
fi
grep -q '"kind": "partial"' "$BATCH_DIR/res1.json" || {
    echo 'batch: contract batch kind is not "partial"'
    cat "$BATCH_DIR/res1.json"
    exit 1
}
grep -q '"ok": 97' "$BATCH_DIR/res1.json" && grep -q '"errors": 3' "$BATCH_DIR/res1.json" || {
    echo 'batch: contract batch did not report 97 ok / 3 errors'
    head -5 "$BATCH_DIR/res1.json"
    exit 1
}
errs=$(grep -c '"status": "item-error"' "$BATCH_DIR/res1.json" || true)
if [ "$errs" -ne 3 ]; then
    echo "batch: $errs item-error entries, want exactly 3"
    exit 1
fi
# The failure kinds are per item and structured: two engine panics
# (isolated by the per-item guard) and one budget refusal.
panics=$(grep -c '"kind": "engine"' "$BATCH_DIR/res1.json" || true)
budgets=$(grep -c '"kind": "budget"' "$BATCH_DIR/res1.json" || true)
if [ "$panics" -ne 2 ] || [ "$budgets" -ne 1 ]; then
    echo "batch: item-error kinds engine=$panics budget=$budgets, want 2/1"
    grep '"kind"' "$BATCH_DIR/res1.json"
    exit 1
fi
# Every healthy answer carries its own checked certificate.
verified=$(grep -c '"verified": true' "$BATCH_DIR/res1.json" || true)
if [ "$verified" -ne 97 ]; then
    echo "batch: $verified verified answers, want 97"
    exit 1
fi

# sdftool batch renders the same batch as a table and exits with the
# worst item's code: the panicking items map to the engine code 4.
rc=0
"$BATCH_DIR/sdftool" batch -server "http://$BRADDR" -deadline 60s \
    "$BATCH_DIR/batch.json" > "$BATCH_DIR/table.txt" 2>&1 || rc=$?
if [ "$rc" -ne 4 ]; then
    echo "batch: sdftool batch exited $rc, want 4 (worst item: engine panic)"
    cat "$BATCH_DIR/table.txt"
    exit 1
fi
rows=$(grep -cE '^  +[0-9]+  ' "$BATCH_DIR/table.txt" || true)
if [ "$rows" -ne 100 ]; then
    echo "batch: sdftool batch table has $rows rows, want 100"
    cat "$BATCH_DIR/table.txt"
    exit 1
fi

# Mid-batch kill -9: a second, all-healthy batch is in flight when one
# replica dies. Its items must be re-dispatched to the survivors — one
# entry per item, zero errors, zero lost answers.
{
    printf '{"items":['
    i=0
    while [ $i -lt 150 ]; do
        [ $i -gt 0 ] && printf ','
        printf '{"graph_text":"%s","method":"matrix","budget":%d}' "$HEALTHY_GRAPH" $((500000 + i))
        i=$((i + 1))
    done
    printf '],"deadline_ms":60000}'
} > "$BATCH_DIR/batch_kill.json"
curl -s -o "$BATCH_DIR/res2.json" -w '%{http_code}' -X POST \
    --data-binary @"$BATCH_DIR/batch_kill.json" "http://$BRADDR/v1/batch" \
    > "$BATCH_DIR/code2" &
CURL_PID=$!
sleep 0.1
kill -9 "$B2_PID" 2>/dev/null || true
wait "$CURL_PID" || true
code=$(cat "$BATCH_DIR/code2")
if [ "$code" != 200 ]; then
    echo "batch: kill batch answered $code, want 200 (a dying replica is never batch-wide)"
    cat "$BATCH_DIR/res2.json"
    cat "$BATCH_DIR/router.log"
    exit 1
fi
grep -q '"kind": "complete"' "$BATCH_DIR/res2.json" && grep -q '"ok": 150' "$BATCH_DIR/res2.json" || {
    echo 'batch: kill batch lost answers; want complete with 150 ok'
    head -5 "$BATCH_DIR/res2.json"
    cat "$BATCH_DIR/router.log"
    exit 1
}
entries=$(grep -c '"index":' "$BATCH_DIR/res2.json" || true)
if [ "$entries" -ne 150 ]; then
    echo "batch: kill batch merged $entries entries, want one per item (150)"
    exit 1
fi

# The batch surface is on the router's metrics; no answer may have been
# lost (the series only appears when the merge invariant synthesized
# entries).
curl -s "http://$BRADDR/metrics" > "$BATCH_DIR/batch-metrics.txt"
for series in \
    'sdf_batch_requests_total\{outcome="partial"\} [1-9]' \
    'sdf_batch_requests_total\{outcome="complete"\} [1-9]' \
    'sdf_batch_fanout_total\{[^}]*\} [1-9]'; do
    grep -E "$series" "$BATCH_DIR/batch-metrics.txt" >/dev/null || {
        echo "batch: /metrics missing non-zero series $series"
        cat "$BATCH_DIR/batch-metrics.txt"
        exit 1
    }
done
if grep -E 'sdf_batch_lost_items_total [1-9]' "$BATCH_DIR/batch-metrics.txt"; then
    echo 'batch: the fleet lost item answers during the kill'
    cat "$BATCH_DIR/batch-metrics.txt"
    exit 1
fi
if grep -E 'sdf_batch_redispatched_items_total\{[^}]*\} [1-9]' \
    "$BATCH_DIR/batch-metrics.txt" >/dev/null; then
    echo '   mid-batch kill re-dispatched items to survivors'
else
    echo '   (kill batch completed before the kill landed; isolation still holds)'
fi

# SIGTERM: the router and a replica drain cleanly with the batch load done.
kill -TERM "$BROUTER_PID"
rc=0
wait "$BROUTER_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "batch: sdfrouter exited $rc after SIGTERM, want 0"
    cat "$BATCH_DIR/router.log"
    exit 1
fi
grep -q 'drained cleanly' "$BATCH_DIR/router.log" || {
    echo 'batch: no clean-drain line in the router log'
    cat "$BATCH_DIR/router.log"
    exit 1
}
kill -TERM "$B1_PID"
rc=0
wait "$B1_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "batch: sdfserved exited $rc after SIGTERM, want 0"
    cat "$BATCH_DIR/b1.log"
    exit 1
fi
cleanup_batch
trap - EXIT

echo '== sadf soak: FSM-SADF round-trips with client-side certificate checks'
# End-to-end contract of the scenario-aware workload: `sdftool sadf
# -verify` analyses the two-scenario reference model locally, then
# round-trips it through a race-instrumented sdfserved daemon AND
# through an sdfrouter in front of it — in both cases the client
# rebuilds the server's certificate from the wire payload and re-checks
# it against its own parse in exact arithmetic. The sadf error taxonomy
# must hold through the wire (broken model exit 1, precondition-failing
# scenario exit 2), repeat queries must hit the result cache, and the
# sadf counters must move on /metrics. Both processes drain cleanly on
# SIGTERM.
SADF_DIR=$(mktemp -d)
SADF_PIDS=
cleanup_sadf() {
    for pid in $SADF_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$SADF_DIR"
}
trap cleanup_sadf EXIT

go build -race -o "$SADF_DIR/sdfserved" ./cmd/sdfserved
go build -o "$SADF_DIR/sdfrouter" ./cmd/sdfrouter
go build -o "$SADF_DIR/sdftool" ./cmd/sdftool

# The README's two-scenario model: worst-case period 4, from alternating
# the heavy and light scenarios around the two-token ring.
cat > "$SADF_DIR/wlan.sadf" <<'EOF'
sadf wlan
scenario lo
actor A 1
actor B 2
chan A B 1 1 1
chan B A 1 1 1
scenario hi
actor A 5
actor B 3
chan A B 1 1 1
chan B A 1 1 1
state slo lo
state shi hi
trans slo shi
trans shi slo
trans slo slo
trans shi shi
initial slo
EOF
# Structural model error: a state labeling an unknown scenario.
cat > "$SADF_DIR/broken.sadf" <<'EOF'
sadf broken
scenario a
actor A 1
chan A A 1 1 1
state s nosuch
initial s
EOF
# Structurally valid, but the scenario fails the rate-consistency
# precheck.
cat > "$SADF_DIR/badscn.sadf" <<'EOF'
sadf bad
scenario a
actor A 1
actor B 1
chan A B 2 1 1
chan B A 1 1 1
state s a
trans s s
initial s
EOF

# Local analysis with the certificate re-check.
"$SADF_DIR/sdftool" sadf -verify "$SADF_DIR/wlan.sadf" > "$SADF_DIR/local.txt"
grep -q 'worst-case period: 4' "$SADF_DIR/local.txt" || {
    echo 'sadf: local analysis did not find worst-case period 4'
    cat "$SADF_DIR/local.txt"
    exit 1
}
grep -q '^verified:' "$SADF_DIR/local.txt" || {
    echo 'sadf: local -verify printed no verified line'
    cat "$SADF_DIR/local.txt"
    exit 1
}

SADF_ADDR="127.0.0.1:$((24000 + $$ % 10000))"
"$SADF_DIR/sdfserved" -addr "$SADF_ADDR" > "$SADF_DIR/served.log" 2>&1 &
SADF_SERVED_PID=$!
SADF_PIDS="$SADF_SERVED_PID"

ready=0
for _ in $(seq 1 100); do
    if "$SADF_DIR/sdftool" query -server "http://$SADF_ADDR" -health >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo 'sadf: sdfserved never became ready'; cat "$SADF_DIR/served.log"; exit 1; }

# Remote round-trip: the wire certificate must survive the client-side
# rebuild and exact re-check.
"$SADF_DIR/sdftool" sadf -server "http://$SADF_ADDR" -verify "$SADF_DIR/wlan.sadf" > "$SADF_DIR/remote.txt"
grep -q 'worst-case period: 4' "$SADF_DIR/remote.txt" || {
    echo 'sadf: remote analysis did not find worst-case period 4'
    cat "$SADF_DIR/remote.txt"
    exit 1
}
grep -q 're-checked locally' "$SADF_DIR/remote.txt" || {
    echo 'sadf: remote -verify did not re-check the wire certificate'
    cat "$SADF_DIR/remote.txt"
    exit 1
}
# A repeat of the same model must come from the result cache, and the
# cached answer's certificate must still verify.
"$SADF_DIR/sdftool" sadf -server "http://$SADF_ADDR" -verify "$SADF_DIR/wlan.sadf" > "$SADF_DIR/cached.txt"
grep -q 'served from the result cache' "$SADF_DIR/cached.txt" || {
    echo 'sadf: repeat query was not served from the cache'
    cat "$SADF_DIR/cached.txt"
    exit 1
}
grep -q 're-checked locally' "$SADF_DIR/cached.txt" || {
    echo 'sadf: cached answer failed the client-side certificate check'
    cat "$SADF_DIR/cached.txt"
    exit 1
}

# The sadf error taxonomy through the wire: structural model error exit
# 1, precondition-failing scenario exit 2 (same codes as local runs).
expect_sadf() {
    want=$1
    shift
    rc=0
    "$@" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "sadf: '$*' exited $rc, want $want"
        cat "$SADF_DIR/served.log"
        exit 1
    fi
}
expect_sadf 1 "$SADF_DIR/sdftool" sadf -server "http://$SADF_ADDR" "$SADF_DIR/broken.sadf"
expect_sadf 2 "$SADF_DIR/sdftool" sadf -server "http://$SADF_ADDR" "$SADF_DIR/badscn.sadf"
expect_sadf 1 "$SADF_DIR/sdftool" sadf "$SADF_DIR/broken.sadf"

# The workload is on the metrics surface.
curl -s "http://$SADF_ADDR/metrics" > "$SADF_DIR/metrics.txt"
for series in \
    'sdf_sadf_requests_total\{outcome="served"\} [1-9]' \
    'sdf_sadf_automaton_nodes_total [1-9]'; do
    grep -E "$series" "$SADF_DIR/metrics.txt" >/dev/null || {
        echo "sadf: /metrics missing non-zero series $series"
        cat "$SADF_DIR/metrics.txt"
        exit 1
    }
done

# The same round-trip through the fleet router: the certificate must
# survive the extra hop verbatim.
SADF_RADDR="127.0.0.1:$((34000 + $$ % 10000))"
"$SADF_DIR/sdfrouter" -addr "$SADF_RADDR" -replicas "http://$SADF_ADDR" \
    > "$SADF_DIR/router.log" 2>&1 &
SADF_ROUTER_PID=$!
SADF_PIDS="$SADF_PIDS $SADF_ROUTER_PID"
ready=0
for _ in $(seq 1 100); do
    if curl -sf "http://$SADF_RADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || { echo 'sadf: sdfrouter never became ready'; cat "$SADF_DIR/router.log"; exit 1; }
"$SADF_DIR/sdftool" sadf -server "http://$SADF_RADDR" -verify "$SADF_DIR/wlan.sadf" > "$SADF_DIR/fleet.txt"
grep -q 'worst-case period: 4' "$SADF_DIR/fleet.txt" && grep -q 're-checked locally' "$SADF_DIR/fleet.txt" || {
    echo 'sadf: certified answer did not survive the router hop'
    cat "$SADF_DIR/fleet.txt"
    cat "$SADF_DIR/router.log"
    exit 1
}
# A broken model bounces at the router without burning a replica hop.
expect_sadf 1 "$SADF_DIR/sdftool" sadf -server "http://$SADF_RADDR" "$SADF_DIR/broken.sadf"

# SIGTERM: router and daemon drain cleanly.
kill -TERM "$SADF_ROUTER_PID"
rc=0
wait "$SADF_ROUTER_PID" || rc=$?
[ "$rc" -eq 0 ] || { echo "sadf: sdfrouter exited $rc after SIGTERM, want 0"; cat "$SADF_DIR/router.log"; exit 1; }
kill -TERM "$SADF_SERVED_PID"
rc=0
wait "$SADF_SERVED_PID" || rc=$?
[ "$rc" -eq 0 ] || { echo "sadf: sdfserved exited $rc after SIGTERM, want 0"; cat "$SADF_DIR/served.log"; exit 1; }
grep -q 'drained cleanly' "$SADF_DIR/served.log" || {
    echo 'sadf: no clean-drain line in the daemon log'
    cat "$SADF_DIR/served.log"
    exit 1
}
SADF_PIDS=
cleanup_sadf
trap - EXIT

echo 'ci: all checks passed'
