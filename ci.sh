#!/bin/sh
# ci.sh — the repository's verification gate. Runs the standard Go
# checks, the project's own code-level analyzer (cmd/sdfvet), and the
# full test suite under the race detector. Any failure fails the gate.
set -eu

cd "$(dirname "$0")"

echo '== go vet ./...'
go vet ./...

echo '== go build ./...'
go build ./...

echo '== sdfvet ./...'
go run ./cmd/sdfvet ./...

echo '== go test -race ./...'
# Hard wall-clock cap on top of go test's own -timeout, so a scheduler
# hang can never wedge the gate.
timeout 300 go test -race -timeout 240s ./...

echo '== fuzz smoke: FuzzPerturb (10s)'
# Short coverage-guided run of the perturbation fuzzer: catches panics
# and hangs in the analysis engines without slowing the gate much.
timeout 120 go test -run='^$' -fuzz='^FuzzPerturb$' -fuzztime=10s .

echo '== fuzz smoke: FuzzParse (10s)'
timeout 120 go test -run='^$' -fuzz='^FuzzParse$' -fuzztime=10s ./internal/sdfio

echo '== sdfbench engine timings -> BENCH_3.json'
# Per-engine throughput wall times over the seed benchmark graphs. The
# short deadline keeps the gate fast; engines that cannot finish in
# time are recorded in the JSON as deadline errors, not failures.
timeout 120 go run ./cmd/sdfbench -engines BENCH_3.json -deadline 2s

echo 'ci: all checks passed'
