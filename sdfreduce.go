// Package sdfreduce is a Go implementation of the reduction techniques for
// synchronous dataflow (SDF) graphs of M. Geilen, "Reduction Techniques
// for Synchronous Dataflow Graphs", DAC 2009, together with the complete
// SDF analysis stack they rest on.
//
// The package provides:
//
//   - the timed SDF graph model (actors, rate-annotated FIFO channels,
//     initial tokens), consistency checking and repetition vectors;
//   - throughput and latency analysis through three cross-validated
//     engines (max-plus iteration matrix, state-space exploration, and
//     traditional HSDF conversion + maximum cycle mean);
//   - the paper's abstraction method: merging groups of equal-rate actors
//     into single abstract actors with a provably conservative throughput
//     bound (Theorem 1), including a mechanical checker for the §5 proof
//     obligations and automatic abstraction inference;
//   - the paper's novel SDF→HSDF conversion: symbolic max-plus execution
//     of one iteration followed by the Figure-4 construction, producing a
//     graph of at most N(N+2) actors for N initial tokens, versus the
//     iteration length (potentially exponential) of the classical
//     conversion, which is also provided as the baseline;
//   - a discrete-event self-timed simulator, graph generators for the
//     paper's figures, the reconstructed Table-1 benchmark suite, and
//     text/XML/JSON/DOT serialisation.
//
// The root package is a facade: it re-exports the stable API of the
// internal packages so that applications need a single import.
package sdfreduce

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/buffersizing"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/mapping"
	"repro/internal/mcm"
	"repro/internal/rat"
	"repro/internal/schedule"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/sim"
	"repro/internal/transform"
)

// Graph model.
type (
	// Graph is a timed SDF graph (Definitions 1–2 of the paper).
	Graph = sdf.Graph
	// ActorID identifies an actor within a Graph.
	ActorID = sdf.ActorID
	// ChannelID identifies a channel within a Graph.
	ChannelID = sdf.ChannelID
	// Actor is a named actor with an execution time.
	Actor = sdf.Actor
	// Channel is a dependency edge with rates and initial tokens.
	Channel = sdf.Channel
	// Rat is an exact rational number (throughput values, cycle means).
	Rat = rat.Rat
)

// NewGraph returns an empty timed SDF graph with the given name.
func NewGraph(name string) *Graph { return sdf.NewGraph(name) }

// Analysis.
type (
	// Throughput is the result of a throughput analysis.
	Throughput = analysis.Throughput
	// Method selects a throughput engine.
	Method = analysis.Method
	// LatencyReport summarises iteration latency.
	LatencyReport = analysis.LatencyReport
)

// Throughput engines.
const (
	// MethodMatrix uses the symbolic max-plus matrix and its eigenvalue.
	MethodMatrix = analysis.Matrix
	// MethodStateSpace explores the execution state space.
	MethodStateSpace = analysis.StateSpace
	// MethodHSDF converts traditionally and computes the MCM.
	MethodHSDF = analysis.HSDF
)

// Resilience runtime (internal/guard): every analysis entry point of
// the facade runs under a work budget and, through the Ctx variants,
// honours context deadlines and cancellation at checkpoints inside the
// engines' hot loops. Panics inside an engine surface as structured
// *EngineError values instead of crashing the process.
type (
	// Budget caps the work one analysis may perform (states explored,
	// firings executed, HSDF actors materialised, initial tokens
	// accepted). The zero value means "defaults"; negative dimensions
	// are unlimited.
	Budget = guard.Budget
	// EngineError is the structured failure of one engine: it names the
	// engine and phase and carries the work counters at the stop.
	EngineError = guard.EngineError
	// ResilientReport explains a resilient analysis: which engine
	// answered and why the others failed or were skipped.
	ResilientReport = analysis.ResilientReport
	// EngineAttempt is one rung of the resilient ladder.
	EngineAttempt = analysis.EngineAttempt
)

// Error taxonomy of the resilience runtime; test with errors.Is.
var (
	// ErrBudgetExceeded marks work refused or aborted because a budget
	// dimension was exhausted.
	ErrBudgetExceeded = guard.ErrBudgetExceeded
	// ErrCanceled marks work aborted by context cancellation or
	// deadline; the context cause is wrapped alongside it.
	ErrCanceled = guard.ErrCanceled
	// ErrEngineFailed marks an engine that panicked or failed
	// internally.
	ErrEngineFailed = guard.ErrEngineFailed
)

// DefaultBudget returns the budget applied when a context carries none.
func DefaultBudget() Budget { return guard.Default() }

// UnlimitedBudget returns a budget with every work cap lifted
// (deadlines still apply).
func UnlimitedBudget() Budget { return guard.Unlimited() }

// UniformBudget returns a budget with every work dimension set to n
// (n <= 0 means unlimited) — the shape sdftool's -budget flag uses.
func UniformBudget(n int64) Budget { return guard.Uniform(n) }

// WithBudget returns a context carrying b; the Ctx analysis variants
// read their budget from the context they are given.
func WithBudget(ctx context.Context, b Budget) context.Context { return guard.WithBudget(ctx, b) }

// ComputeThroughput analyses the self-timed throughput of g. Structurally
// unsound graphs (inconsistent rates, token-insufficient cycles) fail
// fast with the lint prechecks' diagnostics. The default work budget
// applies: explosive graphs are refused with ErrBudgetExceeded instead
// of hanging the process.
func ComputeThroughput(g *Graph, m Method) (Throughput, error) {
	return ComputeThroughputCtx(context.Background(), g, m)
}

// ComputeThroughputCtx is ComputeThroughput under an explicit context:
// the engine honours ctx's deadline/cancellation at checkpoints inside
// its hot loops and charges its work against the budget carried by ctx
// (WithBudget; DefaultBudget when absent).
func ComputeThroughputCtx(ctx context.Context, g *Graph, m Method) (Throughput, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, err
	}
	return analysis.ComputeThroughputCtx(ctx, g, m)
}

// ComputeThroughputResilient analyses g with the engine-degradation
// ladder: matrix first, state-space as fallback, traditional HSDF only
// when the static size estimate fits the budget. The report says which
// engine answered and why the others failed or were skipped; it is
// returned even on total failure.
func ComputeThroughputResilient(ctx context.Context, g *Graph) (Throughput, *ResilientReport, error) {
	if err := lint.Precheck(g); err != nil {
		return Throughput{}, nil, err
	}
	return analysis.ComputeThroughputResilient(ctx, g)
}

// ComputeLatency derives a latency report of one iteration of g, after
// the lint prechecks.
func ComputeLatency(g *Graph) (*LatencyReport, error) {
	return ComputeLatencyCtx(context.Background(), g)
}

// ComputeLatencyCtx is ComputeLatency under an explicit context and the
// budget it carries.
func ComputeLatencyCtx(ctx context.Context, g *Graph) (*LatencyReport, error) {
	if err := lint.Precheck(g); err != nil {
		return nil, err
	}
	return analysis.ComputeLatencyCtx(ctx, g)
}

// Model-level static analysis (diagnostics over graphs).
type (
	// LintReport is the result of linting one graph.
	LintReport = lint.Report
	// Diagnostic is one finding of one lint pass.
	Diagnostic = lint.Diagnostic
	// LintOptions selects which lint passes run.
	LintOptions = lint.Options
	// EligibilityReport surveys the §4–5 abstraction opportunities of a
	// graph: its maximal equal-repetition actor groups and the size of the
	// novel conversion against the iteration length.
	EligibilityReport = lint.EligibilityReport
	// LintSeverity classifies a diagnostic.
	LintSeverity = lint.Severity
)

// Diagnostic severities.
const (
	// LintInfo reports a property of the graph without judging it.
	LintInfo = lint.Info
	// LintWarning flags a likely modelling mistake or a scalability risk.
	LintWarning = lint.Warning
	// LintError marks a violated precondition of the analyses.
	LintError = lint.Error
)

// PrecheckError is the error returned when the cheap lint passes find
// Error-level diagnostics; it carries the full report and unwraps to
// the sentinel causes (ErrInconsistent, ErrDeadlockCycle).
type PrecheckError = lint.PrecheckError

// ErrDeadlockCycle is wrapped by precheck errors caused by a
// token-insufficient cycle; test with errors.Is.
var ErrDeadlockCycle = lint.ErrDeadlockCycle

// ErrInconsistent is wrapped by errors reported for graphs whose balance
// equations admit only the trivial solution; test with errors.Is.
var ErrInconsistent = sdf.ErrInconsistent

// Lint runs the model-level diagnostic passes over g.
func Lint(g *Graph, opts LintOptions) (*LintReport, error) { return lint.Analyze(g, opts) }

// Precheck runs only the cheap lint passes and returns an error carrying
// the report when any precondition of the analyses is violated. The
// analysis and conversion entry points of this package call it
// implicitly.
func Precheck(g *Graph) error { return lint.Precheck(g) }

// AbstractionEligibility reports the maximal equal-repetition actor
// groups of g together with the iteration length and the N(N+2) bound of
// the novel conversion.
func AbstractionEligibility(g *Graph) (*EligibilityReport, error) { return lint.Eligibility(g) }

// Bottleneck names the critical cycle of a graph in terms of its tokens
// and channels.
type Bottleneck = analysis.Bottleneck

// FindBottleneck locates the channels whose initial tokens lie on the
// critical cycle — where extra pipelining tokens or faster actors
// actually buy throughput.
func FindBottleneck(g *Graph) (*Bottleneck, error) { return analysis.FindBottleneck(g) }

// MakespanAfter returns the completion time of the k-th iteration from a
// cold start, computed in O(log k) max-plus matrix products.
func MakespanAfter(g *Graph, k int) (int64, bool, error) { return analysis.MakespanAfter(g, k) }

// MaxCycleMean computes the maximum cycle mean of a homogeneous graph —
// the iteration period of self-timed execution.
func MaxCycleMean(g *Graph) (mcm.Result, error) { return mcm.MaxCycleRatio(g) }

// RepetitionVector solves the balance equations of g.
func RepetitionVector(g *Graph) ([]int64, error) { return g.RepetitionVector() }

// IsLive reports whether g admits a complete iteration without deadlock.
func IsLive(g *Graph) bool { return schedule.IsLive(g) }

// SequentialSchedule returns a single-iteration sequential schedule.
func SequentialSchedule(g *Graph) ([]ActorID, error) { return schedule.Sequential(g) }

// Reductions: the paper's contributions.
type (
	// Abstraction is the paper's (α, I) pair (Definition 3).
	Abstraction = core.Abstraction
	// AbstractionResult relates an abstract graph to its original.
	AbstractionResult = core.AbstractionResult
	// SymbolicResult is the max-plus iteration matrix of a graph.
	SymbolicResult = core.SymbolicResult
	// ConvertStats sizes a novel-conversion result.
	ConvertStats = core.ConvertStats
	// TraditionalStats sizes a traditional-conversion result.
	TraditionalStats = transform.TraditionalStats
)

// Abstract applies an abstraction per Definition 4, pruning redundant
// channels; the result's throughput divided by N conservatively bounds
// the original's (Theorem 1).
func Abstract(g *Graph, ab *Abstraction) (*Graph, *AbstractionResult, error) {
	return core.Abstract(g, ab)
}

// InferAbstraction derives an abstraction from the numeric-suffix naming
// convention of regular graphs (A1…An ↦ A).
func InferAbstraction(g *Graph) (*Abstraction, error) { return core.InferByName(g) }

// InferAbstractionByLevels derives index assignments for a given grouping
// from the zero-delay precedence structure.
func InferAbstractionByLevels(g *Graph, grouping map[string]string) (*Abstraction, error) {
	return core.InferByLevels(g, grouping)
}

// Unfold computes the N-fold unfolding of a homogeneous graph
// (Definition 5).
func Unfold(g *Graph, n int) (*Graph, error) { return core.Unfold(g, n) }

// VerifyAbstractionConservative mechanically discharges the §5 proof
// obligations for a homogeneous graph and an abstraction.
func VerifyAbstractionConservative(g *Graph, ab *Abstraction) error {
	return core.VerifyAbstractionConservative(g, ab)
}

// AbstractionThroughputBound converts an abstract graph's iteration
// period into the Theorem-1 bound 1/(N·Λ′) on the original throughput.
func AbstractionThroughputBound(abstractPeriod Rat, n int) (Rat, error) {
	return core.ThroughputBound(abstractPeriod, n)
}

// SymbolicIteration executes one iteration of g symbolically (Algorithm
// 1, lines 1–11) and returns the max-plus iteration matrix.
func SymbolicIteration(g *Graph) (*SymbolicResult, error) { return core.SymbolicIteration(g) }

// ConvertSymbolic converts g to HSDF with the paper's novel algorithm,
// after the lint prechecks.
func ConvertSymbolic(g *Graph) (*Graph, *SymbolicResult, ConvertStats, error) {
	if err := lint.Precheck(g); err != nil {
		return nil, nil, ConvertStats{}, err
	}
	return core.ConvertSymbolic(g)
}

// ConvertSymbolicCtx is ConvertSymbolic under an explicit context: the
// symbolic iteration inside the conversion honours ctx's deadline and
// the budget it carries.
func ConvertSymbolicCtx(ctx context.Context, g *Graph) (*Graph, *SymbolicResult, ConvertStats, error) {
	if err := lint.Precheck(g); err != nil {
		return nil, nil, ConvertStats{}, err
	}
	var (
		h     *Graph
		r     *SymbolicResult
		stats ConvertStats
	)
	err := guard.Protect("symbolic", "convert", func() error {
		var err error
		h, r, stats, err = core.ConvertSymbolicCtx(ctx, g)
		return err
	})
	if err != nil {
		return nil, nil, ConvertStats{}, err
	}
	return h, r, stats, nil
}

// BuildOptions configures BuildHSDF (mux/demux elision, observers).
type BuildOptions = core.BuildOptions

// Observer names a symbolic time stamp to expose as a zero-time
// collector actor in a constructed HSDF graph — the §6 device for
// tracking a dedicated output actor's completion.
type Observer = core.Observer

// DefaultBuildOptions returns the paper's Figure-4 construction settings.
func DefaultBuildOptions() BuildOptions { return core.DefaultBuildOptions() }

// BuildHSDF constructs the Figure-4 HSDF graph from a symbolic iteration
// result with explicit options.
func BuildHSDF(name string, r *SymbolicResult, opts BuildOptions) (*Graph, ConvertStats, error) {
	return core.BuildHSDF(name, r, opts)
}

// ConvertTraditional converts g to HSDF with the classical algorithm: one
// actor per firing of an iteration. The lint prechecks run first, and
// the default work budget applies: a graph whose iteration length
// exceeds the actor budget is refused with ErrBudgetExceeded up front
// instead of exhausting the machine.
func ConvertTraditional(g *Graph) (*Graph, TraditionalStats, error) {
	return ConvertTraditionalCtx(context.Background(), g)
}

// ConvertTraditionalCtx is ConvertTraditional under an explicit context:
// the conversion honours ctx's deadline/cancellation at checkpoints and
// charges the budget carried by ctx (WithBudget; DefaultBudget when
// absent) — the Σq actor estimate is checked before anything is
// allocated.
func ConvertTraditionalCtx(ctx context.Context, g *Graph) (*Graph, TraditionalStats, error) {
	if err := lint.Precheck(g); err != nil {
		return nil, TraditionalStats{}, err
	}
	var (
		h     *Graph
		stats TraditionalStats
	)
	err := guard.Protect("traditional", "convert", func() error {
		var err error
		h, stats, err = transform.TraditionalCtx(ctx, g)
		return err
	})
	if err != nil {
		return nil, TraditionalStats{}, err
	}
	return h, stats, nil
}

// PruneRedundantChannels drops dominated parallel channels (§4.2).
func PruneRedundantChannels(g *Graph) (*Graph, int) { return core.PruneRedundantChannels(g) }

// Retime applies a Leiserson–Saxe retiming lag to a homogeneous graph:
// channel (u, v) gets Initial + lag[v] − lag[u] tokens. The maximum cycle
// mean is invariant; latency and per-channel register pressure change.
func Retime(g *Graph, lag []int) (*Graph, error) { return transform.Retime(g, lag) }

// CanonicalRetiming retimes a strongly connected homogeneous graph into
// its canonical token placement relative to an anchor actor.
func CanonicalRetiming(g *Graph, anchor ActorID) (*Graph, []int, error) {
	return transform.CanonicalRetiming(g, anchor)
}

// WithBufferCapacities models bounded channel capacities through reverse
// credit channels.
func WithBufferCapacities(g *Graph, capacities map[ChannelID]int) (*Graph, error) {
	return transform.WithBufferCapacities(g, capacities)
}

// Multiprocessor mapping.

// Binding assigns actors to processors with a static order per processor.
type Binding = mapping.Binding

// GreedyBind builds a load-balancing binding onto the given number of
// processors.
func GreedyBind(g *Graph, processors int) (*Binding, error) {
	return mapping.GreedyBind(g, processors)
}

// UtilisationBound returns the processor-load lower bound on the
// iteration period of any binding.
func UtilisationBound(g *Graph, processors int) (Rat, error) {
	return mapping.UtilisationBound(g, processors)
}

// Buffer sizing.
type (
	// BufferPoint is one explored capacity configuration.
	BufferPoint = buffersizing.Point
	// BufferResult is the outcome of a buffer-size exploration.
	BufferResult = buffersizing.Result
	// BufferOptions configures ExploreBuffers.
	BufferOptions = buffersizing.Options
)

// ExploreBuffers walks the throughput/buffer trade-off of g, returning
// the Pareto staircase of (total capacity, iteration period) points.
func ExploreBuffers(g *Graph, opts BufferOptions) (*BufferResult, error) {
	return ExploreBuffersCtx(context.Background(), g, opts)
}

// ExploreBuffersCtx is ExploreBuffers under an explicit context: the
// walk checkpoints ctx between capacity evaluations and every inner
// throughput analysis runs under the budget carried by ctx.
func ExploreBuffersCtx(ctx context.Context, g *Graph, opts BufferOptions) (*BufferResult, error) {
	var res *BufferResult
	err := guard.Protect("buffersizing", "explore", func() error {
		var err error
		res, err = buffersizing.ExploreCtx(ctx, g, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MinimalBufferCapacity returns the smallest capacity under which a
// channel can sustain a schedule in isolation.
func MinimalBufferCapacity(c Channel) int { return buffersizing.MinimalCapacity(c) }

// DataChannels returns the non-self-loop channels of g, the default
// buffer-sizing targets.
func DataChannels(g *Graph) []ChannelID { return buffersizing.DataChannels(g) }

// Simulation.
type (
	// Trace is the result of a self-timed simulation.
	Trace = sim.Trace
	// Firing is one completed firing in a trace.
	Firing = sim.Firing
)

// Simulate runs self-timed execution of g for the given number of
// iterations. The default work budget applies to the total firing
// count.
func Simulate(g *Graph, iterations int64) (*Trace, error) {
	return SimulateCtx(context.Background(), g, iterations)
}

// SimulateCtx is Simulate under an explicit context: the total firing
// count q·iterations is checked against the budget carried by ctx
// before the event loop starts, and every completed firing checkpoints
// the context.
func SimulateCtx(ctx context.Context, g *Graph, iterations int64) (*Trace, error) {
	var tr *Trace
	err := guard.Protect("simulate", "run", func() error {
		var err error
		tr, err = sim.RunCtx(ctx, g, iterations)
		return err
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// MeasuredPeriod estimates the iteration period from a simulation trace.
func MeasuredPeriod(tr *Trace, iterations int64) (Rat, error) {
	return sim.MeasuredPeriod(tr, iterations)
}

// Generators for the paper's example graphs.

// Figure1 builds the §4.1 regular prefetch graph with n A-actors.
func Figure1(n int) (*Graph, error) { return gen.Figure1(n) }

// Figure2 builds the worked abstraction example of Figure 2(a).
func Figure2() *Graph { return gen.Figure2() }

// Figure3 builds the symbolic-execution example of Figure 3.
func Figure3(rightExec int64) *Graph { return gen.Figure3(rightExec) }

// Prefetch builds the Figure-5 remote-memory-access model.
func Prefetch(blocks, window int) (*Graph, error) { return gen.Prefetch(blocks, window) }

// RandomGraph generates a random consistent live SDF graph.
func RandomGraph(rng *rand.Rand, opts gen.RandomOptions) (*Graph, error) {
	return gen.RandomGraph(rng, opts)
}

// RandomOptions parameterises RandomGraph.
type RandomOptions = gen.RandomOptions

// RandomRegular generates a random homogeneous regular graph of the kind
// the abstraction targets (groups of indexed copies with ring and
// inter-group channel families); InferAbstraction always succeeds on it.
func RandomRegular(rng *rand.Rand, opts gen.RegularOptions) (*Graph, error) {
	return gen.RandomRegular(rng, opts)
}

// RegularOptions parameterises RandomRegular.
type RegularOptions = gen.RegularOptions

// Serialisation.

// WriteText serialises g in the native text format.
func WriteText(w io.Writer, g *Graph) error { return sdfio.WriteText(w, g) }

// ParseText parses the native text format.
func ParseText(s string) (*Graph, error) { return sdfio.ParseText(s) }

// ReadText parses the native text format from a reader.
func ReadText(r io.Reader) (*Graph, error) { return sdfio.ReadText(r) }

// WriteXML serialises g as SDF3-style XML.
func WriteXML(w io.Writer, g *Graph) error { return sdfio.WriteXML(w, g) }

// ReadXML parses SDF3-style XML.
func ReadXML(r io.Reader) (*Graph, error) { return sdfio.ReadXML(r) }

// WriteJSON serialises g as JSON.
func WriteJSON(w io.Writer, g *Graph) error { return sdfio.WriteJSON(w, g) }

// ReadJSON parses the JSON form.
func ReadJSON(r io.Reader) (*Graph, error) { return sdfio.ReadJSON(r) }

// WriteDOT renders g as a Graphviz digraph.
func WriteDOT(w io.Writer, g *Graph) error { return sdfio.WriteDOT(w, g) }
