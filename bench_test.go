package sdfreduce

// Benchmark harness regenerating the paper's experiments:
//
//   - BenchmarkTable1* measure both HSDF conversions on every Table-1 /
//     Figure-6 application graph and report the resulting actor counts as
//     metrics (the table's rows; cmd/sdfbench prints them as text).
//   - BenchmarkFigure1* measure the §4.1 abstraction pipeline and the
//     full-graph analysis it replaces.
//   - BenchmarkFigure5* measure the Figure-5 prefetch model end to end.
//   - BenchmarkThroughputEngine* compare the three throughput engines.
//   - BenchmarkAblation* cover the design choices called out in
//     DESIGN.md: mux/demux elision, redundant-channel pruning, and
//     eigenvalue via Karp versus state-space power iteration.

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/gen"
)

func BenchmarkTable1Traditional(b *testing.B) {
	for _, c := range benchmarks.All() {
		b.Run(slug(c.Name), func(b *testing.B) {
			g := c.Graph()
			var actors int
			for i := 0; i < b.N; i++ {
				_, stats, err := ConvertTraditional(g)
				if err != nil {
					b.Fatal(err)
				}
				actors = stats.Actors
			}
			b.ReportMetric(float64(actors), "actors")
			b.ReportMetric(float64(c.PaperTraditional), "paper-actors")
		})
	}
}

func BenchmarkTable1Symbolic(b *testing.B) {
	for _, c := range benchmarks.All() {
		b.Run(slug(c.Name), func(b *testing.B) {
			g := c.Graph()
			var actors int
			for i := 0; i < b.N; i++ {
				_, _, stats, err := ConvertSymbolic(g)
				if err != nil {
					b.Fatal(err)
				}
				actors = stats.Actors()
			}
			b.ReportMetric(float64(actors), "actors")
			b.ReportMetric(float64(c.PaperNew), "paper-actors")
		})
	}
}

func BenchmarkFigure1FullAnalysis(b *testing.B) {
	for _, n := range []int{6, 24, 96} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			g, err := Figure1(n)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := ComputeThroughput(g, MethodMatrix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure1Abstraction(b *testing.B) {
	for _, n := range []int{6, 24, 96} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			g, err := Figure1(n)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ab, err := InferAbstraction(g)
				if err != nil {
					b.Fatal(err)
				}
				abstract, res, err := Abstract(g, ab)
				if err != nil {
					b.Fatal(err)
				}
				r, err := MaxCycleMean(abstract)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := AbstractionThroughputBound(r.CycleMean, res.N); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure5PrefetchFull(b *testing.B) {
	g, err := Prefetch(1584, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeThroughput(g, MethodMatrix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5PrefetchAbstract(b *testing.B) {
	g, err := Prefetch(1584, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab, err := InferAbstraction(g)
		if err != nil {
			b.Fatal(err)
		}
		abstract, res, err := Abstract(g, ab)
		if err != nil {
			b.Fatal(err)
		}
		r, err := MaxCycleMean(abstract)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := AbstractionThroughputBound(r.CycleMean, res.N); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughputEngine(b *testing.B) {
	// The engines on the modem: multirate, strongly connected, so all
	// three (including the state-space engine, whose recurrence detection
	// needs an irreducible iteration matrix) apply.
	for _, m := range []Method{MethodMatrix, MethodStateSpace, MethodHSDF} {
		b.Run(m.String(), func(b *testing.B) {
			g := benchmarks.Modem()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeThroughput(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the Figure-4 construction with and without mux/demux elision.
func BenchmarkAblationMuxDemuxElision(b *testing.B) {
	for _, elide := range []bool{true, false} {
		name := "elided"
		if !elide {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			// mp3 playback has a sparse iteration matrix, so the elision
			// of single-entry rows and columns is visible in the count.
			g := benchmarks.MP3Playback()
			r, err := SymbolicIteration(g)
			if err != nil {
				b.Fatal(err)
			}
			var actors int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := core.BuildHSDF("m", r, core.BuildOptions{ElideMuxDemux: elide})
				if err != nil {
					b.Fatal(err)
				}
				actors = stats.Actors()
			}
			b.ReportMetric(float64(actors), "actors")
		})
	}
}

// Ablation: abstraction with and without §4.2 redundant-channel pruning.
func BenchmarkAblationPruning(b *testing.B) {
	// Figure 2's per-actor self-loops abstract to a redundant three-token
	// self-channel next to the one-token chain image (§4.2's example).
	g := Figure2()
	ab, err := InferAbstraction(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pruned", func(b *testing.B) {
		var channels int
		for i := 0; i < b.N; i++ {
			abstract, _, err := Abstract(g, ab)
			if err != nil {
				b.Fatal(err)
			}
			channels = abstract.NumChannels()
		}
		b.ReportMetric(float64(channels), "channels")
	})
	b.Run("unpruned", func(b *testing.B) {
		var channels int
		for i := 0; i < b.N; i++ {
			abstract, _, err := core.AbstractUnpruned(g, ab)
			if err != nil {
				b.Fatal(err)
			}
			channels = abstract.NumChannels()
		}
		b.ReportMetric(float64(channels), "channels")
	})
}

// Ablation: eigenvalue via Karp's algorithm versus state-space power
// iteration on the same iteration matrix.
func BenchmarkAblationEigenvalue(b *testing.B) {
	g := benchmarks.Modem()
	r, err := SymbolicIteration(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("karp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Matrix.Eigenvalue(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Matrix.PowerIteration(1 << 22); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation / scaling: symbolic conversion cost versus the number of
// initial tokens (the N² size bound at work).
func BenchmarkSymbolicConversionScaling(b *testing.B) {
	for _, blocks := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("prefetch%d", blocks), func(b *testing.B) {
			g, err := Prefetch(blocks, 3)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, _, _, err := ConvertSymbolic(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func slug(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '.':
			// skip
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// The §3 observation measured: the traditional conversion grows
// exponentially with the chain length k (iteration length 2^(k+1)−1)
// while the novel conversion's size stays linear in the k+1 tokens.
func BenchmarkExponentialGap(b *testing.B) {
	for _, k := range []int{4, 8, 12, 16} {
		g, err := gen.ExponentialChain(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("traditional/k%d", k), func(b *testing.B) {
			var actors int
			for i := 0; i < b.N; i++ {
				_, stats, err := ConvertTraditional(g)
				if err != nil {
					b.Fatal(err)
				}
				actors = stats.Actors
			}
			b.ReportMetric(float64(actors), "actors")
		})
		b.Run(fmt.Sprintf("symbolic/k%d", k), func(b *testing.B) {
			var actors int
			for i := 0; i < b.N; i++ {
				_, _, stats, err := ConvertSymbolic(g)
				if err != nil {
					b.Fatal(err)
				}
				actors = stats.Actors()
			}
			b.ReportMetric(float64(actors), "actors")
		})
	}
}
