// Package sdf implements the timed Synchronous Dataflow (SDF) graph model
// of Lee and Messerschmitt as used by the DAC'09 reduction paper
// (Definitions 1 and 2): actors with constant execution times connected by
// FIFO channels with constant production and consumption rates and a
// number of initial tokens. It provides construction, validation,
// consistency checking (repetition vectors) and structural queries; the
// reduction techniques themselves live in internal/core.
package sdf

import (
	"errors"
	"fmt"
	"strings"
)

// ActorID identifies an actor within one Graph. IDs are dense indices
// assigned in insertion order.
type ActorID int

// ChannelID identifies a channel within one Graph, dense in insertion
// order. The order is significant: it fixes the global numbering of
// initial tokens used by the symbolic conversion.
type ChannelID int

// Actor is a timed SDF actor (Definition 2): a name and the time one
// firing takes between consuming its inputs and producing its outputs.
type Actor struct {
	Name string
	Exec int64
}

// Channel is a dependency edge (a, b, p, c, d) of Definition 1: actor Dst
// depends on actor Src with production rate Prod, consumption rate Cons
// and Initial tokens of delay.
type Channel struct {
	Src     ActorID
	Dst     ActorID
	Prod    int
	Cons    int
	Initial int
}

// Graph is a timed SDF graph. The zero value is an empty graph ready for
// use; NewGraph additionally assigns a name used in diagnostics and
// serialised forms.
type Graph struct {
	name     string
	actors   []Actor
	channels []Channel
	byName   map[string]ActorID
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph.
func (g *Graph) SetName(name string) { g.name = name }

// NumActors returns the number of actors.
func (g *Graph) NumActors() int { return len(g.actors) }

// NumChannels returns the number of channels.
func (g *Graph) NumChannels() int { return len(g.channels) }

// Actor returns the actor with the given ID. The ID must be valid.
func (g *Graph) Actor(id ActorID) Actor { return g.actors[id] }

// Channel returns the channel with the given ID. The ID must be valid.
func (g *Graph) Channel(id ChannelID) Channel { return g.channels[id] }

// Channels returns all channels in insertion order; the caller must not
// modify the returned slice.
func (g *Graph) Channels() []Channel { return g.channels }

// Actors returns all actors in insertion order; the caller must not modify
// the returned slice.
func (g *Graph) Actors() []Actor { return g.actors }

// ActorByName returns the ID of the named actor.
func (g *Graph) ActorByName(name string) (ActorID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// AddActor adds an actor with the given name and execution time and
// returns its ID. Names must be unique and non-empty; execution times must
// be non-negative.
func (g *Graph) AddActor(name string, exec int64) (ActorID, error) {
	if name == "" {
		return 0, errors.New("sdf: actor name must be non-empty")
	}
	if strings.ContainsAny(name, " \t\n\"") {
		return 0, fmt.Errorf("sdf: actor name %q contains whitespace or quotes", name)
	}
	if exec < 0 {
		return 0, fmt.Errorf("sdf: actor %q: negative execution time %d", name, exec)
	}
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("sdf: duplicate actor name %q", name)
	}
	if g.byName == nil {
		g.byName = make(map[string]ActorID)
	}
	id := ActorID(len(g.actors))
	g.actors = append(g.actors, Actor{Name: name, Exec: exec})
	g.byName[name] = id
	return id, nil
}

// MustAddActor is AddActor panicking on error; for tests and literals.
func (g *Graph) MustAddActor(name string, exec int64) ActorID {
	id, err := g.AddActor(name, exec)
	if err != nil {
		panic(err)
	}
	return id
}

// AddChannel adds a channel from src to dst with production rate prod,
// consumption rate cons and initial tokens of delay, returning its ID.
func (g *Graph) AddChannel(src, dst ActorID, prod, cons, initial int) (ChannelID, error) {
	if !g.validActor(src) || !g.validActor(dst) {
		return 0, fmt.Errorf("sdf: channel endpoints %d -> %d out of range (have %d actors)", src, dst, len(g.actors))
	}
	if prod < 1 || cons < 1 {
		return 0, fmt.Errorf("sdf: channel %s -> %s: rates must be >= 1, got %d and %d",
			g.actors[src].Name, g.actors[dst].Name, prod, cons)
	}
	if initial < 0 {
		return 0, fmt.Errorf("sdf: channel %s -> %s: negative initial tokens %d",
			g.actors[src].Name, g.actors[dst].Name, initial)
	}
	id := ChannelID(len(g.channels))
	g.channels = append(g.channels, Channel{Src: src, Dst: dst, Prod: prod, Cons: cons, Initial: initial})
	return id, nil
}

// MustAddChannel is AddChannel panicking on error.
func (g *Graph) MustAddChannel(src, dst ActorID, prod, cons, initial int) ChannelID {
	id, err := g.AddChannel(src, dst, prod, cons, initial)
	if err != nil {
		panic(err)
	}
	return id
}

// MustAddChannelByName is AddChannelByName panicking on error.
func (g *Graph) MustAddChannelByName(src, dst string, prod, cons, initial int) ChannelID {
	id, err := g.AddChannelByName(src, dst, prod, cons, initial)
	if err != nil {
		panic(err)
	}
	return id
}

// AddChannelByName is AddChannel resolving endpoints by actor name.
func (g *Graph) AddChannelByName(src, dst string, prod, cons, initial int) (ChannelID, error) {
	s, ok := g.byName[src]
	if !ok {
		return 0, fmt.Errorf("sdf: unknown actor %q", src)
	}
	d, ok := g.byName[dst]
	if !ok {
		return 0, fmt.Errorf("sdf: unknown actor %q", dst)
	}
	return g.AddChannel(s, d, prod, cons, initial)
}

func (g *Graph) validActor(id ActorID) bool {
	return id >= 0 && int(id) < len(g.actors)
}

// Validate checks the structural invariants of the graph (endpoint
// validity, positive rates, non-negative delays and execution times,
// unique names, no duplicate channels). Graphs built exclusively through
// AddActor/AddChannel can still carry duplicate channels — two parallel
// edges with identical rates and delay, which are legal FIFOs but almost
// always a generator or serialisation bug and which double-count initial
// tokens in the conversion bound — so Validate rejects them; it guards
// graphs arriving from parsers and generators.
func (g *Graph) Validate() error {
	seen := make(map[string]bool, len(g.actors))
	for i, a := range g.actors {
		if a.Name == "" {
			return fmt.Errorf("sdf: actor %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("sdf: duplicate actor name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Exec < 0 {
			return fmt.Errorf("sdf: actor %q: negative execution time %d", a.Name, a.Exec)
		}
	}
	chans := make(map[Channel]int, len(g.channels))
	for i, c := range g.channels {
		if !g.validActor(c.Src) || !g.validActor(c.Dst) {
			return fmt.Errorf("sdf: channel %d: endpoints out of range", i)
		}
		if c.Prod < 1 || c.Cons < 1 {
			return fmt.Errorf("sdf: channel %d: rates must be >= 1", i)
		}
		if c.Initial < 0 {
			return fmt.Errorf("sdf: channel %d: negative initial tokens", i)
		}
		if j, dup := chans[c]; dup {
			return fmt.Errorf("sdf: channel %d duplicates channel %d (%s -> %s prod=%d cons=%d init=%d)",
				i, j, g.actors[c.Src].Name, g.actors[c.Dst].Name, c.Prod, c.Cons, c.Initial)
		}
		chans[c] = i
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:     g.name,
		actors:   append([]Actor(nil), g.actors...),
		channels: append([]Channel(nil), g.channels...),
		byName:   make(map[string]ActorID, len(g.byName)),
	}
	for k, v := range g.byName {
		c.byName[k] = v
	}
	return c
}

// IsHSDF reports whether every rate in the graph equals 1 (a homogeneous
// SDF graph, §3).
func (g *Graph) IsHSDF() bool {
	for _, c := range g.channels {
		if c.Prod != 1 || c.Cons != 1 {
			return false
		}
	}
	return true
}

// TotalInitialTokens returns the total number of initial tokens in the
// graph — the N that bounds the size of the novel HSDF conversion.
func (g *Graph) TotalInitialTokens() int {
	n := 0
	for _, c := range g.channels {
		n += c.Initial
	}
	return n
}

// SetExec updates the execution time of an actor.
func (g *Graph) SetExec(id ActorID, exec int64) error {
	if !g.validActor(id) {
		return fmt.Errorf("sdf: actor id %d out of range", id)
	}
	if exec < 0 {
		return fmt.Errorf("sdf: negative execution time %d", exec)
	}
	g.actors[id].Exec = exec
	return nil
}

// SetInitial updates the number of initial tokens on a channel.
func (g *Graph) SetInitial(id ChannelID, tokens int) error {
	if id < 0 || int(id) >= len(g.channels) {
		return fmt.Errorf("sdf: channel id %d out of range", id)
	}
	if tokens < 0 {
		return fmt.Errorf("sdf: negative initial tokens %d", tokens)
	}
	g.channels[id].Initial = tokens
	return nil
}

// OutChannels returns the IDs of channels whose source is a.
func (g *Graph) OutChannels(a ActorID) []ChannelID {
	var out []ChannelID
	for i, c := range g.channels {
		if c.Src == a {
			out = append(out, ChannelID(i))
		}
	}
	return out
}

// InChannels returns the IDs of channels whose destination is a.
func (g *Graph) InChannels(a ActorID) []ChannelID {
	var in []ChannelID
	for i, c := range g.channels {
		if c.Dst == a {
			in = append(in, ChannelID(i))
		}
	}
	return in
}

// String renders a compact multi-line description of the graph.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sdf %s: %d actors, %d channels\n", g.name, len(g.actors), len(g.channels))
	for _, a := range g.actors {
		fmt.Fprintf(&b, "  actor %s exec=%d\n", a.Name, a.Exec)
	}
	for _, c := range g.channels {
		fmt.Fprintf(&b, "  chan %s -> %s prod=%d cons=%d init=%d\n",
			g.actors[c.Src].Name, g.actors[c.Dst].Name, c.Prod, c.Cons, c.Initial)
	}
	return b.String()
}
