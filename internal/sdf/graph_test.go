package sdf

import (
	"strings"
	"testing"
)

func TestAddActorAndLookup(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 5)
	b := g.MustAddActor("B", 0)
	if g.NumActors() != 2 {
		t.Fatalf("NumActors = %d", g.NumActors())
	}
	if g.Actor(a).Name != "A" || g.Actor(a).Exec != 5 {
		t.Errorf("Actor(a) = %+v", g.Actor(a))
	}
	id, ok := g.ActorByName("B")
	if !ok || id != b {
		t.Errorf("ActorByName(B) = %v, %v", id, ok)
	}
	if _, ok := g.ActorByName("C"); ok {
		t.Error("ActorByName(C) found phantom actor")
	}
}

func TestAddActorErrors(t *testing.T) {
	g := NewGraph("t")
	if _, err := g.AddActor("", 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := g.AddActor("with space", 1); err == nil {
		t.Error("name with space accepted")
	}
	if _, err := g.AddActor("A", -1); err == nil {
		t.Error("negative exec accepted")
	}
	g.MustAddActor("A", 1)
	if _, err := g.AddActor("A", 2); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestAddChannelErrors(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	if _, err := g.AddChannel(a, ActorID(99), 1, 1, 0); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddChannel(a, b, 0, 1, 0); err == nil {
		t.Error("zero production rate accepted")
	}
	if _, err := g.AddChannel(a, b, 1, 0, 0); err == nil {
		t.Error("zero consumption rate accepted")
	}
	if _, err := g.AddChannel(a, b, 1, 1, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := g.AddChannelByName("A", "Z", 1, 1, 0); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := g.AddChannelByName("Z", "A", 1, 1, 0); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestValidate(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 2)
	g.MustAddChannel(a, b, 2, 3, 1)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestValidateErrors drives every error path of Validate with graphs
// whose invariants are broken behind the constructors' backs — the
// states a buggy parser or generator could hand over.
func TestValidateErrors(t *testing.T) {
	// base builds the valid two-actor graph the cases then corrupt.
	base := func() *Graph {
		g := NewGraph("t")
		a := g.MustAddActor("A", 1)
		b := g.MustAddActor("B", 2)
		g.MustAddChannel(a, b, 2, 3, 1)
		return g
	}
	cases := []struct {
		name    string
		corrupt func(g *Graph)
		wantSub string
	}{
		{
			name:    "empty actor name",
			corrupt: func(g *Graph) { g.actors[0].Name = "" },
			wantSub: "empty name",
		},
		{
			name:    "duplicate actor name",
			corrupt: func(g *Graph) { g.actors[1].Name = "A" },
			wantSub: "duplicate actor name",
		},
		{
			name:    "negative execution time",
			corrupt: func(g *Graph) { g.actors[1].Exec = -3 },
			wantSub: "negative execution time",
		},
		{
			name:    "source out of range",
			corrupt: func(g *Graph) { g.channels[0].Src = 9 },
			wantSub: "out of range",
		},
		{
			name:    "destination out of range",
			corrupt: func(g *Graph) { g.channels[0].Dst = -1 },
			wantSub: "out of range",
		},
		{
			name:    "zero production rate",
			corrupt: func(g *Graph) { g.channels[0].Prod = 0 },
			wantSub: "rates must be >= 1",
		},
		{
			name:    "zero consumption rate",
			corrupt: func(g *Graph) { g.channels[0].Cons = 0 },
			wantSub: "rates must be >= 1",
		},
		{
			name:    "negative initial tokens",
			corrupt: func(g *Graph) { g.channels[0].Initial = -1 },
			wantSub: "negative initial tokens",
		},
		{
			name: "duplicate channel",
			corrupt: func(g *Graph) {
				g.channels = append(g.channels, g.channels[0])
			},
			wantSub: "duplicates channel",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := base()
			c.corrupt(g)
			err := g.Validate()
			if err == nil {
				t.Fatalf("Validate accepted corrupted graph:\n%s", g)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Validate error = %q, want substring %q", err, c.wantSub)
			}
		})
	}
}

// TestValidateParallelChannels pins the boundary of the duplicate check:
// parallel channels between the same actors are legal as long as any
// component of the tuple differs.
func TestValidateParallelChannels(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 2)
	g.MustAddChannel(a, b, 2, 3, 1)
	g.MustAddChannel(a, b, 2, 3, 0) // differs in delay only
	g.MustAddChannel(a, b, 4, 6, 1) // differs in rates only
	g.MustAddChannel(b, a, 3, 2, 1) // reverse direction
	if err := g.Validate(); err != nil {
		t.Errorf("Validate rejected legal parallel channels: %v", err)
	}
}

func TestClone(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	g.MustAddChannel(a, a, 1, 1, 1)
	c := g.Clone()
	c.MustAddActor("B", 2)
	if err := c.SetExec(a, 99); err != nil {
		t.Fatal(err)
	}
	if g.NumActors() != 1 || g.Actor(a).Exec != 1 {
		t.Error("Clone aliases original")
	}
	id, ok := c.ActorByName("B")
	if !ok || c.Actor(id).Name != "B" {
		t.Error("clone byName map broken")
	}
}

func TestSetters(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	ch := g.MustAddChannel(a, a, 1, 1, 1)
	if err := g.SetExec(a, 7); err != nil || g.Actor(a).Exec != 7 {
		t.Error("SetExec failed")
	}
	if err := g.SetExec(a, -1); err == nil {
		t.Error("SetExec accepted negative")
	}
	if err := g.SetExec(ActorID(9), 1); err == nil {
		t.Error("SetExec accepted bad id")
	}
	if err := g.SetInitial(ch, 4); err != nil || g.Channel(ch).Initial != 4 {
		t.Error("SetInitial failed")
	}
	if err := g.SetInitial(ch, -1); err == nil {
		t.Error("SetInitial accepted negative")
	}
	if err := g.SetInitial(ChannelID(9), 1); err == nil {
		t.Error("SetInitial accepted bad id")
	}
}

func TestIsHSDF(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	if !g.IsHSDF() {
		t.Error("homogeneous graph not detected")
	}
	g.MustAddChannel(b, a, 2, 1, 2)
	if g.IsHSDF() {
		t.Error("multirate graph reported HSDF")
	}
}

func TestTotalInitialTokens(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 3)
	g.MustAddChannel(b, a, 1, 1, 2)
	if n := g.TotalInitialTokens(); n != 5 {
		t.Errorf("TotalInitialTokens = %d, want 5", n)
	}
}

func TestInOutChannels(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	c1 := g.MustAddChannel(a, b, 1, 1, 0)
	c2 := g.MustAddChannel(a, b, 1, 1, 1)
	c3 := g.MustAddChannel(b, a, 1, 1, 1)
	out := g.OutChannels(a)
	if len(out) != 2 || out[0] != c1 || out[1] != c2 {
		t.Errorf("OutChannels(a) = %v", out)
	}
	in := g.InChannels(a)
	if len(in) != 1 || in[0] != c3 {
		t.Errorf("InChannels(a) = %v", in)
	}
}

func TestStringContainsParts(t *testing.T) {
	g := NewGraph("demo")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 4)
	g.MustAddChannel(a, b, 2, 3, 1)
	s := g.String()
	for _, want := range []string{"demo", "actor A exec=3", "chan A -> B prod=2 cons=3 init=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestConnectivity(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	if !g.IsConnected() {
		t.Error("connected graph reported disconnected")
	}
	if g.IsStronglyConnected() {
		t.Error("pipeline reported strongly connected")
	}
	g.MustAddChannel(b, a, 1, 1, 1)
	if !g.IsStronglyConnected() {
		t.Error("cycle reported not strongly connected")
	}
	g.MustAddActor("C", 1)
	if g.IsConnected() {
		t.Error("graph with isolated actor reported connected")
	}
	empty := NewGraph("e")
	if empty.IsConnected() || empty.IsStronglyConnected() {
		t.Error("empty graph reported connected")
	}
}

func TestSelfLoopsAndMaxExec(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 9)
	g.MustAddChannel(a, b, 1, 1, 0)
	sl := g.MustAddChannel(a, a, 1, 1, 1)
	loops := g.SelfLoops()
	if len(loops) != 1 || loops[0] != sl {
		t.Errorf("SelfLoops = %v", loops)
	}
	if g.MaxExec() != 9 {
		t.Errorf("MaxExec = %d, want 9", g.MaxExec())
	}
}
