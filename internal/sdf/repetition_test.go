package sdf

import (
	"errors"
	"testing"
)

// twoActorGraph builds A -(p,c)-> B.
func twoActorGraph(p, c int) *Graph {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, p, c, 0)
	return g
}

func TestRepetitionVectorSimple(t *testing.T) {
	g := twoActorGraph(2, 3)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 3 || q[1] != 2 {
		t.Errorf("q = %v, want [3 2]", q)
	}
}

func TestRepetitionVectorHSDF(t *testing.T) {
	g := NewGraph("t")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	c := g.MustAddActor("C", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(b, c, 1, 1, 0)
	g.MustAddChannel(c, a, 1, 1, 1)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %d, want 1", i, v)
		}
	}
}

func TestRepetitionVectorFigure3(t *testing.T) {
	// The paper's Figure 3 graph: left actor fires twice, right once.
	// Left produces 1 per firing, right consumes 2.
	g := NewGraph("fig3")
	l := g.MustAddActor("L", 3)
	r := g.MustAddActor("R", 2)
	g.MustAddChannel(l, r, 1, 2, 0)
	g.MustAddChannel(r, l, 2, 1, 2)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[l] != 2 || q[r] != 1 {
		t.Errorf("q = %v, want [2 1]", q)
	}
	sum, err := g.IterationLength()
	if err != nil || sum != 3 {
		t.Errorf("IterationLength = %d, %v; want 3", sum, err)
	}
}

func TestRepetitionVectorCD2DAT(t *testing.T) {
	// Classic CD (44.1 kHz) to DAT (48 kHz) sample rate converter chain.
	// The iteration length 612 is the Table-1 value for the traditional
	// conversion of the sample rate converter.
	g := NewGraph("cd2dat")
	a := g.MustAddActor("a", 1)
	b := g.MustAddActor("b", 1)
	c := g.MustAddActor("c", 1)
	d := g.MustAddActor("d", 1)
	e := g.MustAddActor("e", 1)
	f := g.MustAddActor("f", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(b, c, 2, 3, 0)
	g.MustAddChannel(c, d, 2, 7, 0)
	g.MustAddChannel(d, e, 8, 7, 0)
	g.MustAddChannel(e, f, 5, 1, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{147, 147, 98, 28, 32, 160}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
	sum, err := g.IterationLength()
	if err != nil || sum != 612 {
		t.Errorf("IterationLength = %d, %v; want 612", sum, err)
	}
}

func TestInconsistentGraph(t *testing.T) {
	g := NewGraph("bad")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(a, b, 2, 1, 0) // conflicting balance for same pair
	_, err := g.RepetitionVector()
	if !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v, want ErrInconsistent", err)
	}
	if g.IsConsistent() {
		t.Error("IsConsistent true for inconsistent graph")
	}
}

func TestInconsistentCycle(t *testing.T) {
	// Cycle whose rate product != 1: A -(2,1)-> B -(2,1)-> C -(1,1)-> A.
	g := NewGraph("bad")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	c := g.MustAddActor("C", 1)
	g.MustAddChannel(a, b, 2, 1, 0)
	g.MustAddChannel(b, c, 2, 1, 0)
	g.MustAddChannel(c, a, 1, 1, 0)
	if _, err := g.RepetitionVector(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v, want ErrInconsistent", err)
	}
}

func TestRepetitionVectorDisconnected(t *testing.T) {
	// Two components, each normalised independently.
	g := NewGraph("two")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	c := g.MustAddActor("C", 1)
	d := g.MustAddActor("D", 1)
	g.MustAddChannel(a, b, 2, 4, 0) // q(A)=2, q(B)=1
	g.MustAddChannel(c, d, 3, 1, 0) // q(C)=1, q(D)=3
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 1, 1, 3}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
}

func TestRepetitionVectorIsolatedActor(t *testing.T) {
	g := NewGraph("iso")
	g.MustAddActor("A", 1)
	q, err := g.RepetitionVector()
	if err != nil || len(q) != 1 || q[0] != 1 {
		t.Errorf("q = %v, %v; want [1]", q, err)
	}
}

func TestRepetitionVectorEmpty(t *testing.T) {
	g := NewGraph("e")
	q, err := g.RepetitionVector()
	if err != nil || q != nil {
		t.Errorf("q = %v, %v; want nil, nil", q, err)
	}
}

func TestRepetitionVectorMinimality(t *testing.T) {
	// Rates with a common factor must still give the minimal vector.
	g := twoActorGraph(4, 6) // balance 4q(A) = 6q(B) -> minimal [3 2]
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 3 || q[1] != 2 {
		t.Errorf("q = %v, want [3 2]", q)
	}
}

// The balance property must hold for every channel of the returned vector.
func checkBalance(t *testing.T, g *Graph, q []int64) {
	t.Helper()
	for _, c := range g.Channels() {
		if q[c.Src]*int64(c.Prod) != q[c.Dst]*int64(c.Cons) {
			t.Errorf("channel %v unbalanced: %d*%d != %d*%d", c, q[c.Src], c.Prod, q[c.Dst], c.Cons)
		}
	}
}

func TestRepetitionVectorBalances(t *testing.T) {
	g := NewGraph("multi")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	c := g.MustAddActor("C", 1)
	// Cycle rate product (3/2)(5/3)(2/5) = 1, so the graph is consistent.
	g.MustAddChannel(a, b, 3, 2, 0)
	g.MustAddChannel(b, c, 5, 3, 0)
	g.MustAddChannel(c, a, 2, 5, 4)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	checkBalance(t, g, q)
}
