package sdf

// Structural queries used by the analyses: connectivity, strong
// connectivity and simple degree statistics. All are defined on the
// directed channel structure, ignoring rates and delays.

// IsConnected reports whether the graph is weakly connected (and
// non-empty). Throughput of a disconnected graph is per component; the
// reduction algorithms require a connected input.
func (g *Graph) IsConnected() bool {
	n := len(g.actors)
	if n == 0 {
		return false
	}
	adj := make([][]ActorID, n)
	for _, c := range g.channels {
		adj[c.Src] = append(adj[c.Src], c.Dst)
		adj[c.Dst] = append(adj[c.Dst], c.Src)
	}
	seen := make([]bool, n)
	stack := []ActorID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// IsStronglyConnected reports whether every actor can reach every other
// actor along directed channels. Strongly connected timed graphs have a
// well-defined finite throughput; pipelines without feedback do not (their
// self-timed throughput is unbounded).
func (g *Graph) IsStronglyConnected() bool {
	n := len(g.actors)
	if n == 0 {
		return false
	}
	fwd := make([][]ActorID, n)
	rev := make([][]ActorID, n)
	for _, c := range g.channels {
		fwd[c.Src] = append(fwd[c.Src], c.Dst)
		rev[c.Dst] = append(rev[c.Dst], c.Src)
	}
	reach := func(adj [][]ActorID) int {
		seen := make([]bool, n)
		stack := []ActorID{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		return count
	}
	return reach(fwd) == n && reach(rev) == n
}

// SelfLoops returns the channel IDs whose source and destination coincide.
// A self-loop with one initial token is the standard way to forbid
// auto-concurrent firings of an actor.
func (g *Graph) SelfLoops() []ChannelID {
	var out []ChannelID
	for i, c := range g.channels {
		if c.Src == c.Dst {
			out = append(out, ChannelID(i))
		}
	}
	return out
}

// MaxExec returns the largest actor execution time (0 for an empty graph).
func (g *Graph) MaxExec() int64 {
	var m int64
	for _, a := range g.actors {
		if a.Exec > m {
			m = a.Exec
		}
	}
	return m
}
