package sdf

import (
	"errors"
	"fmt"

	"repro/internal/rat"
)

// ErrInconsistent indicates a graph whose balance equations have no
// non-trivial solution: no finite schedule returns it to its initial token
// distribution (§3).
var ErrInconsistent = errors.New("sdf: graph is not consistent")

// RepetitionVector solves the balance equations q(src)·prod = q(dst)·cons
// for every channel and returns the minimal positive integer solution.
// For a graph with several weakly connected components, each component is
// scaled to its own minimal solution (the convention of the SDF3 tool
// set). Actors with no channels get repetition count 1.
//
// It returns ErrInconsistent (wrapped) when the equations only admit the
// zero solution.
func (g *Graph) RepetitionVector() ([]int64, error) {
	n := len(g.actors)
	if n == 0 {
		return nil, nil
	}
	// Undirected adjacency over channels for component traversal.
	type half struct {
		other ActorID
		// rate of this actor on the channel and rate of the other side:
		// q(this)·mine = q(other)·theirs
		mine, theirs int
		chID         ChannelID
	}
	adj := make([][]half, n)
	for i, c := range g.channels {
		adj[c.Src] = append(adj[c.Src], half{other: c.Dst, mine: c.Prod, theirs: c.Cons, chID: ChannelID(i)})
		adj[c.Dst] = append(adj[c.Dst], half{other: c.Src, mine: c.Cons, theirs: c.Prod, chID: ChannelID(i)})
	}

	rates := make([]rat.Rat, n)
	assigned := make([]bool, n)
	q := make([]int64, n)

	for start := 0; start < n; start++ {
		if assigned[start] {
			continue
		}
		// BFS the weakly connected component, propagating rational rates.
		comp := []ActorID{ActorID(start)}
		rates[start] = rat.One()
		assigned[start] = true
		for head := 0; head < len(comp); head++ {
			a := comp[head]
			for _, h := range adj[a] {
				// q(a)·mine = q(other)·theirs  =>  q(other) = q(a)·mine/theirs
				want, err := rates[a].Mul(rat.MustNew(int64(h.mine), int64(h.theirs)))
				if err != nil {
					return nil, fmt.Errorf("sdf: repetition vector: %w", err)
				}
				if !assigned[h.other] {
					rates[h.other] = want
					assigned[h.other] = true
					comp = append(comp, h.other)
				} else if !rates[h.other].Equal(want) {
					c := g.channels[h.chID]
					return nil, fmt.Errorf("sdf: channel %s -> %s (prod=%d cons=%d) violates balance: %w",
						g.actors[c.Src].Name, g.actors[c.Dst].Name, c.Prod, c.Cons, ErrInconsistent)
				}
			}
		}
		// Scale the component to the minimal integer solution: multiply by
		// the lcm of denominators, then divide by the gcd of numerators.
		l := int64(1)
		for _, a := range comp {
			var err error
			l, err = rat.LCM(l, rates[a].Den())
			if err != nil {
				return nil, fmt.Errorf("sdf: repetition vector: %w", err)
			}
		}
		gcd := int64(0)
		scaled := make([]int64, len(comp))
		for i, a := range comp {
			// rates[a] * l is integral by construction of l.
			v, err := rates[a].MulInt(l)
			if err != nil {
				return nil, fmt.Errorf("sdf: repetition vector: %w", err)
			}
			scaled[i] = v.Num()
			gcd = rat.GCD(gcd, scaled[i])
		}
		for i, a := range comp {
			q[a] = scaled[i] / gcd
		}
	}
	return q, nil
}

// IsConsistent reports whether the balance equations have a non-trivial
// solution.
func (g *Graph) IsConsistent() bool {
	_, err := g.RepetitionVector()
	return err == nil
}

// IterationLength returns the total number of firings in one iteration:
// the sum of the repetition vector. This is exactly the number of actors
// the traditional SDF→HSDF conversion produces (§3), the quantity in the
// left column of Table 1.
func (g *Graph) IterationLength() (int64, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, v := range q {
		sum += v
		if sum < 0 {
			return 0, fmt.Errorf("sdf: iteration length overflows int64")
		}
	}
	return sum, nil
}
