package verify

import (
	"context"

	"repro/internal/guard"
	"repro/internal/maxplus"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// exhaustiveReplayLimit caps the work of the exhaustive column-replay
// cross-check: N columns at one schedule replay (Σq firings) each.
// Beyond it the checker still performs the single concrete iteration
// but reports the binding as partial through ExhaustiveFor.
const exhaustiveReplayLimit = 1 << 22

// MatrixCert certifies the max-plus iteration matrix of Algorithm 1
// against the graph itself, by concrete replay rather than by trusting
// the symbolic engine:
//
//  1. the carried schedule is certified as a minimal single iteration
//     (buffer-safe, marking-restoring);
//  2. one concrete iteration is replayed with every initial token
//     available at time 0 — the final token time stamps must equal the
//     row maxima of the claimed matrix (the simulated iteration the
//     certificate is cross-checked against);
//  3. when affordable, one further replay per initial token i starts
//     from B·e_i with B = 2·M0+1 (M0 the makespan of the zero replay):
//     because every true matrix entry lies in {−∞} ∪ [0, M0], the final
//     time of token k is At(k,i)+B exactly when token k depends on
//     token i and at most M0 otherwise, so the N replays recover every
//     column of the true matrix and pin the claimed one entry by entry.
//
// The replays use overflow-checked scalar max-plus arithmetic; the
// matrix is schedule-independent, so certifying it against the carried
// schedule certifies it for every schedule.
type MatrixCert struct {
	// Matrix is the claimed iteration matrix in Apply convention
	// (Matrix.At(k, j) is the paper's g_{j,k}).
	Matrix *maxplus.Matrix
	// Schedule is the single-iteration schedule the replays execute.
	Schedule []sdf.ActorID
}

// Kind returns KindMatrix.
func (c *MatrixCert) Kind() Kind { return KindMatrix }

// ExhaustiveFor reports whether Check performs the exhaustive
// column-recovery binding on g, or only the single-iteration row-maxima
// cross-check (for graphs where N·Σq exceeds the replay work cap).
func (c *MatrixCert) ExhaustiveFor(g *sdf.Graph) bool {
	work, ok := rat.MulChecked(int64(g.TotalInitialTokens()), int64(len(c.Schedule)))
	return ok && work <= exhaustiveReplayLimit
}

// Check validates the matrix against g by concrete replay.
func (c *MatrixCert) Check(ctx context.Context, g *sdf.Graph) error {
	if c.Matrix == nil {
		return invalidf("matrix certificate carries no matrix")
	}
	n := g.TotalInitialTokens()
	if c.Matrix.Size() != n {
		return invalidf("matrix dimension %d, graph has %d initial tokens", c.Matrix.Size(), n)
	}
	if _, err := replayCounts(ctx, g, c.Schedule); err != nil {
		return err
	}

	// One concrete simulated iteration from the zero vector: final token
	// times are the row maxima of the true matrix.
	zero := make([]maxplus.T, n)
	final, err := replayTokens(ctx, g, c.Schedule, zero)
	if err != nil {
		return err
	}
	m0 := int64(0)
	for k := 0; k < n; k++ {
		rowMax := maxplus.NegInf
		for j := 0; j < n; j++ {
			rowMax = rowMax.Max(c.Matrix.At(k, j))
		}
		if rowMax.Cmp(final[k]) != 0 {
			return invalidf("row %d: claimed maximum %v, concrete iteration produced %v", k, rowMax, final[k])
		}
		if !final[k].IsNegInf() && final[k].Int() > m0 {
			m0 = final[k].Int()
		}
	}
	// Cheap entry sanity: true entries lie in {−∞} ∪ [0, M0].
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			if e := c.Matrix.At(k, j); !e.IsNegInf() && (e.Int() < 0 || e.Int() > m0) {
				return invalidf("entry (%d,%d) = %v outside the feasible range [0, %d]", k, j, e, m0)
			}
		}
	}

	if !c.ExhaustiveFor(g) {
		return nil
	}
	// Exhaustive binding: recover each column by a shifted replay.
	b, ok := rat.MulChecked(m0, 2)
	if ok {
		b, ok = rat.AddChecked(b, 1)
	}
	if !ok {
		return invalidf("column-recovery shift 2·%d+1 overflows int64", m0)
	}
	start := make([]maxplus.T, n)
	for i := 0; i < n; i++ {
		for j := range start {
			start[j] = 0
		}
		start[i] = maxplus.FromInt(b)
		final, err := replayTokens(ctx, g, c.Schedule, start)
		if err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			got := maxplus.NegInf
			if !final[k].IsNegInf() && final[k].Int() >= b {
				got = maxplus.FromInt(final[k].Int() - b)
			}
			if want := c.Matrix.At(k, i); got.Cmp(want) != 0 {
				return invalidf("entry (%d,%d): claimed %v, column replay recovered %v", k, i, want, got)
			}
		}
	}
	return nil
}

// replayTokens executes one concrete iteration of sched with the given
// initial-token time stamps (global channel-order numbering, front of
// each FIFO first) and returns the final token time stamps in the same
// numbering. All additions are overflow-checked. The schedule must
// already be certified by replayCounts; token underflow is still
// rejected defensively.
func replayTokens(ctx context.Context, g *sdf.Graph, sched []sdf.ActorID, start []maxplus.T) ([]maxplus.T, error) {
	meter := guard.NewMeter(ctx, "verify")
	meter.Phase("token-replay")
	queues := make([][]maxplus.T, g.NumChannels())
	idx := 0
	for i, ch := range g.Channels() {
		for t := 0; t < ch.Initial; t++ {
			queues[i] = append(queues[i], start[idx])
			idx++
		}
	}
	inCh := make([][]sdf.ChannelID, g.NumActors())
	outCh := make([][]sdf.ChannelID, g.NumActors())
	for i := range g.Channels() {
		id := sdf.ChannelID(i)
		ch := g.Channel(id)
		inCh[ch.Dst] = append(inCh[ch.Dst], id)
		outCh[ch.Src] = append(outCh[ch.Src], id)
	}
	for pos, a := range sched {
		if err := meter.Tick(1); err != nil {
			return nil, err
		}
		at := maxplus.NegInf
		for _, id := range inCh[a] {
			ch := g.Channel(id)
			q := queues[id]
			if len(q) < ch.Cons {
				return nil, invalidf("token replay step %d underflows channel %s -> %s",
					pos, g.Actor(ch.Src).Name, g.Actor(ch.Dst).Name)
			}
			for t := 0; t < ch.Cons; t++ {
				at = at.Max(q[t])
			}
			queues[id] = q[ch.Cons:]
		}
		end := maxplus.NegInf
		if !at.IsNegInf() {
			sum, ok := rat.AddChecked(at.Int(), g.Actor(a).Exec)
			if !ok {
				return nil, invalidf("token replay step %d overflows a time stamp", pos)
			}
			end = maxplus.FromInt(sum)
		}
		for _, id := range outCh[a] {
			ch := g.Channel(id)
			for t := 0; t < ch.Prod; t++ {
				queues[id] = append(queues[id], end)
			}
		}
	}
	final := make([]maxplus.T, 0, len(start))
	for i, ch := range g.Channels() {
		if len(queues[i]) != ch.Initial {
			return nil, invalidf("channel %s -> %s ends the replay with %d tokens, want %d",
				g.Actor(ch.Src).Name, g.Actor(ch.Dst).Name, len(queues[i]), ch.Initial)
		}
		final = append(final, queues[i]...)
	}
	return final, nil
}
