// Package verify is the certificate layer of the analysis stack: every
// major analysis result can be packaged together with a witness that an
// independent checker validates in exact arithmetic, without re-running
// (or trusting) the engine that produced it.
//
// The paper's central claims are relational — the symbolic SDF→HSDF
// conversion of Algorithm 1 must agree with the classical conversion,
// and abstraction throughput must conservatively bound concrete
// throughput (Theorem 1) — so a wrong engine answer is silent unless
// something cheaper and simpler re-derives the claim from first
// principles. The certificates here follow the classical
// witness-checking discipline for maximum-cycle-mean problems:
//
//   - a repetition-vector certificate re-checks the balance equations
//     q(src)·prod = q(dst)·cons and minimality (gcd 1 per weakly
//     connected component) in overflow-checked integer arithmetic;
//   - a schedule certificate replays the schedule against the token
//     counts: buffers stay non-negative and the marking returns to the
//     initial one, which together certify a minimal single iteration;
//   - a matrix certificate cross-checks Algorithm 1's symbolic max-plus
//     matrix against concrete replays of one iteration (see
//     MatrixCert);
//   - a throughput certificate pairs a critical-cycle witness (lower
//     bound: the cycle attains the claimed period) with a
//     node-potential feasibility witness (upper bound: feasible
//     potentials are a max-plus sub-eigenvector, proving no cycle
//     exceeds the claimed period);
//   - a trace certificate replays a timed simulation event by event;
//   - an abstraction certificate discharges the Theorem 1 obligation
//     mechanically through the Proposition 1 machinery of
//     internal/core/conservativity.go.
//
// Checkers use only the exact rational arithmetic of internal/rat and
// overflow-checked int64 max-plus arithmetic; a certificate whose
// arithmetic would overflow is invalid, never silently accepted.
package verify

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/guard"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// ErrInvalid is the sentinel wrapped by every certificate rejection, so
// callers can distinguish "the certificate does not prove the claim"
// from the resource errors of the guard taxonomy.
var ErrInvalid = errors.New("verify: certificate invalid")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Kind identifies the claim a certificate proves.
type Kind int

const (
	// KindRepetition certifies a minimal repetition vector.
	KindRepetition Kind = iota
	// KindSchedule certifies a minimal single-iteration schedule.
	KindSchedule
	// KindMatrix certifies a symbolic max-plus iteration matrix.
	KindMatrix
	// KindThroughput certifies an iteration period (or unboundedness).
	KindThroughput
	// KindTrace certifies a timed self-timed execution trace.
	KindTrace
	// KindAbstraction certifies a Theorem 1 conservative bound.
	KindAbstraction
	// KindReduction certifies a throughput answer lifted through a
	// chain of reduction steps back to the original graph.
	KindReduction
	// KindSADF certifies a worst-case iteration period of an FSM-SADF
	// model via its max-plus automaton.
	KindSADF
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRepetition:
		return "repetition"
	case KindSchedule:
		return "schedule"
	case KindMatrix:
		return "matrix"
	case KindThroughput:
		return "throughput"
	case KindTrace:
		return "trace"
	case KindAbstraction:
		return "abstraction"
	case KindReduction:
		return "reduction"
	case KindSADF:
		return "sadf"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Certificate is a self-contained, machine-checkable witness for one
// analysis claim about an SDF graph.
type Certificate interface {
	// Kind identifies the claim.
	Kind() Kind
	// Check validates the certificate against g using only the carried
	// witnesses and exact arithmetic — it never re-runs the producing
	// engine. A nil return means the claim is proven for g; a rejection
	// wraps ErrInvalid. Long replays honour the budget and deadline
	// carried by ctx.
	Check(ctx context.Context, g *sdf.Graph) error
}

// checkRepetition verifies that q is the minimal positive integer
// solution of g's balance equations: every entry >= 1, every channel
// balanced (overflow-checked), and each weakly connected component
// scaled to gcd 1.
func checkRepetition(g *sdf.Graph, q []int64) error {
	n := g.NumActors()
	if len(q) != n {
		return invalidf("repetition vector covers %d of %d actors", len(q), n)
	}
	for i, v := range q {
		if v < 1 {
			return invalidf("repetition count of actor %s is %d, want >= 1", g.Actor(sdf.ActorID(i)).Name, v)
		}
	}
	for _, c := range g.Channels() {
		lhs, ok1 := rat.MulChecked(q[c.Src], int64(c.Prod))
		rhs, ok2 := rat.MulChecked(q[c.Dst], int64(c.Cons))
		if !ok1 || !ok2 {
			return invalidf("balance equation of channel %s -> %s overflows int64",
				g.Actor(c.Src).Name, g.Actor(c.Dst).Name)
		}
		if lhs != rhs {
			return invalidf("channel %s -> %s violates balance: %d*%d != %d*%d",
				g.Actor(c.Src).Name, g.Actor(c.Dst).Name, q[c.Src], c.Prod, q[c.Dst], c.Cons)
		}
	}
	// Minimality per weakly connected component: a global gcd would let
	// one component of a disconnected graph carry a non-minimal scale.
	for _, comp := range weakComponents(g) {
		gcd := int64(0)
		for _, a := range comp {
			gcd = rat.GCD(gcd, q[a])
		}
		if gcd != 1 {
			return invalidf("component containing actor %s has gcd %d, not minimal",
				g.Actor(comp[0]).Name, gcd)
		}
	}
	return nil
}

// weakComponents returns the weakly connected components of g as actor
// lists (singletons for isolated actors).
func weakComponents(g *sdf.Graph) [][]sdf.ActorID {
	n := g.NumActors()
	adj := make([][]sdf.ActorID, n)
	for _, c := range g.Channels() {
		adj[c.Src] = append(adj[c.Src], c.Dst)
		adj[c.Dst] = append(adj[c.Dst], c.Src)
	}
	seen := make([]bool, n)
	var comps [][]sdf.ActorID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comp := []sdf.ActorID{sdf.ActorID(s)}
		seen[s] = true
		for head := 0; head < len(comp); head++ {
			for _, b := range adj[comp[head]] {
				if !seen[b] {
					seen[b] = true
					comp = append(comp, b)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// RepetitionCert certifies that Q is the minimal repetition vector of
// the graph: the balance equations hold and no smaller positive integer
// solution exists.
type RepetitionCert struct {
	// Q is the claimed repetition vector, indexed by ActorID.
	Q []int64
}

// Kind returns KindRepetition.
func (c *RepetitionCert) Kind() Kind { return KindRepetition }

// Check re-derives the balance equations from g and verifies Q against
// them in overflow-checked arithmetic.
func (c *RepetitionCert) Check(_ context.Context, g *sdf.Graph) error {
	return checkRepetition(g, c.Q)
}

// ScheduleCert certifies that Schedule is a valid minimal
// single-iteration schedule of the graph: replaying it keeps every
// buffer non-negative, returns the marking to the initial token
// distribution, and fires each actor its (minimal) repetition count.
type ScheduleCert struct {
	// Schedule lists the actor firings in order.
	Schedule []sdf.ActorID
}

// Kind returns KindSchedule.
func (c *ScheduleCert) Kind() Kind { return KindSchedule }

// Check replays the schedule against g's token counts.
func (c *ScheduleCert) Check(ctx context.Context, g *sdf.Graph) error {
	_, err := replayCounts(ctx, g, c.Schedule)
	return err
}

// replayCounts replays sched against g's channel token counts and
// returns the per-actor firing counts. It rejects buffer underflow, a
// marking that does not return to the initial one, actors that never
// fire and non-minimal firing counts — together these certify a
// complete minimal iteration, because a restored marking forces the
// counts to solve the balance equations.
func replayCounts(ctx context.Context, g *sdf.Graph, sched []sdf.ActorID) ([]int64, error) {
	meter := guard.NewMeter(ctx, "verify")
	meter.Phase("schedule-replay")
	n := g.NumActors()
	inCh := make([][]sdf.ChannelID, n)
	outCh := make([][]sdf.ChannelID, n)
	for i := range g.Channels() {
		id := sdf.ChannelID(i)
		inCh[g.Channel(id).Dst] = append(inCh[g.Channel(id).Dst], id)
		outCh[g.Channel(id).Src] = append(outCh[g.Channel(id).Src], id)
	}
	tokens := make([]int64, g.NumChannels())
	for i, ch := range g.Channels() {
		tokens[i] = int64(ch.Initial)
	}
	counts := make([]int64, n)
	for pos, a := range sched {
		if err := meter.Tick(1); err != nil {
			return nil, err
		}
		if a < 0 || int(a) >= n {
			return nil, invalidf("schedule step %d fires unknown actor %d", pos, a)
		}
		for _, id := range inCh[a] {
			tokens[id] -= int64(g.Channel(id).Cons)
			if tokens[id] < 0 {
				ch := g.Channel(id)
				return nil, invalidf("schedule step %d underflows channel %s -> %s",
					pos, g.Actor(ch.Src).Name, g.Actor(ch.Dst).Name)
			}
		}
		for _, id := range outCh[a] {
			next, ok := rat.AddChecked(tokens[id], int64(g.Channel(id).Prod))
			if !ok {
				return nil, invalidf("schedule step %d overflows a token count", pos)
			}
			tokens[id] = next
		}
		counts[a]++
	}
	for i, ch := range g.Channels() {
		if tokens[i] != int64(ch.Initial) {
			return nil, invalidf("channel %s -> %s ends with %d tokens, want the initial %d",
				g.Actor(ch.Src).Name, g.Actor(ch.Dst).Name, tokens[i], ch.Initial)
		}
	}
	// A restored marking means the counts solve the balance equations;
	// checkRepetition additionally enforces positivity and minimality.
	if err := checkRepetition(g, counts); err != nil {
		return nil, fmt.Errorf("firing counts of the schedule: %w", err)
	}
	return counts, nil
}
