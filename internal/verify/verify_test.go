package verify

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/maxplus"
	"repro/internal/mcm"
	"repro/internal/rat"
	"repro/internal/schedule"
	"repro/internal/sdf"
	"repro/internal/sim"
	"repro/internal/transform"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	return context.Background()
}

// matrixCertFor builds the certified symbolic matrix of g.
func matrixCertFor(t *testing.T, g *sdf.Graph) *MatrixCert {
	t.Helper()
	r, err := core.SymbolicIteration(g)
	if err != nil {
		t.Fatalf("symbolic iteration: %v", err)
	}
	return &MatrixCert{Matrix: r.Matrix, Schedule: r.Schedule}
}

func repetitionOf(t *testing.T, g *sdf.Graph) []int64 {
	t.Helper()
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatalf("repetition vector: %v", err)
	}
	return q
}

// --- repetition certificate ---

func TestRepetitionCertAcceptsAndRejects(t *testing.T) {
	g := gen.Figure3(4) // multirate: q = (2, 1)
	q := repetitionOf(t, g)
	cert := &RepetitionCert{Q: q}
	if err := cert.Check(ctxT(t), g); err != nil {
		t.Fatalf("valid repetition certificate rejected: %v", err)
	}
	// Doubling every entry still balances but is not minimal.
	double := make([]int64, len(q))
	for i, v := range q {
		double[i] = 2 * v
	}
	if err := (&RepetitionCert{Q: double}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("non-minimal vector accepted: %v", err)
	}
	// Breaking one entry breaks a balance equation.
	bad := append([]int64(nil), q...)
	bad[0]++
	if err := (&RepetitionCert{Q: bad}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("unbalanced vector accepted: %v", err)
	}
	if err := (&RepetitionCert{Q: q[:1]}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("short vector accepted: %v", err)
	}
}

func TestRepetitionCertPerComponentMinimality(t *testing.T) {
	// Two disconnected self-loop actors: q = (1, 1); the vector (1, 2)
	// balances each component but the second is not minimal.
	g := sdf.NewGraph("two_components")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, a, 1, 1, 1)
	g.MustAddChannel(b, b, 1, 1, 1)
	if err := (&RepetitionCert{Q: []int64{1, 1}}).Check(ctxT(t), g); err != nil {
		t.Fatalf("minimal vector rejected: %v", err)
	}
	if err := (&RepetitionCert{Q: []int64{1, 2}}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("per-component non-minimal vector accepted: %v", err)
	}
}

// --- schedule certificate ---

func TestScheduleCertAcceptsAndRejects(t *testing.T) {
	g := gen.Figure3(4)
	sched, err := schedule.Sequential(g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := (&ScheduleCert{Schedule: sched}).Check(ctxT(t), g); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// Dropping the last firing leaves the marking off its initial state.
	if err := (&ScheduleCert{Schedule: sched[:len(sched)-1]}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("truncated schedule accepted: %v", err)
	}
	// Doubling the schedule restores the marking but is not minimal.
	if err := (&ScheduleCert{Schedule: append(append([]sdf.ActorID(nil), sched...), sched...)}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("doubled schedule accepted: %v", err)
	}
	// An unknown actor is rejected.
	if err := (&ScheduleCert{Schedule: []sdf.ActorID{99}}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("schedule with unknown actor accepted: %v", err)
	}
}

func TestScheduleCertRejectsUnderflow(t *testing.T) {
	// L consumes from R's channel; firing R's consumer first underflows.
	g := gen.Figure3(4)
	l, _ := g.ActorByName("L")
	r, _ := g.ActorByName("R")
	// R needs 2 tokens from L's channel which start empty.
	if err := (&ScheduleCert{Schedule: []sdf.ActorID{r, l, l}}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("underflowing schedule accepted: %v", err)
	}
}

// --- matrix certificate ---

func TestMatrixCertAcceptsGenuineMatrix(t *testing.T) {
	for _, g := range []*sdf.Graph{gen.Figure2(), gen.Figure3(4), gen.Figure3(7)} {
		cert := matrixCertFor(t, g)
		if !cert.ExhaustiveFor(g) {
			t.Fatalf("%s: expected exhaustive binding for this size", g.Name())
		}
		if err := cert.Check(ctxT(t), g); err != nil {
			t.Errorf("%s: genuine matrix rejected: %v", g.Name(), err)
		}
	}
}

func TestMatrixCertRejectsCorruption(t *testing.T) {
	g := gen.Figure3(4)
	cert := matrixCertFor(t, g)

	// Bump one finite entry: caught by row maxima or column recovery.
	tampered := cert.Matrix.Clone()
	found := false
	for i := 0; i < tampered.Size() && !found; i++ {
		for j := 0; j < tampered.Size() && !found; j++ {
			if !tampered.At(i, j).IsNegInf() {
				tampered.Set(i, j, tampered.At(i, j).Add(maxplus.FromInt(1)))
				found = true
			}
		}
	}
	if !found {
		t.Fatal("matrix has no finite entry to tamper with")
	}
	bad := &MatrixCert{Matrix: tampered, Schedule: cert.Schedule}
	if err := bad.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("tampered entry accepted: %v", err)
	}

	// Erase a dependency (finite -> −∞): caught by column recovery.
	erased := cert.Matrix.Clone()
	outer := -1
	inner := -1
	for i := 0; i < erased.Size() && outer < 0; i++ {
		finite := 0
		for j := 0; j < erased.Size(); j++ {
			if !erased.At(i, j).IsNegInf() {
				finite++
				inner = j
			}
		}
		if finite > 1 {
			outer = i
		}
	}
	if outer >= 0 {
		erased.Set(outer, inner, maxplus.NegInf)
		bad := &MatrixCert{Matrix: erased, Schedule: cert.Schedule}
		if err := bad.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
			t.Errorf("erased dependency accepted: %v", err)
		}
	}

	// Wrong dimension.
	if err := (&MatrixCert{Matrix: maxplus.NewMatrix(1), Schedule: cert.Schedule}).Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("wrong-dimension matrix accepted: %v", err)
	}
}

// --- throughput certificate, matrix anchor ---

func TestMatrixThroughputCertRoundTrip(t *testing.T) {
	for _, g := range []*sdf.Graph{gen.Figure2(), gen.Figure3(4)} {
		mc := matrixCertFor(t, g)
		lam, hasCycle, err := mc.Matrix.Eigenvalue()
		if err != nil {
			t.Fatalf("%s: eigenvalue: %v", g.Name(), err)
		}
		if !hasCycle {
			t.Fatalf("%s: unexpected unbounded throughput", g.Name())
		}
		cert, err := NewMatrixThroughputCert(ctxT(t), g, mc, repetitionOf(t, g), false, lam)
		if err != nil {
			t.Fatalf("%s: certificate construction: %v", g.Name(), err)
		}
		if err := cert.Check(ctxT(t), g); err != nil {
			t.Errorf("%s: genuine throughput certificate rejected: %v", g.Name(), err)
		}
	}
}

func TestMatrixThroughputCertConstructionRejectsWrongPeriod(t *testing.T) {
	g := gen.Figure2()
	mc := matrixCertFor(t, g)
	lam, _, err := mc.Matrix.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	q := repetitionOf(t, g)
	tooBig, _ := lam.Add(rat.One())
	if _, err := NewMatrixThroughputCert(ctxT(t), g, mc, q, false, tooBig); !errors.Is(err, ErrInvalid) {
		t.Errorf("period above the true value extracted a witness: %v", err)
	}
	tooSmall, _ := lam.Sub(rat.One())
	if _, err := NewMatrixThroughputCert(ctxT(t), g, mc, q, false, tooSmall); !errors.Is(err, ErrInvalid) {
		t.Errorf("period below the true value extracted a witness: %v", err)
	}
}

func TestThroughputCertRejectsTamperedWitnesses(t *testing.T) {
	g := gen.Figure2()
	mc := matrixCertFor(t, g)
	lam, _, err := mc.Matrix.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	q := repetitionOf(t, g)
	cert, err := NewMatrixThroughputCert(ctxT(t), g, mc, q, false, lam)
	if err != nil {
		t.Fatal(err)
	}

	// A corrupted claimed period no longer matches the witnesses.
	tampered := *cert
	tampered.Period = rat.MustNew(lam.Num()+lam.Den(), lam.Den())
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("corrupted period accepted: %v", err)
	}

	// A corrupted potential breaks feasibility.
	tampered = *cert
	tampered.Potentials = append([]int64(nil), cert.Potentials...)
	tampered.Potentials[cert.Cycle[0]%len(tampered.Potentials)] -= 1 << 20
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("corrupted potentials accepted: %v", err)
	}

	// An empty cycle is no lower bound.
	tampered = *cert
	tampered.Cycle = nil
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing cycle accepted: %v", err)
	}

	// Carrying both anchors is ill-formed.
	tampered = *cert
	tampered.HSDF = gen.Figure2()
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("double-anchored certificate accepted: %v", err)
	}
}

func TestThroughputCertUnbounded(t *testing.T) {
	// A source feeding a sink through a buffered channel has no
	// dependency cycle: the precedence graph over the single token is
	// empty and the steady state is unconstrained.
	g := sdf.NewGraph("acyclic")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 2)
	g.MustAddChannel(a, b, 1, 1, 1)
	mc := matrixCertFor(t, g)
	cert, err := NewMatrixThroughputCert(ctxT(t), g, mc, repetitionOf(t, g), true, rat.Rat{})
	if err != nil {
		t.Fatalf("unbounded certificate construction: %v", err)
	}
	if err := cert.Check(ctxT(t), g); err != nil {
		t.Errorf("genuine unbounded certificate rejected: %v", err)
	}
	// Claiming unbounded on a cyclic graph must fail at construction.
	g2 := gen.Figure2()
	mc2 := matrixCertFor(t, g2)
	if _, err := NewMatrixThroughputCert(ctxT(t), g2, mc2, repetitionOf(t, g2), true, rat.Rat{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("unbounded claim on cyclic graph extracted a witness: %v", err)
	}
}

// --- throughput certificate, HSDF anchor ---

func TestHSDFThroughputCertRoundTrip(t *testing.T) {
	for _, g := range []*sdf.Graph{gen.Figure2(), gen.Figure3(4)} {
		h, _, err := transform.Traditional(g)
		if err != nil {
			t.Fatalf("%s: traditional conversion: %v", g.Name(), err)
		}
		res, err := mcm.MaxCycleRatio(h)
		if err != nil {
			t.Fatalf("%s: mcm: %v", g.Name(), err)
		}
		if !res.HasCycle {
			t.Fatalf("%s: unexpected acyclic HSDF graph", g.Name())
		}
		cert, err := NewHSDFThroughputCert(ctxT(t), g, h, repetitionOf(t, g), false, res.CycleMean)
		if err != nil {
			t.Fatalf("%s: certificate construction: %v", g.Name(), err)
		}
		if err := cert.Check(ctxT(t), g); err != nil {
			t.Errorf("%s: genuine hsdf certificate rejected: %v", g.Name(), err)
		}
	}
}

func TestHSDFThroughputCertPinsStructure(t *testing.T) {
	g := gen.Figure3(4)
	h, _, err := transform.Traditional(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcm.MaxCycleRatio(h)
	if err != nil {
		t.Fatal(err)
	}
	q := repetitionOf(t, g)
	// A multirate anchor is rejected.
	if _, err := NewHSDFThroughputCert(ctxT(t), g, g, q, false, res.CycleMean); !errors.Is(err, ErrInvalid) {
		t.Errorf("multirate anchor accepted: %v", err)
	}
	// A node count different from Σq is rejected.
	wrong := h.Clone()
	wrong.MustAddActor("extra", 0)
	if _, err := NewHSDFThroughputCert(ctxT(t), g, wrong, q, false, res.CycleMean); !errors.Is(err, ErrInvalid) {
		t.Errorf("wrong-size anchor accepted: %v", err)
	}
}

// TestHSDFAnchorTrustGap documents the verification gap of the HSDF
// anchor: edge delays of the anchor are trusted, so a tampered
// conversion certifies a *different* period against the same graph.
// Catching this is the job of cross-engine disagreement detection, not
// of a single certificate.
func TestHSDFAnchorTrustGap(t *testing.T) {
	g := gen.Figure2()
	h, _, err := transform.Traditional(g)
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := mcm.MaxCycleRatio(h)
	if err != nil {
		t.Fatal(err)
	}
	// Add a delay token on every channel: every cycle ratio drops.
	tampered := h.Clone()
	for i := range tampered.Channels() {
		id := sdf.ChannelID(i)
		if err := tampered.SetInitial(id, tampered.Channel(id).Initial+1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := mcm.MaxCycleRatio(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if res.CycleMean.Equal(genuine.CycleMean) {
		t.Fatal("tampering did not change the cycle mean; test graph unsuitable")
	}
	cert, err := NewHSDFThroughputCert(ctxT(t), g, tampered, repetitionOf(t, g), false, res.CycleMean)
	if err != nil {
		t.Fatalf("tampered anchor failed construction: %v", err)
	}
	if err := cert.Check(ctxT(t), g); err != nil {
		t.Fatalf("expected the documented trust gap (tampered delays verify): %v", err)
	}
}

// --- trace certificate ---

func TestTraceCertAcceptsAndRejects(t *testing.T) {
	g := gen.Figure3(4)
	const iterations = 3
	tr, err := sim.Run(g, iterations)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	firings := make([]TraceFiring, len(tr.Firings))
	for i, f := range tr.Firings {
		firings[i] = TraceFiring{Actor: f.Actor, Start: f.Start, End: f.End}
	}
	cert := &TraceCert{Iterations: iterations, Q: repetitionOf(t, g), Firings: firings}
	if err := cert.Check(ctxT(t), g); err != nil {
		t.Fatalf("genuine trace rejected: %v", err)
	}
	// Pulling one firing earlier consumes a token before it exists.
	tampered := *cert
	tampered.Firings = append([]TraceFiring(nil), firings...)
	last := len(tampered.Firings) - 1
	exec := g.Actor(tampered.Firings[last].Actor).Exec
	tampered.Firings[last] = TraceFiring{Actor: tampered.Firings[last].Actor, Start: 0, End: exec}
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("time-shifted trace accepted: %v", err)
	}
	// A wrong duration is rejected.
	tampered.Firings = append([]TraceFiring(nil), firings...)
	tampered.Firings[0].End++
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("wrong-duration trace accepted: %v", err)
	}
	// A missing firing breaks the count equation.
	tampered.Firings = firings[:len(firings)-1]
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("truncated trace accepted: %v", err)
	}
}

// --- abstraction certificate ---

func figure2Abstraction() *core.Abstraction {
	return &core.Abstraction{
		Alpha: []string{"A", "A", "A", "B", "B"},
		Index: []int{0, 1, 2, 0, 1},
	}
}

func TestAbstractionCertRoundTrip(t *testing.T) {
	g := gen.Figure2()
	ab := figure2Abstraction()
	abstract, res, err := core.Abstract(g, ab)
	if err != nil {
		t.Fatal(err)
	}
	mc := matrixCertFor(t, abstract)
	lam, hasCycle, err := mc.Matrix.Eigenvalue()
	if err != nil || !hasCycle {
		t.Fatalf("abstract eigenvalue: %v (cycle=%v)", err, hasCycle)
	}
	inner, err := NewMatrixThroughputCert(ctxT(t), abstract, mc, repetitionOf(t, abstract), false, lam)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := core.ThroughputBound(lam, res.N)
	if err != nil {
		t.Fatal(err)
	}
	cert := &AbstractionCert{
		Alpha: ab.Alpha, Index: ab.Index, N: res.N,
		AbstractPeriod: lam, Bound: bound, Inner: inner,
	}
	if err := cert.Check(ctxT(t), g); err != nil {
		t.Fatalf("genuine abstraction certificate rejected: %v", err)
	}
	// A corrupted bound is rejected.
	tampered := *cert
	tampered.Bound = rat.MustNew(1, 4)
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("corrupted bound accepted: %v", err)
	}
	// A mismatched inner period is rejected.
	tampered = *cert
	tampered.AbstractPeriod = rat.MustNew(lam.Num()+1, lam.Den())
	if err := tampered.Check(ctxT(t), g); !errors.Is(err, ErrInvalid) {
		t.Errorf("mismatched abstract period accepted: %v", err)
	}
}

// --- engine cross-checks: certificates agree across engines ---

func TestCertifiedPeriodsAgreeAcrossAnchors(t *testing.T) {
	for _, g := range []*sdf.Graph{gen.Figure2(), gen.Figure3(4), gen.Figure3(7)} {
		q := repetitionOf(t, g)
		mc := matrixCertFor(t, g)
		lam, _, err := mc.Matrix.Eigenvalue()
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := transform.Traditional(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mcm.MaxCycleRatio(h)
		if err != nil {
			t.Fatal(err)
		}
		// The iteration period of the HSDF view is the cycle mean; the
		// matrix eigenvalue is the per-iteration growth. They must agree.
		if !res.CycleMean.Equal(lam) {
			t.Fatalf("%s: hsdf cycle mean %v != matrix eigenvalue %v", g.Name(), res.CycleMean, lam)
		}
		a, err := NewMatrixThroughputCert(ctxT(t), g, mc, q, false, lam)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewHSDFThroughputCert(ctxT(t), g, h, q, false, res.CycleMean)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Check(ctxT(t), g); err != nil {
			t.Errorf("%s: matrix-anchored certificate rejected: %v", g.Name(), err)
		}
		if err := b.Check(ctxT(t), g); err != nil {
			t.Errorf("%s: hsdf-anchored certificate rejected: %v", g.Name(), err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindRepetition:  "repetition",
		KindSchedule:    "schedule",
		KindMatrix:      "matrix",
		KindThroughput:  "throughput",
		KindTrace:       "trace",
		KindAbstraction: "abstraction",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
