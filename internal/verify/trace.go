package verify

import (
	"context"
	"sort"

	"repro/internal/guard"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// TraceFiring is one actor firing of a timed execution trace.
type TraceFiring struct {
	Actor      sdf.ActorID
	Start, End int64
}

// TraceCert certifies a timed self-timed execution trace of Iterations
// complete graph iterations: every firing takes exactly its actor's
// execution time, every actor fires its repetition count per iteration,
// buffers never go negative when consumptions happen at firing starts
// and productions at firing ends, and the marking returns to the
// initial token distribution.
type TraceCert struct {
	// Iterations is the number of complete iterations the trace claims.
	Iterations int64
	// Q is the repetition vector, certified against the balance
	// equations.
	Q []int64
	// Firings lists every firing of the trace (order irrelevant; the
	// checker sorts events by time).
	Firings []TraceFiring
}

// Kind returns KindTrace.
func (c *TraceCert) Kind() Kind { return KindTrace }

// Check replays the trace event by event in time order.
func (c *TraceCert) Check(ctx context.Context, g *sdf.Graph) error {
	meter := guard.NewMeter(ctx, "verify")
	meter.Phase("trace-replay")
	if c.Iterations < 1 {
		return invalidf("trace claims %d iterations, want >= 1", c.Iterations)
	}
	if err := checkRepetition(g, c.Q); err != nil {
		return err
	}
	n := g.NumActors()
	counts := make([]int64, n)
	for i, f := range c.Firings {
		if f.Actor < 0 || int(f.Actor) >= n {
			return invalidf("firing %d names unknown actor %d", i, f.Actor)
		}
		if f.Start < 0 {
			return invalidf("firing %d of actor %s starts at %d, before time 0",
				i, g.Actor(f.Actor).Name, f.Start)
		}
		end, ok := rat.AddChecked(f.Start, g.Actor(f.Actor).Exec)
		if !ok || end != f.End {
			return invalidf("firing %d of actor %s: end %d != start %d + exec %d",
				i, g.Actor(f.Actor).Name, f.End, f.Start, g.Actor(f.Actor).Exec)
		}
		counts[f.Actor]++
	}
	for a := 0; a < n; a++ {
		want, ok := rat.MulChecked(c.Q[a], c.Iterations)
		if !ok {
			return invalidf("firing count q·iterations of actor %s overflows int64", g.Actor(sdf.ActorID(a)).Name)
		}
		if counts[a] != want {
			return invalidf("actor %s fired %d times, want q·iterations = %d",
				g.Actor(sdf.ActorID(a)).Name, counts[a], want)
		}
	}

	// Event replay: consumptions happen at firing starts, productions at
	// firing ends. At equal time stamps productions come first — a token
	// produced at time t is available to a firing starting at t, the
	// self-timed semantics of the simulator.
	type event struct {
		time    int64
		produce bool
		actor   sdf.ActorID
	}
	events := make([]event, 0, 2*len(c.Firings))
	for _, f := range c.Firings {
		events = append(events, event{time: f.Start, produce: false, actor: f.Actor})
		events = append(events, event{time: f.End, produce: true, actor: f.Actor})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].produce && !events[j].produce
	})
	inCh := make([][]sdf.ChannelID, n)
	outCh := make([][]sdf.ChannelID, n)
	for i := range g.Channels() {
		id := sdf.ChannelID(i)
		inCh[g.Channel(id).Dst] = append(inCh[g.Channel(id).Dst], id)
		outCh[g.Channel(id).Src] = append(outCh[g.Channel(id).Src], id)
	}
	tokens := make([]int64, g.NumChannels())
	for i, ch := range g.Channels() {
		tokens[i] = int64(ch.Initial)
	}
	for _, ev := range events {
		if err := meter.Tick(1); err != nil {
			return err
		}
		if ev.produce {
			for _, id := range outCh[ev.actor] {
				next, ok := rat.AddChecked(tokens[id], int64(g.Channel(id).Prod))
				if !ok {
					return invalidf("token count overflows int64 at time %d", ev.time)
				}
				tokens[id] = next
			}
			continue
		}
		for _, id := range inCh[ev.actor] {
			tokens[id] -= int64(g.Channel(id).Cons)
			if tokens[id] < 0 {
				ch := g.Channel(id)
				return invalidf("firing of %s at time %d underflows channel %s -> %s",
					g.Actor(ev.actor).Name, ev.time, g.Actor(ch.Src).Name, g.Actor(ch.Dst).Name)
			}
		}
	}
	for i, ch := range g.Channels() {
		if tokens[i] != int64(ch.Initial) {
			return invalidf("channel %s -> %s ends with %d tokens, want the initial %d",
				g.Actor(ch.Src).Name, g.Actor(ch.Dst).Name, tokens[i], ch.Initial)
		}
	}
	return nil
}
