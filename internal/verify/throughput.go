package verify

import (
	"context"
	"fmt"

	"repro/internal/guard"
	"repro/internal/maxplus"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// refEdge is one dependency of a reference precedence graph: the value
// of node `to` in an iteration lags the value of node `from` in the
// d-th previous iteration by at least w. Cycle ratios Σw/Σd over this
// graph are iteration periods.
type refEdge struct {
	from, to int
	w, d     int64
}

// ThroughputCert certifies an iteration period Λ (or unboundedness) of
// a timed SDF graph. The claim is anchored in exactly one of two
// reference precedence graphs:
//
//   - Matrix anchor: the precedence graph of a certified iteration
//     matrix (one node per initial token, one unit-delay edge per
//     finite entry). The matrix itself is bound to the graph by
//     MatrixCert's concrete replays, so the anchor inherits no trust
//     from the producing engine.
//   - HSDF anchor: the classical converted graph (one node per firing,
//     edge delay = initial tokens). The checker pins the node count to
//     Σq and every edge weight to the execution time of the original
//     actor the node maps back to (the conversion lays firings out
//     actor by actor), but trusts the anchor's edge set and delays —
//     a narrower binding than the matrix anchor's, and the documented
//     reason two *verified* engines can still disagree.
//
// On top of the anchor, the certificate pairs two witnesses:
//
//   - Potentials (upper bound): integers p with
//     p[from] + w·den − num·d ≤ p[to] for every reference edge, where
//     Λ = num/den. Summing around any cycle gives Σw/Σd ≤ Λ — feasible
//     potentials are exactly a max-plus sub-eigenvector for Λ.
//   - Cycle (lower bound): a closed walk of reference edges with
//     Σd ≥ 1 and Σw/Σd = Λ exactly, exhibiting a critical cycle that
//     attains the claim.
//
// Together the witnesses prove Λ is exactly the maximum cycle ratio of
// the reference graph. An unbounded claim instead carries Order, a
// topological order proving the reference graph has no cycle at all.
type ThroughputCert struct {
	// Unbounded claims no dependency cycle constrains the steady state.
	Unbounded bool
	// Period is the claimed iteration period Λ (unused when Unbounded).
	Period rat.Rat
	// Q is the repetition vector the period refers to, certified
	// against the balance equations.
	Q []int64

	// Matrix anchors the claim in a certified iteration matrix.
	Matrix *MatrixCert
	// HSDF anchors the claim in a classical converted graph.
	HSDF *sdf.Graph

	// Potentials is the feasibility witness (one entry per reference
	// node); nil when Unbounded.
	Potentials []int64
	// Cycle is the critical-cycle witness: indices into the canonical
	// reference edge enumeration forming a closed walk; nil when
	// Unbounded.
	Cycle []int
	// Order is the topological-order witness (a permutation of the
	// reference nodes); nil unless Unbounded.
	Order []int
}

// Kind returns KindThroughput.
func (c *ThroughputCert) Kind() Kind { return KindThroughput }

// Engine-facing description, used by the CLI's -verify output.
func (c *ThroughputCert) String() string {
	anchor := "matrix"
	if c.HSDF != nil {
		anchor = "hsdf"
	}
	if c.Unbounded {
		return fmt.Sprintf("throughput certificate [%s anchor]: unbounded (topological order over %d nodes)",
			anchor, len(c.Order))
	}
	return fmt.Sprintf("throughput certificate [%s anchor]: period %v (critical cycle of %d edges, %d potentials)",
		anchor, c.Period, len(c.Cycle), len(c.Potentials))
}

// refGraph derives the canonical reference precedence graph of the
// anchor for g. Both Check and the witness extractor use this exact
// enumeration, so Cycle indices align by construction.
func (c *ThroughputCert) refGraph(ctx context.Context, g *sdf.Graph) (nodes int, edges []refEdge, err error) {
	switch {
	case c.Matrix != nil && c.HSDF == nil:
		if err := c.Matrix.Check(ctx, g); err != nil {
			return 0, nil, err
		}
		nodes, edges = matrixRef(c.Matrix.Matrix)
		return nodes, edges, nil
	case c.HSDF != nil && c.Matrix == nil:
		return hsdfRef(g, c.HSDF, c.Q)
	default:
		return 0, nil, invalidf("throughput certificate must carry exactly one anchor")
	}
}

// Check validates the anchor and both witnesses against g.
func (c *ThroughputCert) Check(ctx context.Context, g *sdf.Graph) error {
	if err := checkRepetition(g, c.Q); err != nil {
		return err
	}
	nodes, edges, err := c.refGraph(ctx, g)
	if err != nil {
		return err
	}
	if c.Unbounded {
		return checkTopoOrder(nodes, edges, c.Order)
	}
	if err := checkPotentials(nodes, edges, c.Potentials, c.Period); err != nil {
		return err
	}
	return checkCycle(edges, c.Cycle, c.Period)
}

// matrixRef enumerates the precedence graph of an iteration matrix:
// node per token, and for each finite entry At(i, j) an edge j→i of
// weight At(i, j) and delay 1 (each matrix application is one
// iteration).
func matrixRef(m *maxplus.Matrix) (int, []refEdge) {
	n := m.Size()
	var edges []refEdge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if e := m.At(i, j); !e.IsNegInf() {
				edges = append(edges, refEdge{from: j, to: i, w: e.Int(), d: 1})
			}
		}
	}
	return n, edges
}

// hsdfRef enumerates the precedence graph of a classical conversion,
// pinning what can be re-derived from g: the graph must be homogeneous,
// its node count must equal Σq, and each node maps back to the original
// actor whose block of q consecutive copies contains it (the layout of
// the traditional conversion), which pins every edge weight to that
// actor's execution time in g.
func hsdfRef(g *sdf.Graph, h *sdf.Graph, q []int64) (int, []refEdge, error) {
	if !h.IsHSDF() {
		return 0, nil, invalidf("hsdf anchor has a rate different from 1")
	}
	total := int64(0)
	for _, copies := range q {
		next, ok := rat.AddChecked(total, copies)
		if !ok {
			return 0, nil, invalidf("iteration length Σq overflows int64")
		}
		total = next
	}
	if int64(h.NumActors()) != total {
		return 0, nil, invalidf("hsdf anchor has %d nodes, the iteration length is %d", h.NumActors(), total)
	}
	actorOf := make([]sdf.ActorID, 0, h.NumActors())
	for a, copies := range q {
		for i := int64(0); i < copies; i++ {
			actorOf = append(actorOf, sdf.ActorID(a))
		}
	}
	edges := make([]refEdge, 0, h.NumChannels())
	for _, ch := range h.Channels() {
		w := g.Actor(actorOf[ch.Src]).Exec
		edges = append(edges, refEdge{from: int(ch.Src), to: int(ch.Dst), w: w, d: int64(ch.Initial)})
	}
	return h.NumActors(), edges, nil
}

// checkPotentials verifies the feasibility witness: for every edge,
// p[from] + w·den − num·d ≤ p[to], in overflow-checked arithmetic.
func checkPotentials(nodes int, edges []refEdge, p []int64, period rat.Rat) error {
	if len(p) != nodes {
		return invalidf("potential witness covers %d of %d nodes", len(p), nodes)
	}
	num, den := period.Num(), period.Den()
	for i, e := range edges {
		s, err := scaledWeight(e, num, den)
		if err != nil {
			return err
		}
		lhs, ok := rat.AddChecked(p[e.from], s)
		if !ok {
			return invalidf("potential inequality of edge %d overflows int64", i)
		}
		if lhs > p[e.to] {
			return invalidf("edge %d (%d->%d, w=%d, d=%d) violates feasibility: p[%d]=%d + %d > p[%d]=%d — some cycle exceeds the claimed period %v",
				i, e.from, e.to, e.w, e.d, e.from, p[e.from], s, e.to, p[e.to], period)
		}
	}
	return nil
}

// scaledWeight returns w·den − num·d, the edge weight of the reference
// graph rescaled so that a cycle meets the claimed period exactly when
// its scaled weight sums to zero.
func scaledWeight(e refEdge, num, den int64) (int64, error) {
	wd, ok1 := rat.MulChecked(e.w, den)
	nd, ok2 := rat.MulChecked(num, e.d)
	if !ok1 || !ok2 {
		return 0, invalidf("scaled weight of edge %d->%d overflows int64", e.from, e.to)
	}
	s, ok := rat.AddChecked(wd, -nd)
	if !ok {
		return 0, invalidf("scaled weight of edge %d->%d overflows int64", e.from, e.to)
	}
	return s, nil
}

// checkCycle verifies the critical-cycle witness: the edge indices form
// a closed walk with at least one unit of delay whose ratio Σw/Σd
// equals the claimed period exactly.
func checkCycle(edges []refEdge, cycle []int, period rat.Rat) error {
	if len(cycle) == 0 {
		return invalidf("critical-cycle witness is empty")
	}
	sumW, sumD := int64(0), int64(0)
	for k, idx := range cycle {
		if idx < 0 || idx >= len(edges) {
			return invalidf("critical-cycle witness references unknown edge %d", idx)
		}
		e := edges[idx]
		next := edges[cycle[(k+1)%len(cycle)]]
		if e.to != next.from {
			return invalidf("critical-cycle witness is not a closed walk: edge %d ends at node %d, next starts at %d",
				idx, e.to, next.from)
		}
		var ok bool
		if sumW, ok = rat.AddChecked(sumW, e.w); !ok {
			return invalidf("critical-cycle weight overflows int64")
		}
		if sumD, ok = rat.AddChecked(sumD, e.d); !ok {
			return invalidf("critical-cycle delay overflows int64")
		}
	}
	if sumD < 1 {
		return invalidf("critical-cycle witness carries no delay (Σd = %d)", sumD)
	}
	mean, err := rat.New(sumW, sumD)
	if err != nil {
		return invalidf("critical-cycle ratio %d/%d: %v", sumW, sumD, err)
	}
	if !mean.Equal(period) {
		return invalidf("critical cycle attains %v, claimed period is %v", mean, period)
	}
	return nil
}

// checkTopoOrder verifies the unboundedness witness: order is a
// permutation of the nodes and every edge goes strictly forward, so the
// reference graph is acyclic and no cycle constrains the steady state.
func checkTopoOrder(nodes int, edges []refEdge, order []int) error {
	if len(order) != nodes {
		return invalidf("topological order covers %d of %d nodes", len(order), nodes)
	}
	seen := make([]bool, nodes)
	for _, v := range order {
		if v < 0 || v >= nodes || seen[v] {
			return invalidf("topological order is not a permutation of the nodes")
		}
		seen[v] = true
	}
	pos := make([]int, nodes)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range edges {
		if pos[e.from] >= pos[e.to] {
			return invalidf("edge %d->%d violates the topological order: the reference graph has a cycle", e.from, e.to)
		}
	}
	return nil
}

// extractWitness derives the (Potentials, Cycle) pair for a bounded
// claim by Bellman–Ford longest paths over the scaled weights followed
// by a cycle search in the tight subgraph. Extraction succeeds exactly
// when the claimed period equals the maximum cycle ratio of the
// reference graph: if some cycle exceeds it the relaxation never
// stabilises, and if every cycle is strictly below it no tight cycle
// with delay exists.
func extractWitness(ctx context.Context, nodes int, edges []refEdge, period rat.Rat) ([]int64, []int, error) {
	meter := guard.NewMeter(ctx, "verify")
	meter.Phase("witness-extraction")
	num, den := period.Num(), period.Den()
	scaled := make([]int64, len(edges))
	for i, e := range edges {
		s, err := scaledWeight(e, num, den)
		if err != nil {
			return nil, nil, err
		}
		scaled[i] = s
	}
	// Longest-path potentials from an implicit all-zero source. With the
	// true maximum cycle ratio ≤ period, every scaled cycle weight is
	// ≤ 0 and the relaxation stabilises within `nodes` rounds.
	p := make([]int64, nodes)
	for round := 0; ; round++ {
		if err := meter.States(int64(len(edges)) + 1); err != nil {
			return nil, nil, err
		}
		changed := false
		for i, e := range edges {
			cand, ok := rat.AddChecked(p[e.from], scaled[i])
			if !ok {
				return nil, nil, invalidf("potential extraction overflows int64")
			}
			if cand > p[e.to] {
				p[e.to] = cand
				changed = true
			}
		}
		if !changed {
			break
		}
		if round >= nodes {
			return nil, nil, invalidf("claimed period %v is below some cycle ratio of the reference graph", period)
		}
	}
	// Tight subgraph: edges whose inequality is met with equality. Every
	// closed walk of tight edges has scaled weight exactly zero, so any
	// such walk through a delay-carrying edge is a critical cycle.
	tight := make([][]int, nodes) // node -> outgoing tight edge indices
	for i, e := range edges {
		if p[e.from]+scaled[i] == p[e.to] {
			tight[e.from] = append(tight[e.from], i)
		}
	}
	for i, e := range edges {
		if e.d < 1 || p[e.from]+scaled[i] != p[e.to] {
			continue
		}
		if e.from == e.to {
			return p, []int{i}, nil
		}
		if back, ok := tightPath(edges, tight, e.to, e.from); ok {
			return p, append([]int{i}, back...), nil
		}
	}
	return nil, nil, invalidf("claimed period %v is above every cycle ratio of the reference graph", period)
}

// tightPath finds a path of tight edges from src to dst (BFS), returned
// as edge indices.
func tightPath(edges []refEdge, tight [][]int, src, dst int) ([]int, bool) {
	parentEdge := make(map[int]int) // node -> edge index that reached it
	queue := []int{src}
	visited := map[int]bool{src: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			var path []int
			for v := dst; v != src; {
				idx := parentEdge[v]
				path = append(path, idx)
				v = edges[idx].from
			}
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			return path, true
		}
		for _, idx := range tight[u] {
			v := edges[idx].to
			if !visited[v] {
				visited[v] = true
				parentEdge[v] = idx
				queue = append(queue, v)
			}
		}
	}
	return nil, false
}

// extractTopoOrder derives the unboundedness witness (Kahn's
// algorithm); it fails when the reference graph has a cycle.
func extractTopoOrder(nodes int, edges []refEdge) ([]int, error) {
	indeg := make([]int, nodes)
	adj := make([][]int, nodes)
	for _, e := range edges {
		indeg[e.to]++
		adj[e.from] = append(adj[e.from], e.to)
	}
	order := make([]int, 0, nodes)
	for v := 0; v < nodes; v++ {
		if indeg[v] == 0 {
			order = append(order, v)
		}
	}
	for head := 0; head < len(order); head++ {
		for _, v := range adj[order[head]] {
			indeg[v]--
			if indeg[v] == 0 {
				order = append(order, v)
			}
		}
	}
	if len(order) != nodes {
		return nil, invalidf("unbounded claim on a reference graph with a cycle")
	}
	return order, nil
}

// NewMatrixThroughputCert assembles and proves a matrix-anchored
// throughput certificate: mc must already describe g's iteration
// matrix, q its repetition vector, and the claim (unbounded, period)
// the engine's answer. Witness extraction fails — and with it
// certification — exactly when the claim is not the true maximum cycle
// ratio of the matrix's precedence graph.
func NewMatrixThroughputCert(ctx context.Context, g *sdf.Graph, mc *MatrixCert, q []int64, unbounded bool, period rat.Rat) (*ThroughputCert, error) {
	cert := &ThroughputCert{Unbounded: unbounded, Period: period, Q: q, Matrix: mc}
	nodes, edges := matrixRef(mc.Matrix)
	return finishThroughputCert(ctx, cert, nodes, edges)
}

// NewHSDFThroughputCert assembles and proves an HSDF-anchored
// throughput certificate over the classical conversion h of g.
func NewHSDFThroughputCert(ctx context.Context, g *sdf.Graph, h *sdf.Graph, q []int64, unbounded bool, period rat.Rat) (*ThroughputCert, error) {
	cert := &ThroughputCert{Unbounded: unbounded, Period: period, Q: q, HSDF: h}
	nodes, edges, err := hsdfRef(g, h, q)
	if err != nil {
		return nil, err
	}
	return finishThroughputCert(ctx, cert, nodes, edges)
}

func finishThroughputCert(ctx context.Context, cert *ThroughputCert, nodes int, edges []refEdge) (*ThroughputCert, error) {
	if cert.Unbounded {
		order, err := extractTopoOrder(nodes, edges)
		if err != nil {
			return nil, err
		}
		cert.Order = order
		return cert, nil
	}
	pot, cycle, err := extractWitness(ctx, nodes, edges, cert.Period)
	if err != nil {
		return nil, err
	}
	cert.Potentials, cert.Cycle = pot, cycle
	return cert, nil
}
