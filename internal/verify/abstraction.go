package verify

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// AbstractionCert certifies the Theorem 1 obligation for an abstraction
// of a homogeneous graph: the abstract graph's iteration period Λ′
// (itself certified by the inner throughput certificate) yields the
// conservative per-firing throughput bound τ(a) ≥ 1/(N·Λ′) for every
// original actor. The conservativity itself — that the N-fold unfolding
// of the abstract graph is dominated by the original per Proposition 1 —
// is discharged mechanically through internal/core/conservativity.go.
type AbstractionCert struct {
	// Alpha and Index define the abstraction (Definition 3): original
	// actor a maps to abstract actor Alpha[a] with firing index
	// Index[a].
	Alpha []string
	Index []int
	// N is the firing round length, 1 + the largest index.
	N int
	// AbstractPeriod is the certified iteration period Λ′ of the
	// abstract graph.
	AbstractPeriod rat.Rat
	// Bound is the claimed conservative throughput bound 1/(N·Λ′).
	Bound rat.Rat
	// Inner certifies AbstractPeriod against the abstract graph, which
	// the checker reconstructs from g and the abstraction itself.
	Inner *ThroughputCert
}

// Kind returns KindAbstraction.
func (c *AbstractionCert) Kind() Kind { return KindAbstraction }

// Check validates the certificate against g: the §5 proof obligation
// (unfold and dominate), the inner period certificate against the
// reconstructed abstract graph, and the bound arithmetic.
func (c *AbstractionCert) Check(ctx context.Context, g *sdf.Graph) error {
	ab := &core.Abstraction{Alpha: c.Alpha, Index: c.Index}
	if got := ab.N(); got != c.N {
		return invalidf("abstraction has round length %d, certificate claims %d", got, c.N)
	}
	if err := core.VerifyAbstractionConservative(g, ab); err != nil {
		return fmt.Errorf("%w: theorem 1 obligation: %v", ErrInvalid, err)
	}
	if c.Inner == nil {
		return invalidf("abstraction certificate carries no inner period certificate")
	}
	if c.Inner.Unbounded {
		return invalidf("abstract graph with unbounded throughput yields no finite bound")
	}
	if !c.Inner.Period.Equal(c.AbstractPeriod) {
		return invalidf("inner certificate proves period %v, certificate claims %v",
			c.Inner.Period, c.AbstractPeriod)
	}
	abstract, _, err := core.Abstract(g, ab)
	if err != nil {
		return invalidf("abstract graph cannot be reconstructed: %v", err)
	}
	if err := c.Inner.Check(ctx, abstract); err != nil {
		return fmt.Errorf("inner period certificate: %w", err)
	}
	want, err := core.ThroughputBound(c.AbstractPeriod, c.N)
	if err != nil {
		return invalidf("throughput bound 1/(%d·%v): %v", c.N, c.AbstractPeriod, err)
	}
	if !c.Bound.Equal(want) {
		return invalidf("claimed bound %v, theorem 1 gives %v", c.Bound, want)
	}
	return nil
}

// compile-time interface conformance for every certificate kind
var (
	_ Certificate = (*RepetitionCert)(nil)
	_ Certificate = (*ScheduleCert)(nil)
	_ Certificate = (*MatrixCert)(nil)
	_ Certificate = (*ThroughputCert)(nil)
	_ Certificate = (*TraceCert)(nil)
	_ Certificate = (*AbstractionCert)(nil)
	_ Certificate = (*ReductionCert)(nil)
)
