package verify

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// Names of the reduction rules whose rewrites a LiftStep can certify.
// internal/passes registers its rules under these names so a step
// recorded by the fixpoint driver dispatches to the matching structural
// checker here.
const (
	RulePruneRedundant = "prune-redundant"
	RuleRateGCD        = "rate-gcd"
	RuleDeadActor      = "dead-actor"
	RuleChainFusion    = "chain-fusion"
	RuleAbstraction    = "abstraction"
)

// LiftStep is the checkable witness for one reduction rewrite: it
// records the graph the rule produced together with enough structure —
// the actor back-map, the repetition vectors on both sides and the
// iteration scale relating them — for an independent checker to confirm
// that the rewrite is an instance of the named rule, and hence that an
// iteration period of the reduced graph lifts to Scale times itself on
// the graph the step was applied to.
//
// The exact rules preserve the period up to the recorded scale; the
// abstraction rule only bounds it (Theorem 1), which ReductionCert
// tracks via its Bound flag.
type LiftStep struct {
	// Rule names the reduction rule, one of the Rule* constants.
	Rule string
	// Reduced is the graph the rewrite produced.
	Reduced *sdf.Graph
	// Scale relates iterations: one iteration of the pre-step graph
	// contains Scale iterations of Reduced, so periods lift as
	// Λ_before = Scale·Λ_reduced (exact rules) or
	// Λ_before ≤ Scale·Λ_reduced (abstraction).
	Scale int64
	// ActorMap maps each pre-step actor to its reduced actor, -1 if the
	// rewrite removed it.
	ActorMap []sdf.ActorID
	// QBefore and QAfter are the minimal repetition vectors of the
	// pre-step and reduced graphs (unused by the abstraction rule, which
	// operates on homogeneous graphs and carries Alpha/Index instead).
	QBefore []int64
	QAfter  []int64
	// Alpha and Index record the Definition 3 abstraction for
	// RuleAbstraction steps; nil otherwise.
	Alpha []string
	Index []int
}

// Check verifies that the step is a sound instance of its rule applied
// to before. A nil return proves the structural side conditions of the
// rule, so the period relation recorded by Scale holds.
func (s *LiftStep) Check(ctx context.Context, before *sdf.Graph) error {
	if s.Reduced == nil {
		return invalidf("lift step %q carries no reduced graph", s.Rule)
	}
	if len(s.ActorMap) != before.NumActors() {
		return invalidf("lift step %q maps %d of %d actors", s.Rule, len(s.ActorMap), before.NumActors())
	}
	for a, m := range s.ActorMap {
		if m != -1 && (m < 0 || int(m) >= s.Reduced.NumActors()) {
			return invalidf("lift step %q maps actor %s to out-of-range actor %d",
				s.Rule, before.Actor(sdf.ActorID(a)).Name, m)
		}
	}
	switch s.Rule {
	case RulePruneRedundant:
		return s.checkPrune(before)
	case RuleRateGCD:
		return s.checkRateGCD(before)
	case RuleDeadActor:
		return s.checkDeadActor(before)
	case RuleChainFusion:
		return s.checkChainFusion(before)
	case RuleAbstraction:
		return s.checkAbstraction(ctx, before)
	default:
		return invalidf("lift step names unknown rule %q", s.Rule)
	}
}

// checkScale verifies the iteration-scale relation common to the exact
// rules: both repetition vectors are minimal for their graphs and every
// kept actor satisfies QBefore[a] = Scale·QAfter[map[a]].
func (s *LiftStep) checkScale(before *sdf.Graph) error {
	if s.Scale < 1 {
		return invalidf("lift step %q has scale %d, want >= 1", s.Rule, s.Scale)
	}
	if err := checkRepetition(before, s.QBefore); err != nil {
		return fmt.Errorf("lift step %q pre-step repetition vector: %w", s.Rule, err)
	}
	if err := checkRepetition(s.Reduced, s.QAfter); err != nil {
		return fmt.Errorf("lift step %q reduced repetition vector: %w", s.Rule, err)
	}
	for a, m := range s.ActorMap {
		if m == -1 {
			continue
		}
		want, ok := rat.MulChecked(s.Scale, s.QAfter[m])
		if !ok {
			return invalidf("lift step %q scale check overflows int64", s.Rule)
		}
		if s.QBefore[a] != want {
			return invalidf("lift step %q: actor %s repeats %d times, want scale %d x %d",
				s.Rule, before.Actor(sdf.ActorID(a)).Name, s.QBefore[a], s.Scale, s.QAfter[m])
		}
	}
	return nil
}

// checkIdentityActors verifies that the step keeps every actor in place
// with the same name and execution time.
func (s *LiftStep) checkIdentityActors(before *sdf.Graph) error {
	if s.Reduced.NumActors() != before.NumActors() {
		return invalidf("lift step %q changes actor count %d -> %d",
			s.Rule, before.NumActors(), s.Reduced.NumActors())
	}
	for a := 0; a < before.NumActors(); a++ {
		if s.ActorMap[a] != sdf.ActorID(a) {
			return invalidf("lift step %q moves actor %s", s.Rule, before.Actor(sdf.ActorID(a)).Name)
		}
		b, r := before.Actor(sdf.ActorID(a)), s.Reduced.Actor(sdf.ActorID(a))
		if b.Name != r.Name || b.Exec != r.Exec {
			return invalidf("lift step %q alters actor %s", s.Rule, b.Name)
		}
	}
	return nil
}

// chanKey identifies a channel by endpoints, rates and initial tokens.
// Graph.Validate rejects exact duplicates, so within one graph the key
// is unique; multisets only arise after mapping through a fusion.
type chanKey struct {
	src, dst            sdf.ActorID
	prod, cons, initial int
}

func keyOf(c sdf.Channel) chanKey {
	return chanKey{c.Src, c.Dst, c.Prod, c.Cons, c.Initial}
}

func channelSet(g *sdf.Graph) map[chanKey]int {
	set := make(map[chanKey]int, g.NumChannels())
	for _, c := range g.Channels() {
		set[keyOf(c)]++
	}
	return set
}

// checkPrune verifies a §4.2 redundant-channel pruning: actors are
// untouched, every surviving channel existed before, and every removed
// channel is dominated by a surviving channel with the same endpoints
// and rates but no more initial tokens, so the removed precedence
// constraint was implied and the rewrite is exact.
func (s *LiftStep) checkPrune(before *sdf.Graph) error {
	if s.Scale != 1 {
		return invalidf("prune-redundant step has scale %d, want 1", s.Scale)
	}
	if err := s.checkIdentityActors(before); err != nil {
		return err
	}
	kept := channelSet(s.Reduced)
	for _, n := range kept {
		if n > 1 {
			return invalidf("prune-redundant step duplicates a channel")
		}
	}
	orig := channelSet(before)
	for k := range kept {
		if orig[k] == 0 {
			return invalidf("prune-redundant step invents channel %s -> %s",
				before.Actor(k.src).Name, before.Actor(k.dst).Name)
		}
	}
	for _, c := range before.Channels() {
		if kept[keyOf(c)] > 0 {
			continue
		}
		// Removed: require a surviving dominating channel.
		dominated := false
		for _, r := range s.Reduced.Channels() {
			if r.Src == c.Src && r.Dst == c.Dst && r.Prod == c.Prod && r.Cons == c.Cons && r.Initial <= c.Initial {
				dominated = true
				break
			}
		}
		if !dominated {
			return invalidf("prune-redundant step drops non-redundant channel %s -> %s",
				before.Actor(c.Src).Name, before.Actor(c.Dst).Name)
		}
	}
	return s.checkScale(before)
}

// checkRateGCD verifies a rate normalisation: channels stay in place
// and each reduced channel's (prod, cons, initial) triple is the
// pre-step triple divided by a common positive factor. The SDF
// precedence constraint ⌈(cons·k − initial)/prod⌉ is invariant under
// dividing all three by a common divisor, so the rewrite is exact and
// the repetition vector is unchanged.
func (s *LiftStep) checkRateGCD(before *sdf.Graph) error {
	if s.Scale != 1 {
		return invalidf("rate-gcd step has scale %d, want 1", s.Scale)
	}
	if err := s.checkIdentityActors(before); err != nil {
		return err
	}
	if s.Reduced.NumChannels() != before.NumChannels() {
		return invalidf("rate-gcd step changes channel count %d -> %d",
			before.NumChannels(), s.Reduced.NumChannels())
	}
	for i, c := range before.Channels() {
		r := s.Reduced.Channel(sdf.ChannelID(i))
		if r.Src != c.Src || r.Dst != c.Dst {
			return invalidf("rate-gcd step rewires channel %s -> %s",
				before.Actor(c.Src).Name, before.Actor(c.Dst).Name)
		}
		if r.Prod < 1 || c.Prod%r.Prod != 0 {
			return invalidf("rate-gcd step: channel %s -> %s production %d not a multiple of %d",
				before.Actor(c.Src).Name, before.Actor(c.Dst).Name, c.Prod, r.Prod)
		}
		d := c.Prod / r.Prod
		if c.Cons != d*r.Cons || c.Initial != d*r.Initial {
			return invalidf("rate-gcd step: channel %s -> %s not divided by a common factor",
				before.Actor(c.Src).Name, before.Actor(c.Dst).Name)
		}
	}
	return s.checkScale(before)
}

// sccSizes returns, per actor, the size of its strongly connected
// component in g (iterative Tarjan).
func sccSizes(g *sdf.Graph) []int {
	n := g.NumActors()
	adj := make([][]int, n)
	for _, c := range g.Channels() {
		adj[c.Src] = append(adj[c.Src], int(c.Dst))
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	comps := 0
	sizes := []int{}
	type frame struct{ v, i int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = comps
					size++
					if w == f.v {
						break
					}
				}
				sizes = append(sizes, size)
				comps++
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = sizes[comp[i]]
	}
	return out
}

// checkDeadActor verifies a dead-actor elimination: the removed actors
// lie on no directed cycle (trivial SCC, no self-loop), the kept actors
// and the channels among them transfer unchanged, and the kept
// repetition counts shrink by one uniform scale. Actors outside every
// cycle never determine the maximum cycle mean, so the iteration period
// lifts exactly by that scale.
func (s *LiftStep) checkDeadActor(before *sdf.Graph) error {
	if s.Reduced.NumActors() < 1 {
		return invalidf("dead-actor step empties the graph")
	}
	kept := 0
	seen := make([]bool, s.Reduced.NumActors())
	for a, m := range s.ActorMap {
		if m == -1 {
			continue
		}
		if seen[m] {
			return invalidf("dead-actor step merges actors onto %s", s.Reduced.Actor(m).Name)
		}
		seen[m] = true
		kept++
		b, r := before.Actor(sdf.ActorID(a)), s.Reduced.Actor(m)
		if b.Name != r.Name || b.Exec != r.Exec {
			return invalidf("dead-actor step alters kept actor %s", b.Name)
		}
	}
	if kept != s.Reduced.NumActors() {
		return invalidf("dead-actor step invents %d actors", s.Reduced.NumActors()-kept)
	}
	if kept == before.NumActors() {
		return invalidf("dead-actor step removes no actor")
	}
	sizes := sccSizes(before)
	selfLoop := make([]bool, before.NumActors())
	for _, c := range before.Channels() {
		if c.Src == c.Dst {
			selfLoop[c.Src] = true
		}
	}
	for a, m := range s.ActorMap {
		if m != -1 {
			continue
		}
		if sizes[a] > 1 || selfLoop[a] {
			return invalidf("dead-actor step removes actor %s, which lies on a cycle",
				before.Actor(sdf.ActorID(a)).Name)
		}
	}
	want := make(map[chanKey]int)
	for _, c := range before.Channels() {
		ms, md := s.ActorMap[c.Src], s.ActorMap[c.Dst]
		if ms == -1 || md == -1 {
			continue
		}
		want[chanKey{ms, md, c.Prod, c.Cons, c.Initial}]++
	}
	got := channelSet(s.Reduced)
	if len(got) != len(want) {
		return invalidf("dead-actor step changes the kept channel set")
	}
	for k, n := range want {
		if got[k] != n {
			return invalidf("dead-actor step changes channel %s -> %s",
				s.Reduced.Actor(k.src).Name, s.Reduced.Actor(k.dst).Name)
		}
	}
	return s.checkScale(before)
}

// checkChainFusion verifies a two-actor chain fusion a·b: every output
// channel of a feeds b with matched rates and no initial tokens, every
// input channel of b comes from a, and the fused actor executes for
// exec(a)+exec(b). Under those side conditions b's k-th firing starts
// exactly when a's k-th firing completes, so replacing the pair by one
// sequential actor preserves every external production and consumption
// time and the rewrite is exact up to the recorded uniform scale.
func (s *LiftStep) checkChainFusion(before *sdf.Graph) error {
	var fused sdf.ActorID = -1
	pre := make(map[sdf.ActorID][]sdf.ActorID)
	for a, m := range s.ActorMap {
		if m == -1 {
			return invalidf("chain-fusion step removes actor %s", before.Actor(sdf.ActorID(a)).Name)
		}
		pre[m] = append(pre[m], sdf.ActorID(a))
		if len(pre[m]) == 2 {
			if fused != -1 && fused != m {
				return invalidf("chain-fusion step fuses more than one pair")
			}
			fused = m
		}
		if len(pre[m]) > 2 {
			return invalidf("chain-fusion step fuses more than two actors")
		}
	}
	if fused == -1 {
		return invalidf("chain-fusion step fuses no pair")
	}
	if s.Reduced.NumActors() != len(pre) {
		return invalidf("chain-fusion step invents actors")
	}
	for m, as := range pre {
		if m == fused {
			continue
		}
		b, r := before.Actor(as[0]), s.Reduced.Actor(m)
		if b.Name != r.Name || b.Exec != r.Exec {
			return invalidf("chain-fusion step alters bystander actor %s", b.Name)
		}
	}
	x, y := pre[fused][0], pre[fused][1]
	if err := s.checkFusionPair(before, x, y, fused); err != nil {
		if err2 := s.checkFusionPair(before, y, x, fused); err2 != nil {
			return err
		}
	}
	return s.checkScale(before)
}

// checkFusionPair verifies the chain side conditions for the oriented
// pair a -> b fused into actor f of the reduced graph.
func (s *LiftStep) checkFusionPair(before *sdf.Graph, a, b, f sdf.ActorID) error {
	linked := false
	for _, c := range before.Channels() {
		if c.Src == a {
			if c.Dst != b || c.Prod != c.Cons || c.Initial != 0 {
				return invalidf("chain-fusion step: actor %s has an output escaping the chain",
					before.Actor(a).Name)
			}
			linked = true
		}
		if c.Dst == b && c.Src != a {
			return invalidf("chain-fusion step: actor %s has an input bypassing the chain",
				before.Actor(b).Name)
		}
	}
	if !linked {
		return invalidf("chain-fusion step: actors %s and %s are not connected",
			before.Actor(a).Name, before.Actor(b).Name)
	}
	sum, ok := rat.AddChecked(before.Actor(a).Exec, before.Actor(b).Exec)
	if !ok {
		return invalidf("chain-fusion step: fused execution time overflows int64")
	}
	if s.Reduced.Actor(f).Exec != sum {
		return invalidf("chain-fusion step: fused actor executes for %d, want %d",
			s.Reduced.Actor(f).Exec, sum)
	}
	want := make(map[chanKey]int)
	for _, c := range before.Channels() {
		if c.Src == a && c.Dst == b {
			continue // the internal chain channels disappear
		}
		want[chanKey{s.ActorMap[c.Src], s.ActorMap[c.Dst], c.Prod, c.Cons, c.Initial}]++
	}
	got := channelSet(s.Reduced)
	if len(got) != len(want) {
		return invalidf("chain-fusion step changes the external channel set")
	}
	for k, n := range want {
		if got[k] != n {
			return invalidf("chain-fusion step changes channel %s -> %s",
				s.Reduced.Actor(k.src).Name, s.Reduced.Actor(k.dst).Name)
		}
	}
	return nil
}

// checkAbstraction verifies a Definitions 3–4 abstraction step: the
// abstract graph is the mechanical Definition 4 construction for the
// carried (Alpha, Index), and the Theorem 1 obligation is discharged
// through the Proposition 1 machinery, so the period lifts as the
// conservative bound Λ(before) ≤ N·Λ(reduced).
func (s *LiftStep) checkAbstraction(ctx context.Context, before *sdf.Graph) error {
	ab := &core.Abstraction{Alpha: s.Alpha, Index: s.Index}
	if int64(ab.N()) != s.Scale {
		return invalidf("abstraction step has round length %d but scale %d", ab.N(), s.Scale)
	}
	if err := core.VerifyAbstractionConservative(before, ab); err != nil {
		return fmt.Errorf("%w: abstraction step theorem 1 obligation: %v", ErrInvalid, err)
	}
	abstract, res, err := core.Abstract(before, ab)
	if err != nil {
		return invalidf("abstraction step cannot be reconstructed: %v", err)
	}
	if abstract.NumActors() != s.Reduced.NumActors() {
		return invalidf("abstraction step carries %d abstract actors, reconstruction has %d",
			s.Reduced.NumActors(), abstract.NumActors())
	}
	for i := 0; i < abstract.NumActors(); i++ {
		w, r := abstract.Actor(sdf.ActorID(i)), s.Reduced.Actor(sdf.ActorID(i))
		if w.Name != r.Name || w.Exec != r.Exec {
			return invalidf("abstraction step alters abstract actor %s", w.Name)
		}
	}
	want := channelSet(abstract)
	got := channelSet(s.Reduced)
	if len(got) != len(want) {
		return invalidf("abstraction step changes the abstract channel set")
	}
	for k, n := range want {
		if got[k] != n {
			return invalidf("abstraction step changes abstract channel %s -> %s",
				s.Reduced.Actor(k.src).Name, s.Reduced.Actor(k.dst).Name)
		}
	}
	for a, m := range s.ActorMap {
		if m != res.AbstractActor[a] {
			return invalidf("abstraction step maps actor %s inconsistently",
				before.Actor(sdf.ActorID(a)).Name)
		}
	}
	return nil
}

// ReductionCert certifies a throughput answer computed on a reduced
// graph and lifted back to the original through a chain of LiftSteps:
// each step is checked as a sound instance of its rule against the
// graph the previous step produced, the inner throughput certificate is
// checked against the final reduced graph, and the lifted period must
// equal the inner period times the product of the step scales. When the
// chain contains an abstraction step the lifted period is only an upper
// bound (Theorem 1) and Bound records that.
type ReductionCert struct {
	// Steps is the reduction chain, first step applied to the original
	// graph.
	Steps []LiftStep
	// Inner certifies the throughput of the final reduced graph.
	Inner *ThroughputCert
	// Bound is true when the chain contains an abstraction step, making
	// Period an upper bound on the original iteration period rather than
	// its exact value.
	Bound bool
	// Unbounded mirrors the inner claim: the reduced graph is acyclic
	// exactly when the original is, for every rule here.
	Unbounded bool
	// Period is the lifted iteration period of the original graph
	// (meaningless when Unbounded).
	Period rat.Rat
	// Q is the minimal repetition vector of the original graph.
	Q []int64
}

// Kind returns KindReduction.
func (c *ReductionCert) Kind() Kind { return KindReduction }

// String summarises the certificate for reports.
func (c *ReductionCert) String() string {
	mode := "exact"
	if c.Bound {
		mode = "bound"
	}
	inner := "none"
	if c.Inner != nil {
		inner = c.Inner.String()
	}
	return fmt.Sprintf("reduction(%d steps, %s, inner %s)", len(c.Steps), mode, inner)
}

// Check walks the reduction chain from g, validates every step and the
// inner certificate, and confirms the lifted period arithmetic.
func (c *ReductionCert) Check(ctx context.Context, g *sdf.Graph) error {
	cur := g
	scale := int64(1)
	abstracted := false
	for i := range c.Steps {
		step := &c.Steps[i]
		if err := step.Check(ctx, cur); err != nil {
			return fmt.Errorf("reduction step %d: %w", i+1, err)
		}
		next, ok := rat.MulChecked(scale, step.Scale)
		if !ok {
			return invalidf("reduction chain scale overflows int64")
		}
		scale = next
		if step.Rule == RuleAbstraction {
			abstracted = true
		}
		cur = step.Reduced
	}
	if c.Bound != abstracted {
		return invalidf("certificate claims bound=%v but chain abstraction=%v", c.Bound, abstracted)
	}
	if c.Inner == nil {
		return invalidf("reduction certificate carries no inner throughput certificate")
	}
	if err := c.Inner.Check(ctx, cur); err != nil {
		return fmt.Errorf("reduced-graph throughput certificate: %w", err)
	}
	if c.Unbounded != c.Inner.Unbounded {
		return invalidf("certificate claims unbounded=%v, inner proves %v", c.Unbounded, c.Inner.Unbounded)
	}
	if !c.Unbounded {
		want, err := c.Inner.Period.MulInt(scale)
		if err != nil {
			return invalidf("lifted period %v x %d overflows", c.Inner.Period, scale)
		}
		if !c.Period.Equal(want) {
			return invalidf("certificate claims period %v, chain lifts %v x %d = %v",
				c.Period, c.Inner.Period, scale, want)
		}
	}
	if err := checkRepetition(g, c.Q); err != nil {
		return fmt.Errorf("original repetition vector: %w", err)
	}
	return nil
}
