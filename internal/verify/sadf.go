package verify

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/maxplus"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// SADFEdge is one edge of the max-plus automaton of an FSM-SADF model.
// Nodes are (FSM state, initial token) pairs numbered state·N + token
// over the N shared tokens; for every FSM transition q1→q2 and every
// finite entry M(i,j) of the destination state's scenario matrix (in the
// shared global token order) the automaton carries an edge
// (q1,j)→(q2,i) of weight M(i,j) and delay 1. The maximum cycle ratio
// of this edge list is the worst-case iteration period over all infinite
// scenario sequences the FSM accepts (Skelin & Geilen, arXiv 1404.0089).
type SADFEdge struct {
	From, To int
	W, D     int64
}

// SADFTokenPerm returns the permutation from g's local token order (the
// replay order: channels in slice order, front of each FIFO first) to
// the canonical global order shared by all scenarios of a model: tokens
// sorted by (source actor name, destination actor name, FIFO position).
// perm[local] = global. Actor names pin the coordinates, so two
// scenario graphs over the same actor namespace with the same token
// signature agree on the global order even when their channel slices
// are ordered differently.
func SADFTokenPerm(g *sdf.Graph) []int {
	type tok struct {
		src, dst string
		pos      int
		local    int
	}
	var toks []tok
	local := 0
	for _, c := range g.Channels() {
		src, dst := g.Actor(c.Src).Name, g.Actor(c.Dst).Name
		for k := 0; k < c.Initial; k++ {
			toks = append(toks, tok{src: src, dst: dst, pos: k, local: local})
			local++
		}
	}
	sort.Slice(toks, func(a, b int) bool {
		ta, tb := toks[a], toks[b]
		if ta.src != tb.src {
			return ta.src < tb.src
		}
		if ta.dst != tb.dst {
			return ta.dst < tb.dst
		}
		return ta.pos < tb.pos
	})
	perm := make([]int, local)
	for global, t := range toks {
		perm[t.local] = global
	}
	return perm
}

// SADFTokenSignature summarises g's initial tokens as a canonical
// string: the sorted multiset of src→dst channel names with their token
// counts. Two scenario graphs are automaton-compatible exactly when
// their signatures match — then and only then do their max-plus
// matrices act on the same global token coordinates.
func SADFTokenSignature(g *sdf.Graph) string {
	var lines []string
	for _, c := range g.Channels() {
		if c.Initial == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s\x00%s\x00%d", g.Actor(c.Src).Name, g.Actor(c.Dst).Name, c.Initial))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\x01")
}

// SADFAutomaton enumerates the max-plus automaton of an FSM-SADF model
// from its per-scenario matrices in global token coordinates. The
// enumeration is deterministic — transitions in slice order, matrix
// entries in row-major order — so the analyzer and the certificate
// checker derive the identical edge list, and critical-cycle witnesses
// can reference edges by index. All matrices must share one dimension N
// ≥ 1 and every state/transition index must be in range.
func SADFAutomaton(stateScenario []int, transitions [][2]int, mats []*maxplus.Matrix) (int, []SADFEdge, error) {
	if len(mats) == 0 {
		return 0, nil, fmt.Errorf("verify: sadf automaton needs at least one scenario matrix")
	}
	n := mats[0].Size()
	if n < 1 {
		return 0, nil, fmt.Errorf("verify: sadf automaton needs at least one shared token")
	}
	for k, m := range mats {
		if m == nil || m.Size() != n {
			return 0, nil, fmt.Errorf("verify: scenario matrix %d does not share dimension %d", k, n)
		}
	}
	states := len(stateScenario)
	if states == 0 {
		return 0, nil, fmt.Errorf("verify: sadf automaton needs at least one FSM state")
	}
	for q, s := range stateScenario {
		if s < 0 || s >= len(mats) {
			return 0, nil, fmt.Errorf("verify: state %d labels unknown scenario %d", q, s)
		}
	}
	var edges []SADFEdge
	for _, tr := range transitions {
		q1, q2 := tr[0], tr[1]
		if q1 < 0 || q1 >= states || q2 < 0 || q2 >= states {
			return 0, nil, fmt.Errorf("verify: transition %d->%d outside 0..%d", q1, q2, states-1)
		}
		m := mats[stateScenario[q2]]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if e := m.At(i, j); !e.IsNegInf() {
					edges = append(edges, SADFEdge{From: q1*n + j, To: q2*n + i, W: e.Int(), D: 1})
				}
			}
		}
	}
	return states * n, edges, nil
}

// SADFCert certifies the worst-case iteration period of an FSM-SADF
// model: per-scenario matrix certificates bind each scenario's max-plus
// matrix to its SDF graph (in the graph's own local token order), the
// FSM structure is carried verbatim, and the throughput claim about the
// max-plus automaton is witnessed in the classical double-sided style —
// node potentials prove no automaton cycle exceeds the period, a
// critical cycle attains it exactly, and for acyclic automata a
// topological order proves unboundedness. On top of the witness checks,
// Check replays the critical scenario sequence through the scenario
// matrices themselves (exact max-plus vector arithmetic), so the edge
// arithmetic of the automaton is cross-validated against the matrices
// it was derived from.
type SADFCert struct {
	// ScenarioNames and Matrices pair each scenario with its matrix
	// certificate; Matrices[k].Matrix uses scenario k's local token
	// order (the order MatrixCert.Check replays).
	ScenarioNames []string
	Matrices      []*MatrixCert
	// StateNames, StateScenario, Transitions and Initial carry the FSM:
	// state q is labeled with scenario StateScenario[q], transitions
	// are (from, to) state-index pairs, Initial is the start state.
	StateNames    []string
	StateScenario []int
	Transitions   [][2]int
	Initial       int
	// Unbounded claims the automaton is acyclic (Order is the witness);
	// otherwise Period is the worst-case iteration period with
	// Potentials/Cycle as the double-sided witness. Cycle holds indices
	// into the canonical SADFAutomaton edge enumeration.
	Unbounded  bool
	Period     rat.Rat
	Potentials []int64
	Cycle      []int
	Order      []int
}

// Kind identifies the claim.
func (c *SADFCert) Kind() Kind { return KindSADF }

// String summarises the certificate for reports.
func (c *SADFCert) String() string {
	if c.Unbounded {
		return fmt.Sprintf("sadf certificate: %d scenarios, %d states, acyclic automaton (topological witness over %d nodes)",
			len(c.ScenarioNames), len(c.StateNames), len(c.Order))
	}
	return fmt.Sprintf("sadf certificate: %d scenarios, %d states, worst-case period %v (potentials over %d nodes, critical cycle of %d edges)",
		len(c.ScenarioNames), len(c.StateNames), c.Period, len(c.Potentials), len(c.Cycle))
}

// NewSADFCert packages an analyzed FSM-SADF model into a certificate,
// extracting the throughput witnesses for the claimed answer from the
// automaton. scenarios and mcs run parallel to scenarioNames; the
// matrices are in local token order and are conjugated into global
// coordinates here.
func NewSADFCert(ctx context.Context, scenarios []*sdf.Graph, scenarioNames []string, mcs []*MatrixCert,
	stateNames []string, stateScenario []int, transitions [][2]int, initial int,
	unbounded bool, period rat.Rat) (*SADFCert, error) {
	cert := &SADFCert{
		ScenarioNames: scenarioNames,
		Matrices:      mcs,
		StateNames:    stateNames,
		StateScenario: stateScenario,
		Transitions:   transitions,
		Initial:       initial,
		Unbounded:     unbounded,
		Period:        period,
	}
	nodes, edges, err := sadfRef(scenarios, mcs, stateScenario, transitions)
	if err != nil {
		return nil, err
	}
	if unbounded {
		order, err := extractTopoOrder(nodes, edges)
		if err != nil {
			return nil, err
		}
		cert.Order = order
		return cert, nil
	}
	p, cycle, err := extractWitness(ctx, nodes, edges, period)
	if err != nil {
		return nil, err
	}
	cert.Potentials, cert.Cycle = p, cycle
	return cert, nil
}

// sadfRef derives the reference automaton from the scenario graphs and
// the carried matrices: permute each local matrix into global token
// coordinates (the permutations are re-derived from the graphs, never
// trusted from the certificate) and enumerate the canonical edge list.
func sadfRef(scenarios []*sdf.Graph, mcs []*MatrixCert, stateScenario []int, transitions [][2]int) (int, []refEdge, error) {
	mats := make([]*maxplus.Matrix, len(mcs))
	for k, mc := range mcs {
		if mc == nil || mc.Matrix == nil {
			return 0, nil, invalidf("scenario %d carries no matrix certificate", k)
		}
		tokens := scenarios[k].TotalInitialTokens()
		if mc.Matrix.Size() != tokens {
			return 0, nil, invalidf("scenario %d matrix is %d×%d, the graph has %d tokens",
				k, mc.Matrix.Size(), mc.Matrix.Size(), tokens)
		}
		mats[k] = mc.Matrix.Permute(SADFTokenPerm(scenarios[k]))
	}
	nodes, sedges, err := SADFAutomaton(stateScenario, transitions, mats)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	edges := make([]refEdge, len(sedges))
	for i, e := range sedges {
		edges[i] = refEdge{from: e.From, to: e.To, w: e.W, d: e.D}
	}
	return nodes, edges, nil
}

// Check validates the certificate against the original scenario graphs
// (parallel to ScenarioNames). It re-derives everything the claim
// depends on — FSM well-formedness and reachability, the shared token
// signature, the global token order, the automaton edge list — and
// trusts only the carried witnesses.
func (c *SADFCert) Check(ctx context.Context, scenarios []*sdf.Graph) error {
	if err := c.checkStructure(scenarios); err != nil {
		return err
	}
	// Bind each scenario matrix to its graph: MatrixCert.Check replays
	// concrete iterations in the graph's local token order.
	for k, mc := range c.Matrices {
		if err := mc.Check(ctx, scenarios[k]); err != nil {
			return invalidf("scenario %q matrix certificate: %v", c.ScenarioNames[k], err)
		}
	}
	nodes, edges, err := sadfRef(scenarios, c.Matrices, c.StateScenario, c.Transitions)
	if err != nil {
		return err
	}
	if c.Unbounded {
		return checkTopoOrder(nodes, edges, c.Order)
	}
	if c.Period.Sign() < 0 {
		return invalidf("claimed period %v is negative", c.Period)
	}
	if err := checkPotentials(nodes, edges, c.Potentials, c.Period); err != nil {
		return err
	}
	if err := checkCycle(edges, c.Cycle, c.Period); err != nil {
		return err
	}
	return c.replayCriticalCycle(scenarios, edges)
}

// checkStructure re-derives FSM well-formedness and scenario
// compatibility from the graphs and carried indices.
func (c *SADFCert) checkStructure(scenarios []*sdf.Graph) error {
	if len(scenarios) == 0 || len(scenarios) != len(c.ScenarioNames) || len(scenarios) != len(c.Matrices) {
		return invalidf("certificate covers %d scenarios, %d graphs given", len(c.ScenarioNames), len(scenarios))
	}
	states := len(c.StateNames)
	if states == 0 || len(c.StateScenario) != states {
		return invalidf("certificate labels %d of %d states", len(c.StateScenario), states)
	}
	for q, s := range c.StateScenario {
		if s < 0 || s >= len(scenarios) {
			return invalidf("state %q labels unknown scenario %d", c.StateNames[q], s)
		}
	}
	if c.Initial < 0 || c.Initial >= states {
		return invalidf("initial state %d outside 0..%d", c.Initial, states-1)
	}
	adj := make([][]int, states)
	for _, tr := range c.Transitions {
		if tr[0] < 0 || tr[0] >= states || tr[1] < 0 || tr[1] >= states {
			return invalidf("transition %d->%d outside 0..%d", tr[0], tr[1], states-1)
		}
		adj[tr[0]] = append(adj[tr[0]], tr[1])
	}
	// Reachability from the initial state: the analyzer only admits
	// models whose states are all reachable, so analyzer and checker
	// enumerate the same automaton. A state the FSM can never reach
	// would let a forged certificate hide the critical cycle behind it.
	seen := make([]bool, states)
	stack := []int{c.Initial}
	seen[c.Initial] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range adj[q] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	for q, ok := range seen {
		if !ok {
			return invalidf("state %q is unreachable from the initial state", c.StateNames[q])
		}
	}
	sig := SADFTokenSignature(scenarios[0])
	if sig == "" {
		return invalidf("scenarios carry no initial tokens")
	}
	for k := 1; k < len(scenarios); k++ {
		if SADFTokenSignature(scenarios[k]) != sig {
			return invalidf("scenario %q does not share the token signature of %q",
				c.ScenarioNames[k], c.ScenarioNames[0])
		}
	}
	return nil
}

// replayCriticalCycle replays the witness scenario sequence through the
// scenario matrices: starting from the unit vector of the cycle's entry
// token, applying the matrix of each visited state's scenario must
// reproduce the cycle weight exactly. The replay is a max over all
// token chains with this scenario sequence, so together with the
// potential witness (no cycle exceeds the period) equality is forced —
// any discrepancy means the automaton edges and the matrices disagree.
func (c *SADFCert) replayCriticalCycle(scenarios []*sdf.Graph, edges []refEdge) error {
	mats := make([]*maxplus.Matrix, len(c.Matrices))
	for k, mc := range c.Matrices {
		mats[k] = mc.Matrix.Permute(SADFTokenPerm(scenarios[k]))
	}
	n := mats[0].Size()
	first := edges[c.Cycle[0]]
	j0 := first.from % n
	x := maxplus.UnitVec(n, j0)
	sumW := int64(0)
	for _, idx := range c.Cycle {
		e := edges[idx]
		s := c.StateScenario[e.to/n]
		x = mats[s].Apply(x)
		var ok bool
		if sumW, ok = rat.AddChecked(sumW, e.w); !ok {
			return invalidf("critical-cycle replay weight overflows int64")
		}
	}
	got := x[j0]
	if got.IsNegInf() {
		return invalidf("critical-cycle replay loses the dependency on token %d", j0)
	}
	if got.Int() != sumW {
		return invalidf("critical-cycle replay reaches %d, the witness cycle weighs %d", got.Int(), sumW)
	}
	return nil
}
