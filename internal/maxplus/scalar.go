// Package maxplus implements max-plus algebra: scalars over the reals
// extended with −∞, vectors, matrices, matrix products, eigenvalue
// computation (maximum cycle mean of the precedence graph, Karp's
// algorithm) and power iteration with periodicity detection.
//
// Max-plus algebra is the natural semantics of self-timed execution of
// timed synchronous dataflow graphs (Baccelli et al., "Synchronization and
// Linearity"): actor start times are maxima over token arrival times, and
// execution delays are additions. The DAC'09 reduction paper's novel
// SDF→HSDF conversion runs one symbolic graph iteration to obtain exactly
// such a max-plus matrix over the graph's initial tokens.
//
// Time values are int64. −∞ is represented by a reserved sentinel; all
// operations treat it as the absorbing zero element of ⊗ (addition) and
// the neutral element of ⊕ (max).
package maxplus

import (
	"fmt"
	"math"
)

// T is a max-plus scalar: either a finite int64 time or −∞.
type T int64

// NegInf is the max-plus zero element: the neutral element of ⊕ (max) and
// the absorbing element of ⊗ (plus).
const NegInf T = math.MinInt64

// FromInt converts a finite time value to a max-plus scalar.
func FromInt(v int64) T {
	return T(v)
}

// IsNegInf reports whether t is −∞.
func (t T) IsNegInf() bool { return t == NegInf }

// Int returns the finite value of t. It panics if t is −∞; callers must
// check IsNegInf first when −∞ is possible.
func (t T) Int() int64 {
	if t == NegInf {
		panic("maxplus: Int() on -inf")
	}
	return int64(t)
}

// Add is the max-plus ⊗ operation: ordinary addition with −∞ absorbing.
func (t T) Add(u T) T {
	if t == NegInf || u == NegInf {
		return NegInf
	}
	return T(int64(t) + int64(u))
}

// Max is the max-plus ⊕ operation.
func (t T) Max(u T) T {
	if t > u {
		return t
	}
	return u
}

// Cmp returns -1, 0, +1 comparing t with u; −∞ is smaller than everything
// finite.
func (t T) Cmp(u T) int {
	switch {
	case t < u:
		return -1
	case t > u:
		return 1
	default:
		return 0
	}
}

// String renders t, using "-inf" for −∞.
func (t T) String() string {
	if t == NegInf {
		return "-inf"
	}
	return fmt.Sprintf("%d", int64(t))
}
