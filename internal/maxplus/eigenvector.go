package maxplus

import (
	"errors"

	"repro/internal/rat"
)

// ErrNotIrreducible is returned by Eigenvector when no everywhere-finite
// eigenvector exists: some component is not reachable from a critical
// node. Irreducible matrices always have one; so do reducible matrices
// whose critical class reaches everything.
var ErrNotIrreducible = errors.New("maxplus: no full-support eigenvector (matrix not irreducible)")

// Eigenvector computes a max-plus eigenvector of the matrix.
// Because the eigenvalue λ = num/den may be fractional while entries are
// integers, the vector is returned in scaled form: v together with
// scale = den such that for every component i
//
//	max_j (scale·a_ij + v_j) = num + v_i,
//
// i.e. v/scale is an eigenvector of A for the eigenvalue λ. Starting
// self-timed execution with token k available at time v_k/scale puts the
// system in its periodic regime immediately — the steady-state schedule
// of the modelled SDF graph.
func (m *Matrix) Eigenvector() (v Vec, scale int64, err error) {
	lam, hasCycle, err := m.Eigenvalue()
	if err != nil {
		return nil, 0, err
	}
	if !hasCycle {
		return nil, 0, ErrNotIrreducible
	}
	num, den := lam.Num(), lam.Den()

	// B = den·A − num: every cycle weight becomes <= 0, critical cycles 0.
	b := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if a := m.rows[i][j]; a != NegInf {
				b.rows[i][j] = T(int64(a)*den - num)
			}
		}
	}
	star, err := b.Star()
	if err != nil {
		// Cannot happen: the normalisation removes positive cycles.
		return nil, 0, err
	}
	// A critical node lies on a zero-weight cycle of B: (B⊗B*)_cc = 0.
	plus := b.Mul(star)
	critical := -1
	for c := 0; c < m.n; c++ {
		if plus.At(c, c) == 0 {
			critical = c
			break
		}
	}
	if critical < 0 {
		return nil, 0, errors.New("maxplus: internal: no critical node after normalisation")
	}
	// Column `critical` of B* is the eigenvector support.
	v = NewVec(m.n)
	for i := 0; i < m.n; i++ {
		v[i] = star.At(i, critical)
	}
	for _, x := range v {
		if x == NegInf {
			return nil, 0, ErrNotIrreducible
		}
	}
	return v, den, nil
}

// CheckEigenvector verifies max_j(scale·a_ij + v_j) == num + v_i for all
// i, where lam = num/den and scale must equal den. It returns false for
// vectors with −∞ components.
func (m *Matrix) CheckEigenvector(v Vec, scale int64, lam rat.Rat) bool {
	if len(v) != m.n || scale != lam.Den() {
		return false
	}
	for _, x := range v {
		if x == NegInf {
			return false
		}
	}
	for i := 0; i < m.n; i++ {
		best := NegInf
		for j := 0; j < m.n; j++ {
			if a := m.rows[i][j]; a != NegInf {
				if s := T(int64(a)*scale + int64(v[j])); s > best {
					best = s
				}
			}
		}
		want := T(lam.Num() + int64(v[i]))
		if best != want {
			return false
		}
	}
	return true
}
