package maxplus

import (
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

func TestScalarOps(t *testing.T) {
	a := FromInt(3)
	b := FromInt(-2)
	if got := a.Add(b); got != FromInt(1) {
		t.Errorf("3 ⊗ -2 = %v, want 1", got)
	}
	if got := a.Max(b); got != a {
		t.Errorf("3 ⊕ -2 = %v, want 3", got)
	}
	if got := NegInf.Add(a); got != NegInf {
		t.Errorf("-inf ⊗ 3 = %v, want -inf", got)
	}
	if got := NegInf.Max(a); got != a {
		t.Errorf("-inf ⊕ 3 = %v, want 3", got)
	}
	if !NegInf.IsNegInf() || a.IsNegInf() {
		t.Error("IsNegInf misbehaves")
	}
	if NegInf.Cmp(a) != -1 || a.Cmp(NegInf) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp misbehaves with -inf")
	}
	if s := NegInf.String(); s != "-inf" {
		t.Errorf("String(-inf) = %q", s)
	}
}

func TestIntPanicsOnNegInf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on -inf did not panic")
		}
	}()
	_ = NegInf.Int()
}

func TestVecBasics(t *testing.T) {
	v := NewVec(3)
	for _, x := range v {
		if x != NegInf {
			t.Fatal("NewVec not all -inf")
		}
	}
	u := UnitVec(3, 1)
	if u[0] != NegInf || u[1] != 0 || u[2] != NegInf {
		t.Errorf("UnitVec(3,1) = %v", u)
	}
	if u.FiniteCount() != 1 {
		t.Errorf("FiniteCount = %d, want 1", u.FiniteCount())
	}
	w := u.AddScalar(FromInt(5))
	if w[1] != FromInt(5) || w[0] != NegInf {
		t.Errorf("AddScalar = %v", w)
	}
	if u[1] != 0 {
		t.Error("AddScalar mutated receiver")
	}
	m := Vec{FromInt(1), NegInf, FromInt(7)}.Max(Vec{FromInt(4), FromInt(2), NegInf})
	want := Vec{FromInt(4), FromInt(2), FromInt(7)}
	if !m.Equal(want) {
		t.Errorf("Max = %v, want %v", m, want)
	}
	if m.MaxEntry() != FromInt(7) {
		t.Errorf("MaxEntry = %v, want 7", m.MaxEntry())
	}
}

func TestVecMaxInto(t *testing.T) {
	v := Vec{FromInt(1), NegInf}
	v.MaxInto(Vec{NegInf, FromInt(3)})
	if !v.Equal(Vec{FromInt(1), FromInt(3)}) {
		t.Errorf("MaxInto = %v", v)
	}
}

func TestVecNormalise(t *testing.T) {
	v := Vec{FromInt(5), FromInt(2), NegInf}
	n, shift := v.Normalise()
	if shift != FromInt(5) {
		t.Errorf("shift = %v, want 5", shift)
	}
	if !n.Equal(Vec{FromInt(0), FromInt(-3), NegInf}) {
		t.Errorf("normalised = %v", n)
	}
	allInf := NewVec(2)
	_, shift = allInf.Normalise()
	if shift != NegInf {
		t.Errorf("shift of all -inf = %v, want -inf", shift)
	}
}

func TestMatrixApply(t *testing.T) {
	// x' = A x with A = [[3, -inf], [1, 2]]
	a := NewMatrix(2)
	a.Set(0, 0, FromInt(3))
	a.Set(1, 0, FromInt(1))
	a.Set(1, 1, FromInt(2))
	x := Vec{FromInt(0), FromInt(0)}
	y := a.Apply(x)
	if !y.Equal(Vec{FromInt(3), FromInt(2)}) {
		t.Errorf("Apply = %v, want [3 2]", y)
	}
	y = a.Apply(y)
	// y0 = 3+3 = 6; y1 = max(1+3, 2+2) = 4
	if !y.Equal(Vec{FromInt(6), FromInt(4)}) {
		t.Errorf("Apply² = %v, want [6 4]", y)
	}
}

func TestMatrixMulAssociatesWithApply(t *testing.T) {
	// (A ⊗ B) ⊗ x == A ⊗ (B ⊗ x)
	a := NewMatrix(3)
	a.Set(0, 1, FromInt(2))
	a.Set(1, 2, FromInt(4))
	a.Set(2, 0, FromInt(1))
	b := NewMatrix(3)
	b.Set(0, 0, FromInt(3))
	b.Set(1, 0, FromInt(-1))
	b.Set(2, 1, FromInt(5))
	x := Vec{FromInt(1), FromInt(0), FromInt(2)}
	lhs := a.Mul(b).Apply(x)
	rhs := a.Apply(b.Apply(x))
	if !lhs.Equal(rhs) {
		t.Errorf("(AB)x = %v, A(Bx) = %v", lhs, rhs)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a := NewMatrix(3)
	a.Set(0, 2, FromInt(7))
	a.Set(1, 1, FromInt(-2))
	a.Set(2, 0, FromInt(4))
	if !a.Mul(id).Equal(a) || !id.Mul(a).Equal(a) {
		t.Error("identity law violated")
	}
}

func TestEigenvalueSelfLoop(t *testing.T) {
	a := NewMatrix(1)
	a.Set(0, 0, FromInt(5))
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", ok, err)
	}
	if !lam.Equal(rat.FromInt(5)) {
		t.Errorf("lambda = %v, want 5", lam)
	}
}

func TestEigenvalueAcyclic(t *testing.T) {
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(9)) // 0 -> 1 only, no cycle
	_, ok, err := a.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("acyclic matrix reported a cycle")
	}
}

func TestEigenvalueTwoCycle(t *testing.T) {
	// Cycle 0->1->0 with weights 3 and 5: mean (3+5)/2 = 4.
	// Self loop at 1 with weight 3: mean 3. Max = 4.
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(3))
	a.Set(0, 1, FromInt(5))
	a.Set(1, 1, FromInt(3))
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", ok, err)
	}
	if !lam.Equal(rat.FromInt(4)) {
		t.Errorf("lambda = %v, want 4", lam)
	}
}

func TestEigenvalueFractional(t *testing.T) {
	// 3-cycle with weights 1, 2, 4: mean 7/3.
	a := NewMatrix(3)
	a.Set(1, 0, FromInt(1))
	a.Set(2, 1, FromInt(2))
	a.Set(0, 2, FromInt(4))
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", ok, err)
	}
	if !lam.Equal(rat.MustNew(7, 3)) {
		t.Errorf("lambda = %v, want 7/3", lam)
	}
}

func TestEigenvalueMultipleSCCs(t *testing.T) {
	// Two disjoint cycles: {0} self loop 2, {1,2} cycle mean (6+0)/2 = 3.
	a := NewMatrix(3)
	a.Set(0, 0, FromInt(2))
	a.Set(2, 1, FromInt(6))
	a.Set(1, 2, FromInt(0))
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", ok, err)
	}
	if !lam.Equal(rat.FromInt(3)) {
		t.Errorf("lambda = %v, want 3", lam)
	}
}

func TestEigenvalueNegativeWeights(t *testing.T) {
	// Cycle 0->1->0 with weights -3 and -1: mean -2.
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(-3))
	a.Set(0, 1, FromInt(-1))
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", ok, err)
	}
	if !lam.Equal(rat.FromInt(-2)) {
		t.Errorf("lambda = %v, want -2", lam)
	}
}

func TestPowerIterationMatchesEigenvalue(t *testing.T) {
	a := NewMatrix(3)
	a.Set(1, 0, FromInt(1))
	a.Set(2, 1, FromInt(2))
	a.Set(0, 2, FromInt(4))
	a.Set(0, 0, FromInt(1))
	res, ok, err := a.PowerIteration(10000)
	if err != nil || !ok {
		t.Fatalf("PowerIteration: ok=%v err=%v", ok, err)
	}
	lam, lok, err := a.Eigenvalue()
	if err != nil || !lok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", lok, err)
	}
	if !res.CycleMean.Equal(lam) {
		t.Errorf("power cycle mean %v != eigenvalue %v", res.CycleMean, lam)
	}
}

func TestPowerIterationAcyclic(t *testing.T) {
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(9))
	_, ok, err := a.PowerIteration(100)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("acyclic matrix had periodic regime")
	}
}

// Property: for random small irreducible matrices, power iteration and
// Karp's eigenvalue agree exactly. This is the fundamental cross-check
// between the two throughput engines. Irreducibility (a Hamiltonian cycle
// of finite entries) matches the strongly connected SDF graphs the
// state-space method targets and guarantees the recurrence that power
// iteration detects.
func TestQuickPowerEqualsKarp(t *testing.T) {
	f := func(seedEntries [16]int8, mask uint16) bool {
		n := 4
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			// Hamiltonian cycle keeps the matrix irreducible.
			a.Set((i+1)%n, i, FromInt(int64(seedEntries[i])))
			for j := 0; j < n; j++ {
				bit := uint(i*n + j)
				if mask&(1<<bit) != 0 {
					a.Set(i, j, FromInt(int64(seedEntries[i*n+j])))
				}
			}
		}
		lam, hasCycle, err := a.Eigenvalue()
		if err != nil || !hasCycle {
			return false
		}
		res, ok, err := a.PowerIteration(200000)
		if err != nil || !ok {
			return false
		}
		return res.CycleMean.Equal(lam)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// A reducible matrix whose recurrent classes grow at different rates must
// be rejected by PowerIteration with an error rather than a wrong answer.
func TestPowerIterationReducibleDifferentRates(t *testing.T) {
	a := NewMatrix(3)
	a.Set(0, 0, FromInt(1)) // class {0} grows at 1
	a.Set(1, 1, FromInt(5)) // class {1} grows at 5
	a.Set(2, 0, FromInt(0)) // 2 fed by both classes
	a.Set(2, 1, FromInt(0))
	_, _, err := a.PowerIteration(500)
	if err == nil {
		t.Error("PowerIteration on drifting reducible matrix returned no error")
	}
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatalf("Eigenvalue: ok=%v err=%v", ok, err)
	}
	if !lam.Equal(rat.FromInt(5)) {
		t.Errorf("lambda = %v, want 5", lam)
	}
}

func TestMatrixFiniteCount(t *testing.T) {
	a := NewMatrix(2)
	if a.FiniteCount() != 0 {
		t.Errorf("empty FiniteCount = %d", a.FiniteCount())
	}
	a.Set(0, 1, FromInt(3))
	a.Set(1, 1, FromInt(0))
	if a.FiniteCount() != 2 {
		t.Errorf("FiniteCount = %d, want 2", a.FiniteCount())
	}
}

func TestMatrixClone(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, FromInt(1))
	b := a.Clone()
	b.Set(0, 0, FromInt(9))
	if a.At(0, 0) != FromInt(1) {
		t.Error("Clone aliases original")
	}
	if !a.Clone().Equal(a) {
		t.Error("Clone not equal to original")
	}
}
