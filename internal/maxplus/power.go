package maxplus

import (
	"context"
	"fmt"

	"repro/internal/guard"
	"repro/internal/rat"
)

// PowerResult describes the periodic regime found by power iteration.
type PowerResult struct {
	// Transient is the number of iterations before the periodic regime is
	// first entered.
	Transient int
	// Period is the length of the periodic regime in iterations.
	Period int
	// Growth is the total increase of the normalisation shift over one
	// period, so the cycle mean (iteration period of the modelled graph)
	// is Growth/Period.
	Growth int64
	// CycleMean = Growth / Period as an exact rational.
	CycleMean rat.Rat
}

// PowerIteration repeatedly applies m to the all-zeros start vector
// (every initial token available at time 0) until the normalised state
// vector recurs, mirroring the state-space throughput exploration of
// Ghamarian et al. that the paper's Algorithm 1 is derived from. It
// returns the transient length, the period, and the exact cycle mean.
//
// The max-plus cyclicity theorem guarantees a recurrence for irreducible
// matrices (strongly connected precedence graphs), which is what iteration
// matrices of strongly connected SDF graphs are. For reducible matrices
// whose recurrent classes grow at different rates the normalised state
// drifts forever and never recurs; maxIter bounds the exploration and an
// error is returned when it is exhausted. Use Eigenvalue for such models.
//
// If the state vector degenerates to all −∞ (acyclic precedence graph —
// nothing constrains the next iteration), ok is false: there is no finite
// cycle mean and the modelled throughput is unbounded.
func (m *Matrix) PowerIteration(maxIter int) (res PowerResult, ok bool, err error) {
	return m.PowerIterationCtx(guard.WithBudget(context.Background(), guard.Unlimited()), maxIter)
}

// PowerIterationCtx is PowerIteration under the resilience runtime: each
// explored state charges the state budget carried by ctx and the loop
// checkpoints the context, so reducible matrices that drift forever are
// cut off by whichever bound — maxIter, the budget or the deadline —
// fires first.
func (m *Matrix) PowerIterationCtx(ctx context.Context, maxIter int) (res PowerResult, ok bool, err error) {
	meter := guard.NewMeter(ctx, "statespace")
	meter.Phase("power-iteration")
	x := make(Vec, m.n) // all zeros: every token at time 0
	seen := make(map[string]struct {
		iter  int
		shift int64
	})

	norm, shift := x.Normalise()
	if shift == NegInf {
		return PowerResult{}, false, nil
	}
	seen[norm.key()] = struct {
		iter  int
		shift int64
	}{0, int64(shift)}

	for k := 1; k <= maxIter; k++ {
		if err := meter.States(1); err != nil {
			return PowerResult{}, false, err
		}
		x = m.Apply(x)
		norm, shift = x.Normalise()
		if shift == NegInf {
			// No token of this iteration depends on anything: the
			// precedence graph is acyclic, throughput unbounded.
			return PowerResult{}, false, nil
		}
		key := norm.key()
		if prev, found := seen[key]; found {
			period := k - prev.iter
			growth := int64(shift) - prev.shift
			mean, rerr := rat.New(growth, int64(period))
			if rerr != nil {
				return PowerResult{}, false, rerr
			}
			return PowerResult{
				Transient: prev.iter,
				Period:    period,
				Growth:    growth,
				CycleMean: mean,
			}, true, nil
		}
		seen[key] = struct {
			iter  int
			shift int64
		}{k, int64(shift)}
	}
	return PowerResult{}, false, fmt.Errorf("maxplus: no recurrence within %d iterations", maxIter)
}
