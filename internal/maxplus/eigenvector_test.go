package maxplus

import (
	"errors"
	"math/rand"
	"testing"
)

func TestEigenvectorSimpleCycle(t *testing.T) {
	// 0 -> 1 (3), 1 -> 0 (5): λ = 4, den 1.
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(3))
	a.Set(0, 1, FromInt(5))
	v, scale, err := a.Eigenvector()
	if err != nil {
		t.Fatal(err)
	}
	lam, _, err := a.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	if !a.CheckEigenvector(v, scale, lam) {
		t.Errorf("CheckEigenvector failed for v=%v scale=%d λ=%v", v, scale, lam)
	}
}

func TestEigenvectorFractionalLambda(t *testing.T) {
	// 3-cycle weights 1, 2, 4: λ = 7/3, scale 3.
	a := NewMatrix(3)
	a.Set(1, 0, FromInt(1))
	a.Set(2, 1, FromInt(2))
	a.Set(0, 2, FromInt(4))
	v, scale, err := a.Eigenvector()
	if err != nil {
		t.Fatal(err)
	}
	if scale != 3 {
		t.Errorf("scale = %d, want 3", scale)
	}
	lam, _, err := a.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	if !a.CheckEigenvector(v, scale, lam) {
		t.Errorf("CheckEigenvector failed for v=%v scale=%d λ=%v", v, scale, lam)
	}
}

func TestEigenvectorReducibleWithReachableSupportWorks(t *testing.T) {
	// Reducible, but the critical node (self-loop at 0, λ = 2) reaches
	// every other node, so a finite eigenvector still exists.
	a := NewMatrix(2)
	a.Set(0, 0, FromInt(2))
	a.Set(1, 0, FromInt(1))
	v, scale, err := a.Eigenvector()
	if err != nil {
		t.Fatal(err)
	}
	lam, _, err := a.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	if !a.CheckEigenvector(v, scale, lam) {
		t.Errorf("CheckEigenvector failed: v=%v scale=%d λ=%v", v, scale, lam)
	}
}

func TestEigenvectorNoFullSupportRejected(t *testing.T) {
	// Two disconnected recurrent classes with different rates: no finite
	// eigenvector covers both.
	a := NewMatrix(2)
	a.Set(0, 0, FromInt(2))
	a.Set(1, 1, FromInt(1))
	if _, _, err := a.Eigenvector(); !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("err = %v, want ErrNotIrreducible", err)
	}
	acyclic := NewMatrix(2)
	acyclic.Set(1, 0, FromInt(1))
	if _, _, err := acyclic.Eigenvector(); !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("acyclic err = %v, want ErrNotIrreducible", err)
	}
}

// Property: on random irreducible matrices, the eigenvector always
// verifies — max-plus spectral theory's existence theorem, computed.
func TestQuickEigenvectorVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(5)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			a.Set((i+1)%n, i, FromInt(rng.Int63n(20)-5)) // Hamiltonian ring
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					a.Set(i, j, FromInt(rng.Int63n(20)-5))
				}
			}
		}
		v, scale, err := a.Eigenvector()
		if err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, a)
		}
		lam, _, err := a.Eigenvalue()
		if err != nil {
			t.Fatal(err)
		}
		if !a.CheckEigenvector(v, scale, lam) {
			t.Errorf("trial %d: eigenvector check failed: v=%v scale=%d λ=%v\n%v",
				trial, v, scale, lam, a)
		}
	}
}

func TestCheckEigenvectorRejectsBadInput(t *testing.T) {
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(3))
	a.Set(0, 1, FromInt(5))
	lam, _, err := a.Eigenvalue()
	if err != nil {
		t.Fatal(err)
	}
	if a.CheckEigenvector(Vec{0}, 1, lam) {
		t.Error("wrong-length vector accepted")
	}
	if a.CheckEigenvector(Vec{0, NegInf}, 1, lam) {
		t.Error("vector with -inf accepted")
	}
	if a.CheckEigenvector(Vec{0, 0}, 7, lam) {
		t.Error("wrong scale accepted")
	}
	if a.CheckEigenvector(Vec{0, 7}, 1, lam) {
		t.Error("non-eigenvector accepted")
	}
}
