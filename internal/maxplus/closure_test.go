package maxplus

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPowerMatchesRepeatedMul(t *testing.T) {
	a := NewMatrix(3)
	a.Set(0, 1, FromInt(2))
	a.Set(1, 2, FromInt(-1))
	a.Set(2, 0, FromInt(4))
	a.Set(1, 1, FromInt(1))
	expect := a.Clone()
	for k := 1; k <= 6; k++ {
		got := a.Power(k)
		if !got.Equal(expect) {
			t.Errorf("Power(%d) differs from repeated Mul:\n%v\nvs\n%v", k, got, expect)
		}
		expect = expect.Mul(a)
	}
}

func TestPowerOne(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 1, FromInt(3))
	if !a.Power(1).Equal(a) {
		t.Error("Power(1) != A")
	}
}

func TestPowerPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Power(0) did not panic")
		}
	}()
	NewMatrix(1).Power(0)
}

func TestStarAcyclic(t *testing.T) {
	// 0 -> 1 (5), 1 -> 2 (3): longest paths 0->2 = 8; diagonal 0.
	a := NewMatrix(3)
	a.Set(1, 0, FromInt(5))
	a.Set(2, 1, FromInt(3))
	s, err := a.Star()
	if err != nil {
		t.Fatal(err)
	}
	if s.At(2, 0) != FromInt(8) {
		t.Errorf("star[2][0] = %v, want 8", s.At(2, 0))
	}
	for i := 0; i < 3; i++ {
		if s.At(i, i) != 0 {
			t.Errorf("star diagonal [%d] = %v, want 0", i, s.At(i, i))
		}
	}
	if s.At(0, 2) != NegInf {
		t.Errorf("star[0][2] = %v, want -inf", s.At(0, 2))
	}
}

func TestStarDivergent(t *testing.T) {
	a := NewMatrix(1)
	a.Set(0, 0, FromInt(1))
	if _, err := a.Star(); !errors.Is(err, ErrDivergentStar) {
		t.Errorf("err = %v, want ErrDivergentStar", err)
	}
}

func TestStarZeroCycleConverges(t *testing.T) {
	// Cycle of total weight 0 is fine.
	a := NewMatrix(2)
	a.Set(1, 0, FromInt(3))
	a.Set(0, 1, FromInt(-3))
	s, err := a.Star()
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 0) != FromInt(3) || s.At(0, 1) != FromInt(-3) {
		t.Errorf("star = \n%v", s)
	}
}

func TestNormaliseByEigenvalueStarExists(t *testing.T) {
	// After subtracting the eigenvalue, every cycle has weight <= 0 and
	// the star converges — max-plus spectral theory's A_λ.
	a := NewMatrix(3)
	a.Set(1, 0, FromInt(1))
	a.Set(2, 1, FromInt(2))
	a.Set(0, 2, FromInt(4))
	a.Set(0, 0, FromInt(2))
	lam, ok, err := a.Eigenvalue()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !lam.IsInt() {
		t.Skipf("non-integer eigenvalue %v; NormaliseBy needs integers", lam)
	}
	norm := a.NormaliseBy(FromInt(lam.Num()))
	if _, err := norm.Star(); err != nil {
		t.Errorf("star of normalised matrix diverged: %v", err)
	}
}

// Property: Star satisfies the fixpoint law A* = I ⊕ A⊗A* for random
// matrices without positive cycles (entries <= 0 guarantee that).
func TestQuickStarFixpoint(t *testing.T) {
	f := func(entries [9]uint8, mask uint16) bool {
		a := NewMatrix(3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				bit := uint(i*3 + j)
				if mask&(1<<bit) != 0 {
					a.Set(i, j, FromInt(-int64(entries[i*3+j]%16)))
				}
			}
		}
		s, err := a.Star()
		if err != nil {
			return false
		}
		// I ⊕ A⊗A*
		rhs := a.Mul(s)
		for i := 0; i < 3; i++ {
			if rhs.At(i, i) < 0 {
				rhs.Set(i, i, 0)
			}
		}
		return rhs.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPowerAdvancesIterations(t *testing.T) {
	// x(k) = A^k ⊗ x(0) must equal k successive Applies.
	a := NewMatrix(2)
	a.Set(0, 1, FromInt(5))
	a.Set(1, 0, FromInt(3))
	x := Vec{FromInt(0), FromInt(0)}
	direct := x.Clone()
	for k := 1; k <= 5; k++ {
		direct = a.Apply(direct)
		viaPower := a.Power(k).Apply(x)
		if !viaPower.Equal(direct) {
			t.Errorf("k=%d: power route %v, direct %v", k, viaPower, direct)
		}
	}
}
