package maxplus

import (
	"fmt"
	"strings"
)

// Matrix is a dense square max-plus matrix. Apply follows the usual
// max-plus convention: (A⊗x)[i] = max_j (A[i][j] + x[j]), i.e. row i lists
// the dependencies of output component i on the input components.
//
// The DAC'09 paper writes the transposed form t'_k = max_j (g_{j,k} + t_j);
// the conversion code in internal/core stores g_{j,k} at At(k, j).
type Matrix struct {
	n    int
	rows []Vec
}

// NewMatrix returns an n×n matrix with all entries −∞.
func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n, rows: make([]Vec, n)}
	for i := range m.rows {
		m.rows[i] = NewVec(n)
	}
	return m
}

// Identity returns the n×n max-plus identity: 0 on the diagonal, −∞
// elsewhere.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.rows[i][i] = 0
	}
	return m
}

// Size returns the dimension n of the matrix.
func (m *Matrix) Size() int { return m.n }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) T { return m.rows[i][j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v T) { m.rows[i][j] = v }

// Row returns row i as a vector; the caller must not modify it.
func (m *Matrix) Row(i int) Vec { return m.rows[i] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, rows: make([]Vec, m.n)}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	return c
}

// Equal reports whether m and o have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.rows {
		if !m.rows[i].Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// Apply returns A⊗x.
func (m *Matrix) Apply(x Vec) Vec {
	if len(x) != m.n {
		panic(fmt.Sprintf("maxplus: Apply: matrix %d×%d, vector length %d", m.n, m.n, len(x)))
	}
	y := NewVec(m.n)
	for i := 0; i < m.n; i++ {
		row := m.rows[i]
		best := NegInf
		for j := 0; j < m.n; j++ {
			if row[j] == NegInf || x[j] == NegInf {
				continue
			}
			if s := T(int64(row[j]) + int64(x[j])); s > best {
				best = s
			}
		}
		y[i] = best
	}
	return y
}

// Mul returns the max-plus product A⊗B.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.n != o.n {
		panic(fmt.Sprintf("maxplus: Mul: dimensions %d and %d", m.n, o.n))
	}
	p := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			best := NegInf
			for k := 0; k < m.n; k++ {
				a := m.rows[i][k]
				b := o.rows[k][j]
				if a == NegInf || b == NegInf {
					continue
				}
				if s := T(int64(a) + int64(b)); s > best {
					best = s
				}
			}
			p.rows[i][j] = best
		}
	}
	return p
}

// Permute returns the matrix conjugated by the permutation perm, where
// perm[i] is the new index of old index i: Permute(P)[perm[i]][perm[j]] =
// m[i][j]. It relabels the coordinate system of both the domain and the
// codomain at once, so Apply in the new coordinates agrees with Apply in
// the old ones. perm must be a permutation of 0..n-1; Permute panics
// otherwise.
func (m *Matrix) Permute(perm []int) *Matrix {
	if len(perm) != m.n {
		panic(fmt.Sprintf("maxplus: Permute: matrix %d×%d, permutation length %d", m.n, m.n, len(perm)))
	}
	seen := make([]bool, m.n)
	for _, p := range perm {
		if p < 0 || p >= m.n || seen[p] {
			panic(fmt.Sprintf("maxplus: Permute: not a permutation of 0..%d", m.n-1))
		}
		seen[p] = true
	}
	out := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			out.rows[perm[i]][perm[j]] = m.rows[i][j]
		}
	}
	return out
}

// FiniteCount returns the number of finite entries of m; this is the number
// of matrix actors in the paper's Figure-4 HSDF construction.
func (m *Matrix) FiniteCount() int {
	c := 0
	for _, r := range m.rows {
		c += r.FiniteCount()
	}
	return c
}

// String renders the matrix row by row.
func (m *Matrix) String() string {
	var b strings.Builder
	for _, r := range m.rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
