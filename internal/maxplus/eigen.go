package maxplus

import (
	"context"

	"repro/internal/guard"
	"repro/internal/rat"
)

// Eigenvalue returns the max-plus eigenvalue of m: the maximum cycle mean
// of the precedence graph that has an edge j→i of weight m[i][j] for every
// finite entry. For an SDF iteration matrix, the eigenvalue is the
// asymptotic iteration period of self-timed execution, so throughput is
// its reciprocal.
//
// hasCycle is false when the precedence graph is acyclic; in that case
// there is no recurrent behaviour (the model's throughput is unbounded)
// and the returned value is meaningless.
func (m *Matrix) Eigenvalue() (lambda rat.Rat, hasCycle bool, err error) {
	return m.EigenvalueCtx(guard.WithBudget(context.Background(), guard.Unlimited()))
}

// EigenvalueCtx is Eigenvalue under the resilience runtime: Karp's
// O(n·m) dynamic program charges the state budget carried by ctx and
// checkpoints the context between rounds, so adversarially dense
// matrices respect deadlines and budgets instead of grinding.
func (m *Matrix) EigenvalueCtx(ctx context.Context) (lambda rat.Rat, hasCycle bool, err error) {
	meter := guard.NewMeter(ctx, "matrix")
	meter.Phase("eigenvalue")
	g := newPrecGraph(m)
	return g.maxCycleMean(meter)
}

// precGraph is the precedence graph of a max-plus matrix: node j has an
// edge to node i of weight m[i][j] when the entry is finite.
type precGraph struct {
	n   int
	adj [][]precEdge // adj[from] = outgoing edges
}

type precEdge struct {
	to int
	w  int64
}

func newPrecGraph(m *Matrix) *precGraph {
	g := &precGraph{n: m.n, adj: make([][]precEdge, m.n)}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if w := m.rows[i][j]; w != NegInf {
				g.adj[j] = append(g.adj[j], precEdge{to: i, w: int64(w)})
			}
		}
	}
	return g
}

// maxCycleMean computes the maximum over all cycles of (total weight /
// cycle length) via Karp's algorithm applied per strongly connected
// component.
func (g *precGraph) maxCycleMean(meter *guard.Meter) (rat.Rat, bool, error) {
	comps := g.sccs()
	best := rat.Zero()
	found := false
	for _, comp := range comps {
		if len(comp) == 1 {
			// A singleton SCC only has a cycle if it has a self-loop.
			v := comp[0]
			hasSelf := false
			var selfW int64
			for _, e := range g.adj[v] {
				if e.to == v {
					if !hasSelf || e.w > selfW {
						selfW = e.w
					}
					hasSelf = true
				}
			}
			if !hasSelf {
				continue
			}
			mean := rat.FromInt(selfW)
			if !found || mean.Cmp(best) > 0 {
				best = mean
			}
			found = true
			continue
		}
		mean, err := g.karp(comp, meter)
		if err != nil {
			return rat.Rat{}, false, err
		}
		if !found || mean.Cmp(best) > 0 {
			best = mean
		}
		found = true
	}
	return best, found, nil
}

// karp runs Karp's maximum mean cycle algorithm restricted to the strongly
// connected component comp (len(comp) >= 2, or 1 with a self-loop).
func (g *precGraph) karp(comp []int, meter *guard.Meter) (rat.Rat, error) {
	n := len(comp)
	local := make(map[int]int, n) // global node -> local index
	for i, v := range comp {
		local[v] = i
	}
	// edges within the component, in local indices
	type edge struct {
		from, to int
		w        int64
	}
	var edges []edge
	for _, v := range comp {
		lv := local[v]
		for _, e := range g.adj[v] {
			if lu, ok := local[e.to]; ok {
				edges = append(edges, edge{from: lv, to: lu, w: e.w})
			}
		}
	}

	const negInf = int64(-1) << 62
	// D[k][v] = max weight over edge-paths of exactly k edges from the
	// (arbitrary) source node 0 to v. Since the component is strongly
	// connected, every node is reachable.
	D := make([][]int64, n+1)
	for k := range D {
		D[k] = make([]int64, n)
		for v := range D[k] {
			D[k][v] = negInf
		}
	}
	D[0][0] = 0
	for k := 1; k <= n; k++ {
		// One Karp round relaxes every edge of the component: charge it
		// as explored states and let the deadline interrupt between
		// rounds.
		if err := meter.States(int64(len(edges))); err != nil {
			return rat.Rat{}, err
		}
		prev, cur := D[k-1], D[k]
		for _, e := range edges {
			if prev[e.from] == negInf {
				continue
			}
			if w := prev[e.from] + e.w; w > cur[e.to] {
				cur[e.to] = w
			}
		}
	}

	// lambda = max_v min_{0<=k<n, D[k][v] finite} (D[n][v]-D[k][v])/(n-k)
	var best rat.Rat
	haveBest := false
	for v := 0; v < n; v++ {
		if D[n][v] == negInf {
			continue
		}
		var worst rat.Rat
		haveWorst := false
		for k := 0; k < n; k++ {
			if D[k][v] == negInf {
				continue
			}
			mean, err := rat.New(D[n][v]-D[k][v], int64(n-k))
			if err != nil {
				return rat.Rat{}, err
			}
			if !haveWorst || mean.Cmp(worst) < 0 {
				worst = mean
				haveWorst = true
			}
		}
		if haveWorst && (!haveBest || worst.Cmp(best) > 0) {
			best = worst
			haveBest = true
		}
	}
	if !haveBest {
		// Cannot happen for a strongly connected component with >= 1 edge,
		// but fail loudly rather than return a silent zero.
		return rat.Rat{}, errNoPath
	}
	return best, nil
}

var errNoPath = errInternal("karp: no finite walk of length n found in SCC")

type errInternal string

func (e errInternal) Error() string { return "maxplus: " + string(e) }

// sccs returns the strongly connected components of g (Tarjan, iterative to
// avoid deep recursion on large precedence graphs).
func (g *precGraph) sccs() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		next   int
		frames []tarjanFrame
	)
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], tarjanFrame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.edge < len(g.adj[v]) {
				w := g.adj[v][f.edge].to
				f.edge++
				if index[w] == unvisited {
					frames = append(frames, tarjanFrame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v done
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

type tarjanFrame struct {
	v    int
	edge int
}
