package maxplus

import "testing"

func TestMatrixPermute(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, FromInt(5))
	m.Set(1, 2, FromInt(7))
	m.Set(2, 2, FromInt(1))

	perm := []int{2, 0, 1} // old 0 -> new 2, old 1 -> new 0, old 2 -> new 1
	p := m.Permute(perm)
	if got := p.At(2, 0); got != FromInt(5) {
		t.Fatalf("entry (0,1) landed at (2,0)=%v, want 5", got)
	}
	if got := p.At(0, 1); got != FromInt(7) {
		t.Fatalf("entry (1,2) landed at (0,1)=%v, want 7", got)
	}
	if got := p.At(1, 1); got != FromInt(1) {
		t.Fatalf("diagonal entry (2,2) landed at (1,1)=%v, want 1", got)
	}

	// Conjugation preserves Apply: permuting matrix and vector together
	// must permute the result.
	x := Vec{FromInt(0), FromInt(10), FromInt(20)}
	px := NewVec(3)
	for i := range x {
		px[perm[i]] = x[i]
	}
	y := m.Apply(x)
	py := p.Apply(px)
	for i := range y {
		if py[perm[i]] != y[i] {
			t.Fatalf("Apply after Permute disagrees at %d: %v vs %v", i, py[perm[i]], y[i])
		}
	}

	// Identity permutation is a no-op.
	if !m.Permute([]int{0, 1, 2}).Equal(m) {
		t.Fatalf("identity permutation changed the matrix")
	}

	for _, bad := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Permute(%v) did not panic", bad)
				}
			}()
			m.Permute(bad)
		}()
	}
}
