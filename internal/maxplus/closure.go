package maxplus

import "errors"

// ErrDivergentStar is returned by Star when the matrix has a cycle of
// positive weight, so the Kleene star diverges.
var ErrDivergentStar = errors.New("maxplus: star diverges (positive-weight cycle)")

// Power returns A⊗A⊗…⊗A (k factors) by repeated squaring. k must be at
// least 1. For an SDF iteration matrix, Power(k)⊗x advances the token
// time stamps by k iterations at once.
func (m *Matrix) Power(k int) *Matrix {
	if k < 1 {
		panic("maxplus: Power needs k >= 1")
	}
	result := Identity(m.n)
	base := m.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// Star returns the Kleene star A* = I ⊕ A ⊕ A² ⊕ …, the longest-path
// distances of the precedence graph, computed Floyd–Warshall style. It
// exists exactly when every cycle has non-positive weight; otherwise
// ErrDivergentStar is returned. A* solves x = A⊗x ⊕ b as x = A*⊗b, the
// standard tool for latency systems with non-positive normalised
// matrices (A with the eigenvalue subtracted from every finite entry).
func (m *Matrix) Star() (*Matrix, error) {
	n := m.n
	d := m.Clone()
	// Longest paths: d[i][j] = best over intermediate nodes.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := d.rows[i][k]
			if ik == NegInf {
				continue
			}
			row := d.rows[i]
			krow := d.rows[k]
			for j := 0; j < n; j++ {
				if krow[j] == NegInf {
					continue
				}
				if s := T(int64(ik) + int64(krow[j])); s > row[j] {
					row[j] = s
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.rows[i][i] > 0 {
			return nil, ErrDivergentStar
		}
		// Include the identity: zero-length paths.
		if d.rows[i][i] < 0 {
			d.rows[i][i] = 0
		}
	}
	return d, nil
}

// NormaliseBy returns the matrix with c subtracted from every finite
// entry — A_λ in max-plus spectral theory, whose cycles all have
// non-positive weight when c is the eigenvalue.
func (m *Matrix) NormaliseBy(c T) *Matrix {
	if c == NegInf {
		panic("maxplus: NormaliseBy(-inf)")
	}
	out := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if v := m.rows[i][j]; v != NegInf {
				out.rows[i][j] = T(int64(v) - int64(c))
			}
		}
	}
	return out
}
