package maxplus

import (
	"fmt"
	"strings"
)

// Vec is a dense max-plus vector. In the symbolic execution of an SDF
// iteration, a Vec of length N expresses a token's production time as
// t = max_j (t_j + v[j]) over the N initial tokens t_j; entries equal to
// −∞ mean "no dependency on that token".
type Vec []T

// NewVec returns a vector of length n with every entry −∞ (the max-plus
// zero vector).
func NewVec(n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = NegInf
	}
	return v
}

// UnitVec returns the i-th max-plus unit vector of length n: 0 at index i
// and −∞ elsewhere. It is the symbolic time stamp of the i-th initial
// token at the start of an iteration.
func UnitVec(n, i int) Vec {
	v := NewVec(n)
	v[i] = 0
	return v
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Max returns the entrywise maximum of v and u. The vectors must have the
// same length.
func (v Vec) Max(u Vec) Vec {
	if len(v) != len(u) {
		panic(fmt.Sprintf("maxplus: Max of vectors with lengths %d and %d", len(v), len(u)))
	}
	w := make(Vec, len(v))
	for i := range v {
		w[i] = v[i].Max(u[i])
	}
	return w
}

// MaxInto sets v to the entrywise maximum of v and u, avoiding an
// allocation. The vectors must have the same length.
func (v Vec) MaxInto(u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("maxplus: MaxInto of vectors with lengths %d and %d", len(v), len(u)))
	}
	for i := range v {
		if u[i] > v[i] {
			v[i] = u[i]
		}
	}
}

// AddScalar returns v with c added to every finite entry (max-plus scalar
// multiplication).
func (v Vec) AddScalar(c T) Vec {
	w := make(Vec, len(v))
	for i := range v {
		w[i] = v[i].Add(c)
	}
	return w
}

// AddScalarInPlace adds c to every finite entry of v.
func (v Vec) AddScalarInPlace(c T) {
	for i := range v {
		v[i] = v[i].Add(c)
	}
}

// MaxEntry returns the largest entry of v (−∞ for an empty or all-−∞
// vector).
func (v Vec) MaxEntry() T {
	m := NegInf
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// FiniteCount returns the number of finite entries of v.
func (v Vec) FiniteCount() int {
	n := 0
	for _, x := range v {
		if x != NegInf {
			n++
		}
	}
	return n
}

// Equal reports whether v and u are identical.
func (v Vec) Equal(u Vec) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// Normalise returns v shifted so that its maximum finite entry is 0,
// together with the shift that was subtracted. An all-−∞ vector is
// returned unchanged with shift −∞. Normalised vectors are the state
// fingerprints used for periodicity detection in power iteration.
func (v Vec) Normalise() (Vec, T) {
	m := v.MaxEntry()
	if m == NegInf {
		return v.Clone(), NegInf
	}
	w := make(Vec, len(v))
	for i := range v {
		if v[i] == NegInf {
			w[i] = NegInf
		} else {
			w[i] = T(int64(v[i]) - int64(m))
		}
	}
	return w, m
}

// String renders v as "[a b c]" with "-inf" entries.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(x.String())
	}
	b.WriteByte(']')
	return b.String()
}

// key returns a map key uniquely identifying v's contents.
func (v Vec) key() string {
	var b strings.Builder
	for _, x := range v {
		fmt.Fprintf(&b, "%d,", int64(x))
	}
	return b.String()
}
