package gen

import (
	"math/rand"
	"testing"

	"repro/internal/schedule"
)

func TestFigure1Structure(t *testing.T) {
	g, err := Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumActors() != 10 { // 6 A's + 4 B's
		t.Errorf("actors = %d, want 10", g.NumActors())
	}
	// Homogeneous, one initial token (on A6 -> A1).
	if !g.IsHSDF() {
		t.Error("figure 1 graph not homogeneous")
	}
	if g.TotalInitialTokens() != 1 {
		t.Errorf("tokens = %d, want 1", g.TotalInitialTokens())
	}
	// Execution times of §4.1.
	for name, want := range map[string]int64{
		"A1": 2, "A2": 2, "A3": 5, "A4": 5, "A5": 3, "A6": 3,
		"B1": 4, "B2": 4, "B3": 4, "B4": 4,
	} {
		id, ok := g.ActorByName(name)
		if !ok {
			t.Fatalf("missing actor %s", name)
		}
		if g.Actor(id).Exec != want {
			t.Errorf("T(%s) = %d, want %d", name, g.Actor(id).Exec, want)
		}
	}
	if !schedule.IsLive(g) {
		t.Error("figure 1 graph deadlocks")
	}
	if _, err := Figure1(5); err == nil {
		t.Error("Figure1(5) accepted")
	}
}

func TestFigure1Larger(t *testing.T) {
	g, err := Figure1(12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumActors() != 22 {
		t.Errorf("actors = %d, want 22", g.NumActors())
	}
	if !schedule.IsLive(g) {
		t.Error("figure 1 (n=12) deadlocks")
	}
}

func TestFigure2Live(t *testing.T) {
	g := Figure2()
	if !g.IsHSDF() {
		t.Error("figure 2 graph not homogeneous")
	}
	if !schedule.IsLive(g) {
		t.Error("figure 2 graph deadlocks")
	}
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %d, want 1", i, v)
		}
	}
}

func TestFigure3Iteration(t *testing.T) {
	g := Figure3(2)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	l, _ := g.ActorByName("L")
	r, _ := g.ActorByName("R")
	if q[l] != 2 || q[r] != 1 {
		t.Errorf("q = %v, want L:2 R:1", q)
	}
	if g.TotalInitialTokens() != 4 {
		t.Errorf("tokens = %d, want 4", g.TotalInitialTokens())
	}
	if !schedule.IsLive(g) {
		t.Error("figure 3 graph deadlocks")
	}
}

func TestPrefetchStructure(t *testing.T) {
	g, err := Prefetch(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumActors() != 40 { // 5 stages × 8 blocks
		t.Errorf("actors = %d, want 40", g.NumActors())
	}
	if !schedule.IsLive(g) {
		t.Error("prefetch graph deadlocks")
	}
	if _, err := Prefetch(1, 1); err == nil {
		t.Error("Prefetch(1,1) accepted")
	}
	if _, err := Prefetch(8, 8); err == nil {
		t.Error("window >= blocks accepted")
	}
	if _, err := Prefetch(8, 0); err == nil {
		t.Error("window 0 accepted")
	}
}

func TestRandomGraphAlwaysConsistentAndLive(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 100; trial++ {
		g, err := RandomGraph(rng, RandomOptions{
			Actors:   1 + rng.Intn(10),
			MaxRep:   1 + int64(rng.Intn(6)),
			MaxExec:  int64(rng.Intn(50)),
			Chords:   rng.Intn(8),
			SelfLoop: trial%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := g.RepetitionVector(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		if !schedule.IsLive(g) {
			t.Fatalf("trial %d: deadlock\n%s", trial, g)
		}
		if !g.IsConnected() {
			t.Fatalf("trial %d: disconnected\n%s", trial, g)
		}
	}
}

func TestRandomGraphErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomGraph(rng, RandomOptions{Actors: 0}); err == nil {
		t.Error("RandomGraph with 0 actors accepted")
	}
}

func TestRandomGraphSingleActor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomGraph(rng, RandomOptions{Actors: 1, SelfLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumActors() != 1 || !schedule.IsLive(g) {
		t.Errorf("single-actor graph broken:\n%s", g)
	}
}

func TestRandomRegularValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		g, err := RandomRegular(rng, RegularOptions{
			Groups: 1 + rng.Intn(4), Copies: 2 + rng.Intn(5), Links: rng.Intn(6), MaxExec: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !g.IsHSDF() {
			t.Fatalf("trial %d: not homogeneous", trial)
		}
		if !schedule.IsLive(g) {
			t.Fatalf("trial %d: deadlock\n%s", trial, g)
		}
	}
	if _, err := RandomRegular(rng, RegularOptions{Groups: 0, Copies: 2}); err == nil {
		t.Error("0 groups accepted")
	}
	if _, err := RandomRegular(rng, RegularOptions{Groups: 1, Copies: 1}); err == nil {
		t.Error("1 copy accepted")
	}
}

func TestRandomRegularMultirateValid(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 30; trial++ {
		g, err := RandomRegularMultirate(rng, RegularOptions{
			Groups: 1 + rng.Intn(3), Copies: 2 + rng.Intn(4), Links: rng.Intn(5), MaxExec: 7,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.RepetitionVector(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		if !schedule.IsLive(g) {
			t.Fatalf("trial %d: deadlock\n%s", trial, g)
		}
	}
	if _, err := RandomRegularMultirate(rng, RegularOptions{Groups: 0, Copies: 2}, 2); err == nil {
		t.Error("0 groups accepted")
	}
}

func TestPrefetchWindowVariants(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5} {
		g, err := Prefetch(12, w)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if !schedule.IsLive(g) {
			t.Errorf("window %d: deadlock", w)
		}
	}
}

func TestExponentialChain(t *testing.T) {
	g, err := ExponentialChain(5)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := g.IterationLength()
	if err != nil {
		t.Fatal(err)
	}
	if sum != 63 { // 2^6 - 1
		t.Errorf("iteration length = %d, want 63", sum)
	}
	if !schedule.IsLive(g) {
		t.Error("chain deadlocks")
	}
	if _, err := ExponentialChain(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExponentialChain(99); err == nil {
		t.Error("k=99 accepted")
	}
}
