// Package gen constructs the example graphs of the DAC'09 paper (Figures
// 1, 2, 3 and 5) and random consistent live SDF graphs for property
// testing.
//
// The figures are reconstructed from the paper's prose; every numeric
// claim the text makes about them (iteration counts, symbolic time
// stamps, the 23-time-unit makespan, the 1/5 abstract throughput, the
// exact-throughput prefetch abstraction) is reproduced and asserted in
// the test suite.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/sdf"
)

// Figure1 builds the regular prefetch-style graph of Figure 1(a),
// generalised to n ≥ 6 copies of the A actor and n−2 copies of the B
// actor:
//
//   - a ring A1 → A2 → … → An → A1 with one initial token on the closing
//     channel,
//   - a chain B1 → B2 → … → B(n−2),
//   - request channels Ai → Bi, and
//   - prefetch-return channels Bi → A(i+2).
//
// Execution times follow §4.1: A1, A2 take 2, the last two Ai take 3,
// every Ai in between takes 5 and every Bi takes 4. For n = 6 this is
// exactly the paper's instance (A3, A4 at 5 and A5, A6 at 3): one
// execution takes 23 time units and the self-timed throughput is 1/23 per
// actor. For general n the critical cycle
// A1→B1→A3→…→A(n−2)→B(n−2)→An→A1 weighs 5n−7, reproducing the paper's
// claim that the throughput is 1/(5n−7) while the abstraction of
// Figure 1(b) bounds it by 1/(5n), so the relative error vanishes as n
// grows.
func Figure1(n int) (*sdf.Graph, error) {
	if n < 6 {
		return nil, fmt.Errorf("gen: Figure1 needs n >= 6, got %d", n)
	}
	g := sdf.NewGraph(fmt.Sprintf("figure1_n%d", n))
	as := make([]sdf.ActorID, n)
	for i := 0; i < n; i++ {
		exec := int64(5)
		switch {
		case i < 2:
			exec = 2
		case i >= n-2:
			exec = 3
		}
		as[i] = g.MustAddActor(fmt.Sprintf("A%d", i+1), exec)
	}
	bs := make([]sdf.ActorID, n-2)
	for i := range bs {
		bs[i] = g.MustAddActor(fmt.Sprintf("B%d", i+1), 4)
	}
	for i := 0; i < n-1; i++ {
		g.MustAddChannel(as[i], as[i+1], 1, 1, 0)
	}
	g.MustAddChannel(as[n-1], as[0], 1, 1, 1)
	for i := 0; i < len(bs)-1; i++ {
		g.MustAddChannel(bs[i], bs[i+1], 1, 1, 0)
	}
	for i := range bs {
		g.MustAddChannel(as[i], bs[i], 1, 1, 0)
		g.MustAddChannel(bs[i], as[i+2], 1, 1, 0)
	}
	return g, nil
}

// Figure2 builds the worked example of Figure 2(a): a homogeneous graph
// whose actors A1, A2, A3 (each guarded by a one-token self-loop, the
// source of the redundant three-token self-channel in the abstract graph
// the paper points out) and B1, B2 are grouped into abstract actors A and
// B with indices equal to their numeric suffixes.
func Figure2() *sdf.Graph {
	g := sdf.NewGraph("figure2")
	a1 := g.MustAddActor("A1", 2)
	a2 := g.MustAddActor("A2", 3)
	a3 := g.MustAddActor("A3", 1)
	b1 := g.MustAddActor("B1", 2)
	b2 := g.MustAddActor("B2", 4)
	for _, a := range []sdf.ActorID{a1, a2, a3} {
		g.MustAddChannel(a, a, 1, 1, 1)
	}
	g.MustAddChannel(a1, a2, 1, 1, 0)
	g.MustAddChannel(a2, a3, 1, 1, 0)
	g.MustAddChannel(a3, a1, 1, 1, 1)
	g.MustAddChannel(a1, b1, 1, 1, 0)
	g.MustAddChannel(a2, b2, 1, 1, 0)
	g.MustAddChannel(b1, b2, 1, 1, 0)
	g.MustAddChannel(b2, a1, 1, 1, 1)
	return g
}

// Figure3 builds the symbolic-execution example of Figure 3: a two-actor
// multirate graph with four initial tokens whose iteration comprises two
// firings of the left actor (execution time 3) and one of the right. The
// channel layout fixes the global token numbering used in the tests:
//
//	token 0: the left actor's self-loop token   (the text's t2)
//	token 1: head of the right→left channel     (t1)
//	token 2: second token of right→left         (t3)
//	token 3: the right actor's self-loop token  (t4)
func Figure3(rightExec int64) *sdf.Graph {
	g := sdf.NewGraph("figure3")
	l := g.MustAddActor("L", 3)
	r := g.MustAddActor("R", rightExec)
	g.MustAddChannel(l, l, 1, 1, 1)
	g.MustAddChannel(r, l, 2, 1, 2)
	g.MustAddChannel(l, r, 1, 2, 0)
	g.MustAddChannel(r, r, 1, 1, 1)
	return g
}

// Prefetch builds the remote-memory-access model of Figure 5: five
// pipeline stages (request, network-in communication assist, memory,
// network-out communication assist, compute), each with blocks copies
// chained into a ring, stage-to-stage channels per block, and a prefetch
// window of window blocks from compute back to request. The paper's frame
// has 1584 block computations.
//
// With window = 3 the abstraction of each stage into one actor has
// exactly the throughput of the original graph — the property §7 reports
// for this model.
func Prefetch(blocks, window int) (*sdf.Graph, error) {
	if blocks < 2 {
		return nil, fmt.Errorf("gen: Prefetch needs >= 2 blocks, got %d", blocks)
	}
	if window < 1 || window >= blocks {
		return nil, fmt.Errorf("gen: Prefetch window %d out of range [1, %d)", window, blocks)
	}
	stages := []struct {
		name string
		exec int64
	}{
		{"REQ", 1},
		{"CAI", 2},
		{"MEM", 4},
		{"CAO", 2},
		{"CMP", 3},
	}
	g := sdf.NewGraph(fmt.Sprintf("prefetch_b%d_w%d", blocks, window))
	ids := make([][]sdf.ActorID, len(stages))
	for s, st := range stages {
		ids[s] = make([]sdf.ActorID, blocks)
		for i := 0; i < blocks; i++ {
			ids[s][i] = g.MustAddActor(fmt.Sprintf("%s%d", st.name, i+1), st.exec)
		}
	}
	for s := range stages {
		for i := 0; i < blocks-1; i++ {
			g.MustAddChannel(ids[s][i], ids[s][i+1], 1, 1, 0)
		}
		g.MustAddChannel(ids[s][blocks-1], ids[s][0], 1, 1, 1)
	}
	for i := 0; i < blocks; i++ {
		for s := 0; s+1 < len(stages); s++ {
			g.MustAddChannel(ids[s][i], ids[s+1][i], 1, 1, 0)
		}
	}
	last := len(stages) - 1
	for i := 0; i < blocks; i++ {
		j := i + window
		d := 0
		if j >= blocks {
			j -= blocks
			d = 1
		}
		g.MustAddChannel(ids[last][i], ids[0][j], 1, 1, d)
	}
	return g, nil
}

// RandomOptions parameterises RandomGraph.
type RandomOptions struct {
	Actors   int   // number of actors (>= 1)
	MaxRep   int64 // repetition-vector entries drawn from [1, MaxRep]
	MaxExec  int64 // execution times drawn from [0, MaxExec]
	Chords   int   // extra forward channels beyond the spanning chain
	SelfLoop bool  // guard every actor with a one-token self-loop
}

// RandomGraph generates a random consistent, live, connected SDF graph:
// a chain plus random forward chords (a DAG, live by construction) closed
// by a feedback channel carrying one full iteration's worth of tokens.
// Rates are derived from a randomly drawn repetition vector, so the graph
// is consistent by construction.
func RandomGraph(rng *rand.Rand, opts RandomOptions) (*sdf.Graph, error) {
	if opts.Actors < 1 {
		return nil, fmt.Errorf("gen: RandomGraph needs >= 1 actor")
	}
	if opts.MaxRep < 1 {
		opts.MaxRep = 1
	}
	n := opts.Actors
	g := sdf.NewGraph("random")
	q := make([]int64, n)
	ids := make([]sdf.ActorID, n)
	for i := 0; i < n; i++ {
		q[i] = 1 + rng.Int63n(opts.MaxRep)
		exec := int64(0)
		if opts.MaxExec > 0 {
			exec = rng.Int63n(opts.MaxExec + 1)
		}
		ids[i] = g.MustAddActor(fmt.Sprintf("a%d", i), exec)
	}
	// rates(src, dst) solves q[src]·p == q[dst]·c minimally, scaled by a
	// small random factor. Exact duplicates of an existing channel are
	// skipped: Validate rejects them, and they add nothing to the graph's
	// dependency structure.
	have := make(map[sdf.Channel]bool)
	addBalanced := func(src, dst int, initial int) {
		gcd := gcd64(q[src], q[dst])
		f := 1 + rng.Int63n(2)
		p := q[dst] / gcd * f
		c := q[src] / gcd * f
		ch := sdf.Channel{Src: ids[src], Dst: ids[dst], Prod: int(p), Cons: int(c), Initial: initial}
		if have[ch] {
			return
		}
		have[ch] = true
		g.MustAddChannel(ids[src], ids[dst], int(p), int(c), initial)
	}
	for i := 0; i+1 < n; i++ {
		addBalanced(i, i+1, 0)
	}
	for k := 0; k < opts.Chords; k++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			continue
		}
		if src > dst {
			src, dst = dst, src
		}
		addBalanced(src, dst, 0)
	}
	if n > 1 {
		// Feedback carrying one full iteration's worth of the consumer's
		// demand keeps the graph live: the first actor never blocks on
		// the feedback within an iteration, and the rest is a DAG.
		gcd := gcd64(q[n-1], q[0])
		p := q[0] / gcd
		c := q[n-1] / gcd
		g.MustAddChannel(ids[n-1], ids[0], int(p), int(c), int(c*q[0]))
	}
	if opts.SelfLoop {
		for i := 0; i < n; i++ {
			g.MustAddChannel(ids[i], ids[i], 1, 1, 1)
		}
	}
	return g, nil
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// RegularOptions parameterises RandomRegular.
type RegularOptions struct {
	Groups  int // number of actor groups (>= 1)
	Copies  int // copies per group (>= 2)
	Links   int // random inter-group channel families
	MaxExec int64
}

// RandomRegular generates a random homogeneous *regular* graph of the
// kind §4's abstraction targets: Groups groups of Copies actors each
// ("G0_1" … "G0_n", "G1_1" …), every group chained into a ring with one
// initial token, plus Links random inter-group channel families
// src_i → dst_{i+shift} replicated for every index i (wrapping indices
// carry one token). By construction InferByName yields a valid
// abstraction with N = Copies, and the graph is live.
func RandomRegular(rng *rand.Rand, opts RegularOptions) (*sdf.Graph, error) {
	if opts.Groups < 1 || opts.Copies < 2 {
		return nil, fmt.Errorf("gen: RandomRegular needs >= 1 group and >= 2 copies")
	}
	if opts.MaxExec < 1 {
		opts.MaxExec = 10
	}
	g := sdf.NewGraph("regular")
	ids := make([][]sdf.ActorID, opts.Groups)
	for gi := range ids {
		ids[gi] = make([]sdf.ActorID, opts.Copies)
		for i := range ids[gi] {
			name := fmt.Sprintf("G%d_%d", gi, i+1)
			ids[gi][i] = g.MustAddActor(name, 1+rng.Int63n(opts.MaxExec))
		}
	}
	// add skips exact duplicates (a same-group shift-1 family would
	// retrace the ring, for example): Validate rejects them, and a
	// duplicate imposes no constraint the original does not.
	have := make(map[sdf.Channel]bool)
	add := func(src, dst sdf.ActorID, p, c, d int) {
		ch := sdf.Channel{Src: src, Dst: dst, Prod: p, Cons: c, Initial: d}
		if have[ch] {
			return
		}
		have[ch] = true
		g.MustAddChannel(src, dst, p, c, d)
	}
	for gi := range ids {
		for i := 0; i+1 < opts.Copies; i++ {
			add(ids[gi][i], ids[gi][i+1], 1, 1, 0)
		}
		add(ids[gi][opts.Copies-1], ids[gi][0], 1, 1, 1)
	}
	for l := 0; l < opts.Links; l++ {
		src := rng.Intn(opts.Groups)
		dst := rng.Intn(opts.Groups)
		shift := rng.Intn(opts.Copies)
		if shift == 0 {
			// Zero-shift, zero-delay families must go "downhill" in group
			// number to keep the zero-delay structure acyclic.
			if src == dst {
				continue
			}
			if src > dst {
				src, dst = dst, src
			}
		}
		for i := 0; i < opts.Copies; i++ {
			j := i + shift
			d := 0
			if j >= opts.Copies {
				j -= opts.Copies
				d = 1
			}
			add(ids[src][i], ids[dst][j], 1, 1, d)
		}
	}
	return g, nil
}

// RandomRegularMultirate generates a random regular *multirate* graph:
// like RandomRegular, but every group gi has its own repetition count
// drawn from [1, MaxRep], and inter-group channel families carry the
// balanced rates. Within each group all actors share the repetition
// count (the groups ride on 1:1 rings), so the graphs exercise the
// paper's remark that the abstraction extends to non-homogeneous graphs
// with equal-rate groups.
func RandomRegularMultirate(rng *rand.Rand, opts RegularOptions, maxRep int64) (*sdf.Graph, error) {
	if opts.Groups < 1 || opts.Copies < 2 {
		return nil, fmt.Errorf("gen: RandomRegularMultirate needs >= 1 group and >= 2 copies")
	}
	if opts.MaxExec < 1 {
		opts.MaxExec = 10
	}
	if maxRep < 1 {
		maxRep = 1
	}
	g := sdf.NewGraph("regular_multirate")
	rep := make([]int64, opts.Groups)
	ids := make([][]sdf.ActorID, opts.Groups)
	for gi := range ids {
		rep[gi] = 1 + rng.Int63n(maxRep)
		ids[gi] = make([]sdf.ActorID, opts.Copies)
		for i := range ids[gi] {
			name := fmt.Sprintf("G%d_%d", gi, i+1)
			ids[gi][i] = g.MustAddActor(name, 1+rng.Int63n(opts.MaxExec))
		}
	}
	// Exact duplicates are skipped, as in RandomRegular.
	have := make(map[sdf.Channel]bool)
	add := func(src, dst sdf.ActorID, p, c, d int) {
		ch := sdf.Channel{Src: src, Dst: dst, Prod: p, Cons: c, Initial: d}
		if have[ch] {
			return
		}
		have[ch] = true
		g.MustAddChannel(src, dst, p, c, d)
	}
	for gi := range ids {
		for i := 0; i+1 < opts.Copies; i++ {
			add(ids[gi][i], ids[gi][i+1], 1, 1, 0)
		}
		add(ids[gi][opts.Copies-1], ids[gi][0], 1, 1, 1)
	}
	for l := 0; l < opts.Links; l++ {
		src := rng.Intn(opts.Groups)
		dst := rng.Intn(opts.Groups)
		shift := rng.Intn(opts.Copies)
		// All inter-group links run uphill in group number: unlike the
		// homogeneous case, a multirate consumer needs several producer
		// firings per firing of its own, so even an index-increasing
		// zero-delay link back to an earlier group can create a
		// firing-level cyclic wait. Same-group links keep 1:1 rates and
		// are safe with any non-zero shift.
		if src == dst {
			if shift == 0 {
				continue
			}
		} else if src > dst {
			src, dst = dst, src
		}
		gg := gcd64(rep[src], rep[dst])
		p := int(rep[dst] / gg)
		c := int(rep[src] / gg)
		for i := 0; i < opts.Copies; i++ {
			j := i + shift
			// Zero-delay multirate consumers may need several producer
			// firings' worth of tokens; the ring pipelines keep every
			// producer able to fire, so a demand-driven schedule exists.
			d := 0
			if j >= opts.Copies {
				j -= opts.Copies
				// One wrap-around "iteration" worth of tokens so the
				// consumer's first round is not starved across the frame
				// boundary.
				d = c * int(rep[dst])
			}
			add(ids[src][i], ids[dst][j], p, c, d)
		}
	}
	return g, nil
}

// ExponentialChain builds the textbook witness of the §3 observation that
// the iteration length — and with it the traditional HSDF conversion —
// can grow exponentially in the graph size: a chain of k rate-doubling
// stages S0 -(2,1)-> S1 -(2,1)-> … -(2,1)-> Sk with per-actor self-loops.
// The repetition vector is [1, 2, 4, …, 2^k] (iteration length 2^(k+1)−1)
// while the novel conversion's size depends only on the k+1 self-loop
// tokens.
func ExponentialChain(k int) (*sdf.Graph, error) {
	if k < 1 || k > 40 {
		return nil, fmt.Errorf("gen: ExponentialChain needs 1 <= k <= 40, got %d", k)
	}
	g := sdf.NewGraph(fmt.Sprintf("expchain_k%d", k))
	prev := g.MustAddActor("S0", 1)
	g.MustAddChannel(prev, prev, 1, 1, 1)
	for i := 1; i <= k; i++ {
		cur := g.MustAddActor(fmt.Sprintf("S%d", i), 1)
		g.MustAddChannel(cur, cur, 1, 1, 1)
		g.MustAddChannel(prev, cur, 2, 1, 0)
		prev = cur
	}
	return g, nil
}
