// Package analysis provides throughput and latency analysis of timed SDF
// graphs through three independent engines that the test suite
// cross-validates against each other:
//
//  1. Matrix: symbolic max-plus iteration matrix + Karp eigenvalue
//     (the machinery behind the paper's Algorithm 1),
//  2. StateSpace: explicit execution of the iteration recursion until a
//     recurrent state, the method of Ghamarian et al. (ACSD'06) that the
//     paper identifies as the most efficient known,
//  3. HSDF: traditional conversion followed by maximum-cycle-mean
//     analysis, the classical pipeline the paper's conversion replaces.
//
// All engines agree exactly on consistent, live graphs; they differ only
// in cost, which the benchmark suite measures.
package analysis

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mcm"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/rat"
	"repro/internal/sdf"
	"repro/internal/transform"
)

// Method selects a throughput engine.
type Method int

const (
	// Matrix derives the iteration matrix symbolically and computes its
	// max-plus eigenvalue with Karp's algorithm.
	Matrix Method = iota
	// StateSpace iterates the matrix on concrete time stamps until the
	// normalised state recurs.
	StateSpace
	// HSDF converts traditionally and runs Howard's maximum cycle mean.
	HSDF
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Matrix:
		return "matrix"
	case StateSpace:
		return "statespace"
	case HSDF:
		return "hsdf"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Throughput is the result of a throughput analysis of a timed SDF graph
// under self-timed execution.
type Throughput struct {
	// Unbounded is true when no dependency cycle constrains the steady
	// state; the remaining fields are then meaningless.
	Unbounded bool
	// Period is the asymptotic duration Λ of one graph iteration.
	Period rat.Rat
	// Repetition is the repetition vector; actor a fires Repetition[a]
	// times per Period.
	Repetition []int64
}

// ActorThroughput returns τ(a) = q(a)/Λ, the asymptotic number of firings
// of actor a per time unit.
func (t Throughput) ActorThroughput(a sdf.ActorID) (rat.Rat, error) {
	if t.Unbounded {
		return rat.Rat{}, errors.New("analysis: throughput is unbounded")
	}
	if t.Period.IsZero() {
		return rat.Rat{}, errors.New("analysis: zero period")
	}
	q := rat.FromInt(t.Repetition[a])
	return q.Div(t.Period)
}

// IterationThroughput returns 1/Λ, the number of complete iterations per
// time unit.
func (t Throughput) IterationThroughput() (rat.Rat, error) {
	if t.Unbounded {
		return rat.Rat{}, errors.New("analysis: throughput is unbounded")
	}
	return rat.One().Div(t.Period)
}

// ComputeThroughput analyses g with the chosen engine. The graph must be
// consistent and deadlock-free; a deadlock is reported as an error
// wrapping the underlying cause.
func ComputeThroughput(g *sdf.Graph, method Method) (Throughput, error) {
	return ComputeThroughputCtx(guard.WithBudget(context.Background(), guard.Unlimited()), g, method)
}

// ComputeThroughputCtx is ComputeThroughput under the resilience
// runtime: the engine honours the deadline/cancellation of ctx at
// checkpoints inside its hot loops, charges its work against the budget
// carried by ctx (guard.WithBudget; the default budget when absent) and
// runs behind panic isolation, so a broken or bombed engine yields a
// structured *guard.EngineError instead of hanging or crashing.
//
// Before the engine runs, the exact reduction rules of internal/passes
// shrink the graph to fixpoint and the engine analyses the reduced
// graph; the answer is lifted back through the chain, so the result is
// identical to a direct analysis (the rules are exact) at a fraction of
// the engine cost on reducible graphs. Use ComputeThroughputDirectCtx
// to bypass the reducer.
func ComputeThroughputCtx(ctx context.Context, g *sdf.Graph, method Method) (Throughput, error) {
	red, rerr := passes.Reduce(ctx, g, passes.Options{})
	if rerr != nil || len(red.Steps) == 0 {
		// No reduction applied (or the reducer itself hit the budget, in
		// which case the direct engine fails with the same structured
		// error): run the engine on the original graph, byte-identical to
		// the pre-reducer behaviour.
		return ComputeThroughputDirectCtx(ctx, g, method)
	}
	var tp Throughput
	err := guard.Protect(method.String(), "throughput", func() error {
		var err error
		tp, err = computeThroughput(ctx, red.Final, method)
		return err
	})
	if err != nil {
		return Throughput{}, err
	}
	v, err := red.Lift(passes.Value{Period: tp.Period, Unbounded: tp.Unbounded})
	if err != nil {
		return Throughput{}, fmt.Errorf("analysis: lift: %w", err)
	}
	return Throughput{Unbounded: v.Unbounded, Period: v.Period, Repetition: red.OriginalRepetition()}, nil
}

// ComputeThroughputDirectCtx runs the chosen engine on g as-is, with no
// reduction pre-stage. The benchmark suite uses it as the baseline the
// reduced pipeline is measured against, and the equivalence fuzzer as
// the oracle the lifted answers must match.
func ComputeThroughputDirectCtx(ctx context.Context, g *sdf.Graph, method Method) (Throughput, error) {
	var tp Throughput
	err := guard.Protect(method.String(), "throughput", func() error {
		var err error
		tp, err = computeThroughput(ctx, g, method)
		return err
	})
	if err != nil {
		return Throughput{}, err
	}
	return tp, nil
}

func computeThroughput(ctx context.Context, g *sdf.Graph, method Method) (Throughput, error) {
	// Per-phase spans: each pipeline stage lands in its own latency
	// series when the context carries a registry; with none each span
	// is a nil check.
	reg := obs.FromContext(ctx)
	eng := method.String()
	q, err := g.RepetitionVector()
	if err != nil {
		return Throughput{}, fmt.Errorf("analysis: %w", err)
	}
	switch method {
	case Matrix:
		sp := reg.StartSpan("analysis.symbolic", "engine", eng)
		r, err := core.SymbolicIterationCtx(ctx, g)
		sp.Finish()
		if err != nil {
			return Throughput{}, fmt.Errorf("analysis: %w", err)
		}
		sp = reg.StartSpan("analysis.eigenvalue", "engine", eng)
		lam, hasCycle, err := r.Matrix.EigenvalueCtx(ctx)
		sp.Finish()
		if err != nil {
			return Throughput{}, fmt.Errorf("analysis: %w", err)
		}
		if !hasCycle {
			return Throughput{Unbounded: true, Repetition: q}, nil
		}
		return Throughput{Period: lam, Repetition: q}, nil

	case StateSpace:
		sp := reg.StartSpan("analysis.symbolic", "engine", eng)
		r, err := core.SymbolicIterationCtx(ctx, g)
		sp.Finish()
		if err != nil {
			return Throughput{}, fmt.Errorf("analysis: %w", err)
		}
		const maxIter = 1 << 22
		sp = reg.StartSpan("analysis.power-iteration", "engine", eng)
		res, ok, err := r.Matrix.PowerIterationCtx(ctx, maxIter)
		sp.Finish()
		if err != nil {
			return Throughput{}, fmt.Errorf("analysis: %w", err)
		}
		if !ok {
			return Throughput{Unbounded: true, Repetition: q}, nil
		}
		return Throughput{Period: res.CycleMean, Repetition: q}, nil

	case HSDF:
		sp := reg.StartSpan("analysis.conversion", "engine", eng)
		h, _, err := transform.TraditionalCtx(ctx, g)
		sp.Finish()
		if err != nil {
			return Throughput{}, fmt.Errorf("analysis: %w", err)
		}
		sp = reg.StartSpan("analysis.mcm", "engine", eng)
		res, err := mcm.MaxCycleRatio(h)
		sp.Finish()
		if err != nil {
			return Throughput{}, fmt.Errorf("analysis: %w", err)
		}
		if !res.HasCycle {
			return Throughput{Unbounded: true, Repetition: q}, nil
		}
		return Throughput{Period: res.CycleMean, Repetition: q}, nil

	default:
		return Throughput{}, fmt.Errorf("analysis: unknown method %v", method)
	}
}
