package analysis

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/sdf"
	"repro/internal/testutil"
)

// Every hedging test asserts the race leaves no goroutine behind; the
// racer bodies live in this package, so any survivor's stack names it.
func noLeaks(t *testing.T) {
	t.Helper()
	testutil.FailOnLeakedGoroutines(t, "repro/internal/analysis.ComputeThroughputHedgedOpts")
}

func TestHedgedFirstVerifiedWins(t *testing.T) {
	defer noLeaks(t)
	g := gen.Figure2()
	want, err := ComputeThroughput(g, Matrix)
	if err != nil {
		t.Fatal(err)
	}
	tp, rep, err := ComputeThroughputHedged(context.Background(), g)
	if err != nil {
		t.Fatalf("hedged: %v\n%s", err, rep)
	}
	if tp.Unbounded || !tp.Period.Equal(want.Period) {
		t.Errorf("hedged period = %v, want %v", tp.Period, want.Period)
	}
	if !rep.Answered {
		t.Fatal("report does not mark an answer")
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("report has %d attempts, want 3:\n%s", len(rep.Attempts), rep)
	}
	cert := rep.Certificates[rep.Winner]
	if cert == nil {
		t.Fatalf("winner %v has no certificate", rep.Winner)
	}
	if err := cert.Check(context.Background(), g); err != nil {
		t.Errorf("winner's certificate does not re-verify: %v", err)
	}
}

func TestHedgedCrossCheckAllEnginesVerify(t *testing.T) {
	defer noLeaks(t)
	g := gen.Figure3(4)
	tp, rep, err := ComputeThroughputHedgedOpts(context.Background(), g, HedgeOptions{CrossCheck: true})
	if err != nil {
		t.Fatalf("cross-check: %v\n%s", err, rep)
	}
	if rep.Winner != Matrix {
		t.Errorf("cross-check winner = %v, want the first engine in race order", rep.Winner)
	}
	if len(rep.Certificates) != 3 {
		t.Fatalf("got %d certificates, want one per engine:\n%s", len(rep.Certificates), rep)
	}
	for m, cert := range rep.Certificates {
		if cert.Unbounded || !cert.Period.Equal(tp.Period) {
			t.Errorf("%v certificate claims %v, result is %v", m, cert.Period, tp.Period)
		}
		if err := cert.Check(context.Background(), g); err != nil {
			t.Errorf("%v certificate does not re-verify: %v", m, err)
		}
	}
	s := rep.String()
	if !strings.Contains(s, "answered") || !strings.Contains(s, "cross-checked") {
		t.Errorf("report rendering misses the cross-check lines:\n%s", s)
	}
}

// A wrong answer injected through the HSDF anchor's documented trust
// gap (its edge delays are not re-derivable from the original graph)
// must not win silently: both engines verify, their claims differ, and
// the race returns a structured disagreement carrying both
// certificates.
func TestHedgedSurfacesVerifiedDisagreement(t *testing.T) {
	defer noLeaks(t)
	g := gen.Figure3(4)
	testTamperHSDF = func(h *sdf.Graph) *sdf.Graph {
		tampered := h.Clone()
		for i := 0; i < tampered.NumChannels(); i++ {
			id := sdf.ChannelID(i)
			if err := tampered.SetInitial(id, tampered.Channel(id).Initial+1); err != nil {
				t.Fatal(err)
			}
		}
		return tampered
	}
	defer func() { testTamperHSDF = nil }()

	_, rep, err := ComputeThroughputHedgedOpts(context.Background(), g,
		HedgeOptions{Engines: []Method{Matrix, HSDF}, CrossCheck: true})
	if !errors.Is(err, ErrEngineDisagreement) {
		t.Fatalf("err = %v, want ErrEngineDisagreement\n%s", err, rep)
	}
	var de *DisagreementError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *DisagreementError", err)
	}
	if de.MethodA != Matrix || de.MethodB != HSDF {
		t.Errorf("disagreement between %v and %v, want matrix and hsdf", de.MethodA, de.MethodB)
	}
	if de.ResultA.Period.Equal(de.ResultB.Period) {
		t.Errorf("disagreement carries equal periods %v", de.ResultA.Period)
	}
	if de.CertA == nil || de.CertB == nil {
		t.Fatal("disagreement does not carry both certificates")
	}
	// Both certificates individually verify — that is exactly what makes
	// the disagreement worth surfacing instead of silently picking one.
	if err := de.CertA.Check(context.Background(), g); err != nil {
		t.Errorf("matrix certificate does not verify: %v", err)
	}
	if err := de.CertB.Check(context.Background(), g); err != nil {
		t.Errorf("tampered hsdf certificate does not verify (the trust gap closed?): %v", err)
	}
}

func TestHedgedAllEnginesFail(t *testing.T) {
	defer noLeaks(t)
	// Inconsistent rates: no repetition vector, every engine fails.
	g := sdf.NewGraph("inconsistent")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 2, 3, 0)
	g.MustAddChannel(b, a, 1, 1, 1)
	_, rep, err := ComputeThroughputHedged(context.Background(), g)
	if err == nil {
		t.Fatal("inconsistent graph produced a hedged answer")
	}
	if rep.Answered {
		t.Error("report claims an answer on total failure")
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("report has %d attempts, want 3", len(rep.Attempts))
	}
	for _, at := range rep.Attempts {
		if at.Skipped || at.Err == nil {
			t.Errorf("%v: attempt on total failure should record a failure, got %+v", at.Method, at)
		}
	}
}

// TestHedgedGateShedsTrippedEngine is the breaker-interaction contract
// of the serving layer: an engine behind an open circuit breaker must
// be shed before the race starts — no goroutine, no meter, no budget
// consumption — and the report must say so. The armed injector proves
// the "no budget consumed" half: had the statespace engine run at all,
// its very first checkpoint or precheck would have struck the injector.
func TestHedgedGateShedsTrippedEngine(t *testing.T) {
	defer noLeaks(t)
	g := gen.Figure2()
	b := guard.Unlimited()
	b.CheckEvery = 1
	inj := guard.NewInjector(
		guard.Fault{Engine: "statespace", Point: guard.PointPrecheck, Mode: guard.ModePanic, Times: -1},
		guard.Fault{Engine: "statespace", Point: guard.PointCheckpoint, Mode: guard.ModePanic, Times: -1},
	)
	ctx := guard.WithInjector(guard.WithBudget(context.Background(), b), inj)

	breaker := guard.NewBreaker(guard.BreakerOptions{Threshold: 1})
	breaker.Failure() // tripped before the race
	gate := func(m Method) error {
		if m == StateSpace {
			return breaker.Allow()
		}
		return nil
	}
	tp, rep, err := ComputeThroughputHedgedOpts(ctx, g, HedgeOptions{CrossCheck: true, Gate: gate})
	if err != nil {
		t.Fatalf("hedged with tripped statespace: %v\n%s", err, rep)
	}
	if tp.Unbounded {
		t.Error("result unbounded")
	}
	if rep.Winner != Matrix {
		t.Errorf("winner = %v, want matrix", rep.Winner)
	}
	if inj.Fired() != 0 {
		t.Errorf("gated engine consumed budget: injector fired %d times, want 0", inj.Fired())
	}
	var ss *EngineAttempt
	for i := range rep.Attempts {
		if rep.Attempts[i].Method == StateSpace {
			ss = &rep.Attempts[i]
		}
	}
	if ss == nil {
		t.Fatalf("no statespace attempt in the report:\n%s", rep)
	}
	if !ss.Skipped {
		t.Fatalf("tripped engine not recorded as skipped: %+v", ss)
	}
	if !errors.Is(ss.Err, guard.ErrBreakerOpen) {
		t.Errorf("skipped attempt carries %v, want ErrBreakerOpen", ss.Err)
	}
	if !strings.Contains(rep.String(), "gated") {
		t.Errorf("report does not say the engine was gated:\n%s", rep)
	}
	if _, ok := rep.Certificates[StateSpace]; ok {
		t.Error("gated engine produced a certificate")
	}
}

// When the gate sheds every engine the race must fail with the gate
// errors joined, not hang or invent a winner.
func TestHedgedAllEnginesGated(t *testing.T) {
	defer noLeaks(t)
	gate := func(Method) error { return guard.ErrBreakerOpen }
	_, rep, err := ComputeThroughputHedgedOpts(context.Background(), gen.Figure2(), HedgeOptions{Gate: gate})
	if err == nil {
		t.Fatal("fully gated race produced an answer")
	}
	if !errors.Is(err, guard.ErrBreakerOpen) {
		t.Errorf("err = %v, want to wrap ErrBreakerOpen", err)
	}
	if rep.Answered || len(rep.Attempts) != 3 {
		t.Fatalf("report = answered=%v attempts=%d, want 3 skipped attempts", rep.Answered, len(rep.Attempts))
	}
	for _, at := range rep.Attempts {
		if !at.Skipped {
			t.Errorf("%v not skipped: %+v", at.Method, at)
		}
	}
}

// A deterministically injected budget refusal makes the HSDF racer lose
// while the others proceed: degradation under fault injection, with no
// timing dependence because cross-check mode waits for every racer.
func TestHedgedInjectedRefusalLosesRace(t *testing.T) {
	defer noLeaks(t)
	g := gen.Figure2()
	b := guard.Unlimited()
	b.CheckEvery = 1
	inj := guard.NewInjector(
		guard.Fault{Engine: "traditional", Point: guard.PointPrecheck, Mode: guard.ModeRefuse},
	)
	ctx := guard.WithInjector(guard.WithBudget(context.Background(), b), inj)
	tp, rep, err := ComputeThroughputHedgedOpts(ctx, g, HedgeOptions{CrossCheck: true})
	if err != nil {
		t.Fatalf("hedged with injected hsdf refusal: %v\n%s", err, rep)
	}
	if rep.Winner != Matrix {
		t.Errorf("winner = %v, want matrix", rep.Winner)
	}
	if tp.Unbounded {
		t.Error("result unbounded")
	}
	if inj.Fired() != 1 {
		t.Errorf("injector fired %d times, want 1", inj.Fired())
	}
	var hsdfAttempt *EngineAttempt
	for i := range rep.Attempts {
		if rep.Attempts[i].Method == HSDF {
			hsdfAttempt = &rep.Attempts[i]
		}
	}
	if hsdfAttempt == nil || hsdfAttempt.Err == nil {
		t.Fatalf("hsdf attempt not recorded as failed:\n%s", rep)
	}
	if !errors.Is(hsdfAttempt.Err, guard.ErrBudgetExceeded) {
		t.Errorf("hsdf failure = %v, want the injected ErrBudgetExceeded", hsdfAttempt.Err)
	}
}
