package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/rat"
	"repro/internal/sdf"
)

func TestFigure1ThroughputAllMethods(t *testing.T) {
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		tp, err := ComputeThroughput(g, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if tp.Unbounded {
			t.Fatalf("%v: unbounded", m)
		}
		if !tp.Period.Equal(rat.FromInt(23)) {
			t.Errorf("%v: period = %v, want 23", m, tp.Period)
		}
		a1, _ := g.ActorByName("A1")
		tau, err := tp.ActorThroughput(a1)
		if err != nil {
			t.Fatal(err)
		}
		if !tau.Equal(rat.MustNew(1, 23)) {
			t.Errorf("%v: τ(A1) = %v, want 1/23", m, tau)
		}
	}
}

func TestFigure3ThroughputAllMethods(t *testing.T) {
	g := gen.Figure3(2)
	var got []rat.Rat
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		tp, err := ComputeThroughput(g, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got = append(got, tp.Period)
	}
	if !got[0].Equal(got[1]) || !got[0].Equal(got[2]) {
		t.Errorf("methods disagree: %v", got)
	}
	// q(L) = 2 per iteration: τ(L) = 2/Λ.
	tp, err := ComputeThroughput(g, Matrix)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := g.ActorByName("L")
	tau, err := tp.ActorThroughput(l)
	if err != nil {
		t.Fatal(err)
	}
	two := rat.FromInt(2)
	want, err := two.Div(tp.Period)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(want) {
		t.Errorf("τ(L) = %v, want %v", tau, want)
	}
}

func TestUnboundedPipeline(t *testing.T) {
	// A pipeline without feedback has unbounded self-timed throughput
	// (auto-concurrency lets every actor fire arbitrarily often).
	g := sdf.NewGraph("pipe")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 4)
	g.MustAddChannel(a, b, 1, 1, 0)
	for _, m := range []Method{Matrix, HSDF} {
		tp, err := ComputeThroughput(g, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !tp.Unbounded {
			t.Errorf("%v: pipeline not reported unbounded (period %v)", m, tp.Period)
		}
		if _, err := tp.IterationThroughput(); err == nil {
			t.Errorf("%v: IterationThroughput on unbounded result succeeded", m)
		}
	}
}

func TestDeadlockReported(t *testing.T) {
	g := sdf.NewGraph("dead")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(b, a, 1, 1, 0)
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		if _, err := ComputeThroughput(g, m); err == nil {
			t.Errorf("%v: deadlocked graph analysed without error", m)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Matrix.String() != "matrix" || StateSpace.String() != "statespace" || HSDF.String() != "hsdf" {
		t.Error("method names changed")
	}
	if Method(42).String() == "" {
		t.Error("unknown method has empty name")
	}
}

func TestUnknownMethod(t *testing.T) {
	g := sdf.NewGraph("t")
	a := g.MustAddActor("A", 1)
	g.MustAddChannel(a, a, 1, 1, 1)
	if _, err := ComputeThroughput(g, Method(42)); err == nil {
		t.Error("unknown method accepted")
	}
}

// The central cross-validation property of the repository: on random
// consistent live SDF graphs, the symbolic-matrix engine, the state-space
// engine and the classical traditional-conversion + MCM pipeline agree
// exactly on the iteration period.
func TestQuickEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		g, err := gen.RandomGraph(rng, gen.RandomOptions{
			Actors:   2 + rng.Intn(6),
			MaxRep:   4,
			MaxExec:  12,
			Chords:   rng.Intn(5),
			SelfLoop: true, // keeps the graph strongly constrained
		})
		if err != nil {
			t.Fatal(err)
		}
		tpM, err := ComputeThroughput(g, Matrix)
		if err != nil {
			t.Fatalf("trial %d matrix: %v\n%s", trial, err, g)
		}
		tpS, err := ComputeThroughput(g, StateSpace)
		if err != nil {
			t.Fatalf("trial %d statespace: %v\n%s", trial, err, g)
		}
		tpH, err := ComputeThroughput(g, HSDF)
		if err != nil {
			t.Fatalf("trial %d hsdf: %v\n%s", trial, err, g)
		}
		if tpM.Unbounded != tpS.Unbounded || tpM.Unbounded != tpH.Unbounded {
			t.Fatalf("trial %d: unbounded flags disagree: %v %v %v\n%s",
				trial, tpM.Unbounded, tpS.Unbounded, tpH.Unbounded, g)
		}
		if tpM.Unbounded {
			continue
		}
		if !tpM.Period.Equal(tpS.Period) || !tpM.Period.Equal(tpH.Period) {
			t.Errorf("trial %d: periods disagree: matrix=%v statespace=%v hsdf=%v\n%s",
				trial, tpM.Period, tpS.Period, tpH.Period, g)
		}
	}
}

// Without self-loops the graphs have large auto-concurrency; the engines
// must still agree (including on unboundedness).
func TestQuickEnginesAgreeNoSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 60; trial++ {
		g, err := gen.RandomGraph(rng, gen.RandomOptions{
			Actors:  2 + rng.Intn(5),
			MaxRep:  3,
			MaxExec: 9,
			Chords:  rng.Intn(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		tpM, errM := ComputeThroughput(g, Matrix)
		tpH, errH := ComputeThroughput(g, HSDF)
		if (errM == nil) != (errH == nil) {
			t.Fatalf("trial %d: error disagreement: %v vs %v\n%s", trial, errM, errH, g)
		}
		if errM != nil {
			continue
		}
		if tpM.Unbounded != tpH.Unbounded {
			t.Fatalf("trial %d: unbounded flags disagree\n%s", trial, g)
		}
		if !tpM.Unbounded && !tpM.Period.Equal(tpH.Period) {
			t.Errorf("trial %d: matrix=%v hsdf=%v\n%s", trial, tpM.Period, tpH.Period, g)
		}
	}
}

// Proposition 1, empirically: increasing execution times and removing
// initial tokens can only increase the iteration period. This is the
// monotonicity the conservativity proof of §5 rests on.
func TestQuickProposition1Monotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		g, err := gen.RandomGraph(rng, gen.RandomOptions{
			Actors:   2 + rng.Intn(5),
			MaxRep:   3,
			MaxExec:  9,
			Chords:   rng.Intn(4),
			SelfLoop: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		tpFast, err := ComputeThroughput(g, Matrix)
		if err != nil {
			t.Fatal(err)
		}
		// Slow variant: every execution time grows by a random amount.
		slow := g.Clone()
		for a := 0; a < slow.NumActors(); a++ {
			extra := rng.Int63n(5)
			if err := slow.SetExec(sdf.ActorID(a), slow.Actor(sdf.ActorID(a)).Exec+extra); err != nil {
				t.Fatal(err)
			}
		}
		tpSlow, err := ComputeThroughput(slow, Matrix)
		if err != nil {
			t.Fatal(err)
		}
		if tpFast.Unbounded != tpSlow.Unbounded {
			t.Fatalf("trial %d: unboundedness changed by slowing actors", trial)
		}
		if tpFast.Unbounded {
			continue
		}
		if tpSlow.Period.Cmp(tpFast.Period) < 0 {
			t.Errorf("trial %d: slower actors gave shorter period %v < %v\n%s",
				trial, tpSlow.Period, tpFast.Period, g)
		}

		// Token-removal variant: drop one token from a channel with > 1
		// tokens (keeping liveness plausible; skip when it deadlocks).
		tight := g.Clone()
		removed := false
		for i := 0; i < tight.NumChannels(); i++ {
			c := tight.Channel(sdf.ChannelID(i))
			if c.Initial > 1 {
				if err := tight.SetInitial(sdf.ChannelID(i), c.Initial-1); err != nil {
					t.Fatal(err)
				}
				removed = true
				break
			}
		}
		if !removed {
			continue
		}
		tpTight, err := ComputeThroughput(tight, Matrix)
		if err != nil {
			continue // the tightened graph may deadlock; Prop 1 presumes liveness
		}
		if tpTight.Unbounded {
			continue
		}
		if !tpFast.Unbounded && tpTight.Period.Cmp(tpFast.Period) < 0 {
			t.Errorf("trial %d: fewer tokens gave shorter period %v < %v\n%s",
				trial, tpTight.Period, tpFast.Period, g)
		}
	}
}
