package analysis

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// EngineAttempt records what happened to one engine of the resilient
// throughput ladder.
type EngineAttempt struct {
	// Method is the engine this attempt concerns.
	Method Method
	// Skipped is true when the engine was never run; Reason says why
	// (an earlier engine answered, the precheck size estimate exceeded
	// the budget, the context was already done, ...).
	Skipped bool
	// Reason explains a skip or summarises a failure.
	Reason string
	// Err is the structured error of a failed run: nil for the winner
	// and for engines skipped because an earlier one answered, the
	// gate's error for engines a HedgeOptions.Gate shed before they ran.
	Err error
	// Wall is how long the engine ran (zero for engines that never
	// started; lost racers keep the time they spent before the
	// cancellation), measured on the observability clock when the
	// context carries a registry, the wall clock otherwise.
	Wall time.Duration
}

// attemptOutcome classifies an attempt for the engine-attempt counter.
func attemptOutcome(a EngineAttempt) string {
	switch {
	case a.Skipped && a.Err != nil:
		return "gated"
	case a.Skipped:
		return "skipped"
	case a.Err == nil:
		return "answered"
	case errors.Is(a.Err, guard.ErrCanceled):
		return "cancelled"
	default:
		return "failed"
	}
}

// countAttempts feeds every attempt into the registry (a no-op on nil).
func countAttempts(reg *obs.Registry, kind string, attempts []EngineAttempt) {
	for _, a := range attempts {
		outcome := attemptOutcome(a)
		reg.Counter(obs.MetricEngineAttempts, "engine", a.Method.String(), "outcome", outcome).Inc()
		if !a.Skipped {
			reg.Emit(kind+".attempt",
				"engine", a.Method.String(), "outcome", outcome, "wall", a.Wall.String())
		}
	}
}

// ResilientReport explains a resilient throughput analysis: one attempt
// per engine of the ladder, in the order they were considered, so
// callers can see which engine answered and why the others did not run.
type ResilientReport struct {
	// Attempts lists every engine of the ladder in consideration order.
	Attempts []EngineAttempt
	// Winner is the engine that produced the result; only meaningful
	// when Answered is true.
	Winner Method
	// Answered is true when some engine produced a throughput.
	Answered bool
}

// String renders the ladder for humans, one line per engine.
func (r *ResilientReport) String() string {
	var b strings.Builder
	for _, a := range r.Attempts {
		switch {
		case r.Answered && a.Method == r.Winner:
			fmt.Fprintf(&b, "%-11s answered\n", a.Method)
		case a.Skipped:
			fmt.Fprintf(&b, "%-11s skipped: %s\n", a.Method, a.Reason)
		default:
			fmt.Fprintf(&b, "%-11s failed: %s\n", a.Method, a.Reason)
		}
	}
	return b.String()
}

// ComputeThroughputResilient analyses g with the engine-degradation
// ladder of the resilience runtime: it tries the matrix engine first
// (symbolic max-plus, the paper's reduction and the cheapest engine on
// graphs with few initial tokens), falls back to state-space power
// iteration under the same budget, and only attempts the traditional
// HSDF conversion when the lint engine's static size estimate — the
// iteration length Σq against the budget's actor cap — says the
// conversion fits. Every engine runs behind panic isolation, so one
// broken engine degrades to the next instead of killing the analysis.
//
// The report is returned even on total failure, so callers can always
// explain which engines ran, failed or were skipped and why.
func ComputeThroughputResilient(ctx context.Context, g *sdf.Graph) (Throughput, *ResilientReport, error) {
	budget := guard.BudgetFrom(ctx)
	reg := obs.FromContext(ctx)
	rep := &ResilientReport{}
	defer func() { countAttempts(reg, "ladder", rep.Attempts) }()

	// Static size estimates via the lint engine: the iteration length
	// decides up front whether the traditional conversion is admissible
	// (IterationLength == 0 on a non-empty graph encodes Σq overflow).
	hsdfSkip := ""
	if elig, err := lint.Eligibility(g); err != nil {
		hsdfSkip = fmt.Sprintf("size estimate unavailable (%v)", err)
	} else if g.NumActors() > 0 && elig.IterationLength == 0 {
		hsdfSkip = "iteration length Σq overflows int64; the conversion cannot be materialised"
	} else if budget.MaxHSDFActors >= 0 && elig.IterationLength > budget.MaxHSDFActors {
		hsdfSkip = fmt.Sprintf("iteration length %d exceeds the HSDF actor budget %d",
			elig.IterationLength, budget.MaxHSDFActors)
	}

	var result Throughput
	var errs []error
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		if rep.Answered {
			rep.Attempts = append(rep.Attempts, EngineAttempt{
				Method: m, Skipped: true,
				Reason: fmt.Sprintf("the %s engine already answered", rep.Winner),
			})
			continue
		}
		if err := ctx.Err(); err != nil {
			rep.Attempts = append(rep.Attempts, EngineAttempt{
				Method: m, Skipped: true,
				Reason: fmt.Sprintf("context done before the engine could start (%v)", err),
			})
			continue
		}
		if m == HSDF && hsdfSkip != "" {
			rep.Attempts = append(rep.Attempts, EngineAttempt{Method: m, Skipped: true, Reason: hsdfSkip})
			continue
		}
		start := reg.Now()
		tp, err := ComputeThroughputCtx(ctx, g, m)
		wall := reg.Now().Sub(start)
		if err == nil {
			rep.Attempts = append(rep.Attempts, EngineAttempt{Method: m, Wall: wall})
			rep.Winner = m
			rep.Answered = true
			// Keep looping so the remaining rungs are recorded as skipped.
			result = tp
			continue
		}
		rep.Attempts = append(rep.Attempts, EngineAttempt{Method: m, Reason: err.Error(), Err: err, Wall: wall})
		errs = append(errs, fmt.Errorf("%v: %w", m, err))
	}
	if rep.Answered {
		return result, rep, nil
	}
	return Throughput{}, rep, fmt.Errorf("analysis: no engine produced a throughput: %w", errors.Join(errs...))
}
