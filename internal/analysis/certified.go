package analysis

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mcm"
	"repro/internal/obs"
	"repro/internal/sdf"
	"repro/internal/transform"
	"repro/internal/verify"
)

// testTamperHSDF, when non-nil, rewrites the traditionally converted
// graph before the certified HSDF engine analyses it. It exists so
// tests can inject a verified-but-wrong answer through the documented
// trust gap of the HSDF anchor (its edge delays are not re-derivable
// from the original graph) and prove that hedged cross-checking
// surfaces the disagreement instead of returning the wrong result.
var testTamperHSDF func(*sdf.Graph) *sdf.Graph

// ComputeThroughputCertified is ComputeThroughputCtx returning a
// self-verifying certificate alongside the result: the engine's answer
// is packaged with a critical-cycle witness and a node-potential
// feasibility witness over the engine's reference precedence graph, and
// the certificate is validated by the independent checker of
// internal/verify before it is returned. A wrong engine answer fails
// witness extraction or the final check and comes back as an error, not
// as a result.
func ComputeThroughputCertified(ctx context.Context, g *sdf.Graph, method Method) (Throughput, *verify.ThroughputCert, error) {
	var tp Throughput
	var cert *verify.ThroughputCert
	err := guard.Protect(method.String(), "certified-throughput", func() error {
		var err error
		tp, cert, err = computeThroughputCertified(ctx, g, method)
		return err
	})
	if err != nil {
		return Throughput{}, nil, err
	}
	return tp, cert, nil
}

func computeThroughputCertified(ctx context.Context, g *sdf.Graph, method Method) (Throughput, *verify.ThroughputCert, error) {
	fail := func(err error) (Throughput, *verify.ThroughputCert, error) {
		return Throughput{}, nil, fmt.Errorf("analysis: certified %v: %w", method, err)
	}
	// Per-phase spans: when the context carries a registry, every stage
	// of the pipeline — symbolic execution, the eigenvalue / power
	// iteration / MCM core, and certificate construction + check —
	// lands in its own latency series, so an operator can see where an
	// engine's time actually goes. With no registry each span is a nil
	// check.
	reg := obs.FromContext(ctx)
	eng := method.String()
	q, err := g.RepetitionVector()
	if err != nil {
		return fail(err)
	}
	var cert *verify.ThroughputCert
	var tp Throughput
	switch method {
	case Matrix, StateSpace:
		sp := reg.StartSpan("analysis.symbolic", "engine", eng)
		r, err := core.SymbolicIterationCtx(ctx, g)
		sp.Finish()
		if err != nil {
			return fail(err)
		}
		var unbounded bool
		tp = Throughput{Repetition: q}
		if method == Matrix {
			sp := reg.StartSpan("analysis.eigenvalue", "engine", eng)
			lam, hasCycle, err := r.Matrix.EigenvalueCtx(ctx)
			sp.Finish()
			if err != nil {
				return fail(err)
			}
			unbounded, tp.Unbounded, tp.Period = !hasCycle, !hasCycle, lam
		} else {
			const maxIter = 1 << 22
			sp := reg.StartSpan("analysis.power-iteration", "engine", eng)
			res, ok, err := r.Matrix.PowerIterationCtx(ctx, maxIter)
			sp.Finish()
			if err != nil {
				return fail(err)
			}
			unbounded, tp.Unbounded, tp.Period = !ok, !ok, res.CycleMean
		}
		sp = reg.StartSpan("analysis.certify", "engine", eng)
		mc := &verify.MatrixCert{Matrix: r.Matrix, Schedule: r.Schedule}
		cert, err = verify.NewMatrixThroughputCert(ctx, g, mc, q, unbounded, tp.Period)
		if err != nil {
			sp.Finish("outcome", "error")
			return fail(err)
		}
		if err := cert.Check(ctx, g); err != nil {
			sp.Finish("outcome", "invalid")
			return fail(err)
		}
		sp.Finish("outcome", "verified")

	case HSDF:
		sp := reg.StartSpan("analysis.conversion", "engine", eng)
		h, _, err := transform.TraditionalCtx(ctx, g)
		sp.Finish()
		if err != nil {
			return fail(err)
		}
		if testTamperHSDF != nil {
			h = testTamperHSDF(h)
		}
		sp = reg.StartSpan("analysis.mcm", "engine", eng)
		res, err := mcm.MaxCycleRatio(h)
		sp.Finish()
		if err != nil {
			return fail(err)
		}
		tp = Throughput{Unbounded: !res.HasCycle, Period: res.CycleMean, Repetition: q}
		sp = reg.StartSpan("analysis.certify", "engine", eng)
		cert, err = verify.NewHSDFThroughputCert(ctx, g, h, q, !res.HasCycle, res.CycleMean)
		if err != nil {
			sp.Finish("outcome", "error")
			return fail(err)
		}
		if err := cert.Check(ctx, g); err != nil {
			sp.Finish("outcome", "invalid")
			return fail(err)
		}
		sp.Finish("outcome", "verified")

	default:
		return fail(fmt.Errorf("unknown method %v", method))
	}
	return tp, cert, nil
}
