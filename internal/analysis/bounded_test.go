package analysis

import (
	"errors"
	"testing"

	"repro/internal/guard"
	"repro/internal/sdf"
)

// abstractableGraph builds an HSDF graph no exact rule bites on (a
// diamond: every actor has in- or out-degree 2) so the fixpoint's only
// move is the Definitions 3–4 abstraction; the self-loop on B gives the
// period floor a witness. Exact period: max cycle mean = 5/2 (the
// A→C→D→A cycle); the self-loop contributes 2/1.
func abstractableGraph(t *testing.T) *sdf.Graph {
	t.Helper()
	g := sdf.NewGraph("diamond")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 2)
	c := g.MustAddActor("C", 3)
	d := g.MustAddActor("D", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(a, c, 1, 1, 0)
	g.MustAddChannel(b, d, 1, 1, 0)
	g.MustAddChannel(c, d, 1, 1, 0)
	g.MustAddChannel(d, a, 1, 1, 2)
	g.MustAddChannel(b, b, 1, 1, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

// TestBoundedExactChain: on a graph the exact rules fully reduce, the
// bounded mode returns a degenerate enclosure Lower == Upper == Λ with
// an exact certificate chain.
func TestBoundedExactChain(t *testing.T) {
	g := reducibleGraph(t)
	direct, err := ComputeThroughputDirectCtx(unlimited(), g, Matrix)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	b, cert, err := ComputeThroughputBounded(unlimited(), g, BoundedOptions{})
	if err != nil {
		t.Fatalf("bounded: %v", err)
	}
	if b.Unbounded || !b.Exact {
		t.Fatalf("bound = %+v, want exact bounded enclosure", b)
	}
	if !b.Upper.Equal(direct.Period) || !b.Lower.Equal(direct.Period) {
		t.Fatalf("enclosure [%v, %v], want degenerate at %v", b.Lower, b.Upper, direct.Period)
	}
	if cert.Bound {
		t.Fatalf("exact chain marked as a bound")
	}
	if err := cert.Check(unlimited(), g); err != nil {
		t.Fatalf("certificate re-check: %v", err)
	}
}

// TestBoundedAbstraction: on a graph only the abstraction rule can
// shrink, the enclosure must bracket the true period, the certificate
// must carry Bound and still re-check against the original graph in
// exact arithmetic — the acceptance criterion of a brownout answer.
func TestBoundedAbstraction(t *testing.T) {
	g := abstractableGraph(t)
	direct, err := ComputeThroughputDirectCtx(unlimited(), g, Matrix)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	b, cert, err := ComputeThroughputBounded(unlimited(), g, BoundedOptions{})
	if err != nil {
		t.Fatalf("bounded: %v", err)
	}
	if b.Unbounded {
		t.Fatalf("bounded graph reported unbounded")
	}
	if b.Exact || !cert.Bound {
		t.Fatalf("abstraction chain not marked as a bound (exact=%v, cert.Bound=%v)", b.Exact, cert.Bound)
	}
	if b.Lower.Cmp(direct.Period) > 0 {
		t.Fatalf("floor %v exceeds the true period %v", b.Lower, direct.Period)
	}
	if b.Upper.Cmp(direct.Period) < 0 {
		t.Fatalf("ceiling %v below the true period %v — the bound is not conservative", b.Upper, direct.Period)
	}
	if b.Lower.IsZero() {
		t.Fatalf("self-loop floor not picked up: lower bound is zero")
	}
	if err := cert.Check(unlimited(), g); err != nil {
		t.Fatalf("conservativeness certificate rejected against the original graph: %v", err)
	}
	if len(b.Repetition) != g.NumActors() {
		t.Fatalf("repetition has %d entries, want %d", len(b.Repetition), g.NumActors())
	}
}

// TestBoundedCostCeiling: the ceiling is hard — a ceiling too small for
// even the reduction fixpoint yields a budget refusal, not a hang and
// not an uncertified answer.
func TestBoundedCostCeiling(t *testing.T) {
	g := abstractableGraph(t)
	_, _, err := ComputeThroughputBounded(unlimited(), g, BoundedOptions{CostCeiling: 1})
	if err == nil {
		t.Fatalf("ceiling of 1 work unit produced an answer")
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("ceiling error = %v, want guard.ErrBudgetExceeded", err)
	}
}

// TestBoundedUnbounded: an acyclic graph has no constraining cycle and
// the bounded mode says so rather than inventing an enclosure.
func TestBoundedUnbounded(t *testing.T) {
	g := sdf.NewGraph("pipe")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 4)
	g.MustAddChannel(a, b, 2, 1, 0)
	bound, cert, err := ComputeThroughputBounded(unlimited(), g, BoundedOptions{})
	if err != nil {
		t.Fatalf("bounded: %v", err)
	}
	if !bound.Unbounded {
		t.Fatalf("want unbounded, got [%v, %v]", bound.Lower, bound.Upper)
	}
	if err := cert.Check(unlimited(), g); err != nil {
		t.Fatalf("certificate re-check: %v", err)
	}
}
