package analysis

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// collect sums one metric family's series values grouped by a label.
func collect(t *testing.T, reg *obs.Registry, name, label string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		if s.Kind == obs.KindHistogram {
			out[s.Label(label)] += s.Hist.Count
		} else {
			out[s.Label(label)] += s.Value
		}
	}
	return out
}

// TestResilientLadderInstrumented: a ladder run with a registry in the
// context produces one attempt counter per rung, a wall time on the
// winning attempt, and per-phase span series for the certified engine.
func TestResilientLadderInstrumented(t *testing.T) {
	reg := obs.New()
	reg.EnableEvents(64)
	ctx := obs.WithRegistry(context.Background(), reg)

	_, rep, err := ComputeThroughputResilient(ctx, gen.Figure2())
	if err != nil {
		t.Fatalf("resilient: %v\n%s", err, rep)
	}
	if !rep.Answered || rep.Winner != Matrix {
		t.Fatalf("winner = %v (answered=%v), want matrix", rep.Winner, rep.Answered)
	}
	if rep.Attempts[0].Wall <= 0 {
		t.Errorf("winning attempt has no wall time: %+v", rep.Attempts[0])
	}

	byOutcome := collect(t, reg, obs.MetricEngineAttempts, "outcome")
	if byOutcome["answered"] != 1 || byOutcome["skipped"] != 2 {
		t.Errorf("attempt outcomes = %v, want 1 answered + 2 skipped", byOutcome)
	}

	// The winning matrix engine times its phases.
	spans := collect(t, reg, obs.MetricSpanSeconds, "span")
	for _, phase := range []string{"analysis.symbolic", "analysis.eigenvalue"} {
		if spans[phase] != 1 {
			t.Errorf("span %q observed %d times, want 1 (all: %v)", phase, spans[phase], spans)
		}
	}

	// The ring saw the non-skipped attempt.
	events, total := reg.Events()
	if total == 0 {
		t.Fatal("no events recorded")
	}
	found := false
	for _, e := range events {
		if e.Name == "ladder.attempt" && e.Attrs["outcome"] == "answered" {
			found = true
		}
	}
	if !found {
		t.Errorf("no ladder.attempt answered event in %v", events)
	}
}

// TestHedgedRaceInstrumented: a hedged race counts the race outcome,
// the winner, and one attempt per engine.
func TestHedgedRaceInstrumented(t *testing.T) {
	defer noLeaks(t)
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)

	_, rep, err := ComputeThroughputHedgedOpts(ctx, gen.Figure2(), HedgeOptions{CrossCheck: true})
	if err != nil {
		t.Fatalf("hedged: %v\n%s", err, rep)
	}

	races := collect(t, reg, obs.MetricHedgeRaces, "outcome")
	if races["answered"] != 1 {
		t.Errorf("race outcomes = %v, want 1 answered", races)
	}
	wins := collect(t, reg, obs.MetricHedgeWins, "engine")
	if wins[rep.Winner.String()] != 1 {
		t.Errorf("hedge wins = %v, want 1 for %v", wins, rep.Winner)
	}
	attempts := collect(t, reg, obs.MetricEngineAttempts, "engine")
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		if attempts[m.String()] != 1 {
			t.Errorf("engine %v counted %d attempts, want 1 (all: %v)", m, attempts[m.String()], attempts)
		}
	}
	// The certified engines time their verification phase too.
	spans := collect(t, reg, obs.MetricSpanSeconds, "span")
	if spans["analysis.certify"] == 0 {
		t.Errorf("no analysis.certify spans recorded (all: %v)", spans)
	}
	for _, a := range rep.Attempts {
		if a.Wall <= 0 {
			t.Errorf("attempt %v has no wall time", a.Method)
		}
	}
}

// TestAnalysisWithoutRegistry: the acceptance contract — no registry in
// the context means every instrumentation call is a no-op and analysis
// behaves exactly as before.
func TestAnalysisWithoutRegistry(t *testing.T) {
	defer noLeaks(t)
	if _, rep, err := ComputeThroughputResilient(context.Background(), gen.Figure2()); err != nil {
		t.Fatalf("resilient without registry: %v\n%s", err, rep)
	}
	if _, rep, err := ComputeThroughputHedged(context.Background(), gen.Figure2()); err != nil {
		t.Fatalf("hedged without registry: %v\n%s", err, rep)
	}
}
