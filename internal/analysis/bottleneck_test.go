package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/rat"
	"repro/internal/sdf"
)

func TestFindBottleneckSimpleCycle(t *testing.T) {
	// Two loops sharing A: the A<->C loop (mean 11) dominates A<->B
	// (mean 2); the critical channels are exactly the A<->C pair.
	g := sdf.NewGraph("t")
	a := g.MustAddActor("A", 2)
	b := g.MustAddActor("B", 2)
	c := g.MustAddActor("C", 9)
	abCh := g.MustAddChannel(a, b, 1, 1, 1)
	baCh := g.MustAddChannel(b, a, 1, 1, 1)
	acCh := g.MustAddChannel(a, c, 1, 1, 0)
	caCh := g.MustAddChannel(c, a, 1, 1, 1)
	res, err := FindBottleneck(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unbounded {
		t.Fatal("unexpected unbounded")
	}
	if !res.Period.Equal(rat.FromInt(11)) {
		t.Errorf("period = %v, want 11", res.Period)
	}
	critical := make(map[sdf.ChannelID]bool)
	for _, ch := range res.CriticalChannels {
		critical[ch] = true
	}
	if !critical[caCh] {
		t.Errorf("critical channels %v missing C->A (%d)", res.CriticalChannels, caCh)
	}
	if critical[abCh] || critical[baCh] {
		t.Errorf("slack loop A<->B reported critical: %v", res.CriticalChannels)
	}
	_ = acCh // zero-token channel: carries no critical token by definition
}

func TestFindBottleneckFigure1(t *testing.T) {
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindBottleneck(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Period.Equal(rat.FromInt(23)) {
		t.Errorf("period = %v, want 23", res.Period)
	}
	// The single token (on A6 -> A1) is necessarily the critical one.
	if len(res.CriticalTokens) != 1 || res.CriticalTokens[0] != 0 {
		t.Errorf("critical tokens = %v, want [0]", res.CriticalTokens)
	}
}

func TestFindBottleneckUnbounded(t *testing.T) {
	g := sdf.NewGraph("pipe")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	res, err := FindBottleneck(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unbounded {
		t.Error("pipeline not reported unbounded")
	}
}

// Property: the critical cycle's mean, recomputed from the matrix entries
// along the reported token cycle, equals the period; and adding a token
// to a critical channel never makes the graph slower.
func TestQuickBottleneckConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g, err := gen.RandomGraph(rng, gen.RandomOptions{
			Actors: 2 + rng.Intn(4), MaxRep: 3, MaxExec: 9, Chords: rng.Intn(3), SelfLoop: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := FindBottleneck(g)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		if res.Unbounded {
			continue
		}
		if len(res.CriticalChannels) == 0 {
			t.Fatalf("trial %d: no critical channels", trial)
		}
		// Adding a pipelining token to the first critical channel can
		// only help (or leave the period unchanged if another cycle also
		// attains it).
		relaxed := g.Clone()
		ch := res.CriticalChannels[0]
		if err := relaxed.SetInitial(ch, relaxed.Channel(ch).Initial+1); err != nil {
			t.Fatal(err)
		}
		tp, err := ComputeThroughput(relaxed, Matrix)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !tp.Unbounded && tp.Period.Cmp(res.Period) > 0 {
			t.Errorf("trial %d: adding a token to critical channel %d slowed the graph: %v > %v",
				trial, ch, tp.Period, res.Period)
		}
	}
}
