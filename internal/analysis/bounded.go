package analysis

import (
	"context"
	"fmt"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/rat"
	"repro/internal/sdf"
	"repro/internal/verify"
)

// DefaultBoundedCeiling is the uniform guard budget of a bounded
// analysis when BoundedOptions names none: enough for the reduction
// fixpoint plus the matrix engine on any graph the admission layer
// would accept, small enough that a hostile graph fails in O(1).
const DefaultBoundedCeiling = 1 << 16

// Bound is a two-sided enclosure of the iteration period Λ of a graph:
// Lower ≤ Λ ≤ Upper in exact rational arithmetic.
//
// Upper is the certified side — the conservative answer of the
// paper's Theorem 1, lifted through the reduction chain and proved by
// the accompanying verify.ReductionCert. A client scheduling against
// Upper (equivalently, against the throughput floor 1/Upper) can never
// over-promise.
//
// Lower is advisory: a cheap witness floor from self-loop dependency
// chains (passes.Facts.PeriodFloor), zero when the graph has no
// delayed self-loop. It exists to tell clients how loose the bound is,
// not to schedule against.
type Bound struct {
	// Unbounded is true when no dependency cycle constrains the steady
	// state; Lower and Upper are then meaningless.
	Unbounded bool
	// Lower and Upper enclose Λ: Lower ≤ Λ ≤ Upper.
	Lower rat.Rat
	Upper rat.Rat
	// Exact is true when the reduction chain contained no abstraction
	// step, so Upper is Λ itself (and Lower is still just the floor).
	Exact bool
	// Repetition is the repetition vector of the original graph.
	Repetition []int64
}

// BoundedOptions configures ComputeThroughputBounded.
type BoundedOptions struct {
	// CostCeiling is the hard uniform guard budget (states, firings,
	// actors, tokens) for the whole computation — reduction fixpoint,
	// matrix engine, certificate construction. 0 means
	// DefaultBoundedCeiling; negative lifts the ceiling (tests only).
	CostCeiling int64
}

// ComputeThroughputBounded is the brownout engine: the cheapest
// analysis that still returns a certified answer. It runs only the
// reduction fixpoint — with the paper's abstraction rule (Defs 3–4)
// enabled, so a homogeneous cyclic graph collapses to one actor — plus
// the matrix engine on whatever the fixpoint left, all under a hard
// cost ceiling, and returns a Bound enclosing the true period together
// with a conservativeness certificate.
//
// The certificate is the full lift chain (verify.ReductionCert): each
// exact step is re-checked structurally and the abstraction step
// re-proves Theorem 1 via the AbstractionCert machinery, anchored in
// the inner matrix certificate of the reduced graph. It is checked
// here against g in exact arithmetic before being returned, and
// remains independently checkable by any client holding the original
// graph. Cert.Bound is true exactly when the chain crossed an
// abstraction step, i.e. when Upper is a Theorem 1 bound rather than
// the exact period.
func ComputeThroughputBounded(ctx context.Context, g *sdf.Graph, opts BoundedOptions) (Bound, *verify.ReductionCert, error) {
	var b Bound
	var cert *verify.ReductionCert
	err := guard.Protect("bounded", "bounded-throughput", func() error {
		var err error
		b, cert, err = computeThroughputBounded(ctx, g, opts)
		return err
	})
	if err != nil {
		return Bound{}, nil, err
	}
	return b, cert, nil
}

func computeThroughputBounded(ctx context.Context, g *sdf.Graph, opts BoundedOptions) (Bound, *verify.ReductionCert, error) {
	fail := func(err error) (Bound, *verify.ReductionCert, error) {
		return Bound{}, nil, fmt.Errorf("analysis: bounded: %w", err)
	}
	ceiling := opts.CostCeiling
	if ceiling == 0 {
		ceiling = DefaultBoundedCeiling
	}
	// The ceiling replaces whatever budget the context carried: bounded
	// mode exists to cap cost below the exact path's allowance, and the
	// guard budget is the one mechanism every loop already polls.
	bctx := guard.WithBudget(ctx, guard.Uniform(ceiling))

	reg := obs.FromContext(ctx)
	sp := reg.StartSpan("analysis.bounded-reduce")
	red, err := passes.Reduce(bctx, g, passes.Options{Rules: passes.AllRules()})
	sp.Finish()
	if err != nil {
		return fail(err)
	}
	if red.OriginalRepetition() == nil {
		return fail(fmt.Errorf("%w: graph is inconsistent", sdf.ErrInconsistent))
	}

	// The matrix engine only, on the reduced graph: it is the cheap
	// engine (symbolic iteration + Karp), and after an abstraction step
	// the graph is a single self-looped actor it answers in microseconds.
	_, inner, err := ComputeThroughputCertified(bctx, red.Final, Matrix)
	if err != nil {
		return fail(err)
	}
	cert, err := red.LiftCert(inner)
	if err != nil {
		return fail(err)
	}
	// The conservativeness re-proof, in exact arithmetic against the
	// original graph — the certificate chain, not the engine, is what a
	// bounded answer asks the client to trust.
	if err := cert.Check(bctx, g); err != nil {
		return fail(err)
	}

	b := Bound{
		Unbounded:  cert.Unbounded,
		Exact:      !cert.Bound,
		Repetition: red.OriginalRepetition(),
	}
	if cert.Unbounded {
		return b, cert, nil
	}
	b.Upper = cert.Period
	if b.Exact {
		b.Lower = cert.Period
		return b, cert, nil
	}
	if floor, ok := passes.NewFacts(g).PeriodFloor(); ok {
		b.Lower = floor
	}
	if b.Lower.Cmp(b.Upper) > 0 {
		// Both sides are proved, so a crossing is a bug in one of them;
		// refuse loudly rather than hand out an empty interval.
		return fail(fmt.Errorf("%w: period floor %v exceeds certified ceiling %v",
			verify.ErrInvalid, b.Lower, b.Upper))
	}
	return b, cert, nil
}
