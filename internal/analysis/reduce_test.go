package analysis

import (
	"context"
	"testing"

	"repro/internal/guard"
	"repro/internal/sdf"
)

// reducibleGraph builds a graph every exact rule bites on: a fusible
// A→B link, a rate-gcd channel, a redundant parallel channel pair and a
// dead tail actor hanging off the token-bearing cycle.
func reducibleGraph(t *testing.T) *sdf.Graph {
	t.Helper()
	g := sdf.NewGraph("reducible")
	a := g.MustAddActor("A", 2)
	b := g.MustAddActor("B", 3)
	c := g.MustAddActor("C", 1)
	d := g.MustAddActor("D", 7)
	g.MustAddChannel(a, b, 2, 2, 0) // fusible: same rate, no tokens
	g.MustAddChannel(b, c, 2, 4, 0) // gcd 2
	g.MustAddChannel(c, a, 2, 1, 2)
	g.MustAddChannel(c, a, 2, 1, 8) // redundant: dominated by the 2-token twin
	g.MustAddChannel(c, d, 1, 1, 0) // dead tail
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func unlimited() context.Context {
	return guard.WithBudget(context.Background(), guard.Unlimited())
}

// TestReducedMatchesDirect drives every engine through the reducing
// front door and the direct back door and demands identical answers in
// exact rational arithmetic.
func TestReducedMatchesDirect(t *testing.T) {
	g := reducibleGraph(t)
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		direct, err := ComputeThroughputDirectCtx(unlimited(), g, m)
		if err != nil {
			t.Fatalf("%v direct: %v", m, err)
		}
		reduced, err := ComputeThroughputCtx(unlimited(), g, m)
		if err != nil {
			t.Fatalf("%v reduced: %v", m, err)
		}
		if direct.Unbounded != reduced.Unbounded {
			t.Fatalf("%v: unbounded mismatch direct=%v reduced=%v", m, direct.Unbounded, reduced.Unbounded)
		}
		if !direct.Unbounded && !direct.Period.Equal(reduced.Period) {
			t.Fatalf("%v: period mismatch direct=%v reduced=%v", m, direct.Period, reduced.Period)
		}
		if len(reduced.Repetition) != g.NumActors() {
			t.Fatalf("%v: lifted repetition has %d entries, want %d", m, len(reduced.Repetition), g.NumActors())
		}
		for a := range direct.Repetition {
			if direct.Repetition[a] != reduced.Repetition[a] {
				t.Fatalf("%v: repetition[%d] = %d, want %d", m, a, reduced.Repetition[a], direct.Repetition[a])
			}
		}
	}
}

// TestReducedUnboundedGraph checks the reducer path on a cycle-free
// graph: the dead-actor rule collapses it and Unbounded must lift
// through unchanged.
func TestReducedUnboundedGraph(t *testing.T) {
	g := sdf.NewGraph("pipe")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 4)
	g.MustAddChannel(a, b, 2, 1, 0)
	tp, err := ComputeThroughputCtx(unlimited(), g, Matrix)
	if err != nil {
		t.Fatalf("ComputeThroughputCtx: %v", err)
	}
	if !tp.Unbounded {
		t.Fatalf("want unbounded, got period %v", tp.Period)
	}
}

// TestHedgedReduce races the engines on the reduced graph and checks
// the lifted answer matches the direct hedged answer, with the lifted
// certificate chain re-verified against the original graph.
func TestHedgedReduce(t *testing.T) {
	g := reducibleGraph(t)
	direct, _, err := ComputeThroughputHedgedOpts(unlimited(), g, HedgeOptions{CrossCheck: true})
	if err != nil {
		t.Fatalf("direct hedged: %v", err)
	}
	tp, rep, err := ComputeThroughputHedgedOpts(unlimited(), g, HedgeOptions{CrossCheck: true, Reduce: true})
	if err != nil {
		t.Fatalf("reduced hedged: %v", err)
	}
	if tp.Unbounded || !tp.Period.Equal(direct.Period) {
		t.Fatalf("lifted hedged answer %v (unbounded=%v), want %v", tp.Period, tp.Unbounded, direct.Period)
	}
	if len(rep.Reduction) == 0 {
		t.Fatalf("report carries no reduction trace")
	}
	if rep.ReducedCert == nil {
		t.Fatalf("report carries no lifted certificate")
	}
	if err := rep.ReducedCert.Check(unlimited(), g); err != nil {
		t.Fatalf("lifted certificate rejected on re-check: %v", err)
	}
	if got := rep.String(); got == "" {
		t.Fatalf("empty report rendering")
	}
}
