package analysis

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/maxplus"
	"repro/internal/sdf"
)

// LatencyReport summarises the latency structure of one graph iteration,
// derived from the symbolic max-plus iteration matrix (the same object
// the paper's Algorithm 1 computes). All quantities assume every initial
// token available at time 0.
type LatencyReport struct {
	// Makespan is the completion time of one iteration from a cold start.
	Makespan int64
	// MaxTokenLatency is the largest finite coefficient g_{j,k}: the
	// longest combinational delay from any initial token to any token
	// produced within the same iteration.
	MaxTokenLatency int64
	// CriticalSource and CriticalTarget are token indices attaining
	// MaxTokenLatency.
	CriticalSource, CriticalTarget int
	// TokenProduction[k] is the production time of token k in the first
	// iteration (−1 when it depends on no initial token).
	TokenProduction []int64
}

// ComputeLatency derives the latency report of g.
func ComputeLatency(g *sdf.Graph) (*LatencyReport, error) {
	return ComputeLatencyCtx(guard.WithBudget(context.Background(), guard.Unlimited()), g)
}

// ComputeLatencyCtx is ComputeLatency under the resilience runtime
// carried by ctx: the symbolic iteration honours the deadline and the
// budget, and the whole derivation runs behind panic isolation.
func ComputeLatencyCtx(ctx context.Context, g *sdf.Graph) (*LatencyReport, error) {
	var rep *LatencyReport
	err := guard.Protect("latency", "latency", func() error {
		var err error
		rep, err = computeLatency(ctx, g)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func computeLatency(ctx context.Context, g *sdf.Graph) (*LatencyReport, error) {
	r, err := core.SymbolicIterationCtx(ctx, g)
	if err != nil {
		return nil, fmt.Errorf("analysis: latency: %w", err)
	}
	rep := &LatencyReport{CriticalSource: -1, CriticalTarget: -1}
	if ms, ok := r.Makespan(); ok {
		rep.Makespan = ms
	}
	n := r.NumTokens()
	maxLat := maxplus.NegInf
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			if v := r.G(j, k); v > maxLat {
				maxLat = v
				rep.CriticalSource, rep.CriticalTarget = j, k
			}
		}
	}
	if !maxLat.IsNegInf() {
		rep.MaxTokenLatency = maxLat.Int()
	}
	zero := make(maxplus.Vec, n) // all zeros: cold start
	prod := r.Matrix.Apply(zero)
	rep.TokenProduction = make([]int64, n)
	for k, v := range prod {
		if v.IsNegInf() {
			rep.TokenProduction[k] = -1
		} else {
			rep.TokenProduction[k] = v.Int()
		}
	}
	return rep, nil
}

// MakespanAfter returns the completion time of the k-th iteration (k >= 1)
// of g from a cold start: the time when the last firing belonging to
// iterations 1…k ends under self-timed execution. It is computed in
// O(log k) matrix products via the max-plus power of the iteration matrix,
// so it stays cheap even for very large k. ok is false when no firing
// depends on any initial token.
func MakespanAfter(g *sdf.Graph, k int) (int64, bool, error) {
	if k < 1 {
		return 0, false, fmt.Errorf("analysis: MakespanAfter needs k >= 1")
	}
	r, err := core.SymbolicIteration(g)
	if err != nil {
		return 0, false, fmt.Errorf("analysis: makespan: %w", err)
	}
	n := r.NumTokens()
	x := make(maxplus.Vec, n) // all zeros: cold start
	if k > 1 {
		x = r.Matrix.Power(k - 1).Apply(x)
	}
	// End of the slowest firing of iteration k: the completion vector
	// applied to the token times at the start of that iteration.
	best := maxplus.NegInf
	for j, c := range r.Completion {
		if c.IsNegInf() || x[j].IsNegInf() {
			continue
		}
		if s := c.Add(x[j]); s > best {
			best = s
		}
	}
	if best.IsNegInf() {
		return 0, false, nil
	}
	return best.Int(), true, nil
}
