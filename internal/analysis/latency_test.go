package analysis

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sdf"
	"repro/internal/sim"
)

func TestComputeLatencyFigure1(t *testing.T) {
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ComputeLatency(g)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: a single execution takes 23 time units.
	if rep.Makespan != 23 {
		t.Errorf("Makespan = %d, want 23", rep.Makespan)
	}
	// One initial token, regenerated after the full 23-unit iteration.
	if len(rep.TokenProduction) != 1 || rep.TokenProduction[0] != 23 {
		t.Errorf("TokenProduction = %v, want [23]", rep.TokenProduction)
	}
	if rep.MaxTokenLatency != 23 {
		t.Errorf("MaxTokenLatency = %d, want 23", rep.MaxTokenLatency)
	}
	if rep.CriticalSource != 0 || rep.CriticalTarget != 0 {
		t.Errorf("critical pair = (%d, %d), want (0, 0)", rep.CriticalSource, rep.CriticalTarget)
	}
}

func TestComputeLatencyFigure3(t *testing.T) {
	g := gen.Figure3(2)
	rep, err := ComputeLatency(g)
	if err != nil {
		t.Fatal(err)
	}
	// From the verified symbolic trace: R ends at max(+8,+8,+5,+2) = 8.
	if rep.Makespan != 8 {
		t.Errorf("Makespan = %d, want 8", rep.Makespan)
	}
	if rep.MaxTokenLatency != 8 {
		t.Errorf("MaxTokenLatency = %d, want 8", rep.MaxTokenLatency)
	}
	want := []int64{6, 8, 8, 8}
	for k, w := range want {
		if rep.TokenProduction[k] != w {
			t.Errorf("TokenProduction[%d] = %d, want %d", k, rep.TokenProduction[k], w)
		}
	}
}

func TestComputeLatencyNoTokens(t *testing.T) {
	g := sdf.NewGraph("pipe")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 4)
	g.MustAddChannel(a, b, 1, 1, 0)
	rep, err := ComputeLatency(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0 || rep.CriticalSource != -1 {
		t.Errorf("report = %+v, want empty", rep)
	}
}

func TestComputeLatencyDeadlock(t *testing.T) {
	g := sdf.NewGraph("dead")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(b, a, 1, 1, 0)
	if _, err := ComputeLatency(g); err == nil {
		t.Error("deadlocked graph analysed without error")
	}
}

func TestMakespanAfterFigure1(t *testing.T) {
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	// One initial token, period 23: iteration k completes at 23k.
	for _, k := range []int{1, 2, 5, 100, 1 << 20} {
		ms, ok, err := MakespanAfter(g, k)
		if err != nil || !ok {
			t.Fatalf("k=%d: %v %v", k, ok, err)
		}
		if ms != int64(23*k) {
			t.Errorf("MakespanAfter(%d) = %d, want %d", k, ms, 23*k)
		}
	}
	if _, _, err := MakespanAfter(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// The analytical makespan must equal the simulator's horizon for every
// iteration count: the strongest latency cross-check in the suite.
func TestMakespanAfterMatchesSimulator(t *testing.T) {
	graphs := []*sdf.Graph{gen.Figure3(2), gen.Figure2()}
	g1, err := gen.Figure1(8)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g1)
	for _, g := range graphs {
		for _, k := range []int{1, 2, 3, 7, 15} {
			ms, ok, err := MakespanAfter(g, k)
			if err != nil || !ok {
				t.Fatalf("%s k=%d: %v %v", g.Name(), k, ok, err)
			}
			tr, err := sim.Run(g, int64(k))
			if err != nil {
				t.Fatal(err)
			}
			if tr.Horizon != ms {
				t.Errorf("%s: MakespanAfter(%d) = %d, simulator horizon %d",
					g.Name(), k, ms, tr.Horizon)
			}
		}
	}
}
