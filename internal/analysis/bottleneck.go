package analysis

import (
	"fmt"

	"repro/internal/maxplus"
	"repro/internal/rat"

	"repro/internal/core"
	"repro/internal/sdf"
)

// Bottleneck identifies the timing-critical part of a graph: the channels
// whose initial tokens lie on a critical cycle of the max-plus iteration
// matrix. The paper's symbolic machinery makes this cheap — the critical
// cycle of the matrix's precedence graph names critical *tokens*, and the
// token numbering maps them back onto the channels that hold them. Those
// are the places where adding pipelining tokens (or speeding up the
// actors between them) improves throughput; anywhere else is slack.
type Bottleneck struct {
	// Period is the iteration period (the critical cycle mean).
	Period rat.Rat
	// CriticalTokens lists the initial-token indices on one critical
	// cycle.
	CriticalTokens []int
	// CriticalChannels lists the channels holding those tokens, deduped,
	// in token order.
	CriticalChannels []sdf.ChannelID
	// Unbounded is true when no cycle constrains the steady state.
	Unbounded bool
}

// FindBottleneck analyses g and returns its critical cycle in terms of
// the original graph's channels.
func FindBottleneck(g *sdf.Graph) (*Bottleneck, error) {
	r, err := core.SymbolicIteration(g)
	if err != nil {
		return nil, fmt.Errorf("analysis: bottleneck: %w", err)
	}
	lam, hasCycle, err := r.Matrix.Eigenvalue()
	if err != nil {
		return nil, fmt.Errorf("analysis: bottleneck: %w", err)
	}
	if !hasCycle {
		return &Bottleneck{Unbounded: true}, nil
	}
	cycle, err := criticalCycle(r.Matrix, lam)
	if err != nil {
		return nil, fmt.Errorf("analysis: bottleneck: %w", err)
	}
	b := &Bottleneck{Period: lam, CriticalTokens: cycle}
	seen := make(map[sdf.ChannelID]bool)
	for _, tok := range cycle {
		ch := r.TokenChannel[tok]
		if !seen[ch] {
			seen[ch] = true
			b.CriticalChannels = append(b.CriticalChannels, ch)
		}
	}
	return b, nil
}

// criticalCycle extracts one cycle of mean lam from the matrix's
// precedence graph: normalise by lam (scaled to integers), then walk
// zero-weight tight edges (B ⊗ B*)_cc == 0 from a critical node.
func criticalCycle(m *maxplus.Matrix, lam rat.Rat) ([]int, error) {
	n := m.Size()
	num, den := lam.Num(), lam.Den()
	b := maxplus.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := m.At(i, j); !v.IsNegInf() {
				b.Set(i, j, maxplus.T(int64(v)*den-num))
			}
		}
	}
	star, err := b.Star()
	if err != nil {
		return nil, err
	}
	plus := b.Mul(star)
	start := -1
	for c := 0; c < n; c++ {
		if plus.At(c, c) == 0 {
			start = c
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("no critical node found")
	}
	// Follow tight edges: maintain the accumulated weight p of the walk
	// start → v; an edge v → w (entry (w, v)) continues a zero-weight
	// cycle through start exactly when p + weight + longestPath(w→start)
	// equals zero.
	var cycle []int
	v := start
	p := int64(0)
	for {
		cycle = append(cycle, v)
		next := -1
		var nextW int64
		for w := 0; w < n; w++ {
			e := b.At(w, v)
			if e.IsNegInf() {
				continue
			}
			back := star.At(start, w)
			if back.IsNegInf() {
				continue
			}
			if p+int64(e)+int64(back) == 0 {
				next = w
				nextW = int64(e)
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("critical cycle walk stuck at token %d", v)
		}
		if next == start {
			return cycle, nil
		}
		v = next
		p += nextW
		if len(cycle) > n {
			return nil, fmt.Errorf("critical cycle walk did not close")
		}
	}
}
