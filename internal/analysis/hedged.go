package analysis

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/sdf"
	"repro/internal/verify"
)

// ErrEngineDisagreement marks two engines that both produced *verified*
// throughput certificates for the same graph but claim different
// answers. With the matrix anchor this cannot happen (the anchor is
// fully re-derived from the graph); the HSDF anchor trusts the
// converted graph's edge set and delays, which is the documented gap a
// disagreement squeezes through.
var ErrEngineDisagreement = errors.New("analysis: verified engines disagree")

// DisagreementError carries both verified answers and their
// certificates so a caller (or a human) can adjudicate: each
// certificate pinpoints the reference precedence graph its engine's
// claim is provably exact for.
type DisagreementError struct {
	MethodA, MethodB Method
	ResultA, ResultB Throughput
	CertA, CertB     *verify.ThroughputCert
}

func (e *DisagreementError) Error() string {
	return fmt.Sprintf("analysis: verified engines disagree: %s proves %s, %s proves %s",
		e.MethodA, describeThroughput(e.ResultA), e.MethodB, describeThroughput(e.ResultB))
}

// Unwrap lets errors.Is(err, ErrEngineDisagreement) classify the error.
func (e *DisagreementError) Unwrap() error { return ErrEngineDisagreement }

func describeThroughput(tp Throughput) string {
	if tp.Unbounded {
		return "unbounded throughput"
	}
	return fmt.Sprintf("period %v", tp.Period)
}

// HedgeOptions configures ComputeThroughputHedgedOpts.
type HedgeOptions struct {
	// Engines lists the engines to race; nil races Matrix, StateSpace
	// and HSDF.
	Engines []Method
	// CrossCheck waits for every engine instead of cancelling the
	// losers once one verified answer exists, then compares all
	// verified answers. The winner is the first verified engine in
	// Engines order, which makes reports and disagreements
	// deterministic; the price is the wall time of the slowest engine.
	CrossCheck bool
	// Gate, when non-nil, is consulted once per engine before its racer
	// goroutine is spawned. A non-nil error removes the engine from the
	// race entirely — no goroutine, no meter, no budget consumption —
	// and records it in the report as skipped with the error's text.
	// The serving layer points this at per-engine circuit breakers so a
	// tripped engine is shed instead of raced. The gate error is
	// surfaced verbatim, so gates that reserve state on admission (a
	// half-open breaker's probe slot) see exactly one engine run per
	// nil return.
	Gate func(m Method) error
	// Reduce runs the exact reduction fixpoint of internal/passes before
	// the race: every engine analyses the reduced graph and the winning
	// answer is lifted back to the original, with the lifted certificate
	// chain re-checked against the original graph and published in the
	// report. Off by default; the serving layer reduces before dispatch
	// and races the already-reduced graph instead.
	Reduce bool
}

// HedgeReport extends the resilient ladder's report with the
// certificates of every engine that produced a verified answer.
type HedgeReport struct {
	ResilientReport
	// Certificates holds the verified certificate of every engine that
	// finished with an answer (the winner and any cross-checked peers).
	// With HedgeOptions.Reduce these certify the reduced graph; the
	// lifted chain for the original graph is ReducedCert.
	Certificates map[Method]*verify.ThroughputCert
	// Reduction is the fixpoint trace when HedgeOptions.Reduce shrank
	// the graph before the race; empty otherwise.
	Reduction []string
	// ReducedCert is the winner's certificate lifted through the
	// reduction chain and re-verified against the original graph. Nil
	// unless HedgeOptions.Reduce applied at least one rewrite.
	ReducedCert *verify.ReductionCert
}

// String renders the race for humans, one line per engine (plus one per
// reduction step when the race ran on a reduced graph).
func (r *HedgeReport) String() string {
	var b strings.Builder
	for _, line := range r.Reduction {
		fmt.Fprintf(&b, "%-11s %s\n", "reduce", line)
	}
	for _, a := range r.Attempts {
		switch {
		case r.Answered && a.Method == r.Winner:
			fmt.Fprintf(&b, "%-11s answered\n", a.Method)
		case a.Skipped:
			fmt.Fprintf(&b, "%-11s skipped: %s\n", a.Method, a.Reason)
		case a.Err == nil:
			fmt.Fprintf(&b, "%-11s %s\n", a.Method, a.Reason)
		default:
			fmt.Fprintf(&b, "%-11s failed: %s\n", a.Method, a.Reason)
		}
	}
	return b.String()
}

// ComputeThroughputHedged races the certified engines concurrently
// under the budget carried by ctx: the first engine whose answer
// survives independent verification wins, and the losers are cancelled.
func ComputeThroughputHedged(ctx context.Context, g *sdf.Graph) (Throughput, *HedgeReport, error) {
	return ComputeThroughputHedgedOpts(ctx, g, HedgeOptions{})
}

// ComputeThroughputHedgedOpts is ComputeThroughputHedged with explicit
// options. Every engine runs in its own goroutine behind panic
// isolation and produces a self-verified certificate
// (ComputeThroughputCertified); an unverifiable answer loses the race
// as a failure rather than winning it. The function never returns
// before every racer has delivered its outcome, so it leaks no
// goroutines, and if two engines both return *verified* but different
// answers the result is a *DisagreementError carrying both
// certificates — never a silent pick.
func ComputeThroughputHedgedOpts(ctx context.Context, g *sdf.Graph, opts HedgeOptions) (Throughput, *HedgeReport, error) {
	engines := opts.Engines
	if len(engines) == 0 {
		engines = []Method{Matrix, StateSpace, HSDF}
	}
	// Optional pre-stage: shrink once, race every engine on the reduced
	// graph, lift the winner. A reducer failure (budget, cancellation)
	// is the race's failure — the engines would hit the same wall.
	target := g
	var red *passes.Reduction
	if opts.Reduce {
		r, err := passes.Reduce(ctx, g, passes.Options{})
		if err != nil {
			return Throughput{}, nil, err
		}
		if len(r.Steps) > 0 {
			target, red = r.Final, r
		}
	}
	// The gate sheds engines before anything is spent on them: a gated
	// engine gets no goroutine, no meter and no budget charge, only a
	// skipped line in the report.
	gated := make(map[Method]error)
	racers := make([]Method, 0, len(engines))
	for _, m := range engines {
		if opts.Gate != nil {
			if err := opts.Gate(m); err != nil {
				gated[m] = err
				continue
			}
		}
		racers = append(racers, m)
	}
	reg := obs.FromContext(ctx)
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		tp   Throughput
		cert *verify.ThroughputCert
		err  error
		wall time.Duration
	}
	type finish struct {
		method Method
		outcome
	}
	// Buffered to the field size so every racer can deliver and exit
	// even if the receive loop has moved on.
	results := make(chan finish, len(racers))
	var wg sync.WaitGroup
	for _, m := range racers {
		wg.Add(1)
		go func(m Method) {
			defer wg.Done()
			var o outcome
			start := reg.Now()
			// Isolation on top of the isolation inside the certified
			// engine: a panic anywhere in this goroutine must lose the
			// race, not kill the process.
			o.err = guard.Protect(m.String(), "hedged", func() error {
				var err error
				o.tp, o.cert, err = ComputeThroughputCertified(raceCtx, target, m)
				return err
			})
			o.wall = reg.Now().Sub(start)
			results <- finish{method: m, outcome: o}
		}(m)
	}

	byMethod := make(map[Method]outcome, len(racers))
	var winner Method
	won := false
	for range racers {
		f := <-results
		byMethod[f.method] = f.outcome
		if f.err == nil && !won && !opts.CrossCheck {
			// First verified answer wins; losers observe the
			// cancellation at their next budget checkpoint.
			winner, won = f.method, true
			cancel()
		}
	}
	wg.Wait()
	if opts.CrossCheck {
		// Deterministic winner: the first verified engine in race order.
		for _, m := range racers {
			if byMethod[m].err == nil {
				winner, won = m, true
				break
			}
		}
	}

	rep := &HedgeReport{Certificates: make(map[Method]*verify.ThroughputCert)}
	var errs []error
	for _, m := range engines {
		if gerr, ok := gated[m]; ok {
			rep.Attempts = append(rep.Attempts, EngineAttempt{
				Method: m, Skipped: true,
				Reason: fmt.Sprintf("gated: %v", gerr),
				Err:    gerr,
			})
			if !won {
				errs = append(errs, fmt.Errorf("%v: %w", m, gerr))
			}
			continue
		}
		o := byMethod[m]
		switch {
		case o.err == nil && won && m == winner:
			rep.Attempts = append(rep.Attempts, EngineAttempt{Method: m, Wall: o.wall})
		case o.err == nil:
			rep.Attempts = append(rep.Attempts, EngineAttempt{
				Method: m, Wall: o.wall,
				Reason: fmt.Sprintf("verified, cross-checked against the %s engine", winner),
			})
		case won && errors.Is(o.err, guard.ErrCanceled) && !opts.CrossCheck:
			rep.Attempts = append(rep.Attempts, EngineAttempt{
				Method: m, Skipped: true, Wall: o.wall,
				Reason: fmt.Sprintf("cancelled: the %s engine answered first", winner),
			})
		default:
			rep.Attempts = append(rep.Attempts, EngineAttempt{Method: m, Reason: o.err.Error(), Err: o.err, Wall: o.wall})
			errs = append(errs, fmt.Errorf("%v: %w", m, o.err))
		}
		if o.err == nil {
			rep.Certificates[m] = o.cert
		}
	}
	countAttempts(reg, "hedge", rep.Attempts)
	if !won {
		reg.Counter(obs.MetricHedgeRaces, "outcome", "failed").Inc()
		return Throughput{}, rep, fmt.Errorf("analysis: no engine produced a verified throughput: %w", errors.Join(errs...))
	}
	rep.Winner, rep.Answered = winner, true

	// Any second verified answer must agree with the winner's; a
	// conflict is structured evidence, not a coin flip.
	win := byMethod[winner]
	for _, m := range racers {
		o := byMethod[m]
		if m == winner || o.err != nil {
			continue
		}
		if o.tp.Unbounded != win.tp.Unbounded ||
			(!o.tp.Unbounded && !o.tp.Period.Equal(win.tp.Period)) {
			reg.Counter(obs.MetricHedgeRaces, "outcome", "disagreement").Inc()
			reg.Emit("hedge.disagreement", "winner", winner.String(), "peer", m.String())
			return Throughput{}, rep, &DisagreementError{
				MethodA: winner, MethodB: m,
				ResultA: win.tp, ResultB: o.tp,
				CertA: win.cert, CertB: o.cert,
			}
		}
	}
	reg.Counter(obs.MetricHedgeRaces, "outcome", "answered").Inc()
	reg.Counter(obs.MetricHedgeWins, "engine", winner.String()).Inc()
	if red != nil {
		rep.Reduction = red.Trace()
		lifted, err := red.LiftCert(win.cert)
		if err != nil {
			return Throughput{}, rep, fmt.Errorf("analysis: hedged lift: %w", err)
		}
		if err := lifted.Check(ctx, g); err != nil {
			return Throughput{}, rep, fmt.Errorf("analysis: hedged lifted certificate rejected: %w", err)
		}
		rep.ReducedCert = lifted
		return Throughput{
			Unbounded:  lifted.Unbounded,
			Period:     lifted.Period,
			Repetition: red.OriginalRepetition(),
		}, rep, nil
	}
	return win.tp, rep, nil
}
