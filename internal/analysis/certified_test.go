package analysis

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/guard"
)

func TestCertifiedEnginesAgreeAndVerify(t *testing.T) {
	g := gen.Figure2()
	ctx := context.Background()
	var periods []string
	for _, m := range []Method{Matrix, StateSpace, HSDF} {
		tp, cert, err := ComputeThroughputCertified(ctx, g, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if cert == nil {
			t.Fatalf("%v: nil certificate", m)
		}
		if tp.Unbounded {
			t.Fatalf("%v: figure 2 reported unbounded", m)
		}
		if !tp.Period.Equal(cert.Period) || cert.Unbounded {
			t.Errorf("%v: certificate claims %v (unbounded=%v), result is %v",
				m, cert.Period, cert.Unbounded, tp.Period)
		}
		// Anchor shape: matrix-family engines carry the matrix anchor,
		// the classical engine the converted graph.
		if m == HSDF {
			if cert.HSDF == nil || cert.Matrix != nil {
				t.Errorf("%v: wrong anchor", m)
			}
		} else if cert.Matrix == nil || cert.HSDF != nil {
			t.Errorf("%v: wrong anchor", m)
		}
		// The certificate re-verifies from scratch.
		if err := cert.Check(ctx, g); err != nil {
			t.Errorf("%v: certificate does not re-verify: %v", m, err)
		}
		periods = append(periods, tp.Period.String())
	}
	if periods[0] != periods[1] || periods[0] != periods[2] {
		t.Errorf("certified engines disagree: %v", periods)
	}
}

func TestCertifiedUnknownMethod(t *testing.T) {
	g := gen.Figure2()
	if _, _, err := ComputeThroughputCertified(context.Background(), g, Method(42)); err == nil {
		t.Error("unknown method accepted")
	}
}

// An injected panic inside the verification layer itself must be
// isolated by the engine wrapper: the process survives and the caller
// sees a structured engine failure.
func TestCertifiedInjectedPanicIsolated(t *testing.T) {
	g := gen.Figure2()
	b := guard.Unlimited()
	b.CheckEvery = 1
	ctx := guard.WithBudget(context.Background(), b)
	ctx = guard.WithInjector(ctx, guard.NewInjector(
		guard.Fault{Engine: "verify", Point: guard.PointCheckpoint, Mode: guard.ModePanic},
	))
	_, _, err := ComputeThroughputCertified(ctx, g, Matrix)
	if !errors.Is(err, guard.ErrEngineFailed) {
		t.Fatalf("err = %v, want injected panic surfaced as ErrEngineFailed", err)
	}
}
