package analysis

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/sdf"
)

// Satellite of the verification PR: the report renderer builds its
// output incrementally, so cover all three rendering branches with a
// hand-built report.
func TestResilientReportStringBranches(t *testing.T) {
	rep := &ResilientReport{
		Attempts: []EngineAttempt{
			{Method: Matrix, Reason: "boom", Err: errors.New("boom")},
			{Method: StateSpace},
			{Method: HSDF, Skipped: true, Reason: "too big"},
		},
		Winner:   StateSpace,
		Answered: true,
	}
	got := rep.String()
	want := "matrix      failed: boom\n" +
		"statespace  answered\n" +
		"hsdf        skipped: too big\n"
	if got != want {
		t.Errorf("String() =\n%q\nwant\n%q", got, want)
	}
}

// The HSDF rung is skipped by the static precheck when the iteration
// length exceeds the actor budget; injected failures push the ladder
// past the first two rungs deterministically so the skip is observable.
func TestResilientPrecheckSizeSkip(t *testing.T) {
	g := gen.Figure2()
	b := guard.Unlimited()
	b.CheckEvery = 1
	b.MaxHSDFActors = 1
	ctx := guard.WithBudget(context.Background(), b)
	ctx = guard.WithInjector(ctx, guard.NewInjector(
		guard.Fault{Engine: "matrix", Point: guard.PointCheckpoint, Mode: guard.ModeError},
		guard.Fault{Engine: "statespace", Point: guard.PointCheckpoint, Mode: guard.ModeError},
	))
	_, rep, err := ComputeThroughputResilient(ctx, g)
	if err == nil {
		t.Fatal("ladder answered although every rung was disabled")
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("report has %d attempts, want 3:\n%s", len(rep.Attempts), rep)
	}
	for _, at := range rep.Attempts[:2] {
		if at.Skipped || !errors.Is(at.Err, guard.ErrEngineFailed) {
			t.Errorf("%v: want an injected engine failure, got %+v", at.Method, at)
		}
	}
	hsdf := rep.Attempts[2]
	if !hsdf.Skipped || !strings.Contains(hsdf.Reason, "exceeds the HSDF actor budget") {
		t.Errorf("hsdf rung not skipped by the size precheck: %+v", hsdf)
	}
}

func TestResilientSkipsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rep, err := ComputeThroughputResilient(ctx, gen.Figure2())
	if err == nil {
		t.Fatal("cancelled context still produced an answer")
	}
	if rep.Answered || len(rep.Attempts) != 3 {
		t.Fatalf("unexpected report shape:\n%s", rep)
	}
	for _, at := range rep.Attempts {
		if !at.Skipped || !strings.Contains(at.Reason, "context done") {
			t.Errorf("%v: want a context-done skip, got %+v", at.Method, at)
		}
	}
}

func TestResilientAllEnginesFailedReport(t *testing.T) {
	g := sdf.NewGraph("inconsistent")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 2, 3, 0)
	g.MustAddChannel(b, a, 1, 1, 1)
	_, rep, err := ComputeThroughputResilient(context.Background(), g)
	if err == nil || rep.Answered {
		t.Fatal("inconsistent graph produced an answer")
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("report has %d attempts, want 3", len(rep.Attempts))
	}
	// The first two rungs fail on the balance equations; the HSDF rung
	// is skipped because the lint size estimate is unavailable on an
	// inconsistent graph.
	s := rep.String()
	if strings.Count(s, "failed:") != 2 {
		t.Errorf("report should render two failures:\n%s", s)
	}
	if !rep.Attempts[2].Skipped || !strings.Contains(rep.Attempts[2].Reason, "size estimate unavailable") {
		t.Errorf("hsdf rung should be skipped by the unavailable size estimate: %+v", rep.Attempts[2])
	}
}

// A panic injected into the matrix engine is contained by the panic
// isolation layer and the ladder degrades to the next rung — the
// documented behaviour, provoked deterministically.
func TestResilientDegradesOnInjectedPanic(t *testing.T) {
	g := gen.Figure2()
	b := guard.Unlimited()
	b.CheckEvery = 1
	ctx := guard.WithBudget(context.Background(), b)
	ctx = guard.WithInjector(ctx, guard.NewInjector(
		guard.Fault{Engine: "matrix", Point: guard.PointCheckpoint, Mode: guard.ModePanic},
	))
	tp, rep, err := ComputeThroughputResilient(ctx, g)
	if err != nil {
		t.Fatalf("ladder did not degrade past the injected panic: %v\n%s", err, rep)
	}
	if rep.Winner != StateSpace {
		t.Errorf("winner = %v, want statespace after the matrix rung panics", rep.Winner)
	}
	if tp.Unbounded {
		t.Error("result unbounded")
	}
	if !errors.Is(rep.Attempts[0].Err, guard.ErrEngineFailed) {
		t.Errorf("matrix attempt = %+v, want a contained panic as ErrEngineFailed", rep.Attempts[0])
	}
}
