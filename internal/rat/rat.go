// Package rat implements exact rational arithmetic on int64 numerators and
// denominators with explicit overflow detection.
//
// SDF analysis needs exact fractions in two places: solving the balance
// equations for the repetition vector, and reporting cycle means and
// throughput values. Floating point is not acceptable there because
// consistency checking compares fractions for exact equality. The values
// involved are small (rates and execution times of embedded dataflow
// models), so int64 with overflow checks is both faster and easier to audit
// than math/big.
package rat

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned (wrapped) by operations whose exact result does
// not fit in an int64 numerator or denominator.
var ErrOverflow = errors.New("rat: int64 overflow")

// ErrDivZero is returned by operations that would divide by zero.
var ErrDivZero = errors.New("rat: division by zero")

// Rat is an exact rational number. The zero value is 0/1. Rats produced by
// this package are always normalised: the denominator is positive and
// gcd(|num|, den) == 1.
type Rat struct {
	num int64
	den int64 // > 0 after normalisation; 0 only in an unnormalised zero value path
}

// New returns the normalised rational num/den. It returns an error if den
// is zero.
func New(num, den int64) (Rat, error) {
	if den == 0 {
		return Rat{}, fmt.Errorf("rat: New(%d, 0): %w", num, ErrDivZero)
	}
	return normalise(num, den)
}

// MustNew is like New but panics on error. Intended for constants in tests
// and table literals.
func MustNew(num, den int64) Rat {
	r, err := New(num, den)
	if err != nil {
		panic(err)
	}
	return r
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{num: n, den: 1} }

// Zero returns the rational 0/1.
func Zero() Rat { return Rat{num: 0, den: 1} }

// One returns the rational 1/1.
func One() Rat { return Rat{num: 1, den: 1} }

// Num returns the normalised numerator.
func (r Rat) Num() int64 { return r.num }

// Den returns the normalised denominator. For the zero value of Rat it
// reports 1.
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1
	}
	return r.den
}

// IsZero reports whether r equals 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// Float returns a float64 approximation of r (for reporting only).
func (r Rat) Float() float64 { return float64(r.num) / float64(r.Den()) }

// String renders r as "num/den", or just "num" when r is an integer.
func (r Rat) String() string {
	if r.Den() == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.Den())
}

// Cmp compares r and s, returning -1, 0 or +1. Comparison is exact and
// never overflows: it falls back to a continued-fraction style comparison
// when the cross products would not fit in an int64.
func (r Rat) Cmp(s Rat) int {
	a, aerr := mulCheck(r.num, s.Den())
	b, berr := mulCheck(s.num, r.Den())
	if aerr == nil && berr == nil {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	return cmpSlow(r.num, r.Den(), s.num, s.Den())
}

// cmpSlow compares a/b with c/d without overflow using the Euclidean
// continued-fraction expansion. b, d > 0.
func cmpSlow(a, b, c, d int64) int {
	for {
		// Compare integer parts first.
		qa, ra := floorDiv(a, b), mod(a, b)
		qc, rc := floorDiv(c, d), mod(c, d)
		if qa != qc {
			if qa < qc {
				return -1
			}
			return 1
		}
		// Same integer part; compare fractional parts ra/b vs rc/d.
		if ra == 0 && rc == 0 {
			return 0
		}
		if ra == 0 {
			return -1
		}
		if rc == 0 {
			return 1
		}
		// ra/b vs rc/d  <=>  d/rc vs b/ra (reversed).
		a, b, c, d = d, rc, b, ra
	}
}

// Equal reports whether r == s exactly.
func (r Rat) Equal(s Rat) bool { return r.num == s.num && r.Den() == s.Den() }

// Add returns r + s.
func (r Rat) Add(s Rat) (Rat, error) {
	// r.num/r.den + s.num/s.den = (r.num*s.den + s.num*r.den) / (r.den*s.den)
	// Use the lcm of the denominators to keep intermediates small.
	g := GCD(r.Den(), s.Den())
	rb := r.Den() / g
	sb := s.Den() / g
	den, err := mulCheck(r.Den(), sb)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: %v + %v: %w", r, s, err)
	}
	t1, err := mulCheck(r.num, sb)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: %v + %v: %w", r, s, err)
	}
	t2, err := mulCheck(s.num, rb)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: %v + %v: %w", r, s, err)
	}
	num, err := addCheck(t1, t2)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: %v + %v: %w", r, s, err)
	}
	return normalise(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) (Rat, error) {
	neg, err := s.Neg()
	if err != nil {
		return Rat{}, err
	}
	return r.Add(neg)
}

// Neg returns -r.
func (r Rat) Neg() (Rat, error) {
	if r.num == minInt64 {
		return Rat{}, fmt.Errorf("rat: -(%v): %w", r, ErrOverflow)
	}
	return Rat{num: -r.num, den: r.Den()}, nil
}

// Mul returns r * s.
func (r Rat) Mul(s Rat) (Rat, error) {
	// Cross-cancel before multiplying to keep intermediates small.
	g1 := GCD(abs(r.num), s.Den())
	g2 := GCD(abs(s.num), r.Den())
	n1 := r.num / g1
	n2 := s.num / g2
	d1 := r.Den() / g2
	d2 := s.Den() / g1
	num, err := mulCheck(n1, n2)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: %v * %v: %w", r, s, err)
	}
	den, err := mulCheck(d1, d2)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: %v * %v: %w", r, s, err)
	}
	return normalise(num, den)
}

// Div returns r / s. It returns an error when s is zero.
func (r Rat) Div(s Rat) (Rat, error) {
	if s.num == 0 {
		return Rat{}, fmt.Errorf("rat: %v / 0: %w", r, ErrDivZero)
	}
	inv, err := s.Inv()
	if err != nil {
		return Rat{}, err
	}
	return r.Mul(inv)
}

// Inv returns 1/r. It returns an error when r is zero.
func (r Rat) Inv() (Rat, error) {
	if r.num == 0 {
		return Rat{}, fmt.Errorf("rat: Inv(0): %w", ErrDivZero)
	}
	return normalise(r.Den(), r.num)
}

// MulInt returns r * n.
func (r Rat) MulInt(n int64) (Rat, error) { return r.Mul(FromInt(n)) }

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 { return floorDiv(r.num, r.Den()) }

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	d := r.Den()
	q := floorDiv(r.num, d)
	if mod(r.num, d) != 0 {
		q++
	}
	return q
}

const minInt64 = -1 << 63

func normalise(num, den int64) (Rat, error) {
	if den == 0 {
		return Rat{}, ErrDivZero
	}
	if num == 0 {
		return Rat{num: 0, den: 1}, nil
	}
	if den < 0 {
		if num == minInt64 || den == minInt64 {
			return Rat{}, ErrOverflow
		}
		num, den = -num, -den
	}
	g := GCD(abs(num), den)
	return Rat{num: num / g, den: den / g}, nil
}

func abs(x int64) int64 {
	if x < 0 {
		if x == minInt64 {
			// |minInt64| overflows; but gcd with minInt64 only appears via
			// normalise, which rejects it above. Guard anyway.
			return 1 << 62 // unreachable in practice; see normalise
		}
		return -x
	}
	return x
}

// GCD returns the greatest common divisor of |a| and |b|. GCD(0, 0) == 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of |a| and |b|, or an error when the
// result overflows int64. LCM(0, x) == 0.
func LCM(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	g := GCD(a, b)
	return mulCheck(a/g, b)
}

// mulCheck returns a*b or ErrOverflow.
func mulCheck(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/b != a || (a == minInt64 && b == -1) || (b == minInt64 && a == -1) {
		return 0, ErrOverflow
	}
	return p, nil
}

// addCheck returns a+b or ErrOverflow.
func addCheck(a, b int64) (int64, error) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, ErrOverflow
	}
	return s, nil
}

// AddChecked returns a+b and true, or false when the sum overflows
// int64. It is the overflow-safe helper for iteration-length and
// time-stamp accounting on adversarial graphs.
func AddChecked(a, b int64) (int64, bool) {
	s, err := addCheck(a, b)
	return s, err == nil
}

// MulChecked returns a*b and true, or false when the product overflows
// int64.
func MulChecked(a, b int64) (int64, bool) {
	p, err := mulCheck(a, b)
	return p, err == nil
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// mod returns a - floorDiv(a,b)*b, always in [0, b) for b > 0.
func mod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

// FloorDiv returns floor(a/b) for b != 0 (Euclidean-style toward -inf).
func FloorDiv(a, b int64) int64 { return floorDiv(a, b) }

// Mod returns the non-negative remainder a mod b for b > 0.
func Mod(a, b int64) int64 { return mod(a, b) }

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
