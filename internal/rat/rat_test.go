package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalises(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{147, 160, 147, 160},
		{-147, -160, 147, 160},
	}
	for _, c := range cases {
		r, err := New(c.num, c.den)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c.num, c.den, err)
		}
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantN, c.wantD)
		}
	}
}

func TestNewZeroDen(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Fatal("New(1,0) succeeded, want error")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Error("zero value not IsZero")
	}
	if r.Den() != 1 {
		t.Errorf("zero value Den = %d, want 1", r.Den())
	}
	s, err := r.Add(One())
	if err != nil || !s.Equal(One()) {
		t.Errorf("0 + 1 = %v, %v; want 1", s, err)
	}
}

func TestAdd(t *testing.T) {
	cases := []struct{ a, b, want Rat }{
		{MustNew(1, 2), MustNew(1, 3), MustNew(5, 6)},
		{MustNew(1, 2), MustNew(1, 2), One()},
		{MustNew(-1, 2), MustNew(1, 2), Zero()},
		{MustNew(2, 7), MustNew(3, 7), MustNew(5, 7)},
		{FromInt(3), MustNew(1, 4), MustNew(13, 4)},
	}
	for _, c := range cases {
		got, err := c.a.Add(c.b)
		if err != nil {
			t.Fatalf("%v + %v: %v", c.a, c.b, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%v + %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubMulDiv(t *testing.T) {
	a := MustNew(7, 6)
	b := MustNew(1, 3)
	if got, _ := a.Sub(b); !got.Equal(MustNew(5, 6)) {
		t.Errorf("7/6 - 1/3 = %v, want 5/6", got)
	}
	if got, _ := a.Mul(b); !got.Equal(MustNew(7, 18)) {
		t.Errorf("7/6 * 1/3 = %v, want 7/18", got)
	}
	if got, _ := a.Div(b); !got.Equal(MustNew(7, 2)) {
		t.Errorf("7/6 / 1/3 = %v, want 7/2", got)
	}
	if _, err := a.Div(Zero()); err == nil {
		t.Error("division by zero succeeded")
	}
}

func TestInv(t *testing.T) {
	if got, _ := MustNew(-3, 7).Inv(); !got.Equal(MustNew(-7, 3)) {
		t.Errorf("Inv(-3/7) = %v, want -7/3", got)
	}
	if _, err := Zero().Inv(); err == nil {
		t.Error("Inv(0) succeeded")
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{MustNew(1, 2), MustNew(1, 3), 1},
		{MustNew(1, 3), MustNew(1, 2), -1},
		{MustNew(2, 4), MustNew(1, 2), 0},
		{MustNew(-1, 2), MustNew(1, 2), -1},
		{FromInt(5), FromInt(5), 0},
		{MustNew(160, 147), MustNew(161, 148), 1}, // 160*148=23680 > 161*147=23667
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCmpOverflowPath(t *testing.T) {
	// Cross products overflow int64; cmpSlow must still give exact order.
	big1 := MustNew(math.MaxInt64/2, math.MaxInt64/3)
	big2 := MustNew(math.MaxInt64/2-1, math.MaxInt64/3)
	if got := big1.Cmp(big2); got != 1 {
		t.Errorf("Cmp big = %d, want 1", got)
	}
	if got := big2.Cmp(big1); got != -1 {
		t.Errorf("Cmp big = %d, want -1", got)
	}
	if got := big1.Cmp(big1); got != 0 {
		t.Errorf("Cmp big self = %d, want 0", got)
	}
}

func TestOverflowDetected(t *testing.T) {
	huge := FromInt(math.MaxInt64)
	if _, err := huge.Mul(FromInt(2)); err == nil {
		t.Error("MaxInt64 * 2 succeeded, want overflow")
	}
	if _, err := huge.Add(huge); err == nil {
		t.Error("MaxInt64 + MaxInt64 succeeded, want overflow")
	}
	if _, err := FromInt(math.MinInt64).Neg(); err == nil {
		t.Error("Neg(MinInt64) succeeded, want overflow")
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{MustNew(7, 2), 3, 4},
		{MustNew(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{MustNew(1, 3), 0, 1},
		{MustNew(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestGCDLCM(t *testing.T) {
	if g := GCD(12, 18); g != 6 {
		t.Errorf("GCD(12,18) = %d, want 6", g)
	}
	if g := GCD(-12, 18); g != 6 {
		t.Errorf("GCD(-12,18) = %d, want 6", g)
	}
	if g := GCD(0, 7); g != 7 {
		t.Errorf("GCD(0,7) = %d, want 7", g)
	}
	if g := GCD(0, 0); g != 0 {
		t.Errorf("GCD(0,0) = %d, want 0", g)
	}
	l, err := LCM(4, 6)
	if err != nil || l != 12 {
		t.Errorf("LCM(4,6) = %d, %v; want 12", l, err)
	}
	l, err = LCM(0, 5)
	if err != nil || l != 0 {
		t.Errorf("LCM(0,5) = %d, %v; want 0", l, err)
	}
	if _, err := LCM(math.MaxInt64-1, math.MaxInt64-2); err == nil {
		t.Error("huge LCM succeeded, want overflow")
	}
}

func TestFloorDivMod(t *testing.T) {
	cases := []struct {
		a, b, q, m int64
	}{
		{7, 3, 2, 1},
		{-7, 3, -3, 2},
		{6, 3, 2, 0},
		{-6, 3, -2, 0},
		{0, 5, 0, 0},
	}
	for _, c := range cases {
		if q := FloorDiv(c.a, c.b); q != c.q {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, q, c.q)
		}
		if m := Mod(c.a, c.b); m != c.m {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.a, c.b, m, c.m)
		}
	}
}

func TestString(t *testing.T) {
	if s := MustNew(5, 3).String(); s != "5/3" {
		t.Errorf("String = %q, want 5/3", s)
	}
	if s := FromInt(-4).String(); s != "-4" {
		t.Errorf("String = %q, want -4", s)
	}
}

// Property: (a+b)-b == a for randomly generated small rationals.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(an, bn int16, ad, bd uint8) bool {
		a, err := New(int64(an), int64(ad)+1)
		if err != nil {
			return false
		}
		b, err := New(int64(bn), int64(bd)+1)
		if err != nil {
			return false
		}
		s, err := a.Add(b)
		if err != nil {
			return false
		}
		back, err := s.Sub(b)
		if err != nil {
			return false
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplication distributes over addition for small rationals.
func TestQuickDistributive(t *testing.T) {
	f := func(an, bn, cn int8, ad, bd, cd uint8) bool {
		a := MustNew(int64(an), int64(ad)+1)
		b := MustNew(int64(bn), int64(bd)+1)
		c := MustNew(int64(cn), int64(cd)+1)
		sum, err := b.Add(c)
		if err != nil {
			return false
		}
		lhs, err := a.Mul(sum)
		if err != nil {
			return false
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		ac, err := a.Mul(c)
		if err != nil {
			return false
		}
		rhs, err := ab.Add(ac)
		if err != nil {
			return false
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cmp is consistent with subtraction sign.
func TestQuickCmpConsistent(t *testing.T) {
	f := func(an, bn int16, ad, bd uint8) bool {
		a := MustNew(int64(an), int64(ad)+1)
		b := MustNew(int64(bn), int64(bd)+1)
		d, err := a.Sub(b)
		if err != nil {
			return false
		}
		return a.Cmp(b) == d.Sign()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Floor(r) <= r < Floor(r)+1.
func TestQuickFloorBounds(t *testing.T) {
	f := func(n int16, d uint8) bool {
		r := MustNew(int64(n), int64(d)+1)
		fl := r.Floor()
		lo := FromInt(fl)
		hi := FromInt(fl + 1)
		return lo.Cmp(r) <= 0 && r.Cmp(hi) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
