package obs

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable time source of the span/event tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter(MetricRequests, "outcome", "served")
	c.Inc()
	c.Add(2)
	c.Add(-5) // counters never go down
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Same name+labels resolves to the same instrument, regardless of
	// pair order.
	if c2 := r.Counter(MetricRequests, "outcome", "served"); c2 != c {
		t.Error("re-lookup returned a different counter")
	}
	g := r.Gauge("sdf_inflight", "kind", "running")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabelCanonicalisation(t *testing.T) {
	r := New()
	a := r.Counter("sdf_x_total", "b", "2", "a", "1")
	b := r.Counter("sdf_x_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snap))
	}
	if got := snap[0].Label("a"); got != "1" {
		t.Errorf("label a = %q", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("sdf_conflict")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("sdf_conflict")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	bounds := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	h := r.HistogramBuckets("sdf_h_seconds", bounds, "engine", "matrix")
	for i := 0; i < 50; i++ {
		h.Observe(500 * time.Microsecond) // bucket 0
	}
	for i := 0; i < 40; i++ {
		h.Observe(1500 * time.Microsecond) // bucket 1
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // overflow
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := []int64{s.Counts[0], s.Counts[1], s.Counts[2], s.Counts[3]}; got[0] != 50 || got[1] != 40 || got[2] != 0 || got[3] != 10 {
		t.Fatalf("bucket counts = %v", got)
	}
	// p50 falls exactly on the end of bucket 0.
	if p50 := s.Quantile(0.50); p50 != time.Millisecond {
		t.Errorf("p50 = %v, want 1ms", p50)
	}
	// p99 lands in the overflow bucket: clamped to the largest bound.
	if p99 := s.Quantile(0.99); p99 != 4*time.Millisecond {
		t.Errorf("p99 = %v, want 4ms (largest finite bound)", p99)
	}
	if m := s.Mean(); m <= 0 {
		t.Errorf("mean = %v", m)
	}
	// Negative observations clamp to zero instead of corrupting state.
	h.Observe(-time.Second)
	if h.Count() != 101 {
		t.Errorf("count after negative observe = %d", h.Count())
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	var h *Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("nil histogram quantile = %v", q)
	}
	r := New()
	if q := r.Histogram("sdf_e_seconds").Snapshot().Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
}

// TestNilSafety is the contract every instrumented layer relies on: a
// nil registry and every instrument it hands out are complete no-ops.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.SetClock(nil)
	r.EnableEvents(16)
	r.Emit("anything", "k", "v")
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(9)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(time.Second)
	if r.Histogram("h").Count() != 0 {
		t.Error("nil histogram counted")
	}
	sp := r.StartSpan("s", "k", "v")
	if d := sp.Finish("outcome", "ok"); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil snapshot = %v", snap)
	}
	if ev, total := r.Events(); ev != nil || total != 0 {
		t.Errorf("nil events = %v/%d", ev, total)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil exposition wrote %q", sb.String())
	}
	if !r.Now().IsZero() == false {
		t.Error("nil Now returned zero time")
	}
}

func TestSpanClockAndRing(t *testing.T) {
	clk := newFakeClock()
	r := New()
	r.SetClock(clk.Now)
	r.EnableEvents(4)

	sp := r.StartSpan("analysis.symbolic", "engine", "matrix")
	clk.Advance(3 * time.Millisecond)
	if d := sp.Finish("outcome", "ok"); d != 3*time.Millisecond {
		t.Fatalf("span duration = %v, want 3ms", d)
	}
	// The span observed the span-latency histogram...
	h := r.Histogram(MetricSpanSeconds, "span", "analysis.symbolic", "engine", "matrix")
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d", h.Count())
	}
	// ...and recorded a structured event with merged attributes.
	ev, total := r.Events()
	if total != 1 || len(ev) != 1 {
		t.Fatalf("events = %d/%d", len(ev), total)
	}
	if ev[0].Name != "analysis.symbolic" || ev[0].DurNS != int64(3*time.Millisecond) {
		t.Errorf("event = %+v", ev[0])
	}
	if ev[0].Attrs["engine"] != "matrix" || ev[0].Attrs["outcome"] != "ok" {
		t.Errorf("event attrs = %v", ev[0].Attrs)
	}
	// Events marshal to JSON (the /debug/events wire format).
	if _, err := json.Marshal(ev); err != nil {
		t.Fatal(err)
	}
}

func TestRingBounds(t *testing.T) {
	r := New()
	r.SetClock(newFakeClock().Now)
	r.EnableEvents(3)
	for i := 0; i < 10; i++ {
		r.Emit("e", "i", string(rune('0'+i)))
	}
	ev, total := r.Events()
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	if len(ev) != 3 {
		t.Fatalf("ring holds %d, want 3", len(ev))
	}
	// Oldest-first, newest events win.
	for i, want := range []string{"7", "8", "9"} {
		if ev[i].Attrs["i"] != want {
			t.Errorf("ev[%d] = %v, want i=%s", i, ev[i].Attrs, want)
		}
	}
	// Disarming stops recording.
	r.EnableEvents(0)
	r.Emit("late")
	if ev, _ := r.Events(); ev != nil {
		t.Errorf("events after disarm = %v", ev)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter(MetricRequests, "outcome", "served").Add(42)
	r.Counter(MetricRequests, "outcome", "failed").Add(3)
	r.Gauge("sdf_pool_in_use").Set(17)
	h := r.HistogramBuckets("sdf_req_seconds", []time.Duration{time.Millisecond, time.Second}, "method", "hedged")
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE sdf_requests_total counter",
		`sdf_requests_total{outcome="served"} 42`,
		`sdf_requests_total{outcome="failed"} 3`,
		"# TYPE sdf_pool_in_use gauge",
		"sdf_pool_in_use 17",
		"# TYPE sdf_req_seconds histogram",
		`sdf_req_seconds_bucket{method="hedged",le="0.001"} 1`,
		`sdf_req_seconds_bucket{method="hedged",le="1"} 1`,
		`sdf_req_seconds_bucket{method="hedged",le="+Inf"} 2`,
		`sdf_req_seconds_sum{method="hedged"} 2.0005`,
		`sdf_req_seconds_count{method="hedged"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE line per family, not per series.
	if n := strings.Count(text, "# TYPE sdf_requests_total"); n != 1 {
		t.Errorf("TYPE emitted %d times", n)
	}
}

func TestWriteVars(t *testing.T) {
	r := New()
	r.Counter("sdf_served_total").Add(5)
	r.Histogram("sdf_lat_seconds", "engine", "matrix").Observe(time.Millisecond)
	var sb strings.Builder
	if err := r.WriteVars(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("vars output not JSON: %v\n%s", err, sb.String())
	}
	if _, ok := doc["sdf_served_total"]; !ok {
		t.Errorf("vars missing counter: %v", sb.String())
	}
	if _, ok := doc["memstats"]; !ok {
		t.Error("vars missing memstats")
	}
	var hv struct {
		Count int64 `json:"count"`
		P50NS int64 `json:"p50_ns"`
	}
	if err := json.Unmarshal(doc[`sdf_lat_seconds{engine="matrix"}`], &hv); err != nil {
		t.Fatalf("histogram member: %v", err)
	}
	if hv.Count != 1 || hv.P50NS <= 0 {
		t.Errorf("histogram vars = %+v", hv)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := New()
	r.Counter(MetricRequests, "outcome", "served").Add(9)
	r.Gauge("sdf_g").Set(2)
	h := r.HistogramBuckets("sdf_lat_seconds", []time.Duration{time.Millisecond, time.Second}, "engine", "hsdf")
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Microsecond)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]Sample{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if got := byName[MetricRequests]; len(got) != 1 || got[0].Value != 9 || got[0].Label("outcome") != "served" {
		t.Errorf("requests samples = %+v", got)
	}
	if got := byName["sdf_g"]; len(got) != 1 || got[0].Value != 2 {
		t.Errorf("gauge samples = %+v", got)
	}
	// Reconstruct the histogram quantile from the parsed buckets.
	le := map[float64]float64{}
	for _, s := range byName["sdf_lat_seconds_bucket"] {
		bound := math.Inf(1)
		if l := s.Label("le"); l != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(l, 64)
			if err != nil {
				t.Fatal(err)
			}
		}
		le[bound] = s.Value
	}
	p50 := BucketQuantile(le, 0.50)
	if p50 <= 0 || p50 > time.Millisecond {
		t.Errorf("parsed p50 = %v", p50)
	}
}

func TestParseTextErrors(t *testing.T) {
	for name, text := range map[string]string{
		"no value":       "sdf_x\n",
		"bad value":      "sdf_x twelve\n",
		"unterminated":   `sdf_x{a="1 2` + "\n",
		"unquoted label": `sdf_x{a=1} 2` + "\n",
		"no brace":       `sdf_x{a="1"` + "\n",
	} {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	// Comments, blanks and timestamps are fine.
	samples, err := ParseText(strings.NewReader("# HELP x y\n\nsdf_x 1 1700000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Value != 1 {
		t.Errorf("samples = %+v", samples)
	}
}

func TestBucketQuantileEmpty(t *testing.T) {
	if q := BucketQuantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
	if q := BucketQuantile(map[float64]float64{1: 0, math.Inf(1): 0}, 0.5); q != 0 {
		t.Errorf("zero-count = %v", q)
	}
}
