// Package obs is the observability layer of the analysis stack: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms), lightweight pipeline spans with an
// injectable clock, and a bounded ring buffer of structured events.
//
// The design contract, relied on by every instrumented layer:
//
//	nil is a no-op — every method on a nil *Registry, nil *Counter,
//	    nil *Gauge, nil *Histogram and the zero Span does nothing and
//	    allocates nothing, so library callers that attach no registry
//	    pay a nil check and nothing else.
//	the hot path is allocation-free — instruments are resolved once
//	    (Counter/Gauge/Histogram, which may allocate while registering)
//	    and then driven with Add/Set/Observe, which only touch atomics.
//	snapshots never stop the world — exposition walks the registry
//	    under a read lock while writers keep counting; per-series values
//	    are exact, cross-series consistency is not promised (and not
//	    needed for monitoring).
//
// The package imports nothing from the rest of the repository, so even
// internal/guard — itself imported by every engine — can depend on it.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names of the analysis stack. They live here, next to
// the registry, so the serving layer, the engines, the CLI scraper and
// the CI gate agree on one spelling.
const (
	// MetricRequests counts requests by terminal outcome
	// (label outcome: served, failed, refused-queue, refused-pool,
	// refused-draining, refused-injection, precondition).
	MetricRequests = "sdf_requests_total"
	// MetricRequestSeconds is the end-to-end request latency histogram
	// (label method: hedged, matrix, statespace, hsdf).
	MetricRequestSeconds = "sdf_request_seconds"
	// MetricEngineSeconds is the per-engine attempt latency histogram
	// (label engine).
	MetricEngineSeconds = "sdf_engine_seconds"
	// MetricEngineAttempts counts engine attempts by outcome
	// (labels engine; outcome: answered, verified, cancelled, failed,
	// gated, skipped).
	MetricEngineAttempts = "sdf_engine_attempts_total"
	// MetricHedgeRaces counts hedged races by outcome (label outcome:
	// answered, failed, disagreement).
	MetricHedgeRaces = "sdf_hedge_races_total"
	// MetricHedgeWins counts race wins per engine (label engine).
	MetricHedgeWins = "sdf_hedge_wins_total"
	// MetricCacheEvents counts result-cache traffic (label event: hit,
	// miss, evict, dedup).
	MetricCacheEvents = "sdf_cache_events_total"
	// MetricBreakerTransitions counts breaker state changes (labels
	// engine; to: open, half-open, closed).
	MetricBreakerTransitions = "sdf_breaker_transitions_total"
	// MetricBreakerTrips counts closed/half-open -> open transitions per
	// engine (label engine).
	MetricBreakerTrips = "sdf_breaker_trips_total"
	// MetricBudgetExhausted counts guard budget refusals per engine
	// (label engine).
	MetricBudgetExhausted = "sdf_guard_budget_exhausted_total"
	// MetricFaultsFired counts injected faults that fired (labels
	// engine, mode).
	MetricFaultsFired = "sdf_guard_faults_fired_total"
	// MetricSpanSeconds is the histogram every finished Span observes
	// (label span = span name, plus the span's own start attributes).
	MetricSpanSeconds = "sdf_span_seconds"
	// MetricReduceSteps counts applied reduction-rule rewrites (label
	// rule).
	MetricReduceSteps = "sdf_reduce_steps_total"
	// MetricDegradationLevel is the serving layer's current brownout
	// level as a gauge: 0 exact, 1 bounded, 2 stale-cache, 3 shed.
	MetricDegradationLevel = "sdf_degradation_level"
	// MetricDegraded counts answers and refusals produced under a
	// degraded admission level (label level: bounded, stale-cache, shed,
	// exact-only).
	MetricDegraded = "sdf_serve_degraded_total"

	// Fleet-layer metrics (the sdfrouter replica router).

	// MetricFleetRequestSeconds is the router's end-to-end latency
	// histogram, attempts and hedges included (label outcome: ok,
	// error, unavailable).
	MetricFleetRequestSeconds = "sdf_fleet_request_seconds"
	// MetricFleetAttempts counts per-replica proxy attempts by outcome
	// (labels replica; outcome: ok, retryable, fatal, canceled).
	MetricFleetAttempts = "sdf_fleet_attempts_total"
	// MetricFleetRetries counts backoff-paced retry launches (label
	// replica = the replica the retry went to).
	MetricFleetRetries = "sdf_fleet_retries_total"
	// MetricFleetHedgeWins counts requests answered by the hedged
	// (second) attempt (label replica = the winner).
	MetricFleetHedgeWins = "sdf_fleet_hedge_wins_total"
	// MetricFleetHedgeLosses counts hedges that launched but lost to
	// the primary attempt (label replica = the losing hedge's target).
	MetricFleetHedgeLosses = "sdf_fleet_hedge_losses_total"
	// MetricFleetEjections counts replica ejections from the routing
	// ring (label replica).
	MetricFleetEjections = "sdf_fleet_ejections_total"
	// MetricFleetReadmissions counts replicas re-admitted after
	// probation (label replica).
	MetricFleetReadmissions = "sdf_fleet_readmissions_total"
	// MetricFleetEjectedReplicas is the gauge of currently ejected
	// replicas.
	MetricFleetEjectedReplicas = "sdf_fleet_ejected_replicas"
	// MetricFleetProbes counts health probes by result (labels replica;
	// result: ok, fail).
	MetricFleetProbes = "sdf_fleet_probes_total"
	// MetricFleetDegradedReroutes counts requests steered away from a
	// browned-out ring owner toward an un-degraded replica (label
	// replica = the preferred replica).
	MetricFleetDegradedReroutes = "sdf_fleet_degraded_reroutes_total"

	// Batch-serving metrics (POST /v1/batch, serve and fleet layers).

	// MetricBatchRequests counts whole batches by outcome (label
	// outcome: complete, partial, refused-draining, failed).
	MetricBatchRequests = "sdf_batch_requests_total"
	// MetricBatchItems counts batch items by final status (label
	// status: ok, bounded, degraded, item-error).
	MetricBatchItems = "sdf_batch_items_total"
	// MetricBatchSeconds is the whole-batch latency histogram.
	MetricBatchSeconds = "sdf_batch_seconds"
	// MetricBatchFanout counts sub-batches dispatched per replica by
	// the fleet router (labels replica; kind: primary, redispatch,
	// straggler).
	MetricBatchFanout = "sdf_batch_fanout_total"
	// MetricBatchRedispatchedItems counts items re-dispatched off a
	// failed or straggling replica to a survivor (label replica = the
	// replica the items were pulled from).
	MetricBatchRedispatchedItems = "sdf_batch_redispatched_items_total"
	// MetricBatchLostItems counts items the router had to synthesize an
	// unavailable entry for because every replica failed them. The
	// merge invariant keeps entries, so "lost" means lost answers, not
	// lost entries; chaos tests assert the counter stays meaningful.
	MetricBatchLostItems = "sdf_batch_lost_items_total"
	// MetricBatchDedupItems counts batch items answered by another
	// identical item in the same batch (cross-item dedup): the leader
	// item computed, the duplicates fanned its answer out.
	MetricBatchDedupItems = "sdf_batch_dedup_items_total"

	// Scenario-aware dataflow metrics (POST /v1/sadf).

	// MetricSADFRequests counts FSM-SADF analysis requests by outcome
	// (label outcome: served, failed, refused, degraded-refusal).
	MetricSADFRequests = "sdf_sadf_requests_total"
	// MetricSADFSeconds is the end-to-end sadf request latency
	// histogram (label outcome).
	MetricSADFSeconds = "sdf_sadf_seconds"
	// MetricSADFAutomatonNodes accumulates the max-plus automaton node
	// counts of analysed models: automaton size is the cost driver of
	// the workload, and the benchmark plots wall time against it.
	MetricSADFAutomatonNodes = "sdf_sadf_automaton_nodes_total"
)

// Kind distinguishes the instrument families of a Registry.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that goes up and down.
	KindGauge
	// KindHistogram is a fixed-bucket latency distribution.
	KindHistogram
)

// String names the kind in the Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing atomic count. The nil Counter
// is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n (negative n is ignored: counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic value that moves both ways. The nil Gauge is a
// no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value; 0 on a nil Gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// family is one named metric: a kind, optional histogram bounds, and
// the labelled series registered under the name.
type family struct {
	kind   Kind
	bounds []time.Duration // histograms only
	series map[string]*series
}

// series is one labelled instrument inside a family.
type series struct {
	labels []string // flattened key, value pairs, sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds the instruments of one process (typically one server).
// Construct with New; all methods are safe for concurrent use, and all
// methods on a nil *Registry are no-ops.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	now      func() time.Time
	ring     *ring
}

// New returns an empty registry on the wall clock.
func New() *Registry {
	return &Registry{families: make(map[string]*family), now: time.Now}
}

// SetClock injects the time source used by spans and events; nil
// restores time.Now. Inject before instrumentation starts.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	if now == nil {
		now = time.Now
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Now reads the registry clock. On a nil registry it falls back to
// time.Now, so callers can time work with an optional registry without
// branching.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return now()
}

// labelKey canonicalises flattened key/value pairs: sorted by key,
// rendered in the Prometheus label syntax. It is the series identity
// within a family.
func labelKey(kv []string) (string, []string) {
	if len(kv) == 0 {
		return "", nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	flat := make([]string, 0, len(kv))
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
		flat = append(flat, p.k, p.v)
	}
	return b.String(), flat
}

// lookup returns the series for (name, labels), creating family and
// series on first use. A kind conflict on an existing name panics: two
// call sites disagreeing about what a metric is can only be a bug.
func (r *Registry) lookup(name string, kind Kind, bounds []time.Duration, kv []string) *series {
	key, flat := labelKey(kv)
	r.mu.RLock()
	f := r.families[name]
	if f != nil {
		if s, ok := f.series[key]; ok {
			if f.kind != kind {
				r.mu.RUnlock()
				panic(fmt.Sprintf("obs: metric %s registered as %v, requested as %v", name, f.kind, kind))
			}
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.families[name]
	if f == nil {
		if kind == KindHistogram && len(bounds) == 0 {
			bounds = DefaultLatencyBuckets
		}
		f = &family{kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %v, requested as %v", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: flat}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name and the flattened label
// key/value pairs, registering it on first use. Resolve once and keep
// the handle: the returned Counter's methods are the allocation-free
// hot path. Nil registry: returns nil (which is itself a no-op).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, nil, labels).c
}

// Gauge returns the gauge for name and labels, registering it on first
// use. Nil registry: returns nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, nil, labels).g
}

// Histogram returns the histogram for name and labels with the default
// latency buckets, registering it on first use. Nil registry: returns
// nil.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, nil, labels).h
}

// HistogramBuckets is Histogram with explicit upper bounds (ascending).
// The bounds of a family are fixed by its first registration; later
// calls with different bounds reuse the existing family's.
func (r *Registry) HistogramBuckets(name string, bounds []time.Duration, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, bounds, labels).h
}

// Series is one materialised metric series in a Snapshot.
type Series struct {
	// Name is the family name; Labels the flattened sorted key/value
	// pairs of this series.
	Name   string
	Labels []string
	// Kind says which of Value and Hist is meaningful.
	Kind Kind
	// Value carries counter and gauge readings.
	Value int64
	// Hist carries the histogram state.
	Hist *HistogramSnapshot
}

// Label returns the value of the named label, or "".
func (s Series) Label(key string) string {
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if s.Labels[i] == key {
			return s.Labels[i+1]
		}
	}
	return ""
}

// Snapshot materialises every series, sorted by family name then label
// key, so iteration (and exposition built on it) is deterministic. Nil
// registry: returns nil.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Series
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sr := Series{Name: name, Labels: s.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				sr.Value = s.c.Value()
			case KindGauge:
				sr.Value = s.g.Value()
			case KindHistogram:
				sr.Hist = s.h.Snapshot()
			}
			out = append(out, sr)
		}
	}
	return out
}
