package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is one parsed exposition line: a metric name, its labels and
// its value. It is the read-side twin of the registry's write-side
// Series, used by sdftool to pretty-print a remote daemon's /metrics.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the named label, or "".
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseText parses the Prometheus text exposition format produced by
// WritePrometheus (and by any conforming exporter): comments and blank
// lines are skipped, each remaining line is name{labels} value.
// Timestamps (a third field) are accepted and ignored.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at text[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(text string, into map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(text) && (text[i] == ',' || text[i] == ' ') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label block in %q", text)
		}
		key := strings.TrimSpace(text[i : i+eq])
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", text)
		}
		i++
		var b strings.Builder
		for i < len(text) && text[i] != '"' {
			if text[i] == '\\' && i+1 < len(text) {
				i++
				switch text[i] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(text[i])
				}
			} else {
				b.WriteByte(text[i])
			}
			i++
		}
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label value in %q", text)
		}
		i++ // past closing quote
		into[key] = b.String()
	}
}

// BucketQuantile estimates a quantile from parsed cumulative histogram
// buckets: le maps each upper bound in seconds (math.Inf(1) for +Inf)
// to its cumulative count. It mirrors HistogramSnapshot.Quantile on the
// read side of the wire. Returns 0 with no observations.
func BucketQuantile(le map[float64]float64, q float64) time.Duration {
	if len(le) == 0 {
		return 0
	}
	bounds := make([]float64, 0, len(le))
	for b := range le {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	total := le[bounds[len(bounds)-1]]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, b := range bounds {
		cum := le[b]
		if cum >= rank && cum > prevCum {
			if math.IsInf(b, 1) {
				return time.Duration(prevBound * float64(time.Second))
			}
			frac := (rank - prevCum) / (cum - prevCum)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			sec := prevBound + frac*(b-prevBound)
			return time.Duration(sec * float64(time.Second))
		}
		if !math.IsInf(b, 1) {
			prevBound = b
		}
		prevCum = cum
	}
	return time.Duration(prevBound * float64(time.Second))
}
