package obs

import (
	"context"
	"sync"
	"time"
)

// Event is one structured observability event: a point occurrence
// (cache eviction, breaker trip, admission refusal) or a finished span
// (Dur > 0). Events marshal to JSON for the /debug/events API.
type Event struct {
	// Time is the event (or span-finish) instant on the registry clock.
	Time time.Time `json:"time"`
	// Name identifies the event class ("serve.request",
	// "analysis.symbolic", "breaker.transition", ...).
	Name string `json:"name"`
	// DurNS is the span duration in nanoseconds; 0 for point events.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Attrs carries the event's key/value attributes.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// ring is a bounded event buffer: the newest capacity events win, the
// oldest are overwritten.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// EnableEvents arms the registry's event ring with the given capacity
// (values below 1 disable it again). Until enabled — the default —
// Emit and Span.Finish record no events, so the ring costs nothing.
func (r *Registry) EnableEvents(capacity int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if capacity < 1 {
		r.ring = nil
		return
	}
	r.ring = &ring{buf: make([]Event, 0, capacity)}
}

// EventsEnabled reports whether an event ring is armed.
func (r *Registry) EventsEnabled() bool {
	if r == nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring != nil
}

// Events returns the buffered events, oldest first, plus the total
// number of events ever emitted (so a reader can tell how many were
// overwritten). Nil or ring-less registry: nil, 0.
func (r *Registry) Events() ([]Event, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.RLock()
	rg := r.ring
	r.mu.RUnlock()
	if rg == nil {
		return nil, 0
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]Event, 0, len(rg.buf))
	if len(rg.buf) == cap(rg.buf) {
		out = append(out, rg.buf[rg.next:]...)
		out = append(out, rg.buf[:rg.next]...)
	} else {
		out = append(out, rg.buf...)
	}
	return out, rg.total
}

// record appends one event to the ring (if armed).
func (r *Registry) record(ev Event) {
	r.mu.RLock()
	rg := r.ring
	r.mu.RUnlock()
	if rg == nil {
		return
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.total++
	if len(rg.buf) < cap(rg.buf) {
		rg.buf = append(rg.buf, ev)
		return
	}
	rg.buf[rg.next] = ev
	rg.next = (rg.next + 1) % cap(rg.buf)
}

// attrMap folds flattened key/value pairs into a map; nil for none.
func attrMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Emit records one point event with the given attribute pairs. It is a
// no-op on a nil registry or when no event ring is armed, so emitting
// from hot paths costs one nil check and one read lock.
func (r *Registry) Emit(name string, attrs ...string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	armed := r.ring != nil
	r.mu.RUnlock()
	if !armed {
		return
	}
	r.record(Event{Time: r.Now(), Name: name, Attrs: attrMap(attrs)})
}

// Span is one timed pipeline section: StartSpan stamps the start on the
// registry clock, Finish computes the duration, feeds the span-latency
// histogram and (when a ring is armed) records a structured event. The
// zero Span — what StartSpan on a nil registry returns — is a no-op
// whose Finish reports 0.
type Span struct {
	r     *Registry
	name  string
	attrs []string
	start time.Time
}

// StartSpan opens a span. The attribute pairs label both the span's
// latency histogram series and its finish event.
func (r *Registry) StartSpan(name string, attrs ...string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, attrs: attrs, start: r.Now()}
}

// Finish closes the span and returns its duration. The extra attribute
// pairs (an outcome, an error kind) are attached to the finish event
// only — not the histogram series, whose identity stays bounded by the
// start attributes.
func (s Span) Finish(extra ...string) time.Duration {
	if s.r == nil {
		return 0
	}
	d := s.r.Now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	labels := make([]string, 0, 2+len(s.attrs))
	labels = append(labels, "span", s.name)
	labels = append(labels, s.attrs...)
	s.r.Histogram(MetricSpanSeconds, labels...).Observe(d)
	s.r.mu.RLock()
	armed := s.r.ring != nil
	s.r.mu.RUnlock()
	if armed {
		kv := make([]string, 0, len(s.attrs)+len(extra))
		kv = append(kv, s.attrs...)
		kv = append(kv, extra...)
		s.r.record(Event{Time: s.start.Add(d), Name: s.name, DurNS: int64(d), Attrs: attrMap(kv)})
	}
	return d
}

type registryKey struct{}

// WithRegistry returns a context carrying r, the channel through which
// the serving layer hands its registry to the analysis engines and the
// guard runtime. A nil registry returns ctx unchanged.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext returns the registry carried by ctx, or nil — and nil is
// a fully functional no-op registry, so callers instrument
// unconditionally.
func FromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}
