package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the histogram bounds used when a histogram
// is registered without explicit buckets: 20 exponential buckets from
// 50µs doubling to ~26s, wide enough to hold both a microsecond matrix
// analysis and an engine grinding against its deadline.
var DefaultLatencyBuckets = func() []time.Duration {
	b := make([]time.Duration, 20)
	d := 50 * time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// Histogram is a fixed-bucket latency distribution. Observe is the
// allocation-free hot path: one linear scan over the (small, fixed)
// bucket bounds and three atomic adds. The nil Histogram is a no-op.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64  // len(bounds)+1, the last is the overflow bucket
	sum    atomic.Int64    // nanoseconds
	count  atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration. Negative durations are clamped to zero
// (a backwards clock must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations; 0 on a nil Histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts[i]
// holds the observations with value <= Bounds[i]; the final element of
// Counts is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// Snapshot copies the histogram state. Nil histogram: returns an empty
// snapshot, never nil, so callers can chain Quantile without checking.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	if h == nil {
		return &HistogramSnapshot{}
	}
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observation, or 0 with no observations.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket that crosses it, the standard
// fixed-bucket estimate. Observations in the overflow bucket are
// attributed to the largest finite bound — the histogram cannot know
// more. Returns 0 with no observations.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s == nil || s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(s.Bounds) {
				// Overflow bucket: the largest finite bound is the best
				// (conservative-from-below) answer available.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(math.Round(frac*float64(hi-lo)))
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}
