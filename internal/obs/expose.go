package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// promLabels renders flattened key/value pairs in the Prometheus label
// syntax, with extra pairs appended (histogram le labels). Returns ""
// for no labels at all.
func promLabels(flat []string, extra ...string) string {
	if len(flat) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	write := func(kv []string) {
		for i := 0; i+1 < len(kv); i += 2 {
			if n > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
			n++
		}
	}
	write(flat)
	write(extra)
	b.WriteByte('}')
	return b.String()
}

// seconds renders a duration as a Prometheus-style float of seconds.
func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per family,
// counter and gauge series as plain samples, histograms as cumulative
// _bucket series plus _sum (seconds) and _count. Families and series
// come out sorted, so scrapes diff cleanly. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var last string
	for _, s := range snap {
		if s.Name != last {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			last = s.Name
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Labels), s.Value); err != nil {
				return err
			}
		case KindHistogram:
			h := s.Hist
			var cum int64
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = seconds(h.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), seconds(h.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteVars writes the registry in the expvar JSON shape — one object,
// each series a member keyed by its full name (labels included),
// counters and gauges as numbers, histograms as {count, sum_ns, p50_ns,
// p99_ns} objects — plus a "memstats" member mirroring what the stdlib
// expvar handler publishes. A nil registry writes an object with
// memstats only.
func (r *Registry) WriteVars(w io.Writer) error {
	if _, err := fmt.Fprint(w, "{\n"); err != nil {
		return err
	}
	for _, s := range r.Snapshot() {
		key := s.Name + promLabels(s.Labels)
		var val any
		switch s.Kind {
		case KindCounter, KindGauge:
			val = s.Value
		case KindHistogram:
			val = map[string]int64{
				"count":  s.Hist.Count,
				"sum_ns": int64(s.Hist.Sum),
				"p50_ns": int64(s.Hist.Quantile(0.50)),
				"p99_ns": int64(s.Hist.Quantile(0.99)),
			}
		}
		kb, err := json.Marshal(key)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(val)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: %s,\n", kb, vb); err != nil {
			return err
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mb, err := json.Marshal(ms)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\"memstats\": %s\n}\n", mb); err != nil {
		return err
	}
	return nil
}
