package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrencyHammer drives every registry surface from many
// goroutines at once — registration, the atomic hot paths, spans,
// events, snapshots and exposition — and relies on the race detector
// (ci runs the suite under -race) to certify the locking discipline.
func TestConcurrencyHammer(t *testing.T) {
	r := New()
	r.EnableEvents(64)
	const (
		workers = 8
		rounds  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engine := fmt.Sprintf("engine-%d", w%3)
			c := r.Counter(MetricRequests, "outcome", "served")
			h := r.Histogram(MetricEngineSeconds, "engine", engine)
			g := r.Gauge("sdf_hammer_inflight")
			for i := 0; i < rounds; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				// Dynamic lookups race registration against readers.
				r.Counter("sdf_hammer_total", "worker", engine).Inc()
				sp := r.StartSpan("hammer.span", "engine", engine)
				sp.Finish("i", "x")
				r.Emit("hammer.event", "engine", engine)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent readers: snapshots and both exposition formats.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Snapshot()
				_ = r.WritePrometheus(io.Discard)
				_ = r.WriteVars(io.Discard)
				_, _ = r.Events()
			}
		}()
	}
	wg.Wait()

	if got := r.Counter(MetricRequests, "outcome", "served").Value(); got != workers*rounds {
		t.Fatalf("served = %d, want %d", got, workers*rounds)
	}
	var histTotal int64
	for _, s := range r.Snapshot() {
		if s.Name == MetricEngineSeconds {
			histTotal += s.Hist.Count
		}
	}
	if histTotal != workers*rounds {
		t.Fatalf("histogram observations = %d, want %d", histTotal, workers*rounds)
	}
	if r.Histogram(MetricSpanSeconds, "span", "hammer.span", "engine", "engine-0").Count() == 0 {
		t.Error("span histogram empty")
	}
	ev, total := r.Events()
	if total != workers*rounds*2 { // one span event + one point event per round
		t.Fatalf("event total = %d, want %d", total, workers*rounds*2)
	}
	if len(ev) != 64 {
		t.Fatalf("ring holds %d, want 64", len(ev))
	}
	if r.Gauge("sdf_hammer_inflight").Value() != 0 {
		t.Error("gauge did not return to zero")
	}
}
