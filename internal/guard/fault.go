// Deterministic fault injection for the resilience runtime. The
// degradation paths of the analysis stack — panic isolation, budget
// refusal, engine failure — are only trustworthy if tests can trigger
// them on demand, at a precise point, without sleeps or timing races.
// An Injector carried in the context arms counter-based faults: "panic
// at the 3rd meter checkpoint of the matrix engine", "refuse the 1st
// allocation of the traditional conversion". Each Meter consults the
// injector at its instrumentation points, so a fault fires after an
// exact, reproducible amount of work.
package guard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// FaultPoint identifies a class of instrumentation points inside a
// Meter at which an armed fault can fire.
type FaultPoint int

const (
	// PointCheckpoint fires at a context checkpoint: every Canceled
	// call, including the amortised polls driven by Tick, Firings and
	// States. One checkpoint event is counted per actual poll, not per
	// work unit, so the Nth checkpoint is deterministic for a given
	// CheckEvery and work sequence.
	PointCheckpoint FaultPoint = iota
	// PointPrecheck fires at an up-front admission check (NeedFirings,
	// NeedActors, NeedTokens), before the check's own logic runs.
	PointPrecheck
	// PointAlloc fires at a budgeted pre-allocation request
	// (Meter.Alloc), before the capacity is granted.
	PointAlloc
)

// String names the point for error messages.
func (p FaultPoint) String() string {
	switch p {
	case PointCheckpoint:
		return "checkpoint"
	case PointPrecheck:
		return "precheck"
	case PointAlloc:
		return "alloc"
	default:
		return fmt.Sprintf("point(%d)", int(p))
	}
}

// FaultMode selects what happens when a fault fires.
type FaultMode int

const (
	// ModeError returns a structured *EngineError wrapping
	// ErrEngineFailed, as if the engine had detected an internal
	// inconsistency.
	ModeError FaultMode = iota
	// ModePanic panics, exercising the Protect isolation layer.
	ModePanic
	// ModeRefuse returns a structured *EngineError wrapping
	// ErrBudgetExceeded, exercising the documented degradation path
	// (the resilient ladder records the refusal and moves on).
	ModeRefuse
)

// String names the mode for error messages.
func (mo FaultMode) String() string {
	switch mo {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeRefuse:
		return "refuse"
	default:
		return fmt.Sprintf("mode(%d)", int(mo))
	}
}

// Fault arms one deterministic failure: every Nth event matching
// (Engine, Point) triggers Mode. By default a fault is one-shot — after
// firing it is disarmed, so a retrying caller observes exactly one
// failure — but Times can rearm it for a fixed number of firings or
// forever, which is how a soak test keeps one engine sick for as long
// as it chooses.
type Fault struct {
	// Engine restricts the fault to meters created for that engine
	// name; empty matches every engine.
	Engine string
	// Point selects the instrumentation-point class.
	Point FaultPoint
	// Mode selects the failure behaviour.
	Mode FaultMode
	// N is the 1-based index of the matching event that triggers the
	// fault; values below 1 are treated as 1 (fire on the first match).
	// A repeating fault (Times != 0) resets its event count after each
	// firing, so it fires on every Nth match.
	N int64
	// Times bounds how often the fault fires: 0 and 1 mean one-shot,
	// larger values fire that many times, negative values never disarm.
	Times int64
}

type armedFault struct {
	Fault
	count int64 // matching events since the last firing
	fired int64 // total firings of this fault
}

// disarmed reports whether the fault has exhausted its firings.
func (f *armedFault) disarmed() bool {
	switch {
	case f.Times < 0:
		return false
	case f.Times <= 1:
		return f.fired >= 1
	default:
		return f.fired >= f.Times
	}
}

// Injector holds armed faults and counts matching events. It is safe
// for concurrent use: hedged engines racing in goroutines — and, in the
// serving layer, unrelated requests on separate server goroutines —
// share one injector through the context, so every counter (per-fault
// event counts, per-fault firings, the global fired total) is read and
// advanced under one lock, and a one-shot fault fires exactly once no
// matter how many meters strike it simultaneously.
type Injector struct {
	mu     sync.Mutex
	faults []armedFault
	fired  int64
}

// NewInjector arms the given faults.
func NewInjector(faults ...Fault) *Injector {
	inj := &Injector{}
	inj.Arm(faults...)
	return inj
}

// Arm appends more faults to the injector at runtime; a long-running
// server test arms and exhausts faults in phases without rebuilding the
// contexts that carry the injector. Safe for concurrent use with
// in-flight strikes.
func (inj *Injector) Arm(faults ...Fault) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, f := range faults {
		if f.N < 1 {
			f.N = 1
		}
		inj.faults = append(inj.faults, armedFault{Fault: f})
	}
}

// Fired reports how many fault firings have occurred so far (a
// repeating fault counts once per firing).
func (inj *Injector) Fired() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return int(inj.fired)
}

// strike records one event for engine at point p and reports the first
// armed fault whose count reached N, consuming one of its firings.
func (inj *Injector) strike(engine string, p FaultPoint) (Fault, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.disarmed() || f.Point != p || (f.Engine != "" && f.Engine != engine) {
			continue
		}
		f.count++
		if f.count >= f.N {
			f.count = 0
			f.fired++
			inj.fired++
			return f.Fault, true
		}
	}
	return Fault{}, false
}

type injectorKey struct{}

// WithInjector returns a context carrying inj; meters created from the
// context consult it at every instrumentation point.
func WithInjector(ctx context.Context, inj *Injector) context.Context {
	return context.WithValue(ctx, injectorKey{}, inj)
}

// InjectorFrom returns the injector carried by ctx, or nil.
func InjectorFrom(ctx context.Context) *Injector {
	inj, _ := ctx.Value(injectorKey{}).(*Injector)
	return inj
}

// injected consults the injector (if any) at point p and enacts the
// first fault that fires there.
func (m *Meter) injected(p FaultPoint) error {
	if m.inj == nil {
		return nil
	}
	f, ok := m.inj.strike(m.engine, p)
	if !ok {
		return nil
	}
	m.reg.Counter(obs.MetricFaultsFired, "engine", m.engine, "mode", f.Mode.String()).Inc()
	m.reg.Emit("guard.fault-fired",
		"engine", m.engine, "phase", m.phase, "point", p.String(), "mode", f.Mode.String())
	switch f.Mode {
	case ModePanic:
		panic(fmt.Sprintf("guard: injected panic in engine %s, phase %s, at %s #%d",
			m.engine, m.phase, p, f.N))
	case ModeRefuse:
		return m.fail(fmt.Errorf("%w: injected refusal at %s #%d",
			ErrBudgetExceeded, p, f.N))
	default:
		return m.fail(fmt.Errorf("%w: injected error at %s #%d",
			ErrEngineFailed, p, f.N))
	}
}

// Alloc grants a pre-allocation capacity derived from untrusted graph
// parameters: the returned capacity is clamped like SliceCap, and the
// request is an instrumentation point at which an armed allocation
// fault can refuse the grant. Engines use the returned capacity as a
// slice capacity hint and grow on demand past it.
func (m *Meter) Alloc(n int64) (int, error) {
	if err := m.injected(PointAlloc); err != nil {
		return 0, err
	}
	return SliceCap(n), nil
}
