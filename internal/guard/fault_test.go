package guard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// injCtx returns a context with an unlimited budget, checkpoint
// granularity 1 (so every work unit is a checkpoint) and the given
// faults armed.
func injCtx(faults ...Fault) (context.Context, *Injector) {
	inj := NewInjector(faults...)
	b := Unlimited()
	b.CheckEvery = 1
	ctx := WithInjector(WithBudget(context.Background(), b), inj)
	return ctx, inj
}

func TestInjectErrorAtNthCheckpoint(t *testing.T) {
	ctx, inj := injCtx(Fault{Engine: "matrix", Point: PointCheckpoint, Mode: ModeError, N: 3})
	m := NewMeter(ctx, "matrix")
	m.Phase("loop")
	for i := 1; i <= 2; i++ {
		if err := m.Tick(1); err != nil {
			t.Fatalf("checkpoint %d failed early: %v", i, err)
		}
	}
	err := m.Tick(1)
	if err == nil {
		t.Fatal("3rd checkpoint did not fire the armed fault")
	}
	if !errors.Is(err, ErrEngineFailed) {
		t.Errorf("injected error wraps %v, want ErrEngineFailed", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Engine != "matrix" || ee.Phase != "loop" {
		t.Errorf("injected error not attributed: %v", err)
	}
	if inj.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", inj.Fired())
	}
	// One-shot: the disarmed fault never fires again.
	for i := 0; i < 10; i++ {
		if err := m.Tick(1); err != nil {
			t.Fatalf("disarmed fault fired again: %v", err)
		}
	}
}

func TestInjectEngineSelectivity(t *testing.T) {
	ctx, inj := injCtx(Fault{Engine: "matrix", Point: PointCheckpoint, Mode: ModeError})
	other := NewMeter(ctx, "statespace")
	for i := 0; i < 5; i++ {
		if err := other.Tick(1); err != nil {
			t.Fatalf("fault armed for matrix fired in statespace: %v", err)
		}
	}
	if inj.Fired() != 0 {
		t.Fatalf("Fired = %d before the matching engine ran", inj.Fired())
	}
	if err := NewMeter(ctx, "matrix").Canceled(); !errors.Is(err, ErrEngineFailed) {
		t.Errorf("matching engine's first checkpoint: %v, want injected failure", err)
	}
}

func TestInjectPanicCaughtByProtect(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointCheckpoint, Mode: ModePanic})
	err := Protect("sim", "run", func() error {
		m := NewMeter(ctx, "sim")
		return m.Tick(1)
	})
	if !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("Protect returned %v, want ErrEngineFailed from injected panic", err)
	}
}

func TestInjectRefuseAtPrecheck(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointPrecheck, Mode: ModeRefuse})
	m := NewMeter(ctx, "traditional")
	err := m.NeedActors(4)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("NeedActors = %v, want injected ErrBudgetExceeded", err)
	}
	// Other prechecks are untouched once the one-shot fault fired.
	if err := m.NeedFirings(4); err != nil {
		t.Errorf("NeedFirings after disarm: %v", err)
	}
	if err := m.NeedTokens(4); err != nil {
		t.Errorf("NeedTokens after disarm: %v", err)
	}
}

func TestInjectRefuseNthAlloc(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointAlloc, Mode: ModeRefuse, N: 2})
	m := NewMeter(ctx, "schedule")
	if c, err := m.Alloc(100); err != nil || c != 100 {
		t.Fatalf("1st Alloc = (%d, %v), want (100, nil)", c, err)
	}
	c, err := m.Alloc(100)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("2nd Alloc = (%d, %v), want injected ErrBudgetExceeded", c, err)
	}
}

func TestAllocClampsLikeSliceCap(t *testing.T) {
	m := NewMeter(context.Background(), "schedule")
	if c, err := m.Alloc(-1); err != nil || c != 0 {
		t.Errorf("Alloc(-1) = (%d, %v), want (0, nil)", c, err)
	}
	if c, err := m.Alloc(1 << 40); err != nil || c != 1<<20 {
		t.Errorf("Alloc(1<<40) = (%d, %v), want clamp to %d", c, err, 1<<20)
	}
}

func TestInjectorZeroNMeansFirst(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointCheckpoint, Mode: ModeError, N: 0})
	if err := NewMeter(ctx, "x").Canceled(); !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("N=0 fault did not fire on the first checkpoint: %v", err)
	}
}

func TestInjectRepeatingFault(t *testing.T) {
	// Times=3, N=2: fires on every 2nd checkpoint, three times total.
	ctx, inj := injCtx(Fault{Point: PointCheckpoint, Mode: ModeError, N: 2, Times: 3})
	m := NewMeter(ctx, "matrix")
	var failures int
	for i := 0; i < 20; i++ {
		if err := m.Tick(1); err != nil {
			failures++
			if want := []int{1, 3, 5}; failures <= 3 && i != want[failures-1] {
				t.Errorf("firing %d at checkpoint %d, want %d", failures, i, want[failures-1])
			}
		}
	}
	if failures != 3 {
		t.Fatalf("repeating fault fired %d times, want 3", failures)
	}
	if inj.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", inj.Fired())
	}
}

func TestInjectUnlimitedFault(t *testing.T) {
	ctx, inj := injCtx(Fault{Engine: "statespace", Point: PointCheckpoint, Mode: ModeError, Times: -1})
	m := NewMeter(ctx, "statespace")
	for i := 0; i < 10; i++ {
		if err := m.Tick(1); !errors.Is(err, ErrEngineFailed) {
			t.Fatalf("unlimited fault went quiet at checkpoint %d: %v", i, err)
		}
	}
	if inj.Fired() != 10 {
		t.Errorf("Fired = %d, want 10", inj.Fired())
	}
}

// TestInjectorConcurrentOneShot hammers a single injector from many
// worker goroutines, the access pattern of the serving layer where
// every request goroutine strikes the same injector. Run under -race
// this proves the counters are synchronised; the assertion proves a
// one-shot fault fires exactly once across all workers.
func TestInjectorConcurrentOneShot(t *testing.T) {
	const workers, ticks = 16, 200
	ctx, inj := injCtx(
		Fault{Point: PointCheckpoint, Mode: ModeError, N: 100},
		Fault{Point: PointPrecheck, Mode: ModeRefuse, N: 50},
	)
	var wg sync.WaitGroup
	var checkpointFaults, precheckFaults atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := NewMeter(ctx, "matrix")
			for i := 0; i < ticks; i++ {
				if err := m.Tick(1); err != nil {
					checkpointFaults.Add(1)
				}
				if err := m.NeedFirings(1); errors.Is(err, ErrBudgetExceeded) {
					precheckFaults.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := checkpointFaults.Load(); got != 1 {
		t.Errorf("one-shot checkpoint fault fired %d times across workers, want 1", got)
	}
	if got := precheckFaults.Load(); got != 1 {
		t.Errorf("one-shot precheck fault fired %d times across workers, want 1", got)
	}
	if inj.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", inj.Fired())
	}
}

// TestInjectorConcurrentArm arms faults while workers are striking:
// the serving soak test does exactly this to switch injection phases.
func TestInjectorConcurrentArm(t *testing.T) {
	const workers = 8
	ctx, inj := injCtx()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var fired atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := NewMeter(ctx, "statespace")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Tick(1); err != nil {
					fired.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		inj.Arm(Fault{Engine: "statespace", Point: PointCheckpoint, Mode: ModeError})
	}
	// Wait until every armed fault has been consumed, then stop.
	for inj.Fired() < 50 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if got := fired.Load(); got != 50 {
		t.Errorf("workers observed %d firings, want 50", got)
	}
}

func TestPointAndModeStrings(t *testing.T) {
	cases := map[string]string{
		PointCheckpoint.String(): "checkpoint",
		PointPrecheck.String():   "precheck",
		PointAlloc.String():      "alloc",
		ModeError.String():       "error",
		ModePanic.String():       "panic",
		ModeRefuse.String():      "refuse",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if FaultPoint(99).String() == "" || FaultMode(99).String() == "" {
		t.Error("out-of-range String() empty")
	}
}
