package guard

import (
	"context"
	"errors"
	"testing"
)

// injCtx returns a context with an unlimited budget, checkpoint
// granularity 1 (so every work unit is a checkpoint) and the given
// faults armed.
func injCtx(faults ...Fault) (context.Context, *Injector) {
	inj := NewInjector(faults...)
	b := Unlimited()
	b.CheckEvery = 1
	ctx := WithInjector(WithBudget(context.Background(), b), inj)
	return ctx, inj
}

func TestInjectErrorAtNthCheckpoint(t *testing.T) {
	ctx, inj := injCtx(Fault{Engine: "matrix", Point: PointCheckpoint, Mode: ModeError, N: 3})
	m := NewMeter(ctx, "matrix")
	m.Phase("loop")
	for i := 1; i <= 2; i++ {
		if err := m.Tick(1); err != nil {
			t.Fatalf("checkpoint %d failed early: %v", i, err)
		}
	}
	err := m.Tick(1)
	if err == nil {
		t.Fatal("3rd checkpoint did not fire the armed fault")
	}
	if !errors.Is(err, ErrEngineFailed) {
		t.Errorf("injected error wraps %v, want ErrEngineFailed", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) || ee.Engine != "matrix" || ee.Phase != "loop" {
		t.Errorf("injected error not attributed: %v", err)
	}
	if inj.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", inj.Fired())
	}
	// One-shot: the disarmed fault never fires again.
	for i := 0; i < 10; i++ {
		if err := m.Tick(1); err != nil {
			t.Fatalf("disarmed fault fired again: %v", err)
		}
	}
}

func TestInjectEngineSelectivity(t *testing.T) {
	ctx, inj := injCtx(Fault{Engine: "matrix", Point: PointCheckpoint, Mode: ModeError})
	other := NewMeter(ctx, "statespace")
	for i := 0; i < 5; i++ {
		if err := other.Tick(1); err != nil {
			t.Fatalf("fault armed for matrix fired in statespace: %v", err)
		}
	}
	if inj.Fired() != 0 {
		t.Fatalf("Fired = %d before the matching engine ran", inj.Fired())
	}
	if err := NewMeter(ctx, "matrix").Canceled(); !errors.Is(err, ErrEngineFailed) {
		t.Errorf("matching engine's first checkpoint: %v, want injected failure", err)
	}
}

func TestInjectPanicCaughtByProtect(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointCheckpoint, Mode: ModePanic})
	err := Protect("sim", "run", func() error {
		m := NewMeter(ctx, "sim")
		return m.Tick(1)
	})
	if !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("Protect returned %v, want ErrEngineFailed from injected panic", err)
	}
}

func TestInjectRefuseAtPrecheck(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointPrecheck, Mode: ModeRefuse})
	m := NewMeter(ctx, "traditional")
	err := m.NeedActors(4)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("NeedActors = %v, want injected ErrBudgetExceeded", err)
	}
	// Other prechecks are untouched once the one-shot fault fired.
	if err := m.NeedFirings(4); err != nil {
		t.Errorf("NeedFirings after disarm: %v", err)
	}
	if err := m.NeedTokens(4); err != nil {
		t.Errorf("NeedTokens after disarm: %v", err)
	}
}

func TestInjectRefuseNthAlloc(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointAlloc, Mode: ModeRefuse, N: 2})
	m := NewMeter(ctx, "schedule")
	if c, err := m.Alloc(100); err != nil || c != 100 {
		t.Fatalf("1st Alloc = (%d, %v), want (100, nil)", c, err)
	}
	c, err := m.Alloc(100)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("2nd Alloc = (%d, %v), want injected ErrBudgetExceeded", c, err)
	}
}

func TestAllocClampsLikeSliceCap(t *testing.T) {
	m := NewMeter(context.Background(), "schedule")
	if c, err := m.Alloc(-1); err != nil || c != 0 {
		t.Errorf("Alloc(-1) = (%d, %v), want (0, nil)", c, err)
	}
	if c, err := m.Alloc(1 << 40); err != nil || c != 1<<20 {
		t.Errorf("Alloc(1<<40) = (%d, %v), want clamp to %d", c, err, 1<<20)
	}
}

func TestInjectorZeroNMeansFirst(t *testing.T) {
	ctx, _ := injCtx(Fault{Point: PointCheckpoint, Mode: ModeError, N: 0})
	if err := NewMeter(ctx, "x").Canceled(); !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("N=0 fault did not fire on the first checkpoint: %v", err)
	}
}

func TestPointAndModeStrings(t *testing.T) {
	cases := map[string]string{
		PointCheckpoint.String(): "checkpoint",
		PointPrecheck.String():   "precheck",
		PointAlloc.String():      "alloc",
		ModeError.String():       "error",
		ModePanic.String():       "panic",
		ModeRefuse.String():      "refuse",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if FaultPoint(99).String() == "" || FaultMode(99).String() == "" {
		t.Error("out-of-range String() empty")
	}
}
