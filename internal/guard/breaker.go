// Circuit breakers for the serving layer. A long-running analysis
// service cannot afford to keep feeding work to an engine that has
// started panicking or blowing its deadlines — every doomed attempt
// burns budget, a worker slot and wall time. A Breaker wraps one engine
// with the classic three-state machine:
//
//	closed    — requests flow; a streak of trip-worthy failures opens it.
//	open      — requests are refused instantly with ErrBreakerOpen until
//	            the cooldown elapses.
//	half-open — exactly one probe request is admitted; its success closes
//	            the breaker, its failure re-opens it, and a neutral
//	            outcome (lost race, cancellation) releases the probe slot
//	            for the next candidate.
//
// The clock is injectable so every transition is testable without
// sleeping; the zero options give sane production defaults.
package guard

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen marks work refused because the engine's circuit
// breaker is open (or its half-open probe slot is already taken).
var ErrBreakerOpen = errors.New("guard: circuit breaker open")

// BreakerState is the state of a Breaker.
type BreakerState int

const (
	// BreakerClosed admits every request.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request at a time.
	BreakerHalfOpen
)

// String names the state for health reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions configures a Breaker. The zero value is usable: five
// consecutive failures trip the breaker, it cools down for a second,
// and the wall clock is time.Now.
type BreakerOptions struct {
	// Threshold is the consecutive-failure streak that trips a closed
	// breaker; values below 1 mean the default of 5.
	Threshold int
	// Cooldown is how long an open breaker refuses before allowing a
	// half-open probe; values <= 0 mean the default of one second.
	Cooldown time.Duration
	// Now supplies the clock; nil means time.Now. Tests inject a fake
	// clock so open->half-open transitions happen without sleeping.
	Now func() time.Time
	// OnTransition, when non-nil, is called after every state change
	// with the old and new state. It runs synchronously under the
	// breaker's lock, so it must be fast and must not call back into
	// the breaker; the serving layer points it at metric counters.
	OnTransition func(from, to BreakerState)
}

func (o BreakerOptions) normalized() BreakerOptions {
	if o.Threshold < 1 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a three-state circuit breaker, safe for concurrent use.
// Construct with NewBreaker.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	streak   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: the single probe slot is taken
	trips    int64     // lifetime closed->open transitions
}

// NewBreaker returns a closed breaker with the given options.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts.normalized()}
}

// Allow reports whether a request may proceed. In the open state it
// returns ErrBreakerOpen until the cooldown has elapsed, at which point
// the breaker moves to half-open and admits the caller as the probe.
// In half-open, only the single probe slot is granted; every admitted
// caller must later report exactly one of Success, Failure or Forgive.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) < b.opts.Cooldown {
			return ErrBreakerOpen
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a healthy completion: it resets the failure streak
// and, from half-open, closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak = 0
	if b.state == BreakerHalfOpen {
		b.transition(BreakerClosed)
		b.probing = false
	}
}

// Failure records a trip-worthy failure (engine failure, panic,
// deadline): from closed it extends the streak and opens the breaker at
// the threshold; from half-open it re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.streak++
		if b.streak >= b.opts.Threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	}
}

// open transitions to the open state; callers hold b.mu.
func (b *Breaker) open() {
	b.transition(BreakerOpen)
	b.openedAt = b.opts.Now()
	b.streak = 0
	b.probing = false
	b.trips++
}

// transition moves to the new state and notifies OnTransition; callers
// hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.opts.OnTransition != nil && from != to {
		b.opts.OnTransition(from, to)
	}
}

// Forgive records a neutral outcome — the request was cancelled because
// a sibling engine answered first, or its budget refused the graph —
// that says nothing about the engine's health. It releases a half-open
// probe slot without a verdict and leaves the failure streak untouched.
func (b *Breaker) Forgive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// State returns the current state, performing the lazy open->half-open
// transition if the cooldown has elapsed, so health reports reflect
// what Allow would do.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown {
		b.transition(BreakerHalfOpen)
		b.probing = false
	}
	return b.state
}

// Streak returns the current consecutive-failure count (closed state).
func (b *Breaker) Streak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.streak
}

// Trips returns how many times the breaker has opened over its
// lifetime.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
