// Package guard is the resilience layer of the analysis stack. The
// paper's own motivation (§6) is that classical SDF algorithms blow up —
// the iteration length, and with it the traditional conversion, the
// schedule, the simulation and the state space, can be exponential in
// the graph description — so every long-running engine in this
// repository runs under a guard:
//
//   - a context.Context whose deadline/cancellation is honoured at
//     periodic checkpoints inside the hot loops,
//   - an explicit work Budget (states explored, firings executed, HSDF
//     actors materialised, initial-token count) checked both up front
//     against static size estimates and during execution,
//   - panic isolation (Protect) that converts an engine panic into a
//     structured *EngineError instead of killing the process, and
//   - a small error taxonomy (ErrBudgetExceeded, ErrCanceled,
//     ErrEngineFailed) that callers test with errors.Is to distinguish
//     "the input is too big", "you told me to stop" and "the engine is
//     broken".
//
// The package deliberately imports nothing from the rest of the
// repository — except internal/obs, which is itself dependency-free —
// so that every layer — maxplus, schedule, core, transform, sim,
// buffersizing, analysis — can depend on it. When the context carries
// an obs.Registry (the serving layer injects one), meters count budget
// refusals and fired fault injections into it; with no registry every
// instrumentation site is a nil-check no-op.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/obs"
)

// Sentinel errors of the taxonomy. Errors produced by this package wrap
// exactly one of them (plus, for ErrCanceled, the context's own cause),
// so errors.Is classification is always possible.
var (
	// ErrBudgetExceeded marks work refused or aborted because a Budget
	// dimension was (or would be) exhausted.
	ErrBudgetExceeded = errors.New("guard: work budget exceeded")
	// ErrCanceled marks work aborted because the context was done; the
	// context's cause (context.Canceled or context.DeadlineExceeded) is
	// wrapped alongside it.
	ErrCanceled = errors.New("guard: analysis canceled")
	// ErrEngineFailed marks an engine that panicked or failed
	// internally; the analysis runtime converts such failures into
	// errors so one bad engine cannot kill a multi-engine cross-check.
	ErrEngineFailed = errors.New("guard: engine failed")
)

// Budget caps the work one analysis may perform. A zero field means "use
// the default for this dimension"; a negative field means "unlimited".
type Budget struct {
	// MaxStates bounds state-space exploration: power-iteration steps
	// and other per-state work.
	MaxStates int64
	// MaxFirings bounds firing-granular work: schedule construction,
	// symbolic execution and discrete-event simulation all cost one
	// unit per actor firing, and the iteration length Σq is checked
	// against it before any of them starts.
	MaxFirings int64
	// MaxHSDFActors bounds the number of actors a conversion may
	// materialise; the traditional conversion's Σq estimate is refused
	// up front when it exceeds this.
	MaxHSDFActors int64
	// MaxTokens bounds the initial-token count N accepted by the
	// matrix-based engines, whose dense N×N (and Karp's N²) tables
	// would otherwise exhaust memory.
	MaxTokens int64
	// CheckEvery is the checkpoint granularity: how many work units may
	// pass between polls of the context. Hot loops stay branch-cheap
	// between polls.
	CheckEvery int
}

// Default returns the budget used when a context carries none: generous
// enough for every graph of the paper's benchmark suite, small enough
// that an explosive conversion is refused in microseconds instead of
// exhausting the machine.
func Default() Budget {
	return Budget{
		MaxStates:     1 << 22,
		MaxFirings:    1 << 24,
		MaxHSDFActors: 1 << 20,
		MaxTokens:     1 << 11,
		CheckEvery:    1024,
	}
}

// Unlimited returns a budget with every dimension disabled. Deadlines
// and cancellation still apply; only the work caps are lifted.
func Unlimited() Budget {
	return Budget{MaxStates: -1, MaxFirings: -1, MaxHSDFActors: -1, MaxTokens: -1}
}

// Uniform returns a budget with every work dimension set to n (n <= 0
// means unlimited), the shape the -budget command-line flag exposes.
func Uniform(n int64) Budget {
	if n <= 0 {
		return Unlimited()
	}
	return Budget{MaxStates: n, MaxFirings: n, MaxHSDFActors: n, MaxTokens: n}
}

// Normalized replaces zero fields with their defaults so that callers
// can test budget dimensions with a plain >= 0 comparison.
func (b Budget) Normalized() Budget {
	d := Default()
	if b.MaxStates == 0 {
		b.MaxStates = d.MaxStates
	}
	if b.MaxFirings == 0 {
		b.MaxFirings = d.MaxFirings
	}
	if b.MaxHSDFActors == 0 {
		b.MaxHSDFActors = d.MaxHSDFActors
	}
	if b.MaxTokens == 0 {
		b.MaxTokens = d.MaxTokens
	}
	if b.CheckEvery <= 0 {
		b.CheckEvery = d.CheckEvery
	}
	return b
}

type budgetKey struct{}

// WithBudget returns a context carrying b; every Ctx analysis entry
// point reads its budget from the context it is given.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the normalized budget carried by ctx, or the
// default budget when the context carries none.
func BudgetFrom(ctx context.Context) Budget {
	if b, ok := ctx.Value(budgetKey{}).(Budget); ok {
		return b.Normalized()
	}
	return Default()
}

// EngineError is the structured error of the analysis runtime: it names
// the engine and phase that stopped and carries the work counters at the
// moment of failure, and unwraps to the taxonomy sentinel (and, for
// cancellation, the context cause) for errors.Is.
type EngineError struct {
	// Engine names the analysis engine ("matrix", "statespace",
	// "traditional", "simulate", ...).
	Engine string
	// Phase names the stage within the engine ("precheck", "schedule",
	// "symbolic", "power-iteration", ...).
	Phase string
	// States and Firings are the work counters consumed when the
	// engine stopped.
	States  int64
	Firings int64
	// Err wraps exactly one taxonomy sentinel.
	Err error
}

// Error renders the engine, phase, cause and budget state.
func (e *EngineError) Error() string {
	return fmt.Sprintf("guard: engine %s: phase %s: %v [states=%d firings=%d]",
		e.Engine, e.Phase, e.Err, e.States, e.Firings)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *EngineError) Unwrap() error { return e.Err }

// Meter is the per-engine work accountant threaded through hot loops: it
// charges work units against the budget and polls the context every
// CheckEvery units. The zero Meter is not usable; construct with
// NewMeter.
type Meter struct {
	engine    string
	phase     string
	ctx       context.Context
	budget    Budget
	states    int64
	firings   int64
	sincePoll int
	inj       *Injector
	reg       *obs.Registry
}

// NewMeter returns a meter for the named engine, reading the budget,
// any armed fault injector and any observability registry from ctx.
func NewMeter(ctx context.Context, engine string) *Meter {
	return &Meter{
		engine: engine, phase: "start", ctx: ctx,
		budget: BudgetFrom(ctx), inj: InjectorFrom(ctx),
		reg: obs.FromContext(ctx),
	}
}

// Budget returns the normalized budget the meter enforces.
func (m *Meter) Budget() Budget { return m.budget }

// Phase labels the current stage of the engine; it appears in every
// EngineError the meter produces from now on.
func (m *Meter) Phase(name string) { m.phase = name }

func (m *Meter) fail(cause error) *EngineError {
	// Budget exhaustion is the one meter outcome the metrics plane
	// cares about per se: deadlines and cancellations are properties of
	// the request, but a budget refusal says the workload outgrew the
	// configured caps. Cold path — the analysis is over.
	if errors.Is(cause, ErrBudgetExceeded) {
		m.reg.Counter(obs.MetricBudgetExhausted, "engine", m.engine).Inc()
		m.reg.Emit("guard.budget-exhausted", "engine", m.engine, "phase", m.phase)
	}
	return &EngineError{
		Engine: m.engine, Phase: m.phase,
		States: m.states, Firings: m.firings, Err: cause,
	}
}

// Canceled polls the context immediately and returns a structured
// cancellation error when it is done. Each call is one checkpoint
// event for fault injection.
func (m *Meter) Canceled() error {
	if err := m.injected(PointCheckpoint); err != nil {
		return err
	}
	select {
	case <-m.ctx.Done():
		return m.fail(fmt.Errorf("%w: %w", ErrCanceled, context.Cause(m.ctx)))
	default:
		return nil
	}
}

// poll amortises context checks: only every CheckEvery accumulated work
// units is the (comparatively expensive) channel select performed.
func (m *Meter) poll(n int64) error {
	if n >= int64(m.budget.CheckEvery) {
		m.sincePoll = m.budget.CheckEvery
	} else {
		m.sincePoll += int(n)
	}
	if m.sincePoll < m.budget.CheckEvery {
		return nil
	}
	m.sincePoll = 0
	return m.Canceled()
}

// Tick charges n unclassified work units (loop iterations that are
// neither firings nor states): it only drives the periodic context
// poll.
func (m *Meter) Tick(n int64) error { return m.poll(n) }

// Firings charges n firings against MaxFirings and polls the context.
func (m *Meter) Firings(n int64) error {
	m.firings += n
	if max := m.budget.MaxFirings; max >= 0 && m.firings > max {
		return m.fail(fmt.Errorf("%w: %d firings exceed the limit of %d",
			ErrBudgetExceeded, m.firings, max))
	}
	return m.poll(n)
}

// States charges n explored states against MaxStates and polls the
// context.
func (m *Meter) States(n int64) error {
	m.states += n
	if max := m.budget.MaxStates; max >= 0 && m.states > max {
		return m.fail(fmt.Errorf("%w: %d states exceed the limit of %d",
			ErrBudgetExceeded, m.states, max))
	}
	return m.poll(n)
}

// NeedFirings refuses work up front when a statically known firing count
// exceeds the budget. A negative estimate means the estimate itself
// overflowed int64, which is refused unconditionally (not even an
// unlimited budget can execute more than int64 firings). It also polls
// the context, so an already-expired deadline fails here.
func (m *Meter) NeedFirings(estimate int64) error {
	if err := m.injected(PointPrecheck); err != nil {
		return err
	}
	if estimate < 0 {
		return m.fail(fmt.Errorf("%w: estimated firing count overflows int64", ErrBudgetExceeded))
	}
	if max := m.budget.MaxFirings; max >= 0 && estimate > max {
		return m.fail(fmt.Errorf("%w: estimated %d firings exceed the limit of %d",
			ErrBudgetExceeded, estimate, max))
	}
	return m.Canceled()
}

// NeedActors refuses a conversion up front when its statically estimated
// actor count exceeds MaxHSDFActors (negative estimate: the estimate
// overflowed int64).
func (m *Meter) NeedActors(estimate int64) error {
	if err := m.injected(PointPrecheck); err != nil {
		return err
	}
	if estimate < 0 {
		return m.fail(fmt.Errorf("%w: estimated actor count overflows int64", ErrBudgetExceeded))
	}
	if max := m.budget.MaxHSDFActors; max >= 0 && estimate > max {
		return m.fail(fmt.Errorf("%w: estimated %d HSDF actors exceed the limit of %d",
			ErrBudgetExceeded, estimate, max))
	}
	return m.Canceled()
}

// NeedTokens refuses a matrix-based engine up front when the
// initial-token count N exceeds MaxTokens (dense N×N tables).
func (m *Meter) NeedTokens(n int64) error {
	if err := m.injected(PointPrecheck); err != nil {
		return err
	}
	if max := m.budget.MaxTokens; max >= 0 && n > max {
		return m.fail(fmt.Errorf("%w: %d initial tokens exceed the limit of %d",
			ErrBudgetExceeded, n, max))
	}
	return m.Canceled()
}

// SliceCap clamps a pre-allocation capacity derived from untrusted graph
// parameters: slices sized from repetition vectors must grow on demand
// past this bound instead of allocating gigabytes before the first
// checkpoint can fire.
func SliceCap(n int64) int {
	const max = 1 << 20
	switch {
	case n < 0:
		return 0
	case n > max:
		return max
	default:
		return int(n)
	}
}

// Protect runs f with panic isolation: a panic inside f becomes a
// structured *EngineError wrapping ErrEngineFailed (with the panic value
// and a trimmed stack), so one broken engine degrades instead of
// killing a multi-engine analysis.
func Protect(engine, phase string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			const maxStack = 4096
			if len(stack) > maxStack {
				stack = stack[:maxStack]
			}
			err = &EngineError{
				Engine: engine, Phase: phase,
				Err: fmt.Errorf("%w: panic: %v\n%s", ErrEngineFailed, r, stack),
			}
		}
	}()
	return f()
}
