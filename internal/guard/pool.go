// Pool is the admission-control side of the work budget: where a
// Budget caps how much work one analysis may perform, a Pool caps how
// much estimated work the whole process may have in flight at once.
// Each admitted request reserves its static cost estimate up front and
// releases it when it finishes; once the pool is exhausted, further
// requests are refused instantly instead of queueing the process into
// memory exhaustion.
package guard

import (
	"fmt"
	"sync"
)

// Pool is a reservation pool of abstract work units, safe for
// concurrent use. The zero Pool is unusable; construct with NewPool.
type Pool struct {
	mu       sync.Mutex
	capacity int64
	used     int64
}

// NewPool returns a pool with the given capacity; capacities below 1
// are treated as 1 so that TryAcquire(0) still succeeds while any real
// reservation is refused.
func NewPool(capacity int64) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{capacity: capacity}
}

// TryAcquire reserves n work units without blocking and reports whether
// the reservation fit. Negative n (an overflowed estimate) never fits.
func (p *Pool) TryAcquire(n int64) bool {
	if n < 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used+n > p.capacity {
		return false
	}
	p.used += n
	return true
}

// Release returns n previously acquired units to the pool. Releasing
// more than was acquired panics: it is a bookkeeping bug that would
// silently widen the admission gate.
func (p *Pool) Release(n int64) {
	if n < 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.used {
		panic(fmt.Sprintf("guard: pool release of %d exceeds %d in use", n, p.used))
	}
	p.used -= n
}

// InUse returns the currently reserved units.
func (p *Pool) InUse() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Capacity returns the pool's total capacity.
func (p *Pool) Capacity() int64 { return p.capacity }

// Headroom returns the units still available for reservation.
func (p *Pool) Headroom() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.used
}
