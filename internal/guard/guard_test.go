package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBudgetNormalized(t *testing.T) {
	d := Default()
	n := Budget{}.Normalized()
	if n != d.Normalized() {
		t.Errorf("zero budget normalizes to %+v, want default %+v", n, d)
	}
	u := Unlimited().Normalized()
	if u.MaxStates >= 0 || u.MaxFirings >= 0 || u.MaxHSDFActors >= 0 || u.MaxTokens >= 0 {
		t.Errorf("unlimited budget has a finite dimension: %+v", u)
	}
	if u.CheckEvery <= 0 {
		t.Errorf("unlimited budget lost its checkpoint granularity: %+v", u)
	}
	if got := Uniform(7); got.MaxStates != 7 || got.MaxFirings != 7 || got.MaxHSDFActors != 7 || got.MaxTokens != 7 {
		t.Errorf("Uniform(7) = %+v", got)
	}
	if got := Uniform(0); got != Unlimited() {
		t.Errorf("Uniform(0) = %+v, want unlimited", got)
	}
}

func TestBudgetContextRoundTrip(t *testing.T) {
	b := Budget{MaxFirings: 42}
	ctx := WithBudget(context.Background(), b)
	got := BudgetFrom(ctx)
	if got.MaxFirings != 42 {
		t.Errorf("MaxFirings = %d, want 42", got.MaxFirings)
	}
	if got.MaxStates != Default().MaxStates {
		t.Errorf("unset dimension not defaulted: %+v", got)
	}
	if BudgetFrom(context.Background()) != Default().Normalized() {
		t.Error("bare context does not carry the default budget")
	}
}

func TestMeterFiringsBudget(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MaxFirings: 10})
	m := NewMeter(ctx, "test")
	m.Phase("loop")
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		err = m.Firings(1)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if ee.Engine != "test" || ee.Phase != "loop" || ee.Firings != 11 {
		t.Errorf("EngineError = %+v", ee)
	}
}

func TestMeterStatesBudget(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MaxStates: 3})
	m := NewMeter(ctx, "test")
	if err := m.States(3); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := m.States(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestMeterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(WithBudget(context.Background(), Unlimited()))
	m := NewMeter(ctx, "test")
	if err := m.Canceled(); err != nil {
		t.Fatalf("fresh context reported canceled: %v", err)
	}
	cancel()
	err := m.Canceled()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestMeterDeadlineViaTick(t *testing.T) {
	ctx, cancel := context.WithTimeout(WithBudget(context.Background(), Unlimited()), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	m := NewMeter(ctx, "test")
	var err error
	// Ticks below CheckEvery do not poll; crossing the threshold does.
	for i := 0; i < 2*m.Budget().CheckEvery && err == nil; i++ {
		err = m.Tick(1)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestNeedHelpers(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MaxFirings: 100, MaxHSDFActors: 50, MaxTokens: 8})
	m := NewMeter(ctx, "test")
	if err := m.NeedFirings(100); err != nil {
		t.Errorf("NeedFirings(100): %v", err)
	}
	if err := m.NeedFirings(101); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("NeedFirings(101) = %v, want ErrBudgetExceeded", err)
	}
	if err := m.NeedFirings(-1); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("NeedFirings(-1) = %v, want ErrBudgetExceeded (overflowed estimate)", err)
	}
	if err := m.NeedActors(51); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("NeedActors(51) = %v, want ErrBudgetExceeded", err)
	}
	if err := m.NeedTokens(9); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("NeedTokens(9) = %v, want ErrBudgetExceeded", err)
	}
	// Unlimited budget refuses only overflowed estimates.
	mu := NewMeter(WithBudget(context.Background(), Unlimited()), "test")
	if err := mu.NeedFirings(1 << 62); err != nil {
		t.Errorf("unlimited NeedFirings: %v", err)
	}
	if err := mu.NeedFirings(-1); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("unlimited NeedFirings(-1) = %v, want ErrBudgetExceeded", err)
	}
}

func TestSliceCap(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want int
	}{{-5, 0}, {0, 0}, {100, 100}, {1 << 40, 1 << 20}} {
		if got := SliceCap(tc.n); got != tc.want {
			t.Errorf("SliceCap(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestProtectPanic(t *testing.T) {
	err := Protect("hsdf", "convert", func() error {
		var s []int
		_ = s[3] // index out of range
		return nil
	})
	if !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("err = %v, want ErrEngineFailed", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if ee.Engine != "hsdf" || ee.Phase != "convert" {
		t.Errorf("EngineError = %+v", ee)
	}
}

func TestProtectPassesThrough(t *testing.T) {
	if err := Protect("e", "p", func() error { return nil }); err != nil {
		t.Errorf("nil func: %v", err)
	}
	sentinel := errors.New("boom")
	if err := Protect("e", "p", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("error not passed through: %v", err)
	}
}
