package guard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMeterCountsBudgetExhaustion: a meter whose context carries a
// registry counts every budget refusal against the engine's series.
func TestMeterCountsBudgetExhaustion(t *testing.T) {
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	ctx = WithBudget(ctx, Budget{MaxFirings: 2, CheckEvery: 1})

	m := NewMeter(ctx, "matrix")
	if err := m.Firings(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Firings(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	// The up-front estimate refusal counts too.
	m2 := NewMeter(ctx, "matrix")
	if err := m2.NeedFirings(100); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter(obs.MetricBudgetExhausted, "engine", "matrix").Value(); got != 2 {
		t.Errorf("budget-exhausted counter = %d, want 2", got)
	}
}

// TestMeterWithoutRegistry: the acceptance contract — an analysis with
// no registry attached runs exactly as before.
func TestMeterWithoutRegistry(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MaxStates: 1, CheckEvery: 1})
	m := NewMeter(ctx, "statespace")
	if err := m.States(1); err != nil {
		t.Fatal(err)
	}
	if err := m.States(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
}

// TestInjectorCountsFaultsFired: fired faults are visible as counters
// and the breaker hook reports every transition.
func TestInjectorCountsFaultsFired(t *testing.T) {
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	ctx = WithInjector(ctx, NewInjector(
		Fault{Engine: "hsdf", Point: PointPrecheck, Mode: ModeRefuse},
		Fault{Engine: "hsdf", Point: PointCheckpoint, Mode: ModeError},
	))

	m := NewMeter(ctx, "hsdf")
	if err := m.NeedActors(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("precheck fault = %v", err)
	}
	if err := m.Canceled(); !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("checkpoint fault = %v", err)
	}
	if got := reg.Counter(obs.MetricFaultsFired, "engine", "hsdf", "mode", "refuse").Value(); got != 1 {
		t.Errorf("refuse firings = %d", got)
	}
	if got := reg.Counter(obs.MetricFaultsFired, "engine", "hsdf", "mode", "error").Value(); got != 1 {
		t.Errorf("error firings = %d", got)
	}
}

// TestBreakerOnTransition records the full trip/probe/heal cycle
// through the callback.
func TestBreakerOnTransition(t *testing.T) {
	now := time.Unix(0, 0)
	var seen []string
	b := NewBreaker(BreakerOptions{
		Threshold: 2,
		Cooldown:  time.Second,
		Now:       func() time.Time { return now },
		OnTransition: func(from, to BreakerState) {
			seen = append(seen, from.String()+">"+to.String())
		},
	})
	b.Failure()
	b.Failure() // trips: closed -> open
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
	now = now.Add(2 * time.Second)
	if err := b.Allow(); err != nil { // open -> half-open, probe granted
		t.Fatal(err)
	}
	b.Success() // half-open -> closed
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}
