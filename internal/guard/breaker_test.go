package guard

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manual clock for breaker tests: transitions happen
// when the test advances it, never by sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	return NewBreaker(BreakerOptions{Threshold: threshold, Cooldown: cooldown, Now: clk.Now}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused request %d: %v", i, err)
		}
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}
	if b.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("streak not reset by success: state = %v", got)
	}
	if got := b.Streak(); got != 2 {
		t.Errorf("Streak = %d, want 2", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure() // trips immediately
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted before cooldown: %v", err)
	}
	clk.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	// Exactly one probe is admitted.
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("recovered breaker refused: %v", err)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The cooldown restarts from the failed probe.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker admitted immediately: %v", err)
	}
	if b.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerForgiveReleasesProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	// A cancelled probe (lost race) is no verdict: the slot reopens.
	b.Forgive()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after forgiven probe = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("next probe after Forgive refused: %v", err)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerForgiveWhileClosedKeepsStreak(t *testing.T) {
	b, _ := testBreaker(2, time.Second)
	b.Failure()
	b.Forgive()
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("Forgive interfered with the streak: state = %v, want open", got)
	}
}

func TestBreakerConcurrentHammer(t *testing.T) {
	b, clk := testBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := b.Allow(); err != nil {
					clk.Advance(time.Millisecond)
					continue
				}
				switch (w + i) % 3 {
				case 0:
					b.Failure()
				case 1:
					b.Success()
				default:
					b.Forgive()
				}
			}
		}(w)
	}
	wg.Wait()
	// No assertion beyond the race detector and state sanity.
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("invalid state %v", s)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(100)
	if !p.TryAcquire(60) {
		t.Fatal("TryAcquire(60) on empty pool failed")
	}
	if p.TryAcquire(50) {
		t.Fatal("TryAcquire(50) fit into 40 headroom")
	}
	if !p.TryAcquire(40) {
		t.Fatal("TryAcquire(40) at exact headroom failed")
	}
	if p.Headroom() != 0 || p.InUse() != 100 {
		t.Fatalf("headroom=%d inuse=%d, want 0/100", p.Headroom(), p.InUse())
	}
	p.Release(100)
	if p.InUse() != 0 {
		t.Fatalf("InUse after full release = %d", p.InUse())
	}
	if p.TryAcquire(-1) {
		t.Fatal("negative (overflowed) estimate admitted")
	}
	if !p.TryAcquire(0) {
		t.Fatal("zero-cost reservation refused")
	}
	if p.Capacity() != 100 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
}

func TestPoolOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	NewPool(10).Release(1)
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(64)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if p.TryAcquire(8) {
					p.Release(8)
				}
			}
		}()
	}
	wg.Wait()
	if p.InUse() != 0 {
		t.Fatalf("InUse after balanced hammer = %d, want 0", p.InUse())
	}
}
