// Retry pacing for the fleet layer. A router that retries a failed
// attempt immediately turns one sick replica into a synchronised retry
// storm against the next one; Backoff computes capped exponential
// delays with optional jitter so retries spread out instead of
// stampeding. It lives in guard — next to the breaker and the budget —
// because it is the same discipline applied to time instead of work:
// bound how hard a client may hammer a failing resource.
package guard

import "time"

// Backoff computes the delay before retry attempt n as a capped
// exponential: Base<<n, clamped at Cap, then jittered into
// [delay/2, delay) when a Jitter source is set ("equal jitter" — half
// deterministic so a retry never fires instantly, half random so
// concurrent retriers decorrelate).
//
// The zero value is usable (25ms base, 2s cap, no jitter). Delay is
// allocation-free, so it may sit on a per-request hot path.
type Backoff struct {
	// Base is the delay before the first retry; values <= 0 mean the
	// default of 25ms.
	Base time.Duration
	// Cap clamps the exponential growth; values <= 0 mean the default
	// of 2s.
	Cap time.Duration
	// Jitter supplies randomness in [0, 1). nil disables jitter, which
	// makes Delay fully deterministic — tests rely on that, and so do
	// callers that inject their own deterministic source.
	Jitter func() float64
}

// DefaultJitter returns time-seeded uniform jitter in [0, 1), suitable
// for production Backoff values. It deliberately avoids math/rand's
// global state: each Backoff gets an independent cheap xorshift stream,
// and tests that want determinism inject their own source instead.
func DefaultJitter() func() float64 {
	state := uint64(time.Now().UnixNano()) | 1
	return func() float64 {
		// xorshift64*: fast, allocation-free, plenty for retry spreading.
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	}
}

// Delay returns the pause before retry attempt n (0-based: Delay(0)
// paces the first retry). Negative n is treated as 0.
func (b Backoff) Delay(n int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if base > cap {
		base = cap
	}
	d := base
	for i := 0; i < n && d < cap; i++ {
		d <<= 1
		if d <= 0 { // overflow: the cap is the only sane answer
			d = cap
		}
	}
	if d > cap {
		d = cap
	}
	if b.Jitter == nil {
		return d
	}
	half := d / 2
	return half + time.Duration(float64(half)*b.Jitter())
}
