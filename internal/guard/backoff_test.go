package guard

import (
	"testing"
	"time"
)

func TestBackoffDefaultsAndCap(t *testing.T) {
	var b Backoff // zero value: 25ms base, 2s cap, no jitter
	want := []time.Duration{
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
	if got := b.Delay(-3); got != 25*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want the base", got)
	}
	// A huge attempt index must neither overflow nor exceed the cap.
	if got := b.Delay(200); got != 2*time.Second {
		t.Errorf("Delay(200) = %v, want the cap", got)
	}
}

func TestBackoffExplicitBaseAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 35 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		35 * time.Millisecond, // 40ms clamped
		35 * time.Millisecond,
	}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
	// A base above the cap clamps to the cap instead of inverting the
	// ordering.
	b = Backoff{Base: time.Second, Cap: 100 * time.Millisecond}
	if got := b.Delay(0); got != 100*time.Millisecond {
		t.Errorf("Delay(0) with base>cap = %v, want the cap", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// With an injected deterministic source, every delay lands in
	// [d/2, d): half deterministic, half jittered.
	for _, j := range []float64{0, 0.25, 0.5, 0.999999} {
		b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second,
			Jitter: func() float64 { return j }}
		for n := 0; n < 6; n++ {
			full := Backoff{Base: 100 * time.Millisecond, Cap: time.Second}.Delay(n)
			got := b.Delay(n)
			if got < full/2 || got >= full {
				t.Errorf("jitter %v: Delay(%d) = %v outside [%v, %v)", j, n, got, full/2, full)
			}
		}
	}
}

func TestBackoffDefaultJitterVariesAndStaysInRange(t *testing.T) {
	b := Backoff{Base: 128 * time.Millisecond, Jitter: DefaultJitter()}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		d := b.Delay(0)
		if d < 64*time.Millisecond || d >= 128*time.Millisecond {
			t.Fatalf("jittered Delay(0) = %v outside [64ms, 128ms)", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Errorf("DefaultJitter produced a constant stream: %v", seen)
	}
}

func TestBackoffDelayAllocationFree(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Cap: time.Second, Jitter: DefaultJitter()}
	var sink time.Duration
	allocs := testing.AllocsPerRun(1000, func() {
		sink = b.Delay(4)
	})
	if allocs != 0 {
		t.Errorf("Delay allocates %v times per call, want 0", allocs)
	}
	_ = sink
}
