package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/gen"
	"repro/internal/rat"
	"repro/internal/schedule"
	"repro/internal/sdf"
)

// diamond builds a homogeneous diamond A -> {B, C} -> D with a frame
// feedback D -> A.
func diamond() *sdf.Graph {
	g := sdf.NewGraph("diamond")
	a := g.MustAddActor("A", 2)
	b := g.MustAddActor("B", 3)
	c := g.MustAddActor("C", 5)
	d := g.MustAddActor("D", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(a, c, 1, 1, 0)
	g.MustAddChannel(b, d, 1, 1, 0)
	g.MustAddChannel(c, d, 1, 1, 0)
	g.MustAddChannel(d, a, 1, 1, 1)
	return g
}

func TestBindingValidate(t *testing.T) {
	g := diamond()
	a, _ := g.ActorByName("A")
	b, _ := g.ActorByName("B")
	c, _ := g.ActorByName("C")
	d, _ := g.ActorByName("D")

	good := &Binding{Order: [][]sdf.ActorID{{a, b}, {c, d}}}
	if err := good.Validate(g); err != nil {
		t.Errorf("valid binding rejected: %v", err)
	}
	if good.Processors() != 2 {
		t.Errorf("Processors = %d", good.Processors())
	}
	dup := &Binding{Order: [][]sdf.ActorID{{a, b}, {b, c, d}}}
	if err := dup.Validate(g); err == nil {
		t.Error("duplicate binding accepted")
	}
	missing := &Binding{Order: [][]sdf.ActorID{{a, b}}}
	if err := missing.Validate(g); err == nil {
		t.Error("partial binding accepted")
	}
	bad := &Binding{Order: [][]sdf.ActorID{{a, b, c, sdf.ActorID(9)}}}
	if err := bad.Validate(g); err == nil {
		t.Error("out-of-range binding accepted")
	}
}

func TestApplySerialisesProcessor(t *testing.T) {
	g := diamond()
	a, _ := g.ActorByName("A")
	b, _ := g.ActorByName("B")
	c, _ := g.ActorByName("C")
	d, _ := g.ActorByName("D")

	// Everything on one processor in topological order: the period is the
	// total work 2+3+5+1 = 11.
	single := &Binding{Order: [][]sdf.ActorID{{a, b, c, d}}}
	tp, err := single.Throughput(g)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Period.Equal(rat.FromInt(11)) {
		t.Errorf("single-processor period = %v, want 11", tp.Period)
	}

	// Two processors {A,B} and {C,D}: B and C run in parallel; the
	// iteration path A;B plus A;C;D dominates. Period: critical cycle
	// through D->A feedback: A + max(B, C) + D = 2+5+1 = 8.
	dual := &Binding{Order: [][]sdf.ActorID{{a, b}, {c, d}}}
	tp, err = dual.Throughput(g)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Period.Equal(rat.FromInt(8)) {
		t.Errorf("dual-processor period = %v, want 8", tp.Period)
	}

	// Unbound graph for reference: same 8 (the graph itself pipelines to
	// the same critical cycle because of the single frame token).
	free, err := analysis.ComputeThroughput(g, analysis.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Period.Cmp(free.Period) < 0 {
		t.Errorf("bound graph faster (%v) than free graph (%v)", tp.Period, free.Period)
	}
}

func TestApplyBadOrderDeadlocks(t *testing.T) {
	g := diamond()
	a, _ := g.ActorByName("A")
	b, _ := g.ActorByName("B")
	c, _ := g.ActorByName("C")
	d, _ := g.ActorByName("D")
	// D before A on the same processor reverses a zero-delay dependency:
	// the bound graph deadlocks, and the analysis must say so.
	rev := &Binding{Order: [][]sdf.ActorID{{d, a, b, c}}}
	bound, err := rev.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if schedule.IsLive(bound) {
		// D->A has a token, so {d,a,...} is actually fine; force a real
		// reversal: B before A.
		rev2 := &Binding{Order: [][]sdf.ActorID{{b, a}, {c}, {d}}}
		bound2, err := rev2.Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		if schedule.IsLive(bound2) {
			t.Error("order-reversed binding did not deadlock")
		}
	}
}

func TestApplyMixedRatesRejected(t *testing.T) {
	g := sdf.NewGraph("mr")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 2, 1, 0)
	g.MustAddChannel(b, a, 1, 2, 2)
	bind := &Binding{Order: [][]sdf.ActorID{{a, b}}}
	if _, err := bind.Apply(g); err == nil {
		t.Error("mixed repetition counts on one processor accepted")
	}
}

func TestGreedyBindCoversAndBalances(t *testing.T) {
	g := diamond()
	for _, p := range []int{1, 2, 3, 4} {
		b, err := GreedyBind(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(g); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
		tp, err := b.Throughput(g)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		lower, err := UtilisationBound(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if tp.Unbounded {
			t.Fatalf("p=%d: unbounded after binding", p)
		}
		if tp.Period.Cmp(lower) < 0 {
			t.Errorf("p=%d: period %v beats the utilisation bound %v", p, tp.Period, lower)
		}
	}
	if _, err := GreedyBind(g, 0); err == nil {
		t.Error("0 processors accepted")
	}
}

func TestUtilisationBound(t *testing.T) {
	g := diamond()
	lb, err := UtilisationBound(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Equal(rat.MustNew(11, 2)) {
		t.Errorf("bound = %v, want 11/2", lb)
	}
	if _, err := UtilisationBound(g, 0); err == nil {
		t.Error("0 processors accepted")
	}
}

// The abstraction composes with mapping: abstracting a bound regular
// graph remains conservative.
func TestMappingComposesWithAbstraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := gen.RandomRegular(rng, gen.RegularOptions{Groups: 2, Copies: 4, Links: 2, MaxExec: 6})
	if err != nil {
		t.Fatal(err)
	}
	// One processor per group member index is the natural platform for a
	// regular graph; here: everything on 2 processors, whole groups each.
	b, err := GreedyBind(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := b.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !schedule.IsLive(bound) {
		t.Skip("greedy order deadlocks this instance; mapping quality is not under test")
	}
	tpBound, err := analysis.ComputeThroughput(bound, analysis.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	tpFree, err := analysis.ComputeThroughput(g, analysis.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	if !tpBound.Unbounded && !tpFree.Unbounded && tpBound.Period.Cmp(tpFree.Period) < 0 {
		t.Errorf("binding accelerated the graph: %v < %v", tpBound.Period, tpFree.Period)
	}
}
