// Package mapping models the multiprocessor binding step of the
// SDF-based design flows the paper's introduction motivates ([3], [13],
// [15], [16]): actors are bound to processors, each processor executes
// its actors in a static order, and the bound system is itself an SDF
// graph — the binding is expressed with additional channels, so every
// analysis and reduction of the library applies to mapped designs
// unchanged.
//
// A static order on a processor is modelled exactly like the sequential
// schedules of the classical literature: a ring of channels through the
// actors in order, with one initial token ahead of the first actor. The
// ring serialises the processor (no two of its actors overlap) and fixes
// the order; the throughput of the bound graph is then the guaranteed
// performance of the mapped design.
package mapping

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/rat"
	"repro/internal/sdf"
)

// Binding assigns every actor of a graph to a processor and fixes the
// static execution order on each processor.
type Binding struct {
	// Order[p] lists the actors bound to processor p in their static
	// execution order. Every actor of the graph must appear exactly once
	// across all processors.
	Order [][]sdf.ActorID
}

// Validate checks that the binding covers every actor of g exactly once.
func (b *Binding) Validate(g *sdf.Graph) error {
	seen := make(map[sdf.ActorID]int)
	for p, actors := range b.Order {
		for _, a := range actors {
			if a < 0 || int(a) >= g.NumActors() {
				return fmt.Errorf("mapping: processor %d: actor id %d out of range", p, a)
			}
			if prev, dup := seen[a]; dup {
				return fmt.Errorf("mapping: actor %s bound to processors %d and %d",
					g.Actor(a).Name, prev, p)
			}
			seen[a] = p
		}
	}
	if len(seen) != g.NumActors() {
		return fmt.Errorf("mapping: %d of %d actors bound", len(seen), g.NumActors())
	}
	return nil
}

// Processors returns the number of processors in the binding.
func (b *Binding) Processors() int { return len(b.Order) }

// Apply returns the bound graph: g plus, for every processor with more
// than one actor, a ring of single-rate channels through its actors in
// static order with one initial token entering the first actor. The ring
// admits exactly one firing of the processor at a time, in order.
//
// Multirate graphs bind per firing: an actor with repetition count q
// occupies its processor q times per graph iteration, which the ring
// with rates equal to the repetition counts expresses. For simplicity —
// and matching the homogeneous platform models of [16] — Apply requires
// actors sharing a processor to have equal repetition counts (bind the
// traditional HSDF conversion when finer interleaving is needed).
func (b *Binding) Apply(g *sdf.Graph) (*sdf.Graph, error) {
	if err := b.Validate(g); err != nil {
		return nil, err
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	h := g.Clone()
	h.SetName(g.Name() + "_bound")
	for p, actors := range b.Order {
		if len(actors) < 2 {
			continue // a dedicated processor adds no constraint
		}
		rep := q[actors[0]]
		for _, a := range actors[1:] {
			if q[a] != rep {
				return nil, fmt.Errorf("mapping: processor %d mixes repetition counts %d (%s) and %d (%s); bind the HSDF expansion instead",
					p, rep, g.Actor(actors[0]).Name, q[a], g.Actor(a).Name)
			}
		}
		for i, a := range actors {
			next := actors[(i+1)%len(actors)]
			tokens := 0
			if i == len(actors)-1 {
				tokens = 1 // the processor is initially free for actor 0
			}
			if _, err := h.AddChannel(a, next, 1, 1, tokens); err != nil {
				return nil, fmt.Errorf("mapping: %w", err)
			}
		}
	}
	return h, nil
}

// Throughput analyses the bound graph's self-timed throughput — the
// guaranteed iteration period of the mapped design.
func (b *Binding) Throughput(g *sdf.Graph) (analysis.Throughput, error) {
	bound, err := b.Apply(g)
	if err != nil {
		return analysis.Throughput{}, err
	}
	return analysis.ComputeThroughput(bound, analysis.Matrix)
}

// GreedyBind builds a load-balancing binding onto processors processors:
// actors are assigned in decreasing order of total work (execution time ×
// repetition count) to the least-loaded processor, and each processor
// orders its actors by a topological-friendly heuristic (ascending actor
// ID, which follows construction order). It is the standard list-mapping
// baseline of the design-space-exploration flows.
func GreedyBind(g *sdf.Graph, processors int) (*Binding, error) {
	if processors < 1 {
		return nil, fmt.Errorf("mapping: need >= 1 processor")
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	type workItem struct {
		actor sdf.ActorID
		work  int64
	}
	items := make([]workItem, g.NumActors())
	for a := 0; a < g.NumActors(); a++ {
		items[a] = workItem{actor: sdf.ActorID(a), work: g.Actor(sdf.ActorID(a)).Exec * q[a]}
	}
	// Insertion sort by decreasing work (stable by actor id).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].work > items[j-1].work; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	load := make([]int64, processors)
	b := &Binding{Order: make([][]sdf.ActorID, processors)}
	for _, it := range items {
		best := 0
		for p := 1; p < processors; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		b.Order[best] = append(b.Order[best], it.actor)
		load[best] += it.work
	}
	// Static order by actor id keeps zero-delay producer-before-consumer
	// chains schedulable for graphs built in topological order.
	for p := range b.Order {
		actors := b.Order[p]
		for i := 1; i < len(actors); i++ {
			for j := i; j > 0 && actors[j] < actors[j-1]; j-- {
				actors[j], actors[j-1] = actors[j-1], actors[j]
			}
		}
	}
	return b, nil
}

// UtilisationBound returns the classical processor-load lower bound on
// the iteration period of any binding to the given processor count:
// ceil(total work / processors) — no schedule can beat it.
func UtilisationBound(g *sdf.Graph, processors int) (rat.Rat, error) {
	if processors < 1 {
		return rat.Rat{}, fmt.Errorf("mapping: need >= 1 processor")
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return rat.Rat{}, err
	}
	total := rat.Zero()
	for a := 0; a < g.NumActors(); a++ {
		work, err := rat.FromInt(g.Actor(sdf.ActorID(a)).Exec).MulInt(q[a])
		if err != nil {
			return rat.Rat{}, err
		}
		total, err = total.Add(work)
		if err != nil {
			return rat.Rat{}, err
		}
	}
	return total.Div(rat.FromInt(int64(processors)))
}
