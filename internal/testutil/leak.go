// Package testutil holds assertion helpers shared by the repository's
// test suites. It is test-support code: production packages must not
// import it.
package testutil

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// FailOnLeakedGoroutines fails t when a live goroutine other than the
// caller's still has pattern in its stack trace after a short grace
// period. The hedging tests run it (under -race) after every race to
// prove the racer goroutines shut down with the call that spawned them;
// a clean run returns on the first probe without sleeping.
func FailOnLeakedGoroutines(t testing.TB, pattern string) {
	t.Helper()
	var leaked []byte
	for wait := time.Millisecond; ; wait *= 2 {
		leaked = leakedStacks(pattern)
		if len(leaked) == 0 || wait > time.Second {
			break
		}
		time.Sleep(wait)
	}
	if len(leaked) > 0 {
		t.Errorf("leaked goroutines matching %q:\n%s", pattern, leaked)
	}
}

// leakedStacks returns the stack dumps of all goroutines, except the
// calling one, whose trace contains pattern.
func leakedStacks(pattern string) []byte {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	stacks := bytes.Split(buf[:n], []byte("\n\n"))
	var leaked [][]byte
	for _, s := range stacks[1:] { // stacks[0] is the calling goroutine
		if bytes.Contains(s, []byte(pattern)) {
			leaked = append(leaked, s)
		}
	}
	return bytes.Join(leaked, []byte("\n\n"))
}
