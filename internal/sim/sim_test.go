package sim

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rat"
	"repro/internal/sdf"
)

func TestRunSimpleCycle(t *testing.T) {
	g := sdf.NewGraph("t")
	a := g.MustAddActor("A", 3)
	b := g.MustAddActor("B", 5)
	g.MustAddChannel(a, b, 1, 1, 1)
	g.MustAddChannel(b, a, 1, 1, 1)
	tr, err := Run(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Firings) != 6 {
		t.Fatalf("firings = %d, want 6", len(tr.Firings))
	}
	// A fires at 0, 5, 10 (waiting for B each round); B at 0, 3, 8.
	wantA := []int64{0, 5, 13}
	// Recompute: A needs B's token: A_0 at 0 (initial token), ends 3.
	// B_0 at 0 (initial token), ends 5. A_1 needs B_0's output: starts 5,
	// ends 8. B_1 needs A_0's output: starts 3, ends 8. A_2 starts 8,
	// B_2 starts 8.
	wantA = []int64{0, 5, 8}
	wantB := []int64{0, 3, 8}
	for i, w := range wantA {
		if tr.ByActor[a][i] != w {
			t.Errorf("A firing %d starts at %d, want %d", i, tr.ByActor[a][i], w)
		}
	}
	for i, w := range wantB {
		if tr.ByActor[b][i] != w {
			t.Errorf("B firing %d starts at %d, want %d", i, tr.ByActor[b][i], w)
		}
	}
}

func TestRunAutoConcurrency(t *testing.T) {
	// Without a self-loop, an actor with several tokens available fires
	// concurrently.
	g := sdf.NewGraph("t")
	src := g.MustAddActor("S", 4)
	g.MustAddChannel(src, src, 1, 1, 3) // 3 tokens: 3 concurrent firings
	tr, err := Run(g, 6)                // q(S) = 1, so 6 firings
	if err != nil {
		t.Fatal(err)
	}
	// Firings 0,1,2 all start at 0; 3,4,5 at 4.
	want := []int64{0, 0, 0, 4, 4, 4}
	for i, w := range want {
		if tr.ByActor[src][i] != w {
			t.Errorf("firing %d starts at %d, want %d", i, tr.ByActor[src][i], w)
		}
	}
}

func TestRunZeroIterations(t *testing.T) {
	g := sdf.NewGraph("t")
	a := g.MustAddActor("A", 1)
	g.MustAddChannel(a, a, 1, 1, 1)
	tr, err := Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Firings) != 0 || tr.Horizon != 0 {
		t.Errorf("zero-iteration run produced %d firings, horizon %d", len(tr.Firings), tr.Horizon)
	}
}

func TestRunErrors(t *testing.T) {
	g := sdf.NewGraph("dead")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 1, 0)
	g.MustAddChannel(b, a, 1, 1, 0)
	if _, err := Run(g, 1); err == nil {
		t.Error("deadlocked graph simulated without error")
	}
	g2 := sdf.NewGraph("ok")
	c := g2.MustAddActor("C", 1)
	g2.MustAddChannel(c, c, 1, 1, 1)
	if _, err := Run(g2, -1); err == nil {
		t.Error("negative iterations accepted")
	}
}

func TestFigure1MakespanMatchesPaper(t *testing.T) {
	// §4.1: one execution of the Figure 1(a) graph takes 23 time units.
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 23 {
		t.Errorf("single-iteration makespan = %d, want 23", tr.Horizon)
	}
	// The symbolic makespan agrees.
	r, err := core.SymbolicIteration(g)
	if err != nil {
		t.Fatal(err)
	}
	if ms, ok := r.Makespan(); !ok || ms != 23 {
		t.Errorf("symbolic makespan = %d, %v; want 23", ms, ok)
	}
}

func TestMeasuredPeriodMatchesAnalysis(t *testing.T) {
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 40
	tr, err := Run(g, iters)
	if err != nil {
		t.Fatal(err)
	}
	period, err := MeasuredPeriod(tr, iters)
	if err != nil {
		t.Fatal(err)
	}
	if !period.Equal(rat.FromInt(23)) {
		t.Errorf("measured period = %v, want 23", period)
	}
}

// Property: the simulator's measured period equals the analytical one on
// random graphs — the empirical leg of the engine cross-validation.
func TestQuickSimulatorMatchesAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g, err := gen.RandomGraph(rng, gen.RandomOptions{
			Actors:   2 + rng.Intn(4),
			MaxRep:   3,
			MaxExec:  8,
			Chords:   rng.Intn(3),
			SelfLoop: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		tp, err := analysis.ComputeThroughput(g, analysis.Matrix)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tp.Unbounded {
			continue
		}
		const iters = 200
		tr, err := Run(g, iters)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		period, err := MeasuredPeriod(tr, iters)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !period.Equal(tp.Period) {
			t.Errorf("trial %d: simulated period %v, analytical %v\n%s", trial, period, tp.Period, g)
		}
	}
}

// Theorem 1, empirically and firing by firing: every firing of the
// original graph starts no later than the corresponding firing of the
// unfolded abstract graph (σ mapping), not just asymptotically.
func TestAbstractionConservativePerFiring(t *testing.T) {
	g, err := gen.Figure1(8)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := core.InferByName(g)
	if err != nil {
		t.Fatal(err)
	}
	abstract, res, err := core.AbstractUnpruned(g, ab)
	if err != nil {
		t.Fatal(err)
	}
	unfolded, err := core.Unfold(abstract, res.N)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 20
	trOrig, err := Run(g, iters)
	if err != nil {
		t.Fatal(err)
	}
	trUnf, err := Run(unfolded, iters)
	if err != nil {
		t.Fatal(err)
	}
	rename := core.SigmaRename(g, ab)
	for a := 0; a < g.NumActors(); a++ {
		origName := g.Actor(sdf.ActorID(a)).Name
		unfName := rename[origName]
		uid, ok := unfolded.ActorByName(unfName)
		if !ok {
			t.Fatalf("missing unfolded actor %s", unfName)
		}
		os := trOrig.ByActor[a]
		us := trUnf.ByActor[uid]
		nFirings := len(os)
		if len(us) < nFirings {
			nFirings = len(us)
		}
		for i := 0; i < nFirings; i++ {
			if os[i] > us[i] {
				t.Errorf("firing %d of %s starts at %d, after its conservative image %s at %d",
					i, origName, os[i], unfName, us[i])
			}
		}
	}
}

// Starting self-timed execution from a max-plus eigenvector of the
// iteration matrix puts the system in its periodic regime immediately:
// every actor's firing starts satisfy start(i + q) = start(i) + Λ from
// the very first iteration, with no transient.
func TestRunFromEigenvectorIsImmediatelyPeriodic(t *testing.T) {
	g := gen.Figure3(2) // iteration matrix has the integer eigenvalue 8
	r, err := core.SymbolicIteration(g)
	if err != nil {
		t.Fatal(err)
	}
	lam, ok, err := r.Matrix.Eigenvalue()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !lam.IsInt() {
		t.Fatalf("test graph needs an integer eigenvalue, got %v", lam)
	}
	v, scale, err := r.Matrix.Eigenvector()
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1 {
		t.Fatalf("scale = %d, want 1 for integer eigenvalue", scale)
	}
	// Shift the eigenvector to non-negative times.
	var min int64
	for _, x := range v {
		if x.Int() < min {
			min = x.Int()
		}
	}
	times := make([]int64, len(v))
	for i, x := range v {
		times[i] = x.Int() - min
	}
	const iters = 8
	tr, err := RunFrom(g, times, iters)
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	period := lam.Num()
	for a, starts := range tr.ByActor {
		for i := 0; i+int(q[a]) < len(starts); i++ {
			if starts[i+int(q[a])]-starts[i] != period {
				t.Errorf("actor %s: start(%d)=%d, start(%d)=%d: delta != %d (not immediately periodic)",
					tr.Graph.Actor(sdf.ActorID(a)).Name, i, starts[i], i+int(q[a]), starts[i+int(q[a])], period)
			}
		}
	}
}

func TestRunFromValidation(t *testing.T) {
	g := gen.Figure3(2)
	if _, err := RunFrom(g, []int64{1, 2}, 1); err == nil {
		t.Error("wrong token-time count accepted")
	}
	if _, err := RunFrom(g, []int64{0, 0, -1, 0}, 1); err == nil {
		t.Error("negative token time accepted")
	}
	// nil times reproduce Run exactly.
	t1, err := Run(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunFrom(g, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Horizon != t2.Horizon || len(t1.Firings) != len(t2.Firings) {
		t.Error("RunFrom(nil) differs from Run")
	}
}

// Non-monotone custom release times within one channel must still give
// correct (window-maximum) firing starts.
func TestRunFromNonMonotoneTokenTimes(t *testing.T) {
	g := sdf.NewGraph("nm")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 1, 2, 2) // B consumes both initial tokens
	g.MustAddChannel(b, a, 2, 1, 0)
	// Token 0 available late (10), token 1 early (0): B starts at 10.
	tr, err := RunFrom(g, []int64{10, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ByActor[b][0] != 10 {
		t.Errorf("B starts at %d, want 10", tr.ByActor[b][0])
	}
}
