// Package sim provides a discrete-event simulator for self-timed execution
// of timed SDF graphs. Every actor fires as soon as enough tokens are
// available on all of its input channels, firings of the same actor may
// overlap (auto-concurrency, as in the paper's semantics — use a self-loop
// with one token to serialise an actor), and tokens are consumed in FIFO
// arrival order.
//
// The simulator is the empirical ground truth of the repository: the
// property tests check that measured firing times match the max-plus
// iteration recursion, and that abstractions are conservative firing by
// firing (Theorem 1), not just asymptotically.
package sim

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/guard"
	"repro/internal/rat"
	"repro/internal/schedule"
	"repro/internal/sdf"
)

// Firing records one completed actor firing.
type Firing struct {
	Actor sdf.ActorID
	// Index is the firing count of this actor so far (0-based).
	Index int64
	Start int64
	End   int64
}

// Trace is the result of a simulation run.
type Trace struct {
	Graph   *sdf.Graph
	Firings []Firing
	// ByActor[a] lists the start times of actor a's firings in order.
	ByActor [][]int64
	// Horizon is the largest completion time observed.
	Horizon int64
}

// Run simulates self-timed execution of g until every actor a has fired
// iterations·q(a) times, starting with all initial tokens available at
// time 0. The graph must be consistent and deadlock-free.
func Run(g *sdf.Graph, iterations int64) (*Trace, error) {
	return RunFrom(g, nil, iterations)
}

// RunCtx is Run under the resilience runtime: the total firing count
// q·iterations is checked against the budget carried by ctx before the
// event loop starts and every completed firing checkpoints the context.
func RunCtx(ctx context.Context, g *sdf.Graph, iterations int64) (*Trace, error) {
	return RunFromCtx(ctx, g, nil, iterations)
}

// RunFrom is Run with explicit availability times for the initial tokens,
// indexed by the global token numbering (channel by channel in channel-ID
// order, front of each FIFO first — the numbering of the symbolic
// conversion). Starting from a max-plus eigenvector of the iteration
// matrix puts the execution in its periodic regime immediately; starting
// from zeros reproduces Run. nil means all zeros; otherwise the slice
// length must equal the total initial token count and times must be
// non-negative.
func RunFrom(g *sdf.Graph, tokenTimes []int64, iterations int64) (*Trace, error) {
	return RunFromCtx(guard.WithBudget(context.Background(), guard.Unlimited()), g, tokenTimes, iterations)
}

// RunFromCtx is RunFrom under the resilience runtime carried by ctx.
func RunFromCtx(ctx context.Context, g *sdf.Graph, tokenTimes []int64, iterations int64) (*Trace, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("sim: negative iteration count %d", iterations)
	}
	if tokenTimes != nil {
		if len(tokenTimes) != g.TotalInitialTokens() {
			return nil, fmt.Errorf("sim: %d token times for %d initial tokens",
				len(tokenTimes), g.TotalInitialTokens())
		}
		for i, tt := range tokenTimes {
			if tt < 0 {
				return nil, fmt.Errorf("sim: token %d has negative availability time %d", i, tt)
			}
		}
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	meter := guard.NewMeter(ctx, "simulate")
	meter.Phase("precheck")
	// Total firing count q·iterations, overflow-checked and refused up
	// front when it exceeds the firing budget.
	totalFirings := int64(0)
	for _, v := range q {
		work, ok := rat.MulChecked(v, iterations)
		if ok {
			totalFirings, ok = rat.AddChecked(totalFirings, work)
		}
		if !ok {
			totalFirings = -1
			break
		}
	}
	if totalFirings < 0 {
		return nil, fmt.Errorf("sim: total firing count q·iterations overflows int64: %w",
			meter.NeedFirings(-1))
	}
	if err := meter.NeedFirings(totalFirings); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Liveness via the guarded schedule construction, so that the check
	// itself honours the deadline and budget on explosive graphs.
	if _, err := schedule.SequentialCtx(ctx, g); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	meter.Phase("events")

	n := g.NumActors()
	inCh := make([][]sdf.ChannelID, n)
	outCh := make([][]sdf.ChannelID, n)
	for i := range g.Channels() {
		id := sdf.ChannelID(i)
		c := g.Channel(id)
		inCh[c.Dst] = append(inCh[c.Dst], id)
		outCh[c.Src] = append(outCh[c.Src], id)
	}

	// Channel state: FIFO of token availability times, with a consumed
	// prefix index to avoid reslicing costs.
	queues := make([][]int64, g.NumChannels())
	heads := make([]int, g.NumChannels())
	tokenIdx := 0
	for i, c := range g.Channels() {
		for t := 0; t < c.Initial; t++ {
			avail := int64(0)
			if tokenTimes != nil {
				avail = tokenTimes[tokenIdx]
			}
			queues[i] = append(queues[i], avail)
			tokenIdx++
		}
	}

	target := make([]int64, n)
	started := make([]int64, n)
	for a := range target {
		// Overflow was excluded by the precheck above; recompute checked
		// anyway so the invariant is local.
		t, ok := rat.MulChecked(q[a], iterations)
		if !ok {
			return nil, fmt.Errorf("sim: firing target q·iterations overflows int64 for actor %s",
				g.Actor(sdf.ActorID(a)).Name)
		}
		target[a] = t
	}

	// nextStart computes the earliest start of actor a's next firing, or
	// false when tokens are missing: the maximum availability time over
	// the tokens consumed (the window maximum, since custom initial
	// release times need not be FIFO-monotone).
	nextStart := func(a sdf.ActorID) (int64, bool) {
		var start int64
		for _, id := range inCh[a] {
			c := g.Channel(id)
			avail := len(queues[id]) - heads[id]
			if avail < c.Cons {
				return 0, false
			}
			for t := 0; t < c.Cons; t++ {
				if v := queues[id][heads[id]+t]; v > start {
					start = v
				}
			}
		}
		return start, true
	}

	// Event-driven loop: a priority queue of firing completions. At each
	// point we greedily start every enabled firing (its start time is
	// determined purely by token availability).
	var pq eventQueue
	// The trace holds one entry per firing; the capacity grant is
	// clamped and doubles as a fault-injection point.
	traceCap, err := meter.Alloc(totalFirings)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	trace := &Trace{Graph: g, ByActor: make([][]int64, n), Firings: make([]Firing, 0, traceCap)}

	startAll := func() error {
		for a := sdf.ActorID(0); int(a) < n; a++ {
			for started[a] < target[a] {
				start, ok := nextStart(a)
				if !ok {
					break
				}
				// Consume inputs now; the firing is committed.
				for _, id := range inCh[a] {
					heads[id] += g.Channel(id).Cons
				}
				end, ok := rat.AddChecked(start, g.Actor(a).Exec)
				if !ok {
					return fmt.Errorf("sim: completion time of actor %s overflows int64 (start %d + exec %d)",
						g.Actor(a).Name, start, g.Actor(a).Exec)
				}
				heap.Push(&pq, event{time: end, actor: a, index: started[a], start: start})
				started[a]++
			}
		}
		return nil
	}

	if err := startAll(); err != nil {
		return nil, err
	}
	for pq.Len() > 0 {
		if err := meter.Firings(1); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		ev := heap.Pop(&pq).(event)
		for _, id := range outCh[ev.actor] {
			c := g.Channel(id)
			for t := 0; t < c.Prod; t++ {
				queues[id] = append(queues[id], ev.time)
			}
		}
		trace.Firings = append(trace.Firings, Firing{Actor: ev.actor, Index: ev.index, Start: ev.start, End: ev.time})
		trace.ByActor[ev.actor] = append(trace.ByActor[ev.actor], ev.start)
		if ev.time > trace.Horizon {
			trace.Horizon = ev.time
		}
		if err := startAll(); err != nil {
			return nil, err
		}
	}

	for a := range target {
		if started[a] != target[a] {
			return nil, fmt.Errorf("sim: actor %s completed %d of %d firings (unexpected stall)",
				g.Actor(sdf.ActorID(a)).Name, started[a], target[a])
		}
	}
	return trace, nil
}

// MeasuredPeriod estimates the iteration period from a trace by comparing
// the start times of the first actor's firings one iteration apart at the
// end of the run: (start(last) − start(last − q(a)·k)) / k for the largest
// usable k. The estimate converges to the exact period as iterations grow
// and is exact once the execution is periodic.
func MeasuredPeriod(tr *Trace, iterations int64) (rat.Rat, error) {
	if iterations < 2 {
		return rat.Rat{}, fmt.Errorf("sim: need at least 2 iterations to measure a period")
	}
	q, err := tr.Graph.RepetitionVector()
	if err != nil {
		return rat.Rat{}, err
	}
	// Use the second half of the run to skip the transient.
	k := iterations / 2
	for a, starts := range tr.ByActor {
		if q[a] == 0 || len(starts) == 0 {
			continue
		}
		last := int64(len(starts)) - 1
		prev := last - q[a]*k
		if prev < 0 {
			continue
		}
		return rat.New(starts[last]-starts[prev], k)
	}
	return rat.Rat{}, fmt.Errorf("sim: no actor fired often enough to measure a period")
}

type event struct {
	time  int64
	actor sdf.ActorID
	index int64
	start int64
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].actor != q[j].actor {
		return q[i].actor < q[j].actor
	}
	return q[i].index < q[j].index
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
