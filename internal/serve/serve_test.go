package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/rat"
	"repro/internal/sdf"
	"repro/internal/testutil"
)

// noLeaks asserts the serving layer and its engine racers left no
// goroutine behind.
func noLeaks(t *testing.T) {
	t.Helper()
	testutil.FailOnLeakedGoroutines(t, "repro/internal/serve")
	testutil.FailOnLeakedGoroutines(t, "repro/internal/analysis")
}

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func figure2Request(t *testing.T, method string) *Request {
	t.Helper()
	return &Request{Graph: gen.Figure2(), Method: method}
}

// injected builds a request for g that arms the given faults.
func injected(g *sdf.Graph, method string, faults ...guard.Fault) *Request {
	return &Request{Graph: g, Method: method, Faults: faults}
}

func TestAnalyzeHedged(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	want, err := analysis.ComputeThroughput(gen.Figure2(), analysis.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Unbounded || res.Period != want.Period.String() {
		t.Errorf("period = %q, want %q", res.Period, want.Period)
	}
	if !res.Verified || res.Certificate == "" {
		t.Errorf("result not verified: %+v", res)
	}
	if len(res.Report) == 0 {
		t.Error("no race report")
	}
	if res.Cached || res.Deduped {
		t.Errorf("first answer claims cached=%v deduped=%v", res.Cached, res.Deduped)
	}
}

func TestAnalyzeSingleEngines(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	for _, m := range []string{"matrix", "statespace", "hsdf"} {
		res, err := s.Analyze(context.Background(), figure2Request(t, m))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Engine != m || !res.Verified {
			t.Errorf("%s: engine=%q verified=%v", m, res.Engine, res.Verified)
		}
	}
}

func TestCacheHit(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	first, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical repeat not served from the cache")
	}
	if second.Period != first.Period {
		t.Errorf("cached period %q != first %q", second.Period, first.Period)
	}
	// A different method is a different question: no false sharing.
	other, err := s.Analyze(context.Background(), figure2Request(t, "matrix"))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different method served from the cache")
	}
	h := s.Health()
	if h.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", h.CacheHits)
	}
}

// TestSingleflightDedup joins a follower onto a registered in-flight
// computation (white-box, so the overlap is deterministic) and asserts
// the follower receives the leader's result marked as deduplicated.
func TestSingleflightDedup(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	req := figure2Request(t, "hedged")
	key := req.Key()
	f, leader := s.flights.join(key)
	if !leader {
		t.Fatal("fresh key not led")
	}

	type out struct {
		res *ResultPayload
		err error
	}
	got := make(chan out, 1)
	go func() {
		res, err := s.Analyze(context.Background(), req)
		got <- out{res, err}
	}()
	// The follower must be parked on the flight, not computing: the
	// deduped counter ticks exactly when it joins.
	for s.flights.deduped.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	want := &answer{engine: "matrix", tp: analysis.Throughput{Period: rat.FromInt(7)}}
	s.flights.finish(key, f, want, nil)

	o := <-got
	if o.err != nil {
		t.Fatalf("follower: %v", o.err)
	}
	if !o.res.Deduped {
		t.Error("follower result not marked deduped")
	}
	if o.res.Period != rat.FromInt(7).String() {
		t.Errorf("follower period %q, want the leader's 7", o.res.Period)
	}
	if s.flights.deduped.Load() != 1 {
		t.Errorf("deduped counter = %d, want 1", s.flights.deduped.Load())
	}
}

// TestQueueOverflowRejects fills every admission slot (white-box) and
// asserts the next request is refused with ErrOverloaded instead of
// queueing unboundedly.
func TestQueueOverflowRejects(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	_, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}
	if h := s.Health(); h.Overloaded != 1 {
		t.Errorf("overloaded counter = %d, want 1", h.Overloaded)
	}
}

// TestPoolExhaustionRejects gives the server a pool smaller than one
// request's cost estimate.
func TestPoolExhaustionRejects(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{PoolCapacity: 3})
	defer s.Close()
	_, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded (pool)", err)
	}
}

func TestPrecheckRejectsBadGraphs(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()

	inconsistent := sdf.NewGraph("inconsistent")
	a := inconsistent.MustAddActor("A", 1)
	b := inconsistent.MustAddActor("B", 1)
	inconsistent.MustAddChannel(a, b, 2, 3, 0)
	inconsistent.MustAddChannel(b, a, 1, 1, 1)

	deadlocked := sdf.NewGraph("deadlocked")
	c := deadlocked.MustAddActor("C", 1)
	d := deadlocked.MustAddActor("D", 1)
	deadlocked.MustAddChannel(c, d, 1, 1, 0)
	deadlocked.MustAddChannel(d, c, 1, 1, 0)

	for name, g := range map[string]*sdf.Graph{"inconsistent": inconsistent, "deadlocked": deadlocked} {
		_, err := s.Analyze(context.Background(), &Request{Graph: g, Method: "hedged"})
		var pre *lint.PrecheckError
		if !errors.As(err, &pre) {
			t.Errorf("%s: err = %v, want *lint.PrecheckError", name, err)
		}
		if KindOf(err) != "precondition" {
			t.Errorf("%s: kind = %q, want precondition", name, KindOf(err))
		}
	}
	// Precondition failures never consume pool units.
	if used := s.pool.InUse(); used != 0 {
		t.Errorf("pool in use after prechecks = %d, want 0", used)
	}
}

func TestInjectionRefusedByDefault(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	req := injected(gen.Figure2(), "hedged",
		guard.Fault{Engine: "statespace", Point: guard.PointCheckpoint, Mode: guard.ModePanic})
	_, err := s.Analyze(context.Background(), req)
	if !errors.Is(err, ErrInjectionDisabled) {
		t.Fatalf("err = %v, want ErrInjectionDisabled", err)
	}
}

// TestBreakerTripsAndRecovers drives the full breaker lifecycle through
// the server on a single engine: injected panics trip it, requests are
// shed while open, the fake clock expires the cooldown, and a healthy
// probe closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	defer noLeaks(t)
	clk := &fakeClock{now: time.Unix(0, 0)}
	s := New(Options{
		AllowInjection: true,
		Breaker:        guard.BreakerOptions{Threshold: 2, Cooldown: time.Second, Now: clk.Now},
	})
	defer s.Close()
	panicSS := guard.Fault{Engine: "statespace", Point: guard.PointCheckpoint, Mode: guard.ModePanic, Times: -1}

	for i := 0; i < 2; i++ {
		_, err := s.Analyze(context.Background(), injected(gen.Figure2(), "statespace", panicSS))
		if !errors.Is(err, guard.ErrEngineFailed) {
			t.Fatalf("injected panic %d: err = %v, want ErrEngineFailed", i, err)
		}
	}
	if st := s.BreakerState("statespace"); st != "open" {
		t.Fatalf("breaker after %d panics = %s, want open", 2, st)
	}

	// While open, the engine is shed without running: even a request
	// that would panic succeeds... in being refused cheaply.
	_, err := s.Analyze(context.Background(), figure2Request(t, "statespace"))
	if !errors.Is(err, guard.ErrBreakerOpen) {
		t.Fatalf("open breaker: err = %v, want ErrBreakerOpen", err)
	}

	// Other engines are unaffected.
	if _, err := s.Analyze(context.Background(), figure2Request(t, "matrix")); err != nil {
		t.Fatalf("matrix while statespace open: %v", err)
	}

	// Cooldown over: the next request is the half-open probe; healthy
	// traffic closes the breaker.
	clk.Advance(time.Second)
	res, err := s.Analyze(context.Background(), &Request{Graph: gen.Figure3(4), Method: "statespace"})
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if !res.Verified {
		t.Error("probe result not verified")
	}
	if st := s.BreakerState("statespace"); st != "closed" {
		t.Errorf("breaker after healthy probe = %s, want closed", st)
	}
}

// TestHedgedSurvivesSickEngine is the serving half of the acceptance
// scenario: with statespace panicking on every request, hedged requests
// keep answering via the other engines, the statespace breaker opens
// after the streak, and subsequent reports show the engine gated.
func TestHedgedSurvivesSickEngine(t *testing.T) {
	defer noLeaks(t)
	clk := &fakeClock{now: time.Unix(0, 0)}
	s := New(Options{
		AllowInjection: true,
		Breaker:        guard.BreakerOptions{Threshold: 3, Cooldown: time.Second, Now: clk.Now},
	})
	defer s.Close()
	panicSS := guard.Fault{Engine: "statespace", Point: guard.PointCheckpoint, Mode: guard.ModePanic, Times: -1}

	// Hedged requests survive the panicking engine: the race answers
	// through matrix/hsdf while statespace's isolated panic is recorded.
	res, err := s.Analyze(context.Background(), injected(gen.Figure2(), "hedged", panicSS))
	if err != nil {
		t.Fatalf("hedged with sick statespace: %v", err)
	}
	if res.Engine == "statespace" {
		t.Fatal("race won by the panicking engine")
	}

	// Trip the breaker with single-engine requests — nothing cancels
	// them, so the injected panic always fires. The hedged race above
	// may already have recorded the panic as one breaker failure
	// (whether it fired before the winner's cancellation is a
	// scheduling race), so later iterations may find the breaker
	// already open; both outcomes are engine-sickness refusals.
	for i := 0; i < 3; i++ {
		_, err := s.Analyze(context.Background(), injected(gen.Figure2(), "statespace", panicSS))
		if !errors.Is(err, guard.ErrEngineFailed) && !errors.Is(err, guard.ErrBreakerOpen) {
			t.Fatalf("injected statespace panic %d: err = %v, want ErrEngineFailed or ErrBreakerOpen", i, err)
		}
	}
	if st := s.BreakerState("statespace"); st != "open" {
		t.Fatalf("statespace breaker = %s, want open after 3 panics", st)
	}

	// With the breaker open, hedged requests keep succeeding without
	// statespace; the report says it was gated.
	res, err = s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatalf("hedged with statespace shed: %v", err)
	}
	report := strings.Join(res.Report, "\n")
	if !strings.Contains(report, "gated") || !strings.Contains(report, "statespace") {
		t.Errorf("report does not show statespace gated:\n%s", report)
	}
}

func TestDrainStopsAdmission(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	if _, err := s.Analyze(context.Background(), figure2Request(t, "hedged")); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	_, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Analyze: %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainCancelsStragglers starts an effectively unbounded analysis
// (exponential chain, unlimited budget, long deadline) and proves an
// expired drain deadline hammers it through the base context instead of
// waiting forever.
func TestDrainCancelsStragglers(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{MaxTimeout: time.Hour, DefaultTimeout: time.Hour})
	g, err := gen.ExponentialChain(40)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Analyze(context.Background(), &Request{Graph: g, Method: "matrix", Budget: -1})
		done <- err
	}()
	for s.Health().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	drainCtx, cancel := context.WithCancel(context.Background())
	cancel() // the drain deadline is already over: hammer immediately
	if err := s.Drain(drainCtx); err == nil {
		t.Error("hammered drain reported clean")
	}
	if err := <-done; !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("straggler err = %v, want ErrCanceled", err)
	}
}

func TestEstimateCost(t *testing.T) {
	small := EstimateCost(gen.Figure2())
	if small <= 0 {
		t.Fatalf("cost of figure2 = %d", small)
	}
	chain, err := gen.ExponentialChain(40)
	if err != nil {
		t.Fatal(err)
	}
	explosive := EstimateCost(chain)
	if explosive <= costClamp {
		t.Errorf("explosive cost %d not clamped up to at least %d", explosive, costClamp)
	}
	if explosive > costClamp+1024 {
		t.Errorf("explosive cost %d not clamped down", explosive)
	}
}

func TestRequestKeyDistinguishes(t *testing.T) {
	a := figure2Request(t, "hedged")
	b := figure2Request(t, "hedged")
	if a.Key() != b.Key() {
		t.Error("identical requests hash differently")
	}
	c := figure2Request(t, "matrix")
	if a.Key() == c.Key() {
		t.Error("different methods hash equal")
	}
	d := figure2Request(t, "hedged")
	d.Budget = 99
	if a.Key() == d.Key() {
		t.Error("different budgets hash equal")
	}
	mutated := gen.Figure2()
	if err := mutated.SetExec(0, 1234); err != nil {
		t.Fatal(err)
	}
	e := &Request{Graph: mutated, Method: "hedged"}
	if a.Key() == e.Key() {
		t.Error("different execution times hash equal")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, 0, nil)
	r := func(p string) *answer { return &answer{engine: p} }
	c.put("a", r("1"))
	c.put("b", r("2"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", r("3")) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used a evicted")
	}
	if got, _ := c.get("c"); got == nil || !got.cached {
		t.Error("cache copy not marked cached")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}
