package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/maxplus"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/rat"
	"repro/internal/sadf"
	"repro/internal/sdf"
	"repro/internal/sdfio"
	"repro/internal/verify"
)

// maxSADFRequestBytes caps the /v1/sadf request body: a model carries
// several scenario graphs, so the cap is a few of the single-graph cap.
const maxSADFRequestBytes = 4 << 20

var (
	// ErrBadModel marks a request whose FSM-SADF model is structurally
	// invalid: unparsable, dangling cross-references, unreachable
	// states, or scenarios that do not share one token signature.
	ErrBadModel = errors.New("serve: invalid sadf model")
	// ErrBadScenario marks a model whose structure is fine but whose
	// scenario graphs fail the analysis preconditions (inconsistent
	// rates, deadlock cycles).
	ErrBadScenario = errors.New("serve: sadf scenario fails preconditions")
)

// SADFKindOf classifies an AnalyzeSADF error into the stable wire
// string of ErrorPayload.Kind. The sadf endpoint adds two kinds of its
// own — "sadf-model" for structural model errors and "sadf-scenario"
// for scenario graphs failing analysis preconditions — and defers
// everything else to the single-request taxonomy.
func SADFKindOf(err error) string {
	switch {
	case errors.Is(err, ErrBadModel):
		return "sadf-model"
	case errors.Is(err, ErrBadScenario):
		return "sadf-scenario"
	}
	return KindOf(err)
}

// sadfStatusOf maps the sadf-specific kinds to HTTP statuses and defers
// the rest to statusOf.
func sadfStatusOf(kind string) int {
	switch kind {
	case "sadf-model":
		return 400
	case "sadf-scenario":
		return 422
	}
	return statusOf(kind)
}

// SADFRequestPayload is the JSON wire form of a /v1/sadf request. The
// model arrives either as the JSON document of sdfio.ReadSADFJSON or as
// the native text format; exactly one must be set.
type SADFRequestPayload struct {
	Model     json.RawMessage `json:"model,omitempty"`
	ModelText string          `json:"model_text,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	ExactOnly bool            `json:"exact_only,omitempty"`
}

// SADFRequest is a decoded, validated sadf analysis request.
type SADFRequest struct {
	Model   *sadf.Model
	Timeout time.Duration
	// ExactOnly refuses degraded answers instead of serving a brownout
	// bound. Excluded from Key: the cached exact answer is the same.
	ExactOnly bool
}

// DecodeSADFRequest parses and validates a /v1/sadf body. Structural
// model errors wrap ErrBadModel; transport-shape errors wrap
// ErrBadRequest.
func DecodeSADFRequest(data []byte) (*SADFRequest, error) {
	if len(data) > maxSADFRequestBytes {
		return nil, fmt.Errorf("%w: request body is %d bytes, limit %d", ErrTooLarge, len(data), maxSADFRequestBytes)
	}
	var p SADFRequestPayload
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the request object", ErrBadRequest)
	}
	return p.decode()
}

func (p *SADFRequestPayload) decode() (*SADFRequest, error) {
	if len(p.Model) > 0 && p.ModelText != "" {
		return nil, fmt.Errorf("%w: both model and model_text set", ErrBadRequest)
	}
	if p.TimeoutMS < 0 {
		return nil, fmt.Errorf("%w: negative timeout", ErrBadRequest)
	}
	var (
		m   *sadf.Model
		err error
	)
	switch {
	case len(p.Model) > 0:
		m, err = sdfio.ReadSADFJSON(bytes.NewReader(p.Model))
	case p.ModelText != "":
		m, err = sdfio.ParseSADFText(p.ModelText)
	default:
		return nil, fmt.Errorf("%w: neither model nor model_text set", ErrBadRequest)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return &SADFRequest{
		Model:     m,
		Timeout:   time.Duration(p.TimeoutMS) * time.Millisecond,
		ExactOnly: p.ExactOnly,
	}, nil
}

// Key is the canonical cache key of the request: a hash of the model's
// canonical text rendering, which covers scenario graphs, FSM structure
// and the initial state. Two syntactically different documents of the
// same model share a key.
func (r *SADFRequest) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "sadf\n%s", sdfio.SADFTextString(r.Model))
	return hex.EncodeToString(h.Sum(nil))
}

// SADFCertPayload is the JSON wire form of a verify.SADFCert, complete
// enough for a client to rebuild the certificate and re-check it
// against its own parse of the model — certified answers survive any
// number of proxy hops (the fleet router included) because the proof
// travels with them. Matrix entries use null for −∞; schedules carry
// actor names, resolved against the client's scenario graphs.
type SADFCertPayload struct {
	ScenarioNames []string     `json:"scenario_names"`
	Matrices      [][][]*int64 `json:"matrices"`
	Schedules     [][]string   `json:"schedules"`
	StateNames    []string     `json:"state_names"`
	StateScenario []int        `json:"state_scenario"`
	Transitions   [][2]int     `json:"transitions"`
	Initial       int          `json:"initial"`
	Unbounded     bool         `json:"unbounded,omitempty"`
	PeriodNum     int64        `json:"period_num,omitempty"`
	PeriodDen     int64        `json:"period_den,omitempty"`
	Potentials    []int64      `json:"potentials,omitempty"`
	Cycle         []int        `json:"cycle,omitempty"`
	Order         []int        `json:"order,omitempty"`
}

// NewSADFCertPayload renders a certificate for the wire.
func NewSADFCertPayload(c *verify.SADFCert, scenarios []*sdf.Graph) *SADFCertPayload {
	p := &SADFCertPayload{
		ScenarioNames: c.ScenarioNames,
		StateNames:    c.StateNames,
		StateScenario: c.StateScenario,
		Transitions:   c.Transitions,
		Initial:       c.Initial,
		Unbounded:     c.Unbounded,
		Potentials:    c.Potentials,
		Cycle:         c.Cycle,
		Order:         c.Order,
	}
	if !c.Unbounded {
		p.PeriodNum, p.PeriodDen = c.Period.Num(), c.Period.Den()
	}
	for k, mc := range c.Matrices {
		n := mc.Matrix.Size()
		rows := make([][]*int64, n)
		for i := 0; i < n; i++ {
			rows[i] = make([]*int64, n)
			for j := 0; j < n; j++ {
				if e := mc.Matrix.At(i, j); !e.IsNegInf() {
					v := e.Int()
					rows[i][j] = &v
				}
			}
		}
		p.Matrices = append(p.Matrices, rows)
		sched := make([]string, len(mc.Schedule))
		for i, a := range mc.Schedule {
			sched[i] = scenarios[k].Actor(a).Name
		}
		p.Schedules = append(p.Schedules, sched)
	}
	return p
}

// Cert rebuilds the verify.SADFCert against the given model (the
// client's own parse): schedules resolve actor names per scenario, the
// scenario order is matched by name. Everything the rebuild cannot
// resolve is a certificate error.
func (p *SADFCertPayload) Cert(m *sadf.Model) (*verify.SADFCert, error) {
	if len(p.Matrices) != len(p.ScenarioNames) || len(p.Schedules) != len(p.ScenarioNames) {
		return nil, fmt.Errorf("serve: sadf certificate payload: %d names, %d matrices, %d schedules",
			len(p.ScenarioNames), len(p.Matrices), len(p.Schedules))
	}
	cert := &verify.SADFCert{
		ScenarioNames: p.ScenarioNames,
		StateNames:    p.StateNames,
		StateScenario: p.StateScenario,
		Transitions:   p.Transitions,
		Initial:       p.Initial,
		Unbounded:     p.Unbounded,
		Potentials:    p.Potentials,
		Cycle:         p.Cycle,
		Order:         p.Order,
	}
	if !p.Unbounded {
		period, err := rat.New(p.PeriodNum, p.PeriodDen)
		if err != nil {
			return nil, fmt.Errorf("serve: sadf certificate payload: period %d/%d: %w", p.PeriodNum, p.PeriodDen, err)
		}
		cert.Period = period
	}
	for k, name := range p.ScenarioNames {
		idx, ok := m.ScenarioIndex(name)
		if !ok {
			return nil, fmt.Errorf("serve: sadf certificate names unknown scenario %q", name)
		}
		g := m.Scenarios[idx].Graph
		n := len(p.Matrices[k])
		mat := maxplus.NewMatrix(n)
		for i, row := range p.Matrices[k] {
			if len(row) != n {
				return nil, fmt.Errorf("serve: sadf certificate matrix %d is ragged", k)
			}
			for j, e := range row {
				if e != nil {
					mat.Set(i, j, maxplus.FromInt(*e))
				}
			}
		}
		sched := make([]sdf.ActorID, len(p.Schedules[k]))
		for i, an := range p.Schedules[k] {
			id, ok := g.ActorByName(an)
			if !ok {
				return nil, fmt.Errorf("serve: sadf certificate schedule names unknown actor %q in scenario %q", an, name)
			}
			sched[i] = id
		}
		cert.Matrices = append(cert.Matrices, &verify.MatrixCert{Matrix: mat, Schedule: sched})
	}
	return cert, nil
}

// CertGraphs returns the scenario graphs of m ordered as the payload's
// ScenarioNames, the order Cert's certificate expects in Check.
func (p *SADFCertPayload) CertGraphs(m *sadf.Model) ([]*sdf.Graph, error) {
	graphs := make([]*sdf.Graph, len(p.ScenarioNames))
	for k, name := range p.ScenarioNames {
		idx, ok := m.ScenarioIndex(name)
		if !ok {
			return nil, fmt.Errorf("serve: sadf certificate names unknown scenario %q", name)
		}
		graphs[k] = m.Scenarios[idx].Graph
	}
	return graphs, nil
}

// SADFResultPayload is the JSON wire form of a sadf analysis answer.
type SADFResultPayload struct {
	Model     string `json:"model"`
	Scenarios int    `json:"scenarios"`
	States    int    `json:"states"`
	Tokens    int    `json:"tokens"`

	Unbounded bool   `json:"unbounded,omitempty"`
	Period    string `json:"period,omitempty"`
	PeriodNum int64  `json:"period_num,omitempty"`
	PeriodDen int64  `json:"period_den,omitempty"`

	AutomatonNodes int      `json:"automaton_nodes,omitempty"`
	AutomatonEdges int      `json:"automaton_edges,omitempty"`
	Critical       []string `json:"critical,omitempty"`

	Verified    bool             `json:"verified,omitempty"`
	Certificate string           `json:"certificate,omitempty"`
	Cert        *SADFCertPayload `json:"cert,omitempty"`

	Cached      bool   `json:"cached,omitempty"`
	Deduped     bool   `json:"deduped,omitempty"`
	Degradation string `json:"degradation,omitempty"`
	Stale       bool   `json:"stale,omitempty"`

	// PeriodLower carries the brownout bound's floor when one exists
	// (an FSM self-loop anchors it).
	PeriodLower    string `json:"period_lower,omitempty"`
	PeriodLowerNum int64  `json:"period_lower_num,omitempty"`
	PeriodLowerDen int64  `json:"period_lower_den,omitempty"`
}

// sadfAnswer is the engine-layer result of a sadf analysis before
// rendering, carried inside the shared answer struct so the result
// cache and singleflight group serve this workload unchanged.
type sadfAnswer struct {
	res  *sadf.Result
	cert *verify.SADFCert
}

// AnalyzeSADF serves one FSM-SADF worst-case throughput request with
// the full production discipline of the single-graph path: admission
// control and the bounded queue, per-scenario prechecks, admission
// pricing by the summed per-scenario *reduced* cost, the result cache
// with singleflight dedup, and the brownout ladder.
func (s *Server) AnalyzeSADF(ctx context.Context, req *SADFRequest) (*SADFResultPayload, error) {
	start := s.reg.Now()
	res, err := s.analyzeSADF(ctx, req)
	elapsed := s.reg.Now().Sub(start)
	outcome := outcomeOf(err)
	s.reg.Histogram(obs.MetricSADFSeconds, "outcome", outcome).Observe(elapsed)
	if outcome == "served" || outcome == "failed" {
		s.ctrl.observe(elapsed)
	}
	s.reg.Counter(obs.MetricSADFRequests, "outcome", outcome).Inc()
	return res, err
}

func (s *Server) analyzeSADF(ctx context.Context, req *SADFRequest) (*SADFResultPayload, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	defer s.finish()

	select {
	case s.slots <- struct{}{}:
	default:
		s.ctrl.update(cap(s.slots))
		s.overloaded.Add(1)
		return nil, fmt.Errorf("%w: all %d request slots taken", ErrOverloaded, cap(s.slots))
	}
	defer func() { <-s.slots }()
	s.admitted.Add(1)

	level := s.ctrl.update(len(s.slots))

	// Per-scenario structural prechecks: an inconsistent or deadlocked
	// scenario fails the whole model for almost nothing, before any
	// budget is reserved.
	sp := s.reg.StartSpan("sadf.precheck")
	err := s.precheckScenarios(req.Model)
	sp.Finish()
	if err != nil {
		s.failed.Add(1)
		return nil, err
	}

	// Admission pricing: the sum of per-scenario reduced costs — each
	// scenario runs through the reduction fixpoint and is charged at
	// its reduced size, so the paper's reduction techniques price this
	// workload too.
	cost := s.sadfCost(req.Model)

	res, err := s.sadfAdmitted(ctx, req, cost, level)
	if err != nil {
		if !errors.Is(err, ErrDegraded) {
			s.failed.Add(1)
		}
		return nil, err
	}
	s.served.Add(1)
	return res, nil
}

// precheckScenarios runs the lint prechecks on every scenario graph.
func (s *Server) precheckScenarios(m *sadf.Model) error {
	for _, sc := range m.Scenarios {
		if err := lint.PrecheckWith(passes.NewFacts(sc.Graph)); err != nil {
			return fmt.Errorf("%w: scenario %q: %v", ErrBadScenario, sc.Name, err)
		}
	}
	return nil
}

// sadfCost prices the model by the summed per-scenario reduced cost,
// saturating instead of overflowing.
func (s *Server) sadfCost(m *sadf.Model) int64 {
	rctx := obs.WithRegistry(s.baseCtx, s.reg)
	total := int64(0)
	for _, sc := range m.Scenarios {
		next, ok := rat.AddChecked(total, passes.ReducedCost(rctx, sc.Graph))
		if !ok {
			// Saturate at the running total: it is already far past any
			// pool capacity, so the request is refused either way.
			return total
		}
		total = next
	}
	return total
}

// sadfAdmitted executes one admitted, prechecked sadf request at the
// given degradation level, mirroring analyzeAdmitted.
func (s *Server) sadfAdmitted(ctx context.Context, req *SADFRequest, cost int64, level Level) (*SADFResultPayload, error) {
	if req.ExactOnly && level > LevelExact {
		s.reg.Counter(obs.MetricDegraded, "level", "exact-only").Inc()
		return nil, fmt.Errorf("%w: serving at level %s and the request is exact-only", ErrDegraded, level)
	}
	if level > LevelExact {
		return s.sadfDegraded(ctx, req, level)
	}
	ans, err := s.dispatchWith(ctx, "sadf|"+req.Key(), func() (*answer, error) {
		return s.executeSADF(req, cost)
	})
	if err != nil {
		return nil, err
	}
	return s.renderSADF(req.Model, ans)
}

// sadfDegraded is the brownout ladder of the sadf path: a fresh cache
// hit is full-fidelity at any level; at stale-cache and shed an expired
// exact answer is served marked stale with a background refresh; what
// remains is answered with the cheap certified-by-construction
// per-scenario-worst bound, and refused outright at shed.
func (s *Server) sadfDegraded(ctx context.Context, req *SADFRequest, level Level) (*SADFResultPayload, error) {
	key := "sadf|" + req.Key()
	if ans, stale, ok := s.cache.getStale(key); ok {
		serveIt := !stale || level >= LevelStale
		if serveIt {
			res, err := s.renderSADF(req.Model, ans)
			if err == nil {
				if stale {
					res.Degradation = LevelStale.String()
					res.Stale = true
					s.reg.Counter(obs.MetricDegraded, "level", LevelStale.String()).Inc()
					s.spawnSADFRefresh(req, key)
				}
				return res, nil
			}
		}
	}
	if level >= LevelShed {
		s.reg.Counter(obs.MetricDegraded, "level", LevelShed.String()).Inc()
		return nil, fmt.Errorf("%w: shedding fresh work and no cached answer exists", ErrDegraded)
	}
	res, err := s.sadfBounded(req.Model)
	if err != nil {
		return nil, err
	}
	s.reg.Counter(obs.MetricDegraded, "level", LevelBounded.String()).Inc()
	return res, nil
}

// spawnSADFRefresh recomputes a stale sadf cache entry in the
// background, singleflighted and drain-tracked like spawnRefresh.
func (s *Server) spawnSADFRefresh(req *SADFRequest, key string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.refreshWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.refreshWG.Done()
		f, leader := s.flights.join(key)
		if !leader {
			return
		}
		res, err := s.executeSADF(req, s.sadfCost(req.Model))
		if err == nil {
			s.cache.put(key, res)
		}
		s.flights.finish(key, f, res, err)
	}()
}

// executeSADF reserves pool cost and a worker slot, then runs the full
// automaton analysis under the request deadline.
func (s *Server) executeSADF(req *SADFRequest, cost int64) (*answer, error) {
	if !s.pool.TryAcquire(cost) {
		s.overloaded.Add(1)
		return nil, fmt.Errorf("%w: request cost %d exceeds pool headroom %d",
			ErrOverloaded, cost, s.pool.Headroom())
	}
	defer s.pool.Release(cost)

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	actx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	actx = guard.WithBudget(actx, guard.BudgetFrom(actx))
	actx = obs.WithRegistry(actx, s.reg)

	select {
	case s.work <- struct{}{}:
	case <-actx.Done():
		return nil, fmt.Errorf("%w: queued past the deadline: %w", guard.ErrCanceled, context.Cause(actx))
	}
	defer func() { <-s.work }()
	s.running.Add(1)
	defer s.running.Add(-1)

	res, cert, err := sadf.Analyze(actx, req.Model)
	if err != nil {
		return nil, err
	}
	s.reg.Counter(obs.MetricSADFAutomatonNodes).Add(int64(res.AutomatonNodes))
	return &answer{engine: "sadf", sadf: &sadfAnswer{res: res, cert: cert}}, nil
}

// renderSADF turns a sadf answer into the wire payload. The certificate
// is re-checked against the requesting model's own scenario graphs on
// every serve — cached and deduplicated entries included — before the
// payload claims Verified, and ships on the wire so clients can repeat
// the check behind any proxy.
func (s *Server) renderSADF(m *sadf.Model, ans *answer) (*SADFResultPayload, error) {
	sa := ans.sadf
	if sa == nil {
		return nil, fmt.Errorf("serve: cached entry is not a sadf answer")
	}
	if err := sa.cert.Check(context.Background(), m.Graphs()); err != nil {
		return nil, fmt.Errorf("serve: sadf certificate rejected: %w", err)
	}
	res := &SADFResultPayload{
		Model:          m.Name,
		Scenarios:      len(m.Scenarios),
		States:         len(m.States),
		Tokens:         sa.res.Tokens,
		Unbounded:      sa.res.Unbounded,
		AutomatonNodes: sa.res.AutomatonNodes,
		AutomatonEdges: sa.res.AutomatonEdges,
		Critical:       sa.res.CriticalStates,
		Verified:       true,
		Certificate:    sa.cert.String(),
		Cert:           NewSADFCertPayload(sa.cert, m.Graphs()),
		Cached:         ans.cached,
		Deduped:        ans.deduped,
	}
	if !sa.res.Unbounded {
		res.Period = sa.res.Period.String()
		res.PeriodNum = sa.res.Period.Num()
		res.PeriodDen = sa.res.Period.Den()
	}
	return res, nil
}

// sadfBounded answers with the certified-by-construction
// per-scenario-worst bound: the worst scenario's serial makespan
// Σ q_a·exec_a bounds every automaton matrix entry from above (all
// tokens available at time zero, self-timed execution finishes no later
// than the serial schedule), and every automaton edge carries delay 1,
// so no cycle mean — hence no worst-case period — exceeds it. When the
// FSM lets a state repeat immediately, that scenario's period floor
// anchors the answer from below. The bound is re-derived from the model
// on every serve, never cached: re-derivation is the check.
func (s *Server) sadfBounded(m *sadf.Model) (*SADFResultPayload, error) {
	res := &SADFResultPayload{
		Model:       m.Name,
		Scenarios:   len(m.Scenarios),
		States:      len(m.States),
		Tokens:      m.Tokens(),
		Degradation: LevelBounded.String(),
	}
	looped := m.SelfLoopScenarios()
	var upper, lower rat.Rat
	hasLower := false
	for k, sc := range m.Scenarios {
		facts := passes.NewFacts(sc.Graph)
		q, err := facts.Repetition()
		if err != nil {
			return nil, fmt.Errorf("%w: scenario %q: %v", ErrBadScenario, sc.Name, err)
		}
		makespan := int64(0)
		for a, copies := range q {
			work, ok := rat.MulChecked(copies, sc.Graph.Actor(sdf.ActorID(a)).Exec)
			if !ok {
				return nil, fmt.Errorf("%w: scenario %q serial makespan overflows int64", ErrBadScenario, sc.Name)
			}
			if makespan, ok = rat.AddChecked(makespan, work); !ok {
				return nil, fmt.Errorf("%w: scenario %q serial makespan overflows int64", ErrBadScenario, sc.Name)
			}
		}
		if ms := rat.FromInt(makespan); k == 0 || ms.Cmp(upper) > 0 {
			upper = ms
		}
		if looped[sc.Name] {
			if floor, ok := facts.PeriodFloor(); ok {
				if !hasLower || floor.Cmp(lower) > 0 {
					lower = floor
					hasLower = true
				}
			}
		}
	}
	res.Period = upper.String()
	res.PeriodNum = upper.Num()
	res.PeriodDen = upper.Den()
	if hasLower && !lower.IsZero() {
		res.PeriodLower = lower.String()
		res.PeriodLowerNum = lower.Num()
		res.PeriodLowerDen = lower.Den()
	}
	return res, nil
}
