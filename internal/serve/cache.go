package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// resultCache is a bounded LRU of certified analysis answers keyed by
// the canonical request hash. Every cached entry was independently
// verified before it was stored; the entry holds the engine-layer
// answer (throughput plus certificate object) rather than a rendered
// payload, because the serving layer lifts answers through each
// request's own reduction chain before rendering — two originals that
// reduce to the same graph share the entry but not the lift.
//
// With a TTL configured, entries past it stop answering get but stay
// in the list: the degradation ladder's stale-cache level serves them
// explicitly (marked stale) via getStale while a background refresh
// recomputes. Expired entries leave only by capacity eviction or by
// being overwritten with a fresh result — a stale certified answer
// beats a refusal, and it still occupies the capacity it is worth.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration    // 0 = entries never go stale
	now     func() time.Time // registry clock (injectable in tests)
	order   *list.List       // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	reg     *obs.Registry // nil = uninstrumented

	hits, misses, evictions atomic.Int64
}

type cacheEntry struct {
	key    string
	res    *answer
	stored time.Time
}

func newResultCache(capacity int, ttl time.Duration, reg *obs.Registry) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		ttl:     ttl,
		now:     reg.Now,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
		reg:     reg,
	}
}

// fresh reports whether the entry is still within the TTL.
func (c *resultCache) fresh(e *cacheEntry) bool {
	return c.ttl <= 0 || c.now().Sub(e.stored) < c.ttl
}

// get returns a copy of the cached answer for key, marking it as served
// from the cache. Expired entries answer as misses (the exact path must
// recompute) but are left in place for getStale.
func (c *resultCache) get(key string) (*answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		c.reg.Counter(obs.MetricCacheEvents, "event", "miss").Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !c.fresh(e) {
		c.misses.Add(1)
		c.reg.Counter(obs.MetricCacheEvents, "event", "expired").Inc()
		return nil, false
	}
	c.hits.Add(1)
	c.reg.Counter(obs.MetricCacheEvents, "event", "hit").Inc()
	c.order.MoveToFront(el)
	res := *e.res
	res.cached = true
	return &res, true
}

// getStale returns a copy of the cached answer for key regardless of
// age, reporting whether it is past the TTL. Serving an entry — fresh
// or stale — refreshes its LRU position: an answer that is still being
// asked for is the last one capacity eviction should reclaim.
func (c *resultCache) getStale(key string) (res *answer, stale, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses.Add(1)
		c.reg.Counter(obs.MetricCacheEvents, "event", "miss").Inc()
		return nil, false, false
	}
	e := el.Value.(*cacheEntry)
	stale = !c.fresh(e)
	c.hits.Add(1)
	if stale {
		c.reg.Counter(obs.MetricCacheEvents, "event", "stale-hit").Inc()
	} else {
		c.reg.Counter(obs.MetricCacheEvents, "event", "hit").Inc()
	}
	c.order.MoveToFront(el)
	out := *e.res
	out.cached = true
	return &out, stale, true
}

// put stores an answer, evicting the least recently used entry past the
// capacity.
func (c *resultCache) put(key string, res *answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res = res
		e.stored = c.now()
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, stored: c.now()})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
		c.reg.Counter(obs.MetricCacheEvents, "event", "evict").Inc()
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight is one in-flight computation that identical requests join
// instead of repeating.
type flight struct {
	done chan struct{}
	res  *answer
	err  error
}

// flightGroup deduplicates concurrent identical requests: the first
// caller for a key becomes the leader and computes; followers wait for
// the leader's result (or their own deadline). The leader runs detached
// from any single caller's context, so a follower-visible result is
// never lost to the leader's client hanging up.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	reg     *obs.Registry // nil = uninstrumented

	deduped atomic.Int64
}

func newFlightGroup(reg *obs.Registry) *flightGroup {
	return &flightGroup{flights: make(map[string]*flight), reg: reg}
}

// join returns the existing flight for key, or registers a new one and
// reports that the caller is its leader.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		g.deduped.Add(1)
		g.reg.Counter(obs.MetricCacheEvents, "event", "dedup").Inc()
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases the key.
func (g *flightGroup) finish(key string, f *flight, res *answer, err error) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}
