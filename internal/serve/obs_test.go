package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/obs"
)

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// sampleValue finds the first parsed sample matching name and every
// given label pair, returning ok=false when absent.
func sampleValue(samples []obs.Sample, name string, kv ...string) (float64, bool) {
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// TestHTTPMetricsSurface drives two identical requests through a server
// built with a registry and asserts the whole surface: request and
// cache counters on /metrics, histogram series per engine, expvar JSON
// on /debug/vars and the event ring on /debug/events.
func TestHTTPMetricsSurface(t *testing.T) {
	defer noLeaks(t)
	reg := obs.New()
	reg.EnableEvents(64)
	s := New(Options{Obs: reg})
	defer s.Close()
	h := NewHandler(s)

	for i := 0; i < 2; i++ {
		if rec := postJSON(t, h, "/v1/throughput", requestBody(t, "hedged")); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d, body %s", i, rec.Code, rec.Body)
		}
	}

	rec := getPath(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type = %q", ct)
	}
	samples, err := obs.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if v, ok := sampleValue(samples, obs.MetricRequests, "outcome", "served"); !ok || v != 2 {
		t.Errorf("served requests = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := sampleValue(samples, obs.MetricCacheEvents, "event", "miss"); !ok || v != 1 {
		t.Errorf("cache misses = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, obs.MetricCacheEvents, "event", "hit"); !ok || v != 1 {
		t.Errorf("cache hits = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, obs.MetricRequestSeconds+"_count", "method", "hedged"); !ok || v != 2 {
		t.Errorf("request histogram count = %v (ok=%v), want 2", v, ok)
	}
	// Only the first request computed; the winner's engine series must
	// show at least one observation.
	if v, ok := sampleValue(samples, obs.MetricEngineSeconds+"_count"); !ok || v < 1 {
		t.Errorf("engine histogram count = %v (ok=%v), want >= 1", v, ok)
	}
	if _, ok := sampleValue(samples, obs.MetricEngineAttempts, "engine", "matrix"); !ok {
		t.Error("no matrix engine attempt counter")
	}
	if _, ok := sampleValue(samples, obs.MetricSpanSeconds+"_count", "span", "analysis.precheck"); !ok {
		t.Error("no precheck span series")
	}

	rec = getPath(t, h, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars lacks memstats")
	}

	rec = getPath(t, h, "/debug/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events status = %d", rec.Code)
	}
	var evs struct {
		Total  int64       `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Total == 0 || len(evs.Events) == 0 {
		t.Errorf("event ring empty: total=%d events=%d", evs.Total, len(evs.Events))
	}
}

// TestHTTPMetricsWithoutRegistry: the observability endpoints 404 on a
// server built without a registry, and analysis is unaffected — the
// nil-registry no-op contract end to end.
func TestHTTPMetricsWithoutRegistry(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	h := NewHandler(s)

	if rec := postJSON(t, h, "/v1/throughput", requestBody(t, "hedged")); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/events"} {
		if rec := getPath(t, h, path); rec.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, rec.Code)
		}
	}
}

// TestHTTPEventsDisabled404: a registry without an armed ring keeps
// /debug/events 404 while /metrics works.
func TestHTTPEventsDisabled404(t *testing.T) {
	s := New(Options{Obs: obs.New()})
	defer s.Close()
	h := NewHandler(s)
	if rec := getPath(t, h, "/debug/events"); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/events status = %d, want 404", rec.Code)
	}
	if rec := getPath(t, h, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("/metrics status = %d, want 200", rec.Code)
	}
}

// TestRetryAfterDerivation pins the derived Retry-After values: the
// drain hint is long, the breaker hint quotes the configured cooldown,
// and the overload hint scales with queue depth.
func TestRetryAfterDerivation(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1, Breaker: guard.BreakerOptions{Cooldown: 3 * time.Second}})
	defer s.Close()

	if got := s.retryAfter("draining"); got != drainRetryAfter {
		t.Errorf("draining hint = %d, want %d", got, drainRetryAfter)
	}
	if got := s.retryAfter("breaker-open"); got != 3 {
		t.Errorf("breaker-open hint = %d, want the 3s cooldown", got)
	}
	if got := s.retryAfter("overloaded"); got != 1 {
		t.Errorf("overloaded hint with empty queue = %d, want 1", got)
	}
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	if got := s.retryAfter("overloaded"); got != 3 {
		t.Errorf("overloaded hint with full queue = %d, want 1+2/1 = 3", got)
	}
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}
}

// TestHTTPRetryAfterValues asserts the two wire-visible values: a full
// queue answers 429 with the queue-derived hint and a draining server
// answers 503 with the drain hint, on both /v1/throughput and /readyz.
func TestHTTPRetryAfterValues(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 1, QueueDepth: 1})
	h := NewHandler(s)
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	rec := postJSON(t, h, "/v1/throughput", requestBody(t, "hedged"))
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	// The refused request escalated the ladder to shed, so the hint is
	// the controller's drain estimate: 2 queued × 250ms fallback mean /
	// 1 worker, rounded up to 1s.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("overloaded Retry-After = %q, want the 1s drain estimate", got)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = postJSON(t, h, "/v1/throughput", requestBody(t, "hedged"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Errorf("draining Retry-After = %q, want 5", got)
	}
	rec = getPath(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Errorf("draining readyz Retry-After = %q, want 5", got)
	}
}

// TestReadyzCacheDetail: the readiness body surfaces the cache traffic
// counters, including evictions.
func TestReadyzCacheDetail(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{CacheEntries: 1})
	defer s.Close()
	h := NewHandler(s)

	s.cache.put("a", &answer{engine: "matrix"})
	s.cache.put("b", &answer{engine: "matrix"}) // evicts a
	s.cache.get("b")
	s.cache.get("a")

	rec := getPath(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz status = %d", rec.Code)
	}
	var body struct {
		Ready bool `json:"ready"`
		Cache struct {
			Entries   int   `json:"entries"`
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Evictions int64 `json:"evictions"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Ready {
		t.Error("not ready")
	}
	if body.Cache.Entries != 1 || body.Cache.Hits != 1 || body.Cache.Misses != 1 || body.Cache.Evictions != 1 {
		t.Errorf("cache detail = %+v, want 1 entry, 1 hit, 1 miss, 1 eviction", body.Cache)
	}
}

// TestCacheEvictionOrderAndCounts: eviction is strictly least recently
// used — a get refreshes recency — and every eviction is counted both
// in the local counter and the registry series.
func TestCacheEvictionOrderAndCounts(t *testing.T) {
	reg := obs.New()
	c := newResultCache(2, 0, reg)
	r := func(p string) *answer { return &answer{engine: p} }

	c.put("a", r("1"))
	c.put("b", r("2"))
	c.get("a")         // recency now a > b
	c.put("c", r("3")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived: eviction did not pick the least recently used entry")
	}
	c.put("d", r("4")) // recency c > a after the miss on b? no: get(b) missed, order unchanged (c, a) -> evicts a
	if _, ok := c.get("a"); ok {
		t.Error("a survived: eviction did not pick the least recently used entry")
	}
	for _, key := range []string{"c", "d"} {
		if _, ok := c.get(key); !ok {
			t.Errorf("%s missing", key)
		}
	}
	if got := c.evictions.Load(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	if got := reg.Counter(obs.MetricCacheEvents, "event", "evict").Value(); got != 2 {
		t.Errorf("evict counter = %d, want 2", got)
	}
}

// TestSingleflightLeaderFailure: when the leader of a flight fails, the
// followers receive the leader's error — not a result, not a hang — and
// nothing is cached for the key.
func TestSingleflightLeaderFailure(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	req := &Request{Graph: gen.Figure2(), Method: "hedged"}
	key := req.Key()

	f, leader := s.flights.join(key)
	if !leader {
		t.Fatal("fresh key did not make this caller the leader")
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.dispatch(context.Background(), req)
		errc <- err
	}()
	// Wait until the follower has joined the flight before failing it.
	deadline := time.Now().Add(5 * time.Second)
	for s.flights.deduped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	boom := errors.New("leader exploded")
	s.flights.finish(key, f, nil, boom)
	if err := <-errc; !errors.Is(err, boom) {
		t.Fatalf("follower error = %v, want the leader's", err)
	}
	if _, ok := s.cache.get(key); ok {
		t.Error("a failed flight left an entry in the cache")
	}
	// The key is released: the next caller leads a fresh flight.
	if _, leader := s.flights.join(key); !leader {
		t.Error("key not released after the failed flight")
	}
}
