package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/sdfio"
)

// FuzzRequest hammers the wire decoder of sdfserved with arbitrary
// bytes. The decoder guards the admission path of a public daemon, so
// the invariants are absolute: it must never panic, and anything it
// accepts must be a fully validated request — a structurally valid
// graph, a normalized method, non-negative timeout, and a canonical key
// that is deterministic (the cache and the singleflight group both key
// on it).
func FuzzRequest(f *testing.F) {
	var graphJSON, graphText bytes.Buffer
	if err := sdfio.WriteJSON(&graphJSON, gen.Figure2()); err != nil {
		f.Fatal(err)
	}
	if err := sdfio.WriteText(&graphText, gen.Figure2()); err != nil {
		f.Fatal(err)
	}
	seed := func(p RequestPayload) {
		b, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(RequestPayload{Graph: graphJSON.Bytes()})
	seed(RequestPayload{Graph: graphJSON.Bytes(), Method: "Matrix", TimeoutMS: 250, Budget: 100000})
	seed(RequestPayload{GraphText: graphText.String(), Method: "hedged"})
	seed(RequestPayload{GraphText: graphText.String(), Method: "statespace",
		Inject: []InjectPayload{{Engine: "statespace", Point: "checkpoint", Mode: "panic", N: 3, Times: -1}}})
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"graph_text":"graph g\nactor a 1\n"}`))
	f.Add([]byte(`{"graph":{"name":"g","actors":[],"channels":[]}}`))
	f.Add([]byte(`{"graph_text":"x","method":"oracle"}`))
	f.Add([]byte(`{"graph_text":"x","timeout_ms":-5}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			return
		}
		checkDecodedRequest(t, req)
	})
}

// checkDecodedRequest asserts the absolute invariants of any request the
// wire decoder accepts, shared by the single-request and batch fuzzers.
func checkDecodedRequest(t *testing.T, req *Request) {
	t.Helper()
	if req.Graph == nil {
		t.Fatal("accepted request with nil graph")
	}
	if err := req.Graph.Validate(); err != nil {
		t.Fatalf("accepted invalid graph: %v", err)
	}
	switch req.Method {
	case "hedged", "matrix", "statespace", "hsdf":
	default:
		t.Fatalf("accepted unknown method %q", req.Method)
	}
	if req.Timeout < 0 {
		t.Fatalf("accepted negative timeout %v", req.Timeout)
	}
	if cost := EstimateCost(req.Graph); cost < 1 {
		t.Fatalf("estimated cost %d < 1", cost)
	}
	if k1, k2 := req.Key(), req.Key(); k1 != k2 || len(k1) != 64 {
		t.Fatalf("unstable or malformed request key %q vs %q", k1, k2)
	}
}

// FuzzBatchRequest hammers the batch wire decoder the way FuzzRequest
// hammers the single-request one. The batch decoder fronts the same
// public daemon with an extra contract on top: it must never panic, a
// batch it accepts holds between 1 and maxBatchItems items with a
// non-negative shared deadline, and every item carries exactly one of a
// fully validated request (the FuzzRequest invariants) or a per-item
// decode error that wraps ErrBadRequest — per-item fault isolation
// starts at the wire.
func FuzzBatchRequest(f *testing.F) {
	var graphJSON, graphText bytes.Buffer
	if err := sdfio.WriteJSON(&graphJSON, gen.Figure2()); err != nil {
		f.Fatal(err)
	}
	if err := sdfio.WriteText(&graphText, gen.Figure2()); err != nil {
		f.Fatal(err)
	}
	seed := func(p BatchRequestPayload) {
		b, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(BatchRequestPayload{Items: []RequestPayload{{Graph: graphJSON.Bytes()}}})
	seed(BatchRequestPayload{
		Items: []RequestPayload{
			{GraphText: graphText.String(), Method: "hedged"},
			{Graph: graphJSON.Bytes(), Method: "Matrix", TimeoutMS: 250, Budget: 100000},
			{GraphText: "sdf broken\nactor"},
		},
		DeadlineMS: 2000,
	})
	seed(BatchRequestPayload{Items: []RequestPayload{{GraphText: graphText.String(), Method: "statespace",
		Inject: []InjectPayload{{Engine: "statespace", Point: "checkpoint", Mode: "panic", Times: -1}}}}})
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`{"items":[{}]}`))
	f.Add([]byte(`{"items":[{"graph_text":"graph g\nactor a 1\n"}],"deadline_ms":-5}`))
	f.Add([]byte(`{"items":[{"graph_text":"x","method":"oracle"}]} {"again":true}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		breq, err := DecodeBatchRequest(data)
		if err != nil {
			if breq != nil {
				t.Fatal("batch decoder returned both a batch and an error")
			}
			return
		}
		if n := len(breq.Items); n < 1 || n > maxBatchItems {
			t.Fatalf("accepted batch with %d items", n)
		}
		if breq.Deadline < 0 {
			t.Fatalf("accepted negative deadline %v", breq.Deadline)
		}
		for i, it := range breq.Items {
			switch {
			case it.Req != nil && it.Err != nil:
				t.Fatalf("item %d decoded to both a request and an error", i)
			case it.Req == nil && it.Err == nil:
				t.Fatalf("item %d decoded to neither a request nor an error", i)
			case it.Err != nil:
				if !errors.Is(it.Err, ErrBadRequest) {
					t.Fatalf("item %d error %v does not wrap ErrBadRequest", i, it.Err)
				}
			default:
				checkDecodedRequest(t, it.Req)
			}
		}
	})
}
