package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/sdf"
)

// TestServedSoak is the acceptance scenario of the serving layer, run
// entirely in-process and without a single sleep-based synchronisation:
//
//  1. a concurrent storm of ~200 mixed requests — healthy graphs,
//     structurally broken graphs, explosive graphs under tiny budgets,
//     and fault-injected panics — none of which may kill the server;
//  2. the statespace engine, injected to panic repeatedly, trips its
//     breaker open while hedged requests keep answering through the
//     remaining engines;
//  3. after the injection stops and the (fake) cooldown clock advances,
//     the half-open probe heals the breaker;
//  4. a SIGTERM-style drain completes cleanly with zero leaked
//     goroutines under -race.
func TestServedSoak(t *testing.T) {
	defer noLeaks(t)
	clk := &fakeClock{now: time.Unix(0, 0)}
	s := New(Options{
		Workers:        8,
		QueueDepth:     256,
		AllowInjection: true,
		Breaker:        guard.BreakerOptions{Threshold: 3, Cooldown: time.Second, Now: clk.Now},
	})

	deadlocked := func() *sdf.Graph {
		g := sdf.NewGraph("deadlocked")
		a := g.MustAddActor("A", 1)
		b := g.MustAddActor("B", 1)
		g.MustAddChannel(a, b, 1, 1, 0)
		g.MustAddChannel(b, a, 1, 1, 0)
		return g
	}
	explosive, err := gen.ExponentialChain(30)
	if err != nil {
		t.Fatal(err)
	}
	panicSS := guard.Fault{Engine: "statespace", Point: guard.PointCheckpoint, Mode: guard.ModePanic, Times: -1}

	// Phase 1+2: the mixed storm. Every request either succeeds or
	// fails with a classified, expected kind; anything else (or an
	// escaped panic, which -race would turn into a crash) fails the
	// soak.
	const storm = 160
	var wg sync.WaitGroup
	var healthy, refused atomic.Int64
	errCh := make(chan error, storm)
	for i := 0; i < storm; i++ {
		req := &Request{Method: "hedged"}
		var wantKinds []string
		switch i % 5 {
		case 0: // healthy hedged traffic, varied graphs for cache churn
			req.Graph = gen.Figure3(int64(1 + i%7))
		case 1: // healthy single-engine traffic
			req.Graph = gen.Figure2()
			req.Method = []string{"matrix", "hsdf"}[i%2]
		case 2: // structurally broken: refused by the precheck
			req.Graph = deadlocked()
			wantKinds = []string{"precondition"}
		case 3: // explosive graph under a tiny budget: refused, not run
			req.Graph = explosive
			req.Budget = 1000
			wantKinds = []string{"budget"}
		case 4: // fault-injected: statespace panics at its 1st checkpoint
			req.Graph = gen.Figure2()
			req.Faults = []guard.Fault{panicSS}
			// Hedged traffic survives the panic via the other engines;
			// once the streak opens the breaker mid-storm, statespace is
			// gated and the request still succeeds.
		}
		wg.Add(1)
		go func(req *Request, wantKinds []string) {
			defer wg.Done()
			res, err := s.Analyze(context.Background(), req)
			switch {
			case err == nil:
				if len(wantKinds) > 0 {
					errCh <- fmt.Errorf("%s on %s: succeeded, want %v", req.Method, req.Graph.Name(), wantKinds)
					return
				}
				if !res.Verified {
					errCh <- fmt.Errorf("%s on %s: unverified success", req.Method, req.Graph.Name())
					return
				}
				healthy.Add(1)
			case KindOf(err) == "overloaded":
				// Legitimate load shedding under the storm.
				refused.Add(1)
			default:
				kind := KindOf(err)
				for _, w := range wantKinds {
					if kind == w {
						refused.Add(1)
						return
					}
				}
				errCh <- fmt.Errorf("%s on %s: kind %q (%v), want %v", req.Method, req.Graph.Name(), kind, err, wantKinds)
			}
		}(req, wantKinds)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatalf("storm failed (healthy=%d refused=%d)", healthy.Load(), refused.Load())
	}
	if healthy.Load() == 0 {
		t.Fatal("storm produced no healthy results")
	}

	// Phase 2 determinism: whatever the storm's scheduling did, a short
	// sequential run of injected single-engine panics drives the
	// statespace breaker open for sure.
	for i := 0; i < 4 && s.BreakerState("statespace") != "open"; i++ {
		_, err := s.Analyze(context.Background(), injected(gen.Figure2(), "statespace", panicSS))
		if err == nil {
			t.Fatal("injected statespace panic succeeded")
		}
	}
	if st := s.BreakerState("statespace"); st != "open" {
		t.Fatalf("statespace breaker = %s, want open", st)
	}

	// With the breaker open, hedged requests keep answering and say the
	// engine is gated.
	res, err := s.Analyze(context.Background(), &Request{Graph: gen.Figure3(99), Method: "hedged"})
	if err != nil {
		t.Fatalf("hedged with statespace open: %v", err)
	}
	report := strings.Join(res.Report, "\n")
	if !strings.Contains(report, "gated") {
		t.Errorf("report while open does not mention gating:\n%s", report)
	}

	// Phase 3: the injection has stopped; advancing the fake clock past
	// the cooldown lets the next statespace request through as the
	// half-open probe, and its success closes the breaker.
	clk.Advance(2 * time.Second)
	if _, err := s.Analyze(context.Background(), &Request{Graph: gen.Figure3(7), Method: "statespace"}); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if st := s.BreakerState("statespace"); st != "closed" {
		t.Fatalf("statespace breaker after recovery = %s, want closed", st)
	}

	// A little healthy traffic on the healed server, overlapping the
	// drain below to prove drain waits for in-flight work.
	const tail = 40
	var tailOK atomic.Int64
	for i := 0; i < tail; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Analyze(context.Background(), injected(gen.Figure3(int64(1+i%11)), "hedged")); err == nil {
				tailOK.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if tailOK.Load() == 0 {
		t.Fatal("no healthy tail traffic")
	}

	// Phase 4: graceful drain. The server is idle-ish, so the drain is
	// clean; afterwards admission refuses and health says draining.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Analyze(context.Background(), figure2Request(t, "hedged")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request: %v, want ErrDraining", err)
	}

	h := s.Health()
	if !h.Draining || h.InFlight != 0 || h.Running != 0 {
		t.Errorf("post-drain health: %+v", h)
	}
	if h.PoolInUse != 0 {
		t.Errorf("pool still holds %d units after drain", h.PoolInUse)
	}
	if h.Served == 0 || h.Failed == 0 {
		t.Errorf("soak counters implausible: served=%d failed=%d", h.Served, h.Failed)
	}
	t.Logf("soak: served=%d failed=%d overloaded=%d cache hits=%d deduped=%d statespace trips=%d",
		h.Served, h.Failed, h.Overloaded, h.CacheHits, h.Deduped, trips(h, "statespace"))
}

func trips(h Health, engine string) int64 {
	for _, e := range h.Engines {
		if e.Engine == engine {
			return e.Trips
		}
	}
	return -1
}
