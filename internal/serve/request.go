package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/passes"
	"repro/internal/sdf"
	"repro/internal/sdfio"
)

// ErrBadRequest marks a request the decoder refused: malformed JSON, an
// unknown method, an invalid graph. It maps to HTTP 400.
var ErrBadRequest = errors.New("serve: bad request")

// ErrTooLarge marks a request whose body blew through maxRequestBytes
// at the HTTP layer. It maps to HTTP 413 with its own stable error
// kind, so clients can tell "shrink the graph" from "fix the JSON".
var ErrTooLarge = errors.New("serve: request body too large")

// maxRequestBytes caps the wire size of one request; the HTTP layer
// additionally enforces it with http.MaxBytesReader before the decoder
// ever sees the payload.
const maxRequestBytes = 1 << 20

// RequestPayload is the JSON wire form of an analysis request. Exactly
// one of Graph (the sdfio JSON graph object) and GraphText (the native
// text format) must be set.
type RequestPayload struct {
	// Graph is the graph in the repository's JSON wire form
	// ({"name": ..., "actors": [...], "channels": [...]}).
	Graph json.RawMessage `json:"graph,omitempty"`
	// GraphText is the graph in the native text format, an alternative
	// for clients that keep graphs as .sdf files.
	GraphText string `json:"graph_text,omitempty"`
	// Method selects the engine: "hedged" (the default: a verified
	// engine race), or a single engine "matrix", "statespace", "hsdf".
	Method string `json:"method,omitempty"`
	// TimeoutMS is the per-request analysis deadline in milliseconds;
	// 0 uses the server default, and the server clamps it to its
	// configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget is a uniform work cap (states/firings/actors/tokens) for
	// this request; 0 uses the defaults, negative lifts the caps (the
	// server still clamps with its own pool and deadline).
	Budget int64 `json:"budget,omitempty"`
	// Inject arms deterministic faults for this request. Refused unless
	// the server was started with injection enabled; exists so soak
	// tests can drive the failure paths through the real wire format.
	Inject []InjectPayload `json:"inject,omitempty"`
	// ExactOnly opts this request out of brownout serving: when the
	// server's degradation level is anything but exact, the request is
	// refused (HTTP 429 + Retry-After) instead of answered with a
	// bounded or stale result.
	ExactOnly bool `json:"exact_only,omitempty"`
}

// InjectPayload is the wire form of one guard.Fault.
type InjectPayload struct {
	Engine string `json:"engine,omitempty"`
	Point  string `json:"point"` // checkpoint, precheck, alloc
	Mode   string `json:"mode"`  // error, panic, refuse
	N      int64  `json:"n,omitempty"`
	Times  int64  `json:"times,omitempty"`
}

// ResultPayload is the JSON wire form of a successful analysis.
type ResultPayload struct {
	Graph     string `json:"graph"`
	Engine    string `json:"engine"`
	Unbounded bool   `json:"unbounded,omitempty"`
	// Period is Λ as an exact rational string ("5/2"); Num/Den carry
	// the same value for clients that want numbers.
	Period    string `json:"period,omitempty"`
	PeriodNum int64  `json:"period_num,omitempty"`
	PeriodDen int64  `json:"period_den,omitempty"`
	// Verified is true when the answer carries an independently checked
	// certificate; every engine the server runs is certified, so it is
	// false only for unbounded answers with no witness to check.
	Verified bool `json:"verified"`
	// Certificate is the human-readable witness summary.
	Certificate string `json:"certificate,omitempty"`
	// Report is the per-engine race report, one line per engine.
	Report []string `json:"report,omitempty"`
	// Reduction is the fixpoint trace of the reduction pass manager when
	// it shrank the graph before the engines ran, one line per rewrite.
	// The answer above was computed on the reduced graph and lifted back
	// through this chain; Certificate then summarises the lifted chain.
	Reduction []string `json:"reduction,omitempty"`
	// Cached and Deduped report how the answer was produced: from the
	// result cache, or by joining an identical in-flight request.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	// Degradation names the brownout level the answer was served at
	// ("bounded", "stale-cache"); empty for a full-fidelity answer. A
	// bounded answer's Period is the certified conservative upper bound
	// of Λ, not Λ itself.
	Degradation string `json:"degradation,omitempty"`
	// Stale marks an answer served from an expired cache entry (a
	// background refresh was kicked off).
	Stale bool `json:"stale,omitempty"`
	// PeriodLower is the advisory floor of a bounded answer's period
	// enclosure (Lower ≤ Λ ≤ Period); absent when no cheap floor
	// witness exists or the enclosure is degenerate.
	PeriodLower    string `json:"period_lower,omitempty"`
	PeriodLowerNum int64  `json:"period_lower_num,omitempty"`
	PeriodLowerDen int64  `json:"period_lower_den,omitempty"`
}

// ErrorPayload is the JSON wire form of a failed analysis. Kind is a
// stable, machine-readable classification (see KindOf) that clients map
// back to exit codes or retry policies.
type ErrorPayload struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Request is a decoded analysis request.
type Request struct {
	// Graph is the validated graph to analyse.
	Graph *sdf.Graph
	// Method is the normalized engine selection: "hedged", "matrix",
	// "statespace" or "hsdf".
	Method string
	// Timeout is the requested deadline (0 = server default).
	Timeout time.Duration
	// Budget is the uniform work cap (0 = defaults, negative =
	// unlimited dimensions).
	Budget int64
	// Faults are the armed per-request faults (empty for real traffic).
	Faults []guard.Fault
	// ExactOnly refuses brownout answers (see RequestPayload.ExactOnly).
	// It is excluded from Key(): it gates serving, not the answer.
	ExactOnly bool
}

// DecodeRequest parses and validates the wire form of one request. All
// failures wrap ErrBadRequest; the graph is structurally validated but
// not prechecked (admission prechecks are the server's job, after the
// queue has bounded the work).
func DecodeRequest(data []byte) (*Request, error) {
	bad := func(format string, args ...any) (*Request, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
	}
	if len(data) > maxRequestBytes {
		return bad("payload of %d bytes exceeds the %d-byte limit", len(data), maxRequestBytes)
	}
	var p RequestPayload
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return bad("invalid JSON: %v", err)
	}
	if dec.More() {
		return bad("trailing data after the request object")
	}
	return p.decode()
}

// decode validates one already-unmarshalled payload into a Request. It
// is shared between the single-request decoder and the batch decoder,
// where each item fails independently (per-item fault isolation starts
// at the wire).
func (p RequestPayload) decode() (*Request, error) {
	bad := func(format string, args ...any) (*Request, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
	}

	var g *sdf.Graph
	var err error
	switch {
	case len(p.Graph) > 0 && p.GraphText != "":
		return bad("graph and graph_text are mutually exclusive")
	case len(p.Graph) > 0:
		g, err = sdfio.ReadJSON(bytes.NewReader(p.Graph))
	case p.GraphText != "":
		g, err = sdfio.ParseText(p.GraphText)
	default:
		return bad("no graph: set graph (JSON) or graph_text (native text)")
	}
	if err != nil {
		return bad("graph: %v", err)
	}
	if err := g.Validate(); err != nil {
		return bad("graph: %v", err)
	}

	method := strings.ToLower(strings.TrimSpace(p.Method))
	switch method {
	case "":
		method = "hedged"
	case "hedged", "matrix", "statespace", "hsdf":
	default:
		return bad("unknown method %q (hedged, matrix, statespace, hsdf)", p.Method)
	}
	if p.TimeoutMS < 0 {
		return bad("negative timeout_ms %d", p.TimeoutMS)
	}

	faults := make([]guard.Fault, 0, len(p.Inject))
	for i, ip := range p.Inject {
		f, err := ip.fault()
		if err != nil {
			return bad("inject[%d]: %v", i, err)
		}
		faults = append(faults, f)
	}

	return &Request{
		Graph:     g,
		Method:    method,
		Timeout:   time.Duration(p.TimeoutMS) * time.Millisecond,
		Budget:    p.Budget,
		Faults:    faults,
		ExactOnly: p.ExactOnly,
	}, nil
}

// fault converts the wire form to a guard.Fault.
func (p InjectPayload) fault() (guard.Fault, error) {
	f := guard.Fault{Engine: p.Engine, N: p.N, Times: p.Times}
	switch strings.ToLower(p.Point) {
	case "checkpoint", "":
		f.Point = guard.PointCheckpoint
	case "precheck":
		f.Point = guard.PointPrecheck
	case "alloc":
		f.Point = guard.PointAlloc
	default:
		return f, fmt.Errorf("unknown point %q (checkpoint, precheck, alloc)", p.Point)
	}
	switch strings.ToLower(p.Mode) {
	case "error", "":
		f.Mode = guard.ModeError
	case "panic":
		f.Mode = guard.ModePanic
	case "refuse":
		f.Mode = guard.ModeRefuse
	default:
		return f, fmt.Errorf("unknown mode %q (error, panic, refuse)", p.Mode)
	}
	return f, nil
}

// Key returns the canonical cache/dedup key of the request: a hash over
// the graph's full structure (actor names, execution times, channel
// rates, initial tokens) plus the method and budget. Deadlines are
// deliberately excluded — a result computed under one deadline answers
// the same question under any other.
func (r *Request) Key() string {
	h := sha256.New()
	g := r.Graph
	fmt.Fprintf(h, "m=%s b=%d g=%s %d %d\n", r.Method, r.Budget, g.Name(), g.NumActors(), g.NumChannels())
	for _, a := range g.Actors() {
		fmt.Fprintf(h, "a %s %d\n", a.Name, a.Exec)
	}
	for _, c := range g.Channels() {
		fmt.Fprintf(h, "c %d %d %d %d %d\n", c.Src, c.Dst, c.Prod, c.Cons, c.Initial)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// costClamp bounds the per-request contribution of the iteration
// length to the admission cost; it aliases the fact layer's clamp so
// the wire-facing name survives the delegation below.
const costClamp = passes.CostClamp

// EstimateCost is the admission-control work estimate of analysing g,
// in abstract pool units: the structural size plus the iteration length
// Σq (clamped at costClamp), which is the dominant term of the
// state-space and HSDF engines. The arithmetic lives in the fact layer
// (passes.Facts.Cost) so the server prices the same graph the reducer
// and lint passes see; the server calls it on the *reduced* graph, so
// admission charges what will actually run.
func EstimateCost(g *sdf.Graph) int64 {
	return passes.NewFacts(g).Cost()
}
