// Package serve turns the analysis facade into a long-running service
// that degrades instead of dying. The paper's point (§4–§6) is that
// reduced analyses are cheap enough to answer on demand; this layer is
// what makes "on demand" survivable when hundreds of concurrent,
// possibly hostile, possibly explosive graphs arrive at once:
//
//	admission control — a bounded queue plus a global work-unit pool
//	    (guard.Pool) fed by per-request static cost estimates; requests
//	    that do not fit are refused instantly with ErrOverloaded.
//	per-engine circuit breakers — guard.Breaker around each throughput
//	    engine, tripped by failure/panic/deadline streaks; a sick engine
//	    is shed from the hedged race (HedgeOptions.Gate) while the
//	    remaining engines keep answering, then probed half-open until it
//	    recovers.
//	singleflight result cache — identical in-flight requests join one
//	    computation; certified results are kept in a bounded LRU.
//	graceful drain — Drain stops admission, waits for in-flight work
//	    under the caller's deadline, then cancels stragglers through the
//	    server's base context; the whole thing is goroutine-leak-free.
//
// The package contains no HTTP specifics beyond http.go's thin handler;
// cmd/sdfserved is the daemon around it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/rat"
	"repro/internal/sdf"
	"repro/internal/verify"
)

// Sentinel errors of the serving layer.
var (
	// ErrOverloaded marks a request refused by admission control: the
	// queue is full or the work pool cannot fit the request's estimated
	// cost. Clients should back off and retry (HTTP 429 + Retry-After).
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining marks a request refused because the server is
	// shutting down (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
	// ErrInjectionDisabled marks a request carrying fault-injection
	// directives on a server that does not allow them.
	ErrInjectionDisabled = errors.New("serve: fault injection disabled on this server")
)

// Options configures a Server. The zero value gives a small but fully
// functional server.
type Options struct {
	// Workers bounds concurrently running analyses; default 4.
	Workers int
	// QueueDepth bounds requests waiting for a worker on top of the
	// running ones; default 64. Waiting requests hold their admission
	// slot, so Workers+QueueDepth is the hard cap on requests inside
	// the server.
	QueueDepth int
	// PoolCapacity is the global admission pool in abstract work units
	// (see EstimateCost); default 1<<20.
	PoolCapacity int64
	// CacheEntries bounds the result LRU; default 256.
	CacheEntries int
	// DefaultTimeout is the per-request analysis deadline when the
	// request names none; default 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines; default 30s.
	MaxTimeout time.Duration
	// Breaker configures every per-engine circuit breaker.
	Breaker guard.BreakerOptions
	// Engines lists the engines of the hedged race; default matrix,
	// statespace, hsdf.
	Engines []analysis.Method
	// AllowInjection permits requests to arm per-request faults. Only
	// ever enable it for soak tests; it is how the failure paths are
	// exercised deterministically through the real wire format.
	AllowInjection bool
	// CacheTTL is how long a cached result stays fresh. Past it, the
	// exact path recomputes — but the entry remains servable, marked
	// stale, at the degradation ladder's stale-cache level. 0 (the
	// default) means entries never go stale.
	CacheTTL time.Duration
	// DegradeHold is how long the pressure signal must stay below the
	// current degradation level before the controller steps down one
	// rung; default 2s. Escalation is always immediate.
	DegradeHold time.Duration
	// DegradeTargetP99 is the recent-p99 latency past which the
	// controller browns out even with a shallow queue; default 1s.
	DegradeTargetP99 time.Duration
	// Obs, when non-nil, receives every metric and event the server
	// produces: request outcomes and latencies, per-engine wall times,
	// cache traffic, breaker transitions. The registry is also injected
	// into every analysis context, so the engines' attempt counters and
	// per-phase spans land in the same place. A nil registry costs one
	// nil check per instrumentation point.
	Obs *obs.Registry
}

func (o Options) normalized() Options {
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 64
	}
	if o.PoolCapacity < 1 {
		o.PoolCapacity = 1 << 20
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 5 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if len(o.Engines) == 0 {
		o.Engines = []analysis.Method{analysis.Matrix, analysis.StateSpace, analysis.HSDF}
	}
	return o
}

// Server is the concurrent analysis front-end. Construct with New;
// safe for concurrent use.
type Server struct {
	opts     Options
	reg      *obs.Registry
	breakers map[analysis.Method]*guard.Breaker
	pool     *guard.Pool
	cache    *resultCache
	flights  *flightGroup
	ctrl     *controller

	// refreshWG tracks background stale-cache refreshers so Drain and
	// Close never leak a goroutine past the server's lifetime.
	refreshWG sync.WaitGroup

	// slots bounds requests inside the server (running + waiting);
	// work bounds running analyses.
	slots chan struct{}
	work  chan struct{}

	// baseCtx parents every analysis context; baseCancel is the drain
	// deadline's hammer for stragglers.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	active   int
	drained  chan struct{}

	running    atomic.Int64
	admitted   atomic.Int64
	served     atomic.Int64
	failed     atomic.Int64
	overloaded atomic.Int64
}

// New returns a ready Server.
func New(opts Options) *Server {
	opts = opts.normalized()
	s := &Server{
		opts:     opts,
		reg:      opts.Obs,
		breakers: make(map[analysis.Method]*guard.Breaker, len(opts.Engines)),
		pool:     guard.NewPool(opts.PoolCapacity),
		cache:    newResultCache(opts.CacheEntries, opts.CacheTTL, opts.Obs),
		flights:  newFlightGroup(opts.Obs),
		ctrl: newController(opts.Workers, opts.Workers+opts.QueueDepth,
			opts.DegradeTargetP99, opts.DegradeHold, opts.Obs),
		slots:   make(chan struct{}, opts.Workers+opts.QueueDepth),
		work:    make(chan struct{}, opts.Workers),
		drained: make(chan struct{}),
	}
	for _, m := range opts.Engines {
		bo := opts.Breaker
		eng := m.String()
		user := bo.OnTransition
		// Every breaker transition lands in the registry; opens — the
		// trip the operator pages on — also count separately and leave
		// an event in the ring.
		bo.OnTransition = func(from, to guard.BreakerState) {
			s.reg.Counter(obs.MetricBreakerTransitions, "engine", eng, "to", to.String()).Inc()
			if to == guard.BreakerOpen {
				s.reg.Counter(obs.MetricBreakerTrips, "engine", eng).Inc()
				s.reg.Emit("breaker.open", "engine", eng, "from", from.String())
			}
			if user != nil {
				user(from, to)
			}
		}
		s.breakers[m] = guard.NewBreaker(bo)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Registry returns the observability registry the server was built with
// (nil when observability is off). The HTTP layer serves it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// outcomeOf classifies an Analyze error for the request counter.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "served"
	case errors.Is(err, ErrDraining):
		return "refused-draining"
	case errors.Is(err, ErrOverloaded):
		return "refused-overloaded"
	case errors.Is(err, ErrInjectionDisabled):
		return "refused-injection"
	case errors.Is(err, ErrDegraded):
		return "refused-degraded"
	default:
		return "failed"
	}
}

// Analyze admits, deduplicates and executes one request. The returned
// error classifies with errors.Is against ErrOverloaded, ErrDraining,
// guard.ErrBudgetExceeded, guard.ErrCanceled, guard.ErrEngineFailed,
// guard.ErrBreakerOpen and the lint precondition errors; KindOf maps
// the classification to a stable wire string.
//
// ctx governs only how long this caller waits: the analysis itself
// runs under the server's base context and the request deadline, so a
// deduplicated computation is never killed by one impatient client.
func (s *Server) Analyze(ctx context.Context, req *Request) (*ResultPayload, error) {
	start := s.reg.Now()
	res, err := s.analyze(ctx, req)
	elapsed := s.reg.Now().Sub(start)
	s.reg.Histogram(obs.MetricRequestSeconds, "method", req.Method).Observe(elapsed)
	outcome := outcomeOf(err)
	// The pressure signal samples only requests that did real work:
	// refusals return in microseconds and would talk the p99 and the
	// drain estimate down exactly when they should be going up.
	if outcome == "served" || outcome == "failed" {
		s.ctrl.observe(elapsed)
	}
	s.reg.Counter(obs.MetricRequests, "outcome", outcome).Inc()
	return res, err
}

func (s *Server) analyze(ctx context.Context, req *Request) (*ResultPayload, error) {
	if len(req.Faults) > 0 && !s.opts.AllowInjection {
		return nil, ErrInjectionDisabled
	}
	if err := s.admit(); err != nil {
		return nil, err
	}
	defer s.finish()

	// Bounded queue: a server already holding Workers+QueueDepth
	// requests refuses instantly rather than buffering unboundedly.
	select {
	case s.slots <- struct{}{}:
	default:
		// A full house is the strongest pressure signal there is: feed
		// it to the controller even though this request is refused, so
		// the ladder is already at shed for the next arrival.
		s.ctrl.update(cap(s.slots))
		s.overloaded.Add(1)
		return nil, fmt.Errorf("%w: all %d request slots taken", ErrOverloaded, cap(s.slots))
	}
	defer func() { <-s.slots }()
	s.admitted.Add(1)

	// The degradation level of this request, decided at entry from the
	// queue depth just observed (this request included) and the recent
	// latency window.
	level := s.ctrl.update(len(s.slots))

	// Cheap structural prechecks before any budget is reserved: an
	// inconsistent or deadlocked graph costs the server almost nothing.
	// The fact table is shared with the reducer below.
	facts := passes.NewFacts(req.Graph)
	sp := s.reg.StartSpan("analysis.precheck")
	err := lint.PrecheckWith(facts)
	sp.Finish()
	if err != nil {
		s.failed.Add(1)
		return nil, err
	}

	red := s.reduceFor(req)
	res, err := s.analyzeAdmitted(ctx, req, red, level)
	if err != nil {
		if !errors.Is(err, ErrDegraded) {
			s.failed.Add(1)
		}
		return nil, err
	}
	s.served.Add(1)
	return res, nil
}

// reduceFor runs the reduction fixpoint for a request. The engines, the
// pool and the LRU all see the reduced graph, and the answer is lifted
// back per request. Fault-injected requests skip it — they are
// deliberately sick and their faults must fire in the engine they name,
// on the graph the test wrote. A reduction that fails or achieves
// nothing returns nil and the request proceeds on the original graph.
func (s *Server) reduceFor(req *Request) *passes.Reduction {
	if len(req.Faults) > 0 {
		return nil
	}
	rctx := obs.WithRegistry(s.baseCtx, s.reg)
	if r, err := passes.Reduce(rctx, req.Graph, passes.Options{}); err == nil && len(r.Steps) > 0 {
		return r
	}
	return nil
}

// analyzeAdmitted executes one admitted, prechecked request at the given
// degradation level: exact-only gating, the brownout ladder, dispatch
// through the cache/singleflight discipline, and the lifted render. The
// caller has already passed the drain gate and the bounded queue, run
// the structural prechecks, and computed the reduction (nil when none
// applied). Both the single-request path and every batch item funnel
// through here, so admission economics and certificate discipline are
// identical for the two workloads.
func (s *Server) analyzeAdmitted(ctx context.Context, req *Request, red *passes.Reduction, level Level) (*ResultPayload, error) {
	if req.ExactOnly && level > LevelExact {
		s.reg.Counter(obs.MetricDegraded, "level", "exact-only").Inc()
		return nil, fmt.Errorf("%w: serving at level %s and the request is exact-only", ErrDegraded, level)
	}
	dispReq := req
	if red != nil && len(red.Steps) > 0 {
		dr := *req
		dr.Graph = red.Final
		dispReq = &dr
	}

	// Browned-out serving: under pressure the server answers with the
	// best certified thing it can afford instead of refusing. Injected
	// requests never degrade — their faults must fire in the engine they
	// name.
	if len(req.Faults) == 0 && level > LevelExact {
		return s.analyzeDegraded(ctx, req, dispReq, red, level)
	}

	ans, err := s.dispatch(ctx, dispReq)
	if err != nil {
		return nil, err
	}
	return s.render(req.Graph, red, ans)
}

// analyzeDegraded serves one request at a browned-out level. The ladder
// inside: a fresh cache hit is free and full-fidelity at any level; at
// stale-cache and shed an expired entry is served marked stale with a
// background singleflight refresh; what remains is computed as a
// certified bounded answer at the bounded and stale-cache levels, and
// refused outright at shed.
func (s *Server) analyzeDegraded(ctx context.Context, req, dispReq *Request, red *passes.Reduction, level Level) (*ResultPayload, error) {
	key := dispReq.Key()
	if ans, stale, ok := s.cache.getStale(key); ok {
		serveIt := !stale || level >= LevelStale
		if serveIt {
			res, err := s.render(req.Graph, red, ans)
			if err == nil {
				if stale {
					res.Degradation = LevelStale.String()
					res.Stale = true
					s.reg.Counter(obs.MetricDegraded, "level", LevelStale.String()).Inc()
					s.spawnRefresh(dispReq, key)
				}
				return res, nil
			}
			// A render failure here means the cached entry no longer
			// lifts; fall through to a fresh degraded answer.
		}
	}
	if level >= LevelShed {
		s.reg.Counter(obs.MetricDegraded, "level", LevelShed.String()).Inc()
		return nil, fmt.Errorf("%w: shedding fresh work and no cached answer exists", ErrDegraded)
	}
	return s.serveBounded(ctx, req)
}

// serveBounded answers with a certified conservative enclosure from
// analysis.ComputeThroughputBounded, cached and deduplicated under its
// own key space (a bounded answer must never impersonate an exact one).
func (s *Server) serveBounded(ctx context.Context, req *Request) (*ResultPayload, error) {
	key := "bounded|" + req.Key()
	ans, err := s.dispatchWith(ctx, key, func() (*answer, error) {
		return s.executeBounded(req)
	})
	if err != nil {
		return nil, err
	}
	res, err := s.renderBounded(req.Graph, ans)
	if err != nil {
		return nil, err
	}
	s.reg.Counter(obs.MetricDegraded, "level", LevelBounded.String()).Inc()
	return res, nil
}

// spawnRefresh recomputes a stale cache entry in the background,
// singleflighted against identical live requests and refreshers. The
// goroutine is tracked by refreshWG and runs under the server's base
// context, so drain and close wait for it rather than leak it.
func (s *Server) spawnRefresh(req *Request, key string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.refreshWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.refreshWG.Done()
		f, leader := s.flights.join(key)
		if !leader {
			// An identical computation is already in flight; its result
			// will land in the cache.
			return
		}
		res, err := s.execute(req)
		if err == nil {
			s.cache.put(key, res)
		}
		s.flights.finish(key, f, res, err)
	}()
}

// render turns an engine-layer answer into the wire payload, lifting it
// through the request's reduction chain when one applied. The lifted
// certificate is re-checked against the original graph before the
// payload claims Verified — the chain, not the server, is the proof.
func (s *Server) render(orig *sdf.Graph, red *passes.Reduction, ans *answer) (*ResultPayload, error) {
	if red == nil || len(red.Steps) == 0 {
		res := buildResult(orig, ans.engine, ans.tp, ans.cert)
		res.Report = ans.report
		res.Cached, res.Deduped = ans.cached, ans.deduped
		return res, nil
	}
	res := &ResultPayload{
		Graph:     orig.Name(),
		Engine:    ans.engine,
		Report:    ans.report,
		Reduction: red.Trace(),
		Cached:    ans.cached,
		Deduped:   ans.deduped,
	}
	setPeriod := func(unbounded bool, p rat.Rat) {
		res.Unbounded = unbounded
		if !unbounded {
			res.Period = p.String()
			res.PeriodNum = p.Num()
			res.PeriodDen = p.Den()
		}
	}
	if ans.cert == nil {
		v, err := red.Lift(passes.Value{Period: ans.tp.Period, Unbounded: ans.tp.Unbounded})
		if err != nil {
			return nil, fmt.Errorf("serve: lift: %w", err)
		}
		setPeriod(v.Unbounded, v.Period)
		return res, nil
	}
	lifted, err := red.LiftCert(ans.cert)
	if err != nil {
		return nil, fmt.Errorf("serve: lift: %w", err)
	}
	// The check is pure bounded CPU on a graph that already passed
	// admission; it deliberately runs outside the request deadline so a
	// last-millisecond expiry cannot turn a correct answer into an error.
	if err := lifted.Check(context.Background(), orig); err != nil {
		return nil, fmt.Errorf("serve: lifted certificate rejected: %w", err)
	}
	setPeriod(lifted.Unbounded, lifted.Period)
	res.Verified = true
	res.Certificate = lifted.String()
	return res, nil
}

// answer is the engine-layer result before rendering: the throughput
// of the analysed (possibly reduced) graph plus its certificate object.
// Keeping the certificate as an object — not a rendered string — is
// what lets render lift it through each request's own reduction chain.
type answer struct {
	engine  string
	tp      analysis.Throughput
	cert    *verify.ThroughputCert
	report  []string
	cached  bool
	deduped bool

	// bound and redCert carry a brownout answer: the two-sided period
	// enclosure and the reduction-chain certificate that proves its
	// conservativeness against the original graph. Exactly one of
	// (tp, cert) and (bound, redCert) is populated.
	bound   *analysis.Bound
	redCert *verify.ReductionCert

	// sadf carries an FSM-SADF answer: the automaton analysis result
	// and its scenario-level certificate. When set, every field above
	// except the bookkeeping trio (engine, cached, deduped) is empty.
	sadf *sadfAnswer
}

// dispatch routes a request through the cache and singleflight group;
// fault-injected requests bypass both (they are deliberately sick and
// must neither poison the cache nor adopt a healthy in-flight result).
func (s *Server) dispatch(ctx context.Context, req *Request) (*answer, error) {
	if len(req.Faults) > 0 {
		return s.execute(req)
	}
	return s.dispatchWith(ctx, req.Key(), func() (*answer, error) {
		return s.execute(req)
	})
}

// dispatchWith is the cache/singleflight discipline for any keyed
// computation: serve a fresh cached answer, join an identical in-flight
// one, or lead the computation and publish its result.
func (s *Server) dispatchWith(ctx context.Context, key string, exec func() (*answer, error)) (*answer, error) {
	if res, ok := s.cache.get(key); ok {
		return res, nil
	}
	f, leader := s.flights.join(key)
	if !leader {
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			res := *f.res
			res.deduped = true
			return &res, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", guard.ErrCanceled, context.Cause(ctx))
		}
	}
	res, err := exec()
	if err == nil {
		s.cache.put(key, res)
	}
	s.flights.finish(key, f, res, err)
	return res, err
}

// execute reserves pool cost and a worker slot, builds the analysis
// context and runs the engines.
func (s *Server) execute(req *Request) (*answer, error) {
	cost := EstimateCost(req.Graph)
	if !s.pool.TryAcquire(cost) {
		s.overloaded.Add(1)
		return nil, fmt.Errorf("%w: request cost %d exceeds pool headroom %d",
			ErrOverloaded, cost, s.pool.Headroom())
	}
	defer s.pool.Release(cost)

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	actx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	budget := guard.BudgetFrom(actx)
	if req.Budget != 0 {
		budget = guard.Uniform(req.Budget)
	}
	if len(req.Faults) > 0 {
		// Injected requests poll every work unit so counter-based
		// faults fire deterministically even on tiny graphs whose hot
		// loops would otherwise never reach an amortised checkpoint.
		budget.CheckEvery = 1
		actx = guard.WithInjector(actx, guard.NewInjector(req.Faults...))
	}
	actx = guard.WithBudget(actx, budget)
	// The engines, meters and injectors below all read the registry
	// from the context; a nil registry drops out here as a no-op.
	actx = obs.WithRegistry(actx, s.reg)

	// The queue's deadline discipline: waiting for a worker burns the
	// request's own deadline, never more.
	select {
	case s.work <- struct{}{}:
	case <-actx.Done():
		return nil, fmt.Errorf("%w: queued past the deadline: %w", guard.ErrCanceled, context.Cause(actx))
	}
	defer func() { <-s.work }()
	s.running.Add(1)
	defer s.running.Add(-1)

	if req.Method == "hedged" {
		return s.runHedged(actx, req.Graph)
	}
	return s.runSingle(actx, req.Graph, req.Method)
}

// executeBounded runs the brownout engine: reduction fixpoint plus the
// matrix engine under analysis.DefaultBoundedCeiling. It still takes a
// worker slot (bounded work is cheap, not free) but charges the pool at
// most the ceiling — the whole point is a cost the server can always
// afford.
func (s *Server) executeBounded(req *Request) (*answer, error) {
	cost := EstimateCost(req.Graph)
	if cost > analysis.DefaultBoundedCeiling {
		cost = analysis.DefaultBoundedCeiling
	}
	if !s.pool.TryAcquire(cost) {
		s.overloaded.Add(1)
		return nil, fmt.Errorf("%w: request cost %d exceeds pool headroom %d",
			ErrOverloaded, cost, s.pool.Headroom())
	}
	defer s.pool.Release(cost)

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	actx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	actx = obs.WithRegistry(actx, s.reg)

	select {
	case s.work <- struct{}{}:
	case <-actx.Done():
		return nil, fmt.Errorf("%w: queued past the deadline: %w", guard.ErrCanceled, context.Cause(actx))
	}
	defer func() { <-s.work }()
	s.running.Add(1)
	defer s.running.Add(-1)

	// The request's own budget is ignored here: the bounded mode's hard
	// ceiling is the contract, and it is below anything a client would
	// reasonably ask for.
	b, cert, err := analysis.ComputeThroughputBounded(actx, req.Graph, analysis.BoundedOptions{})
	if err != nil {
		return nil, err
	}
	return &answer{engine: "bounded", bound: &b, redCert: cert}, nil
}

// renderBounded turns a brownout answer into the wire payload. The
// conservativeness certificate is re-checked against the original graph
// in exact arithmetic on every serve — cached entries included — before
// the payload claims Verified; the check is capped by the same ceiling
// that produced the answer, so it cannot become the new overload.
func (s *Server) renderBounded(orig *sdf.Graph, ans *answer) (*ResultPayload, error) {
	b := ans.bound
	res := &ResultPayload{
		Graph:       orig.Name(),
		Engine:      ans.engine,
		Unbounded:   b.Unbounded,
		Degradation: LevelBounded.String(),
		Cached:      ans.cached,
		Deduped:     ans.deduped,
	}
	if !b.Unbounded {
		res.Period = b.Upper.String()
		res.PeriodNum = b.Upper.Num()
		res.PeriodDen = b.Upper.Den()
		if !b.Exact && !b.Lower.IsZero() {
			res.PeriodLower = b.Lower.String()
			res.PeriodLowerNum = b.Lower.Num()
			res.PeriodLowerDen = b.Lower.Den()
		}
	}
	if err := ans.redCert.Check(context.Background(), orig); err != nil {
		return nil, fmt.Errorf("serve: bounded certificate rejected: %w", err)
	}
	res.Verified = true
	res.Certificate = ans.redCert.String()
	return res, nil
}

// runHedged races the breaker-gated engines and feeds every attempt's
// outcome back into its breaker.
func (s *Server) runHedged(ctx context.Context, g *sdf.Graph) (*answer, error) {
	tp, rep, err := analysis.ComputeThroughputHedgedOpts(ctx, g, analysis.HedgeOptions{
		Engines: s.opts.Engines,
		Gate:    s.gate,
	})
	if rep != nil {
		s.recordOutcomes(rep.Attempts)
	}
	if err != nil {
		return nil, err
	}
	return &answer{
		engine: rep.Winner.String(),
		tp:     tp,
		cert:   rep.Certificates[rep.Winner],
		report: reportLines(rep),
	}, nil
}

// runSingle runs one named engine behind its breaker.
func (s *Server) runSingle(ctx context.Context, g *sdf.Graph, method string) (*answer, error) {
	var m analysis.Method
	switch method {
	case "matrix":
		m = analysis.Matrix
	case "statespace":
		m = analysis.StateSpace
	case "hsdf":
		m = analysis.HSDF
	default:
		return nil, fmt.Errorf("%w: unknown method %q", ErrBadRequest, method)
	}
	if err := s.gate(m); err != nil {
		return nil, err
	}
	start := s.reg.Now()
	tp, cert, err := analysis.ComputeThroughputCertified(ctx, g, m)
	s.recordOutcomes([]analysis.EngineAttempt{{Method: m, Err: err, Wall: s.reg.Now().Sub(start)}})
	if err != nil {
		return nil, err
	}
	return &answer{engine: m.String(), tp: tp, cert: cert}, nil
}

// gate is the HedgeOptions.Gate of this server: it consults the
// engine's breaker, reserving the half-open probe slot on admission.
func (s *Server) gate(m analysis.Method) error {
	b := s.breakers[m]
	if b == nil {
		return nil
	}
	if err := b.Allow(); err != nil {
		return fmt.Errorf("%w: the %s engine is shed until its cooldown expires", err, m)
	}
	return nil
}

// recordOutcomes feeds engine attempts back into the breakers. Gated
// attempts (skipped with the gate's error) reserved nothing; lost-race
// cancellations and budget refusals are forgiven — they say nothing
// about engine health; engine failures, panics and deadline hits are
// the trip-worthy streaks.
func (s *Server) recordOutcomes(attempts []analysis.EngineAttempt) {
	for _, at := range attempts {
		if !at.Skipped && at.Wall > 0 {
			s.reg.Histogram(obs.MetricEngineSeconds, "engine", at.Method.String()).Observe(at.Wall)
		}
		b := s.breakers[at.Method]
		if b == nil {
			continue
		}
		switch {
		case at.Skipped && at.Err != nil:
			// Shed by the gate before it ran: no reservation to settle.
		case at.Skipped:
			b.Forgive()
		case at.Err == nil:
			b.Success()
		case tripworthy(at.Err):
			b.Failure()
		default:
			b.Forgive()
		}
	}
}

// tripworthy reports whether an engine error indicates engine sickness
// (internal failure, isolated panic, deadline blow-through) as opposed
// to a property of the request (budget refusal, lost race).
func tripworthy(err error) bool {
	return errors.Is(err, guard.ErrEngineFailed) || errors.Is(err, context.DeadlineExceeded)
}

// buildResult renders a throughput (plus optional certificate) into the
// wire form.
func buildResult(g *sdf.Graph, engine string, tp analysis.Throughput, cert *verify.ThroughputCert) *ResultPayload {
	res := &ResultPayload{
		Graph:     g.Name(),
		Engine:    engine,
		Unbounded: tp.Unbounded,
	}
	if !tp.Unbounded {
		res.Period = tp.Period.String()
		res.PeriodNum = tp.Period.Num()
		res.PeriodDen = tp.Period.Den()
	}
	if cert != nil {
		res.Verified = true
		res.Certificate = cert.String()
	}
	return res
}

// reportLines renders the race one line per engine attempt. Failure
// reasons are cut at their first newline: an isolated panic's reason
// embeds a full stack trace, which belongs in server logs, not in every
// wire response.
func reportLines(rep *analysis.HedgeReport) []string {
	lines := make([]string, 0, len(rep.Attempts))
	for _, a := range rep.Attempts {
		switch {
		case rep.Answered && a.Method == rep.Winner:
			lines = append(lines, fmt.Sprintf("%-11s answered", a.Method))
		case a.Skipped:
			lines = append(lines, fmt.Sprintf("%-11s skipped: %s", a.Method, firstLine(a.Reason)))
		case a.Err == nil:
			lines = append(lines, fmt.Sprintf("%-11s %s", a.Method, firstLine(a.Reason)))
		default:
			lines = append(lines, fmt.Sprintf("%-11s failed: %s", a.Method, firstLine(a.Reason)))
		}
	}
	return lines
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// admit reserves one in-flight slot unless the server is draining.
func (s *Server) admit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	s.active++
	return nil
}

// finish releases the in-flight slot and completes a pending drain when
// it was the last one.
func (s *Server) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	if s.draining && s.active == 0 {
		s.closeDrainedLocked()
	}
}

func (s *Server) closeDrainedLocked() {
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: it stops admission
// immediately, waits for in-flight requests to finish, and — if ctx
// expires first — cancels the stragglers through the base context and
// waits for them to unwind (they observe the cancellation at their next
// guard checkpoint). The returned error is nil for a clean drain and
// ctx's cause when the hammer was needed. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.active == 0 {
			s.closeDrainedLocked()
		}
	}
	s.mu.Unlock()

	// A clean drain also waits for background stale-cache refreshers:
	// they run under the base context, so the deadline hammer below
	// reaches them the same way it reaches request stragglers.
	done := make(chan struct{})
	go func() {
		<-s.drained
		s.refreshWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return fmt.Errorf("serve: drain deadline hit, stragglers cancelled: %w", context.Cause(ctx))
	}
}

// Close abandons the server without waiting: admission stops and every
// in-flight analysis is cancelled. Intended for tests and fatal paths;
// prefer Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
	s.baseCancel()
	s.refreshWG.Wait()
}
