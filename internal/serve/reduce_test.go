package serve

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/guard"
	"repro/internal/passes"
	"repro/internal/sdf"
)

// reducibleGraph builds a graph the exact rules shrink: a fusible link,
// a gcd-divisible channel, a redundant parallel channel and a dead tail.
func reducibleGraph(t *testing.T) *sdf.Graph {
	t.Helper()
	g := sdf.NewGraph("reducible")
	a := g.MustAddActor("A", 2)
	b := g.MustAddActor("B", 3)
	c := g.MustAddActor("C", 1)
	d := g.MustAddActor("D", 7)
	g.MustAddChannel(a, b, 2, 2, 0)
	g.MustAddChannel(b, c, 2, 4, 0)
	g.MustAddChannel(c, a, 2, 1, 2)
	g.MustAddChannel(c, a, 2, 1, 8)
	g.MustAddChannel(c, d, 1, 1, 0)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

// TestAnalyzeReducedPath sends a reducible graph through the full
// serving path and checks the answer was computed on the reduced graph
// (the payload carries the fixpoint trace), lifted, verified, and equal
// to the direct engine answer on the original.
func TestAnalyzeReducedPath(t *testing.T) {
	defer noLeaks(t)
	g := reducibleGraph(t)
	want, err := analysis.ComputeThroughputDirectCtx(
		guard.WithBudget(context.Background(), guard.Unlimited()), g, analysis.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{})
	defer s.Close()
	for _, method := range []string{"hedged", "matrix"} {
		res, err := s.Analyze(context.Background(), &Request{Graph: g, Method: method})
		if err != nil {
			t.Fatalf("%s: Analyze: %v", method, err)
		}
		if len(res.Reduction) == 0 {
			t.Fatalf("%s: payload carries no reduction trace: %+v", method, res)
		}
		if res.Unbounded || res.Period != want.Period.String() {
			t.Errorf("%s: period = %q unbounded=%v, want %q", method, res.Period, res.Unbounded, want.Period)
		}
		if !res.Verified || res.Certificate == "" {
			t.Errorf("%s: lifted answer not verified: %+v", method, res)
		}
		if res.Graph != "reducible" {
			t.Errorf("%s: payload names graph %q, want the original", method, res.Graph)
		}
	}
}

// TestAnalyzeReducedCacheSharing: two distinct originals that reduce to
// the same graph share one cache entry, and each gets its own lift.
func TestAnalyzeReducedCacheSharing(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	first, err := s.Analyze(context.Background(), &Request{Graph: reducibleGraph(t), Method: "matrix"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first answer claims cached")
	}
	second, err := s.Analyze(context.Background(), &Request{Graph: reducibleGraph(t), Method: "matrix"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical reducible repeat not served from the cache")
	}
	if second.Period != first.Period || len(second.Reduction) == 0 {
		t.Errorf("cached lift mismatch: %+v vs %+v", second, first)
	}
}

// TestEstimateCostMatchesFacts pins the delegation: the server's
// admission price is the fact layer's cost, computed on whatever graph
// the server dispatches.
func TestEstimateCostMatchesFacts(t *testing.T) {
	g := reducibleGraph(t)
	if got, want := EstimateCost(g), passes.NewFacts(g).Cost(); got != want {
		t.Fatalf("EstimateCost = %d, facts cost = %d", got, want)
	}
}
