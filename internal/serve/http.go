package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/sdf"
	"repro/internal/verify"
)

// KindOf classifies an Analyze error into the stable wire string of
// ErrorPayload.Kind. The order matters: the most specific, most
// actionable classification wins (a budget-caused engine error reports
// the budget, matching the sdftool exit-code policy).
func KindOf(err error) string {
	var pre *lint.PrecheckError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrTooLarge):
		return "too-large"
	case errors.Is(err, ErrBadRequest):
		return "bad-request"
	case errors.Is(err, ErrInjectionDisabled):
		return "injection-disabled"
	case errors.Is(err, ErrDegraded):
		return "degraded"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.As(err, &pre),
		errors.Is(err, sdf.ErrInconsistent),
		errors.Is(err, lint.ErrDeadlockCycle):
		return "precondition"
	case errors.Is(err, guard.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	// Breaker-open ranks below the substantive failures: a hedged error
	// joins the gated engines' refusals with the errors of the engines
	// that actually ran, and if one of those failed on budget, deadline
	// or a model precondition, retrying later (what breaker-open tells
	// the client) would not help. Only a request whose every path was
	// shed classifies as breaker-open.
	case errors.Is(err, guard.ErrBreakerOpen):
		return "breaker-open"
	case errors.Is(err, verify.ErrInvalid):
		return "certificate"
	case errors.Is(err, analysis.ErrEngineDisagreement):
		return "disagreement"
	case errors.Is(err, guard.ErrEngineFailed):
		return "engine"
	default:
		return "internal"
	}
}

// statusOf maps an error kind to its HTTP status code.
func statusOf(kind string) int {
	switch kind {
	case "bad-request":
		return http.StatusBadRequest
	case "too-large":
		return http.StatusRequestEntityTooLarge
	case "injection-disabled":
		return http.StatusForbidden
	case "overloaded", "degraded":
		return http.StatusTooManyRequests
	case "draining", "breaker-open":
		return http.StatusServiceUnavailable
	case "precondition", "budget":
		return http.StatusUnprocessableEntity
	case "deadline", "canceled":
		return http.StatusGatewayTimeout
	default: // certificate, disagreement, engine, internal
		return http.StatusInternalServerError
	}
}

// retryable reports whether the condition clears by itself, so the
// response should carry a Retry-After hint.
func retryable(kind string) bool {
	switch kind {
	case "overloaded", "draining", "breaker-open", "degraded":
		return true
	}
	return false
}

// drainRetryAfter is the Retry-After for a draining server: the client
// should wait for its replacement to take over, not hammer a process on
// its way out.
const drainRetryAfter = 5

// retryAfter derives the Retry-After hint (in whole seconds) from the
// server's actual state instead of a hardcoded constant: a draining
// server tells clients to stay away until a replacement takes over, a
// tripped breaker quotes its own cooldown, and an overloaded server
// scales the hint with how full its queue is, so a deep backlog spreads
// the retry storm instead of synchronising it one second later.
func (s *Server) retryAfter(kind string) int {
	switch kind {
	case "draining":
		return drainRetryAfter
	case "breaker-open":
		cd := s.opts.Breaker.Cooldown
		if cd <= 0 {
			cd = time.Second
		}
		secs := int((cd + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		return secs
	case "degraded":
		// The controller's drain estimate: how long the present backlog
		// needs to clear at the recent mean latency.
		return s.ctrl.drainEstimate(len(s.slots))
	default: // overloaded
		if s.ctrl.current() > LevelExact {
			// A degraded server knows its drain time; quote it instead
			// of the static backlog heuristic.
			return s.ctrl.drainEstimate(len(s.slots))
		}
		backlog := len(s.slots)
		hint := 1 + backlog/s.opts.Workers
		if hint > 8 {
			hint = 8
		}
		return hint
	}
}

// NewHandler wraps a Server in its HTTP surface:
//
//	POST /v1/throughput — analyse the request body (RequestPayload),
//	     answering ResultPayload or ErrorPayload.
//	GET  /healthz — full Health report, always 200 while the process
//	     lives.
//	GET  /readyz — 200 while admitting, 503 once draining, so load
//	     balancers stop routing before SIGTERM's drain completes. The
//	     body carries the draining flag, the per-engine breaker summary
//	     (what the fleet router's health probe parses) and the cache
//	     traffic detail for quick inspection.
//	GET  /metrics — Prometheus text exposition of the server's
//	     registry; 404 when the server was built without one.
//	GET  /debug/vars — the same registry in expvar-compatible JSON.
//	GET  /debug/events — the registry's recent structured events; 404
//	     unless the event ring was enabled.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/throughput", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.writeError(w, fmt.Errorf("%w: body exceeds the %d-byte limit", ErrTooLarge, mbe.Limit))
				return
			}
			s.writeError(w, errors.Join(ErrBadRequest, err))
			return
		}
		req, err := DecodeRequest(body)
		if err != nil {
			s.writeError(w, err)
			return
		}
		res, err := s.Analyze(r.Context(), req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if res.Degradation != "" {
			// The marker rides a header too, so the fleet router can
			// relay it without parsing the body.
			w.Header().Set("X-SDF-Degradation", res.Degradation)
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/sadf", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSADFRequestBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.writeSADFError(w, fmt.Errorf("%w: sadf body exceeds the %d-byte limit", ErrTooLarge, mbe.Limit))
				return
			}
			s.writeSADFError(w, errors.Join(ErrBadRequest, err))
			return
		}
		req, err := DecodeSADFRequest(body)
		if err != nil {
			s.writeSADFError(w, err)
			return
		}
		res, err := s.AnalyzeSADF(r.Context(), req)
		if err != nil {
			s.writeSADFError(w, err)
			return
		}
		if res.Degradation != "" {
			w.Header().Set("X-SDF-Degradation", res.Degradation)
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchRequestBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.writeError(w, fmt.Errorf("%w: batch body exceeds the %d-byte limit", ErrTooLarge, mbe.Limit))
				return
			}
			s.writeError(w, errors.Join(ErrBadRequest, err))
			return
		}
		breq, err := DecodeBatchRequest(body)
		if err != nil {
			s.writeError(w, err)
			return
		}
		res, err := s.AnalyzeBatch(r.Context(), breq)
		if err != nil {
			// Batch-level refusal (draining): item failures never land
			// here — a processed batch is always 200 with per-item
			// entries.
			s.writeError(w, err)
			return
		}
		w.Header().Set("X-SDF-Batch", res.Kind)
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		type cacheDetail struct {
			Entries   int   `json:"entries"`
			Capacity  int   `json:"capacity"`
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Evictions int64 `json:"evictions"`
			Deduped   int64 `json:"deduped"`
		}
		// The readiness body carries structured health detail on top of
		// the plain 200/503 contract: draining and the per-engine
		// breaker summary are what the fleet router's probe parses, so
		// it can gate membership without scraping /metrics. Existing
		// callers that only look at the status code are unaffected.
		type readiness struct {
			Ready       bool           `json:"ready"`
			Reason      string         `json:"reason,omitempty"`
			Draining    bool           `json:"draining"`
			Degradation string         `json:"degradation"`
			Breakers    []EngineHealth `json:"breakers"`
			Cache       cacheDetail    `json:"cache"`
		}
		detail := cacheDetail{
			Entries:   s.cache.len(),
			Capacity:  s.opts.CacheEntries,
			Hits:      s.cache.hits.Load(),
			Misses:    s.cache.misses.Load(),
			Evictions: s.cache.evictions.Load(),
			Deduped:   s.flights.deduped.Load(),
		}
		breakers := make([]EngineHealth, 0, len(s.opts.Engines))
		for _, m := range s.opts.Engines {
			b := s.breakers[m]
			breakers = append(breakers, EngineHealth{
				Engine: m.String(),
				State:  b.State().String(),
				Streak: b.Streak(),
				Trips:  b.Trips(),
			})
		}
		level := s.ctrl.current().String()
		if s.Draining() {
			w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfter))
			writeJSON(w, http.StatusServiceUnavailable,
				readiness{Reason: "draining", Draining: true, Degradation: level, Breakers: breakers, Cache: detail})
			return
		}
		writeJSON(w, http.StatusOK, readiness{Ready: true, Degradation: level, Breakers: breakers, Cache: detail})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if s.reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteVars(w)
	})
	mux.HandleFunc("GET /debug/events", func(w http.ResponseWriter, r *http.Request) {
		if !s.reg.EventsEnabled() {
			http.NotFound(w, r)
			return
		}
		events, total := s.reg.Events()
		writeJSON(w, http.StatusOK, struct {
			Total  int64       `json:"total"`
			Events []obs.Event `json:"events"`
		}{Total: total, Events: events})
	})
	return mux
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	kind := KindOf(err)
	if retryable(kind) {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(kind)))
	}
	writeJSON(w, statusOf(kind), ErrorPayload{Error: err.Error(), Kind: kind})
}

// writeSADFError is writeError under the sadf error taxonomy: the two
// sadf-specific kinds map through sadfStatusOf, everything else is the
// shared classification.
func (s *Server) writeSADFError(w http.ResponseWriter, err error) {
	kind := SADFKindOf(err)
	if retryable(kind) {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(kind)))
	}
	writeJSON(w, sadfStatusOf(kind), ErrorPayload{Error: err.Error(), Kind: kind})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is out; an encode failure here can only be a
	// broken connection, which the server cannot repair.
	_ = enc.Encode(v)
}
