package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/guard"
	"repro/internal/sdfio"
)

func graphTextOf(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sdfio.WriteText(&buf, gen.Figure2()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func requestBody(t *testing.T, method string) string {
	t.Helper()
	p := RequestPayload{GraphText: graphTextOf(t, "figure2"), Method: method}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHTTPThroughput(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	h := NewHandler(s)

	rec := postJSON(t, h, "/v1/throughput", requestBody(t, "hedged"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var res ResultPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Period == "" {
		t.Errorf("result = %+v", res)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	h := NewHandler(s)

	cases := map[string]string{
		"empty":          ``,
		"not json":       `{`,
		"no graph":       `{"method":"hedged"}`,
		"unknown field":  `{"graph_text":"x","bogus":1}`,
		"unknown method": `{"graph_text":"graph g\n","method":"oracle"}`,
		"trailing data":  `{"graph_text":"x"} {"again":true}`,
	}
	for name, body := range cases {
		rec := postJSON(t, h, "/v1/throughput", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
			continue
		}
		var ep ErrorPayload
		if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
			t.Errorf("%s: error body not JSON: %v", name, err)
			continue
		}
		if ep.Kind != "bad-request" {
			t.Errorf("%s: kind = %q, want bad-request", name, ep.Kind)
		}
	}
}

func TestHTTPInjectionForbidden(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{}) // injection not allowed
	defer s.Close()
	h := NewHandler(s)
	p := RequestPayload{
		GraphText: graphTextOf(t, "figure2"),
		Inject:    []InjectPayload{{Engine: "statespace", Point: "checkpoint", Mode: "panic"}},
	}
	b, _ := json.Marshal(p)
	rec := postJSON(t, h, "/v1/throughput", string(b))
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403 (body %s)", rec.Code, rec.Body)
	}
}

func TestHTTPOverloadedRetryAfter(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	h := NewHandler(s)
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	rec := postJSON(t, h, "/v1/throughput", requestBody(t, "hedged"))
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var ep ErrorPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Kind != "overloaded" {
		t.Errorf("kind = %q, want overloaded", ep.Kind)
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	h := NewHandler(s)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	// The readiness body carries the structured detail the fleet
	// router's probe parses: ready, draining, and the per-engine
	// breaker summary — no /metrics scrape needed.
	type readiness struct {
		Ready    bool   `json:"ready"`
		Reason   string `json:"reason"`
		Draining bool   `json:"draining"`
		Breakers []struct {
			Engine string `json:"engine"`
			State  string `json:"state"`
		} `json:"breakers"`
	}
	readyRec := get("/readyz")
	if readyRec.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d", readyRec.Code)
	}
	var rd readiness
	if err := json.Unmarshal(readyRec.Body.Bytes(), &rd); err != nil {
		t.Fatal(err)
	}
	if !rd.Ready || rd.Draining {
		t.Errorf("ready readyz = %+v, want ready and not draining", rd)
	}
	if len(rd.Breakers) != 3 {
		t.Errorf("readyz reports %d breakers, want 3", len(rd.Breakers))
	}
	for _, b := range rd.Breakers {
		if b.Engine == "" || b.State != "closed" {
			t.Errorf("readyz breaker %+v, want a named closed breaker", b)
		}
	}
	rec := get("/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var hl Health
	if err := json.Unmarshal(rec.Body.Bytes(), &hl); err != nil {
		t.Fatal(err)
	}
	if len(hl.Engines) != 3 {
		t.Errorf("health reports %d engines, want 3", len(hl.Engines))
	}
	for _, e := range hl.Engines {
		if e.State != "closed" {
			t.Errorf("engine %s starts %s, want closed", e.Engine, e.State)
		}
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining readyz without Retry-After")
	}
	rd = readiness{}
	if err := json.Unmarshal(rec.Body.Bytes(), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Ready || !rd.Draining || rd.Reason != "draining" {
		t.Errorf("draining readyz = %+v, want draining detail", rd)
	}
	if len(rd.Breakers) != 3 {
		t.Errorf("draining readyz reports %d breakers, want 3", len(rd.Breakers))
	}
	// healthz keeps answering during the drain: it is how the operator
	// watches the drain complete.
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", rec.Code)
	}
}

func TestKindOfTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		kind string
	}{
		{nil, ""},
		{ErrBadRequest, "bad-request"},
		{ErrInjectionDisabled, "injection-disabled"},
		{ErrOverloaded, "overloaded"},
		{ErrDraining, "draining"},
		{guard.ErrBreakerOpen, "breaker-open"},
		{guard.ErrBudgetExceeded, "budget"},
		{context.DeadlineExceeded, "deadline"},
		{guard.ErrCanceled, "canceled"},
		{guard.ErrEngineFailed, "engine"},
		{errors.New("mystery"), "internal"},
		// Budget-caused engine failure reports the budget, like sdftool.
		{errors.Join(guard.ErrEngineFailed, guard.ErrBudgetExceeded), "budget"},
		// A hedged failure joining a gated engine with a substantive
		// failure classifies by the substantive failure: "retry later"
		// is wrong advice when the engines that ran hit a budget or a
		// model precondition.
		{errors.Join(guard.ErrBreakerOpen, guard.ErrBudgetExceeded), "budget"},
		{errors.Join(guard.ErrBreakerOpen, context.DeadlineExceeded), "deadline"},
		// All paths shed: genuinely unavailable.
		{errors.Join(guard.ErrBreakerOpen, guard.ErrEngineFailed), "breaker-open"},
	}
	for _, c := range cases {
		if got := KindOf(c.err); got != c.kind {
			t.Errorf("KindOf(%v) = %q, want %q", c.err, got, c.kind)
		}
	}
}

func TestStatusOfRetryable(t *testing.T) {
	cases := map[string]int{
		"bad-request":        400,
		"injection-disabled": 403,
		"overloaded":         429,
		"draining":           503,
		"breaker-open":       503,
		"precondition":       422,
		"budget":             422,
		"deadline":           504,
		"canceled":           504,
		"certificate":        500,
		"disagreement":       500,
		"engine":             500,
		"internal":           500,
	}
	for kind, want := range cases {
		if got := statusOf(kind); got != want {
			t.Errorf("statusOf(%s) = %d, want %d", kind, got, want)
		}
	}
	for _, kind := range []string{"overloaded", "draining", "breaker-open"} {
		if !retryable(kind) {
			t.Errorf("%s not retryable", kind)
		}
	}
	if retryable("engine") {
		t.Error("engine retryable")
	}
}
