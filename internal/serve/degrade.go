package serve

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrDegraded marks a request refused by the degradation ladder: an
// exactOnly request while admission is browned out, or any fresh
// computation while the controller sits at the shed level with nothing
// cached to serve. It maps to HTTP 429 with a Retry-After derived from
// the controller's estimated drain time.
var ErrDegraded = errors.New("serve: admission degraded")

// Level is a rung of the degradation ladder. Levels order by severity:
// every request is served at the current level's fidelity unless it
// opted out with exactOnly.
type Level int

const (
	// LevelExact is normal operation: the full hedged engine race (or
	// the requested engine), exact answers only.
	LevelExact Level = iota
	// LevelBounded answers with a certified conservative enclosure
	// (reduction fixpoint + matrix engine under a hard cost ceiling)
	// instead of the exact engines.
	LevelBounded
	// LevelStale serves expired result-cache entries, marked stale,
	// with a background singleflight refresh; misses fall back to
	// bounded answers.
	LevelStale
	// LevelShed refuses fresh computation outright; only cache content
	// (fresh or stale) is served.
	LevelShed
)

// String names the level on the wire and in metrics.
func (l Level) String() string {
	switch l {
	case LevelExact:
		return "exact"
	case LevelBounded:
		return "bounded"
	case LevelStale:
		return "stale-cache"
	case LevelShed:
		return "shed"
	default:
		return "unknown"
	}
}

// latWindow is the sliding window of recent request latencies the
// pressure signal draws its p99 and drain estimate from.
const latWindow = 128

// fallbackLatency prices a request when the window is empty (cold
// start): pessimistic enough that the first drain estimates do not
// promise an instant retry.
const fallbackLatency = 250 * time.Millisecond

// controller is the adaptive admission controller: it folds queue
// depth and the recent p99 latency into a pressure level with
// hysteresis. Escalation is immediate — a filling queue must brown out
// now, not after a timer — while de-escalation steps down one level at
// a time only after the raw signal has stayed below the current level
// for a full hold period, so the ladder does not flap at a threshold.
type controller struct {
	workers  int
	capacity int           // slots capacity (workers + queue depth)
	target   time.Duration // p99 latency target
	hold     time.Duration // de-escalation hold
	now      func() time.Time
	reg      *obs.Registry

	mu         sync.Mutex
	level      Level
	belowSince time.Time // start of the current below-level streak

	lats [latWindow]time.Duration
	n    int // samples stored (≤ latWindow)
	idx  int // next write position
}

func newController(workers, capacity int, target, hold time.Duration, reg *obs.Registry) *controller {
	if target <= 0 {
		target = time.Second
	}
	if hold <= 0 {
		hold = 2 * time.Second
	}
	c := &controller{
		workers:  workers,
		capacity: capacity,
		target:   target,
		hold:     hold,
		now:      reg.Now,
		reg:      reg,
	}
	reg.Gauge(obs.MetricDegradationLevel).Set(int64(LevelExact))
	return c
}

// observe records one completed request's end-to-end latency.
func (c *controller) observe(d time.Duration) {
	c.mu.Lock()
	c.lats[c.idx] = d
	c.idx = (c.idx + 1) % latWindow
	if c.n < latWindow {
		c.n++
	}
	c.mu.Unlock()
}

// p99Locked returns the 99th percentile of the window (0 when empty).
func (c *controller) p99Locked() time.Duration {
	if c.n == 0 {
		return 0
	}
	buf := make([]time.Duration, c.n)
	copy(buf, c.lats[:c.n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(c.n-1)*99/100]
}

// meanLocked returns the window mean, or fallbackLatency when empty.
func (c *controller) meanLocked() time.Duration {
	if c.n == 0 {
		return fallbackLatency
	}
	var sum time.Duration
	for _, d := range c.lats[:c.n] {
		sum += d
	}
	return sum / time.Duration(c.n)
}

// rawLevelLocked derives the instantaneous pressure level from the
// queue occupancy and the recent p99: ≥ 1/2 full is bounded, ≥ 3/4 is
// stale-cache, a full house is shed, and a p99 past the latency target
// brings at least bounded even with a shallow queue (the queue is
// short because the work is long).
func (c *controller) rawLevelLocked(queued int) Level {
	switch {
	case queued >= c.capacity:
		return LevelShed
	case 4*queued >= 3*c.capacity:
		return LevelStale
	case 2*queued >= c.capacity:
		return LevelBounded
	}
	if c.p99Locked() > c.target {
		return LevelBounded
	}
	return LevelExact
}

// update folds the current queue depth into the ladder and returns the
// level the caller must serve at. The hysteresis discipline: raw above
// the current level escalates immediately (and resets the streak); raw
// below it starts or continues a streak, de-escalating one level per
// completed hold period; raw at the level clears the streak.
func (c *controller) update(queued int) Level {
	c.mu.Lock()
	raw := c.rawLevelLocked(queued)
	from := c.level
	switch {
	case raw > c.level:
		c.level = raw
		c.belowSince = time.Time{}
	case raw < c.level:
		now := c.now()
		if c.belowSince.IsZero() {
			c.belowSince = now
		} else if now.Sub(c.belowSince) >= c.hold {
			c.level--
			c.belowSince = now // next rung needs its own full hold
		}
	default:
		c.belowSince = time.Time{}
	}
	to := c.level
	c.mu.Unlock()
	if from != to {
		c.reg.Gauge(obs.MetricDegradationLevel).Set(int64(to))
		c.reg.Emit("degrade.transition", "from", from.String(), "to", to.String())
	}
	return to
}

// current reads the level without feeding the signal.
func (c *controller) current() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// drainEstimate predicts how long the present backlog needs to drain:
// queued requests times the recent mean latency, divided across the
// workers, rounded up to whole seconds and clamped to [1, 30]. It is
// the Retry-After of every pressure refusal — a deep, slow backlog
// tells clients to stay away longer than a shallow, quick one.
func (c *controller) drainEstimate(queued int) int {
	c.mu.Lock()
	mean := c.meanLocked()
	c.mu.Unlock()
	if queued < 1 {
		queued = 1
	}
	d := time.Duration(queued) * mean / time.Duration(c.workers)
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}
