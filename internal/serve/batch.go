package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/passes"
)

// Batch serving: POST /v1/batch analyses many graphs under one shared
// deadline with partial-failure semantics as the contract. Every item
// gets its own entry in the result array — independently ok, bounded,
// degraded or item-error, each success with its own lifted certificate —
// so one hostile or explosive graph in a 100-item batch yields one error
// entry, never a batch-wide 5xx. The planner prices every item with the
// same passes-reduced EstimateCost admission uses, runs cheap items
// first, and carves the shared deadline into per-item budgets so a blown
// deadline strands the fewest answers.

// maxBatchRequestBytes caps the wire size of one batch; roomier than the
// single-request cap because a batch legitimately carries many graphs,
// but still bounded before the decoder allocates anything.
const maxBatchRequestBytes = 8 << 20

// maxBatchItems bounds the item count of one batch: admission control
// prices work, not list lengths, so the count needs its own cap.
const maxBatchItems = 1024

// batchItemFloor is the minimum carved per-item budget: below this the
// deadline is effectively spent and the item reports it honestly instead
// of thrashing in a microsecond window.
const batchItemFloor = 20 * time.Millisecond

// BatchRequestPayload is the JSON wire form of POST /v1/batch: a list of
// ordinary request payloads plus one shared deadline for the whole
// batch.
type BatchRequestPayload struct {
	// Items are the per-graph requests, each in the exact wire form of
	// POST /v1/throughput.
	Items []RequestPayload `json:"items"`
	// DeadlineMS is the shared wall-clock budget for the whole batch in
	// milliseconds; 0 uses the server default, and the server clamps it
	// to its configured maximum.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// BatchItem is one decoded batch entry. Exactly one of Req and Err is
// set: a structurally invalid item decodes to its own error entry
// instead of poisoning the batch.
type BatchItem struct {
	// Payload is the item's wire form, retained verbatim so the fleet
	// router can re-marshal sub-batches without a lossy round trip.
	Payload RequestPayload
	// Req is the validated request; nil when Err is set.
	Req *Request
	// Err is the item's decode failure (wraps ErrBadRequest); the item
	// never executes and surfaces as an item-error entry.
	Err error
}

// BatchRequest is a decoded batch.
type BatchRequest struct {
	Items    []BatchItem
	Deadline time.Duration
}

// BatchItemResult is one entry of the per-item result array. Index is
// the item's position in the request — results always come back in
// request order regardless of the execution schedule.
type BatchItemResult struct {
	Index  int            `json:"index"`
	Graph  string         `json:"graph,omitempty"`
	Status string         `json:"status"` // ok | bounded | degraded | item-error
	Result *ResultPayload `json:"result,omitempty"`
	Error  *ErrorPayload  `json:"error,omitempty"`
}

// BatchResultPayload is the JSON wire form of a processed batch. A
// processed batch is always HTTP 200: item failures live in Items, and
// Kind says whether any occurred.
type BatchResultPayload struct {
	// Kind classifies the batch: "complete" (every item answered) or
	// "partial" (at least one item-error entry). See BatchKindOf.
	Kind string `json:"kind"`
	// OK counts items that answered (ok, bounded or degraded); Errors
	// counts item-error entries. OK+Errors == len(Items) always.
	OK     int               `json:"ok"`
	Errors int               `json:"errors"`
	Items  []BatchItemResult `json:"items"`
}

// DecodeBatchRequest parses the wire form of one batch. Batch-level
// failures (malformed JSON, empty or oversized batch) wrap
// ErrBadRequest/ErrTooLarge; per-item validation failures land in the
// item's Err and become item-error entries, never a batch-level refusal.
func DecodeBatchRequest(data []byte) (*BatchRequest, error) {
	bad := func(format string, args ...any) (*BatchRequest, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
	}
	if len(data) > maxBatchRequestBytes {
		return nil, fmt.Errorf("%w: batch of %d bytes exceeds the %d-byte limit",
			ErrTooLarge, len(data), maxBatchRequestBytes)
	}
	var p BatchRequestPayload
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return bad("invalid JSON: %v", err)
	}
	if dec.More() {
		return bad("trailing data after the batch object")
	}
	if len(p.Items) == 0 {
		return bad("empty batch: items must name at least one graph")
	}
	if len(p.Items) > maxBatchItems {
		return bad("batch of %d items exceeds the %d-item limit", len(p.Items), maxBatchItems)
	}
	if p.DeadlineMS < 0 {
		return bad("negative deadline_ms %d", p.DeadlineMS)
	}
	breq := &BatchRequest{
		Items:    make([]BatchItem, len(p.Items)),
		Deadline: time.Duration(p.DeadlineMS) * time.Millisecond,
	}
	for i, ip := range p.Items {
		req, err := ip.decode()
		breq.Items[i] = BatchItem{Payload: ip, Req: req, Err: err}
	}
	return breq, nil
}

// ItemStatusOf classifies one batch item's outcome into the stable wire
// string of BatchItemResult.Status. The literals below are harvested by
// the sdfvet kindmap check: every status must have an explicit case in
// sdftool's batch exit-code table.
func ItemStatusOf(res *ResultPayload, err error) string {
	switch {
	case err != nil || res == nil:
		return "item-error"
	case res.Degradation == "bounded":
		return "bounded"
	case res.Degradation != "":
		return "degraded"
	default:
		return "ok"
	}
}

// BatchKindOf classifies a finished batch from its item entries. Like
// ItemStatusOf, the literals feed the sdfvet kindmap check.
func BatchKindOf(items []BatchItemResult) string {
	for _, it := range items {
		if it.Error != nil {
			return "partial"
		}
	}
	return "complete"
}

// plannedItem is one batch item after the planning pass: prechecked,
// reduced and priced — or already failed with a terminal error that
// skips execution entirely.
type plannedItem struct {
	index int
	req   *Request
	err   error
	red   *passes.Reduction
	cost  int64
}

// AnalyzeBatch admits, plans and executes one batch. The returned error
// is batch-level only (ErrDraining when admission has stopped); every
// per-item failure is an entry in the result array. ctx bounds how long
// this caller waits, exactly as in Analyze.
func (s *Server) AnalyzeBatch(ctx context.Context, breq *BatchRequest) (*BatchResultPayload, error) {
	start := s.reg.Now()
	res, err := s.analyzeBatch(ctx, breq)
	s.reg.Histogram(obs.MetricBatchSeconds).Observe(s.reg.Now().Sub(start))
	outcome := outcomeOf(err)
	if err == nil {
		outcome = res.Kind
	}
	s.reg.Counter(obs.MetricBatchRequests, "outcome", outcome).Inc()
	return res, err
}

func (s *Server) analyzeBatch(ctx context.Context, breq *BatchRequest) (*BatchResultPayload, error) {
	// One admission covers the whole batch: the drain gate refuses new
	// batches, and an accepted batch holds the server open until its
	// last item settles.
	if err := s.admit(); err != nil {
		return nil, err
	}
	defer s.finish()

	deadline := breq.Deadline
	if deadline <= 0 {
		deadline = s.opts.DefaultTimeout
	}
	if deadline > s.opts.MaxTimeout {
		deadline = s.opts.MaxTimeout
	}
	expiry := time.Now().Add(deadline)
	bctx, cancel := context.WithDeadline(ctx, expiry)
	defer cancel()

	plan := s.planBatch(breq)

	// Cross-item dedup: items with identical canonical keys (same
	// graph, method and budget — Request.Key — plus the exact-only
	// gate) are analysed once. The first occurrence in plan order
	// leads; duplicates skip execution entirely and are filled from the
	// leader's entry after the batch settles. Fault-injected items
	// never dedup, mirroring dispatch: they are deliberately sick and
	// must neither adopt nor donate a healthy answer.
	leaderOf := make(map[*plannedItem]*plannedItem)
	seen := make(map[string]*plannedItem)
	for _, pi := range plan {
		if pi.err != nil || len(pi.req.Faults) > 0 {
			continue
		}
		key := pi.req.Key()
		if pi.req.ExactOnly {
			key += "|exact"
		}
		if lead, ok := seen[key]; ok {
			leaderOf[pi] = lead
		} else {
			seen[key] = pi
		}
	}

	results := make([]BatchItemResult, len(breq.Items))
	// Workers-sized launch gate: items start in plan order (cheap
	// first), and at most Workers batch items compete for the engine
	// slots at once, so a batch cannot monopolise the bounded queue
	// against single requests.
	gate := make(chan struct{}, s.opts.Workers)
	var wg sync.WaitGroup
	// The deadline is carved across the items that will actually run:
	// leaders only, never the duplicates they answer for.
	left := 0
	for _, pi := range plan {
		if pi.err == nil && leaderOf[pi] == nil {
			left++
		}
	}
	for _, pi := range plan {
		pi := pi
		if pi.err != nil {
			results[pi.index] = s.batchItemResult(pi, nil, pi.err)
			continue
		}
		if leaderOf[pi] != nil {
			continue
		}
		gate <- struct{}{}
		budget := carveBudget(time.Until(expiry), left, s.opts.Workers)
		left--
		if budget <= 0 {
			<-gate
			results[pi.index] = s.batchItemResult(pi, nil,
				fmt.Errorf("serve: batch deadline exhausted before the item started: %w", context.DeadlineExceeded))
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-gate }()
			results[pi.index] = s.runBatchItem(bctx, pi, budget)
		}()
	}
	wg.Wait()

	// Fan the leaders' answers out to their duplicates.
	for _, pi := range plan {
		lead := leaderOf[pi]
		if lead == nil {
			continue
		}
		results[pi.index] = s.dedupItemResult(pi, results[lead.index])
	}

	out := &BatchResultPayload{Items: results}
	for _, it := range results {
		if it.Error != nil {
			out.Errors++
		} else {
			out.OK++
		}
	}
	out.Kind = BatchKindOf(results)
	return out, nil
}

// planBatch prices and orders the batch: per item it runs the injection
// gate, the structural prechecks and the reduction fixpoint (all under
// panic isolation — a hostile graph fails its own entry, nothing else),
// then sorts by the reduced admission cost so the cheap items run first
// and a blown deadline strands the fewest answers.
func (s *Server) planBatch(breq *BatchRequest) []*plannedItem {
	plan := make([]*plannedItem, len(breq.Items))
	for i, it := range breq.Items {
		pi := &plannedItem{index: i, req: it.Req, err: it.Err}
		plan[i] = pi
		if pi.err != nil {
			continue
		}
		if len(pi.req.Faults) > 0 && !s.opts.AllowInjection {
			pi.err = ErrInjectionDisabled
			continue
		}
		pi.err = guard.Protect("batch", "plan", func() error {
			facts := passes.NewFacts(pi.req.Graph)
			sp := s.reg.StartSpan("analysis.precheck")
			err := lint.PrecheckWith(facts)
			sp.Finish()
			if err != nil {
				return err
			}
			pi.cost = facts.Cost()
			if red := s.reduceFor(pi.req); red != nil {
				pi.red = red
				pi.cost = EstimateCost(red.Final)
			}
			return nil
		})
	}
	ordered := make([]*plannedItem, len(plan))
	copy(ordered, plan)
	sort.SliceStable(ordered, func(a, b int) bool {
		// Failed items carry no cost and sort first: recording an error
		// entry is free and must not wait behind real work.
		if (ordered[a].err == nil) != (ordered[b].err == nil) {
			return ordered[a].err != nil
		}
		return ordered[a].cost < ordered[b].cost
	})
	return ordered
}

// carveBudget splits the remaining shared deadline across the items
// still to launch, assuming the Workers-wide gate drains them in waves:
// each item gets remaining/ceil(left/workers), floored at batchItemFloor
// and capped at the remaining window. Cheap-first ordering makes the
// early waves finish under their slice and roll surplus time forward to
// the expensive tail.
func carveBudget(remaining time.Duration, left, workers int) time.Duration {
	if remaining <= 0 {
		return 0
	}
	if left < 1 {
		left = 1
	}
	if workers < 1 {
		workers = 1
	}
	waves := (left + workers - 1) / workers
	per := remaining / time.Duration(waves)
	if per < batchItemFloor {
		per = batchItemFloor
	}
	if per > remaining {
		per = remaining
	}
	return per
}

// runBatchItem executes one planned item under its carved budget via
// the same admitted path single requests take, with one extra layer of
// panic isolation so a bug anywhere in the item's pipeline becomes that
// item's error entry.
func (s *Server) runBatchItem(ctx context.Context, pi *plannedItem, budget time.Duration) BatchItemResult {
	req := *pi.req
	if req.Timeout <= 0 || req.Timeout > budget {
		req.Timeout = budget
	}
	level := s.ctrl.current()
	start := s.reg.Now()
	var res *ResultPayload
	err := guard.Protect("batch", "item", func() error {
		var ierr error
		res, ierr = s.analyzeAdmitted(ctx, &req, pi.red, level)
		return ierr
	})
	elapsed := s.reg.Now().Sub(start)
	// Batch items feed the same pressure signal as single requests:
	// they hold the same worker slots.
	s.ctrl.observe(elapsed)
	if err != nil {
		if !errors.Is(err, ErrDegraded) {
			s.failed.Add(1)
		}
	} else {
		s.served.Add(1)
	}
	return s.batchItemResult(pi, res, err)
}

// dedupItemResult fills one deduplicated item's entry from its
// leader's: the same answer (marked Deduped) or the same error, under
// the item's own index, counted both as a batch item and as a dedup
// hit.
func (s *Server) dedupItemResult(pi *plannedItem, lead BatchItemResult) BatchItemResult {
	out := lead
	out.Index = pi.index
	if out.Result != nil {
		res := *out.Result
		res.Deduped = true
		out.Result = &res
	}
	s.reg.Counter(obs.MetricBatchItems, "status", out.Status).Inc()
	s.reg.Counter(obs.MetricBatchDedupItems).Inc()
	return out
}

// batchItemResult renders one item outcome into its wire entry and
// counts it.
func (s *Server) batchItemResult(pi *plannedItem, res *ResultPayload, err error) BatchItemResult {
	st := ItemStatusOf(res, err)
	s.reg.Counter(obs.MetricBatchItems, "status", st).Inc()
	out := BatchItemResult{Index: pi.index, Status: st}
	if pi.req != nil {
		out.Graph = pi.req.Graph.Name()
	}
	if err != nil {
		out.Error = &ErrorPayload{Error: err.Error(), Kind: KindOf(err)}
		return out
	}
	out.Result = res
	return out
}
