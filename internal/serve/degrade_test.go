package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rat"
)

// forceLevel pins the controller at a level and makes the de-escalation
// hold effectively infinite, so the analyze path observes the level the
// test chose regardless of the real queue depth.
func forceLevel(s *Server, l Level) {
	s.ctrl.mu.Lock()
	s.ctrl.level = l
	s.ctrl.hold = 24 * time.Hour
	s.ctrl.mu.Unlock()
}

// soleCacheKey returns the key of the cache's only entry.
func soleCacheKey(t *testing.T, s *Server) string {
	t.Helper()
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	if len(s.cache.entries) != 1 {
		t.Fatalf("cache has %d entries, want exactly 1", len(s.cache.entries))
	}
	for k := range s.cache.entries {
		return k
	}
	return ""
}

// TestControllerHysteresis drives the ladder with a fake clock:
// escalation is immediate at each occupancy threshold, de-escalation
// steps down one rung per completed hold period, and a spike
// mid-descent re-escalates instantly.
func TestControllerHysteresis(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := newController(1, 4, time.Second, 2*time.Second, nil)
	c.now = clk.Now

	steps := []struct {
		queued int
		want   Level
	}{
		{0, LevelExact},
		{2, LevelBounded}, // 2/4 hits the 1/2 threshold
		{3, LevelStale},   // 3/4 hits the 3/4 threshold
		{4, LevelShed},    // full house
	}
	for _, st := range steps {
		if got := c.update(st.queued); got != st.want {
			t.Fatalf("update(%d) = %s, want %s", st.queued, got, st.want)
		}
	}

	// The pressure is gone, but the ladder holds its level for the full
	// hold period, then descends one rung at a time.
	if got := c.update(0); got != LevelShed {
		t.Fatalf("instant de-escalation to %s", got)
	}
	clk.Advance(time.Second)
	if got := c.update(0); got != LevelShed {
		t.Fatalf("de-escalated after half the hold: %s", got)
	}
	clk.Advance(time.Second)
	if got := c.update(0); got != LevelStale {
		t.Fatalf("after a full hold: %s, want one rung down (stale-cache)", got)
	}
	clk.Advance(2 * time.Second)
	if got := c.update(0); got != LevelBounded {
		t.Fatalf("after the second hold: %s, want bounded", got)
	}

	// A new burst mid-descent snaps straight back up.
	if got := c.update(4); got != LevelShed {
		t.Fatalf("re-escalation = %s, want shed", got)
	}
}

// TestControllerLatencyBump: a p99 past the target browns out even with
// an empty queue — the queue is short because the work is long.
func TestControllerLatencyBump(t *testing.T) {
	c := newController(1, 100, 50*time.Millisecond, time.Second, nil)
	if got := c.update(0); got != LevelExact {
		t.Fatalf("idle level = %s", got)
	}
	for i := 0; i < latWindow; i++ {
		c.observe(100 * time.Millisecond)
	}
	if got := c.update(0); got != LevelBounded {
		t.Fatalf("level with p99 at 2x target = %s, want bounded", got)
	}
}

// TestRetryAfterByLevel is the table over the ladder: every degraded
// refusal quotes the controller's drain estimate (queued × mean /
// workers, rounded up), while an un-degraded overload keeps the static
// backlog heuristic.
func TestRetryAfterByLevel(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 7})
	defer s.Close()
	// A known signal: the recent mean latency is exactly 1s.
	for i := 0; i < latWindow; i++ {
		s.ctrl.observe(time.Second)
	}

	cases := []struct {
		level  Level
		kind   string
		queued int
		want   int
	}{
		{LevelExact, "overloaded", 2, 3},  // heuristic: 1 + 2/1
		{LevelExact, "overloaded", 8, 8},  // heuristic cap
		{LevelBounded, "degraded", 2, 2},  // 2 × 1s / 1 worker
		{LevelBounded, "overloaded", 3, 3}, // degraded server quotes drain time even for overload
		{LevelStale, "degraded", 5, 5},
		{LevelShed, "degraded", 8, 8},
	}
	for _, tc := range cases {
		forceLevel(s, tc.level)
		for i := 0; i < tc.queued; i++ {
			s.slots <- struct{}{}
		}
		got := s.retryAfter(tc.kind)
		for i := 0; i < tc.queued; i++ {
			<-s.slots
		}
		if got != tc.want {
			t.Errorf("level %s, kind %s, %d queued: Retry-After = %d, want %d",
				tc.level, tc.kind, tc.queued, got, tc.want)
		}
	}
}

// TestDegradedBoundedAnswer: at the bounded level a fresh request is
// answered by the brownout engine — a certified conservative period
// that the exact answer can never exceed — and the response carries the
// degradation marker plus Verified.
func TestDegradedBoundedAnswer(t *testing.T) {
	defer noLeaks(t)
	reg := obs.New()
	s := New(Options{Workers: 2, Obs: reg})
	defer s.Close()

	// The exact answer first, from a separate server so no cache entry
	// short-circuits the bounded path.
	ref := New(Options{Workers: 2})
	exact, err := ref.Analyze(context.Background(), figure2Request(t, "hedged"))
	ref.Close()
	if err != nil {
		t.Fatalf("exact reference: %v", err)
	}

	forceLevel(s, LevelBounded)
	res, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatalf("bounded analyze: %v", err)
	}
	if res.Degradation != "bounded" || res.Engine != "bounded" {
		t.Fatalf("degradation = %q, engine = %q, want bounded/bounded", res.Degradation, res.Engine)
	}
	if !res.Verified || res.Certificate == "" {
		t.Fatalf("bounded answer not verified (cert %q)", res.Certificate)
	}
	if res.Period == "" {
		t.Fatalf("bounded answer carries no period")
	}
	// Conservativeness on the wire: bounded period ≥ exact period.
	up, err := rat.New(res.PeriodNum, res.PeriodDen)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := rat.New(exact.PeriodNum, exact.PeriodDen)
	if err != nil {
		t.Fatal(err)
	}
	if up.Cmp(ex) < 0 {
		t.Fatalf("bounded period %v below the exact period %v", up, ex)
	}

	// The outcome counter ticked for the bounded level.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sampleValue(samples, obs.MetricDegraded, "level", "bounded"); !ok || v != 1 {
		t.Errorf("degraded{level=bounded} = %v (ok=%v), want 1", v, ok)
	}
}

// TestControllerGaugeAndEvents: a real transition moves the level gauge
// and leaves a transition event in the ring.
func TestControllerGaugeAndEvents(t *testing.T) {
	reg := obs.New()
	reg.EnableEvents(16)
	c := newController(1, 4, time.Second, 2*time.Second, reg)
	c.update(4) // exact → shed

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sampleValue(samples, obs.MetricDegradationLevel); !ok || v != float64(LevelShed) {
		t.Errorf("degradation level gauge = %v (ok=%v), want %d", v, ok, LevelShed)
	}
	events, _ := reg.Events()
	found := false
	for _, e := range events {
		if e.Name == "degrade.transition" {
			found = true
		}
	}
	if !found {
		t.Error("no degrade.transition event emitted")
	}
}

// TestDegradedFreshCacheHit: a fresh cache entry is full fidelity at
// any level — no degradation marker, no brownout engine.
func TestDegradedFreshCacheHit(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 2})
	defer s.Close()
	if _, err := s.Analyze(context.Background(), figure2Request(t, "hedged")); err != nil {
		t.Fatal(err)
	}
	forceLevel(s, LevelShed)
	res, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatalf("shed level with a fresh cache entry refused: %v", err)
	}
	if !res.Cached || res.Degradation != "" || res.Stale {
		t.Fatalf("fresh hit rendered as cached=%v degradation=%q stale=%v", res.Cached, res.Degradation, res.Stale)
	}
}

// TestExactOnlyRefusal: exactOnly converts a degraded answer into an
// ErrDegraded refusal that maps to 429 + Retry-After.
func TestExactOnlyRefusal(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 2})
	defer s.Close()
	forceLevel(s, LevelBounded)

	req := figure2Request(t, "hedged")
	req.ExactOnly = true
	_, err := s.Analyze(context.Background(), req)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if kind := KindOf(err); kind != "degraded" {
		t.Fatalf("kind = %q, want degraded", kind)
	}
	if status := statusOf("degraded"); status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if !retryable("degraded") {
		t.Fatal("degraded refusals must carry Retry-After")
	}

	// At the exact level the same request sails through.
	forceLevel(s, LevelExact)
	if _, err := s.Analyze(context.Background(), req); err != nil {
		t.Fatalf("exactOnly at exact level: %v", err)
	}
}

// TestShedRefusesWithoutCache: at shed with nothing cached, the request
// is refused as degraded (a 429, never a 5xx).
func TestShedRefusesWithoutCache(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 2})
	defer s.Close()
	forceLevel(s, LevelShed)
	_, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
}

// TestStaleServeAndRefresh: past the TTL the entry stops answering the
// exact path but stale-serves at the stale-cache level, marked stale
// and still lifted + verified; the background refresh then restores a
// fresh entry without leaking its goroutine.
func TestStaleServeAndRefresh(t *testing.T) {
	defer noLeaks(t)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(Options{Workers: 2, CacheTTL: time.Second})
	defer s.Close()
	s.cache.now = clk.Now

	if _, err := s.Analyze(context.Background(), figure2Request(t, "hedged")); err != nil {
		t.Fatal(err)
	}
	key := soleCacheKey(t, s)
	clk.Advance(2 * time.Second)

	// Expired now: the exact path misses...
	if _, ok := s.cache.get(key); ok {
		t.Fatal("expired entry answered the exact path")
	}
	// ...but the stale-cache level serves it.
	forceLevel(s, LevelStale)
	res, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatalf("stale serve: %v", err)
	}
	if !res.Stale || res.Degradation != "stale-cache" || !res.Cached {
		t.Fatalf("stale=%v degradation=%q cached=%v", res.Stale, res.Degradation, res.Cached)
	}
	if !res.Verified {
		t.Fatal("stale answer lost its verified certificate")
	}

	// The refresh lands a fresh entry and its goroutine exits.
	s.refreshWG.Wait()
	if _, ok := s.cache.get(key); !ok {
		t.Fatal("refresh did not restore a fresh entry")
	}
	res, err = s.Analyze(context.Background(), figure2Request(t, "hedged"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || res.Degradation != "" {
		t.Fatalf("post-refresh answer still stale (%q)", res.Degradation)
	}
}

// TestStaleRefreshSingleflight: refreshers behind stale hits dedupe
// against an identical in-flight computation — three stale serves spawn
// three refreshers, all of which observe the flight leader and exit
// without recomputing.
func TestStaleRefreshSingleflight(t *testing.T) {
	defer noLeaks(t)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(Options{Workers: 2, CacheTTL: time.Second})
	defer s.Close()
	s.cache.now = clk.Now

	if _, err := s.Analyze(context.Background(), figure2Request(t, "hedged")); err != nil {
		t.Fatal(err)
	}
	key := soleCacheKey(t, s)
	clk.Advance(2 * time.Second)
	forceLevel(s, LevelStale)

	// Occupy the flight: an identical computation is "already running".
	f, leader := s.flights.join(key)
	if !leader {
		t.Fatal("flight for the cached key unexpectedly occupied")
	}
	before := s.flights.deduped.Load()
	for i := 0; i < 3; i++ {
		res, err := s.Analyze(context.Background(), figure2Request(t, "hedged"))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stale {
			t.Fatal("want a stale answer while the refresh key is in flight")
		}
	}
	// All refreshers must exit behind the leader without computing;
	// this would deadlock (and the test time out) if any waited.
	done := make(chan struct{})
	go func() {
		s.refreshWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("refreshers did not exit behind the in-flight leader")
	}
	if got := s.flights.deduped.Load() - before; got != 3 {
		t.Fatalf("deduped refreshers = %d, want 3", got)
	}
	s.flights.finish(key, f, nil, errors.New("abandoned by test"))
}

// TestStaleEvictionOrdering: expired entries remain stale-servable
// until capacity eviction reclaims them — eviction, not expiry, is
// what removes an entry.
func TestStaleEvictionOrdering(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := newResultCache(1, time.Second, nil)
	c.now = clk.Now

	c.put("a", &answer{engine: "x"})
	clk.Advance(2 * time.Second)
	if _, ok := c.get("a"); ok {
		t.Fatal("expired entry answered get")
	}
	if res, stale, ok := c.getStale("a"); !ok || !stale || res.engine != "x" {
		t.Fatalf("expired entry must stale-serve: ok=%v stale=%v", ok, stale)
	}
	// Capacity pressure is what finally removes it.
	c.put("b", &answer{engine: "y"})
	if _, _, ok := c.getStale("a"); ok {
		t.Fatal("evicted entry still stale-served")
	}
	if res, stale, ok := c.getStale("b"); !ok || stale || res.engine != "y" {
		t.Fatalf("fresh entry misreported: ok=%v stale=%v", ok, stale)
	}
}

// TestHTTPDegradation: the wire surface of the ladder — the degradation
// marker rides both the body and the X-SDF-Degradation header, an
// exact_only request 429s with Retry-After, and /readyz reports the
// level.
func TestHTTPDegradation(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{Workers: 2})
	defer s.Close()
	h := NewHandler(s)
	forceLevel(s, LevelBounded)

	body, err := json.Marshal(RequestPayload{GraphText: graphTextOf(t, "figure2")})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, h, "/v1/throughput", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("bounded answer status = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-SDF-Degradation"); got != "bounded" {
		t.Fatalf("X-SDF-Degradation = %q, want bounded", got)
	}
	var res ResultPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Degradation != "bounded" || !res.Verified {
		t.Fatalf("payload degradation = %q verified = %v", res.Degradation, res.Verified)
	}

	body, err = json.Marshal(RequestPayload{GraphText: graphTextOf(t, "figure2"), Method: "matrix", ExactOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	rec = postJSON(t, h, "/v1/throughput", string(body))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("exact_only status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("exact_only refusal missing Retry-After")
	}
	var ep ErrorPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Kind != "degraded" {
		t.Fatalf("kind = %q, want degraded", ep.Kind)
	}

	rec = getPath(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz status = %d", rec.Code)
	}
	var ready struct {
		Degradation string `json:"degradation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Degradation != "bounded" {
		t.Fatalf("/readyz degradation = %q, want bounded", ready.Degradation)
	}
}

// TestHTTPTooLarge: a body past maxRequestBytes answers 413 with the
// stable too-large kind, not a generic 400.
func TestHTTPTooLarge(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	h := NewHandler(s)
	rec := postJSON(t, h, "/v1/throughput", strings.Repeat(" ", maxRequestBytes+1))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	var ep ErrorPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Kind != "too-large" {
		t.Fatalf("kind = %q, want too-large", ep.Kind)
	}
}
