package serve

// EngineHealth reports one engine's circuit breaker.
type EngineHealth struct {
	Engine string `json:"engine"`
	State  string `json:"state"` // closed, open, half-open
	Streak int    `json:"streak"`
	Trips  int64  `json:"trips"`
}

// Health is the server's self-report, served by /healthz: breaker
// states, queue depth, pool headroom, cache effectiveness and the
// admission counters.
type Health struct {
	Draining bool `json:"draining"`
	// Degradation is the admission controller's current brownout level:
	// "exact", "bounded", "stale-cache" or "shed".
	Degradation string `json:"degradation"`

	// InFlight counts requests inside the server (queued + running),
	// Running the analyses currently holding a worker.
	InFlight      int   `json:"in_flight"`
	Running       int64 `json:"running"`
	Workers       int   `json:"workers"`
	QueueCapacity int   `json:"queue_capacity"`

	PoolInUse    int64 `json:"pool_in_use"`
	PoolCapacity int64 `json:"pool_capacity"`
	PoolHeadroom int64 `json:"pool_headroom"`

	CacheEntries   int   `json:"cache_entries"`
	CacheCapacity  int   `json:"cache_capacity"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	Deduped        int64 `json:"deduped"`

	Admitted   int64 `json:"admitted"`
	Served     int64 `json:"served"`
	Failed     int64 `json:"failed"`
	Overloaded int64 `json:"overloaded"`

	Engines []EngineHealth `json:"engines"`
}

// Health snapshots the server state. Counters are read without a
// global pause, so the snapshot is consistent per field, not across
// fields — fine for monitoring, which is its only purpose.
func (s *Server) Health() Health {
	s.mu.Lock()
	draining, active := s.draining, s.active
	s.mu.Unlock()
	h := Health{
		Draining:       draining,
		Degradation:    s.ctrl.current().String(),
		InFlight:       active,
		Running:        s.running.Load(),
		Workers:        s.opts.Workers,
		QueueCapacity:  cap(s.slots),
		PoolInUse:      s.pool.InUse(),
		PoolCapacity:   s.pool.Capacity(),
		PoolHeadroom:   s.pool.Headroom(),
		CacheEntries:   s.cache.len(),
		CacheCapacity:  s.opts.CacheEntries,
		CacheHits:      s.cache.hits.Load(),
		CacheMisses:    s.cache.misses.Load(),
		CacheEvictions: s.cache.evictions.Load(),
		Deduped:        s.flights.deduped.Load(),
		Admitted:       s.admitted.Load(),
		Served:         s.served.Load(),
		Failed:         s.failed.Load(),
		Overloaded:     s.overloaded.Load(),
	}
	for _, m := range s.opts.Engines {
		b := s.breakers[m]
		h.Engines = append(h.Engines, EngineHealth{
			Engine: m.String(),
			State:  b.State().String(),
			Streak: b.Streak(),
			Trips:  b.Trips(),
		})
	}
	return h
}

// BreakerState returns the named engine's breaker state, or "" for an
// engine the server does not run. Tests and health probes use it.
func (s *Server) BreakerState(m string) string {
	for method, b := range s.breakers {
		if method.String() == m {
			return b.State().String()
		}
	}
	return ""
}
