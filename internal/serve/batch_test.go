package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/sdfio"
)

// batchBody marshals a batch payload for the wire-level tests.
func batchBody(t *testing.T, p BatchRequestPayload) string {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBatchPartialFailureIsolation is the acceptance scenario of batch
// serving, in-process: a batch holding a panicking item, a
// budget-exploding item, a structurally malformed item and three healthy
// graphs yields exactly three verified answers and exactly three
// per-item error entries with the right kinds — in request order, with
// no batch-wide failure.
func TestBatchPartialFailureIsolation(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{AllowInjection: true})
	defer s.Close()

	explosive, err := gen.ExponentialChain(30)
	if err != nil {
		t.Fatal(err)
	}
	explosiveText := sdfio.TextString(explosive)

	fig2 := graphTextOf(t, "figure2")
	payload := BatchRequestPayload{
		DeadlineMS: 30_000,
		Items: []RequestPayload{
			{GraphText: fig2, Method: "hedged"},
			// Panics at every statespace checkpoint: the engine fails,
			// the item reports it, nothing else notices.
			{GraphText: fig2, Method: "statespace",
				Inject: []InjectPayload{{Engine: "statespace", Mode: "panic", Times: -1}}},
			{GraphText: fig2, Method: "matrix"},
			// Explodes its tiny work budget before producing an answer.
			{GraphText: explosiveText, Method: "hedged", Budget: 1000},
			// Structurally malformed: fails the wire decode, never runs.
			{GraphText: "sdf broken\nactor"},
			{GraphText: fig2, Method: "hsdf"},
		},
	}
	breq, err := DecodeBatchRequest([]byte(batchBody(t, payload)))
	if err != nil {
		t.Fatalf("DecodeBatchRequest: %v", err)
	}
	res, err := s.AnalyzeBatch(context.Background(), breq)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}

	if res.Kind != "partial" || res.OK != 3 || res.Errors != 3 {
		t.Fatalf("batch = kind %q ok %d errors %d, want partial 3 3", res.Kind, res.OK, res.Errors)
	}
	if len(res.Items) != len(payload.Items) {
		t.Fatalf("got %d entries, want %d", len(res.Items), len(payload.Items))
	}
	wantKinds := map[int]string{1: "engine", 3: "budget", 4: "bad-request"}
	for i, it := range res.Items {
		if it.Index != i {
			t.Errorf("entry %d carries index %d; results must come back in request order", i, it.Index)
		}
		if kind, bad := wantKinds[i]; bad {
			if it.Status != "item-error" || it.Error == nil || it.Error.Kind != kind {
				t.Errorf("item %d = status %q error %+v, want item-error kind %q", i, it.Status, it.Error, kind)
			}
			continue
		}
		if it.Status != "ok" || it.Error != nil || it.Result == nil {
			t.Fatalf("item %d = status %q error %+v, want ok", i, it.Status, it.Error)
		}
		if !it.Result.Verified || it.Result.Certificate == "" || it.Result.Period == "" {
			t.Errorf("item %d answered without a checkable certificate: %+v", i, it.Result)
		}
		if it.Graph != "figure2" {
			t.Errorf("item %d graph = %q, want figure2", i, it.Graph)
		}
	}
}

// TestBatchComplete: a batch of only healthy items is "complete" with
// every entry verified.
func TestBatchComplete(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	fig2 := graphTextOf(t, "figure2")
	breq, err := DecodeBatchRequest([]byte(batchBody(t, BatchRequestPayload{
		Items: []RequestPayload{
			{GraphText: fig2, Method: "hedged"},
			{GraphText: fig2, Method: "matrix"},
		},
	})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.AnalyzeBatch(context.Background(), breq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "complete" || res.OK != 2 || res.Errors != 0 {
		t.Fatalf("batch = kind %q ok %d errors %d, want complete 2 0", res.Kind, res.OK, res.Errors)
	}
	for i, it := range res.Items {
		if it.Status != "ok" || it.Result == nil || !it.Result.Verified {
			t.Errorf("item %d = %+v, want a verified ok entry", i, it)
		}
	}
}

// TestDecodeBatchRequest pins the split between batch-level refusals and
// per-item isolation.
func TestDecodeBatchRequest(t *testing.T) {
	fig2 := graphTextOf(t, "figure2")

	t.Run("per-item isolation", func(t *testing.T) {
		breq, err := DecodeBatchRequest([]byte(
			`{"items":[{"graph_text":` + string(mustJSON(t, fig2)) + `},{"graph_text":"sdf x\nbogus"},{"method":"oracle"}]}`))
		if err != nil {
			t.Fatalf("batch-level error for item failures: %v", err)
		}
		if breq.Items[0].Err != nil || breq.Items[0].Req == nil {
			t.Errorf("healthy item decoded to %+v", breq.Items[0])
		}
		for i := 1; i < 3; i++ {
			if breq.Items[i].Err == nil || breq.Items[i].Req != nil {
				t.Errorf("broken item %d decoded to %+v, want per-item error", i, breq.Items[i])
			}
			if KindOf(breq.Items[i].Err) != "bad-request" {
				t.Errorf("broken item %d kind = %q", i, KindOf(breq.Items[i].Err))
			}
		}
	})

	t.Run("batch-level refusals", func(t *testing.T) {
		for name, body := range map[string]string{
			"not json":      `{`,
			"trailing":      `{"items":[{"graph_text":"x"}]} {}`,
			"empty":         `{"items":[]}`,
			"no items":      `{}`,
			"neg deadline":  `{"items":[{"graph_text":"x"}],"deadline_ms":-1}`,
			"unknown field": `{"items":[],"bogus":1}`,
		} {
			if _, err := DecodeBatchRequest([]byte(body)); err == nil || KindOf(err) != "bad-request" {
				t.Errorf("%s: err = %v, want a bad-request batch refusal", name, err)
			}
		}
		big := make([]byte, maxBatchRequestBytes+1)
		if _, err := DecodeBatchRequest(big); err == nil || KindOf(err) != "too-large" {
			t.Errorf("oversized batch: KindOf = %q, want too-large", KindOf(err))
		}
		items := `{"graph_text":"x"}`
		over := `{"items":[` + items + strings.Repeat(","+items, maxBatchItems) + `]}`
		if _, err := DecodeBatchRequest([]byte(over)); err == nil || KindOf(err) != "bad-request" {
			t.Errorf("item-count overflow: err = %v, want bad-request", err)
		}
	})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPlanBatchOrdering: failed items sort first (their error entries
// are free), then real work cheapest-first so a blown deadline strands
// the fewest answers.
func TestPlanBatchOrdering(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()

	breq := &BatchRequest{Items: []BatchItem{
		{Req: figure2Request(t, "matrix")},
		{Err: ErrBadRequest},
		{Req: figure2Request(t, "hedged")},
	}}
	plan := s.planBatch(breq)
	if len(plan) != 3 {
		t.Fatalf("plan has %d items", len(plan))
	}
	if plan[0].index != 1 || plan[0].err == nil || plan[0].cost != 0 {
		t.Errorf("plan[0] = index %d err %v cost %d, want the failed item first at zero cost",
			plan[0].index, plan[0].err, plan[0].cost)
	}
	if plan[1].cost <= 0 || plan[2].cost < plan[1].cost {
		t.Errorf("costs = %d then %d, want ascending positive", plan[1].cost, plan[2].cost)
	}
	for _, pi := range plan[1:] {
		if pi.err != nil {
			t.Errorf("healthy item %d planned with error %v", pi.index, pi.err)
		}
	}
}

// TestCarveBudget pins the deadline-carving arithmetic.
func TestCarveBudget(t *testing.T) {
	cases := []struct {
		remaining time.Duration
		left      int
		workers   int
		want      time.Duration
	}{
		// 10 items over 2 workers = 5 waves of the 1s window.
		{time.Second, 10, 2, 200 * time.Millisecond},
		// One wave: the whole window.
		{time.Second, 4, 8, time.Second},
		// The floor keeps microscopic slices from thrashing...
		{time.Second, 1000, 1, batchItemFloor},
		// ...but never exceeds the window that is actually left.
		{10 * time.Millisecond, 100, 1, 10 * time.Millisecond},
		{0, 5, 4, 0},
		{-time.Second, 5, 4, 0},
		// Degenerate inputs clamp instead of dividing by zero.
		{time.Second, 0, 0, time.Second},
	}
	for _, c := range cases {
		if got := carveBudget(c.remaining, c.left, c.workers); got != c.want {
			t.Errorf("carveBudget(%v, %d, %d) = %v, want %v", c.remaining, c.left, c.workers, got, c.want)
		}
	}
}

// TestItemStatusAndBatchKind pins the batch wire vocabulary the sdfvet
// kindmap check cross-references against sdftool's exit-code table.
func TestItemStatusAndBatchKind(t *testing.T) {
	if got := ItemStatusOf(nil, ErrBadRequest); got != "item-error" {
		t.Errorf("ItemStatusOf(err) = %q", got)
	}
	if got := ItemStatusOf(nil, nil); got != "item-error" {
		t.Errorf("ItemStatusOf(nil result) = %q", got)
	}
	if got := ItemStatusOf(&ResultPayload{Degradation: "bounded"}, nil); got != "bounded" {
		t.Errorf("ItemStatusOf(bounded) = %q", got)
	}
	if got := ItemStatusOf(&ResultPayload{Degradation: "stale-cache"}, nil); got != "degraded" {
		t.Errorf("ItemStatusOf(stale) = %q", got)
	}
	if got := ItemStatusOf(&ResultPayload{}, nil); got != "ok" {
		t.Errorf("ItemStatusOf(ok) = %q", got)
	}
	if got := BatchKindOf([]BatchItemResult{{}, {Error: &ErrorPayload{}}}); got != "partial" {
		t.Errorf("BatchKindOf(with error) = %q", got)
	}
	if got := BatchKindOf([]BatchItemResult{{}, {}}); got != "complete" {
		t.Errorf("BatchKindOf(clean) = %q", got)
	}
}

// TestHTTPBatch drives the wire surface: a mixed batch is always HTTP
// 200 with the X-SDF-Batch header naming the kind; batch-level refusals
// keep their usual statuses.
func TestHTTPBatch(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	h := NewHandler(s)

	fig2 := graphTextOf(t, "figure2")
	rec := postJSON(t, h, "/v1/batch", batchBody(t, BatchRequestPayload{
		Items: []RequestPayload{
			{GraphText: fig2},
			{GraphText: "sdf broken\nactor"},
		},
	}))
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed batch status = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-SDF-Batch"); got != "partial" {
		t.Errorf("X-SDF-Batch = %q, want partial", got)
	}
	var res BatchResultPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "partial" || res.OK != 1 || res.Errors != 1 {
		t.Errorf("batch = %q ok %d errors %d, want partial 1 1", res.Kind, res.OK, res.Errors)
	}

	rec = postJSON(t, h, "/v1/batch", `{"items":[]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", rec.Code)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = postJSON(t, h, "/v1/batch", batchBody(t, BatchRequestPayload{
		Items: []RequestPayload{{GraphText: fig2}},
	}))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining batch status = %d, want 503", rec.Code)
	}
	var ep ErrorPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Kind != "draining" {
		t.Errorf("draining kind = %q", ep.Kind)
	}
}
