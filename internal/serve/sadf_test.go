package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rat"
	"repro/internal/sdfio"
)

// sadfModelText is the two-scenario quickstart model: a producer ring
// A⇄B with one token per direction, run in a cheap scenario lo
// (A=1, B=2) and an expensive one hi (A=5, B=3), FSM free to stay in or
// switch between them. The ring holds two tokens, so the worst-case
// period is the hi scenario's cycle mean (5+3)/2 = 4.
const sadfModelText = `sadf wlan
scenario lo
actor A 1
actor B 2
chan A B 1 1 1
chan B A 1 1 1
scenario hi
actor A 5
actor B 3
chan A B 1 1 1
chan B A 1 1 1
state slo lo
state shi hi
trans slo shi
trans shi slo
trans slo slo
trans shi shi
initial slo
`

func sadfRequestOf(t *testing.T, text string) *SADFRequest {
	t.Helper()
	body, err := json.Marshal(SADFRequestPayload{ModelText: text})
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeSADFRequest(body)
	if err != nil {
		t.Fatalf("DecodeSADFRequest: %v", err)
	}
	return req
}

// TestSADFServeExact is the in-process happy path: a two-scenario model
// answers with the certified worst-case period, the certificate
// re-checks against an independent parse of the model, and the second
// identical request is a cache hit.
func TestSADFServeExact(t *testing.T) {
	defer noLeaks(t)
	reg := obs.New()
	s := New(Options{Obs: reg})
	defer s.Close()

	req := sadfRequestOf(t, sadfModelText)
	res, err := s.AnalyzeSADF(context.Background(), req)
	if err != nil {
		t.Fatalf("AnalyzeSADF: %v", err)
	}
	if res.Unbounded || res.Period != "4" || res.PeriodNum != 4 || res.PeriodDen != 1 {
		t.Fatalf("period = %q (%d/%d, unbounded=%v), want 4",
			res.Period, res.PeriodNum, res.PeriodDen, res.Unbounded)
	}
	if !res.Verified || res.Cert == nil || res.Certificate == "" {
		t.Fatalf("answer not certified: verified=%v cert=%v", res.Verified, res.Cert)
	}
	if res.Scenarios != 2 || res.States != 2 || res.Tokens != 2 {
		t.Errorf("shape = %d scenarios %d states %d tokens, want 2 2 2", res.Scenarios, res.States, res.Tokens)
	}
	if res.AutomatonNodes != 4 {
		t.Errorf("automaton nodes = %d, want 2 states × 2 tokens = 4", res.AutomatonNodes)
	}
	if len(res.Critical) == 0 {
		t.Errorf("no critical states reported")
	}

	// The client-side check: rebuild the certificate from the wire
	// payload against an independent parse of the same model and
	// re-verify — exactly what sdftool -verify does behind the fleet.
	m, err := sdfio.ParseSADFText(sadfModelText)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := res.Cert.Cert(m)
	if err != nil {
		t.Fatalf("rebuilding certificate from payload: %v", err)
	}
	graphs, err := res.Cert.CertGraphs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Check(context.Background(), graphs); err != nil {
		t.Fatalf("rebuilt certificate rejected: %v", err)
	}
	if !cert.Period.Equal(rat.FromInt(4)) {
		t.Errorf("rebuilt certificate period = %v, want 4", cert.Period)
	}

	// Identical request → cache hit, still verified (render re-checks).
	res2, err := s.AnalyzeSADF(context.Background(), sadfRequestOf(t, sadfModelText))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || !res2.Verified || res2.Period != "4" {
		t.Errorf("second answer = cached %v verified %v period %q, want a verified cache hit",
			res2.Cached, res2.Verified, res2.Period)
	}
	if got := reg.Counter(obs.MetricSADFRequests, "outcome", "served").Value(); got != 2 {
		t.Errorf("served counter = %d, want 2", got)
	}
	if got := reg.Counter(obs.MetricSADFAutomatonNodes).Value(); got != 4 {
		t.Errorf("automaton nodes counter = %d, want 4 (analysed once, cached once)", got)
	}
}

// TestSADFErrorKinds pins the sadf error taxonomy: structural model
// errors are sadf-model (400), scenario graphs failing analysis
// preconditions are sadf-scenario (422), transport errors keep the
// shared kinds.
func TestSADFErrorKinds(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()

	// Unknown scenario reference: a structural model error.
	_, err := DecodeSADFRequest([]byte(`{"model_text":"sadf x\nscenario a\nactor A 1\nchan A A 1 1 1\nstate s nosuch\ninitial s\n"}`))
	if kind := SADFKindOf(err); kind != "sadf-model" || sadfStatusOf(kind) != http.StatusBadRequest {
		t.Errorf("dangling scenario ref: kind %q status %d, want sadf-model 400", kind, sadfStatusOf(kind))
	}

	// Rate-inconsistent scenario: passes model validation (structure is
	// fine) but fails the analysis precheck.
	req := sadfRequestOf(t, `sadf bad
scenario a
actor A 1
actor B 1
chan A B 2 1 1
chan B A 1 1 1
state s a
trans s s
initial s
`)
	_, err = s.AnalyzeSADF(context.Background(), req)
	if kind := SADFKindOf(err); kind != "sadf-scenario" || sadfStatusOf(kind) != http.StatusUnprocessableEntity {
		t.Errorf("inconsistent scenario: err %v kind %q, want sadf-scenario 422", err, kind)
	}

	// Transport-shape failures stay bad-request.
	for name, body := range map[string]string{
		"no model":   `{}`,
		"both":       `{"model_text":"x","model":{}}`,
		"bad json":   `{`,
		"neg timeout": `{"model_text":"x","timeout_ms":-1}`,
	} {
		if _, err := DecodeSADFRequest([]byte(body)); SADFKindOf(err) != "bad-request" {
			t.Errorf("%s: kind = %q, want bad-request", name, SADFKindOf(err))
		}
	}
}

// TestHTTPSADF drives the wire surface end to end: POST /v1/sadf
// answers 200 with a payload whose certificate a client can rebuild and
// re-check; a broken model is a 400 with kind sadf-model.
func TestHTTPSADF(t *testing.T) {
	defer noLeaks(t)
	s := New(Options{})
	defer s.Close()
	h := NewHandler(s)

	body, err := json.Marshal(SADFRequestPayload{ModelText: sadfModelText})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, h, "/v1/sadf", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	var res SADFResultPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Period != "4" || !res.Verified || res.Cert == nil {
		t.Fatalf("wire answer = %+v, want verified period 4 with certificate", res)
	}
	m, err := sdfio.ParseSADFText(sadfModelText)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := res.Cert.Cert(m)
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := res.Cert.CertGraphs(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Check(context.Background(), graphs); err != nil {
		t.Fatalf("wire certificate rejected after JSON round trip: %v", err)
	}

	rec = postJSON(t, h, "/v1/sadf", `{"model_text":"sadf broken\nscenario"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("broken model status = %d, want 400", rec.Code)
	}
	var ep ErrorPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Kind != "sadf-model" {
		t.Errorf("broken model kind = %q, want sadf-model", ep.Kind)
	}
}

// TestSADFDegradedLadder walks the brownout ladder: at LevelBounded a
// fresh model gets the certified-by-construction per-scenario-worst
// bound (serial makespan above, self-loop period floor below, never
// marked Verified); an exact-only request is refused; at LevelShed a
// previously cached exact answer is served stale while a cold key is
// shed.
func TestSADFDegradedLadder(t *testing.T) {
	defer noLeaks(t)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := New(Options{CacheTTL: time.Second})
	defer s.Close()
	s.cache.now = clk.Now

	forceLevel(s, LevelBounded)
	res, err := s.AnalyzeSADF(context.Background(), sadfRequestOf(t, sadfModelText))
	if err != nil {
		t.Fatalf("bounded answer: %v", err)
	}
	if res.Degradation != "bounded" || res.Verified {
		t.Fatalf("bounded answer = degradation %q verified %v", res.Degradation, res.Verified)
	}
	// Upper: hi's serial makespan 5+3 = 8 covers the true period 4. No
	// lower bound: the ring has no delayed channel self-loop, so the
	// only sound cheap floor is the degenerate zero, which is omitted.
	if res.Period != "8" {
		t.Errorf("bounded upper = %q, want serial makespan 8", res.Period)
	}
	if res.PeriodLower != "" {
		t.Errorf("bounded lower = %q for a model with no self-loop floor, want none", res.PeriodLower)
	}

	// A model with a delayed channel self-loop gets the full enclosure:
	// scenario hi self-loops in the FSM, so its period floor (6) anchors
	// from below while its serial makespan (6) bounds from above.
	looped := sadfRequestOf(t, `sadf looped
scenario lo
actor A 1
chan A A 1 1 1
scenario hi
actor A 6
chan A A 1 1 1
state slo lo
state shi hi
trans slo shi
trans shi slo
trans shi shi
initial slo
`)
	res, err = s.AnalyzeSADF(context.Background(), looped)
	if err != nil {
		t.Fatalf("bounded answer (looped): %v", err)
	}
	if res.Degradation != "bounded" || res.Period != "6" || res.PeriodLower != "6" {
		t.Errorf("looped enclosure = [%q, %q] at %q, want [6, 6] bounded",
			res.PeriodLower, res.Period, res.Degradation)
	}
	lower, err := rat.New(res.PeriodLowerNum, res.PeriodLowerDen)
	if err != nil {
		t.Fatal(err)
	}
	if !lower.Equal(rat.FromInt(6)) {
		t.Errorf("looped lower = %v, want 6", lower)
	}

	// Exact-only refuses the degraded answer.
	exact := sadfRequestOf(t, sadfModelText)
	exact.ExactOnly = true
	if _, err := s.AnalyzeSADF(context.Background(), exact); SADFKindOf(err) != "degraded" {
		t.Errorf("exact-only under brownout: err %v, want degraded", err)
	}

	// Warm the cache at full fidelity, expire it, then shed: the stale
	// exact answer still serves (marked stale), a cold model is shed.
	forceLevel(s, LevelExact)
	if _, err := s.AnalyzeSADF(context.Background(), sadfRequestOf(t, sadfModelText)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	forceLevel(s, LevelShed)
	res, err = s.AnalyzeSADF(context.Background(), sadfRequestOf(t, sadfModelText))
	if err != nil {
		t.Fatalf("stale serve under shed: %v", err)
	}
	if !res.Stale || res.Degradation != LevelStale.String() || !res.Verified {
		t.Errorf("stale answer = stale %v degradation %q verified %v", res.Stale, res.Degradation, res.Verified)
	}
	cold := sadfRequestOf(t, `sadf cold
scenario only
actor A 1
chan A A 1 1 1
state s only
trans s s
initial s
`)
	if _, err := s.AnalyzeSADF(context.Background(), cold); SADFKindOf(err) != "degraded" {
		t.Errorf("cold key under shed: err %v, want degraded refusal", err)
	}
}

// TestBatchCrossItemDedup: identical canonical keys inside one batch
// analyse once; duplicates are filled from the leader's answer, marked
// Deduped, and counted on the dedup metric.
func TestBatchCrossItemDedup(t *testing.T) {
	defer noLeaks(t)
	reg := obs.New()
	s := New(Options{Obs: reg})
	defer s.Close()

	fig2 := graphTextOf(t, "figure2")
	breq, err := DecodeBatchRequest([]byte(batchBody(t, BatchRequestPayload{
		Items: []RequestPayload{
			{GraphText: fig2, Method: "matrix"},
			{GraphText: fig2, Method: "hsdf"},   // different key: no dedup
			{GraphText: fig2, Method: "matrix"}, // duplicate of item 0
			{GraphText: fig2, Method: "matrix"}, // duplicate of item 0
		},
	})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.AnalyzeBatch(context.Background(), breq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "complete" || res.OK != 4 {
		t.Fatalf("batch = %q ok %d errors %d, want complete 4 0", res.Kind, res.OK, res.Errors)
	}
	for i, it := range res.Items {
		if it.Status != "ok" || it.Result == nil || !it.Result.Verified {
			t.Fatalf("item %d = %+v, want a verified ok entry", i, it)
		}
	}
	if res.Items[0].Result.Deduped || res.Items[1].Result.Deduped {
		t.Errorf("leader entries marked deduped")
	}
	for _, i := range []int{2, 3} {
		if !res.Items[i].Result.Deduped {
			t.Errorf("item %d not marked deduped", i)
		}
		if res.Items[i].Result.Period != res.Items[0].Result.Period {
			t.Errorf("item %d period %q differs from its leader's %q",
				i, res.Items[i].Result.Period, res.Items[0].Result.Period)
		}
	}
	if got := reg.Counter(obs.MetricBatchDedupItems).Value(); got != 2 {
		t.Errorf("dedup counter = %d, want 2", got)
	}
	if got := reg.Counter(obs.MetricBatchItems, "status", "ok").Value(); got != 4 {
		t.Errorf("item counter = %d, want all 4 items counted", got)
	}
}
