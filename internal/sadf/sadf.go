// Package sadf implements FSM-SADF: scenario-aware dataflow analysis in
// the style of Skelin & Geilen (arXiv 1404.0089). A model is a finite
// set of scenarios — each an SDF graph over a shared actor namespace
// whose initial tokens agree channel-for-channel — together with a
// finite-state machine whose states are labeled with scenarios. An
// execution picks an infinite run of the FSM and executes each visited
// state's scenario for one graph iteration, self-timed; the worst-case
// iteration period over all runs is the maximum cycle mean of the
// max-plus automaton built from the per-scenario (max,+) matrices.
//
// The matrices come from the paper's own symbolic-iteration machinery
// (internal/core), the cycle mean from Howard's policy iteration
// (internal/mcm), and every answer ships with a verify.SADFCert whose
// witnesses an independent checker replays in exact arithmetic.
package sadf

import (
	"fmt"

	"repro/internal/sdf"
	"repro/internal/verify"
)

// Scenario is one operating mode: a named SDF graph.
type Scenario struct {
	Name  string
	Graph *sdf.Graph
}

// State is one FSM state, labeled with the scenario the system executes
// while in it.
type State struct {
	Name     string
	Scenario string
}

// Transition is one FSM edge between named states.
type Transition struct {
	From, To string
}

// Model is a complete FSM-SADF instance.
type Model struct {
	Name        string
	Scenarios   []Scenario
	States      []State
	Transitions []Transition
	Initial     string
}

// ScenarioIndex returns the index of the named scenario.
func (m *Model) ScenarioIndex(name string) (int, bool) {
	for i, s := range m.Scenarios {
		if s.Name == name {
			return i, true
		}
	}
	return 0, false
}

// StateIndex returns the index of the named state.
func (m *Model) StateIndex(name string) (int, bool) {
	for i, s := range m.States {
		if s.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Tokens returns the shared initial-token count of the scenarios. Valid
// models have the same count in every scenario.
func (m *Model) Tokens() int {
	if len(m.Scenarios) == 0 {
		return 0
	}
	return m.Scenarios[0].Graph.TotalInitialTokens()
}

// indices flattens the FSM to index form: per-state scenario indices,
// (from, to) transition pairs and the initial state. Valid only after
// Validate.
func (m *Model) indices() (stateScenario []int, transitions [][2]int, initial int) {
	stateScenario = make([]int, len(m.States))
	for q, st := range m.States {
		stateScenario[q], _ = m.ScenarioIndex(st.Scenario)
	}
	transitions = make([][2]int, len(m.Transitions))
	for i, tr := range m.Transitions {
		from, _ := m.StateIndex(tr.From)
		to, _ := m.StateIndex(tr.To)
		transitions[i] = [2]int{from, to}
	}
	initial, _ = m.StateIndex(m.Initial)
	return stateScenario, transitions, initial
}

// Validate checks the model's structure: at least one scenario and one
// state, unique non-empty names, valid scenario graphs, resolvable
// cross-references, no duplicate transitions, an initial state from
// which every state is reachable, and a shared non-empty token
// signature across all scenarios (the max-plus matrices of the
// scenarios must act on one global token coordinate system).
func (m *Model) Validate() error {
	if len(m.Scenarios) == 0 {
		return fmt.Errorf("sadf: model has no scenarios")
	}
	if len(m.States) == 0 {
		return fmt.Errorf("sadf: model has no FSM states")
	}
	seenScen := make(map[string]bool, len(m.Scenarios))
	for _, s := range m.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("sadf: scenario with empty name")
		}
		if seenScen[s.Name] {
			return fmt.Errorf("sadf: duplicate scenario %q", s.Name)
		}
		seenScen[s.Name] = true
		if s.Graph == nil {
			return fmt.Errorf("sadf: scenario %q has no graph", s.Name)
		}
		if err := s.Graph.Validate(); err != nil {
			return fmt.Errorf("sadf: scenario %q: %w", s.Name, err)
		}
	}
	seenState := make(map[string]bool, len(m.States))
	for _, st := range m.States {
		if st.Name == "" {
			return fmt.Errorf("sadf: state with empty name")
		}
		if seenState[st.Name] {
			return fmt.Errorf("sadf: duplicate state %q", st.Name)
		}
		seenState[st.Name] = true
		if !seenScen[st.Scenario] {
			return fmt.Errorf("sadf: state %q labels unknown scenario %q", st.Name, st.Scenario)
		}
	}
	seenTr := make(map[[2]string]bool, len(m.Transitions))
	for _, tr := range m.Transitions {
		if !seenState[tr.From] || !seenState[tr.To] {
			return fmt.Errorf("sadf: transition %s -> %s references an unknown state", tr.From, tr.To)
		}
		key := [2]string{tr.From, tr.To}
		if seenTr[key] {
			return fmt.Errorf("sadf: duplicate transition %s -> %s", tr.From, tr.To)
		}
		seenTr[key] = true
	}
	if m.Initial == "" {
		return fmt.Errorf("sadf: model has no initial state")
	}
	if !seenState[m.Initial] {
		return fmt.Errorf("sadf: initial state %q is unknown", m.Initial)
	}
	// Every state must be reachable from the initial state: then the
	// analyzer and the certificate checker enumerate the identical
	// automaton with no reachability pruning on either side.
	adj := make(map[string][]string, len(m.States))
	for _, tr := range m.Transitions {
		adj[tr.From] = append(adj[tr.From], tr.To)
	}
	reached := map[string]bool{m.Initial: true}
	stack := []string{m.Initial}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range adj[q] {
			if !reached[to] {
				reached[to] = true
				stack = append(stack, to)
			}
		}
	}
	for _, st := range m.States {
		if !reached[st.Name] {
			return fmt.Errorf("sadf: state %q is unreachable from initial state %q", st.Name, m.Initial)
		}
	}
	sig := verify.SADFTokenSignature(m.Scenarios[0].Graph)
	if sig == "" {
		return fmt.Errorf("sadf: scenario %q carries no initial tokens", m.Scenarios[0].Name)
	}
	for _, s := range m.Scenarios[1:] {
		if verify.SADFTokenSignature(s.Graph) != sig {
			return fmt.Errorf("sadf: scenario %q does not share the initial-token signature of %q (same src->dst channels with the same token counts required)",
				s.Name, m.Scenarios[0].Name)
		}
	}
	return nil
}

// Graphs returns the scenario graphs in scenario order.
func (m *Model) Graphs() []*sdf.Graph {
	out := make([]*sdf.Graph, len(m.Scenarios))
	for i, s := range m.Scenarios {
		out[i] = s.Graph
	}
	return out
}

// ScenarioNames returns the scenario names in scenario order.
func (m *Model) ScenarioNames() []string {
	out := make([]string, len(m.Scenarios))
	for i, s := range m.Scenarios {
		out[i] = s.Name
	}
	return out
}

// StateNames returns the state names in state order.
func (m *Model) StateNames() []string {
	out := make([]string, len(m.States))
	for i, s := range m.States {
		out[i] = s.Name
	}
	return out
}
