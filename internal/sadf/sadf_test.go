package sadf

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/maxplus"
	"repro/internal/rat"
	"repro/internal/sdf"
	"repro/internal/verify"
)

// twoScenarioModel is the running example of the docs: two actors in a
// ring with one token per channel, a "lo" scenario with cheap execution
// times and a "hi" scenario with expensive ones, and an FSM that allows
// staying in either scenario or switching.
func twoScenarioModel(t *testing.T) *Model {
	t.Helper()
	lo := sdf.NewGraph("lo")
	lo.MustAddActor("A", 1)
	lo.MustAddActor("B", 2)
	lo.MustAddChannelByName("A", "B", 1, 1, 1)
	lo.MustAddChannelByName("B", "A", 1, 1, 1)
	hi := sdf.NewGraph("hi")
	hi.MustAddActor("A", 5)
	hi.MustAddActor("B", 3)
	hi.MustAddChannelByName("A", "B", 1, 1, 1)
	hi.MustAddChannelByName("B", "A", 1, 1, 1)
	return &Model{
		Name:      "demo",
		Scenarios: []Scenario{{Name: "lo", Graph: lo}, {Name: "hi", Graph: hi}},
		States: []State{
			{Name: "slo", Scenario: "lo"},
			{Name: "shi", Scenario: "hi"},
		},
		Transitions: []Transition{
			{From: "slo", To: "slo"}, {From: "slo", To: "shi"},
			{From: "shi", To: "slo"}, {From: "shi", To: "shi"},
		},
		Initial: "slo",
	}
}

func TestAnalyzeTwoScenarios(t *testing.T) {
	m := twoScenarioModel(t)
	res, cert, err := Analyze(context.Background(), m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Unbounded {
		t.Fatalf("two-scenario ring reported unbounded")
	}
	// The hi scenario may repeat forever (self-loop on shi), so the
	// worst case is hi's own eigenvalue: the ring A(5),B(3) carries two
	// tokens, so its maximum cycle mean is (5+3)/2 = 4.
	want := rat.FromInt(4)
	if !res.Period.Equal(want) {
		t.Fatalf("worst-case period = %v, want %v", res.Period, want)
	}
	if cert == nil {
		t.Fatalf("Analyze returned no certificate")
	}
	if err := cert.Check(context.Background(), m.Graphs()); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	if len(res.CriticalStates) == 0 {
		t.Fatalf("no critical scenario sequence reported")
	}
}

func TestAnalyzeUnboundedFSM(t *testing.T) {
	m := twoScenarioModel(t)
	// Only slo -> shi remains: the FSM is acyclic, no infinite run
	// exists, nothing constrains the steady state.
	m.Transitions = []Transition{{From: "slo", To: "shi"}}
	res, cert, err := Analyze(context.Background(), m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Unbounded {
		t.Fatalf("acyclic FSM not reported unbounded, period %v", res.Period)
	}
	if err := cert.Check(context.Background(), m.Graphs()); err != nil {
		t.Fatalf("unbounded certificate rejected: %v", err)
	}
}

func TestAnalyzeMultiRateScenario(t *testing.T) {
	// One scenario is multi-rate (A produces 2 per firing, B consumes
	// 1, so q = (1, 2)); the token signature still matches the HSDF
	// scenario, exercising the general symbolic-iteration path.
	multi := sdf.NewGraph("multi")
	multi.MustAddActor("A", 2)
	multi.MustAddActor("B", 1)
	multi.MustAddChannelByName("A", "B", 2, 1, 1)
	multi.MustAddChannelByName("B", "A", 1, 2, 1)
	hsdf := sdf.NewGraph("hsdf")
	hsdf.MustAddActor("A", 3)
	hsdf.MustAddActor("B", 4)
	hsdf.MustAddChannelByName("A", "B", 1, 1, 1)
	hsdf.MustAddChannelByName("B", "A", 1, 1, 1)
	m := &Model{
		Name:      "mixed",
		Scenarios: []Scenario{{Name: "m", Graph: multi}, {Name: "h", Graph: hsdf}},
		States: []State{
			{Name: "qm", Scenario: "m"},
			{Name: "qh", Scenario: "h"},
		},
		Transitions: []Transition{
			{From: "qm", To: "qh"}, {From: "qh", To: "qm"},
			{From: "qm", To: "qm"}, {From: "qh", To: "qh"},
		},
		Initial: "qm",
	}
	res, cert, err := Analyze(context.Background(), m)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Unbounded {
		t.Fatalf("mixed model reported unbounded")
	}
	if err := cert.Check(context.Background(), m.Graphs()); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	brute, has := bruteForcePeriod(t, m, 12)
	if !has {
		t.Fatalf("brute force found no cycle")
	}
	if !res.Period.Equal(brute) {
		t.Fatalf("automaton period %v, brute force %v", res.Period, brute)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no scenarios", func(m *Model) { m.Scenarios = nil }},
		{"no states", func(m *Model) { m.States = nil }},
		{"duplicate scenario", func(m *Model) { m.Scenarios = append(m.Scenarios, m.Scenarios[0]) }},
		{"duplicate state", func(m *Model) { m.States = append(m.States, m.States[0]) }},
		{"unknown scenario ref", func(m *Model) { m.States[0].Scenario = "missing" }},
		{"unknown transition ref", func(m *Model) { m.Transitions[0].To = "missing" }},
		{"duplicate transition", func(m *Model) { m.Transitions = append(m.Transitions, m.Transitions[0]) }},
		{"unknown initial", func(m *Model) { m.Initial = "missing" }},
		{"empty initial", func(m *Model) { m.Initial = "" }},
		{"unreachable state", func(m *Model) {
			m.Transitions = []Transition{{From: "slo", To: "slo"}}
		}},
		{"token signature mismatch", func(m *Model) {
			g := sdf.NewGraph("odd")
			g.MustAddActor("A", 1)
			g.MustAddActor("B", 1)
			g.MustAddChannelByName("A", "B", 1, 1, 2)
			g.MustAddChannelByName("B", "A", 1, 1, 1)
			m.Scenarios[1].Graph = g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := twoScenarioModel(t)
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatalf("Validate accepted a broken model")
			}
		})
	}
}

func TestCertTamperDetected(t *testing.T) {
	m := twoScenarioModel(t)
	ctx := context.Background()
	graphs := m.Graphs()
	tamper := []struct {
		name   string
		mutate func(c *verify.SADFCert)
	}{
		{"period", func(c *verify.SADFCert) { c.Period = rat.FromInt(7) }},
		{"matrix entry", func(c *verify.SADFCert) {
			mat := c.Matrices[0].Matrix.Clone()
			for i := 0; i < mat.Size(); i++ {
				for j := 0; j < mat.Size(); j++ {
					if !mat.At(i, j).IsNegInf() {
						mat.Set(i, j, mat.At(i, j).Add(maxplus.FromInt(1)))
						c.Matrices[0] = &verify.MatrixCert{Matrix: mat, Schedule: c.Matrices[0].Schedule}
						return
					}
				}
			}
		}},
		{"cycle witness", func(c *verify.SADFCert) { c.Cycle = c.Cycle[:len(c.Cycle)-1] }},
		{"potentials", func(c *verify.SADFCert) { c.Potentials = c.Potentials[:len(c.Potentials)-1] }},
		{"unbounded flag", func(c *verify.SADFCert) { c.Unbounded = true }},
		{"scenario label", func(c *verify.SADFCert) { c.StateScenario[1] = 0 }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			_, cert, err := Analyze(ctx, m)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			tc.mutate(cert)
			if err := cert.Check(ctx, graphs); err == nil {
				t.Fatalf("tampered certificate (%s) accepted", tc.name)
			}
		})
	}
}

// bruteForcePeriod enumerates every closed FSM walk of length ≤ k and
// computes the maximum over walks of the maximal diagonal entry of the
// max-plus product of the visited scenarios' matrices (in global token
// coordinates), divided by the walk length. Since every automaton cycle
// projects to a closed FSM walk and every finite diagonal entry of a
// product is an automaton cycle, this equals the automaton's maximum
// cycle mean whenever k is at least the automaton node count.
func bruteForcePeriod(t *testing.T, m *Model, k int) (rat.Rat, bool) {
	t.Helper()
	mats := make([]*maxplus.Matrix, len(m.Scenarios))
	for i, s := range m.Scenarios {
		sym, err := core.SymbolicIterationCtx(context.Background(), s.Graph)
		if err != nil {
			t.Fatalf("symbolic iteration of scenario %q: %v", s.Name, err)
		}
		mats[i] = sym.Matrix.Permute(verify.SADFTokenPerm(s.Graph))
	}
	stateScenario, transitions, _ := m.indices()
	succ := make([][]int, len(m.States))
	for _, tr := range transitions {
		succ[tr[0]] = append(succ[tr[0]], tr[1])
	}
	n := mats[0].Size()
	best := rat.Zero()
	has := false
	var walk func(start, at, depth int, prod *maxplus.Matrix)
	walk = func(start, at, depth int, prod *maxplus.Matrix) {
		if depth > 0 && at == start {
			for i := 0; i < n; i++ {
				if d := prod.At(i, i); !d.IsNegInf() {
					mean := rat.MustNew(d.Int(), int64(depth))
					if !has || mean.Cmp(best) > 0 {
						best = mean
						has = true
					}
				}
			}
		}
		if depth == k {
			return
		}
		for _, to := range succ[at] {
			walk(start, to, depth+1, mats[stateScenario[to]].Mul(prod))
		}
	}
	for q := range m.States {
		walk(q, q, 0, maxplus.Identity(n))
	}
	return best, has
}

// TestAutomatonMatchesBruteForce is the property test of the worst-case
// analysis: on small random FSM-SADF instances the automaton's maximum
// cycle mean must equal brute-force enumeration of all scenario
// sequences up to length k, in exact rational arithmetic.
func TestAutomatonMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	valid := 0
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng)
		if err := m.Validate(); err != nil {
			continue
		}
		res, cert, err := Analyze(context.Background(), m)
		if err != nil {
			t.Fatalf("trial %d: Analyze rejected a valid model: %v", trial, err)
		}
		valid++
		// k must reach every simple automaton cycle: nodes = states·tokens.
		k := len(m.States) * m.Tokens()
		brute, has := bruteForcePeriod(t, m, k)
		if res.Unbounded != !has {
			t.Fatalf("trial %d: automaton unbounded=%v, brute force found cycle=%v\nmodel: %+v",
				trial, res.Unbounded, has, m)
		}
		if has && !res.Period.Equal(brute) {
			t.Fatalf("trial %d: automaton period %v != brute force %v\nmodel: %+v",
				trial, res.Period, brute, m)
		}
		if err := cert.Check(context.Background(), m.Graphs()); err != nil {
			t.Fatalf("trial %d: certificate rejected: %v", trial, err)
		}
	}
	if valid < 20 {
		t.Fatalf("only %d/60 random models were valid; generator too restrictive", valid)
	}
}

// randomModel builds a small random FSM-SADF instance: a fixed channel
// topology (so all scenarios share the token signature) with random
// token counts, random per-scenario execution times, and a random FSM.
func randomModel(rng *rand.Rand) *Model {
	actors := []string{"A", "B", "C"}[:2+rng.Intn(2)]
	type chanSpec struct {
		src, dst string
		init     int
	}
	// A ring through all actors keeps every scenario strongly
	// connected (symbolic iteration always succeeds); an optional
	// self-loop on the first actor varies the token dimension. Sizes
	// stay small enough that brute force over all FSM walks up to the
	// automaton node count stays cheap.
	var chans []chanSpec
	for i := range actors {
		chans = append(chans, chanSpec{src: actors[i], dst: actors[(i+1)%len(actors)], init: 1})
	}
	if len(actors) == 2 && rng.Intn(2) == 0 {
		chans = append(chans, chanSpec{src: actors[0], dst: actors[0], init: 1})
	}
	nScen := 1 + rng.Intn(2)
	m := &Model{Name: "rand"}
	for s := 0; s < nScen; s++ {
		name := string(rune('u' + s))
		g := sdf.NewGraph(name)
		for _, a := range actors {
			g.MustAddActor(a, int64(rng.Intn(6)))
		}
		for _, c := range chans {
			g.MustAddChannelByName(c.src, c.dst, 1, 1, c.init)
		}
		m.Scenarios = append(m.Scenarios, Scenario{Name: name, Graph: g})
	}
	// Cap automaton nodes (states·tokens) so the brute-force walk
	// enumeration in the property test stays at most ~3^6 walks.
	nStates := 1 + rng.Intn(3)
	if len(chans) > 2 {
		nStates = 1 + rng.Intn(2)
	}
	for q := 0; q < nStates; q++ {
		m.States = append(m.States, State{
			Name:     string(rune('p' + q)),
			Scenario: m.Scenarios[rng.Intn(nScen)].Name,
		})
	}
	for from := 0; from < nStates; from++ {
		for to := 0; to < nStates; to++ {
			if rng.Intn(3) == 0 {
				m.Transitions = append(m.Transitions, Transition{
					From: m.States[from].Name, To: m.States[to].Name,
				})
			}
		}
	}
	m.Initial = m.States[0].Name
	return m
}
