package sadf

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/maxplus"
	"repro/internal/mcm"
	"repro/internal/rat"
	"repro/internal/verify"
)

// Result reports the worst-case throughput analysis of an FSM-SADF
// model.
type Result struct {
	// Period is the worst-case iteration period over all infinite
	// scenario sequences the FSM accepts: the maximum cycle mean of the
	// max-plus automaton. Meaningless when Unbounded.
	Period rat.Rat
	// Unbounded reports an acyclic automaton: no scenario sequence
	// constrains the steady state (e.g. an FSM without cycles).
	Unbounded bool
	// Tokens is the shared initial-token count of the scenarios.
	Tokens int
	// AutomatonNodes and AutomatonEdges size the max-plus automaton.
	AutomatonNodes, AutomatonEdges int
	// CriticalStates names the FSM states along one critical cycle, in
	// order (empty when Unbounded). Repeated visits appear repeatedly:
	// the slice is the witness scenario sequence of the worst case.
	CriticalStates []string
}

// Analyze computes the worst-case iteration period of the model and a
// certificate for it: per-scenario max-plus matrices via the symbolic
// iteration of Algorithm 1, the max-plus automaton over the FSM, its
// maximum cycle mean via Howard's policy iteration, and a
// verify.SADFCert with double-sided witnesses plus the critical
// scenario sequence for exact replay.
func Analyze(ctx context.Context, m *Model) (*Result, *verify.SADFCert, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	graphs := m.Graphs()
	mcs := make([]*verify.MatrixCert, len(graphs))
	mats := make([]*maxplus.Matrix, len(graphs))
	for k, g := range graphs {
		sym, err := core.SymbolicIterationCtx(ctx, g)
		if err != nil {
			return nil, nil, fmt.Errorf("sadf: scenario %q: %w", m.Scenarios[k].Name, err)
		}
		mcs[k] = &verify.MatrixCert{Matrix: sym.Matrix, Schedule: sym.Schedule}
		mats[k] = sym.Matrix.Permute(verify.SADFTokenPerm(g))
	}
	stateScenario, transitions, initial := m.indices()
	nodes, sedges, err := verify.SADFAutomaton(stateScenario, transitions, mats)
	if err != nil {
		return nil, nil, fmt.Errorf("sadf: %w", err)
	}
	edges := make([]mcm.Edge, len(sedges))
	for i, e := range sedges {
		edges[i] = mcm.Edge{From: e.From, To: e.To, W: e.W, D: e.D}
	}
	ratio, err := mcm.MaxCycleRatioEdges(nodes, edges)
	if err != nil {
		return nil, nil, fmt.Errorf("sadf: automaton cycle ratio: %w", err)
	}
	res := &Result{
		Unbounded:      !ratio.HasCycle,
		Tokens:         m.Tokens(),
		AutomatonNodes: nodes,
		AutomatonEdges: len(edges),
	}
	if ratio.HasCycle {
		res.Period = ratio.CycleRatio
		n := m.Tokens()
		res.CriticalStates = make([]string, len(ratio.Critical))
		for i, node := range ratio.Critical {
			res.CriticalStates[i] = m.States[node/n].Name
		}
	}
	cert, err := verify.NewSADFCert(ctx, graphs, m.ScenarioNames(), mcs,
		m.StateNames(), stateScenario, transitions, initial, res.Unbounded, res.Period)
	if err != nil {
		return nil, nil, fmt.Errorf("sadf: certificate: %w", err)
	}
	return res, cert, nil
}

// SelfLoopScenarios reports which scenarios label an FSM state with a
// self-loop: runs may repeat those scenarios forever, so any bound the
// scenario achieves on its own is achievable by the model. The serving
// layer's brownout bound uses this to anchor its lower bound.
func (m *Model) SelfLoopScenarios() map[string]bool {
	selfLoop := make(map[string]bool)
	for _, tr := range m.Transitions {
		if tr.From == tr.To {
			selfLoop[tr.From] = true
		}
	}
	looped := make(map[string]bool)
	for _, st := range m.States {
		if selfLoop[st.Name] {
			looped[st.Scenario] = true
		}
	}
	return looped
}
