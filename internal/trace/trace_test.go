package trace

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/sdf"
	"repro/internal/sim"
)

func simpleTrace(t *testing.T) *sim.Trace {
	t.Helper()
	g := sdf.NewGraph("t")
	a := g.MustAddActor("Alpha", 3)
	b := g.MustAddActor("B", 5)
	g.MustAddChannel(a, b, 1, 1, 1)
	g.MustAddChannel(b, a, 1, 1, 1)
	tr, err := sim.Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGanttBasics(t *testing.T) {
	tr := simpleTrace(t)
	out := GanttString(tr, GanttOptions{Width: 40})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 actors
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "Alpha |") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[1], "#") {
		t.Errorf("no busy cells in %q", lines[1])
	}
	// Both rows are equally wide.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("row widths differ: %d vs %d", len(lines[1]), len(lines[2]))
	}
}

func TestGanttAutoConcurrencyDigits(t *testing.T) {
	g := sdf.NewGraph("t")
	a := g.MustAddActor("A", 4)
	g.MustAddChannel(a, a, 1, 1, 3) // 3 overlapping firings
	tr, err := sim.Run(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	out := GanttString(tr, GanttOptions{Width: 30})
	if !strings.Contains(out, "3") {
		t.Errorf("overlap digit missing:\n%s", out)
	}
}

func TestGanttUntilCut(t *testing.T) {
	tr := simpleTrace(t)
	out := GanttString(tr, GanttOptions{Width: 20, Until: 5})
	if !strings.Contains(out, "time 0 .. 5") {
		t.Errorf("header missing cut time:\n%s", out)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	g := sdf.NewGraph("t")
	g.MustAddActor("A", 1)
	tr := &sim.Trace{Graph: g}
	out := GanttString(tr, GanttOptions{Width: 10})
	if !strings.Contains(out, "A") {
		t.Errorf("empty trace render:\n%s", out)
	}
}

func TestVCDStructure(t *testing.T) {
	tr := simpleTrace(t)
	var b strings.Builder
	if err := WriteVCD(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale", "$var wire 8 ! Alpha $end", "$enddefinitions",
		"$dumpvars", "#0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Value changes appear in time order.
	lastTime := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			tm, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				t.Fatalf("bad time line %q", line)
			}
			if tm < lastTime {
				t.Errorf("time goes backwards: %d after %d", tm, lastTime)
			}
			lastTime = tm
		}
	}
}

func TestVCDFigure1(t *testing.T) {
	g, err := gen.Figure1(6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteVCD(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "A1") || !strings.Contains(b.String(), "B4") {
		t.Error("actor wires missing")
	}
}

func TestVCDIDUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for a := 0; a < 500; a++ {
		id := vcdID(a)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, a)
		}
		seen[id] = true
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a-b.c d"); got != "a_b_c_d" {
		t.Errorf("sanitize = %q", got)
	}
}
