package passes

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sdf"
	"repro/internal/sdfio"
)

// layeredGraph exercises several rules in one fixpoint: a token-bearing
// core cycle with doubled rates (rate-gcd), a redundant parallel
// channel (prune), a fusible sequential stage (chain-fusion) and a
// cycle-free periphery (dead-actor).
func layeredGraph(t *testing.T) *sdf.Graph {
	t.Helper()
	g := sdf.NewGraph("layered")
	a := g.MustAddActor("A", 2)
	b := g.MustAddActor("B", 3)
	c := g.MustAddActor("C", 1)
	d := g.MustAddActor("D", 7)
	g.MustAddChannel(a, b, 2, 2, 0) // fusible chain A -> B
	g.MustAddChannel(b, c, 2, 4, 0) // rate-gcd: /2
	g.MustAddChannel(c, a, 2, 1, 2) // cycle back
	g.MustAddChannel(c, a, 2, 1, 8) // redundant parallel channel
	g.MustAddChannel(c, d, 1, 1, 0) // dead periphery
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReduceFixpoint(t *testing.T) {
	g := layeredGraph(t)
	red, err := Reduce(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Steps) == 0 {
		t.Fatal("no rule applied")
	}
	if !red.Exact {
		t.Fatal("default rules produced an inexact reduction")
	}
	if red.Final.NumActors() >= g.NumActors() && red.Final.NumChannels() >= g.NumChannels() {
		t.Fatalf("reduction did not shrink the graph: %s", sdfio.TextString(red.Final))
	}
	// Every step must check as a certificate step against its pre-graph.
	cur := g
	for i, s := range red.Steps {
		step := s.LiftStep()
		if err := step.Check(context.Background(), cur); err != nil {
			t.Fatalf("step %d (%s) rejected: %v", i, s.Rule.Name, err)
		}
		cur = s.After
	}
	if cur != red.Final {
		t.Fatal("step chain does not end at the final graph")
	}
	// At fixpoint no rule applies to the final graph.
	again, err := Reduce(context.Background(), red.Final, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Steps) != 0 {
		t.Fatalf("final graph reduced further: %v", again.Trace())
	}
}

func TestReduceDeterminism(t *testing.T) {
	g := layeredGraph(t)
	r1, err := Reduce(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Reduce(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace(), r2.Trace()) {
		t.Fatalf("traces differ:\n%v\n%v", r1.Trace(), r2.Trace())
	}
	if sdfio.TextString(r1.Final) != sdfio.TextString(r2.Final) {
		t.Fatal("final graphs differ")
	}
	if r1.Scale() != r2.Scale() {
		t.Fatalf("scales differ: %d vs %d", r1.Scale(), r2.Scale())
	}
	for i := range r1.Steps {
		s1, s2 := r1.Steps[i].LiftStep(), r2.Steps[i].LiftStep()
		if s1.Rule != s2.Rule || s1.Scale != s2.Scale ||
			!reflect.DeepEqual(s1.ActorMap, s2.ActorMap) ||
			!reflect.DeepEqual(s1.QBefore, s2.QBefore) ||
			!reflect.DeepEqual(s1.QAfter, s2.QAfter) ||
			sdfio.TextString(s1.Reduced) != sdfio.TextString(s2.Reduced) {
			t.Fatalf("step %d differs between runs", i)
		}
	}
}

func TestReduceInconsistentGraph(t *testing.T) {
	g := sdf.NewGraph("bad")
	a := g.MustAddActor("A", 1)
	b := g.MustAddActor("B", 1)
	g.MustAddChannel(a, b, 2, 1, 0)
	g.MustAddChannel(b, a, 1, 1, 0)
	red, err := Reduce(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Steps) != 0 || red.Final != g {
		t.Fatal("inconsistent graph was rewritten")
	}
}

func TestReduceHonoursDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Reduce(ctx, layeredGraph(t), Options{})
	if err == nil {
		t.Fatal("expired deadline did not stop the fixpoint")
	}
}

func TestReduceObservability(t *testing.T) {
	reg := obs.New()
	ctx := obs.WithRegistry(context.Background(), reg)
	red, err := Reduce(ctx, layeredGraph(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, s := range red.Steps {
		total += reg.Counter(obs.MetricReduceSteps, "rule", s.Rule.Name).Value()
		_ = s
	}
	if total < int64(len(red.Steps)) {
		t.Fatalf("reduce step counters undercount: %d < %d", total, len(red.Steps))
	}
}

func TestReduceMaxStepsBackstop(t *testing.T) {
	red, err := Reduce(context.Background(), layeredGraph(t), Options{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Steps) != 1 {
		t.Fatalf("cap ignored: %d steps", len(red.Steps))
	}
}

func TestReductionFactsReused(t *testing.T) {
	red, err := Reduce(context.Background(), layeredGraph(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if red.Facts() == nil || red.Facts().Graph() != red.Final {
		t.Fatal("reduction facts not bound to the final graph")
	}
	if !red.Facts().Consistent() {
		t.Fatal("reduced graph inconsistent")
	}
}
