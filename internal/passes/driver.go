package passes

import (
	"context"
	"fmt"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/rat"
	"repro/internal/sdf"
	"repro/internal/verify"
)

// Options configures a Reduce run.
type Options struct {
	// Rules is the ordered rule set; nil means DefaultRules (the exact
	// rules only).
	Rules []Rule
	// MaxSteps caps the number of applied rewrites; 0 derives a bound
	// from the graph size. The cap is a backstop — every rule strictly
	// shrinks the graph, so a well-formed run reaches the fixpoint long
	// before it.
	MaxSteps int
}

// Reduction is the result of driving a rule set to fixpoint on a graph:
// the reduced graph, the ordered rewrite chain, and the machinery to
// lift answers and certificates computed on the reduced graph back to
// the original.
type Reduction struct {
	// Original and Final are the endpoints of the chain.
	Original *sdf.Graph
	Final    *sdf.Graph
	// Steps are the applied rewrites in application order.
	Steps []*Application
	// Exact reports whether every step was exact; a false value means
	// lifted periods are Theorem 1 upper bounds.
	Exact bool

	scale     int64
	qOriginal []int64
	facts     *Facts
}

// Facts returns the fact table of the final (reduced) graph, so
// downstream consumers — admission cost, lint — reuse the driver's
// analyses instead of recomputing them.
func (r *Reduction) Facts() *Facts { return r.facts }

// Scale is the product of the step scales: one iteration of the
// original graph contains Scale iterations of the reduced one.
func (r *Reduction) Scale() int64 { return r.scale }

// OriginalRepetition returns the repetition vector of the original
// graph, or nil when it is inconsistent. Lifted throughput answers pair
// with this vector, not the reduced graph's.
func (r *Reduction) OriginalRepetition() []int64 { return r.qOriginal }

// Trace renders the chain as one line per step, deterministic for a
// given graph and rule set.
func (r *Reduction) Trace() []string {
	out := make([]string, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = fmt.Sprintf("%s: %s (%d actors, %d channels -> %d actors, %d channels, scale %d)",
			s.Rule.Name, s.Note,
			s.Before.NumActors(), s.Before.NumChannels(),
			s.After.NumActors(), s.After.NumChannels(), s.Scale)
	}
	return out
}

// Lift maps an answer about the reduced graph back to the original by
// applying each step's lift function in reverse application order.
func (r *Reduction) Lift(v Value) (Value, error) {
	for i := len(r.Steps) - 1; i >= 0; i-- {
		s := r.Steps[i]
		var err error
		v, err = s.Rule.Lift(s, v)
		if err != nil {
			return Value{}, err
		}
	}
	return v, nil
}

// LiftPeriod lifts a bounded iteration period of the reduced graph to
// the original graph's period (exact chains) or an upper bound on it
// (chains with an abstraction step).
func (r *Reduction) LiftPeriod(p rat.Rat) (rat.Rat, error) {
	v, err := r.Lift(Value{Period: p})
	if err != nil {
		return rat.Rat{}, err
	}
	return v.Period, nil
}

// LiftCert packages the chain and an inner throughput certificate of
// the reduced graph into a verify.ReductionCert for the original graph.
// The caller obtains inner from whichever certified engine analysed
// r.Final; the returned certificate is self-contained and checkable
// against r.Original.
func (r *Reduction) LiftCert(inner *verify.ThroughputCert) (*verify.ReductionCert, error) {
	if inner == nil {
		return nil, fmt.Errorf("passes: lift requires an inner throughput certificate")
	}
	if r.qOriginal == nil {
		return nil, fmt.Errorf("passes: cannot certify a reduction of an inconsistent graph")
	}
	v, err := r.Lift(Value{Period: inner.Period, Unbounded: inner.Unbounded})
	if err != nil {
		return nil, err
	}
	steps := make([]verify.LiftStep, len(r.Steps))
	for i, s := range r.Steps {
		steps[i] = s.LiftStep()
	}
	return &verify.ReductionCert{
		Steps:     steps,
		Inner:     inner,
		Bound:     v.Bound,
		Unbounded: v.Unbounded,
		Period:    v.Period,
		Q:         r.qOriginal,
	}, nil
}

// Reduce drives the rule set to fixpoint on g: each round applies the
// first rule whose Reduce succeeds, rebinding the fact table with the
// facts the rule preserves, until no rule applies. Rule order is the
// slice order and rewrites are deterministic, so the same graph and
// rule set always produce the same chain.
//
// Inconsistent graphs reduce to themselves (no rule is period-sound
// without a repetition vector); the caller's precheck owns that
// diagnosis. The guard meter "reduce" charges one tick per attempted
// round, so budgets and deadlines bound the fixpoint like any engine.
func Reduce(ctx context.Context, g *sdf.Graph, opts Options) (*Reduction, error) {
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2*(g.NumActors()+g.NumChannels()) + 8
	}
	reg := obs.FromContext(ctx)
	span := reg.StartSpan("passes.reduce")
	meter := guard.NewMeter(ctx, "reduce")
	meter.Phase("fixpoint")

	red := &Reduction{Original: g, Final: g, Exact: true, scale: 1}
	facts := NewFacts(g)
	red.facts = facts
	if q, err := facts.Repetition(); err == nil {
		red.qOriginal = q
	} else {
		span.Finish("outcome", "inconsistent")
		return red, nil
	}

	for len(red.Steps) < maxSteps {
		// A reduce round scans the whole current graph once per rule —
		// real work, so poll unconditionally: deadlines, cancellation and
		// injected checkpoint faults interrupt the fixpoint like any
		// engine phase.
		if err := meter.Canceled(); err != nil {
			span.Finish("outcome", "budget")
			return nil, err
		}
		work := int64(red.Final.NumActors()+red.Final.NumChannels()) + 1
		if err := meter.Tick(work * int64(len(rules))); err != nil {
			span.Finish("outcome", "budget")
			return nil, err
		}
		var app *Application
		var rule *Rule
		for i := range rules {
			a, err := rules[i].Reduce(facts)
			if err != nil {
				span.Finish("outcome", "error")
				return nil, fmt.Errorf("passes: rule %s: %w", rules[i].Name, err)
			}
			if a != nil {
				app, rule = a, &rules[i]
				break
			}
		}
		if app == nil {
			break
		}
		scale, ok := rat.MulChecked(red.scale, app.Scale)
		if !ok {
			// The accumulated iteration scale no longer fits an int64, so
			// answers could not be lifted; stop at the current graph.
			break
		}
		app.Rule = rule
		red.scale = scale
		red.Steps = append(red.Steps, app)
		red.Exact = red.Exact && rule.Exact
		red.Final = app.After
		facts = facts.Rebind(app.After, rule.Preserves)
		if app.QAfter != nil {
			facts.seedRepetition(app.QAfter)
		}
		red.facts = facts
		reg.Counter(obs.MetricReduceSteps, "rule", rule.Name).Inc()
	}
	span.Finish(
		"outcome", "fixpoint",
		"steps", fmt.Sprint(len(red.Steps)),
	)
	return red, nil
}
