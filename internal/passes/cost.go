package passes

import (
	"context"

	"repro/internal/sdf"
)

// ReducedCost prices a graph for admission the way the serving layer
// does: run the reduction fixpoint, then charge the analysis cost of the
// *reduced* graph. The paper's reduction techniques thereby become the
// admission-cost reducer for every workload that prices by this helper —
// a graph the rules shrink is cheaper to admit than its face value.
// When the fixpoint fails (budget, cancellation) the unreduced cost is
// charged instead: pricing degrades conservatively rather than failing
// the request.
func ReducedCost(ctx context.Context, g *sdf.Graph) int64 {
	base := NewFacts(g).Cost()
	red, err := Reduce(ctx, g, Options{})
	if err != nil || red == nil || len(red.Steps) == 0 {
		return base
	}
	if c := red.Facts().Cost(); c < base {
		return c
	}
	return base
}
