package passes

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/sdf"
)

func ringGraph(n int) *sdf.Graph {
	g := sdf.NewGraph("ring")
	ids := make([]sdf.ActorID, n)
	for i := range ids {
		ids[i] = g.MustAddActor(fmt.Sprintf("a%d", i), int64(i%7)+1)
	}
	for i := 0; i < n-1; i++ {
		g.MustAddChannel(ids[i], ids[i+1], 1, 1, 0)
	}
	g.MustAddChannel(ids[n-1], ids[0], 1, 1, 2)
	return g
}

func BenchmarkReduceRing512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := ringGraph(512)
		b.StartTimer()
		red, err := Reduce(context.Background(), g, Options{})
		b.StopTimer()
		if err != nil || len(red.Steps) != 511 {
			b.Fatalf("steps=%d err=%v", len(red.Steps), err)
		}
	}
}
