// Package passes is the static-analysis pass manager of the repository:
// a memoized fact layer over SDF graphs, a table of certified reduction
// rules (reduce/restore/lift triples), and a deterministic fixpoint
// driver that shrinks a graph before any expensive engine runs on it.
//
// The paper's reduction techniques — redundant-channel pruning (§4.2),
// abstraction (Definitions 3–4) — and the classical exact rewrites
// (rate normalisation, dead-actor elimination, chain fusion) are each
// one Rule. A Rule application records enough structure for
// internal/verify to re-check the rewrite independently (LiftStep), so
// every answer computed on a reduced graph ships a certificate chain
// back to the original.
//
// The fact layer exists because the lint passes, the admission-cost
// estimate and the reduction rules all need the same handful of
// analyses — repetition vector, connectivity, cycle membership, rate
// gcds — and used to recompute them per consumer. Facts computes each
// once per graph, on demand, and Rebind transfers exactly the facts a
// rewrite declares preserved.
package passes

import (
	"sync"

	"repro/internal/rat"
	"repro/internal/sdf"
)

// FactSet is a bit set naming the memoized analyses of a Facts. Rules
// declare which facts their rewrite preserves; Rebind transfers exactly
// those to the Facts of the rewritten graph.
type FactSet uint32

const (
	// FactRepetition is the minimal repetition vector (and the derived
	// iteration length Σq).
	FactRepetition FactSet = 1 << iota
	// FactComponents is the weakly-connected-component structure.
	FactComponents
	// FactCycles is cycle membership: strongly connected component
	// sizes and self-loop flags per actor.
	FactCycles
	// FactRates is the per-channel gcd of (prod, cons, initial).
	FactRates
	// FactCost is the admission-control cost estimate.
	FactCost
)

// CostClamp bounds the contribution of the iteration length Σq to the
// cost estimate, so one explosive graph saturates an admission pool
// without overflowing it.
const CostClamp = 1 << 16

// Facts lazily memoizes the shared static analyses of one immutable
// graph. The zero value is not usable; construct with NewFacts. All
// methods are safe for concurrent use.
type Facts struct {
	g *sdf.Graph

	mu   sync.Mutex
	have FactSet

	q       []int64
	qErr    error
	iterLen int64 // Σq; valid when iterOK
	iterOK  bool

	comps [][]sdf.ActorID

	sccSize  []int
	selfLoop []bool

	rateGCD []int

	cost int64
}

// NewFacts binds a fresh, empty fact table to g. The graph must not be
// mutated afterwards — every fact is memoized against its structure.
func NewFacts(g *sdf.Graph) *Facts {
	return &Facts{g: g}
}

// Graph returns the graph the facts describe.
func (f *Facts) Graph() *sdf.Graph { return f.g }

// Have reports which facts are currently computed (useful in tests of
// the invalidation contract).
func (f *Facts) Have() FactSet {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.have
}

// Repetition returns the minimal repetition vector of the graph, or the
// solver's error for inconsistent (or overflowing) graphs. Both are
// computed once.
func (f *Facts) Repetition() ([]int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.repetitionLocked()
	return f.q, f.qErr
}

func (f *Facts) repetitionLocked() {
	if f.have&FactRepetition != 0 {
		return
	}
	f.q, f.qErr = f.g.RepetitionVector()
	f.iterLen, f.iterOK = 0, false
	if f.qErr == nil {
		var sum int64
		ok := true
		for _, v := range f.q {
			sum, ok = rat.AddChecked(sum, v)
			if !ok {
				break
			}
		}
		if ok {
			f.iterLen, f.iterOK = sum, true
		}
	}
	f.have |= FactRepetition
}

// Consistent reports whether the balance equations admit a solution.
func (f *Facts) Consistent() bool {
	_, err := f.Repetition()
	return err == nil
}

// IterationLength returns Σq and true, or 0 and false when the graph is
// inconsistent or the sum overflows int64.
func (f *Facts) IterationLength() (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.repetitionLocked()
	return f.iterLen, f.iterOK
}

// Components returns the weakly connected components as actor lists,
// largest first (ties broken by smallest member id). Callers must not
// mutate the result.
func (f *Facts) Components() [][]sdf.ActorID {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.have&FactComponents == 0 {
		f.comps = weakComponents(f.g)
		f.have |= FactComponents
	}
	return f.comps
}

// SCCSizes returns, per actor, the size of its strongly connected
// component. Callers must not mutate the result.
func (f *Facts) SCCSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cyclesLocked()
	return f.sccSize
}

// OnCycle reports whether actor a lies on a directed cycle: its SCC has
// more than one member, or it carries a self-loop.
func (f *Facts) OnCycle(a sdf.ActorID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cyclesLocked()
	return f.sccSize[a] > 1 || f.selfLoop[a]
}

func (f *Facts) cyclesLocked() {
	if f.have&FactCycles != 0 {
		return
	}
	n := f.g.NumActors()
	adj := make([][]sdf.ActorID, n)
	for _, c := range f.g.Channels() {
		if c.Src != c.Dst {
			adj[c.Src] = append(adj[c.Src], c.Dst)
		}
	}
	comp := SCC(n, adj)
	size := make(map[int]int, n)
	for _, id := range comp {
		size[id]++
	}
	f.sccSize = make([]int, n)
	for a, id := range comp {
		f.sccSize[a] = size[id]
	}
	f.selfLoop = make([]bool, n)
	for _, c := range f.g.Channels() {
		if c.Src == c.Dst {
			f.selfLoop[c.Src] = true
		}
	}
	f.have |= FactCycles
}

// RateGCDs returns, per channel, the gcd of (prod, cons, initial) —
// the factor the rate-gcd rule can divide out. Callers must not mutate
// the result.
func (f *Facts) RateGCDs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.have&FactRates == 0 {
		f.rateGCD = make([]int, f.g.NumChannels())
		for i, c := range f.g.Channels() {
			d := int(rat.GCD(rat.GCD(int64(c.Prod), int64(c.Cons)), int64(c.Initial)))
			f.rateGCD[i] = d
		}
		f.have |= FactRates
	}
	return f.rateGCD
}

// Cost is the admission-control work estimate of analysing the graph,
// in abstract pool units: the structural size plus the iteration length
// Σq (clamped at CostClamp), the dominant term of the state-space and
// HSDF engines. Inconsistent graphs cost their structure only — the
// lint precheck refuses them before an engine runs.
func (f *Facts) Cost() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.have&FactCost == 0 {
		f.repetitionLocked()
		g := f.g
		cost := int64(1) + int64(g.NumActors()) + int64(g.NumChannels()) + int64(g.TotalInitialTokens())
		if f.qErr == nil {
			switch {
			case !f.iterOK:
				cost += CostClamp
			case f.iterLen > CostClamp:
				cost += CostClamp
			default:
				cost += f.iterLen
			}
		}
		f.cost = cost
		f.have |= FactCost
	}
	return f.cost
}

// PeriodFloor is a cheap, sound lower bound on the iteration period Λ
// of the graph, derived from self-loop dependency chains only: a
// channel a→a with rate p and t initial tokens lets at most ⌊t/p⌋
// firings of a overlap, so the q(a) firings of one iteration take at
// least q(a)·exec(a)/⌊t/p⌋ time. The bound deliberately uses nothing
// but self-loops — under the paper's auto-concurrency semantics,
// firings of an actor without one may overlap without limit, so
// per-actor terms like q(a)·exec(a) are not sound. Graphs with no
// delayed self-loop floor at zero; ok is false when the graph is
// inconsistent (no repetition vector, so no iteration to bound) or the
// arithmetic overflows int64.
func (f *Facts) PeriodFloor() (floor rat.Rat, ok bool) {
	q, err := f.Repetition()
	if err != nil {
		return rat.Rat{}, false
	}
	floor = rat.Zero()
	for _, c := range f.g.Channels() {
		if c.Src != c.Dst || c.Cons < 1 {
			continue
		}
		// Each in-flight firing holds Cons tokens (consistency forces
		// Prod == Cons on a self-loop), so at most ⌊t/Cons⌋ overlap.
		lag := int64(c.Initial) / int64(c.Cons)
		if lag < 1 {
			// Zero effective delay: the self-loop deadlocks, which the
			// lint precheck diagnoses; no period exists to bound.
			continue
		}
		work, mulOK := rat.MulChecked(q[c.Src], f.g.Actor(c.Src).Exec)
		if !mulOK {
			return rat.Rat{}, false
		}
		mean, err := rat.New(work, lag)
		if err != nil {
			return rat.Rat{}, false
		}
		if mean.Cmp(floor) > 0 {
			floor = mean
		}
	}
	return floor, true
}

// Rebind returns a fact table for g that starts with the facts of f
// named by keep already computed — the invalidation contract of the
// pass manager: a rule application calls Rebind(after, rule.Preserves)
// and every fact not declared preserved is dropped and recomputed on
// demand against the new graph.
//
// Preserved facts are transferred only when they are both computed in f
// and structurally transferable (FactRepetition requires an unchanged
// actor set; FactRates an unchanged channel list). Callers declare
// preservation; Rebind enforces the length invariants defensively.
func (f *Facts) Rebind(g *sdf.Graph, keep FactSet) *Facts {
	nf := &Facts{g: g}
	f.mu.Lock()
	defer f.mu.Unlock()
	keep &= f.have
	if keep&FactRepetition != 0 && len(f.q) == g.NumActors() {
		nf.q, nf.qErr = f.q, f.qErr
		nf.iterLen, nf.iterOK = f.iterLen, f.iterOK
		nf.have |= FactRepetition
	}
	if keep&FactComponents != 0 {
		nf.comps = f.comps
		nf.have |= FactComponents
	}
	if keep&FactCycles != 0 && len(f.sccSize) == g.NumActors() {
		nf.sccSize, nf.selfLoop = f.sccSize, f.selfLoop
		nf.have |= FactCycles
	}
	if keep&FactRates != 0 && len(f.rateGCD) == g.NumChannels() {
		nf.rateGCD = f.rateGCD
		nf.have |= FactRates
	}
	if keep&FactCost != 0 {
		nf.cost = f.cost
		nf.have |= FactCost
	}
	return nf
}

// seedRepetition installs a repetition vector computed elsewhere (a
// rule application's QAfter, which uniformScale already solved for the
// rewritten graph) so the next fixpoint round does not re-solve the
// balance equations. Ignored unless q matches the actor count and the
// fact is not already present.
func (f *Facts) seedRepetition(q []int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.have&FactRepetition != 0 || len(q) != f.g.NumActors() {
		return
	}
	f.q, f.qErr = q, nil
	f.iterLen, f.iterOK = 0, false
	var sum int64
	ok := true
	for _, v := range q {
		sum, ok = rat.AddChecked(sum, v)
		if !ok {
			break
		}
	}
	if ok {
		f.iterLen, f.iterOK = sum, true
	}
	f.have |= FactRepetition
}

// weakComponents returns the weakly connected components of g as actor
// lists, largest first (ties broken by smallest member id).
func weakComponents(g *sdf.Graph) [][]sdf.ActorID {
	n := g.NumActors()
	adj := make([][]sdf.ActorID, n)
	for _, c := range g.Channels() {
		adj[c.Src] = append(adj[c.Src], c.Dst)
		adj[c.Dst] = append(adj[c.Dst], c.Src)
	}
	seen := make([]bool, n)
	var comps [][]sdf.ActorID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comp := []sdf.ActorID{sdf.ActorID(s)}
		seen[s] = true
		for head := 0; head < len(comp); head++ {
			for _, v := range adj[comp[head]] {
				if !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	// Stable size ordering: the first component is the main one.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// SCC returns a strongly-connected-component id per vertex of the
// directed graph given as adjacency lists (Kosaraju, iterative). Ids
// are assigned in reverse topological order of the condensation, but
// callers should rely only on the partition.
func SCC(n int, adj [][]sdf.ActorID) []int {
	rev := make([][]sdf.ActorID, n)
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			rev[v] = append(rev[v], sdf.ActorID(u))
		}
	}
	order := make([]sdf.ActorID, 0, n)
	seen := make([]bool, n)
	type frame struct {
		u sdf.ActorID
		i int
	}
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack := []frame{{sdf.ActorID(s), 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(adj[f.u]) {
				v := adj[f.u][f.i]
				f.i++
				if !seen[v] {
					seen[v] = true
					stack = append(stack, frame{v, 0})
				}
				continue
			}
			order = append(order, f.u)
			stack = stack[:len(stack)-1]
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	id := 0
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] >= 0 {
			continue
		}
		stack := []sdf.ActorID{root}
		comp[root] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range rev[u] {
				if comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		id++
	}
	return comp
}
